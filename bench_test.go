package repro

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"sync"
	"testing"

	"repro/dsu"
	"repro/internal/ackermann"
	"repro/internal/aw"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/forest"
	"repro/internal/sched"
	"repro/internal/seqdsu"
	"repro/internal/shard"
	"repro/internal/simdsu"
	"repro/internal/wire"
	"repro/internal/workload"
)

// Benchmarks here mirror DESIGN.md's experiment index: each Benchmark`E<k>`*
// regenerates the measurement behind experiment E<k>, reporting the paper's
// quantity of interest as a custom metric (work/op, height/lg n, …).
// cmd/dsubench prints the corresponding full tables.

// runWorkload drives ops through d with p goroutines, returning total work.
func runWorkload(d *core.DSU, ops []workload.Op, p int) core.Stats {
	perProc := workload.SplitRoundRobin(ops, p)
	stats := make([]core.Stats, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, op := range perProc[i] {
				switch op.Kind {
				case workload.OpUnite:
					d.UniteCounted(op.X, op.Y, &stats[i])
				case workload.OpSameSet:
					d.SameSetCounted(op.X, op.Y, &stats[i])
				}
			}
		}(i)
	}
	wg.Wait()
	var total core.Stats
	for i := range stats {
		total.Add(stats[i])
	}
	return total
}

// BenchmarkE1NoCompactionWork measures work/op with Algorithm 1 finds
// (Theorem 4.3 predicts O(log n)).
func BenchmarkE1NoCompactionWork(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 14, 1 << 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			m := 4 * n
			ops := workload.Mixed(n, m, 0.5, 1)
			var workPerOp float64
			for i := 0; i < b.N; i++ {
				d := core.New(n, core.Config{Find: core.FindNaive, Seed: uint64(i)})
				total := runWorkload(d, ops, 8)
				workPerOp = float64(total.Work()) / float64(m)
			}
			b.ReportMetric(workPerOp, "work/op")
			b.ReportMetric(workPerOp/math.Log2(float64(n)), "work/op/lgn")
		})
	}
}

// BenchmarkE2ForestHeight measures union-forest height (Corollary 4.2.1
// predicts O(log n) w.h.p.).
func BenchmarkE2ForestHeight(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var height float64
			for i := 0; i < b.N; i++ {
				d := core.New(n, core.Config{Find: core.FindNaive, Seed: uint64(i) + 1})
				runWorkload(d, workload.RandomUnions(n, 4*n, uint64(i)), 8)
				height = float64(forest.Height(d.Snapshot()))
			}
			b.ReportMetric(height/math.Log2(float64(n)), "height/lgn")
		})
	}
}

// benchSplitting powers E4/E5: work per op across p for a splitting find.
func benchSplitting(b *testing.B, find core.Find, bound func(n, m, p int) float64) {
	const n = 1 << 16
	m := 4 * n
	ops := workload.Mixed(n, m, 0.5, 2)
	for _, p := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var workPerOp float64
			for i := 0; i < b.N; i++ {
				d := core.New(n, core.Config{Find: find, Seed: uint64(i)})
				total := runWorkload(d, ops, p)
				workPerOp = float64(total.Work()) / float64(m)
			}
			b.ReportMetric(workPerOp, "work/op")
			b.ReportMetric(workPerOp/bound(n, m, p), "work/bound")
		})
	}
}

func boundTwoTry(n, m, p int) float64 {
	d := float64(m) / (float64(n) * float64(p))
	return float64(ackermann.Alpha(int64(n), d)) + math.Log2(float64(n)*float64(p)/float64(m)+1)
}

func boundOneTry(n, m, p int) float64 {
	pp := float64(p) * float64(p)
	d := float64(m) / (float64(n) * pp)
	return float64(ackermann.Alpha(int64(n), d)) + math.Log2(float64(n)*pp/float64(m)+1)
}

// BenchmarkE4TwoTrySweep measures two-try splitting against Theorem 5.1.
func BenchmarkE4TwoTrySweep(b *testing.B) { benchSplitting(b, core.FindTwoTry, boundTwoTry) }

// BenchmarkE5OneTrySweep measures one-try splitting against Theorem 5.2.
func BenchmarkE5OneTrySweep(b *testing.B) { benchSplitting(b, core.FindOneTry, boundOneTry) }

// BenchmarkE6BinomialDepth measures the Lemma 5.3 construction's average
// node depth (the lemma proves ≥ (lg k)/4).
func BenchmarkE6BinomialDepth(b *testing.B) {
	for _, k := range []int{1 << 10, 1 << 14} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			ops := workload.BinomialPairing(0, k)
			var avg float64
			for i := 0; i < b.N; i++ {
				d := seqdsu.New(k, seqdsu.LinkRandom, seqdsu.CompactSplitting, uint64(i))
				for _, op := range ops {
					d.Unite(op.X, op.Y)
				}
				parents := make([]uint32, k)
				for x := uint32(0); int(x) < k; x++ {
					parents[x] = d.Parent(x)
				}
				avg = forest.AvgDepth(parents)
			}
			b.ReportMetric(avg/math.Log2(float64(k)), "avgdepth/lgk")
		})
	}
}

// BenchmarkE7LowerBound runs the Theorem 5.4 workload on the simulator in
// lockstep, reporting simulated steps per operation.
func BenchmarkE7LowerBound(b *testing.B) {
	const n, p = 1 << 8, 4
	for _, delta := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			w := workload.LowerBound(n, p, delta, 3)
			var perOp float64
			for i := 0; i < b.N; i++ {
				s := simdsu.New(n, core.Config{Find: core.FindNaive, Seed: 2})
				res, err := simdsu.Run(s, w.PerProc, simdsu.Options{
					Scheduler: sched.NewLockstep(),
					Setup:     w.Setup,
				})
				if err != nil {
					b.Fatal(err)
				}
				perOp = float64(res.Total) / float64(w.Ops())
			}
			b.ReportMetric(perOp, "steps/op")
			b.ReportMetric(perOp/math.Log2(float64(delta)), "steps/op/lgdelta")
		})
	}
}

// BenchmarkE9Speedup is the headline comparison: ops/sec across
// implementations and process counts (Abstract / Section 1).
func BenchmarkE9Speedup(b *testing.B) {
	const n = 1 << 18
	m := 2 * n
	ops := workload.Mixed(n, m, 0.5, 4)
	impls := map[string]func() interface {
		Unite(x, y uint32) bool
		SameSet(x, y uint32) bool
	}{
		"jt-twotry": func() interface {
			Unite(x, y uint32) bool
			SameSet(x, y uint32) bool
		} {
			return core.New(n, core.Config{Find: core.FindTwoTry, Seed: 5})
		},
		"aw-rank-halving": func() interface {
			Unite(x, y uint32) bool
			SameSet(x, y uint32) bool
		} {
			return aw.New(n)
		},
		"global-lock": func() interface {
			Unite(x, y uint32) bool
			SameSet(x, y uint32) bool
		} {
			return aw.NewLocked(n)
		},
	}
	for name, mk := range impls {
		for _, p := range []int{1, 8} {
			b.Run(fmt.Sprintf("%s/p=%d", name, p), func(b *testing.B) {
				perProc := workload.SplitRoundRobin(ops, p)
				for i := 0; i < b.N; i++ {
					d := mk()
					var wg sync.WaitGroup
					for w := 0; w < p; w++ {
						wg.Add(1)
						go func(opsW []workload.Op) {
							defer wg.Done()
							for _, op := range opsW {
								switch op.Kind {
								case workload.OpUnite:
									d.Unite(op.X, op.Y)
								case workload.OpSameSet:
									d.SameSet(op.X, op.Y)
								}
							}
						}(perProc[w])
					}
					wg.Wait()
				}
				b.ReportMetric(float64(m)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mop/s")
			})
		}
	}
}

// BenchmarkE10Variants is the find-variant ablation on one workload.
func BenchmarkE10Variants(b *testing.B) {
	const n = 1 << 16
	m := 4 * n
	ops := workload.Mixed(n, m, 0.5, 6)
	variants := []core.Config{
		{Find: core.FindNaive}, {Find: core.FindOneTry}, {Find: core.FindTwoTry},
		{Find: core.FindHalving}, {Find: core.FindCompress},
		{Find: core.FindTwoTry, EarlyTermination: true},
	}
	for _, vc := range variants {
		name := vc.Find.String()
		if vc.EarlyTermination {
			name += "+early"
		}
		b.Run(name, func(b *testing.B) {
			var workPerOp float64
			for i := 0; i < b.N; i++ {
				cfg := vc
				cfg.Seed = uint64(i)
				d := core.New(n, cfg)
				total := runWorkload(d, ops, 8)
				workPerOp = float64(total.Work()) / float64(m)
			}
			b.ReportMetric(workPerOp, "work/op")
		})
	}
}

// BenchmarkE12Dynamic measures the MakeSet variant against the static
// structure on one workload.
func BenchmarkE12Dynamic(b *testing.B) {
	const n = 1 << 16
	m := 4 * n
	ops := workload.Mixed(n, m, 0.5, 8)
	b.Run("static", func(b *testing.B) {
		perProc := workload.SplitRoundRobin(ops, 8)
		for i := 0; i < b.N; i++ {
			d := core.New(n, core.Config{Seed: 1})
			var wg sync.WaitGroup
			for w := range perProc {
				wg.Add(1)
				go func(opsW []workload.Op) {
					defer wg.Done()
					for _, op := range opsW {
						if op.Kind == workload.OpUnite {
							d.Unite(op.X, op.Y)
						} else {
							d.SameSet(op.X, op.Y)
						}
					}
				}(perProc[w])
			}
			wg.Wait()
		}
		b.ReportMetric(float64(m)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mop/s")
	})
	b.Run("dynamic", func(b *testing.B) {
		perProc := workload.SplitRoundRobin(ops, 8)
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			d := core.NewDynamic(n, 1)
			for k := 0; k < n; k++ {
				if _, err := d.MakeSet(); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
			var wg sync.WaitGroup
			for w := range perProc {
				wg.Add(1)
				go func(opsW []workload.Op) {
					defer wg.Done()
					for _, op := range opsW {
						if op.Kind == workload.OpUnite {
							d.Unite(op.X, op.Y)
						} else {
							d.SameSet(op.X, op.Y)
						}
					}
				}(perProc[w])
			}
			wg.Wait()
		}
		b.ReportMetric(float64(m)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mop/s")
	})
}

// BenchmarkE18BatchUniteAll measures the batch engine's UniteAll across
// worker counts on one uniform edge batch (the E18 throughput table).
func BenchmarkE18BatchUniteAll(b *testing.B) {
	const n = 1 << 18
	m := 4 * n
	edges := engine.FromOps(workload.RandomUnions(n, m, 10))
	for _, w := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := core.New(n, core.Config{Seed: 11})
				engine.UniteAll(d, edges, engine.Config{Workers: w, Seed: 11})
			}
			b.ReportMetric(float64(m)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mop/s")
		})
	}
}

// BenchmarkE19ShardedUniteAll measures the sharded batch path across shard
// counts on one community-structured edge batch (the E19 table's sweet
// spot), with the flat engine as the shards=0 baseline.
func BenchmarkE19ShardedUniteAll(b *testing.B) {
	const n = 1 << 18
	m := 4 * n
	edges := engine.FromOps(workload.CommunityUnions(n, m, 64, 0.95, 10))
	b.Run("flat", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := core.New(n, core.Config{Seed: 11})
			engine.UniteAll(d, edges, engine.Config{Workers: 4, Seed: 11})
		}
		b.ReportMetric(float64(m)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mop/s")
	})
	for _, s := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := shard.New(n, s, core.Config{Seed: 11})
				d.UniteAll(edges, engine.Config{Workers: 4, Seed: 11})
			}
			b.ReportMetric(float64(m)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mop/s")
		})
	}
}

// BenchmarkE20StreamIngest measures streamed ingestion (dsu.Stream, batches
// overlapping execution) against the blocking batch loop on one uniform
// edge stream — the E20 comparison at a fixed buffer size.
func BenchmarkE20StreamIngest(b *testing.B) {
	const n = 1 << 18
	m := 4 * n
	const buffer = 1 << 16
	edges := engine.FromOps(workload.RandomUnions(n, m, 10))
	b.Run("blocking", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := dsu.New(n, dsu.WithSeed(11))
			for lo := 0; lo < len(edges); lo += buffer {
				hi := min(lo+buffer, len(edges))
				d.UniteAll(edges[lo:hi], dsu.WithWorkers(4))
			}
		}
		b.ReportMetric(float64(m)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mop/s")
	})
	for _, inflight := range []int{1, 2} {
		b.Run(fmt.Sprintf("stream/inflight=%d", inflight), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := dsu.NewStream(dsu.New(n, dsu.WithSeed(11)),
					dsu.WithBufferSize(buffer),
					dsu.WithMaxInFlight(inflight),
					dsu.WithBatchOptions(dsu.WithWorkers(4)))
				for lo := 0; lo < len(edges); lo += 8192 {
					hi := min(lo+8192, len(edges))
					if err := s.Push(edges[lo:hi]...); err != nil {
						b.Fatal(err)
					}
				}
				if err := s.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(m)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mop/s")
		})
	}
}

// BenchmarkE21AdaptiveFind measures the adaptive compaction policy against
// fixed find variants on the E21 shape: one flattening UniteAll, then
// repeated SameSetAll batches (the phase the policy downgrades). Reported
// Mop/s covers the query phase only — mutation work is identical across
// modes by construction.
func BenchmarkE21AdaptiveFind(b *testing.B) {
	const n = 1 << 18
	m := 4 * n
	const queryBatches = 8
	edges := engine.FromOps(workload.RandomUnions(n, m, 10))
	pairs := engine.FromOps(workload.RandomUnions(n, n, 12))
	modes := []struct {
		name string
		opts []dsu.Option
	}{
		{"twotry", []dsu.Option{dsu.WithSeed(11)}},
		{"naive", []dsu.Option{dsu.WithSeed(11), dsu.WithFind(dsu.NoCompaction)}},
		{"adaptive", []dsu.Option{dsu.WithSeed(11), dsu.WithAdaptiveFind()}},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			queryOps := 0
			var elapsed float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				d := dsu.New(n, mode.opts...)
				d.UniteAll(edges, dsu.WithWorkers(4))
				b.StartTimer()
				for k := 0; k < queryBatches; k++ {
					d.SameSetAll(pairs, dsu.WithWorkers(4))
					queryOps += len(pairs)
				}
			}
			elapsed = b.Elapsed().Seconds()
			b.ReportMetric(float64(queryOps)/elapsed/1e6, "Mop/s")
		})
	}
}

// BenchmarkE23LockFree measures the lock-free backend on the E23 shapes:
// one uniform batch per kind (flat / sharded / lock-free, identical edges
// and worker budget), plus the regime only the lock-free kind supports —
// k genuinely overlapping UniteAll calls on one structure.
func BenchmarkE23LockFree(b *testing.B) {
	const n = 1 << 18
	m := 4 * n
	edges := engine.FromOps(workload.RandomUnions(n, m, 10))
	kinds := []struct {
		name string
		make func() dsu.Backend
	}{
		{"flat", func() dsu.Backend { return dsu.New(n, dsu.WithSeed(11)) }},
		{"sharded-4", func() dsu.Backend { return dsu.NewSharded(n, 4, dsu.WithSeed(11)) }},
		{"lockfree", func() dsu.Backend { return dsu.NewLockFree(n, dsu.WithSeed(11)) }},
	}
	for _, kind := range kinds {
		b.Run("batch/"+kind.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kind.make().UniteAll(edges, dsu.WithWorkers(4))
			}
			b.ReportMetric(float64(m)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mop/s")
		})
	}
	for _, k := range []int{2, 4} {
		b.Run(fmt.Sprintf("overlap/k=%d", k), func(b *testing.B) {
			chunk := (len(edges) + k - 1) / k
			for i := 0; i < b.N; i++ {
				d := dsu.NewLockFree(n, dsu.WithSeed(11))
				var wg sync.WaitGroup
				for j := 0; j < k; j++ {
					lo, hi := j*chunk, min((j+1)*chunk, len(edges))
					wg.Add(1)
					go func(lo, hi int) {
						defer wg.Done()
						d.UniteAll(edges[lo:hi], dsu.WithWorkers(2))
					}(lo, hi)
				}
				wg.Wait()
			}
			b.ReportMetric(float64(m)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mop/s")
		})
	}
}

// BenchmarkFindOnDeepForest micro-benchmarks a single Find per variant on a
// prebuilt randomized forest.
func BenchmarkFindOnDeepForest(b *testing.B) {
	const n = 1 << 16
	base := core.New(n, core.Config{Find: core.FindNaive, Seed: 3})
	for _, op := range workload.RandomUnions(n, 4*n, 9) {
		base.Unite(op.X, op.Y)
	}
	snap := base.Snapshot()
	for _, f := range []core.Find{core.FindNaive, core.FindOneTry, core.FindTwoTry, core.FindHalving, core.FindCompress} {
		b.Run(f.String(), func(b *testing.B) {
			// Rebuild per run so compaction starts from the same forest.
			d := core.New(n, core.Config{Find: f, Seed: 3})
			for x, p := range snap {
				d.LoadParent(uint32(x), p)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Find(uint32(i % n))
			}
		})
	}
}

// BenchmarkMetricsOverhead pins the instrumentation tax on the batch hot
// path: the same UniteAll loop over one universe, with and without a
// metrics registry attached. The disabled mode must cost nothing beyond
// one nil check (and add zero allocations — the internal/metrics tests
// pin that); the instrumented mode's tax is a handful of atomic adds and
// one histogram observation per batch, so it should stay under 2%.
func BenchmarkMetricsOverhead(b *testing.B) {
	const n = 1 << 16
	const batch = 4096
	edges := make([]dsu.Edge, batch)
	rng := workload.RandomUnions(n, batch, 17)
	for i, op := range rng {
		edges[i] = dsu.Edge{X: op.X, Y: op.Y}
	}
	run := func(b *testing.B, m *dsu.Metrics) {
		var opts []dsu.RegistryOption
		if m != nil {
			opts = append(opts, dsu.WithMetrics(m))
		}
		reg := dsu.NewRegistry(opts...)
		u, err := reg.Create("bench", n)
		if err != nil {
			b.Fatal(err)
		}
		req := dsu.UniteRequest{Edges: edges}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := u.UniteAll(req); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Medge/s")
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil) })
	b.Run("instrumented", func(b *testing.B) { run(b, dsu.NewMetrics()) })
}

// BenchmarkTraceOverhead pins the tracing tax the same way: a 4096-edge
// UniteAll loop with tracing off, then on. Disabled tracing is one nil
// check per batch — identical allocs/op to the untraced structure and
// within noise (<2%) on time. Traced batches pay one allocation (the
// trace object) plus a handful of atomic claims and clock reads per
// span, amortized over the batch.
func BenchmarkTraceOverhead(b *testing.B) {
	const n = 1 << 16
	const batch = 4096
	edges := make([]dsu.Edge, batch)
	rng := workload.RandomUnions(n, batch, 19)
	for i, op := range rng {
		edges[i] = dsu.Edge{X: op.X, Y: op.Y}
	}
	run := func(b *testing.B, tr *dsu.Tracing) {
		var opts []dsu.RegistryOption
		if tr != nil {
			opts = append(opts, dsu.WithTracing(tr))
		}
		reg := dsu.NewRegistry(opts...)
		u, err := reg.Create("bench", n)
		if err != nil {
			b.Fatal(err)
		}
		req := dsu.UniteRequest{Edges: edges}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := u.UniteAll(req); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Medge/s")
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil) })
	b.Run("traced", func(b *testing.B) { run(b, dsu.NewTracing()) })
}

// BenchmarkWireFastPath pins the wire fast path's tentpole number:
// steady-state binary encode and decode of the batch-path envelope
// vocabulary (a 1K-edge unite, a query, a reply with answers) through
// pooled codecs must report 0 B/op and 0 allocs/op. CI runs this with
// -benchmem and fails the build if either figure is nonzero — the
// executable form of the AllocsPerRun pin in internal/wire's tests.
func BenchmarkWireFastPath(b *testing.B) {
	const edgesPerFrame = 1024
	edges := make([]dsu.Edge, edgesPerFrame)
	for i, op := range workload.RandomUnions(1<<16, edgesPerFrame, 23) {
		edges[i] = dsu.Edge{X: op.X, Y: op.Y}
	}
	answers := make([]bool, edgesPerFrame)
	for i := range answers {
		answers[i] = i%3 == 0
	}
	envs := []*wire.Envelope{
		{Kind: wire.KindUnite, Seq: 1, Unite: &dsu.UniteRequest{Edges: edges}},
		{Kind: wire.KindQuery, Seq: 2, Trace: 0xfeed, Span: 2, Query: &dsu.QueryRequest{Pairs: edges}},
		{Kind: wire.KindReply, Seq: 2, Reply: &dsu.BatchReply{Merged: 512, Answers: answers}},
	}

	b.Run("encode", func(b *testing.B) {
		enc := wire.AcquireEncoder(io.Discard, wire.Binary)
		defer wire.ReleaseEncoder(enc)
		for _, env := range envs { // warm the frame buffer to steady state
			if err := enc.Encode(env); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := enc.Encode(envs[i%len(envs)]); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("decode", func(b *testing.B) {
		var buf bytes.Buffer
		enc := wire.NewEncoder(&buf, wire.Binary)
		for _, env := range envs {
			if err := enc.Encode(env); err != nil {
				b.Fatal(err)
			}
		}
		data := buf.Bytes()
		r := bytes.NewReader(data)
		dec := wire.AcquireDecoder(r, wire.Binary, wire.DefaultMaxFrame)
		defer wire.ReleaseDecoder(dec)
		for range envs { // warm the scratch DTOs to steady state
			if _, err := dec.Decode(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%len(envs) == 0 {
				r.Reset(data)
			}
			if _, err := dec.Decode(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
