package randutil

import "math"

// Zipf samples from a Zipf–Mandelbrot-like distribution over {0, ..., n-1}
// with exponent s > 0: Pr[k] ∝ 1/(k+1)^s. It is used to build skewed
// operation workloads (hot elements united or queried far more often than
// cold ones), which stress the compaction paths of the algorithms.
//
// Sampling uses binary search over the precomputed CDF; construction is
// O(n), sampling O(log n). This is exact, not an approximation, which keeps
// experiment workloads reproducible across machines.
type Zipf struct {
	cdf []float64
	rng *Xoshiro256
}

// NewZipf returns a sampler over {0..n-1} with exponent s, drawing randomness
// from rng. It panics if n <= 0 or s <= 0.
func NewZipf(rng *Xoshiro256, n int, s float64) *Zipf {
	if n <= 0 {
		panic("randutil: NewZipf with n <= 0")
	}
	if s <= 0 {
		panic("randutil: NewZipf with s <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	inv := 1 / sum
	for k := range cdf {
		cdf[k] *= inv
	}
	cdf[n-1] = 1 // guard against rounding leaving the tail unreachable
	return &Zipf{cdf: cdf, rng: rng}
}

// Next returns the next sample in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
