package randutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Next(), b.Next(); av != bv {
			t.Fatalf("iteration %d: streams diverged: %x != %x", i, av, bv)
		}
	}
}

func TestSplitMix64KnownVector(t *testing.T) {
	// Pinned regression vector for seed 1234567. If these change, every
	// seeded experiment in the repository changes with them.
	want := []uint64{
		0x599ed017fb08fc85,
		0x2c73f08458540fa5,
		0x883ebce5a3f27c77,
	}
	s := NewSplitMix64(1234567)
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Errorf("value %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestMix64InjectiveSample(t *testing.T) {
	seen := make(map[uint64]uint64, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		h := Mix64(i)
		if prev, dup := seen[h]; dup {
			t.Fatalf("Mix64 collision: Mix64(%d) == Mix64(%d)", i, prev)
		}
		seen[h] = i
	}
}

func TestXoshiroDeterministic(t *testing.T) {
	a := NewXoshiro256(7)
	b := NewXoshiro256(7)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("iteration %d: same-seed streams diverged", i)
		}
	}
	c := NewXoshiro256(8)
	same := 0
	a2 := NewXoshiro256(7)
	for i := 0; i < 1000; i++ {
		if a2.Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/1000 equal outputs", same)
	}
}

func TestUint64nBounds(t *testing.T) {
	rng := NewXoshiro256(1)
	for _, n := range []uint64{1, 2, 3, 7, 8, 100, 1 << 20, 1<<63 + 3} {
		for i := 0; i < 200; i++ {
			if v := rng.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	NewXoshiro256(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Intn(%d) did not panic", n)
				}
			}()
			NewXoshiro256(1).Intn(n)
		}()
	}
}

func TestUint64nRoughlyUniform(t *testing.T) {
	rng := NewXoshiro256(99)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[rng.Uint64n(n)]++
	}
	// χ² with 9 dof: 99.9th percentile ≈ 27.9. Use 40 for slack; a broken
	// generator will exceed this by orders of magnitude.
	expected := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 40 {
		t.Fatalf("χ² = %.1f too large; counts %v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	rng := NewXoshiro256(5)
	for i := 0; i < 10000; i++ {
		f := rng.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint16) bool {
		p := NewXoshiro256(seed).Perm(int(n))
		if len(p) != int(n) {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if int(v) >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPermIntIsPermutation(t *testing.T) {
	p := NewXoshiro256(3).PermInt(1000)
	seen := make([]bool, 1000)
	for _, v := range p {
		if v < 0 || v >= 1000 || seen[v] {
			t.Fatalf("not a permutation at value %d", v)
		}
		seen[v] = true
	}
}

func TestPermUniformFirstPosition(t *testing.T) {
	// Over many seeds, position 0 of Perm(4) should be ~uniform over 0..3.
	const trials = 4000
	counts := make([]int, 4)
	for seed := uint64(0); seed < trials; seed++ {
		counts[NewXoshiro256(seed).Perm(4)[0]]++
	}
	expected := float64(trials) / 4
	for v, c := range counts {
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Errorf("value %d appeared %d times at position 0, expected ~%.0f", v, c, expected)
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	rng := NewXoshiro256(11)
	xs := make([]int, 257)
	for i := range xs {
		xs[i] = i
	}
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("duplicate value %d after shuffle", v)
		}
		seen[v] = true
	}
}

func TestZipfBoundsAndSkew(t *testing.T) {
	rng := NewXoshiro256(17)
	z := NewZipf(rng, 100, 1.2)
	counts := make([]int, 100)
	const draws = 50000
	for i := 0; i < draws; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf sample %d out of range", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("expected head-heavy distribution, counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	// Rank-0 mass for s=1.2, n=100 is about 0.19; require it to dominate.
	if frac := float64(counts[0]) / draws; frac < 0.10 {
		t.Errorf("head mass %.3f too small for s=1.2", frac)
	}
}

func TestZipfPanics(t *testing.T) {
	rng := NewXoshiro256(1)
	for _, tc := range []struct {
		n int
		s float64
	}{{0, 1}, {-1, 1}, {10, 0}, {10, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %v) did not panic", tc.n, tc.s)
				}
			}()
			NewZipf(rng, tc.n, tc.s)
		}()
	}
}

func BenchmarkXoshiroNext(b *testing.B) {
	rng := NewXoshiro256(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += rng.Next()
	}
	_ = sink
}

func BenchmarkPerm1e6(b *testing.B) {
	rng := NewXoshiro256(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = rng.Perm(1 << 20)
	}
}
