// Package simdsu implements the paper's concurrent disjoint-set algorithms
// against the APRAM simulator, mirroring internal/core variant for variant.
// Every parent-pointer access is a simulated shared-memory step, so a run's
// step counts are exactly the "total work" of the paper's theorems, and the
// scheduler controls the interleaving completely — including the lockstep
// and adversarial schedules the paper's constructions assume.
//
// Memory layout: word x of the machine's shared memory holds the parent of
// element x. The random node order lives in process-local memory (a shared
// immutable Go slice), matching the APRAM's local/shared split: the paper's
// processes consult the order free of shared-memory cost.
package simdsu

import (
	"fmt"

	"repro/internal/apram"
	"repro/internal/core"
	"repro/internal/randutil"
)

// Sim holds the immutable algorithm state: variant configuration and the
// random node order. The mutable state (parent pointers) lives in machine
// memory, so one Sim can drive many machines.
type Sim struct {
	n   int
	id  []uint32
	cfg core.Config
}

// New returns a Sim over n elements with the given variant configuration
// (the same Config type package core uses; Seed fixes the node order).
func New(n int, cfg core.Config) *Sim {
	if n < 0 {
		panic("simdsu: negative element count")
	}
	if cfg.Find == 0 {
		cfg.Find = core.FindTwoTry
	}
	switch cfg.Find {
	case core.FindNaive, core.FindOneTry, core.FindTwoTry, core.FindHalving, core.FindCompress:
	default:
		panic("simdsu: unknown find strategy")
	}
	if cfg.EarlyTermination {
		switch cfg.Find {
		case core.FindNaive, core.FindOneTry, core.FindTwoTry:
		default:
			panic("simdsu: early termination is defined only for naive and splitting finds")
		}
	}
	return &Sim{
		n:   n,
		id:  randutil.NewXoshiro256(cfg.Seed).Perm(n),
		cfg: cfg,
	}
}

// NewWithOrder is New with an explicit node order (id[x] = x's position),
// used by the paper's constructions that fix the order (e.g. the Section 3
// path example needs ids increasing along the path). It panics if order is
// not a permutation of 0..n−1.
func NewWithOrder(cfg core.Config, order []uint32) *Sim {
	n := len(order)
	seen := make([]bool, n)
	for _, v := range order {
		if int(v) >= n || seen[v] {
			panic("simdsu: order is not a permutation")
		}
		seen[v] = true
	}
	s := New(n, cfg)
	s.id = append([]uint32(nil), order...)
	return s
}

// N returns the element count.
func (s *Sim) N() int { return s.n }

// Config returns the variant configuration.
func (s *Sim) Config() core.Config { return s.cfg }

// ID returns x's position in the random node order.
func (s *Sim) ID(x uint32) uint32 { return s.id[x] }

// Words returns the shared-memory words a machine needs for this Sim.
func (s *Sim) Words() int { return s.n }

// Init writes the initial singleton forest into machine memory. Call before
// Machine.Run.
func (s *Sim) Init(mem []uint64) {
	if len(mem) < s.n {
		panic(fmt.Sprintf("simdsu: memory has %d words, need %d", len(mem), s.n))
	}
	for i := 0; i < s.n; i++ {
		mem[i] = uint64(i)
	}
}

func (s *Sim) less(u, v uint32) bool { return s.id[u] < s.id[v] }

func (s *Sim) loadParent(p *apram.P, x uint32) uint32 {
	return uint32(p.Read(int(x)))
}

func (s *Sim) casParent(p *apram.P, x, old, new uint32) bool {
	return p.CAS(int(x), uint64(old), uint64(new))
}

// Find returns the root of x's tree using the configured strategy, run by
// process p.
func (s *Sim) Find(p *apram.P, x uint32) uint32 {
	switch s.cfg.Find {
	case core.FindNaive:
		return s.findNaive(p, x)
	case core.FindOneTry:
		return s.findSplit(p, x, 1)
	case core.FindTwoTry:
		return s.findSplit(p, x, 2)
	case core.FindHalving:
		return s.findHalve(p, x)
	default:
		return s.findCompress(p, x)
	}
}

// findNaive is Algorithm 1.
func (s *Sim) findNaive(p *apram.P, x uint32) uint32 {
	u := x
	for {
		v := s.loadParent(p, u)
		if v == u {
			return u
		}
		u = v
	}
}

// findSplit is Algorithms 4 (tries=1) and 5 (tries=2).
func (s *Sim) findSplit(p *apram.P, x uint32, tries int) uint32 {
	u := x
	for {
		var v uint32
		for t := 0; t < tries; t++ {
			v = s.loadParent(p, u)
			w := s.loadParent(p, v)
			if v == w {
				return v
			}
			s.casParent(p, u, v, w)
		}
		u = v
	}
}

// findHalve is the concurrent halving of Anderson & Woll.
func (s *Sim) findHalve(p *apram.P, x uint32) uint32 {
	u := x
	for {
		v := s.loadParent(p, u)
		w := s.loadParent(p, v)
		if v == w {
			return v
		}
		s.casParent(p, u, v, w)
		u = w
	}
}

// findCompress is the two-pass concurrent compression (see core).
func (s *Sim) findCompress(p *apram.P, x uint32) uint32 {
	root := s.findNaive(p, x)
	u := x
	for u != root {
		q := s.loadParent(p, u)
		if q == u || !s.less(q, root) {
			break
		}
		s.casParent(p, u, q, root)
		u = q
	}
	return root
}

// SameSet is Algorithm 2 (or 6 with early termination), run by process p.
func (s *Sim) SameSet(p *apram.P, x, y uint32) bool {
	if s.cfg.EarlyTermination {
		return s.sameSetEarly(p, x, y)
	}
	u, v := x, y
	for {
		u = s.Find(p, u)
		v = s.Find(p, v)
		if u == v {
			return true
		}
		if s.loadParent(p, u) == u {
			return false
		}
	}
}

func (s *Sim) sameSetEarly(p *apram.P, x, y uint32) bool {
	u, v := x, y
	for {
		if u == v {
			return true
		}
		if s.less(v, u) {
			u, v = v, u
		}
		if s.loadParent(p, u) == u {
			return false
		}
		u = s.earlyStep(p, u)
	}
}

// earlyStep is the "do twice" block of Algorithms 6/7 under the configured
// find strategy.
func (s *Sim) earlyStep(p *apram.P, u uint32) uint32 {
	switch s.cfg.Find {
	case core.FindNaive:
		return s.loadParent(p, u)
	case core.FindOneTry, core.FindTwoTry:
		tries := 1
		if s.cfg.Find == core.FindTwoTry {
			tries = 2
		}
		var z uint32
		for t := 0; t < tries; t++ {
			z = s.loadParent(p, u)
			w := s.loadParent(p, z)
			if z == w {
				break
			}
			s.casParent(p, u, z, w)
		}
		return z
	default:
		panic("simdsu: early termination with unsupported find strategy")
	}
}

// Unite is Algorithm 3 (or 7 with early termination), run by process p.
// It reports whether this process performed the link.
func (s *Sim) Unite(p *apram.P, x, y uint32) bool {
	if s.cfg.EarlyTermination {
		return s.uniteEarly(p, x, y)
	}
	u, v := x, y
	for {
		u = s.Find(p, u)
		v = s.Find(p, v)
		if u == v {
			return false
		}
		lo, hi := u, v
		if s.less(hi, lo) {
			lo, hi = hi, lo
		}
		if s.casParent(p, lo, lo, hi) {
			return true
		}
	}
}

func (s *Sim) uniteEarly(p *apram.P, x, y uint32) bool {
	u, v := x, y
	for {
		if u == v {
			return false
		}
		if s.less(v, u) {
			u, v = v, u
		}
		if s.casParent(p, u, u, v) {
			return true
		}
		u = s.earlyStep(p, u)
	}
}

// ParentsFromMem decodes the parent array from machine memory (post-run).
func (s *Sim) ParentsFromMem(mem []uint64) []uint32 {
	out := make([]uint32, s.n)
	for i := 0; i < s.n; i++ {
		out[i] = uint32(mem[i])
	}
	return out
}
