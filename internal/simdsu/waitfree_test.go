package simdsu

import (
	"testing"

	"repro/internal/apram"
	"repro/internal/core"
	"repro/internal/forest"
	"repro/internal/sched"
	"repro/internal/workload"
)

// TestWaitFreedomStepBound quantifies Lemma 3.3: every individual SameSet
// or Unite finishes in O(h+1) of its own shared-memory steps, where h is
// the union-forest height — regardless of scheduling. We run under fair,
// stalling, and heavily skewed schedulers, measure every operation's exact
// step count, and assert it against c·(h+2) with a generous constant. A
// blocking (non-wait-free) implementation would show unbounded per-op
// steps under the stall scheduler.
func TestWaitFreedomStepBound(t *testing.T) {
	const (
		n     = 256
		m     = 1200
		procs = 6
		c     = 12 // constant for the O(h+1) bound; generous but finite
	)
	for _, find := range []core.Find{core.FindNaive, core.FindTwoTry} {
		for schedName, mk := range map[string]func() apram.Scheduler{
			"random":   func() apram.Scheduler { return sched.NewRandom(3) },
			"stall":    func() apram.Scheduler { return sched.NewStall(sched.NewRandom(4), 0, 1) },
			"weighted": func() apram.Scheduler { return sched.NewWeighted(5, []float64{64, 16, 4, 1, 0.25, 0.0625}) },
		} {
			find, mk := find, mk
			t.Run(find.String()+"/"+schedName, func(t *testing.T) {
				t.Parallel()
				s := New(n, core.Config{Find: find, Seed: 11})
				machine := apram.NewMachine(s.Words(), mk(), 10_000_000)
				s.Init(machine.Mem())
				checker := NewChecker(s)
				machine.SetObserver(checker.Observe)

				perProc := workload.SplitRoundRobin(workload.Mixed(n, m, 0.5, 21), procs)
				type opCost struct {
					op    workload.Op
					steps int64
				}
				costs := make([][]opCost, procs)
				for i := 0; i < procs; i++ {
					i := i
					ops := perProc[i]
					machine.AddProgram(func(p *apram.P) {
						for _, op := range ops {
							before := p.StepsTaken()
							s.apply(p, op)
							costs[i] = append(costs[i], opCost{op, p.StepsTaken() - before})
						}
					})
				}
				machine.Run()
				if err := checker.Err(); err != nil {
					t.Fatal(err)
				}
				h := forest.Height(checker.UnionParents())
				bound := int64(c * (h + 2))
				var worst int64
				for i := range costs {
					for _, oc := range costs[i] {
						if oc.steps > worst {
							worst = oc.steps
						}
						if oc.steps > bound {
							t.Fatalf("op %v took %d steps > bound %d (h=%d)", oc.op, oc.steps, bound, h)
						}
					}
				}
				if worst == 0 {
					t.Fatal("no operation took any step; workload broken")
				}
				t.Logf("union forest height %d; worst op %d steps; bound %d", h, worst, bound)
			})
		}
	}
}

// TestCrashSweepEveryPrefix injects a crash-stop at every possible point of
// a process's execution: the victim runs only its first k shared-memory
// steps of a Unite and then abandons it, for every k. The survivors'
// partition must equal the closure of the survivor unions plus whatever the
// victim managed to link, and all invariants must hold — there is no k at
// which a half-done operation can corrupt the structure.
func TestCrashSweepEveryPrefix(t *testing.T) {
	const n = 24
	survivors := workload.RandomUnions(n, 40, 31)
	// Establish the victim's total step count when run to completion.
	full := runCrashScenario(t, n, survivors, 1<<30)
	if full.victimSteps == 0 {
		t.Fatal("victim took no steps")
	}
	for k := int64(0); k <= full.victimSteps; k++ {
		res := runCrashScenario(t, n, survivors, k)
		// Survivor unions must always be present.
		for _, op := range survivors {
			if res.labels[op.X] != res.labels[op.Y] {
				t.Fatalf("crash at step %d: survivor union %v lost", k, op)
			}
		}
		// The victim's pair may or may not be united; both are legal. What
		// is illegal is any invariant violation, which runCrashScenario
		// already failed on.
	}
}

type crashResult struct {
	victimSteps int64
	labels      []uint32
}

// runCrashScenario runs 2 survivor processes plus a victim that executes
// Unite(0, n-1) but crash-stops after maxVictimSteps shared-memory steps
// (via the machine's step-limit fault injector).
func runCrashScenario(t *testing.T, n int, survivors []workload.Op, maxVictimSteps int64) crashResult {
	t.Helper()
	s := New(n, core.Config{Find: core.FindTwoTry, Seed: 77})
	machine := apram.NewMachine(s.Words(), sched.NewRandom(9), 10_000_000)
	s.Init(machine.Mem())
	checker := NewChecker(s)
	machine.SetObserver(checker.Observe)

	var victimSteps int64
	victim := machine.AddProgram(func(p *apram.P) {
		defer func() { victimSteps = p.StepsTaken() }() // runs even while crashing
		s.Unite(p, 0, uint32(n-1))
	})
	if maxVictimSteps < 1<<30 {
		machine.SetStepLimit(victim, maxVictimSteps)
	}
	for w, ops := range workload.SplitRoundRobin(survivors, 2) {
		_ = w
		ops := ops
		machine.AddProgram(func(p *apram.P) {
			for _, op := range ops {
				s.apply(p, op)
			}
		})
	}
	machine.Run()
	if err := checker.Err(); err != nil {
		t.Fatalf("crash at %d steps: %v", maxVictimSteps, err)
	}
	parents := s.ParentsFromMem(machine.Mem())
	return crashResult{victimSteps: victimSteps, labels: canonicalLabels(parents)}
}

func canonicalLabels(parent []uint32) []uint32 {
	n := len(parent)
	root := make([]uint32, n)
	for i := range root {
		x := uint32(i)
		for parent[x] != x {
			x = parent[x]
		}
		root[i] = x
	}
	minOf := make([]uint32, n)
	for i := range minOf {
		minOf[i] = ^uint32(0)
	}
	for i := 0; i < n; i++ {
		if r := root[i]; uint32(i) < minOf[r] {
			minOf[r] = uint32(i)
		}
	}
	labels := make([]uint32, n)
	for i := range labels {
		labels[i] = minOf[root[i]]
	}
	return labels
}
