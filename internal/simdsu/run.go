package simdsu

import (
	"fmt"

	"repro/internal/apram"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Options configures a simulator run.
type Options struct {
	// Scheduler orders the shared-memory steps; nil defaults to round-robin.
	Scheduler apram.Scheduler
	// MaxSteps bounds total steps (≤ 0: a generous default of 10⁹). The
	// machine panics past the bound, catching livelock.
	MaxSteps int64
	// Record captures an operation history for linearizability checking.
	Record bool
	// CheckInvariants installs the Lemma 3.1 checker on every step.
	CheckInvariants bool
	// Setup runs to completion on a dedicated single-process machine before
	// the measured phase; its steps are not counted in Result.Total.
	Setup []workload.Op
}

// Result reports a completed run.
type Result struct {
	// Answers[i][k] is the result of perProc[i][k]: for OpUnite whether the
	// process performed the link, for OpSameSet the membership answer.
	Answers [][]bool
	// History is the recorded operation history (nil unless Options.Record).
	History trace.History
	// Steps is the per-process shared-memory step count; Total their sum.
	Steps []int64
	Total int64
	// Parents is the final parent array.
	Parents []uint32
	// SetupSteps is the step count of the setup phase (excluded from Total).
	SetupSteps int64
}

// Run executes perProc[i] on process i under the given options and returns
// the outcome. The same Sim may be reused across runs; each run gets fresh
// memory initialized by Setup (if any) and Init.
func Run(s *Sim, perProc [][]workload.Op, opts Options) (Result, error) {
	if opts.Scheduler == nil {
		opts.Scheduler = sched.NewRoundRobin()
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 1_000_000_000
	}

	var res Result

	// Setup phase: single process, round-robin (the order is irrelevant for
	// one process), memory carried into the measured machine.
	mem := make([]uint64, s.Words())
	s.Init(mem)
	if len(opts.Setup) > 0 {
		sm := apram.NewMachine(s.Words(), sched.NewRoundRobin(), maxSteps)
		copy(sm.Mem(), mem)
		ops := opts.Setup
		sm.AddProgram(func(p *apram.P) {
			for _, op := range ops {
				s.apply(p, op)
			}
		})
		res.SetupSteps = sm.Run()
		copy(mem, sm.Mem())
	}

	m := apram.NewMachine(s.Words(), opts.Scheduler, maxSteps)
	copy(m.Mem(), mem)

	var checker *Checker
	if opts.CheckInvariants {
		checker = NewChecker(s)
		m.SetObserver(checker.Observe)
	}
	var rec *trace.Recorder
	if opts.Record {
		rec = trace.NewRecorder(len(perProc))
	}

	res.Answers = make([][]bool, len(perProc))
	for i, ops := range perProc {
		i, ops := i, ops
		res.Answers[i] = make([]bool, len(ops))
		m.AddProgram(func(p *apram.P) {
			for k, op := range ops {
				inv := p.Tick()
				ans := s.apply(p, op)
				res.Answers[i][k] = ans
				if rec != nil {
					rec.Record(i, trace.Event{
						Proc: i, Kind: op.Kind, X: op.X, Y: op.Y,
						Result: ans, Inv: inv, Resp: p.Tick(),
					})
				}
			}
		})
	}
	res.Total = m.Run()
	res.Steps = m.Steps()
	res.Parents = s.ParentsFromMem(m.Mem())
	if rec != nil {
		res.History = rec.History()
	}
	if checker != nil {
		if err := checker.Err(); err != nil {
			return res, err
		}
	}
	return res, nil
}

// apply executes one operation via process p.
func (s *Sim) apply(p *apram.P, op workload.Op) bool {
	switch op.Kind {
	case workload.OpUnite:
		return s.Unite(p, op.X, op.Y)
	case workload.OpSameSet:
		return s.SameSet(p, op.X, op.Y)
	default:
		panic(fmt.Sprintf("simdsu: unknown op kind %d", op.Kind))
	}
}
