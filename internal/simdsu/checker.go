package simdsu

import (
	"fmt"

	"repro/internal/apram"
)

// Checker validates the structural invariants of Lemma 3.1 on every single
// shared-memory step of a run:
//
//  1. a link (CAS swinging a root's self-pointer) targets a node of larger
//     id, and the linked node had never been linked before;
//  2. a compaction CAS replaces a node's parent with a proper ancestor of
//     that parent in the union forest (the forest formed by links alone);
//  3. algorithms never plain-Write shared memory after initialization.
//
// The checker maintains the union forest incrementally from observed links,
// so every check is exact at the step where it happens — a violation that a
// final-state check could miss (because later steps repair it) is caught.
type Checker struct {
	sim         *Sim
	unionParent []uint32
	violations  []string
}

// NewChecker returns a checker for runs of s.
func NewChecker(s *Sim) *Checker {
	up := make([]uint32, s.n)
	for i := range up {
		up[i] = uint32(i)
	}
	return &Checker{sim: s, unionParent: up}
}

// Observe is the apram.Observer; install with Machine.SetObserver.
func (c *Checker) Observe(st apram.Step) {
	switch st.Kind {
	case apram.OpRead:
		return
	case apram.OpWrite:
		c.addf("step %d: process %d issued a plain write to %d", st.Index, st.Proc, st.Addr)
		return
	}
	// CAS: only successful, value-changing ones mutate the structure.
	if !st.OK || st.Before == st.After {
		return
	}
	child := uint32(st.Addr)
	oldp := uint32(st.Before)
	newp := uint32(st.After)
	if oldp == child {
		// A link: child was a root making newp its parent.
		if c.unionParent[child] != child {
			c.addf("step %d: node %d linked twice", st.Index, child)
			return
		}
		if c.sim.id[child] >= c.sim.id[newp] {
			c.addf("step %d: link %d→%d violates id order (%d ≥ %d)",
				st.Index, child, newp, c.sim.id[child], c.sim.id[newp])
			return
		}
		if c.rootOf(newp) == child {
			c.addf("step %d: link %d→%d creates a union-forest cycle", st.Index, child, newp)
			return
		}
		c.unionParent[child] = newp
		return
	}
	// A compaction: new parent must be a proper union-forest ancestor of
	// the old parent.
	if !c.properAncestor(oldp, newp) {
		c.addf("step %d: compaction of %d moved parent %d to %d, not a proper ancestor",
			st.Index, child, oldp, newp)
	}
}

// rootOf walks the union forest to oldest ancestor.
func (c *Checker) rootOf(x uint32) uint32 {
	for c.unionParent[x] != x {
		x = c.unionParent[x]
	}
	return x
}

// properAncestor reports whether anc is a proper ancestor of x in the union
// forest.
func (c *Checker) properAncestor(x, anc uint32) bool {
	for c.unionParent[x] != x {
		x = c.unionParent[x]
		if x == anc {
			return true
		}
	}
	return false
}

// UnionParents returns the union forest accumulated so far (links only).
func (c *Checker) UnionParents() []uint32 {
	out := make([]uint32, len(c.unionParent))
	copy(out, c.unionParent)
	return out
}

func (c *Checker) addf(format string, args ...any) {
	if len(c.violations) < 16 { // cap memory; the first violation is what matters
		c.violations = append(c.violations, fmt.Sprintf(format, args...))
	}
}

// Err returns nil if no violation was observed, or an error describing the
// first violations.
func (c *Checker) Err() error {
	if len(c.violations) == 0 {
		return nil
	}
	return fmt.Errorf("simdsu: %d invariant violations, first: %s", len(c.violations), c.violations[0])
}
