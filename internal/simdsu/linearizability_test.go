package simdsu

import (
	"testing"

	"repro/internal/core"
	"repro/internal/linearize"
	"repro/internal/randutil"
	"repro/internal/sched"
	"repro/internal/workload"
)

// TestLinearizabilityUnderRandomSchedules is experiment E13: every variant,
// many random schedules, small dense histories, each checked exhaustively
// against the sequential specification (Lemma 3.2 / Theorem 3.4).
func TestLinearizabilityUnderRandomSchedules(t *testing.T) {
	const (
		n        = 8  // few elements → dense conflicts
		procs    = 3  //
		opsEach  = 4  // 12-op histories: cheap to check exhaustively
		schedUps = 40 // random schedules per variant
	)
	for _, cfg := range allConfigs() {
		cfg := cfg
		t.Run(cfgName(cfg), func(t *testing.T) {
			t.Parallel()
			for seed := uint64(0); seed < schedUps; seed++ {
				rng := randutil.NewXoshiro256(seed * 1000)
				perProc := make([][]workload.Op, procs)
				for i := range perProc {
					perProc[i] = workload.Mixed(n, opsEach, 0.6, rng.Next())
				}
				res, err := Run(New(n, cfg), perProc, Options{
					Scheduler:       sched.NewRandom(seed),
					Record:          true,
					CheckInvariants: true,
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if _, err := linearize.Check(n, res.History); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

// TestLinearizabilityUnderAdversarialSchedules repeats E13 under stalling
// and heavily skewed schedulers, which produce the long-pause interleavings
// where linearization-point bugs hide.
func TestLinearizabilityUnderAdversarialSchedules(t *testing.T) {
	const n, procs, opsEach = 6, 3, 4
	variants := []core.Config{
		{Find: core.FindTwoTry, Seed: 5},
		{Find: core.FindOneTry, Seed: 5},
		{Find: core.FindTwoTry, EarlyTermination: true, Seed: 5},
	}
	for _, cfg := range variants {
		cfg := cfg
		t.Run(cfgName(cfg), func(t *testing.T) {
			t.Parallel()
			for seed := uint64(0); seed < 25; seed++ {
				rng := randutil.NewXoshiro256(seed)
				perProc := make([][]workload.Op, procs)
				for i := range perProc {
					perProc[i] = workload.Mixed(n, opsEach, 0.7, rng.Next())
				}
				for name, s := range map[string]Options{
					"stall":    {Scheduler: sched.NewStall(sched.NewRandom(seed), int(seed%procs)), Record: true, CheckInvariants: true},
					"weighted": {Scheduler: sched.NewWeighted(seed, []float64{100, 1, 0.01}), Record: true, CheckInvariants: true},
				} {
					res, err := Run(New(n, cfg), perProc, s)
					if err != nil {
						t.Fatalf("%s seed %d: %v", name, seed, err)
					}
					if _, err := linearize.Check(n, res.History); err != nil {
						t.Fatalf("%s seed %d: %v", name, seed, err)
					}
				}
			}
		})
	}
}
