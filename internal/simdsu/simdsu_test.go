package simdsu

import (
	"testing"

	"repro/internal/apram"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/seqdsu"
	"repro/internal/workload"
)

func allConfigs() []core.Config {
	finds := []core.Find{core.FindNaive, core.FindOneTry, core.FindTwoTry, core.FindHalving, core.FindCompress}
	var cfgs []core.Config
	for _, f := range finds {
		cfgs = append(cfgs, core.Config{Find: f, Seed: 5})
	}
	for _, f := range []core.Find{core.FindNaive, core.FindOneTry, core.FindTwoTry} {
		cfgs = append(cfgs, core.Config{Find: f, EarlyTermination: true, Seed: 5})
	}
	return cfgs
}

func cfgName(c core.Config) string {
	name := c.Find.String()
	if c.EarlyTermination {
		name += "+early"
	}
	return name
}

func TestSingleProcessMatchesSpec(t *testing.T) {
	for _, cfg := range allConfigs() {
		cfg := cfg
		t.Run(cfgName(cfg), func(t *testing.T) {
			const n = 40
			s := New(n, cfg)
			ops := workload.Mixed(n, 150, 0.5, 3)
			res, err := Run(s, [][]workload.Op{ops}, Options{CheckInvariants: true})
			if err != nil {
				t.Fatal(err)
			}
			spec := seqdsu.NewSpec(n)
			for k, op := range ops {
				var want bool
				switch op.Kind {
				case workload.OpUnite:
					want = spec.Unite(op.X, op.Y)
				case workload.OpSameSet:
					want = spec.SameSet(op.X, op.Y)
				}
				if res.Answers[0][k] != want {
					t.Fatalf("op %d (%v): got %v, want %v", k, op, res.Answers[0][k], want)
				}
			}
			got := seqdsu.CanonicalizeParents(res.Parents)
			for i, want := range spec.Labels() {
				if got[i] != want {
					t.Fatalf("final partition differs at %d", i)
				}
			}
		})
	}
}

func TestConcurrentClosureAndInvariants(t *testing.T) {
	for _, cfg := range allConfigs() {
		cfg := cfg
		t.Run(cfgName(cfg), func(t *testing.T) {
			const n, p = 64, 4
			unions := workload.RandomUnions(n, 160, 7)
			perProc := workload.SplitRoundRobin(unions, p)
			res, err := Run(New(n, cfg), perProc, Options{
				Scheduler:       sched.NewRandom(11),
				CheckInvariants: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			spec := seqdsu.NewSpec(n)
			for _, op := range unions {
				spec.Unite(op.X, op.Y)
			}
			got := seqdsu.CanonicalizeParents(res.Parents)
			for i, want := range spec.Labels() {
				if got[i] != want {
					t.Fatalf("partition differs at %d", i)
				}
			}
			if res.Total <= 0 || len(res.Steps) != p {
				t.Fatalf("bad step accounting: total=%d steps=%v", res.Total, res.Steps)
			}
		})
	}
}

func TestDeterministicReplay(t *testing.T) {
	const n, p = 32, 3
	cfg := core.Config{Find: core.FindTwoTry, Seed: 9}
	ops := workload.Mixed(n, 60, 0.6, 2)
	perProc := workload.SplitRoundRobin(ops, p)
	run := func() Result {
		res, err := Run(New(n, cfg), perProc, Options{Scheduler: sched.NewRandom(42)})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Total != b.Total {
		t.Fatalf("totals differ: %d vs %d", a.Total, b.Total)
	}
	for i := range a.Parents {
		if a.Parents[i] != b.Parents[i] {
			t.Fatalf("parents differ at %d", i)
		}
	}
	for i := range a.Answers {
		for k := range a.Answers[i] {
			if a.Answers[i][k] != b.Answers[i][k] {
				t.Fatalf("answers differ at proc %d op %d", i, k)
			}
		}
	}
}

func TestSetupPhase(t *testing.T) {
	const n = 32
	s := New(n, core.Config{Seed: 1})
	// Setup unites everything; measured phase only queries.
	queries := []workload.Op{{Kind: workload.OpSameSet, X: 0, Y: n - 1}}
	res, err := Run(s, [][]workload.Op{queries}, Options{Setup: workload.Chain(n)})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answers[0][0] {
		t.Fatal("setup unions not visible in measured phase")
	}
	if res.SetupSteps <= 0 {
		t.Fatal("setup steps not counted")
	}
	if res.Total >= res.SetupSteps {
		t.Fatalf("measured phase (%d steps) should be far cheaper than setup (%d)", res.Total, res.SetupSteps)
	}
}

// TestHalvingSimulatesSplitting reproduces the Section 3 construction (E8):
// on a path with ids increasing along it, two processes doing halving from
// consecutive path nodes in lockstep leave exactly the forest one process
// doing splitting leaves — pointer update for pointer update.
func TestHalvingSimulatesSplitting(t *testing.T) {
	for _, k := range []int{8, 16, 64, 256, 1024} {
		// Identity order: ids increase along the path 0→1→…→k−1.
		order := make([]uint32, k)
		for i := range order {
			order[i] = uint32(i)
		}
		path := func(mem []uint64) {
			for i := 0; i < k-1; i++ {
				mem[i] = uint64(i + 1)
			}
			mem[k-1] = uint64(k - 1)
		}

		// One process, splitting (one-try ≡ sequential splitting alone).
		split := NewWithOrder(core.Config{Find: core.FindOneTry}, order)
		m1 := apram.NewMachine(k, sched.NewRoundRobin(), int64(100*k))
		path(m1.Mem())
		m1.AddProgram(func(p *apram.P) { split.Find(p, 0) })
		m1.Run()

		// Two processes, halving, lockstep, starting at nodes 0 and 1.
		halve := NewWithOrder(core.Config{Find: core.FindHalving}, order)
		m2 := apram.NewMachine(k, sched.NewLockstep(), int64(100*k))
		path(m2.Mem())
		m2.AddProgram(func(p *apram.P) { halve.Find(p, 0) })
		m2.AddProgram(func(p *apram.P) { halve.Find(p, 1) })
		m2.Run()

		for i := 0; i < k; i++ {
			if m1.Mem()[i] != m2.Mem()[i] {
				t.Fatalf("k=%d: node %d parent differs: splitting %d, lockstep halving %d",
					k, i, m1.Mem()[i], m2.Mem()[i])
			}
		}
	}
}

// TestAbandonedOperationHarmless injects a crash-stop failure: a process
// abandons a Unite halfway (after its finds, before its CAS could ever be
// retried). The survivors must still produce the correct partition and all
// invariants must hold — the guts of wait-freedom (T2/E14).
func TestAbandonedOperationHarmless(t *testing.T) {
	const n = 48
	cfg := core.Config{Find: core.FindTwoTry, Seed: 13}
	s := New(n, cfg)
	m := apram.NewMachine(s.Words(), sched.NewRandom(3), 1_000_000)
	s.Init(m.Mem())
	checker := NewChecker(s)
	m.SetObserver(checker.Observe)

	// Process 0 "crashes": it walks to the two roots and stops, holding no
	// state anyone could wait on.
	m.AddProgram(func(p *apram.P) {
		s.Find(p, 0)
		s.Find(p, n-1)
		// abandoned here
	})
	unions := workload.RandomUnions(n, 100, 17)
	for w, ops := range workload.SplitRoundRobin(unions, 3) {
		_ = w
		ops := ops
		m.AddProgram(func(p *apram.P) {
			for _, op := range ops {
				s.apply(p, op)
			}
		})
	}
	m.Run()
	if err := checker.Err(); err != nil {
		t.Fatal(err)
	}
	spec := seqdsu.NewSpec(n)
	for _, op := range unions {
		spec.Unite(op.X, op.Y)
	}
	got := seqdsu.CanonicalizeParents(s.ParentsFromMem(m.Mem()))
	for i, want := range spec.Labels() {
		if got[i] != want {
			t.Fatalf("partition differs at %d after abandoned op", i)
		}
	}
}

// TestStalledProcessDoesNotBlockOthers runs with an adversarial scheduler
// that starves one process while others have work: all operations still
// complete within the step bound (wait-freedom under adversarial timing).
func TestStalledProcessDoesNotBlockOthers(t *testing.T) {
	const n, p = 64, 4
	ops := workload.RandomUnions(n, 120, 23)
	perProc := workload.SplitRoundRobin(ops, p)
	res, err := Run(New(n, core.Config{Seed: 3}), perProc, Options{
		Scheduler:       sched.NewStall(sched.NewRandom(7), 0),
		MaxSteps:        2_000_000,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The starved process ran last but still finished all its ops.
	if got, want := len(res.Answers[0]), len(perProc[0]); got != want {
		t.Fatalf("stalled process completed %d/%d ops", got, want)
	}
}

func TestCheckerCatchesViolations(t *testing.T) {
	s := New(4, core.Config{Seed: 1})
	t.Run("plain write", func(t *testing.T) {
		c := NewChecker(s)
		c.Observe(apram.Step{Kind: apram.OpWrite, Addr: 1, After: 2})
		if c.Err() == nil {
			t.Fatal("write not flagged")
		}
	})
	t.Run("id order violation", func(t *testing.T) {
		c := NewChecker(s)
		// Find the element with the largest id and "link" it to another.
		var big, small uint32
		for x := uint32(0); x < 4; x++ {
			if s.ID(x) > s.ID(big) {
				big = x
			}
			if s.ID(x) < s.ID(small) {
				small = x
			}
		}
		c.Observe(apram.Step{Kind: apram.OpCAS, OK: true, Addr: int(big), Before: uint64(big), After: uint64(small)})
		if c.Err() == nil {
			t.Fatal("id-order violation not flagged")
		}
	})
	t.Run("bogus compaction", func(t *testing.T) {
		c := NewChecker(s)
		// No links yet, so no node has any proper ancestor: any compaction
		// CAS is illegal.
		c.Observe(apram.Step{Kind: apram.OpCAS, OK: true, Addr: 0, Before: 1, After: 2})
		if c.Err() == nil {
			t.Fatal("bogus compaction not flagged")
		}
	})
	t.Run("double link", func(t *testing.T) {
		c := NewChecker(s)
		var lo, mid, hi uint32
		type pair struct {
			x  uint32
			id uint32
		}
		var ps []pair
		for x := uint32(0); x < 4; x++ {
			ps = append(ps, pair{x, s.ID(x)})
		}
		for _, a := range ps {
			if a.id == 0 {
				lo = a.x
			}
			if a.id == 1 {
				mid = a.x
			}
			if a.id == 2 {
				hi = a.x
			}
		}
		c.Observe(apram.Step{Kind: apram.OpCAS, OK: true, Addr: int(lo), Before: uint64(lo), After: uint64(mid)})
		if c.Err() != nil {
			t.Fatalf("legal link flagged: %v", c.Err())
		}
		// lo is no longer a root in the union forest; linking it again is
		// the "linked twice" violation.
		c.Observe(apram.Step{Kind: apram.OpCAS, OK: true, Addr: int(lo), Before: uint64(lo), After: uint64(hi)})
		if c.Err() == nil {
			t.Fatal("double link not flagged")
		}
	})
}

func TestNewWithOrderValidates(t *testing.T) {
	for _, bad := range [][]uint32{{0, 0}, {1, 2}, {2, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("order %v accepted", bad)
				}
			}()
			NewWithOrder(core.Config{}, bad)
		}()
	}
	s := NewWithOrder(core.Config{}, []uint32{2, 0, 1})
	if s.ID(0) != 2 || s.ID(1) != 0 || s.ID(2) != 1 {
		t.Fatal("explicit order not installed")
	}
}

func TestNewPanics(t *testing.T) {
	cases := []func(){
		func() { New(-1, core.Config{}) },
		func() { New(1, core.Config{Find: core.Find(77)}) },
		func() { New(1, core.Config{Find: core.FindHalving, EarlyTermination: true}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestRandomOrderIsSeedDeterministic(t *testing.T) {
	a := New(16, core.Config{Seed: 4})
	b := New(16, core.Config{Seed: 4})
	for x := uint32(0); x < 16; x++ {
		if a.ID(x) != b.ID(x) {
			t.Fatal("same seed, different order")
		}
	}
}
