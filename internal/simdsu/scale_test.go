package simdsu

import (
	"testing"

	"repro/internal/core"
	"repro/internal/linearize"
	"repro/internal/sched"
	"repro/internal/seqdsu"
	"repro/internal/workload"
)

// TestInvariantsAtScale pushes the per-step checker through a run an order
// of magnitude larger than the quick tests: n=1024, m=16384, p=16, every
// variant, random scheduling. Skipped under -short.
func TestInvariantsAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short")
	}
	const n, m, p = 1024, 16384, 16
	for _, cfg := range allConfigs() {
		cfg := cfg
		t.Run(cfgName(cfg), func(t *testing.T) {
			t.Parallel()
			ops := workload.Mixed(n, m, 0.5, 101)
			res, err := Run(New(n, cfg), workload.SplitRoundRobin(ops, p), Options{
				Scheduler:       sched.NewRandom(7),
				MaxSteps:        50_000_000,
				CheckInvariants: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			spec := seqdsu.NewSpec(n)
			for _, op := range ops {
				if op.Kind == workload.OpUnite {
					spec.Unite(op.X, op.Y)
				}
			}
			got := seqdsu.CanonicalizeParents(res.Parents)
			for i, want := range spec.Labels() {
				if got[i] != want {
					t.Fatalf("partition differs at %d", i)
				}
			}
			// Work balance: with a fair random scheduler and a round-robin
			// op split, no process should do the lion's share of steps.
			var max, total int64
			for _, s := range res.Steps {
				total += s
				if s > max {
					max = s
				}
			}
			if max*2 > total {
				t.Fatalf("one process did %d of %d steps: starvation artefact", max, total)
			}
		})
	}
}

// TestLinearizabilityWiderHistories checks 16-op histories (4 procs × 4
// ops), the checker's comfortable upper range, across the core variants.
// Skipped under -short.
func TestLinearizabilityWiderHistories(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short")
	}
	const n, procs, opsEach = 10, 4, 4
	for _, find := range []core.Find{core.FindOneTry, core.FindTwoTry} {
		find := find
		t.Run(find.String(), func(t *testing.T) {
			t.Parallel()
			for seed := uint64(0); seed < 60; seed++ {
				perProc := make([][]workload.Op, procs)
				for i := range perProc {
					perProc[i] = workload.Mixed(n, opsEach, 0.6, seed*31+uint64(i))
				}
				res, err := Run(New(n, core.Config{Find: find, Seed: seed}), perProc, Options{
					Scheduler:       sched.NewRandom(seed),
					Record:          true,
					CheckInvariants: true,
				})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if _, err := linearize.Check(n, res.History); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}
