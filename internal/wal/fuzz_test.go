package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/exec"
)

// FuzzWALDecode throws arbitrary bytes at both open paths and every
// read surface. The contract under fuzz: never panic, never index out
// of range, and on success never hand back an edge outside the header's
// universe — exactly the guarantees recovery leans on when a crash (or
// a hostile disk) leaves garbage in a log file.
func FuzzWALDecode(f *testing.F) {
	// Seed with real logs: sealed, torn mid-chunk, and headers-only, so
	// the fuzzer starts from structurally meaningful corpora.
	dir := f.TempDir()
	meta := Meta{Tenant: "fuzz", N: 64, Kind: 3, Find: 1, Seed: 7}
	path := filepath.Join(dir, "seed.dsulog")
	w, _, err := Open(path, meta, Options{})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := w.Append([]exec.Edge{{X: uint32(i), Y: uint32(i + 1)}, {X: 0, Y: uint32(i)}}); err != nil {
			f.Fatal(err)
		}
	}
	if _, err := w.WriteSnapshot(meta.Kind, make([]uint32, 64)); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	sealed, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sealed)
	f.Add(sealed[:len(sealed)-40])
	f.Add(sealed[:30])
	f.Add([]byte{})
	f.Add(magic[:])

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, open := range []func([]byte) (*Reader, error){NewReader, ScanReader} {
			r, err := open(data)
			if err != nil {
				continue
			}
			if r.DataEnd() < 0 || r.DataEnd() > int64(len(data)) {
				t.Fatalf("DataEnd %d outside [0,%d]", r.DataEnd(), len(data))
			}
			if r.Discarded() < 0 {
				t.Fatalf("negative Discarded %d", r.Discarded())
			}
			n := r.Meta().N
			var prev uint64
			for _, c := range r.Chunks() {
				if c.FirstSeq != prev+1 {
					t.Fatalf("chunk index out of sequence: %d after %d", c.FirstSeq, prev)
				}
				prev = c.LastSeq
				err := r.ReadChunk(c, func(seq uint64, edges []exec.Edge) error {
					for _, e := range edges {
						if int(e.X) >= n || int(e.Y) >= n {
							t.Fatalf("edge (%d,%d) outside universe %d", e.X, e.Y, n)
						}
					}
					return nil
				})
				if err != nil && r.Clean() && bytes.Equal(data, sealed) {
					t.Fatalf("sealed seed chunk unreadable: %v", err)
				}
			}
			for _, s := range r.Snapshots() {
				if sr, err := r.ReadSnapshot(s); err == nil {
					if len(sr.Parents) != n {
						t.Fatalf("snapshot of %d parents in universe %d", len(sr.Parents), n)
					}
				}
			}
			_ = r.Replay(0, r.LastSeq(), func(uint64, []exec.Edge) error { return nil })
		}
	})
}
