package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/exec"
)

// Reader is the decode side of one tenant's log, backed by the file's
// bytes in memory. Opening never trusts more than it verifies: the fast
// path accepts only a log whose footer, summary, and header all
// CRC-check and whose indexes are in bounds, and anything else falls
// back to a full forward scan that keeps the longest valid record
// prefix. Reads of chunk and snapshot bodies re-verify their record CRC
// at access time, so even a lying index cannot smuggle corrupt bytes
// into a replay.
type Reader struct {
	data      []byte
	meta      Meta
	chunks    []ChunkInfo
	snaps     []SnapshotInfo
	lastSeq   uint64
	dataEnd   int64
	discarded int64
	clean     bool
}

// OpenReader reads the log at path: footer fast path when the file is
// cleanly sealed, full scan otherwise.
func OpenReader(path string) (*Reader, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return NewReader(data)
}

// NewReader opens a log held in memory: the footer fast path when data
// is cleanly sealed and every index checks out, a full scan otherwise.
func NewReader(data []byte) (*Reader, error) {
	if r, ok := readerViaFooter(data); ok {
		return r, nil
	}
	return ScanReader(data)
}

// ScanReader opens a log by unconditional forward scan, ignoring any
// footer: every record is CRC-verified and structurally validated in
// order, scanning stops at the first invalid byte, and the remainder is
// reported as the discarded tail. This is the recovery path after a
// crash and the ground truth `dsulog verify` compares the footer's
// indexes against.
func ScanReader(data []byte) (*Reader, error) {
	if len(data) < 8 || !bytes.Equal(data[:8], magic[:]) {
		return nil, ErrNotALog
	}
	op, body, next, ok := readRecord(data, 8)
	if !ok || op != opHeader {
		return nil, errors.New("wal: missing or corrupt header record")
	}
	meta, err := parseHeader(body)
	if err != nil {
		return nil, err
	}
	r := &Reader{data: data, meta: meta, dataEnd: int64(next)}
	pos := next
	var scratch []exec.Edge
	footerEnd := -1
scan:
	for pos < len(data) {
		if len(data)-pos == 8 && footerEnd == pos && bytes.Equal(data[pos:], tailMagic[:]) {
			// A cleanly sealed log: the remainder is exactly the tail
			// magic right after a footer record. Not a record — consume it.
			r.clean = true
			pos = len(data)
			break
		}
		op, body, next, ok := readRecord(data, pos)
		if !ok {
			break
		}
		switch op {
		case opChunk:
			first, last, edges, serr := validateChunkBody(body, meta.N, r.lastSeq, &scratch)
			if serr != nil {
				break scan
			}
			r.chunks = append(r.chunks, ChunkInfo{Offset: int64(pos), FirstSeq: first, LastSeq: last, Edges: edges})
			r.lastSeq = last
			r.dataEnd = int64(next)
		case opSnapshot:
			sr, serr := parseSnapshot(body, meta.N)
			if serr != nil || sr.Seq != r.lastSeq || sr.Fingerprint != meta.Fingerprint() {
				// A snapshot that does not cover exactly the sequences
				// before it would re-order history on replay.
				break scan
			}
			r.snaps = append(r.snaps, SnapshotInfo{Offset: int64(pos), Seq: sr.Seq})
			r.dataEnd = int64(next)
		case opSummary:
			// A stale index (writer died between sealing attempts): skip
			// it without extending the data prefix; the scan's own indexes
			// are authoritative.
		case opFooter:
			if len(body) != 16 {
				break scan
			}
			footerEnd = next
		default:
			break scan
		}
		pos = next
	}
	if !r.clean {
		// Everything past the valid data prefix is dropped on resume —
		// torn records and any stale seal alike.
		r.discarded = int64(len(data)) - r.dataEnd
	}
	return r, nil
}

// readerViaFooter attempts the seek-only open of a cleanly sealed log.
// ok is false whenever anything fails to verify; the caller falls back
// to the scan.
func readerViaFooter(data []byte) (*Reader, bool) {
	const tailLen = recordOverhead + 16 + 8 // footer record + tail magic
	if len(data) < 8+tailLen || !bytes.Equal(data[:8], magic[:]) {
		return nil, false
	}
	if !bytes.Equal(data[len(data)-8:], tailMagic[:]) {
		return nil, false
	}
	op, body, next, ok := readRecord(data, len(data)-tailLen)
	if !ok || op != opFooter || next != len(data)-8 || len(body) != 16 {
		return nil, false
	}
	summaryOff := int64(binary.BigEndian.Uint64(body[0:8]))
	dataEnd := int64(binary.BigEndian.Uint64(body[8:16]))
	if dataEnd < 8 || summaryOff < dataEnd || summaryOff >= int64(len(data)-tailLen) {
		return nil, false
	}
	op, sbody, snext, ok := readRecord(data, int(summaryOff))
	if !ok || op != opSummary || snext != len(data)-tailLen {
		return nil, false
	}
	chunks, snaps, err := parseSummary(sbody)
	if err != nil {
		return nil, false
	}
	op, hbody, _, ok := readRecord(data, 8)
	if !ok || op != opHeader {
		return nil, false
	}
	meta, err := parseHeader(hbody)
	if err != nil {
		return nil, false
	}
	var last uint64
	for _, c := range chunks {
		if c.Offset < 8 || c.Offset >= dataEnd || c.FirstSeq != last+1 || c.LastSeq < c.FirstSeq || c.Edges < 1 {
			return nil, false
		}
		last = c.LastSeq
	}
	for _, s := range snaps {
		if s.Offset < 8 || s.Offset >= dataEnd || s.Seq > last {
			return nil, false
		}
	}
	return &Reader{
		data:    data,
		meta:    meta,
		chunks:  chunks,
		snaps:   snaps,
		lastSeq: last,
		dataEnd: dataEnd,
		clean:   true,
	}, true
}

// Meta returns the configuration recorded in the log's header.
func (r *Reader) Meta() Meta { return r.meta }

// Chunks returns the chunk index in file order (which is sequence
// order). The slice is the reader's own; don't mutate it.
func (r *Reader) Chunks() []ChunkInfo { return r.chunks }

// Snapshots returns the snapshot index in file order (ascending Seq).
func (r *Reader) Snapshots() []SnapshotInfo { return r.snaps }

// LastSeq returns the highest batch sequence in the valid prefix; 0
// when the log holds no batches.
func (r *Reader) LastSeq() uint64 { return r.lastSeq }

// DataEnd returns the byte length of the valid data prefix — where a
// resuming writer truncates to and appends from. Summary and footer
// records are not data: a sealed log's DataEnd points at its summary.
func (r *Reader) DataEnd() int64 { return r.dataEnd }

// Discarded returns how many bytes past the valid data prefix recovery
// drops — torn or corrupt tail records and any stale seal; 0 for a
// cleanly sealed log or one that ends exactly on a record boundary.
func (r *Reader) Discarded() int64 { return r.discarded }

// Clean reports whether the log was cleanly sealed (summary + footer +
// tail magic all verified).
func (r *Reader) Clean() bool { return r.clean }

// ReadChunk re-verifies the chunk record at c and streams its member
// batches to fn in sequence order. The edge slice passed to fn is
// scratch, valid only during the call.
func (r *Reader) ReadChunk(c ChunkInfo, fn func(seq uint64, edges []exec.Edge) error) error {
	op, body, _, ok := readRecord(r.data, int(c.Offset))
	if !ok || op != opChunk {
		return fmt.Errorf("wal: no valid chunk record at offset %d", c.Offset)
	}
	var scratch []exec.Edge
	return iterChunkBody(body, r.meta.N, &scratch, fn)
}

// ReadSnapshot re-verifies and decodes the snapshot record at s.
func (r *Reader) ReadSnapshot(s SnapshotInfo) (SnapshotRecord, error) {
	op, body, _, ok := readRecord(r.data, int(s.Offset))
	if !ok || op != opSnapshot {
		return SnapshotRecord{}, fmt.Errorf("wal: no valid snapshot record at offset %d", s.Offset)
	}
	return parseSnapshot(body, r.meta.N)
}

// LatestSnapshotAt returns the most recent snapshot covering no batch
// past seq, and whether one exists. This is the recovery starting
// point: restore it, then replay (snapshot.Seq, seq].
func (r *Reader) LatestSnapshotAt(seq uint64) (SnapshotInfo, bool) {
	for i := len(r.snaps) - 1; i >= 0; i-- {
		if r.snaps[i].Seq <= seq {
			return r.snaps[i], true
		}
	}
	return SnapshotInfo{}, false
}

// Replay streams every batch with sequence in (after, upTo] to fn in
// sequence order — the tail replay of recovery (after = snapshot
// sequence, upTo = LastSeq) and the bounded replay of rewind. The edge
// slice passed to fn is scratch, valid only during the call.
func (r *Reader) Replay(after, upTo uint64, fn func(seq uint64, edges []exec.Edge) error) error {
	var scratch []exec.Edge
	for _, c := range r.chunks {
		if c.LastSeq <= after {
			continue
		}
		if c.FirstSeq > upTo {
			break
		}
		op, body, _, ok := readRecord(r.data, int(c.Offset))
		if !ok || op != opChunk {
			return fmt.Errorf("wal: no valid chunk record at offset %d", c.Offset)
		}
		err := iterChunkBody(body, r.meta.N, &scratch, func(seq uint64, edges []exec.Edge) error {
			if seq <= after || seq > upTo {
				return nil
			}
			return fn(seq, edges)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// validateChunkBody structurally validates one chunk body during the
// scan: header consistent, frames contiguous from the previous chunk's
// last sequence, every endpoint in range, edge total exact.
func validateChunkBody(body []byte, n int, prevLast uint64, scratch *[]exec.Edge) (first, last uint64, edges int, err error) {
	if err := iterChunkBody(body, n, scratch, nil); err != nil {
		return 0, 0, 0, err
	}
	first = binary.BigEndian.Uint64(body[0:8])
	last = binary.BigEndian.Uint64(body[8:16])
	if first != prevLast+1 {
		return 0, 0, 0, fmt.Errorf("wal: chunk starts at sequence %d, expected %d", first, prevLast+1)
	}
	return first, last, int(binary.BigEndian.Uint32(body[16:20])), nil
}

// iterChunkBody walks a chunk body's frames, validating structure as it
// goes and (when fn is non-nil) delivering each batch. scratch is the
// caller's reusable edge buffer, grown in place.
func iterChunkBody(body []byte, n int, scratch *[]exec.Edge, fn func(seq uint64, edges []exec.Edge) error) error {
	if len(body) < chunkHeaderLen {
		return errors.New("wal: short chunk record")
	}
	first := binary.BigEndian.Uint64(body[0:8])
	last := binary.BigEndian.Uint64(body[8:16])
	total := int(binary.BigEndian.Uint32(body[16:20]))
	if first < 1 || last < first {
		return errors.New("wal: chunk sequence bounds inconsistent")
	}
	pos := chunkHeaderLen
	prev := first - 1
	seen := 0
	for pos < len(body) {
		if len(body)-pos < frameOverhead {
			return errors.New("wal: torn frame in chunk")
		}
		seq := binary.BigEndian.Uint64(body[pos:])
		count := int(binary.BigEndian.Uint32(body[pos+8:]))
		pos += frameOverhead
		if seq != prev+1 || seq > last {
			return errors.New("wal: chunk frames out of sequence")
		}
		prev = seq
		if count < 1 || count > (len(body)-pos)/8 {
			return errors.New("wal: chunk frame edge count inconsistent")
		}
		if cap(*scratch) < count {
			*scratch = make([]exec.Edge, count)
		}
		edges := (*scratch)[:count]
		for i := 0; i < count; i++ {
			x := binary.BigEndian.Uint32(body[pos:])
			y := binary.BigEndian.Uint32(body[pos+4:])
			pos += 8
			// Bounds are re-checked here even though appended batches were
			// validated at the wire boundary: replay bypasses the DTO
			// layer, and a corrupt-but-CRC-colliding record must still not
			// index out of range.
			if int64(x) >= int64(n) || int64(y) >= int64(n) {
				return fmt.Errorf("wal: edge (%d,%d) outside universe of %d", x, y, n)
			}
			edges[i] = exec.Edge{X: x, Y: y}
		}
		seen += count
		if fn != nil {
			if err := fn(seq, edges); err != nil {
				return err
			}
		}
	}
	if prev != last || seen != total {
		return errors.New("wal: chunk index disagrees with its frames")
	}
	return nil
}

// ReadMeta reads just the magic and header of the log at path — enough
// for tenant discovery without loading the chunks.
func ReadMeta(path string) (Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return Meta{}, err
	}
	defer f.Close()
	// Magic + framed header record; the header body is bounded by the
	// fixed fields plus maxNameLen.
	buf := make([]byte, 8+recordOverhead+64+maxNameLen)
	nr, err := io.ReadFull(f, buf)
	if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) {
		return Meta{}, err
	}
	buf = buf[:nr]
	if len(buf) < 8 || !bytes.Equal(buf[:8], magic[:]) {
		return Meta{}, ErrNotALog
	}
	op, body, _, ok := readRecord(buf, 8)
	if !ok || op != opHeader {
		return Meta{}, errors.New("wal: missing or corrupt header record")
	}
	return parseHeader(body)
}
