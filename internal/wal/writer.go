package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/bufpool"
	"repro/internal/exec"
)

// SyncPolicy selects when Append's durability point is reached.
type SyncPolicy uint8

const (
	// SyncGroup (the default) fsyncs once per flushed chunk: concurrent
	// appenders coalesce into one write and share one fsync, the
	// group-commit discipline of the wire layer's FlushWriter.
	SyncGroup SyncPolicy = iota
	// SyncNone never fsyncs on append (only at snapshot and close) —
	// crash durability is whatever the OS got around to writing.
	SyncNone
	// SyncAlways fsyncs every batch before Append returns, fully
	// serializing appenders. The strongest and slowest policy.
	SyncAlways
)

// String names the policy as the dsuserve -fsync flag spells it.
func (p SyncPolicy) String() string {
	switch p {
	case SyncGroup:
		return "group"
	case SyncNone:
		return "none"
	case SyncAlways:
		return "always"
	}
	return fmt.Sprintf("SyncPolicy(%d)", uint8(p))
}

// Options tunes a Writer. The zero value is ready to use: group-commit
// fsync, checkpoints only on demand.
type Options struct {
	// Sync is the append durability policy.
	Sync SyncPolicy
	// CheckpointEvery asks CheckpointDue to report true after this many
	// logged edges since the last snapshot; 0 disables the automatic
	// trigger (checkpoints still happen on demand).
	CheckpointEvery int64
}

// Writer is the append side of one tenant's log. Append assigns the
// batch its sequence number and returns once the batch is durable per
// the sync policy; WriteSnapshot records a checkpoint at quiescence;
// Close seals the log with a summary index and footer so the next open
// seeks instead of scanning.
//
// Append is safe for concurrent use. Under SyncGroup and SyncNone,
// concurrent appends coalesce: each appender encodes its frame into the
// pending buffer under the lock and parks until the flusher goroutine
// has written (and, under SyncGroup, fsynced) a chunk covering its
// sequence — one write and one fsync amortized over every parked
// appender, the FlushWriter discipline applied to durability.
//
// Any write failure poisons the writer: the partial record is truncated
// away so the on-disk prefix stays scannable, the error is latched, and
// every subsequent Append fails with it. A log that cannot promise
// durability must not keep acknowledging batches.
type Writer struct {
	f    *os.File
	path string
	meta Meta
	opt  Options

	mu        sync.Mutex
	flushed   sync.Cond // broadcast when committed or err advances
	pend      []byte    // encoded frames awaiting the flusher
	spare     []byte    // double buffer: swapped with pend at flush
	pendFirst uint64    // first sequence in pend (valid when pend non-empty)
	pendLast  uint64
	pendEdges int
	nextSeq   uint64 // next sequence to assign
	committed uint64 // highest durable sequence
	writing   bool   // flusher holds a taken group outside the lock
	closed    bool
	err       error // latched first failure; poisons all later appends

	offset int64 // durable data length: where the next record lands
	chunks []ChunkInfo
	snaps  []SnapshotInfo

	edgesSinceSnap atomic.Int64

	dirty chan struct{} // capacity 1: nudges the flusher
	quit  chan struct{}
	done  chan struct{}
}

// Open opens (or creates) the log at path for meta's configuration. A
// fresh file is stamped with the magic and header and returns a nil
// Reader. An existing file is recovered first: the longest valid record
// prefix is kept, any torn tail and stale summary are truncated away,
// and the returned Reader (still holding the pre-truncation bytes of
// that valid prefix) is handed back so the caller can replay state
// before appending resumes at LastSeq()+1. A file recorded under a
// different configuration fingerprint is refused — replaying it under
// this configuration would walk a different linking order.
func Open(path string, meta Meta, opt Options) (*Writer, *Reader, error) {
	if len(meta.Tenant) == 0 || len(meta.Tenant) > maxNameLen {
		return nil, nil, fmt.Errorf("wal: tenant name length %d out of range [1,%d]", len(meta.Tenant), maxNameLen)
	}
	if meta.N <= 0 || int64(meta.N) > int64(^uint32(0)) {
		return nil, nil, fmt.Errorf("wal: universe size %d out of range", meta.N)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	w := &Writer{
		f:       f,
		path:    path,
		meta:    meta,
		opt:     opt,
		nextSeq: 1,
		dirty:   make(chan struct{}, 1),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	w.flushed.L = &w.mu

	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	var rd *Reader
	if st.Size() == 0 {
		buf := append(make([]byte, 0, 64), magic[:]...)
		buf = appendRecord(buf, opHeader, headerBody(meta))
		if _, err := f.WriteAt(buf, 0); err == nil {
			err = f.Sync()
		}
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		w.offset = int64(len(buf))
	} else {
		rd, err = OpenReader(path)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		if got, want := rd.Meta(), meta; got.Fingerprint() != want.Fingerprint() {
			f.Close()
			return nil, nil, fmt.Errorf(
				"wal: %s was recorded under a different configuration: log has n=%d kind=%d find=%d early=%v shards=%d seed=%#x, requested n=%d kind=%d find=%d early=%v shards=%d seed=%#x",
				path,
				got.N, got.Kind, got.Find, got.Early, got.Shards, got.Seed,
				want.N, want.Kind, want.Find, want.Early, want.Shards, want.Seed)
		}
		// Drop the torn tail (if any) and the sealed summary/footer: both
		// sit past DataEnd, and appends must land where data ends.
		if err := f.Truncate(rd.DataEnd()); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
		w.offset = rd.DataEnd()
		w.nextSeq = rd.LastSeq() + 1
		w.committed = rd.LastSeq()
		w.chunks = append(w.chunks, rd.Chunks()...)
		w.snaps = append(w.snaps, rd.Snapshots()...)
		// Snapshots happen at quiescence, so the latest snapshot's
		// sequence is a chunk boundary: the edges past it are exactly the
		// chunks whose LastSeq exceeds it.
		var snapSeq uint64
		if n := len(w.snaps); n > 0 {
			snapSeq = w.snaps[n-1].Seq
		}
		var tail int64
		for _, c := range w.chunks {
			if c.LastSeq > snapSeq {
				tail += int64(c.Edges)
			}
		}
		w.edgesSinceSnap.Store(tail)
	}
	go w.flusher()
	return w, rd, nil
}

// Meta returns the configuration the log was opened with.
func (w *Writer) Meta() Meta { return w.meta }

// Append logs one unite batch and returns its assigned sequence number
// once the batch is durable per the sync policy. Sequence numbers are
// assigned under the lock in append order starting at 1, so sequence
// order and log order coincide. An empty batch is not logged and
// returns sequence 0.
func (w *Writer) Append(edges []exec.Edge) (uint64, error) {
	if len(edges) == 0 {
		return 0, nil
	}
	if w.opt.Sync == SyncAlways {
		return w.appendSerial(edges)
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, ErrClosed
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return 0, err
	}
	seq := w.nextSeq
	w.nextSeq++
	if w.pend == nil {
		w.pend = bufpool.Get(1 << bufpool.MinBits)
	}
	if len(w.pend) == 0 {
		w.pendFirst = seq
	}
	w.pend = appendFrame(w.pend, seq, edges)
	w.pendLast = seq
	w.pendEdges += len(edges)
	w.edgesSinceSnap.Add(int64(len(edges)))
	select {
	case w.dirty <- struct{}{}:
	default:
	}
	for w.committed < seq && w.err == nil {
		w.flushed.Wait()
	}
	if w.committed >= seq {
		w.mu.Unlock()
		return seq, nil
	}
	err := w.err
	w.mu.Unlock()
	return 0, err
}

// appendSerial is the SyncAlways path: sequence assignment, write, and
// fsync all under the lock. Fully serialized appenders IS
// fsync-per-batch semantics — there is no group to commit.
func (w *Writer) appendSerial(edges []exec.Edge) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if w.err != nil {
		return 0, w.err
	}
	seq := w.nextSeq
	w.nextSeq++
	frameLen := frameOverhead + 8*len(edges)
	rec := bufpool.Get(recordOverhead + chunkHeaderLen + frameLen)
	rec = append(rec, opChunk)
	rec = binary.BigEndian.AppendUint32(rec, uint32(chunkHeaderLen+frameLen))
	rec = binary.BigEndian.AppendUint64(rec, seq)
	rec = binary.BigEndian.AppendUint64(rec, seq)
	rec = binary.BigEndian.AppendUint32(rec, uint32(len(edges)))
	rec = appendFrame(rec, seq, edges)
	rec = binary.BigEndian.AppendUint32(rec, crc32.ChecksumIEEE(rec))
	off := w.offset
	err := w.writeDurable(rec, off, true)
	if err != nil {
		w.latchLocked(err, off)
		bufpool.Put(rec)
		return 0, w.err
	}
	w.offset = off + int64(len(rec))
	w.chunks = append(w.chunks, ChunkInfo{Offset: off, FirstSeq: seq, LastSeq: seq, Edges: len(edges)})
	w.committed = seq
	w.edgesSinceSnap.Add(int64(len(edges)))
	w.flushed.Broadcast()
	bufpool.Put(rec)
	return seq, nil
}

// flusher drains the pending buffer into chunk records until told to
// quit; Close drains whatever remains after that.
func (w *Writer) flusher() {
	defer close(w.done)
	for {
		select {
		case <-w.dirty:
			for w.flushOnce() {
			}
		case <-w.quit:
			return
		}
	}
}

// flushOnce takes the pending group (if any), writes it as one chunk
// record, and commits its sequences. Reports whether it did work.
func (w *Writer) flushOnce() bool {
	w.mu.Lock()
	if len(w.pend) == 0 || w.err != nil {
		w.mu.Unlock()
		return false
	}
	group := w.pend
	first, last, edges := w.pendFirst, w.pendLast, w.pendEdges
	if w.spare != nil {
		w.pend = w.spare[:0]
		w.spare = nil
	} else {
		w.pend = nil
	}
	w.pendEdges = 0
	w.writing = true
	off := w.offset
	w.mu.Unlock()

	rec := bufpool.Get(recordOverhead + chunkHeaderLen + len(group))
	rec = append(rec, opChunk)
	rec = binary.BigEndian.AppendUint32(rec, uint32(chunkHeaderLen+len(group)))
	rec = binary.BigEndian.AppendUint64(rec, first)
	rec = binary.BigEndian.AppendUint64(rec, last)
	rec = binary.BigEndian.AppendUint32(rec, uint32(edges))
	rec = append(rec, group...)
	rec = binary.BigEndian.AppendUint32(rec, crc32.ChecksumIEEE(rec))

	err := w.writeDurable(rec, off, w.opt.Sync == SyncGroup)

	w.mu.Lock()
	w.spare = group[:0]
	w.writing = false
	if err != nil {
		w.latchLocked(err, off)
	} else {
		w.offset = off + int64(len(rec))
		w.chunks = append(w.chunks, ChunkInfo{Offset: off, FirstSeq: first, LastSeq: last, Edges: edges})
		w.committed = last
	}
	w.flushed.Broadcast()
	w.mu.Unlock()
	bufpool.Put(rec)
	return true
}

// writeDurable lands rec at off, fsyncing when sync is set. WriteAt
// rather than Write: the durable prefix length is authoritative state,
// not the file position, so a failed partial write never drifts where
// the next record lands.
func (w *Writer) writeDurable(rec []byte, off int64, sync bool) error {
	if _, err := w.f.WriteAt(rec, off); err != nil {
		return err
	}
	if sync {
		return w.f.Sync()
	}
	return nil
}

// latchLocked (mu held) poisons the writer with its first failure and
// best-effort truncates the partial record away so the on-disk prefix
// stays a clean scan target.
func (w *Writer) latchLocked(err error, off int64) {
	if w.err == nil {
		w.err = fmt.Errorf("wal: log poisoned by write failure: %w", err)
	}
	w.f.Truncate(off)
}

// WriteSnapshot records a checkpoint: the flattened forest of the
// structure at quiescence, fsynced regardless of the append policy. The
// caller must have quiesced the structure first (no batch between the
// last Append return and the Snapshot() call) — the snapshot claims to
// cover every sequence up to its own, and a concurrent append would
// falsify that. It returns the covered sequence and resets the
// automatic checkpoint trigger.
func (w *Writer) WriteSnapshot(kind uint8, parents []uint32) (uint64, error) {
	if len(parents) != w.meta.N {
		return 0, fmt.Errorf("wal: snapshot holds %d parents, universe has %d", len(parents), w.meta.N)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for (len(w.pend) > 0 || w.writing) && w.err == nil && !w.closed {
		w.flushed.Wait()
	}
	if w.closed {
		return 0, ErrClosed
	}
	if w.err != nil {
		return 0, w.err
	}
	seq := w.nextSeq - 1
	body := snapshotBody(seq, kind, w.meta.Fingerprint(), parents)
	rec := appendRecord(bufpool.Get(recordOverhead+len(body)), opSnapshot, body)
	off := w.offset
	err := w.writeDurable(rec, off, true)
	bufpool.Put(rec)
	if err != nil {
		w.latchLocked(err, off)
		return 0, w.err
	}
	w.offset = off + int64(len(rec))
	w.snaps = append(w.snaps, SnapshotInfo{Offset: off, Seq: seq})
	w.edgesSinceSnap.Store(0)
	return seq, nil
}

// CheckpointDue reports whether the automatic checkpoint trigger has
// fired: CheckpointEvery > 0 and at least that many edges logged since
// the last snapshot. Lock-free; safe to call on every batch.
func (w *Writer) CheckpointDue() bool {
	return w.opt.CheckpointEvery > 0 && w.edgesSinceSnap.Load() >= w.opt.CheckpointEvery
}

// Close drains pending appends, seals the log with the summary index,
// footer, and tail magic, fsyncs, and closes the file. A sealed log
// opens through the footer fast path with no scan. Close is idempotent
// and returns the latched error, if any — a poisoned log is closed
// without sealing, so the next open scans and recovers the valid
// prefix.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		err := w.err
		w.mu.Unlock()
		return err
	}
	w.closed = true
	w.mu.Unlock()
	close(w.quit)
	<-w.done
	for w.flushOnce() {
	}

	w.mu.Lock()
	err := w.err
	off := w.offset
	var tail []byte
	if err == nil {
		tail = appendRecord(nil, opSummary, summaryBody(w.chunks, w.snaps))
		body := make([]byte, 0, 16)
		body = binary.BigEndian.AppendUint64(body, uint64(off)) // summary offset
		body = binary.BigEndian.AppendUint64(body, uint64(off)) // data end
		tail = appendRecord(tail, opFooter, body)
		tail = append(tail, tailMagic[:]...)
	}
	w.flushed.Broadcast()
	w.mu.Unlock()

	if err == nil {
		if _, werr := w.f.WriteAt(tail, off); werr != nil {
			err = werr
		} else if serr := w.f.Sync(); serr != nil {
			err = serr
		}
	}
	if cerr := w.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
	return err
}
