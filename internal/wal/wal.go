// Package wal is the durable-tenant subsystem's per-tenant write-ahead
// log: an MCAP-style chunked, CRC-verified, seekable record container
// holding one tenant's whole mutation history — every unite batch that
// crossed the execution seam, in applied order, plus periodic snapshot
// checkpoints of the structure's flattened forest.
//
// # File shape
//
// A log file is a magic preamble followed by a sequence of records, each
// individually framed and CRC-protected:
//
//	[op u8][len u32][body len bytes][crc32 u32]
//
// with crc32 (IEEE) computed over op, len, and body, and all integers
// big-endian (matching the wire protocol's framing). The record kinds:
//
//	header   0x01  format version, tenant name, structure configuration
//	               (n, kind, find, early-termination, shards, seed) and
//	               its fingerprint — always the first record
//	chunk    0x02  one group-commit flush: [firstSeq u64][lastSeq u64]
//	               [edges u32] then the member batches as frames of
//	               [seq u64][count u32][count × (X u32, Y u32)] — the
//	               wire protocol's 8-byte edge layout
//	snapshot 0x03  a checkpoint: [seq u64][kind u8][fingerprint u64]
//	               [n u32][n × parent u32] — the backend's flattened
//	               Snapshot() at quiescence after batch seq
//	summary  0x04  index of every chunk {offset, firstSeq, lastSeq,
//	               edges} and snapshot {offset, seq} — written at clean
//	               Close, ahead of the footer
//	footer   0x05  [summaryOffset u64][dataEnd u64], followed by the
//	               8-byte tail magic
//
// A cleanly closed log ends footer-then-tail-magic, so a reader seeks
// straight to the summary and never scans — the MCAP discipline. A log
// cut short by a crash simply stops mid-record: recovery scans forward,
// keeps the longest valid prefix, reports the discarded tail bytes, and
// a writer resuming over it truncates the tail (and any stale summary)
// before appending. Torn tails are the ONLY thing recovery discards —
// every record whose CRC verifies is preserved in order.
//
// # Ordering contract
//
// Append assigns sequence numbers under the writer's lock, so append
// order, sequence order, and file order are one order; Append does not
// return until the batch is durable per the writer's sync policy. The
// execution seam calls Append before applying a batch and replies only
// after both, which is what makes acked-means-logged hold end to end.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"

	"repro/internal/exec"
)

// Record opcodes.
const (
	opHeader   byte = 0x01
	opChunk    byte = 0x02
	opSnapshot byte = 0x03
	opSummary  byte = 0x04
	opFooter   byte = 0x05
)

// formatVersion is the header's format version; readers reject logs from
// a future format rather than misparse them.
const formatVersion = 1

var (
	// magic opens every log file.
	magic = [8]byte{'D', 'S', 'U', 'L', 'O', 'G', 0x00, formatVersion}
	// tailMagic closes a cleanly shut log, immediately after the footer
	// record — its presence at EOF is what licenses the summary fast path.
	tailMagic = [8]byte{'D', 'S', 'U', 'L', 'O', 'G', 0xff, formatVersion}
)

// recordOverhead is the framing cost around a record body: op, length,
// and CRC.
const recordOverhead = 1 + 4 + 4

// maxNameLen bounds the tenant name a header may carry (matches the
// network front end's tenant-name limit).
const maxNameLen = 128

var (
	// ErrNotALog reports a file without the log magic — not a truncation,
	// a different format altogether.
	ErrNotALog = errors.New("wal: not a dsu log (bad magic)")
	// ErrClosed reports an operation on a closed writer.
	ErrClosed = errors.New("wal: writer is closed")
)

// Meta is the structure configuration a log records in its header: a
// universe recovered from the log must be built with exactly this
// configuration, or replay would walk a different random linking order.
// Fingerprint folds the load-bearing fields into one comparable word.
type Meta struct {
	// Tenant is the tenant name the log belongs to.
	Tenant string
	// N is the universe size.
	N int
	// Kind is the structure kind, as the dsu layer's Kind numbering
	// (1 flat, 2 sharded, 3 lockfree).
	Kind uint8
	// Find is the configured find strategy, as the dsu layer's
	// FindStrategy numbering.
	Find uint8
	// Early records WithEarlyTermination.
	Early bool
	// Shards is the resolved shard count (0 for unsharded kinds) — the
	// resolved value, so a log created under one GOMAXPROCS recovers
	// identically under another.
	Shards uint32
	// Seed is the structure seed of the random linking order.
	Seed uint64
}

// Fingerprint folds the configuration into one word (FNV-1a over the
// packed fields). Two metas with equal fingerprints build
// replay-equivalent structures; the header stores it so mismatched
// recovery fails loudly before any replay.
func (m Meta) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.BigEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(m.N))
	put(uint64(m.Kind))
	put(uint64(m.Find))
	early := uint64(0)
	if m.Early {
		early = 1
	}
	put(early)
	put(uint64(m.Shards))
	put(m.Seed)
	return h.Sum64()
}

// headerBody encodes the header record body: version, fingerprint, and
// the configuration fields, then the tenant name.
func headerBody(m Meta) []byte {
	b := make([]byte, 0, 2+8+4+1+1+1+4+8+2+len(m.Tenant))
	b = binary.BigEndian.AppendUint16(b, formatVersion)
	b = binary.BigEndian.AppendUint64(b, m.Fingerprint())
	b = binary.BigEndian.AppendUint32(b, uint32(m.N))
	b = append(b, m.Kind, m.Find, boolByte(m.Early))
	b = binary.BigEndian.AppendUint32(b, m.Shards)
	b = binary.BigEndian.AppendUint64(b, m.Seed)
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Tenant)))
	b = append(b, m.Tenant...)
	return b
}

// parseHeader decodes a header record body, verifying the stored
// fingerprint against the recomputed one (a header whose own fields
// disagree with its fingerprint is corrupt).
func parseHeader(body []byte) (Meta, error) {
	const fixed = 2 + 8 + 4 + 1 + 1 + 1 + 4 + 8 + 2
	if len(body) < fixed {
		return Meta{}, errors.New("wal: short header record")
	}
	version := binary.BigEndian.Uint16(body[0:2])
	if version != formatVersion {
		return Meta{}, fmt.Errorf("wal: log format version %d, this build reads %d", version, formatVersion)
	}
	fp := binary.BigEndian.Uint64(body[2:10])
	m := Meta{
		N:      int(binary.BigEndian.Uint32(body[10:14])),
		Kind:   body[14],
		Find:   body[15],
		Early:  body[16] != 0,
		Shards: binary.BigEndian.Uint32(body[17:21]),
		Seed:   binary.BigEndian.Uint64(body[21:29]),
	}
	nameLen := int(binary.BigEndian.Uint16(body[29:31]))
	if nameLen > maxNameLen || len(body) != fixed+nameLen {
		return Meta{}, errors.New("wal: header name length inconsistent")
	}
	m.Tenant = string(body[fixed:])
	if m.Fingerprint() != fp {
		return Meta{}, errors.New("wal: header fingerprint mismatch")
	}
	return m, nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// appendRecord frames body as an op record onto dst: op, length, body,
// CRC over the three.
func appendRecord(dst []byte, op byte, body []byte) []byte {
	start := len(dst)
	dst = append(dst, op)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(body)))
	dst = append(dst, body...)
	crc := crc32.ChecksumIEEE(dst[start:])
	return binary.BigEndian.AppendUint32(dst, crc)
}

// appendFrame encodes one batch as a chunk-member frame: seq, count,
// then the edges in the wire protocol's 8-byte big-endian layout.
func appendFrame(dst []byte, seq uint64, edges []exec.Edge) []byte {
	dst = binary.BigEndian.AppendUint64(dst, seq)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(edges)))
	for _, e := range edges {
		dst = binary.BigEndian.AppendUint32(dst, e.X)
		dst = binary.BigEndian.AppendUint32(dst, e.Y)
	}
	return dst
}

// frameOverhead is a chunk-member frame's framing cost (seq + count).
const frameOverhead = 8 + 4

// chunkHeaderLen is the fixed prefix of a chunk body (firstSeq, lastSeq,
// edge count).
const chunkHeaderLen = 8 + 8 + 4

// readRecord parses the record starting at pos in data. It returns the
// opcode, the body (aliasing data), and the offset just past the record.
// ok is false when the bytes at pos do not hold a complete,
// CRC-verified record — a torn tail, from the scanner's point of view.
func readRecord(data []byte, pos int) (op byte, body []byte, next int, ok bool) {
	if pos < 0 || len(data)-pos < recordOverhead {
		return 0, nil, 0, false
	}
	op = data[pos]
	n := int(binary.BigEndian.Uint32(data[pos+1 : pos+5]))
	if n < 0 || n > len(data)-pos-recordOverhead {
		return 0, nil, 0, false
	}
	end := pos + 1 + 4 + n
	want := binary.BigEndian.Uint32(data[end : end+4])
	if crc32.ChecksumIEEE(data[pos:end]) != want {
		return 0, nil, 0, false
	}
	return op, data[pos+5 : end], end + 4, true
}

// SnapshotRecord is one decoded snapshot checkpoint: the partition of
// the structure after batch Seq, as the backend's flattened Snapshot()
// array (element space; roots satisfy Parents[x] == x on the concurrent
// and sharded kinds, parent chains on the flat kind — either applies
// identically).
type SnapshotRecord struct {
	// Seq is the last batch sequence the snapshot covers (0: a snapshot
	// of the empty log).
	Seq uint64
	// Kind echoes the header's structure kind at checkpoint time.
	Kind uint8
	// Fingerprint echoes the header's configuration fingerprint.
	Fingerprint uint64
	// Parents is the flattened forest, length n.
	Parents []uint32
}

// snapshotBody encodes a snapshot record body.
func snapshotBody(seq uint64, kind uint8, fingerprint uint64, parents []uint32) []byte {
	b := make([]byte, 0, 8+1+8+4+4*len(parents))
	b = binary.BigEndian.AppendUint64(b, seq)
	b = append(b, kind)
	b = binary.BigEndian.AppendUint64(b, fingerprint)
	b = binary.BigEndian.AppendUint32(b, uint32(len(parents)))
	for _, p := range parents {
		b = binary.BigEndian.AppendUint32(b, p)
	}
	return b
}

// parseSnapshot decodes a snapshot record body; n is the universe size
// from the header (a snapshot of any other length is corrupt).
func parseSnapshot(body []byte, n int) (SnapshotRecord, error) {
	const fixed = 8 + 1 + 8 + 4
	if len(body) < fixed {
		return SnapshotRecord{}, errors.New("wal: short snapshot record")
	}
	sr := SnapshotRecord{
		Seq:         binary.BigEndian.Uint64(body[0:8]),
		Kind:        body[8],
		Fingerprint: binary.BigEndian.Uint64(body[9:17]),
	}
	count := int(binary.BigEndian.Uint32(body[17:21]))
	if count != n || len(body) != fixed+4*count {
		return SnapshotRecord{}, fmt.Errorf("wal: snapshot holds %d parents, universe has %d", count, n)
	}
	sr.Parents = make([]uint32, count)
	for i := range sr.Parents {
		p := binary.BigEndian.Uint32(body[fixed+4*i:])
		if int(p) >= n {
			return SnapshotRecord{}, fmt.Errorf("wal: snapshot parent %d out of range", p)
		}
		sr.Parents[i] = p
	}
	return sr, nil
}

// ChunkInfo indexes one chunk record: where it starts and which batch
// sequences it holds — the summary's (and the scanner's) chunk entry.
type ChunkInfo struct {
	// Offset is the chunk record's file offset (at the opcode byte).
	Offset int64
	// FirstSeq and LastSeq bound the member batches, inclusive.
	FirstSeq, LastSeq uint64
	// Edges is the total edge count across the member batches.
	Edges int
}

// SnapshotInfo indexes one snapshot record.
type SnapshotInfo struct {
	// Offset is the snapshot record's file offset (at the opcode byte).
	Offset int64
	// Seq is the last batch sequence the snapshot covers.
	Seq uint64
}

// summaryBody encodes the summary record: the chunk index then the
// snapshot index.
func summaryBody(chunks []ChunkInfo, snaps []SnapshotInfo) []byte {
	b := make([]byte, 0, 4+len(chunks)*28+4+len(snaps)*16)
	b = binary.BigEndian.AppendUint32(b, uint32(len(chunks)))
	for _, c := range chunks {
		b = binary.BigEndian.AppendUint64(b, uint64(c.Offset))
		b = binary.BigEndian.AppendUint64(b, c.FirstSeq)
		b = binary.BigEndian.AppendUint64(b, c.LastSeq)
		b = binary.BigEndian.AppendUint32(b, uint32(c.Edges))
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(snaps)))
	for _, s := range snaps {
		b = binary.BigEndian.AppendUint64(b, uint64(s.Offset))
		b = binary.BigEndian.AppendUint64(b, s.Seq)
	}
	return b
}

// parseSummary decodes a summary record body.
func parseSummary(body []byte) (chunks []ChunkInfo, snaps []SnapshotInfo, err error) {
	if len(body) < 4 {
		return nil, nil, errors.New("wal: short summary record")
	}
	nc := int(binary.BigEndian.Uint32(body[0:4]))
	pos := 4
	if nc < 0 || nc > (len(body)-pos)/28 {
		return nil, nil, errors.New("wal: summary chunk count inconsistent")
	}
	chunks = make([]ChunkInfo, nc)
	for i := range chunks {
		chunks[i] = ChunkInfo{
			Offset:   int64(binary.BigEndian.Uint64(body[pos:])),
			FirstSeq: binary.BigEndian.Uint64(body[pos+8:]),
			LastSeq:  binary.BigEndian.Uint64(body[pos+16:]),
			Edges:    int(binary.BigEndian.Uint32(body[pos+24:])),
		}
		pos += 28
	}
	if len(body)-pos < 4 {
		return nil, nil, errors.New("wal: short summary record")
	}
	ns := int(binary.BigEndian.Uint32(body[pos:]))
	pos += 4
	if ns < 0 || ns > (len(body)-pos)/16 {
		return nil, nil, errors.New("wal: summary snapshot count inconsistent")
	}
	snaps = make([]SnapshotInfo, ns)
	for i := range snaps {
		snaps[i] = SnapshotInfo{
			Offset: int64(binary.BigEndian.Uint64(body[pos:])),
			Seq:    binary.BigEndian.Uint64(body[pos+8:]),
		}
		pos += 16
	}
	if pos != len(body) {
		return nil, nil, errors.New("wal: summary record has trailing bytes")
	}
	return chunks, snaps, nil
}
