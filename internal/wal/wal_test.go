package wal

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/exec"
)

func testMeta(n int) Meta {
	return Meta{Tenant: "alpha", N: n, Kind: 1, Find: 2, Early: true, Shards: 0, Seed: 0x6a79616e7469}
}

// randomBatches deterministically generates count batches of 1..maxLen
// edges over [0, n).
func randomBatches(t *testing.T, n, count, maxLen int, seed int64) [][]exec.Edge {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	batches := make([][]exec.Edge, count)
	for i := range batches {
		b := make([]exec.Edge, 1+rng.Intn(maxLen))
		for j := range b {
			b[j] = exec.Edge{X: uint32(rng.Intn(n)), Y: uint32(rng.Intn(n))}
		}
		batches[i] = b
	}
	return batches
}

// writeLog appends the batches in order and returns the log path. When
// snapAfter is non-nil it maps a batch index (0-based, after which) to
// the snapshot parents to checkpoint there.
func writeLog(t *testing.T, dir string, meta Meta, opt Options, batches [][]exec.Edge, snapAfter map[int][]uint32) string {
	t.Helper()
	path := filepath.Join(dir, meta.Tenant+".dsulog")
	w, rd, err := Open(path, meta, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if rd != nil {
		t.Fatalf("Open of a fresh file returned a reader")
	}
	for i, b := range batches {
		seq, err := w.Append(b)
		if err != nil {
			t.Fatalf("Append #%d: %v", i, err)
		}
		if want := uint64(i + 1); seq != want {
			t.Fatalf("Append #%d assigned seq %d, want %d", i, seq, want)
		}
		if parents, ok := snapAfter[i]; ok {
			sseq, err := w.WriteSnapshot(meta.Kind, parents)
			if err != nil {
				t.Fatalf("WriteSnapshot after #%d: %v", i, err)
			}
			if sseq != uint64(i+1) {
				t.Fatalf("snapshot covers seq %d, want %d", sseq, i+1)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return path
}

// collect replays the whole log into a [][]exec.Edge, copying batches.
func collect(t *testing.T, r *Reader) [][]exec.Edge {
	t.Helper()
	var got [][]exec.Edge
	err := r.Replay(0, r.LastSeq(), func(seq uint64, edges []exec.Edge) error {
		if want := uint64(len(got) + 1); seq != want {
			return fmt.Errorf("replay delivered seq %d, want %d", seq, want)
		}
		got = append(got, append([]exec.Edge(nil), edges...))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func sameBatches(a, b [][]exec.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestRoundTripSealed(t *testing.T) {
	const n = 512
	meta := testMeta(n)
	batches := randomBatches(t, n, 40, 17, 1)
	snap := make([]uint32, n)
	for i := range snap {
		snap[i] = uint32(i / 2)
	}
	path := writeLog(t, t.TempDir(), meta, Options{}, batches, map[int][]uint32{19: snap})

	r, err := OpenReader(path)
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	if !r.Clean() {
		t.Fatalf("sealed log not clean")
	}
	if r.Discarded() != 0 {
		t.Fatalf("sealed log discarded %d bytes", r.Discarded())
	}
	if r.Meta() != meta {
		t.Fatalf("meta round-trip: got %+v want %+v", r.Meta(), meta)
	}
	if r.LastSeq() != uint64(len(batches)) {
		t.Fatalf("LastSeq = %d, want %d", r.LastSeq(), len(batches))
	}
	if !sameBatches(collect(t, r), batches) {
		t.Fatalf("replayed batches differ from appended batches")
	}
	if len(r.Snapshots()) != 1 || r.Snapshots()[0].Seq != 20 {
		t.Fatalf("snapshot index = %+v, want one at seq 20", r.Snapshots())
	}
	sr, err := r.ReadSnapshot(r.Snapshots()[0])
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if sr.Seq != 20 || sr.Kind != meta.Kind || sr.Fingerprint != meta.Fingerprint() {
		t.Fatalf("snapshot record = %+v", sr)
	}
	for i, p := range sr.Parents {
		if p != uint32(i/2) {
			t.Fatalf("snapshot parent[%d] = %d, want %d", i, p, i/2)
		}
	}
	// Edge totals in the chunk index must sum to the appended total.
	want := 0
	for _, b := range batches {
		want += len(b)
	}
	got := 0
	for _, c := range r.Chunks() {
		got += c.Edges
	}
	if got != want {
		t.Fatalf("chunk index holds %d edges, appended %d", got, want)
	}
}

// TestFooterPathMatchesScan: the seek-only open of a sealed log and the
// unconditional scan must agree on every index entry.
func TestFooterPathMatchesScan(t *testing.T) {
	const n = 256
	meta := testMeta(n)
	batches := randomBatches(t, n, 60, 9, 2)
	snap := make([]uint32, n)
	path := writeLog(t, t.TempDir(), meta, Options{}, batches, map[int][]uint32{9: snap, 39: snap})

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fast, ok := readerViaFooter(data)
	if !ok {
		t.Fatalf("sealed log did not take the footer fast path")
	}
	scan, err := ScanReader(data)
	if err != nil {
		t.Fatalf("ScanReader: %v", err)
	}
	if !scan.Clean() {
		t.Fatalf("scan of sealed log not clean")
	}
	if fast.Meta() != scan.Meta() || fast.LastSeq() != scan.LastSeq() || fast.DataEnd() != scan.DataEnd() {
		t.Fatalf("fast path and scan disagree: %+v vs %+v", fast, scan)
	}
	if len(fast.Chunks()) != len(scan.Chunks()) {
		t.Fatalf("chunk counts differ: %d vs %d", len(fast.Chunks()), len(scan.Chunks()))
	}
	for i := range fast.Chunks() {
		if fast.Chunks()[i] != scan.Chunks()[i] {
			t.Fatalf("chunk %d differs: %+v vs %+v", i, fast.Chunks()[i], scan.Chunks()[i])
		}
	}
	if len(fast.Snapshots()) != len(scan.Snapshots()) {
		t.Fatalf("snapshot counts differ")
	}
	for i := range fast.Snapshots() {
		if fast.Snapshots()[i] != scan.Snapshots()[i] {
			t.Fatalf("snapshot %d differs", i)
		}
	}
}

// TestCutAtEveryByte truncates the log at every possible length and
// demands recovery of the longest valid prefix: never a panic, never an
// error (past the header), never a reordered or invented batch, and an
// exact accounting of the discarded tail.
func TestCutAtEveryByte(t *testing.T) {
	const n = 64
	meta := testMeta(n)
	batches := randomBatches(t, n, 12, 5, 3)
	snap := make([]uint32, n)
	path := writeLog(t, t.TempDir(), meta, Options{}, batches, map[int][]uint32{5: snap})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	full, err := ScanReader(data)
	if err != nil {
		t.Fatal(err)
	}
	headerEnd := -1
	{
		_, _, next, ok := readRecord(data, 8)
		if !ok {
			t.Fatal("no header record")
		}
		headerEnd = next
	}

	prevBatches := -1
	for cut := 0; cut <= len(data); cut++ {
		r, err := NewReader(data[:cut])
		if cut < headerEnd {
			// Not even a complete header: must refuse, not recover.
			if err == nil {
				t.Fatalf("cut %d: expected an error before the header completes", cut)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		got := collect(t, r)
		// Prefix property: the recovered batches are exactly a prefix of
		// the appended ones.
		if len(got) > len(batches) {
			t.Fatalf("cut %d: recovered %d batches from %d appended", cut, len(got), len(batches))
		}
		if !sameBatches(got, batches[:len(got)]) {
			t.Fatalf("cut %d: recovered batches are not a prefix of the appended ones", cut)
		}
		// Monotonic: cutting later never recovers less.
		if len(got) < prevBatches {
			t.Fatalf("cut %d: recovered %d batches, cut %d recovered %d", cut, len(got), cut-1, prevBatches)
		}
		prevBatches = len(got)
		// Exact tail accounting: valid prefix + discarded = file.
		if r.DataEnd()+r.Discarded() != int64(cut) && !r.Clean() {
			t.Fatalf("cut %d: dataEnd %d + discarded %d ≠ %d", cut, r.DataEnd(), r.Discarded(), cut)
		}
		if cut < len(data) && r.Clean() {
			t.Fatalf("cut %d: a truncated log reported clean", cut)
		}
		for _, s := range r.Snapshots() {
			if _, err := r.ReadSnapshot(s); err != nil {
				t.Fatalf("cut %d: indexed snapshot unreadable: %v", cut, err)
			}
		}
	}
	if prevBatches != len(batches) {
		t.Fatalf("full file recovered %d of %d batches", prevBatches, len(batches))
	}
	if full.LastSeq() != uint64(len(batches)) {
		t.Fatalf("full scan LastSeq = %d", full.LastSeq())
	}
}

// TestConcurrentAppend hammers Append from many goroutines (run under
// -race in CI): every acked sequence is unique, covers 1..N exactly,
// and the sealed log replays every batch exactly once.
func TestConcurrentAppend(t *testing.T) {
	const n = 1024
	const writers = 8
	const perWriter = 50
	meta := testMeta(n)
	path := filepath.Join(t.TempDir(), "alpha.dsulog")
	w, _, err := Open(path, meta, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	acked := make(map[uint64][]exec.Edge)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perWriter; i++ {
				edges := make([]exec.Edge, 1+rng.Intn(7))
				for j := range edges {
					edges[j] = exec.Edge{X: uint32(rng.Intn(n)), Y: uint32(rng.Intn(n))}
				}
				seq, err := w.Append(edges)
				if err != nil {
					t.Errorf("Append: %v", err)
					return
				}
				mu.Lock()
				if _, dup := acked[seq]; dup {
					t.Errorf("sequence %d acked twice", seq)
				}
				acked[seq] = edges
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	if len(acked) != writers*perWriter {
		t.Fatalf("acked %d sequences, want %d", len(acked), writers*perWriter)
	}
	for s := uint64(1); s <= uint64(writers*perWriter); s++ {
		if _, ok := acked[s]; !ok {
			t.Fatalf("sequence %d never acked", s)
		}
	}

	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	replayed := 0
	err = r.Replay(0, r.LastSeq(), func(seq uint64, edges []exec.Edge) error {
		want := acked[seq]
		if len(edges) != len(want) {
			return fmt.Errorf("seq %d: %d edges, acked %d", seq, len(edges), len(want))
		}
		for i := range edges {
			if edges[i] != want[i] {
				return fmt.Errorf("seq %d: edge %d differs", seq, i)
			}
		}
		replayed++
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if replayed != writers*perWriter {
		t.Fatalf("replayed %d batches, want %d", replayed, writers*perWriter)
	}
	// Group commit should have coalesced at least some batches: fewer
	// chunks than appends (with 8 writers racing a single flusher this
	// holds overwhelmingly; equality would mean zero coalescing).
	if got := len(r.Chunks()); got >= writers*perWriter {
		t.Logf("no coalescing observed: %d chunks for %d appends", got, writers*perWriter)
	}
}

// TestResumeAppend: reopening an unsealed (crashed) log with a torn
// tail recovers the valid prefix, truncates the tear, and appends
// continue at the next sequence.
func TestResumeAppend(t *testing.T) {
	const n = 128
	meta := testMeta(n)
	dir := t.TempDir()
	batches := randomBatches(t, n, 10, 6, 4)
	path := writeLog(t, dir, meta, Options{}, batches, nil)

	// Simulate a crash: chop the sealed tail plus a few bytes of the last
	// chunk record, leaving a torn log.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ScanReader(data)
	if err != nil {
		t.Fatal(err)
	}
	chunks := r.Chunks()
	lastChunk := chunks[len(chunks)-1]
	cut := int(lastChunk.Offset) + 7 // mid-record: the final batch tears
	if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	w, rd, err := Open(path, meta, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if rd == nil {
		t.Fatalf("reopen of an existing log returned no reader")
	}
	if rd.Clean() {
		t.Fatalf("torn log reported clean")
	}
	if rd.Discarded() != 7 {
		t.Fatalf("discarded %d bytes, want 7", rd.Discarded())
	}
	wantSeqs := lastChunk.FirstSeq - 1 // everything before the torn chunk
	if rd.LastSeq() != wantSeqs {
		t.Fatalf("recovered LastSeq = %d, want %d", rd.LastSeq(), wantSeqs)
	}

	// The torn batch was never acked; re-append it and one more.
	seq, err := w.Append(batches[len(batches)-1])
	if err != nil {
		t.Fatal(err)
	}
	if seq != wantSeqs+1 {
		t.Fatalf("resumed append got seq %d, want %d", seq, wantSeqs+1)
	}
	extra := []exec.Edge{{X: 1, Y: 2}}
	if _, err := w.Append(extra); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r2, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Clean() {
		t.Fatalf("resealed log not clean")
	}
	want := append(append([][]exec.Edge{}, batches[:len(batches)-1]...), batches[len(batches)-1], extra)
	if !sameBatches(collect(t, r2), want) {
		t.Fatalf("post-resume replay differs")
	}
}

func TestFingerprintMismatch(t *testing.T) {
	meta := testMeta(64)
	dir := t.TempDir()
	path := writeLog(t, dir, meta, Options{}, randomBatches(t, 64, 3, 3, 5), nil)

	other := meta
	other.Seed++
	if _, _, err := Open(path, other, Options{}); err == nil {
		t.Fatalf("Open with a different seed succeeded")
	} else if !bytes.Contains([]byte(err.Error()), []byte("different configuration")) {
		t.Fatalf("mismatch error not descriptive: %v", err)
	}
	// Same fingerprint reopens fine.
	w, _, err := Open(path, meta, Options{})
	if err != nil {
		t.Fatalf("matching reopen: %v", err)
	}
	w.Close()
}

// TestWriteFailureLatches: once a write fails, the writer is poisoned —
// the failed batch and every later batch report errors, nothing acks.
func TestWriteFailureLatches(t *testing.T) {
	meta := testMeta(64)
	path := filepath.Join(t.TempDir(), "alpha.dsulog")
	w, _, err := Open(path, meta, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]exec.Edge{{X: 1, Y: 2}}); err != nil {
		t.Fatal(err)
	}
	// Yank the file out from under the writer.
	w.f.Close()
	if _, err := w.Append([]exec.Edge{{X: 3, Y: 4}}); err == nil {
		t.Fatalf("append over a closed file succeeded")
	}
	if _, err := w.Append([]exec.Edge{{X: 5, Y: 6}}); err == nil {
		t.Fatalf("poisoned writer acked a batch")
	}
	if _, err := w.WriteSnapshot(meta.Kind, make([]uint32, 64)); err == nil {
		t.Fatalf("poisoned writer accepted a snapshot")
	}
	if err := w.Close(); err == nil {
		t.Fatalf("Close of a poisoned writer reported success")
	}
}

func TestCheckpointDue(t *testing.T) {
	meta := testMeta(64)
	path := filepath.Join(t.TempDir(), "alpha.dsulog")
	w, _, err := Open(path, meta, Options{CheckpointEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	edges := make([]exec.Edge, 4)
	for i := 0; i < 2; i++ {
		if _, err := w.Append(edges[:4]); err != nil {
			t.Fatal(err)
		}
	}
	if w.CheckpointDue() {
		t.Fatalf("due after 8 of 10 edges")
	}
	if _, err := w.Append(edges[:4]); err != nil {
		t.Fatal(err)
	}
	if !w.CheckpointDue() {
		t.Fatalf("not due after 12 of 10 edges")
	}
	if _, err := w.WriteSnapshot(meta.Kind, make([]uint32, 64)); err != nil {
		t.Fatal(err)
	}
	if w.CheckpointDue() {
		t.Fatalf("still due after checkpoint")
	}
}

func TestReadMeta(t *testing.T) {
	meta := testMeta(300)
	dir := t.TempDir()
	path := writeLog(t, dir, meta, Options{}, randomBatches(t, 300, 2, 3, 6), nil)
	got, err := ReadMeta(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != meta {
		t.Fatalf("ReadMeta = %+v, want %+v", got, meta)
	}
	if _, err := ReadMeta(filepath.Join(dir, "nope.dsulog")); err == nil {
		t.Fatalf("ReadMeta of a missing file succeeded")
	}
	junk := filepath.Join(dir, "junk")
	os.WriteFile(junk, []byte("not a log at all"), 0o644)
	if _, err := ReadMeta(junk); !errors.Is(err, ErrNotALog) {
		t.Fatalf("ReadMeta of junk = %v, want ErrNotALog", err)
	}
}

func TestReplayBounds(t *testing.T) {
	const n = 64
	meta := testMeta(n)
	batches := randomBatches(t, n, 20, 4, 7)
	path := writeLog(t, t.TempDir(), meta, Options{}, batches, nil)
	r, err := OpenReader(path)
	if err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	err = r.Replay(5, 15, func(seq uint64, edges []exec.Edge) error {
		seqs = append(seqs, seq)
		if !sameBatches([][]exec.Edge{append([]exec.Edge(nil), edges...)}, [][]exec.Edge{batches[seq-1]}) {
			return fmt.Errorf("seq %d content mismatch", seq)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 10 || seqs[0] != 6 || seqs[9] != 15 {
		t.Fatalf("Replay(5,15] delivered %v", seqs)
	}
	si, ok := r.LatestSnapshotAt(100)
	if ok || si != (SnapshotInfo{}) {
		t.Fatalf("LatestSnapshotAt on a snapshot-free log = %+v, %v", si, ok)
	}
}
