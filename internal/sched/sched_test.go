package sched

import (
	"testing"

	"repro/internal/apram"
)

func TestRoundRobinCycles(t *testing.T) {
	s := NewRoundRobin()
	ready := []int{0, 1, 2}
	var order []int
	for i := 0; i < 6; i++ {
		idx := s.Next(ready, int64(i))
		order = append(order, ready[idx])
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRoundRobinSkipsMissing(t *testing.T) {
	s := NewRoundRobin()
	if got := s.Next([]int{0, 2, 5}, 0); got != 0 {
		t.Fatalf("first pick index %d", got)
	}
	// Last was 0; among {2,5} the next is 2 (index 0).
	if got := s.Next([]int{2, 5}, 1); got != 0 {
		t.Fatalf("second pick index %d", got)
	}
	// Last was 2; among {0, 1} wraps to 0.
	if got := s.Next([]int{0, 1}, 2); got != 0 {
		t.Fatalf("wrap pick index %d", got)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	a, b := NewRandom(3), NewRandom(3)
	ready := []int{0, 1, 2, 3, 4}
	for i := 0; i < 100; i++ {
		if a.Next(ready, int64(i)) != b.Next(ready, int64(i)) {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRandom(4)
	diff := false
	a2 := NewRandom(3)
	for i := 0; i < 100; i++ {
		if a2.Next(ready, int64(i)) != c.Next(ready, int64(i)) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds identical for 100 picks")
	}
}

func TestLockstepRounds(t *testing.T) {
	s := NewLockstep()
	ready := []int{0, 1, 2}
	var order []int
	for i := 0; i < 9; i++ {
		order = append(order, ready[s.Next(ready, int64(i))])
	}
	want := []int{0, 1, 2, 0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestLockstepHandlesDepartures(t *testing.T) {
	s := NewLockstep()
	// Round with {0,1}: 0 then 1; then 1 leaves; next round {0} → 0.
	if got := s.Next([]int{0, 1}, 0); got != 0 {
		t.Fatal("expected 0 first")
	}
	if got := s.Next([]int{0, 1}, 1); got != 1 {
		t.Fatal("expected 1 second")
	}
	if got := s.Next([]int{0}, 2); got != 0 {
		t.Fatal("expected 0 in new round")
	}
}

func TestStallAvoidsStalledWhileOthersReady(t *testing.T) {
	s := NewStall(NewRoundRobin(), 1)
	ready := []int{0, 1, 2}
	for i := 0; i < 50; i++ {
		if picked := ready[s.Next(ready, int64(i))]; picked == 1 {
			t.Fatal("stalled process scheduled while others ready")
		}
	}
	// Only the stalled process ready: it must still run (termination).
	if got := s.Next([]int{1}, 99); got != 0 {
		t.Fatalf("fallback pick %d", got)
	}
}

func TestWeightedBias(t *testing.T) {
	s := NewWeighted(7, []float64{10, 0.1})
	ready := []int{0, 1}
	count0 := 0
	for i := 0; i < 2000; i++ {
		if ready[s.Next(ready, int64(i))] == 0 {
			count0++
		}
	}
	if count0 < 1800 {
		t.Fatalf("heavy process scheduled only %d/2000", count0)
	}
}

func TestWeightedDefaultsAndPanics(t *testing.T) {
	s := NewWeighted(1, nil) // all default weight 1
	seen := map[int]bool{}
	ready := []int{0, 1}
	for i := 0; i < 100; i++ {
		seen[ready[s.Next(ready, int64(i))]] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatal("uniform weighted did not schedule both")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative weight accepted")
		}
	}()
	NewWeighted(1, []float64{-1})
}

func TestReplayFollowsSequenceThenFallsBack(t *testing.T) {
	s := NewReplay([]int{2, 0, 7, 1}) // 7 never ready: skipped
	ready := []int{0, 1, 2}
	var order []int
	for i := 0; i < 5; i++ {
		idx := s.Next(ready, int64(i))
		order = append(order, ready[idx])
	}
	// 2, 0, (7 skipped) 1, then the fresh round-robin fallback starts its
	// own cycle at the lowest id: 0, 1.
	want := []int{2, 0, 1, 0, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestSchedulersDriveMachine smoke-tests every scheduler against a real
// machine workload: all processes complete and the deterministic ones are
// reproducible.
func TestSchedulersDriveMachine(t *testing.T) {
	build := func(s apram.Scheduler) *apram.Machine {
		m := apram.NewMachine(4, s, 100000)
		for i := 0; i < 4; i++ {
			i := i
			m.AddProgram(func(p *apram.P) {
				for k := 0; k < 25; k++ {
					v := p.Read(i)
					p.Write(i, v+1)
				}
			})
		}
		return m
	}
	scheds := map[string]func() apram.Scheduler{
		"roundrobin": func() apram.Scheduler { return NewRoundRobin() },
		"random":     func() apram.Scheduler { return NewRandom(5) },
		"lockstep":   func() apram.Scheduler { return NewLockstep() },
		"stall":      func() apram.Scheduler { return NewStall(NewRoundRobin(), 2) },
		"weighted":   func() apram.Scheduler { return NewWeighted(5, []float64{5, 1, 1, 1}) },
		"replay":     func() apram.Scheduler { return NewReplay([]int{0, 1, 2, 3}) },
	}
	for name, mk := range scheds {
		t.Run(name, func(t *testing.T) {
			m := build(mk())
			total := m.Run()
			if total != 4*25*2 {
				t.Fatalf("total steps %d", total)
			}
			for i := 0; i < 4; i++ {
				if m.Mem()[i] != 25 {
					t.Fatalf("mem[%d] = %d", i, m.Mem()[i])
				}
			}
			// Determinism: per-process step counts repeat exactly.
			m2 := build(mk())
			m2.Run()
			for i := range m.Steps() {
				if m.Steps()[i] != m2.Steps()[i] {
					t.Fatalf("scheduler %s not deterministic", name)
				}
			}
		})
	}
}
