// Package sched provides schedulers for the APRAM simulator: fair ones
// (round-robin, seeded random), the lockstep schedule the paper's
// constructions assume, adversarial ones (stalling a set of processes,
// biasing toward some), and deterministic replay. A scheduler instance
// belongs to a single machine run.
package sched

import (
	"repro/internal/apram"
	"repro/internal/randutil"
)

// RoundRobin cycles through ready processes in id order, resuming after the
// last process it scheduled. The zero value is ready to use.
type RoundRobin struct {
	last int // last scheduled process id; start below all ids
}

var _ apram.Scheduler = (*RoundRobin)(nil)

// NewRoundRobin returns a fresh round-robin scheduler.
func NewRoundRobin() *RoundRobin { return &RoundRobin{last: -1} }

// Next picks the smallest ready id greater than the last scheduled,
// wrapping around.
func (s *RoundRobin) Next(ready []int, _ int64) int {
	for i, id := range ready {
		if id > s.last {
			s.last = id
			return i
		}
	}
	s.last = ready[0]
	return 0
}

// Random schedules a uniformly random ready process using a seeded
// generator, the default exploration scheduler for linearizability testing.
type Random struct {
	rng *randutil.Xoshiro256
}

var _ apram.Scheduler = (*Random)(nil)

// NewRandom returns a random scheduler with the given seed.
func NewRandom(seed uint64) *Random {
	return &Random{rng: randutil.NewXoshiro256(seed)}
}

// Next picks uniformly among ready processes.
func (s *Random) Next(ready []int, _ int64) int {
	return s.rng.Intn(len(ready))
}

// Lockstep runs the processes in rounds: each round, every process with a
// pending step takes exactly one, in id order. This is the schedule the
// paper's Section 3 halving construction and Theorem 5.4 lower bound assume
// ("the processes run in lockstep").
type Lockstep struct {
	stepped map[int]bool
}

var _ apram.Scheduler = (*Lockstep)(nil)

// NewLockstep returns a fresh lockstep scheduler.
func NewLockstep() *Lockstep { return &Lockstep{stepped: make(map[int]bool)} }

// Next picks the smallest ready id that has not stepped this round,
// starting a new round when all ready processes have.
func (s *Lockstep) Next(ready []int, _ int64) int {
	for i, id := range ready {
		if !s.stepped[id] {
			s.stepped[id] = true
			return i
		}
	}
	// Round complete: reset and schedule the smallest ready id.
	clear(s.stepped)
	s.stepped[ready[0]] = true
	return 0
}

// Stall wraps another scheduler and never schedules a stalled process while
// any non-stalled process is ready — the adversary that makes some
// processes arbitrarily slow (or crashed, if they are stalled forever).
// Wait-free algorithms must let the others finish regardless.
type Stall struct {
	inner   apram.Scheduler
	stalled map[int]bool
	// scratch buffers reused across calls
	filtered []int
	indices  []int
}

var _ apram.Scheduler = (*Stall)(nil)

// NewStall returns a Stall wrapping inner that stalls the given process ids.
func NewStall(inner apram.Scheduler, stalledIDs ...int) *Stall {
	m := make(map[int]bool, len(stalledIDs))
	for _, id := range stalledIDs {
		m[id] = true
	}
	return &Stall{inner: inner, stalled: m}
}

// Next schedules among non-stalled ready processes when any exist,
// otherwise falls back to the full ready set (so stalled-only states still
// make progress and the run terminates).
func (s *Stall) Next(ready []int, step int64) int {
	s.filtered = s.filtered[:0]
	s.indices = s.indices[:0]
	for i, id := range ready {
		if !s.stalled[id] {
			s.filtered = append(s.filtered, id)
			s.indices = append(s.indices, i)
		}
	}
	if len(s.filtered) == 0 {
		return s.inner.Next(ready, step)
	}
	return s.indices[s.inner.Next(s.filtered, step)]
}

// Weighted schedules ready process i with probability proportional to
// weight[i], modelling persistently fast and slow processes.
type Weighted struct {
	weights []float64
	rng     *randutil.Xoshiro256
}

var _ apram.Scheduler = (*Weighted)(nil)

// NewWeighted returns a weighted scheduler; weights[id] is process id's
// weight (ids beyond the slice weigh 1). It panics on negative weights.
func NewWeighted(seed uint64, weights []float64) *Weighted {
	for _, w := range weights {
		if w < 0 {
			panic("sched: negative weight")
		}
	}
	return &Weighted{weights: weights, rng: randutil.NewXoshiro256(seed)}
}

// Next samples among ready proportionally to weight.
func (s *Weighted) Next(ready []int, _ int64) int {
	total := 0.0
	for _, id := range ready {
		total += s.weightOf(id)
	}
	if total <= 0 {
		return s.rng.Intn(len(ready))
	}
	target := s.rng.Float64() * total
	acc := 0.0
	for i, id := range ready {
		acc += s.weightOf(id)
		if target < acc {
			return i
		}
	}
	return len(ready) - 1
}

func (s *Weighted) weightOf(id int) float64 {
	if id < len(s.weights) {
		return s.weights[id]
	}
	return 1
}

// Replay schedules a recorded sequence of process ids, skipping entries
// whose process has no pending step and falling back to round-robin when
// the recording is exhausted. Used to pin down schedules that exposed bugs.
type Replay struct {
	seq      []int
	pos      int
	fallback *RoundRobin
}

var _ apram.Scheduler = (*Replay)(nil)

// NewReplay returns a scheduler replaying seq.
func NewReplay(seq []int) *Replay {
	return &Replay{seq: seq, fallback: NewRoundRobin()}
}

// Next replays the next usable recorded id.
func (s *Replay) Next(ready []int, step int64) int {
	for s.pos < len(s.seq) {
		want := s.seq[s.pos]
		s.pos++
		for i, id := range ready {
			if id == want {
				return i
			}
		}
	}
	return s.fallback.Next(ready, step)
}
