package trace

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func ev(proc int, inv, resp int64) Event {
	return Event{Proc: proc, Kind: workload.OpSameSet, X: 0, Y: 1, Inv: inv, Resp: resp}
}

func TestSortStable(t *testing.T) {
	h := History{ev(2, 5, 6), ev(0, 1, 2), ev(1, 3, 4)}
	h.Sort()
	if h[0].Proc != 0 || h[1].Proc != 1 || h[2].Proc != 2 {
		t.Fatalf("sorted order wrong: %v", h)
	}
}

func TestPrecedesStrict(t *testing.T) {
	h := History{ev(0, 1, 2), ev(1, 3, 4), ev(2, 2, 5)}
	if !h.Precedes(0, 1) {
		t.Error("1<3 should precede")
	}
	if h.Precedes(0, 2) {
		t.Error("resp 2 == inv 2 must NOT precede (strict)")
	}
	if h.Precedes(1, 0) {
		t.Error("reverse precedence")
	}
}

func TestValidate(t *testing.T) {
	good := History{ev(0, 1, 2), ev(0, 3, 4), ev(1, 1, 9)}
	if err := good.Validate(); err != nil {
		t.Fatalf("good history rejected: %v", err)
	}
	bad := History{ev(0, 5, 3)}
	if err := bad.Validate(); err == nil {
		t.Fatal("reversed interval accepted")
	}
	overlap := History{ev(0, 1, 10), ev(0, 5, 12)}
	if err := overlap.Validate(); err == nil {
		t.Fatal("same-process overlap accepted")
	}
	neg := History{ev(0, -1, 2)}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative timestamp accepted")
	}
}

func TestRecorderMergesLanes(t *testing.T) {
	r := NewRecorder(3)
	r.Record(2, ev(2, 5, 6))
	r.Record(0, ev(0, 1, 2))
	r.Record(0, ev(0, 7, 8))
	h := r.History()
	if len(h) != 3 {
		t.Fatalf("history length %d", len(h))
	}
	if h[0].Inv != 1 || h[1].Inv != 5 || h[2].Inv != 7 {
		t.Fatalf("merged order wrong: %v", h)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Proc: 1, Kind: workload.OpUnite, X: 2, Y: 3, Result: true, Inv: 4, Resp: 5}
	s := e.String()
	for _, want := range []string{"p1", "Unite(2,3)", "true", "[4,5]"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
