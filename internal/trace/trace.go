// Package trace defines concurrent operation histories: per-operation
// invocation/response timestamps and results, recorded from simulator runs
// and consumed by the linearizability checker.
//
// Timestamps come from the APRAM's logical event clock (P.Tick): globally
// unique values whose order is consistent with real time, so operation o1
// really-precedes o2 exactly when o1.Resp < o2.Inv. (Uniqueness matters:
// operations that complete without any shared-memory step would otherwise
// get zero-length intervals that tie with neighbours and create spurious
// mutual precedence.)
package trace

import (
	"fmt"
	"sort"

	"repro/internal/workload"
)

// Event is one completed operation in a history.
type Event struct {
	Proc   int             // process that ran the operation
	Kind   workload.OpKind // OpUnite or OpSameSet
	X, Y   uint32          // arguments
	Result bool            // Unite: link performed; SameSet: answer
	Inv    int64           // global step count at invocation
	Resp   int64           // global step count at response
}

// String renders the event for failure messages.
func (e Event) String() string {
	return fmt.Sprintf("p%d %v=%v @[%d,%d]", e.Proc, workload.Op{Kind: e.Kind, X: e.X, Y: e.Y}, e.Result, e.Inv, e.Resp)
}

// History is a set of completed operations observed in one run.
type History []Event

// Sort orders the history by invocation time (then response, then process),
// the canonical order for display and for checker determinism.
func (h History) Sort() {
	sort.Slice(h, func(i, j int) bool {
		if h[i].Inv != h[j].Inv {
			return h[i].Inv < h[j].Inv
		}
		if h[i].Resp != h[j].Resp {
			return h[i].Resp < h[j].Resp
		}
		return h[i].Proc < h[j].Proc
	})
}

// Precedes reports whether event i really-precedes event j: i's response
// tick is smaller than j's invocation tick.
func (h History) Precedes(i, j int) bool { return h[i].Resp < h[j].Inv }

// Validate performs sanity checks on the history itself: non-negative
// timestamps, Inv ≤ Resp, and per-process operations sequential and
// non-overlapping. The checker requires a valid history.
func (h History) Validate() error {
	lastResp := map[int]int64{}
	sorted := append(History(nil), h...)
	sorted.Sort()
	for i, e := range sorted {
		if e.Inv < 0 || e.Resp < e.Inv {
			return fmt.Errorf("trace: event %d has bad interval [%d,%d]", i, e.Inv, e.Resp)
		}
		if last, seen := lastResp[e.Proc]; seen && e.Inv < last {
			return fmt.Errorf("trace: process %d operations overlap (inv %d < previous resp %d)", e.Proc, e.Inv, last)
		}
		lastResp[e.Proc] = e.Resp
	}
	return nil
}

// Recorder collects events from concurrently running simulator processes.
// Each process appends to its own lane (no locking needed: lanes are
// per-process), and Snapshot merges them after the run.
type Recorder struct {
	lanes [][]Event
}

// NewRecorder returns a recorder for p processes.
func NewRecorder(p int) *Recorder {
	return &Recorder{lanes: make([][]Event, p)}
}

// Record appends an event to proc's lane. Only proc's own goroutine may
// call it with that id.
func (r *Recorder) Record(proc int, e Event) {
	r.lanes[proc] = append(r.lanes[proc], e)
}

// History merges all lanes into one sorted history. Call after the run.
func (r *Recorder) History() History {
	var h History
	for _, lane := range r.lanes {
		h = append(h, lane...)
	}
	h.Sort()
	return h
}
