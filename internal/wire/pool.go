package wire

import (
	"io"
	"sync"

	"repro/dsu"
	"repro/internal/bufpool"
)

// Frame-buffer pooling: encode and decode share the size-classed pools
// of internal/bufpool (1 KiB … 16 MiB in powers of two, the same pools
// the WAL's record writer draws on) — a frame buffer is taken from the
// smallest class that fits, used for exactly one codec's lifetime, and
// returned on release. Buffers larger than the top class (a
// caller-raised maxFrame) are not pooled; they were exceptional to
// begin with.
const bufMinBits = bufpool.MinBits // 1 KiB: smallest pooled class

// getBuf returns a zero-length buffer with capacity ≥ n, pooled when n
// fits a size class.
func getBuf(n int) []byte { return bufpool.Get(n) }

// putBuf recycles a buffer into the largest class its capacity fully
// covers, so a later getBuf from that class always honors its size.
func putBuf(b []byte) { bufpool.Put(b) }

// Codec pooling: the binary encoder and decoder structs are recycled
// whole, carrying their DTO scratch with them; their frame buffers
// circulate through the shared size-class pools above. JSON codecs keep
// per-connection state (a persistent json.Encoder, the scanner's reused
// line buffer) but are not themselves pooled — NDJSON is the debug mode.
var (
	binEncPool = sync.Pool{New: func() any { return new(binaryEncoder) }}
	binDecPool = sync.Pool{New: func() any { return new(binaryDecoder) }}
)

// Scratch slices past these bounds are dropped at release so one huge
// frame cannot pin megabytes inside the codec pools.
const (
	maxScratchEdges   = 1 << 18 // 2 MiB of []dsu.Edge
	maxScratchAnswers = 1 << 20 // 1 MiB of []bool
)

// AcquireEncoder returns a pooled encoder writing f-formatted envelopes
// to w. It is NewEncoder with recycled buffers: pair it with
// ReleaseEncoder when the connection ends. Steady-state binary encoding
// through an acquired encoder performs zero allocations.
func AcquireEncoder(w io.Writer, f Format) Encoder {
	if f == JSON {
		return newJSONEncoder(w)
	}
	e := binEncPool.Get().(*binaryEncoder)
	e.w = w
	if e.buf == nil {
		e.buf = getBuf(1 << bufMinBits)
	}
	return e
}

// ReleaseEncoder recycles an encoder obtained from AcquireEncoder. The
// encoder must not be used afterwards. Encoders from NewEncoder (or a
// second release) are ignored safely.
func ReleaseEncoder(enc Encoder) {
	e, ok := enc.(*binaryEncoder)
	if !ok || e == nil || e.w == nil {
		return
	}
	putBuf(e.buf)
	e.buf = nil
	e.w = nil
	binEncPool.Put(e)
}

// AcquireDecoder returns a pooled scratch-reuse decoder reading
// f-formatted envelopes from r (maxFrame as in NewDecoder). Ownership
// differs from NewDecoder: every envelope it returns — the Envelope,
// its request/reply bodies, edge and answer slices — lives in the
// decoder's scratch and is valid only until the next Decode or
// ReleaseDecoder. Copy out whatever outlives that window. In exchange,
// steady-state binary unite/query/reply decoding performs zero
// allocations. Pair with ReleaseDecoder when the connection ends.
func AcquireDecoder(r io.Reader, f Format, maxFrame int) Decoder {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	if f == JSON {
		return newJSONDecoder(r, maxFrame)
	}
	d := binDecPool.Get().(*binaryDecoder)
	d.r, d.maxFrame, d.reuse = r, maxFrame, true
	if d.buf == nil {
		d.buf = getBuf(1 << bufMinBits)
	}
	return d
}

// ReleaseDecoder recycles a decoder obtained from AcquireDecoder and
// invalidates every envelope it ever returned. Decoders from NewDecoder
// (or a second release) are ignored safely.
func ReleaseDecoder(dec Decoder) {
	d, ok := dec.(*binaryDecoder)
	if !ok || d == nil || !d.reuse || d.r == nil {
		return
	}
	putBuf(d.buf)
	d.buf = nil
	d.r = nil
	if cap(d.edges) > maxScratchEdges {
		d.edges = nil
	}
	if cap(d.answers) > maxScratchAnswers {
		d.answers = nil
	}
	// Drop references held by the scratch DTOs (the slices above are kept
	// via their own fields, not through these).
	d.env = Envelope{}
	d.unite = dsu.UniteRequest{}
	d.query = dsu.QueryRequest{}
	d.reply = dsu.BatchReply{}
	binDecPool.Put(d)
}
