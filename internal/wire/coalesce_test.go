package wire

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// blockingSink is a write target whose Write parks until released,
// simulating a slow peer: the flusher stalls inside it while producers
// keep appending — exactly the window where coalescing happens.
type blockingSink struct {
	entered chan struct{} // signaled (non-blocking) on each Write entry
	release chan struct{} // closed to let Writes complete

	mu     sync.Mutex
	writes int
	data   bytes.Buffer
}

func newBlockingSink() *blockingSink {
	return &blockingSink{entered: make(chan struct{}, 1), release: make(chan struct{})}
}

func (s *blockingSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	s.writes++
	s.data.Write(p)
	s.mu.Unlock()
	select {
	case s.entered <- struct{}{}:
	default:
	}
	<-s.release
	return len(p), nil
}

func (s *blockingSink) snapshot() (int, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writes, s.data.String()
}

// TestFlushWriterCoalesces is the satellite-3 core property: small
// frames written while the downstream is busy land in one downstream
// Write, byte-for-byte in order.
func TestFlushWriterCoalesces(t *testing.T) {
	sink := newBlockingSink()
	fw := NewFlushWriter(sink, 0, nil)

	frame := func(i int) []byte { return []byte(fmt.Sprintf("frame-%03d;", i)) }
	var want bytes.Buffer
	want.Write(frame(0))
	if _, err := fw.Write(frame(0)); err != nil {
		t.Fatal(err)
	}
	<-sink.entered // the flusher is now parked inside sink.Write(frame 0)
	const n = 100
	for i := 1; i < n; i++ {
		want.Write(frame(i))
		if _, err := fw.Write(frame(i)); err != nil {
			t.Fatal(err)
		}
	}
	close(sink.release)
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	writes, got := sink.snapshot()
	if got != want.String() {
		t.Fatalf("downstream bytes differ:\n got %q\nwant %q", got, want.String())
	}
	// Frame 0 went alone; frames 1..99 accumulated behind the stalled
	// flusher and must arrive as one coalesced write.
	if writes != 2 {
		t.Errorf("downstream writes = %d, want 2 (1 stalled + 1 coalesced batch of %d)", writes, n-1)
	}
}

// TestFlushWriterFlush pins that Flush delivers everything written
// before it, without needing Close.
func TestFlushWriterFlush(t *testing.T) {
	var sink bytes.Buffer
	fw := NewFlushWriter(&sink, 0, nil)
	defer fw.Close()
	if _, err := fw.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	// Flush's return synchronizes with the flusher's last downstream
	// write, so this read is ordered.
	if got := sink.String(); got != "hello world" {
		t.Fatalf("after Flush, sink = %q, want %q", got, "hello world")
	}
}

// TestFlushWriterOnFlush pins the downstream-flush hook: it runs after
// every underlying write (the server passes ResponseController.Flush
// here so coalesced frames leave the HTTP buffers too).
func TestFlushWriterOnFlush(t *testing.T) {
	var sink bytes.Buffer
	var mu sync.Mutex
	hooks := 0
	fw := NewFlushWriter(&sink, 0, func() { mu.Lock(); hooks++; mu.Unlock() })
	if _, err := fw.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	h := hooks
	mu.Unlock()
	if h == 0 {
		t.Fatal("onFlush never ran despite a completed Flush")
	}
	fw.Close()
}

// TestFlushWriterClose pins close semantics: Close drains pending
// bytes, later Writes and Flushes fail with ErrWriterClosed, and Close
// is idempotent.
func TestFlushWriterClose(t *testing.T) {
	var sink bytes.Buffer
	fw := NewFlushWriter(&sink, 0, nil)
	for i := 0; i < 50; i++ {
		if _, err := fw.Write([]byte("abcdefgh")); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	if got, want := sink.Len(), 50*8; got != want {
		t.Fatalf("Close drained %d bytes, want %d", got, want)
	}
	if _, err := fw.Write([]byte("late")); !errors.Is(err, ErrWriterClosed) {
		t.Fatalf("Write after Close = %v, want ErrWriterClosed", err)
	}
	if err := fw.Flush(); !errors.Is(err, ErrWriterClosed) {
		t.Fatalf("Flush after Close = %v, want ErrWriterClosed", err)
	}
	if err := fw.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
}

// errSink fails every write.
type errSink struct{ err error }

func (s errSink) Write(p []byte) (int, error) { return 0, s.err }

// TestFlushWriterErrorSticky pins error propagation: once the
// downstream fails, the error reaches producers, Flush, and Close.
func TestFlushWriterErrorSticky(t *testing.T) {
	sinkErr := errors.New("connection reset by peer")
	fw := NewFlushWriter(errSink{sinkErr}, 0, nil)
	if _, err := fw.Write([]byte("doomed")); err != nil {
		t.Fatalf("first write should buffer cleanly, got %v", err)
	}
	// The flusher hits the error asynchronously; poll until it lands.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := fw.Flush(); errors.Is(err, sinkErr) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flusher never surfaced the downstream error")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := fw.Write([]byte("more")); !errors.Is(err, sinkErr) {
		t.Fatalf("Write after downstream failure = %v, want %v", err, sinkErr)
	}
	if err := fw.Close(); !errors.Is(err, sinkErr) {
		t.Fatalf("Close after downstream failure = %v, want %v", err, sinkErr)
	}
}

// TestFlushWriterBackpressure is the PR-5 contract at the coalescing
// layer: a stalled downstream fills the pending buffer to its limit and
// blocks the producer until the flusher drains.
func TestFlushWriterBackpressure(t *testing.T) {
	sink := newBlockingSink()
	fw := NewFlushWriter(sink, 8, nil)

	if _, err := fw.Write([]byte("12345678")); err != nil { // swapped out by the flusher
		t.Fatal(err)
	}
	<-sink.entered // flusher parked downstream
	if _, err := fw.Write([]byte("abcdefgh")); err != nil { // fills pending to the limit
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() {
		_, err := fw.Write([]byte("ZZ")) // must block: pending ≥ limit
		blocked <- err
	}()
	select {
	case err := <-blocked:
		t.Fatalf("write past the limit returned (%v) despite a stalled flusher", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(sink.release) // downstream drains; the blocked producer resumes
	select {
	case err := <-blocked:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("producer stayed blocked after the flusher drained")
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, got := sink.snapshot(); got != "12345678abcdefghZZ" {
		t.Fatalf("downstream bytes = %q, want %q", got, "12345678abcdefghZZ")
	}
}
