package wire

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"repro/dsu"
)

// TestPooledRoundTrip is TestRoundTrip for the pooled codecs: any
// well-formed envelope survives AcquireEncoder→AcquireDecoder exactly,
// compared immediately (the pooled ownership window) across back-to-back
// sequences on one connection-lifetime codec pair.
func TestPooledRoundTrip(t *testing.T) {
	for _, format := range []Format{Binary, JSON} {
		t.Run(format.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			var buf bytes.Buffer
			enc := AcquireEncoder(&buf, format)
			defer ReleaseEncoder(enc)
			want := make([]*Envelope, 200)
			for i := range want {
				want[i] = randomEnvelope(rng)
				if err := enc.Encode(want[i]); err != nil {
					t.Fatalf("encode #%d: %v", i, err)
				}
			}
			dec := AcquireDecoder(&buf, format, DefaultMaxFrame)
			defer ReleaseDecoder(dec)
			for i := range want {
				got, err := dec.Decode()
				if err != nil {
					t.Fatalf("decode #%d: %v", i, err)
				}
				if !reflect.DeepEqual(got, want[i]) {
					t.Fatalf("envelope #%d:\n got %+v\nwant %+v", i, got, want[i])
				}
			}
			if _, err := dec.Decode(); err != io.EOF {
				t.Fatalf("decode past end = %v, want io.EOF", err)
			}
		})
	}
}

// steadyStateEnvelopes is the batch-path working set the zero-alloc
// target covers: a unite, a query, and a reply with answers, traced and
// untraced.
func steadyStateEnvelopes() []*Envelope {
	edges := []dsu.Edge{{X: 1, Y: 2}, {X: 3, Y: 4}, {X: 5, Y: 6}}
	return []*Envelope{
		{Kind: KindUnite, Seq: 1, Unite: &dsu.UniteRequest{Edges: edges}},
		{Kind: KindQuery, Seq: 2, Trace: 0xbeef, Span: 4,
			Query: &dsu.QueryRequest{Pairs: edges, Options: dsu.BatchOptions{Workers: 4}}},
		{Kind: KindReply, Seq: 2, Trace: 0xbeef, Span: 4,
			Reply: &dsu.BatchReply{Merged: 3, Answers: []bool{true, false, true}}},
		{Kind: KindFlush, Seq: 3},
	}
}

// TestPooledCodecAllocs pins the tentpole target: steady-state binary
// encode and decode of unite/query/reply envelopes through acquired
// codecs perform zero allocations. CI runs BenchmarkWireFastPath with
// the same pin; this is the fast in-tree guard.
func TestPooledCodecAllocs(t *testing.T) {
	envs := steadyStateEnvelopes()

	enc := AcquireEncoder(io.Discard, Binary)
	defer ReleaseEncoder(enc)
	if allocs := testing.AllocsPerRun(200, func() {
		for _, env := range envs {
			if err := enc.Encode(env); err != nil {
				t.Fatal(err)
			}
		}
	}); allocs != 0 {
		t.Errorf("pooled binary encode: %.1f allocs/run, want 0", allocs)
	}

	var buf bytes.Buffer
	wireEnc := NewEncoder(&buf, Binary)
	for _, env := range envs {
		if err := wireEnc.Encode(env); err != nil {
			t.Fatal(err)
		}
	}
	data := buf.Bytes()
	r := bytes.NewReader(data)
	dec := AcquireDecoder(r, Binary, DefaultMaxFrame)
	defer ReleaseDecoder(dec)
	if allocs := testing.AllocsPerRun(200, func() {
		r.Reset(data)
		for i := 0; i < len(envs); i++ {
			if _, err := dec.Decode(); err != nil {
				t.Fatal(err)
			}
		}
	}); allocs != 0 {
		t.Errorf("pooled binary decode: %.1f allocs/run, want 0", allocs)
	}
}

// copyReply deep-copies a reply envelope the way Client.rpc does —
// the documented escape hatch for callers whose replies must outlive
// the pooled decoder's ownership window.
func copyReply(env *Envelope) (Envelope, dsu.BatchReply) {
	cp := *env
	rep := *env.Reply
	if rep.Answers != nil {
		rep.Answers = append(make([]bool, 0, len(rep.Answers)), rep.Answers...)
	}
	cp.Reply = &rep
	return cp, rep
}

// TestPooledReplyCopyOutSurvivesReuse is the satellite-1 regression: a
// reply copied out of a pooled decoder stays intact when the next Decode
// mutates the recycled scratch underneath the original envelope.
func TestPooledReplyCopyOutSurvivesReuse(t *testing.T) {
	first := &Envelope{Kind: KindReply, Seq: 1, Reply: &dsu.BatchReply{
		Merged: 7, CASRetries: 3, Answers: []bool{true, false, true, true}}}
	second := &Envelope{Kind: KindReply, Seq: 2, Reply: &dsu.BatchReply{
		Merged: -100, CASRetries: 999, Answers: []bool{false, true, false, false}}}

	var buf bytes.Buffer
	enc := NewEncoder(&buf, Binary)
	for _, env := range []*Envelope{first, second} {
		if err := enc.Encode(env); err != nil {
			t.Fatal(err)
		}
	}
	dec := AcquireDecoder(&buf, Binary, DefaultMaxFrame)
	defer ReleaseDecoder(dec)

	got1, err := dec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	cp, rep := copyReply(got1)

	// The second Decode reuses the scratch backing got1 and cp's source.
	got2, err := dec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, second) {
		t.Fatalf("second decode:\n got %+v\nwant %+v", got2, second)
	}
	if got1.Reply.Merged != second.Reply.Merged {
		t.Fatalf("scratch semantics changed: first envelope no longer aliases the recycled buffer (Merged=%d)", got1.Reply.Merged)
	}
	// The copy must be untouched by the overwrite.
	if !reflect.DeepEqual(&cp, first) || !reflect.DeepEqual(rep.Answers, first.Reply.Answers) {
		t.Fatalf("copied reply mutated by scratch reuse:\n got %+v\nwant %+v", &cp, first)
	}
}

// TestUnpooledDecoderKeepsOwnership pins the NewDecoder contract the
// fast path must not erode: envelopes from an unpooled decoder stay
// valid after later Decodes.
func TestUnpooledDecoderKeepsOwnership(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var buf bytes.Buffer
	enc := NewEncoder(&buf, Binary)
	want := make([]*Envelope, 20)
	for i := range want {
		want[i] = randomEnvelope(rng)
		if err := enc.Encode(want[i]); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewDecoder(&buf, Binary, DefaultMaxFrame)
	got := make([]*Envelope, 0, len(want))
	for range want {
		env, err := dec.Decode()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, env) // retained across Decodes on purpose
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("retained envelope #%d changed:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

// TestReleaseIsSafe pins the release edge cases: releasing nil codecs,
// unpooled codecs, or the same codec twice must all be no-ops.
func TestReleaseIsSafe(t *testing.T) {
	ReleaseEncoder(nil)
	ReleaseDecoder(nil)
	var buf bytes.Buffer
	ReleaseEncoder(NewEncoder(&buf, Binary))
	ReleaseDecoder(NewDecoder(&buf, Binary, DefaultMaxFrame))
	ReleaseEncoder(NewEncoder(&buf, JSON))
	ReleaseDecoder(NewDecoder(&buf, JSON, DefaultMaxFrame))

	enc := AcquireEncoder(&buf, Binary)
	ReleaseEncoder(enc)
	ReleaseEncoder(enc)
	dec := AcquireDecoder(&buf, Binary, DefaultMaxFrame)
	ReleaseDecoder(dec)
	ReleaseDecoder(dec)
}

// TestBufPoolClasses pins the size-class arithmetic: a recycled buffer
// is only ever handed back from a class whose size it fully covers.
func TestBufPoolClasses(t *testing.T) {
	for _, n := range []int{1, 1 << 10, (1 << 10) + 1, 1 << 15, 1 << 24} {
		b := getBuf(n)
		if cap(b) < n || len(b) != 0 {
			t.Fatalf("getBuf(%d): len=%d cap=%d", n, len(b), cap(b))
		}
		putBuf(b)
	}
	// Oversized buffers are not pooled but still served.
	big := getBuf(1<<24 + 1)
	if cap(big) < 1<<24+1 {
		t.Fatalf("oversized getBuf: cap=%d", cap(big))
	}
	putBuf(big) // dropped silently

	// A buffer recycled into a class must satisfy any request the class
	// serves: put a 3 KiB buffer, ask for sizes around its class.
	putBuf(make([]byte, 0, 3<<10))
	for i := 0; i < 10; i++ {
		b := getBuf(2 << 10)
		if cap(b) < 2<<10 {
			t.Fatalf("class served undersized buffer: cap=%d want ≥ %d", cap(b), 2<<10)
		}
	}
}
