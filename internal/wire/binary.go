package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"repro/dsu"
	"repro/internal/core"
)

// Binary framing: every message is a 4-byte big-endian payload length
// followed by the payload. The payload opens with a 1-byte kind and an
// 8-byte big-endian sequence number; the body depends on the kind.
//
//	unite/query  [workers i32][grain i32][find u8][flags u8]
//	             [trace u64][span u64]                    (only when flags bit2)
//	             [edges: X u32, Y u32 ...]
//	reply        [merged i64][filtered i64][casretries i64][elapsed i64][stats 10×i64]
//	             [find u8][flags u8]
//	             [trace u64][span u64]                    (only when flags bit1)
//	             [answer count u32][answer bitset]        (count+bitset only when flags bit0)
//	error        [utf-8 message]
//	end          [batches u64][edges i64][merged i64][filtered i64][failed u64][utf-8 close error]
//	flush        (empty)
//
// Edge counts are never declared — they are derived from the frame length,
// so a count can't contradict the bytes that actually arrived. The answer
// bitset does declare a count (answers aren't byte-aligned) and the
// decoder insists the bitset length matches it exactly. Option flags:
// bit 0 prefilter, bit 1 connected-filter, bit 2 "trace context present"
// (a 16-byte trace/span pair follows the flags byte — optional, so peers
// that predate tracing still interoperate: old frames decode here as
// untraced, and old decoders never see the bit from an untraced sender).
// Reply flags: bit 0 "answers present" (distinguishing a unite reply's
// absent answers from a query reply with zero pairs), bit 1 "trace
// context present" (same 16-byte pair, before the answer count). A trace
// extension with a zero trace ID contradicts itself and is rejected as
// corrupt. Stats order is the core.Stats field order — Reads,
// CASAttempts, CASFailures, FindSteps, Rounds, Finds, Links, Rewrites,
// Ops, Filtered — and must be revisited if core.Stats grows.
const (
	binHeaderLen = 4
	binMetaLen   = 1 + 8 // kind + seq
	binOptsLen   = 4 + 4 + 1 + 1
	binStatsLen  = 10 * 8
	binReplyLen  = 8 + 8 + 8 + 8 + binStatsLen + 1 + 1
	binEndLen    = 8 + 8 + 8 + 8 + 8
	binTraceLen  = 8 + 8 // optional trace/span extension
)

// Flag bits of the unite/query options byte and the reply flags byte.
const (
	optFlagPrefilter = 1 << 0
	optFlagConnected = 1 << 1
	optFlagTrace     = 1 << 2
	repFlagAnswers   = 1 << 0
	repFlagTrace     = 1 << 1
)

type binaryEncoder struct {
	w   io.Writer
	buf []byte
}

func newBinaryEncoder(w io.Writer) *binaryEncoder { return &binaryEncoder{w: w} }

// clamp32 saturates an int into int32 range for the options fields (any
// out-of-range tuning value means "default" or "absurd" downstream anyway).
func clamp32(v int) int32 {
	if v > math.MaxInt32 {
		return math.MaxInt32
	}
	if v < math.MinInt32 {
		return math.MinInt32
	}
	return int32(v)
}

func appendOptions(b []byte, o dsu.BatchOptions, trace, span uint64) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(clamp32(o.Workers)))
	b = binary.BigEndian.AppendUint32(b, uint32(clamp32(o.Grain)))
	b = append(b, byte(o.Find))
	var flags byte
	if o.Prefilter {
		flags |= optFlagPrefilter
	}
	if o.ConnectedFilter {
		flags |= optFlagConnected
	}
	if trace != 0 {
		flags |= optFlagTrace
	}
	b = append(b, flags)
	if trace != 0 {
		b = binary.BigEndian.AppendUint64(b, trace)
		b = binary.BigEndian.AppendUint64(b, span)
	}
	return b
}

func appendEdges(b []byte, edges []dsu.Edge) []byte {
	for _, e := range edges {
		b = binary.BigEndian.AppendUint32(b, e.X)
		b = binary.BigEndian.AppendUint32(b, e.Y)
	}
	return b
}

func appendStats(b []byte, s core.Stats) []byte {
	for _, v := range [...]int64{s.Reads, s.CASAttempts, s.CASFailures, s.FindSteps, s.Rounds, s.Finds, s.Links, s.Rewrites, s.Ops, s.Filtered} {
		b = binary.BigEndian.AppendUint64(b, uint64(v))
	}
	return b
}

func (e *binaryEncoder) Encode(env *Envelope) error {
	b := e.buf[:0]
	b = append(b, 0, 0, 0, 0) // length, patched below
	b = append(b, byte(env.Kind))
	b = binary.BigEndian.AppendUint64(b, env.Seq)
	switch env.Kind {
	case KindUnite:
		var req dsu.UniteRequest
		if env.Unite != nil {
			req = *env.Unite
		}
		b = appendOptions(b, req.Options, env.Trace, env.Span)
		b = appendEdges(b, req.Edges)
	case KindQuery:
		var req dsu.QueryRequest
		if env.Query != nil {
			req = *env.Query
		}
		b = appendOptions(b, req.Options, env.Trace, env.Span)
		b = appendEdges(b, req.Pairs)
	case KindFlush:
	case KindReply:
		var rep dsu.BatchReply
		if env.Reply != nil {
			rep = *env.Reply
		}
		b = binary.BigEndian.AppendUint64(b, uint64(rep.Merged))
		b = binary.BigEndian.AppendUint64(b, uint64(int64(rep.Filtered)))
		b = binary.BigEndian.AppendUint64(b, uint64(rep.CASRetries))
		b = binary.BigEndian.AppendUint64(b, uint64(int64(rep.Elapsed)))
		b = appendStats(b, rep.Stats)
		b = append(b, byte(rep.Find))
		var rflags byte
		if rep.Answers != nil {
			rflags |= repFlagAnswers
		}
		if env.Trace != 0 {
			rflags |= repFlagTrace
		}
		b = append(b, rflags)
		if env.Trace != 0 {
			b = binary.BigEndian.AppendUint64(b, env.Trace)
			b = binary.BigEndian.AppendUint64(b, env.Span)
		}
		if rep.Answers != nil {
			b = binary.BigEndian.AppendUint32(b, uint32(len(rep.Answers)))
			// Build the bitset in place — appending zero bytes and setting
			// bits directly keeps the steady-state encode allocation-free.
			off := len(b)
			for n := (len(rep.Answers) + 7) / 8; n > 0; n-- {
				b = append(b, 0)
			}
			for i, v := range rep.Answers {
				if v {
					b[off+i/8] |= 1 << (i % 8)
				}
			}
		}
	case KindError:
		b = append(b, env.Error...)
	case KindEnd:
		var end StreamEnd
		if env.End != nil {
			end = *env.End
		}
		b = binary.BigEndian.AppendUint64(b, end.Batches)
		b = binary.BigEndian.AppendUint64(b, uint64(end.Edges))
		b = binary.BigEndian.AppendUint64(b, uint64(end.Merged))
		b = binary.BigEndian.AppendUint64(b, uint64(end.Filtered))
		b = binary.BigEndian.AppendUint64(b, end.Failed)
		b = append(b, env.Error...) // the close error rides the end frame
	default:
		return fmt.Errorf("%w: cannot encode kind %d", ErrCorruptFrame, env.Kind)
	}
	payload := len(b) - binHeaderLen
	if uint64(payload) > math.MaxUint32 {
		return ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(b[:4], uint32(payload))
	e.buf = b // recycle the working buffer across messages
	_, err := e.w.Write(b)
	return err
}

// binaryDecoder reads frames into a reusable payload buffer. In reuse
// mode (AcquireDecoder) the decoded DTOs live in the decoder's scratch
// fields too, so a steady-state unite/query/reply decode performs no
// allocation at all — the returned envelope is valid only until the next
// Decode (or ReleaseDecoder). Without reuse (NewDecoder) every Decode
// returns freshly allocated DTOs the caller owns outright.
type binaryDecoder struct {
	r        io.Reader
	maxFrame int
	reuse    bool
	head     [binHeaderLen]byte
	buf      []byte

	// Scratch DTOs, used only in reuse mode.
	env     Envelope
	unite   dsu.UniteRequest
	query   dsu.QueryRequest
	reply   dsu.BatchReply
	end     StreamEnd
	edges   []dsu.Edge
	answers []bool
}

func newBinaryDecoder(r io.Reader, maxFrame int) *binaryDecoder {
	return &binaryDecoder{r: r, maxFrame: maxFrame}
}

// envelope returns the target envelope for one Decode: the zeroed
// scratch in reuse mode, a fresh allocation otherwise.
func (d *binaryDecoder) envelope() *Envelope {
	if !d.reuse {
		return &Envelope{}
	}
	d.env = Envelope{}
	return &d.env
}

// edgeSlice returns a decode target for n edges, reusing (and growing)
// the scratch slice in reuse mode.
func (d *binaryDecoder) edgeSlice(n int) []dsu.Edge {
	if !d.reuse {
		return make([]dsu.Edge, n)
	}
	if cap(d.edges) < n {
		d.edges = make([]dsu.Edge, n)
	}
	d.edges = d.edges[:n]
	return d.edges
}

// answerSlice is edgeSlice for reply answer vectors. The result is
// non-nil even for n == 0: answers-present-but-empty and answers-absent
// are distinct on the wire and must stay distinct after decode.
func (d *binaryDecoder) answerSlice(n int) []bool {
	if !d.reuse {
		return make([]bool, n)
	}
	if cap(d.answers) < n || d.answers == nil {
		c := n
		if c < 8 {
			c = 8
		}
		d.answers = make([]bool, n, c)
	}
	d.answers = d.answers[:n]
	return d.answers
}

func (d *binaryDecoder) Decode() (*Envelope, error) {
	if _, err := io.ReadFull(d.r, d.head[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err // io.EOF here is a clean end of stream
	}
	length := int(binary.BigEndian.Uint32(d.head[:]))
	if length > d.maxFrame {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, length, d.maxFrame)
	}
	if length < binMetaLen {
		return nil, fmt.Errorf("%w: %d-byte payload cannot hold kind and sequence", ErrCorruptFrame, length)
	}
	if cap(d.buf) < length {
		putBuf(d.buf) // the payload never escapes Decode, so recycle
		d.buf = getBuf(length)
	}
	p := d.buf[:length]
	if _, err := io.ReadFull(d.r, p); err != nil {
		return nil, io.ErrUnexpectedEOF
	}
	env := d.envelope()
	env.Kind, env.Seq = Kind(p[0]), binary.BigEndian.Uint64(p[1:9])
	body := p[9:]
	switch env.Kind {
	case KindUnite:
		opts, edges, err := d.parseBatch(body, env)
		if err != nil {
			return nil, err
		}
		if d.reuse {
			d.unite = dsu.UniteRequest{Edges: edges, Options: opts}
			env.Unite = &d.unite
		} else {
			env.Unite = &dsu.UniteRequest{Edges: edges, Options: opts}
		}
	case KindQuery:
		opts, pairs, err := d.parseBatch(body, env)
		if err != nil {
			return nil, err
		}
		if d.reuse {
			d.query = dsu.QueryRequest{Pairs: pairs, Options: opts}
			env.Query = &d.query
		} else {
			env.Query = &dsu.QueryRequest{Pairs: pairs, Options: opts}
		}
	case KindFlush:
		if len(body) != 0 {
			return nil, fmt.Errorf("%w: flush carries %d stray bytes", ErrCorruptFrame, len(body))
		}
	case KindReply:
		rep := &d.reply
		if !d.reuse {
			rep = &dsu.BatchReply{}
		}
		if err := d.parseReply(body, env, rep); err != nil {
			return nil, err
		}
		env.Reply = rep
	case KindError:
		env.Error = string(body)
	case KindEnd:
		if len(body) < binEndLen {
			return nil, fmt.Errorf("%w: end payload is %d bytes, want ≥ %d", ErrCorruptFrame, len(body), binEndLen)
		}
		end := &d.end
		if !d.reuse {
			end = &StreamEnd{}
		}
		*end = StreamEnd{
			Batches:  binary.BigEndian.Uint64(body[0:8]),
			Edges:    int64(binary.BigEndian.Uint64(body[8:16])),
			Merged:   int64(binary.BigEndian.Uint64(body[16:24])),
			Filtered: int64(binary.BigEndian.Uint64(body[24:32])),
			Failed:   binary.BigEndian.Uint64(body[32:40]),
		}
		env.End = end
		env.Error = string(body[binEndLen:])
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrCorruptFrame, p[0])
	}
	return env, nil
}

// parseBatch decodes the shared unite/query body: options, the optional
// trace-context extension (stored straight into env), then a
// length-derived edge list.
func (d *binaryDecoder) parseBatch(body []byte, env *Envelope) (dsu.BatchOptions, []dsu.Edge, error) {
	if len(body) < binOptsLen {
		return dsu.BatchOptions{}, nil, fmt.Errorf("%w: batch body is %d bytes, want ≥ %d", ErrCorruptFrame, len(body), binOptsLen)
	}
	opts := dsu.BatchOptions{
		Workers:         int(int32(binary.BigEndian.Uint32(body[0:4]))),
		Grain:           int(int32(binary.BigEndian.Uint32(body[4:8]))),
		Find:            dsu.FindStrategy(body[8]),
		Prefilter:       body[9]&optFlagPrefilter != 0,
		ConnectedFilter: body[9]&optFlagConnected != 0,
	}
	raw := body[binOptsLen:]
	if body[9]&optFlagTrace != 0 {
		if len(raw) < binTraceLen {
			return dsu.BatchOptions{}, nil, fmt.Errorf("%w: trace context truncated", ErrCorruptFrame)
		}
		env.Trace = binary.BigEndian.Uint64(raw[0:8])
		env.Span = binary.BigEndian.Uint64(raw[8:16])
		if env.Trace == 0 {
			return dsu.BatchOptions{}, nil, fmt.Errorf("%w: trace context with zero trace id", ErrCorruptFrame)
		}
		raw = raw[binTraceLen:]
	}
	if len(raw)%8 != 0 {
		return dsu.BatchOptions{}, nil, fmt.Errorf("%w: %d edge bytes are not a multiple of 8", ErrCorruptFrame, len(raw))
	}
	var edges []dsu.Edge
	if len(raw) > 0 {
		edges = d.edgeSlice(len(raw) / 8)
		for i := range edges {
			edges[i].X = binary.BigEndian.Uint32(raw[i*8:])
			edges[i].Y = binary.BigEndian.Uint32(raw[i*8+4:])
		}
	}
	return opts, edges, nil
}

func parseStats(b []byte) core.Stats {
	at := func(i int) int64 { return int64(binary.BigEndian.Uint64(b[i*8:])) }
	return core.Stats{
		Reads: at(0), CASAttempts: at(1), CASFailures: at(2), FindSteps: at(3),
		Rounds: at(4), Finds: at(5), Links: at(6), Rewrites: at(7), Ops: at(8), Filtered: at(9),
	}
}

func (d *binaryDecoder) parseReply(body []byte, env *Envelope, rep *dsu.BatchReply) error {
	if len(body) < binReplyLen {
		return fmt.Errorf("%w: reply body is %d bytes, want ≥ %d", ErrCorruptFrame, len(body), binReplyLen)
	}
	*rep = dsu.BatchReply{
		Merged:     int64(binary.BigEndian.Uint64(body[0:8])),
		Filtered:   int(int64(binary.BigEndian.Uint64(body[8:16]))),
		CASRetries: int64(binary.BigEndian.Uint64(body[16:24])),
		Elapsed:    time.Duration(binary.BigEndian.Uint64(body[24:32])),
		Stats:      parseStats(body[32 : 32+binStatsLen]),
		Find:       dsu.FindStrategy(body[32+binStatsLen]),
	}
	rflags := body[32+binStatsLen+1]
	if rflags&^(repFlagAnswers|repFlagTrace) != 0 {
		return fmt.Errorf("%w: reply flag byte %d", ErrCorruptFrame, rflags)
	}
	rest := body[binReplyLen:]
	if rflags&repFlagTrace != 0 {
		if len(rest) < binTraceLen {
			return fmt.Errorf("%w: reply trace context truncated", ErrCorruptFrame)
		}
		env.Trace = binary.BigEndian.Uint64(rest[0:8])
		env.Span = binary.BigEndian.Uint64(rest[8:16])
		if env.Trace == 0 {
			return fmt.Errorf("%w: trace context with zero trace id", ErrCorruptFrame)
		}
		rest = rest[binTraceLen:]
	}
	if rflags&repFlagAnswers == 0 {
		if len(rest) != 0 {
			return fmt.Errorf("%w: reply without answers carries %d stray bytes", ErrCorruptFrame, len(rest))
		}
		return nil
	}
	if len(rest) < 4 {
		return fmt.Errorf("%w: reply answer count truncated", ErrCorruptFrame)
	}
	count := int(binary.BigEndian.Uint32(rest[0:4]))
	bits := rest[4:]
	if len(bits) != (count+7)/8 {
		return fmt.Errorf("%w: %d answers need %d bitset bytes, frame has %d", ErrCorruptFrame, count, (count+7)/8, len(bits))
	}
	rep.Answers = d.answerSlice(count)
	for i := range rep.Answers {
		rep.Answers[i] = bits[i/8]&(1<<(i%8)) != 0
	}
	return nil
}
