package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/dsu"
)

// JSON debug mode: one envelope per line (NDJSON), the kind spelled as a
// string, empty fields omitted — framing a human can speak with curl and
// read in a terminal. Same model, same limits as the binary framing: a
// line longer than the decoder's maxFrame is rejected as ErrFrameTooLarge,
// a line that isn't a well-formed envelope as ErrCorruptFrame, and a
// stream ending without a final newline still yields its last line. The
// dsu DTOs marshal under their own JSON tags, so what travels here is
// exactly the tenant-API vocabulary.
// Trace context travels as two optional numeric fields; omitted keys
// mean untraced, so pre-tracing peers read and write the same lines they
// always did, and a "span" without a "trace" is rejected just as the
// binary framing rejects a zero-ID trace extension.
type jsonEnvelope struct {
	Kind  string            `json:"kind"`
	Seq   uint64            `json:"seq,omitempty"`
	Trace uint64            `json:"trace,omitempty"`
	Span  uint64            `json:"span,omitempty"`
	Unite *dsu.UniteRequest `json:"unite,omitempty"`
	Query *dsu.QueryRequest `json:"query,omitempty"`
	Reply *dsu.BatchReply   `json:"reply,omitempty"`
	End   *StreamEnd        `json:"end,omitempty"`
	Error string            `json:"error,omitempty"`
}

// jsonEncoder carries per-connection state: one persistent json.Encoder
// (whose internal buffer is reused across envelopes — no fresh marshal
// output slice per line) and one scratch jsonEnvelope. Encoding is not
// allocation-free — encoding/json reflects — but the per-envelope
// garbage is bounded and the wire bytes are identical to json.Marshal's
// (same HTML escaping, same trailing newline).
type jsonEncoder struct {
	enc *json.Encoder
	je  jsonEnvelope // scratch, rebuilt per Encode
}

func newJSONEncoder(w io.Writer) *jsonEncoder { return &jsonEncoder{enc: json.NewEncoder(w)} }

func (e *jsonEncoder) Encode(env *Envelope) error {
	if kindFromString(env.Kind.String()) == 0 {
		return fmt.Errorf("%w: cannot encode kind %d", ErrCorruptFrame, env.Kind)
	}
	e.je = jsonEnvelope{
		Kind:  env.Kind.String(),
		Seq:   env.Seq,
		Unite: env.Unite,
		Query: env.Query,
		Reply: env.Reply,
		End:   env.End,
		Error: env.Error,
	}
	je := &e.je
	if env.Trace != 0 { // a span without a trace is not a context
		je.Trace = env.Trace
		je.Span = env.Span
	}
	// Materialize the kind's body when the caller left it nil, exactly as
	// the binary encoder does, so every encoded envelope satisfies the
	// decoder's kind→body invariant.
	switch {
	case env.Kind == KindUnite && je.Unite == nil:
		je.Unite = &dsu.UniteRequest{}
	case env.Kind == KindQuery && je.Query == nil:
		je.Query = &dsu.QueryRequest{}
	case env.Kind == KindReply && je.Reply == nil:
		je.Reply = &dsu.BatchReply{}
	case env.Kind == KindEnd && je.End == nil:
		je.End = &StreamEnd{}
	}
	// json.Encoder writes the marshaled line and its trailing newline as
	// one Write, which the coalescing writer counts as one frame.
	return e.enc.Encode(je)
}

type jsonDecoder struct {
	sc       *bufio.Scanner
	maxFrame int
}

func newJSONDecoder(r io.Reader, maxFrame int) *jsonDecoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), maxFrame)
	return &jsonDecoder{sc: sc, maxFrame: maxFrame}
}

func (d *jsonDecoder) Decode() (*Envelope, error) {
	for {
		if !d.sc.Scan() {
			if err := d.sc.Err(); err != nil {
				if errors.Is(err, bufio.ErrTooLong) {
					return nil, fmt.Errorf("%w: line exceeds %d bytes", ErrFrameTooLarge, d.maxFrame)
				}
				return nil, err
			}
			return nil, io.EOF
		}
		line := d.sc.Bytes()
		if len(line) == 0 {
			continue // blank lines are friendly in a debug protocol
		}
		var je jsonEnvelope
		if err := json.Unmarshal(line, &je); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorruptFrame, err)
		}
		kind := kindFromString(je.Kind)
		if kind == 0 {
			return nil, fmt.Errorf("%w: unknown kind %q", ErrCorruptFrame, je.Kind)
		}
		if je.Trace == 0 && je.Span != 0 {
			return nil, fmt.Errorf("%w: span without a trace id", ErrCorruptFrame)
		}
		// Enforce the kind→body invariant the binary framing guarantees by
		// construction, so consumers can dereference the kind's body
		// without nil checks regardless of which encoding carried it.
		switch {
		case kind == KindUnite && je.Unite == nil,
			kind == KindQuery && je.Query == nil,
			kind == KindReply && je.Reply == nil,
			kind == KindEnd && je.End == nil:
			return nil, fmt.Errorf("%w: %q envelope without its body", ErrCorruptFrame, je.Kind)
		}
		return &Envelope{
			Kind:  kind,
			Seq:   je.Seq,
			Trace: je.Trace,
			Span:  je.Span,
			Unite: je.Unite,
			Query: je.Query,
			Reply: je.Reply,
			End:   je.End,
			Error: je.Error,
		}, nil
	}
}
