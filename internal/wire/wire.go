// Package wire is the batch framing protocol of the network front end: it
// moves the dsu package's tenant-API DTOs (UniteRequest, QueryRequest,
// BatchReply) over a byte stream, in two interchangeable encodings — a
// length-prefixed binary framing for production traffic and a
// newline-delimited JSON mode for debugging with a text tool. Both
// encodings carry the same Envelope model, so the server and client pick
// per connection (by Content-Type) without touching any other layer.
//
// The decoders treat the peer as untrusted: every frame is bounded by a
// configured maximum before any allocation happens, truncated frames
// surface io.ErrUnexpectedEOF, and structurally inconsistent payloads
// (lengths that don't match declared counts, unknown message kinds)
// surface ErrCorruptFrame — never a panic and never an unbounded
// allocation. Element-range and option validation is deliberately NOT
// here: that is the dsu.Universe layer's job, so the checks exist exactly
// once for local and remote callers alike.
//
// Two codec families share the formats but differ in ownership. The
// NewEncoder/NewDecoder constructors hand every decoded envelope to the
// caller outright — simple, safe, one set of allocations per frame. The
// AcquireEncoder/AcquireDecoder pool recycles codecs and their scratch
// across connections: steady-state binary encode and decode of the
// batch-path envelopes allocate nothing, and in exchange an envelope
// from an acquired decoder is valid only until the next Decode (or
// ReleaseDecoder) — copy out whatever outlives that window. FlushWriter
// completes the fast path on the write side: it coalesces back-to-back
// small frames into single downstream writes with no timers, while its
// pending-byte limit keeps backpressure end to end.
package wire

import (
	"errors"
	"fmt"
	"io"
	"mime"

	"repro/dsu"
)

// Kind discriminates the message types of the protocol.
type Kind uint8

const (
	// KindUnite carries a dsu.UniteRequest: merge across the batch.
	KindUnite Kind = iota + 1
	// KindQuery carries a dsu.QueryRequest: answer the batch.
	KindQuery
	// KindFlush, on a stream connection, seals the server-side buffer
	// early (dsu.Stream.Flush). It carries no payload beyond the sequence
	// number.
	KindFlush
	// KindReply carries a dsu.BatchReply, answering the request (RPC) or
	// reporting one executed stream batch (Seq is the batch id).
	KindReply
	// KindError reports a failed request or an abandoned stream batch;
	// Error holds the message, Seq echoes the request or batch id.
	KindError
	// KindEnd closes a stream response with the final ingestion totals.
	KindEnd
)

// String names the kind as the JSON encoding spells it.
func (k Kind) String() string {
	switch k {
	case KindUnite:
		return "unite"
	case KindQuery:
		return "query"
	case KindFlush:
		return "flush"
	case KindReply:
		return "reply"
	case KindError:
		return "error"
	case KindEnd:
		return "end"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// kindFromString is String's inverse; 0 means unknown.
func kindFromString(s string) Kind {
	switch s {
	case "unite":
		return KindUnite
	case "query":
		return KindQuery
	case "flush":
		return KindFlush
	case "reply":
		return KindReply
	case "error":
		return KindError
	case "end":
		return KindEnd
	default:
		return 0
	}
}

// StreamEnd is the final message of a stream connection: the server-side
// dsu.Stream's totals at Close, plus the close error (context
// cancellation, say) in the enclosing envelope's Error field when the
// shutdown lost batches.
type StreamEnd struct {
	Batches  uint64 `json:"batches"`
	Edges    int64  `json:"edges"`
	Merged   int64  `json:"merged"`
	Filtered int64  `json:"filtered"`
	Failed   uint64 `json:"failed"`
}

// Envelope is one protocol message: a kind, a sequence number (request
// correlation on RPC, batch id on streams), and exactly one body field
// populated according to the kind (none for KindFlush).
//
// Trace and Span are the optional distributed-tracing context. A nonzero
// Trace on a unite/query envelope asks the server to adopt that identity
// for the batch's span tree; on a reply it reports the trace the server
// recorded (Span being the server's root span). Zero means untraced —
// the fields add no bytes to binary frames and no keys to JSON lines, so
// peers that predate them interoperate unchanged. A Span without a Trace
// is not a context; encoders drop it and decoders reject frames that
// declare one.
type Envelope struct {
	Kind  Kind
	Seq   uint64
	Trace uint64
	Span  uint64
	Unite *dsu.UniteRequest
	Query *dsu.QueryRequest
	Reply *dsu.BatchReply
	End   *StreamEnd
	Error string
}

// DefaultMaxFrame bounds one message's encoded size unless the caller
// picks otherwise: 16 MiB ≈ two million binary-framed edges per batch,
// comfortably past the engine's default buffer while keeping a hostile
// length prefix from reserving real memory.
const DefaultMaxFrame = 16 << 20

var (
	// ErrFrameTooLarge reports a frame whose declared or actual size
	// exceeds the decoder's limit. The connection state is unrecoverable
	// (the oversized payload was not consumed); close it.
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	// ErrCorruptFrame reports a structurally inconsistent payload: unknown
	// kind, a length that contradicts a declared count, or trailing bytes.
	ErrCorruptFrame = errors.New("wire: corrupt frame")
)

// Format selects the encoding of a connection.
type Format int

const (
	// Binary is the length-prefixed binary framing (ContentTypeBinary).
	Binary Format = iota
	// JSON is the newline-delimited JSON debug mode (ContentTypeJSON).
	JSON
)

// Content types the HTTP front end maps to formats.
const (
	ContentTypeBinary = "application/x-dsu-batch"
	ContentTypeJSON   = "application/json"
)

// ContentType returns the HTTP content type naming the format.
func (f Format) ContentType() string {
	if f == JSON {
		return ContentTypeJSON
	}
	return ContentTypeBinary
}

// String names the format for logs and flags.
func (f Format) String() string {
	if f == JSON {
		return "json"
	}
	return "binary"
}

// FormatFor maps a Content-Type header value to its format, ignoring
// media-type parameters ("application/json; charset=utf-8" is JSON); ok
// is false for types the protocol does not speak. An empty content type
// selects binary, the production default.
func FormatFor(contentType string) (Format, bool) {
	if contentType != "" {
		if mt, _, err := mime.ParseMediaType(contentType); err == nil {
			contentType = mt
		}
	}
	switch contentType {
	case "", ContentTypeBinary:
		return Binary, true
	case ContentTypeJSON:
		return JSON, true
	default:
		return 0, false
	}
}

// Encoder writes envelopes to a stream. Encoders are not safe for
// concurrent use; serialize externally (the server writes from one
// goroutine per connection).
type Encoder interface {
	Encode(*Envelope) error
}

// Decoder reads envelopes from a stream. A clean end-of-stream is io.EOF
// from Decode; a stream that ends inside a message is io.ErrUnexpectedEOF.
type Decoder interface {
	Decode() (*Envelope, error)
}

// NewEncoder returns an encoder writing f-formatted envelopes to w.
func NewEncoder(w io.Writer, f Format) Encoder {
	if f == JSON {
		return newJSONEncoder(w)
	}
	return newBinaryEncoder(w)
}

// NewDecoder returns a decoder reading f-formatted envelopes from r,
// rejecting any message larger than maxFrame bytes (values ≤ 0 select
// DefaultMaxFrame).
func NewDecoder(r io.Reader, f Format, maxFrame int) Decoder {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	if f == JSON {
		return newJSONDecoder(r, maxFrame)
	}
	return newBinaryDecoder(r, maxFrame)
}
