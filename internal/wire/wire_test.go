package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/dsu"
	"repro/internal/core"
)

// randomEnvelope draws one arbitrary well-formed envelope. Edge lists are
// nil or non-empty — the one canonicalization both codecs share (a nil
// edge list and an absent one are indistinguishable on the wire); reply
// Answers exercise nil, empty, and populated, which must all round-trip
// exactly in both encodings.
func randomEnvelope(rng *rand.Rand) *Envelope {
	edges := func() []dsu.Edge {
		n := rng.Intn(5)
		if n == 0 {
			return nil
		}
		out := make([]dsu.Edge, rng.Intn(64)+1)
		for i := range out {
			out[i] = dsu.Edge{X: rng.Uint32(), Y: rng.Uint32()}
		}
		return out
	}
	opts := func() dsu.BatchOptions {
		return dsu.BatchOptions{
			Workers:         rng.Intn(65) - 32,
			Grain:           rng.Intn(5000) - 100,
			Prefilter:       rng.Intn(2) == 0,
			ConnectedFilter: rng.Intn(2) == 0,
			Find:            dsu.FindStrategy(rng.Intn(7)),
		}
	}
	env := &Envelope{Seq: rng.Uint64()}
	// Trace context rides unite/query/reply envelopes; the generator
	// attaches one about half the time so every property below covers
	// traced and untraced frames alike. Span without Trace is not a
	// context, so Span is drawn only alongside a nonzero Trace (and may
	// itself be zero — "link to the root").
	trace := func() {
		if rng.Intn(2) == 0 {
			return
		}
		env.Trace = rng.Uint64()
		if env.Trace == 0 {
			env.Trace = 1
		}
		env.Span = rng.Uint64() % 4
	}
	switch rng.Intn(6) {
	case 0:
		env.Kind = KindUnite
		env.Unite = &dsu.UniteRequest{Edges: edges(), Options: opts()}
		trace()
	case 1:
		env.Kind = KindQuery
		env.Query = &dsu.QueryRequest{Pairs: edges(), Options: opts()}
		trace()
	case 2:
		env.Kind = KindFlush
	case 3:
		env.Kind = KindReply
		rep := &dsu.BatchReply{
			Merged:     rng.Int63() - rng.Int63(),
			Filtered:   rng.Intn(1000),
			Find:       dsu.FindStrategy(rng.Intn(6)),
			CASRetries: rng.Int63n(1 << 30),
			Elapsed:    time.Duration(rng.Int63n(1 << 40)),
			Stats: core.Stats{
				Reads: rng.Int63n(1 << 30), CASAttempts: rng.Int63n(1 << 30), CASFailures: rng.Int63n(1 << 20),
				FindSteps: rng.Int63n(1 << 30), Rounds: rng.Int63n(1 << 20), Finds: rng.Int63n(1 << 30),
				Links: rng.Int63n(1 << 20), Rewrites: rng.Int63n(1 << 20), Ops: rng.Int63n(1 << 30), Filtered: rng.Int63n(1 << 20),
			},
		}
		if rng.Intn(3) != 0 {
			// Sometimes empty-but-present: a zero-pair query's reply must
			// round-trip identically in both encodings (nil means "unite
			// reply, no answers").
			rep.Answers = make([]bool, rng.Intn(100))
			for i := range rep.Answers {
				rep.Answers[i] = rng.Intn(2) == 0
			}
		}
		env.Reply = rep
		trace()
	case 4:
		env.Kind = KindError
		env.Error = "tenant \"x\" not found — try again\n…"
	case 5:
		env.Kind = KindEnd
		env.End = &StreamEnd{Batches: rng.Uint64() % 1000, Edges: rng.Int63n(1 << 40), Merged: rng.Int63n(1 << 40), Filtered: rng.Int63n(1 << 30), Failed: rng.Uint64() % 10}
		if rng.Intn(2) == 0 {
			env.Error = "context canceled" // the close error rides the end frame
		}
	}
	return env
}

// TestRoundTrip is the codec property test: for both formats, any
// well-formed envelope survives encode→decode exactly, alone and in
// back-to-back sequences on one stream.
func TestRoundTrip(t *testing.T) {
	for _, f := range []Format{Binary, JSON} {
		t.Run(f.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			var buf bytes.Buffer
			enc := NewEncoder(&buf, f)
			var want []*Envelope
			for i := 0; i < 500; i++ {
				env := randomEnvelope(rng)
				if err := enc.Encode(env); err != nil {
					t.Fatalf("encode %d: %v", i, err)
				}
				want = append(want, env)
			}
			dec := NewDecoder(&buf, f, 0)
			for i, w := range want {
				got, err := dec.Decode()
				if err != nil {
					t.Fatalf("decode %d: %v", i, err)
				}
				if !reflect.DeepEqual(got, w) {
					t.Fatalf("round trip %d:\n got %+v\nwant %+v", i, got, w)
				}
			}
			if _, err := dec.Decode(); err != io.EOF {
				t.Fatalf("trailing Decode = %v, want io.EOF", err)
			}
		})
	}
}

// TestTruncatedFrames cuts a valid binary stream at every byte boundary:
// the decoder must report a clean io.EOF only at frame boundaries,
// io.ErrUnexpectedEOF everywhere else, and never panic or misdecode.
func TestTruncatedFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var buf bytes.Buffer
	enc := NewEncoder(&buf, Binary)
	var boundaries []int
	for i := 0; i < 8; i++ {
		if err := enc.Encode(randomEnvelope(rng)); err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, buf.Len())
	}
	full := buf.Bytes()
	atBoundary := map[int]bool{0: true}
	for _, b := range boundaries {
		atBoundary[b] = true
	}
	for cut := 0; cut <= len(full); cut++ {
		dec := NewDecoder(bytes.NewReader(full[:cut]), Binary, 0)
		var err error
		for {
			if _, err = dec.Decode(); err != nil {
				break
			}
		}
		if atBoundary[cut] {
			if err != io.EOF {
				t.Fatalf("cut at boundary %d: err = %v, want io.EOF", cut, err)
			}
		} else if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut mid-frame at %d: err = %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

// TestOversizedFrames checks both directions of the size limit: a header
// declaring more than maxFrame is rejected before any allocation, and a
// JSON line past the limit is rejected as it streams.
func TestOversizedFrames(t *testing.T) {
	// Binary: a 4 GiB-declaring header against a 1 KiB limit.
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := NewDecoder(bytes.NewReader(huge), Binary, 1024).Decode(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("binary oversize err = %v, want ErrFrameTooLarge", err)
	}
	// A frame within the limit but truncated mid-payload.
	short := []byte{0x00, 0x00, 0x00, 0x20, byte(KindFlush)}
	if _, err := NewDecoder(bytes.NewReader(short), Binary, 1024).Decode(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("binary truncated err = %v, want io.ErrUnexpectedEOF", err)
	}
	// JSON: one long line.
	line := append(bytes.Repeat([]byte("x"), 4096), '\n')
	if _, err := NewDecoder(bytes.NewReader(line), JSON, 1024).Decode(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("json oversize err = %v, want ErrFrameTooLarge", err)
	}
	// An oversized *encode* must refuse rather than emit an unreadable frame.
	env := &Envelope{Kind: KindUnite, Unite: &dsu.UniteRequest{Edges: make([]dsu.Edge, 100)}}
	var buf bytes.Buffer
	if err := NewEncoder(&buf, Binary).Encode(env); err != nil {
		t.Fatalf("encode within uint32: %v", err)
	}
	dec := NewDecoder(&buf, Binary, 64)
	if _, err := dec.Decode(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("decode with small limit = %v, want ErrFrameTooLarge", err)
	}
}

// TestCorruptFrames feeds structurally inconsistent payloads: wrong edge
// alignment, bitset/count mismatches, unknown kinds, stray bytes.
func TestCorruptFrames(t *testing.T) {
	frame := func(payload ...byte) []byte {
		out := []byte{0, 0, 0, byte(len(payload))}
		return append(out, payload...)
	}
	meta := func(kind Kind) []byte {
		return append([]byte{byte(kind)}, 0, 0, 0, 0, 0, 0, 0, 0)
	}
	cases := map[string][]byte{
		"unknown kind":      frame(meta(Kind(99))...),
		"short meta":        frame(byte(KindUnite), 0, 0),
		"misaligned edges":  frame(append(meta(KindUnite), make([]byte, binOptsLen+3)...)...),
		"short options":     frame(append(meta(KindQuery), 1, 2, 3)...),
		"stray flush bytes": frame(append(meta(KindFlush), 1)...),
		"short reply":       frame(append(meta(KindReply), make([]byte, 10)...)...),
		"short end":         frame(append(meta(KindEnd), make([]byte, 8)...)...),
		"bad reply flag": frame(func() []byte {
			b := append(meta(KindReply), make([]byte, binReplyLen)...)
			b[len(b)-1] = 7
			return b
		}()...),
		"bitset mismatch": frame(func() []byte {
			b := append(meta(KindReply), make([]byte, binReplyLen)...)
			b[len(b)-1] = 1                      // answers present
			b = append(b, 0, 0, 0, 100)          // 100 answers…
			return append(b, make([]byte, 2)...) // …but 2 bitset bytes
		}()...),
		"truncated unite trace": frame(func() []byte {
			b := append(meta(KindUnite), make([]byte, binOptsLen)...)
			b[len(b)-1] = 4              // trace context present…
			return append(b, 1, 2, 3, 4) // …but only 4 of 16 bytes
		}()...),
		"zero unite trace id": frame(func() []byte {
			b := append(meta(KindUnite), make([]byte, binOptsLen)...)
			b[len(b)-1] = 4                                // trace context present…
			return append(b, make([]byte, binTraceLen)...) // …with trace id 0
		}()...),
		"truncated reply trace": frame(func() []byte {
			b := append(meta(KindReply), make([]byte, binReplyLen)...)
			b[len(b)-1] = 2 // trace context present, no bytes follow
			return b
		}()...),
		"zero reply trace id": frame(func() []byte {
			b := append(meta(KindReply), make([]byte, binReplyLen)...)
			b[len(b)-1] = 2
			return append(b, make([]byte, binTraceLen)...)
		}()...),
	}
	for name, raw := range cases {
		if _, err := NewDecoder(bytes.NewReader(raw), Binary, 0).Decode(); !errors.Is(err, ErrCorruptFrame) {
			t.Errorf("%s: err = %v, want ErrCorruptFrame", name, err)
		}
	}
	for name, line := range map[string]string{
		"not json":           "{{{\n",
		"unknown kind":       `{"kind":"zorp"}` + "\n",
		"no kind":            `{"seq":3}` + "\n",
		"unite without body": `{"kind":"unite","seq":1}` + "\n",
		"query without body": `{"kind":"query"}` + "\n",
		"reply without body": `{"kind":"reply"}` + "\n",
		"end without body":   `{"kind":"end"}` + "\n",
		"span without trace": `{"kind":"flush","span":5}` + "\n",
	} {
		if _, err := NewDecoder(bytes.NewReader([]byte(line)), JSON, 0).Decode(); !errors.Is(err, ErrCorruptFrame) {
			t.Errorf("json %s: err = %v, want ErrCorruptFrame", name, err)
		}
	}
}

// TestTraceContextRoundTrip pins the trace fields explicitly in both
// encodings: a traced unite, query, and reply each survive exactly, and
// an untraced envelope stays untraced.
func TestTraceContextRoundTrip(t *testing.T) {
	cases := []*Envelope{
		{Kind: KindUnite, Seq: 1, Trace: 0xdeadbeefcafef00d, Span: 1,
			Unite: &dsu.UniteRequest{Edges: []dsu.Edge{{X: 1, Y: 2}}}},
		{Kind: KindQuery, Seq: 2, Trace: 42,
			Query: &dsu.QueryRequest{Pairs: []dsu.Edge{{X: 3, Y: 4}}}},
		{Kind: KindReply, Seq: 3, Trace: ^uint64(0), Span: 1,
			Reply: &dsu.BatchReply{Merged: 5, Answers: []bool{true, false, true}}},
		{Kind: KindUnite, Seq: 4, Unite: &dsu.UniteRequest{}},
	}
	for _, f := range []Format{Binary, JSON} {
		for i, env := range cases {
			var buf bytes.Buffer
			if err := NewEncoder(&buf, f).Encode(env); err != nil {
				t.Fatalf("%v case %d: encode: %v", f, i, err)
			}
			got, err := NewDecoder(&buf, f, 0).Decode()
			if err != nil {
				t.Fatalf("%v case %d: decode: %v", f, i, err)
			}
			if !reflect.DeepEqual(got, env) {
				t.Fatalf("%v case %d:\n got %+v\nwant %+v", f, i, got, env)
			}
		}
	}
	// A Span without a Trace is not a context: both encoders drop it, so
	// it must NOT survive the trip.
	orphan := &Envelope{Kind: KindFlush, Seq: 9, Span: 77}
	for _, f := range []Format{Binary, JSON} {
		var buf bytes.Buffer
		if err := NewEncoder(&buf, f).Encode(orphan); err != nil {
			t.Fatalf("%v: encode orphan span: %v", f, err)
		}
		got, err := NewDecoder(&buf, f, 0).Decode()
		if err != nil {
			t.Fatalf("%v: decode orphan span: %v", f, err)
		}
		if got.Trace != 0 || got.Span != 0 {
			t.Fatalf("%v: orphan span survived: %+v", f, got)
		}
	}
}

// TestUntracedFramesCompat decodes hand-built pre-tracing frames — the
// exact bytes an old peer emits — proving the trace extension is purely
// additive: no flag bit, no extension bytes, untraced envelope out.
func TestUntracedFramesCompat(t *testing.T) {
	// Binary unite: header + kind/seq + options(prefilter, no trace bit)
	// + one edge.
	unite := []byte{
		0, 0, 0, 27, // payload length: 9 meta + 10 opts + 8 edge
		byte(KindUnite), 0, 0, 0, 0, 0, 0, 0, 7, // kind, seq=7
		0, 0, 0, 2, // workers=2
		0, 0, 0, 0, // grain=0
		0,                      // find
		1,                      // flags: prefilter only
		0, 0, 0, 1, 0, 0, 0, 2, // edge {1,2}
	}
	env, err := NewDecoder(bytes.NewReader(unite), Binary, 0).Decode()
	if err != nil {
		t.Fatalf("old unite frame: %v", err)
	}
	if env.Trace != 0 || env.Span != 0 || !env.Unite.Options.Prefilter ||
		len(env.Unite.Edges) != 1 || env.Unite.Edges[0] != (dsu.Edge{X: 1, Y: 2}) {
		t.Fatalf("old unite frame decoded as %+v", env)
	}
	// Binary reply: fixed part with flags byte 1 (answers, no trace),
	// then count+bitset — the pre-tracing flag byte held only 0 or 1.
	body := make([]byte, binReplyLen)
	body[binReplyLen-1] = 1
	body = append(body, 0, 0, 0, 2, 0b01)
	reply := append([]byte{0, 0, 0, byte(9 + len(body)), byte(KindReply), 0, 0, 0, 0, 0, 0, 0, 1}, body...)
	env, err = NewDecoder(bytes.NewReader(reply), Binary, 0).Decode()
	if err != nil {
		t.Fatalf("old reply frame: %v", err)
	}
	if env.Trace != 0 || len(env.Reply.Answers) != 2 || !env.Reply.Answers[0] || env.Reply.Answers[1] {
		t.Fatalf("old reply frame decoded as %+v", env)
	}
	// JSON lines without trace keys.
	for _, line := range []string{
		`{"kind":"unite","seq":3,"unite":{"edges":[{"X":1,"Y":2}]}}`,
		`{"kind":"reply","reply":{"merged":1}}`,
	} {
		env, err := NewDecoder(bytes.NewReader([]byte(line+"\n")), JSON, 0).Decode()
		if err != nil {
			t.Fatalf("old json line %q: %v", line, err)
		}
		if env.Trace != 0 || env.Span != 0 {
			t.Fatalf("old json line %q decoded with trace: %+v", line, env)
		}
	}
}

// TestFormatFor pins the content-type mapping the HTTP layer relies on,
// media-type parameters included (clients commonly append a charset).
func TestFormatFor(t *testing.T) {
	for ct, want := range map[string]Format{
		"":                                Binary,
		ContentTypeBinary:                 Binary,
		ContentTypeJSON:                   JSON,
		"application/json; charset=utf-8": JSON,
		"APPLICATION/JSON":                JSON, // media types are case-insensitive
		ContentTypeBinary + "; version=1": Binary,
	} {
		if got, ok := FormatFor(ct); !ok || got != want {
			t.Errorf("FormatFor(%q) = %v, %v; want %v", ct, got, ok, want)
		}
	}
	if _, ok := FormatFor("text/html"); ok {
		t.Error("FormatFor(text/html) accepted")
	}
}

// FuzzBinaryDecode drives arbitrary bytes through the binary decoder: it
// must never panic, and whatever it does decode must re-encode and decode
// back to the same envelope (decode ∘ encode is the identity on the
// decoder's image).
func FuzzBinaryDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(3))
	var seed bytes.Buffer
	enc := NewEncoder(&seed, Binary)
	for i := 0; i < 6; i++ {
		_ = enc.Encode(randomEnvelope(rng))
	}
	f.Add(seed.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})
	// Traced frames: a unite and a reply carrying the trace extension.
	var traced bytes.Buffer
	enc = NewEncoder(&traced, Binary)
	_ = enc.Encode(&Envelope{Kind: KindUnite, Seq: 1, Trace: 0xabc, Span: 1,
		Unite: &dsu.UniteRequest{Edges: []dsu.Edge{{X: 1, Y: 2}}}})
	_ = enc.Encode(&Envelope{Kind: KindReply, Seq: 1, Trace: 0xabc, Span: 1,
		Reply: &dsu.BatchReply{Answers: []bool{true}}})
	f.Add(traced.Bytes())
	// Back-to-back frames, the pooled decoder's interesting regime: the
	// second decode reuses scratch the first one filled.
	var pair bytes.Buffer
	enc = NewEncoder(&pair, Binary)
	for i := 0; i < 2; i++ {
		_ = enc.Encode(&Envelope{Kind: KindUnite, Seq: uint64(i),
			Unite: &dsu.UniteRequest{Edges: []dsu.Edge{{X: 7, Y: 9}, {X: 3, Y: 4}}}})
	}
	f.Add(pair.Bytes())
	var mixed bytes.Buffer
	enc = NewEncoder(&mixed, Binary)
	_ = enc.Encode(&Envelope{Kind: KindUnite, Seq: 1,
		Unite: &dsu.UniteRequest{Edges: []dsu.Edge{{X: 1, Y: 2}, {X: 5, Y: 6}, {X: 8, Y: 9}}}})
	_ = enc.Encode(&Envelope{Kind: KindReply, Seq: 1,
		Reply: &dsu.BatchReply{Merged: 3, Answers: []bool{true, false, true}}})
	_ = enc.Encode(&Envelope{Kind: KindUnite, Seq: 2,
		Unite: &dsu.UniteRequest{Edges: []dsu.Edge{{X: 10, Y: 11}}}})
	f.Add(mixed.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(bytes.NewReader(data), Binary, 1<<20)
		// The pooled decoder reads the same bytes in lockstep; any place
		// where scratch reuse changes the result (cross-frame state leak,
		// stale field merge) shows up as a per-step mismatch.
		pooled := AcquireDecoder(bytes.NewReader(data), Binary, 1<<20)
		defer ReleaseDecoder(pooled)
		for {
			env, err := dec.Decode()
			penv, perr := pooled.Decode()
			if (err == nil) != (perr == nil) {
				t.Fatalf("pooled decoder diverged: plain err=%v pooled err=%v", err, perr)
			}
			if err != nil {
				return
			}
			if !reflect.DeepEqual(env, penv) {
				t.Fatalf("pooled decode differs from plain:\n got %+v\nwant %+v", penv, env)
			}
			var buf bytes.Buffer
			if err := NewEncoder(&buf, Binary).Encode(env); err != nil {
				t.Fatalf("re-encode of decoded envelope failed: %v", err)
			}
			again, err := NewDecoder(&buf, Binary, 1<<20).Decode()
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if !reflect.DeepEqual(env, again) {
				t.Fatalf("decode∘encode not identity:\n got %+v\nwant %+v", again, env)
			}
		}
	})
}

// FuzzJSONDecode is the same property for the debug mode.
func FuzzJSONDecode(f *testing.F) {
	f.Add([]byte(`{"kind":"flush","seq":9}` + "\n"))
	f.Add([]byte(`{"kind":"unite","unite":{"edges":[{"X":1,"Y":2}]}}` + "\n"))
	f.Add([]byte(`{"kind":"unite","trace":123,"span":1,"unite":{"edges":[{"X":1,"Y":2}]}}` + "\n"))
	f.Add([]byte(`{"kind":"reply","trace":456,"reply":{"merged":1}}` + "\n"))
	f.Add([]byte("\n\n{\n"))
	// Back-to-back frames for the pooled-path lockstep below.
	f.Add([]byte(`{"kind":"unite","seq":1,"unite":{"edges":[{"X":1,"Y":2}]}}` + "\n" +
		`{"kind":"unite","seq":2,"unite":{"edges":[{"X":1,"Y":2}]}}` + "\n"))
	f.Add([]byte(`{"kind":"unite","seq":1,"unite":{"edges":[{"X":1,"Y":2},{"X":3,"Y":4}]}}` + "\n" +
		`{"kind":"reply","seq":1,"reply":{"merged":2,"answers":[true,false]}}` + "\n" +
		`{"kind":"unite","seq":2,"unite":{"edges":[{"X":5,"Y":6}]}}` + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(bytes.NewReader(data), JSON, 1<<20)
		pooled := AcquireDecoder(bytes.NewReader(data), JSON, 1<<20)
		defer ReleaseDecoder(pooled)
		for {
			env, err := dec.Decode()
			penv, perr := pooled.Decode()
			if (err == nil) != (perr == nil) {
				t.Fatalf("pooled decoder diverged: plain err=%v pooled err=%v", err, perr)
			}
			if err != nil {
				return
			}
			if !reflect.DeepEqual(env, penv) {
				t.Fatalf("pooled decode differs from plain:\n got %+v\nwant %+v", penv, env)
			}
			var buf bytes.Buffer
			if err := NewEncoder(&buf, JSON).Encode(env); err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
		}
	})
}
