package wire

import (
	"errors"
	"io"
	"sync"
)

// ErrWriterClosed reports a Write or Flush on a closed FlushWriter.
var ErrWriterClosed = errors.New("wire: flush writer closed")

// DefaultCoalesceLimit is the pending-byte bound a FlushWriter applies
// when the caller doesn't pick one: past it, Write blocks until the
// flusher drains — the write-side half of the end-to-end backpressure
// contract.
const DefaultCoalesceLimit = 64 << 10

// FlushWriter is the write-coalescing half of the wire fast path: an
// io.Writer that accumulates frames in memory and hands them to the
// underlying writer from a dedicated flusher goroutine. Under
// pipelining, many small frames written back to back land in one
// underlying Write (one syscall on a net.Conn); a lone frame is flushed
// as soon as the flusher wakes — flush-on-idle, no timers.
//
// The state machine has three parts:
//
//   - Writers append whole frames to the pending buffer under the
//     mutex, then nudge the flusher through a 1-slot dirty channel (a
//     pending nudge means the flusher will see these bytes anyway, so
//     the send never blocks).
//   - The flusher swaps the pending buffer for an empty spare, releases
//     the mutex, and writes the taken bytes downstream — so writers keep
//     appending (coalescing) for exactly as long as the downstream write
//     takes. The two buffers ping-pong; steady state allocates nothing.
//   - Write blocks while the pending buffer is at its limit, making
//     backpressure end-to-end: a stalled peer stalls the flusher, fills
//     the buffer, and stops the producer.
//
// Flush blocks until every byte written before it has reached the
// underlying writer. Close stops the flusher, drains the remainder, and
// reports the first write error. Writes may race each other and
// Flush/Close; the underlying writer is only ever touched by one
// goroutine at a time.
type FlushWriter struct {
	w       io.Writer
	onFlush func() // optional downstream flush hook, after each write

	mu       sync.Mutex
	cond     *sync.Cond // signaled when pending drains, errors, or closes
	buf      []byte     // pending frames
	spare    []byte     // the flusher's swap target
	limit    int
	err      error
	closed   bool
	flushing bool // the flusher holds taken bytes not yet downstream

	dirty chan struct{} // cap 1: "pending bytes exist"
	stop  chan struct{}
	done  chan struct{}
}

// NewFlushWriter returns a FlushWriter over w whose pending buffer
// blocks writers past limit bytes (≤ 0 selects DefaultCoalesceLimit).
// onFlush, when non-nil, runs after every underlying write — the
// server passes http.ResponseController.Flush so coalesced frames
// leave the HTTP buffers too. Close it to stop the flusher goroutine.
func NewFlushWriter(w io.Writer, limit int, onFlush func()) *FlushWriter {
	if limit <= 0 {
		limit = DefaultCoalesceLimit
	}
	fw := &FlushWriter{
		w: w, onFlush: onFlush, limit: limit,
		dirty: make(chan struct{}, 1),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	fw.cond = sync.NewCond(&fw.mu)
	go fw.flushLoop()
	return fw
}

// Write appends one frame to the pending buffer, blocking while the
// buffer is at its limit. Safe for concurrent use.
func (fw *FlushWriter) Write(p []byte) (int, error) {
	fw.mu.Lock()
	for fw.err == nil && !fw.closed && len(fw.buf) >= fw.limit {
		fw.cond.Wait()
	}
	if fw.err != nil {
		err := fw.err
		fw.mu.Unlock()
		return 0, err
	}
	if fw.closed {
		fw.mu.Unlock()
		return 0, ErrWriterClosed
	}
	fw.buf = append(fw.buf, p...)
	fw.mu.Unlock()
	select {
	case fw.dirty <- struct{}{}:
	default: // a nudge is already pending; the flusher will see our bytes
	}
	return len(p), nil
}

// Flush blocks until every previously written byte has reached the
// underlying writer (and onFlush ran), then reports any write error.
func (fw *FlushWriter) Flush() error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	for fw.err == nil && !fw.closed && (len(fw.buf) > 0 || fw.flushing) {
		fw.cond.Wait()
	}
	if fw.err != nil {
		return fw.err
	}
	if fw.closed {
		return ErrWriterClosed
	}
	return nil
}

// Close stops the flusher, drains any remaining bytes downstream, and
// returns the first write error. Further Writes fail; Close is
// idempotent (later calls return the same error state).
func (fw *FlushWriter) Close() error {
	fw.mu.Lock()
	already := fw.closed
	fw.closed = true
	fw.mu.Unlock()
	if !already {
		close(fw.stop)
	}
	fw.cond.Broadcast() // release writers blocked on the limit
	<-fw.done

	fw.mu.Lock()
	b := fw.buf
	fw.buf = nil
	err := fw.err
	fw.mu.Unlock()
	if err == nil && len(b) > 0 {
		if _, werr := fw.w.Write(b); werr != nil {
			fw.mu.Lock()
			if fw.err == nil {
				fw.err = werr
			}
			err = fw.err
			fw.mu.Unlock()
		} else if fw.onFlush != nil {
			fw.onFlush()
		}
	}
	return err
}

func (fw *FlushWriter) flushLoop() {
	defer close(fw.done)
	for {
		select {
		case <-fw.dirty:
		case <-fw.stop:
			return
		}
		fw.mu.Lock()
		if len(fw.buf) == 0 || fw.err != nil {
			fw.mu.Unlock()
			continue
		}
		b := fw.buf
		fw.buf = fw.spare[:0]
		fw.spare = nil
		fw.flushing = true
		fw.mu.Unlock()

		_, werr := fw.w.Write(b)
		if werr == nil && fw.onFlush != nil {
			fw.onFlush()
		}

		fw.mu.Lock()
		fw.spare = b // hand the drained buffer back for the next swap
		fw.flushing = false
		if werr != nil && fw.err == nil {
			fw.err = werr
		}
		fw.mu.Unlock()
		fw.cond.Broadcast() // wake limit-blocked writers and Flush waiters
	}
}
