package tracespan

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestNilSafety: every method on nil receivers must no-op — this is the
// disabled mode the instrumented seams rely on.
func TestNilSafety(t *testing.T) {
	var r *Recorder
	tr := r.Start(OpUnite, SourceBlocking)
	if tr != nil {
		t.Fatalf("nil recorder Start = %v, want nil", tr)
	}
	sp := tr.Start(StageExecute, Root)
	if sp != 0 {
		t.Fatalf("nil trace Start = %d, want 0", sp)
	}
	tr.End(sp)
	tr.EndAt(sp, time.Millisecond)
	tr.Adopt(Context{Trace: 1, Span: 2})
	if a := tr.Attrs(sp); a != nil {
		t.Fatalf("nil trace Attrs = %v, want nil", a)
	}
	if id := tr.ID(); id != 0 {
		t.Fatalf("nil trace ID = %d, want 0", id)
	}
	if c := tr.Context(); c.Valid() {
		t.Fatalf("nil trace Context = %+v, want invalid", c)
	}
	r.Finish(tr)
	if s := r.Snapshot(); s != nil {
		t.Fatalf("nil recorder Snapshot = %v, want nil", s)
	}
	if s := r.Slow(); s != nil {
		t.Fatalf("nil recorder Slow = %v, want nil", s)
	}
	if got := r.SlowThreshold(); got != 0 {
		t.Fatalf("nil recorder SlowThreshold = %v, want 0", got)
	}
}

// TestDisabledPathAllocs: the nil recorder path must be allocation-free
// — the root BenchmarkTraceOverhead pins the same property end to end.
func TestDisabledPathAllocs(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(100, func() {
		tr := r.Start(OpUnite, SourceBlocking)
		sp := tr.Start(StageExecute, Root)
		if a := tr.Attrs(sp); a != nil {
			a.Edges = 1
		}
		tr.End(sp)
		r.Finish(tr)
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %v/op, want 0", allocs)
	}
}

// TestEnabledPathAllocs: a traced batch costs exactly one allocation —
// the Trace object. Span start/end/attr recording itself is free.
func TestEnabledPathAllocs(t *testing.T) {
	r := New(Config{})
	allocs := testing.AllocsPerRun(100, func() {
		tr := r.Start(OpUnite, SourceBlocking)
		sp := tr.Start(StageExecute, Root)
		if a := tr.Attrs(sp); a != nil {
			a.Edges = 4096
		}
		tr.End(sp)
		r.Finish(tr)
	})
	if allocs != 1 {
		t.Fatalf("traced path allocates %v/op, want exactly 1 (the Trace)", allocs)
	}
}

func TestSpanTreeShape(t *testing.T) {
	r := New(Config{SlowThreshold: time.Hour})
	tr := r.Start(OpUnite, SourceRPC)
	if tr.ID() == 0 {
		t.Fatal("trace ID must be nonzero")
	}
	dec := tr.Start(StageWireDecode, Root)
	tr.End(dec)
	ex := tr.Start(StageExecute, Root)
	w := tr.StartAt(StageWorker, ex, tr.StartOffset(ex))
	if a := tr.Attrs(w); a != nil {
		a.Worker = 1
		a.Ops = 42
	}
	tr.End(w)
	tr.End(ex)
	r.Finish(tr)

	snaps := r.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("Snapshot len = %d, want 1", len(snaps))
	}
	s := snaps[0]
	if s.Op != OpUnite || s.Source != SourceRPC || s.Slow {
		t.Fatalf("snapshot header = %+v", s)
	}
	if len(s.Spans) != 4 {
		t.Fatalf("span count = %d, want 4", len(s.Spans))
	}
	if s.Spans[0].Parent != 0 || s.Spans[0].Name != OpUnite {
		t.Fatalf("root span = %+v", s.Spans[0])
	}
	// Every non-root span parents to a claimed span, and intervals nest.
	root := s.Spans[0]
	for _, sp := range s.Spans[1:] {
		if sp.Parent == 0 || int(sp.Parent) > len(s.Spans) {
			t.Fatalf("span %d has dangling parent %d", sp.ID, sp.Parent)
		}
		p := s.Spans[sp.Parent-1]
		if sp.Start < p.Start || sp.Start+sp.Duration > p.Start+p.Duration {
			t.Fatalf("span %d interval [%v,+%v] escapes parent %d [%v,+%v]",
				sp.ID, sp.Start, sp.Duration, p.Parent, p.Start, p.Duration)
		}
	}
	if root.Duration != s.Duration {
		t.Fatalf("root duration %v != trace duration %v", root.Duration, s.Duration)
	}
	wspan := s.Spans[3]
	if wspan.Name != StageWorker || wspan.Attrs.Worker != 1 || wspan.Attrs.Ops != 42 {
		t.Fatalf("worker span = %+v", wspan)
	}
}

func TestAdoptFirstWins(t *testing.T) {
	r := New(Config{})
	tr := r.Start(OpUnite, SourceStream)
	local := tr.ID()
	tr.Adopt(Context{}) // invalid: ignored
	if tr.ID() != local {
		t.Fatal("invalid context must not adopt")
	}
	tr.Adopt(Context{Trace: 0xfeed, Span: 7})
	if tr.ID() != 0xfeed {
		t.Fatalf("ID after adopt = %x, want feed", tr.ID())
	}
	tr.Adopt(Context{Trace: 0xbeef, Span: 9}) // second link: ignored
	if tr.ID() != 0xfeed {
		t.Fatalf("second adopt must not win, ID = %x", tr.ID())
	}
	r.Finish(tr)
	s := r.Snapshot()[0]
	if !s.Remote || s.TraceID != FormatTraceID(0xfeed) || s.ParentSpan != 7 {
		t.Fatalf("adopted snapshot = %+v", s)
	}
}

func TestSpanOverflow(t *testing.T) {
	r := New(Config{})
	tr := r.Start(OpUnite, SourceBlocking)
	for i := 0; i < MaxSpans+10; i++ {
		sp := tr.Start(StageWorker, Root)
		if i < MaxSpans-1 && sp == 0 {
			t.Fatalf("span %d should have been claimed", i)
		}
		if i >= MaxSpans-1 && sp != 0 {
			t.Fatalf("span %d should have been dropped, got ref %d", i, sp)
		}
		tr.End(sp)
		if a := tr.Attrs(sp); i >= MaxSpans-1 && a != nil {
			t.Fatal("overflow ref must yield nil attrs")
		}
	}
	r.Finish(tr)
	s := r.Snapshot()[0]
	if len(s.Spans) != MaxSpans || s.Dropped != 11 {
		t.Fatalf("spans=%d dropped=%d, want %d and 11", len(s.Spans), s.Dropped, MaxSpans)
	}
}

// TestConcurrentSpans: parallel workers claiming spans on one trace is
// the real usage under -race.
func TestConcurrentSpans(t *testing.T) {
	r := New(Config{})
	tr := r.Start(OpUnite, SourceStream)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				sp := tr.Start(StageWorker, Root)
				if a := tr.Attrs(sp); a != nil {
					a.Worker = int64(w + 1)
				}
				tr.End(sp)
			}
		}(w)
	}
	wg.Wait()
	r.Finish(tr)
	s := r.Snapshot()[0]
	if len(s.Spans) != 33 { // root + 32 workers
		t.Fatalf("span count = %d, want 33", len(s.Spans))
	}
	seen := map[uint32]bool{}
	for _, sp := range s.Spans {
		if seen[sp.ID] {
			t.Fatalf("duplicate span ID %d", sp.ID)
		}
		seen[sp.ID] = true
	}
}

func TestRingWraparound(t *testing.T) {
	r := New(Config{Ring: 4, Retain: 2, SlowThreshold: time.Hour})
	var last *Trace
	for i := 0; i < 10; i++ {
		tr := r.Start(OpUnite, SourceBlocking)
		r.Finish(tr)
		last = tr
	}
	snaps := r.Snapshot()
	if len(snaps) != 4 {
		t.Fatalf("ring snapshot len = %d, want 4", len(snaps))
	}
	// Newest-first: the most recent finish leads.
	if snaps[0].TraceID != FormatTraceID(last.ID()) {
		t.Fatalf("snapshot[0] = %s, want newest %s", snaps[0].TraceID, FormatTraceID(last.ID()))
	}
	if got := r.Started(); got != 10 {
		t.Fatalf("Started = %d, want 10", got)
	}
}

// TestFlightRecorder: traces at/above the threshold land in the slow
// ring; fast ones only in the recent ring.
func TestFlightRecorder(t *testing.T) {
	r := New(Config{SlowThreshold: 1}) // 1ns: everything is slow
	tr := r.Start(OpQuery, SourceRPC)
	time.Sleep(time.Millisecond)
	r.Finish(tr)
	slow := r.Slow()
	if len(slow) != 1 || !slow[0].Slow || slow[0].Op != OpQuery {
		t.Fatalf("Slow() = %+v, want one slow query trace", slow)
	}
	if r.SlowCount() != 1 {
		t.Fatalf("SlowCount = %d, want 1", r.SlowCount())
	}

	r2 := New(Config{SlowThreshold: time.Hour})
	r2.Finish(r2.Start(OpUnite, SourceBlocking))
	if len(r2.Slow()) != 0 {
		t.Fatal("fast trace must not reach the flight recorder")
	}
	if len(r2.Snapshot()) != 1 {
		t.Fatal("fast trace must still reach the recent ring")
	}
}

// TestConcurrentFinishSnapshot: finishes racing snapshots must be safe
// (the ring is lock-free; traces are immutable post-Finish).
func TestConcurrentFinishSnapshot(t *testing.T) {
	r := New(Config{Ring: 8})
	var writers, reader sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				tr := r.Start(OpUnite, SourceStream)
				sp := tr.Start(StageExecute, Root)
				tr.End(sp)
				r.Finish(tr)
			}
		}()
	}
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, s := range r.Snapshot() {
					if len(s.Spans) == 0 {
						t.Error("snapshot with no spans")
						return
					}
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	reader.Wait()
}

func TestIDUniqueness(t *testing.T) {
	r := New(Config{})
	seen := make(map[uint64]bool, 10000)
	for i := 0; i < 10000; i++ {
		tr := r.Start(OpUnite, SourceBlocking)
		if tr.ID() == 0 {
			t.Fatal("zero trace ID")
		}
		if seen[tr.ID()] {
			t.Fatalf("duplicate trace ID %x at %d", tr.ID(), i)
		}
		seen[tr.ID()] = true
	}
}

// TestSnapshotJSON: the exposition must marshal, render trace IDs as
// hex strings, and omit zero attrs.
func TestSnapshotJSON(t *testing.T) {
	r := New(Config{})
	tr := r.Start(OpUnite, SourceRPC)
	sp := tr.Start(StageExecute, Root)
	if a := tr.Attrs(sp); a != nil {
		a.Edges = 7
	}
	tr.End(sp)
	r.Finish(tr)
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back []TraceSnapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || len(back[0].TraceID) != 16 {
		t.Fatalf("round-tripped snapshot = %+v", back)
	}
	if back[0].Spans[1].Attrs.Edges != 7 {
		t.Fatalf("attrs lost: %+v", back[0].Spans[1])
	}
}
