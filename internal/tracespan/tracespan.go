// Package tracespan is the per-batch tracing layer: trace IDs, span
// trees, and a lock-free recorder with a slow-batch flight recorder.
//
// Where internal/metrics answers "how is this tenant doing on average?",
// tracespan answers "why was THIS batch slow?". Every batch admitted to
// a traced Universe — through the blocking veneer, a dsu.Stream push, or
// a remote RPC/stream frame — gets a Trace: a fixed-capacity tree of
// named spans (queue-wait, seal, dispatch, filter, execute, per-worker,
// reply-encode) with typed numeric attributes. Completed traces land in
// a fixed-size lock-free ring buffer; traces whose end-to-end latency
// meets a threshold are additionally promoted to a retained "slow" ring
// — the flight recorder — so the outliers a scraper would have missed
// survive until someone looks.
//
// The design constraints mirror internal/metrics:
//
//   - Dependency-free: stdlib only, no tracing SDK.
//   - Nil-safe: every method on a nil *Trace or nil *Recorder is a
//     no-op, so instrumented seams never branch on "is tracing on?" —
//     they just call. A disabled universe carries a nil recorder and
//     pays nothing (pinned by BenchmarkTraceOverhead at the root).
//   - Allocation-free recording: starting and ending spans touches only
//     the Trace's fixed span array via an atomic claim counter. The one
//     allocation per traced batch is the Trace itself; after Finish the
//     object is immutable, so ring snapshots never race with recording
//     and never need copies-under-lock.
//
// Span IDs are trace-local (1-based slots in the span array; the root is
// always span 1). Trace IDs are process-global 64-bit values from a
// splitmix64 sequence seeded randomly per Recorder; remote peers may
// supply their own trace ID in a wire frame, which Adopt installs so the
// client and server halves of a batch share one identity.
package tracespan

import (
	"math/rand"
	"sync/atomic"
	"time"
)

// Span stage names. The taxonomy is documented in DESIGN.md; parents are
// noted here. All stages hang off the root span (named after the batch
// op, "unite" or "query") except filter and worker spans, which nest
// under execute.
const (
	StageWireDecode  = "wire-decode"  // server: frame read + decode (parent: root)
	StageQueueWait   = "queue-wait"   // RPC budget wait / sealed-batch channel wait (parent: root)
	StageSeal        = "seal"         // stream: first edge into buffer → seal (parent: root)
	StageDispatch    = "dispatch"     // pipeline: dispatcher picks up → Exec returns (parent: root)
	StageExecute     = "execute"      // executor: backend UniteAll/SameSetAll call (parent: root)
	StageFilter      = "filter"       // executor: prefilter/connected-filter portion (parent: execute)
	StageWorker      = "worker"       // executor: per-worker attribution (parent: execute)
	StageReplyEncode = "reply-encode" // server: reply envelope encode + write (parent: root)
)

// Trace sources — where the batch entered the system.
const (
	SourceBlocking = "blocking" // Universe.UniteAll / SameSetAll veneer
	SourceStream   = "stream"   // dsu.Stream push (local or remote connection)
	SourceRPC      = "rpc"      // one-shot remote RPC
)

// Ops — what the batch does. Used as the root span's name.
const (
	OpUnite = "unite"
	OpQuery = "query"
)

// Root is the SpanRef of every trace's root span.
const Root SpanRef = 1

// MaxSpans is the per-trace span capacity. Spans started past the cap
// are counted (DroppedSpans in the snapshot) but not recorded; refs for
// them are invalid and all operations on them no-op. 64 covers the
// deepest real tree — root + 6 stage spans + one span per pool worker —
// for pools up to ~56 workers.
const MaxSpans = 64

// SpanRef names a span within one Trace: a 1-based slot index. The zero
// ref is invalid; End/Attrs on it are no-ops, so callers thread refs
// without nil checks even when the trace itself is nil.
type SpanRef int32

// Context is a wire-portable trace context: the trace ID and the
// sender's span the receiver's work should hang under. A zero Trace
// field means "no context".
type Context struct {
	Trace uint64
	Span  uint64
}

// Valid reports whether the context carries a trace identity.
func (c Context) Valid() bool { return c.Trace != 0 }

// SpanAttrs are the typed attributes a span may carry. A fixed struct —
// not a map — keeps recording allocation-free and the JSON exposition
// stable. Zero fields are omitted from JSON.
type SpanAttrs struct {
	Edges      int64  `json:"edges,omitempty"`       // batch size entering the stage
	Merged     int64  `json:"merged,omitempty"`      // unions that changed the partition
	Filtered   int64  `json:"filtered,omitempty"`    // edges removed by prefilter/connected-filter
	Ops        int64  `json:"ops,omitempty"`         // operations a worker performed
	FindSteps  int64  `json:"find_steps,omitempty"`  // parent-pointer dereferences
	CASRetries int64  `json:"cas_retries,omitempty"` // failed CAS attempts (lock-free backend)
	Worker     int64  `json:"worker,omitempty"`      // 1-based worker index on worker spans
	Find       string `json:"find,omitempty"`        // resolved find strategy on execute spans
	Err        string `json:"err,omitempty"`         // terminal error on the root span
}

// span is the in-flight representation: start/end as nanosecond offsets
// from the trace's begin time, parent as a SpanRef (0 for the root).
type span struct {
	parent SpanRef
	name   string
	start  int64
	end    int64
	attrs  SpanAttrs
}

// Trace is one batch's span tree. Created by Recorder.Start, mutated by
// the instrumented seams while the batch is in flight, sealed by
// Recorder.Finish, immutable afterwards. Span slots are claimed with an
// atomic counter so concurrent stages (e.g. parallel workers) may start
// spans without a lock; each claimed slot is then owned by its claimant.
type Trace struct {
	id      uint64
	parent  uint64 // remote peer's span ID, when adopted
	adopted atomic.Bool
	op      string
	source  string
	began   time.Time
	n       atomic.Int32 // claimed span count
	dropped atomic.Int32 // starts past MaxSpans
	spans   [MaxSpans]span
}

// ID returns the trace identity (0 on a nil trace).
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// Context returns the wire context identifying this trace's root span —
// what a reply envelope carries back to the client. Zero on nil.
func (t *Trace) Context() Context {
	if t == nil {
		return Context{}
	}
	return Context{Trace: t.id, Span: uint64(Root)}
}

// Adopt installs a remote peer's trace identity so both halves of the
// batch share one trace ID. First adoption wins; later links (e.g.
// further stream frames accumulating into the same batch) are ignored.
// Invalid contexts are ignored. Safe on nil.
func (t *Trace) Adopt(c Context) {
	if t == nil || !c.Valid() {
		return
	}
	if t.adopted.CompareAndSwap(false, true) {
		t.id = c.Trace
		t.parent = c.Span
	}
}

// Start claims a span beginning now. Returns 0 (a no-op ref) on a nil
// trace or when the trace is full.
func (t *Trace) Start(name string, parent SpanRef) SpanRef {
	if t == nil {
		return 0
	}
	return t.StartAt(name, parent, time.Since(t.began))
}

// StartAt claims a span with an explicit start offset from the trace's
// begin time — used to synthesize sub-spans (filter, per-worker) after
// the fact from an execution's accounting.
func (t *Trace) StartAt(name string, parent SpanRef, start time.Duration) SpanRef {
	if t == nil {
		return 0
	}
	i := t.n.Add(1)
	if i > MaxSpans {
		t.dropped.Add(1)
		return 0
	}
	s := &t.spans[i-1]
	s.parent = parent
	s.name = name
	s.start = int64(start)
	s.end = 0
	return SpanRef(i)
}

// End closes a span now. No-op on a nil trace or invalid ref.
func (t *Trace) End(ref SpanRef) {
	if t == nil || ref <= 0 {
		return
	}
	t.EndAt(ref, time.Since(t.began))
}

// EndAt closes a span at an explicit offset.
func (t *Trace) EndAt(ref SpanRef, end time.Duration) {
	if t == nil || ref <= 0 || ref > SpanRef(MaxSpans) {
		return
	}
	t.spans[ref-1].end = int64(end)
}

// StartOffset returns a claimed span's start offset — used to anchor
// synthesized children at their parent's start. Zero on invalid refs.
func (t *Trace) StartOffset(ref SpanRef) time.Duration {
	if t == nil || ref <= 0 || ref > SpanRef(MaxSpans) {
		return 0
	}
	return time.Duration(t.spans[ref-1].start)
}

// Attrs returns the mutable attributes of a claimed span, or nil on a
// nil trace / invalid ref — callers nil-check the result:
//
//	if a := tr.Attrs(sp); a != nil { a.Edges = int64(len(edges)) }
func (t *Trace) Attrs(ref SpanRef) *SpanAttrs {
	if t == nil || ref <= 0 || ref > SpanRef(MaxSpans) {
		return nil
	}
	return &t.spans[ref-1].attrs
}

// Elapsed is the time since the trace began (its duration, once ended).
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.began)
}

// Config sizes a Recorder. The zero value gets usable defaults.
type Config struct {
	// Ring is the completed-trace ring capacity (default 256). Every
	// finished trace lands here; new completions overwrite the oldest.
	Ring int
	// Retain is the slow-trace flight-recorder capacity (default 64).
	Retain int
	// SlowThreshold promotes traces whose end-to-end latency meets it
	// into the retained ring (default 100ms). <= 0 uses the default;
	// to retain everything use 1 (one nanosecond).
	SlowThreshold time.Duration
}

const (
	defaultRing   = 256
	defaultRetain = 64
	// DefaultSlowThreshold is the flight-recorder promotion latency used
	// when Config.SlowThreshold is unset.
	DefaultSlowThreshold = 100 * time.Millisecond
)

// ring is a lock-free overwrite-oldest buffer of finished traces: an
// atomic position counter plus atomic pointer slots. Writers claim a
// position and store; readers load pointers and walk the immutable
// traces. An overwritten trace stays valid for readers that already
// loaded it — slots are never recycled in place.
type ring struct {
	pos   atomic.Uint64
	slots []atomic.Pointer[Trace]
}

func newRing(n int) *ring {
	return &ring{slots: make([]atomic.Pointer[Trace], n)}
}

func (r *ring) put(t *Trace) {
	i := r.pos.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(t)
}

// snapshot returns the buffered traces newest-first.
func (r *ring) snapshot() []*Trace {
	n := uint64(len(r.slots))
	pos := r.pos.Load()
	out := make([]*Trace, 0, n)
	for k := uint64(0); k < n && k < pos; k++ {
		t := r.slots[(pos-1-k)%n].Load()
		if t == nil {
			break
		}
		out = append(out, t)
	}
	return out
}

// Recorder owns one Universe's trace storage: the ID sequence, the
// recent ring, and the slow-batch flight recorder. All methods are
// nil-safe — a nil *Recorder starts nil traces and finishes them for
// free, which is exactly the disabled mode.
type Recorder struct {
	ids      atomic.Uint64
	slow     int64 // promotion threshold, ns
	recent   *ring
	retained *ring
	started  atomic.Uint64
	slowSeen atomic.Uint64
}

// New builds a Recorder from cfg (zero value = defaults).
func New(cfg Config) *Recorder {
	if cfg.Ring <= 0 {
		cfg.Ring = defaultRing
	}
	if cfg.Retain <= 0 {
		cfg.Retain = defaultRetain
	}
	if cfg.SlowThreshold <= 0 {
		cfg.SlowThreshold = DefaultSlowThreshold
	}
	r := &Recorder{
		slow:     int64(cfg.SlowThreshold),
		recent:   newRing(cfg.Ring),
		retained: newRing(cfg.Retain),
	}
	r.ids.Store(rand.Uint64())
	return r
}

// nextID advances a splitmix64 sequence — unique, well-mixed 64-bit IDs
// from one atomic add, never zero (zero means "no trace" on the wire).
func (r *Recorder) nextID() uint64 {
	x := r.ids.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// SlowThreshold returns the flight-recorder promotion latency.
func (r *Recorder) SlowThreshold() time.Duration {
	if r == nil {
		return 0
	}
	return time.Duration(r.slow)
}

// Start begins a trace for one batch: allocates the Trace (the single
// per-batch allocation), assigns an ID, and opens the root span (named
// after op, ref Root). Returns nil on a nil recorder — the disabled
// path — and every downstream seam no-ops on the nil trace.
func (r *Recorder) Start(op, source string) *Trace {
	if r == nil {
		return nil
	}
	r.started.Add(1)
	t := &Trace{id: r.nextID(), op: op, source: source, began: time.Now()}
	t.n.Store(1)
	t.spans[0] = span{name: op}
	return t
}

// Finish seals a trace and records it: closes the root span (and any
// span left open, which inherits the root's end — a crash-visible "never
// ended" is less useful than a bounded interval), appends to the recent
// ring, and promotes to the flight recorder when the trace's duration
// meets the threshold. After Finish the trace is immutable. Nil-safe in
// both receiver and argument.
func (r *Recorder) Finish(t *Trace) {
	if r == nil || t == nil {
		return
	}
	end := int64(time.Since(t.began))
	n := int(t.n.Load())
	if n > MaxSpans {
		n = MaxSpans
	}
	t.spans[0].end = end
	for i := 1; i < n; i++ {
		if t.spans[i].end == 0 {
			t.spans[i].end = end
		}
	}
	r.recent.put(t)
	if end >= r.slow {
		r.slowSeen.Add(1)
		r.retained.put(t)
	}
}

// Started returns the number of traces begun (0 on nil).
func (r *Recorder) Started() uint64 {
	if r == nil {
		return 0
	}
	return r.started.Load()
}

// SlowCount returns the number of traces promoted to the flight
// recorder (0 on nil).
func (r *Recorder) SlowCount() uint64 {
	if r == nil {
		return 0
	}
	return r.slowSeen.Load()
}

// Snapshot exports the recent ring newest-first. Cold path: allocates
// freely. Nil-safe (returns nil).
func (r *Recorder) Snapshot() []TraceSnapshot {
	if r == nil {
		return nil
	}
	return export(r.recent.snapshot(), time.Duration(r.slow))
}

// Slow exports the flight recorder newest-first. Nil-safe.
func (r *Recorder) Slow() []TraceSnapshot {
	if r == nil {
		return nil
	}
	return export(r.retained.snapshot(), time.Duration(r.slow))
}
