package tracespan

import (
	"fmt"
	"time"
)

// TraceSnapshot is the exported, JSON-stable form of a finished trace.
// Trace IDs render as 16-hex-digit strings: a JSON number above 2^53
// silently loses precision in every JavaScript consumer, and trace IDs
// are identities, not quantities.
type TraceSnapshot struct {
	TraceID    string         `json:"trace_id"`
	ParentSpan uint64         `json:"parent_span,omitempty"` // remote peer's span, when adopted
	Remote     bool           `json:"remote,omitempty"`      // trace ID adopted from a peer
	Op         string         `json:"op"`
	Source     string         `json:"source"`
	Began      time.Time      `json:"began"`
	Duration   time.Duration  `json:"duration_ns"`
	Slow       bool           `json:"slow,omitempty"` // met the flight-recorder threshold
	Dropped    int            `json:"dropped_spans,omitempty"`
	Spans      []SpanSnapshot `json:"spans"`
}

// SpanSnapshot is one span of an exported trace. IDs and parents are
// trace-local SpanRefs; Parent 0 marks the root. Offsets and durations
// are nanoseconds from the trace's begin time.
type SpanSnapshot struct {
	ID       uint32        `json:"id"`
	Parent   uint32        `json:"parent,omitempty"`
	Name     string        `json:"name"`
	Start    time.Duration `json:"start_ns"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    SpanAttrs     `json:"attrs"`
}

// FormatTraceID renders a wire trace ID the way snapshots do.
func FormatTraceID(id uint64) string { return fmt.Sprintf("%016x", id) }

func export(traces []*Trace, slow time.Duration) []TraceSnapshot {
	out := make([]TraceSnapshot, 0, len(traces))
	for _, t := range traces {
		out = append(out, t.snapshot(slow))
	}
	return out
}

// snapshot exports one finished (immutable) trace.
func (t *Trace) snapshot(slow time.Duration) TraceSnapshot {
	n := int(t.n.Load())
	if n > MaxSpans {
		n = MaxSpans
	}
	spans := make([]SpanSnapshot, n)
	for i := 0; i < n; i++ {
		s := &t.spans[i]
		spans[i] = SpanSnapshot{
			ID:       uint32(i + 1),
			Parent:   uint32(s.parent),
			Name:     s.name,
			Start:    time.Duration(s.start),
			Duration: time.Duration(s.end - s.start),
			Attrs:    s.attrs,
		}
	}
	dur := time.Duration(t.spans[0].end)
	return TraceSnapshot{
		TraceID:    FormatTraceID(t.id),
		ParentSpan: t.parent,
		Remote:     t.adopted.Load(),
		Op:         t.op,
		Source:     t.source,
		Began:      t.began,
		Duration:   dur,
		Slow:       slow > 0 && dur >= slow,
		Dropped:    int(t.dropped.Load()),
		Spans:      spans,
	}
}
