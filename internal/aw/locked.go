package aw

import (
	"sync"

	"repro/internal/seqdsu"
)

// Locked wraps a sequential union-find behind one global mutex: the
// lock-based baseline for the speedup experiments. Under contention every
// operation serializes, which is exactly the behaviour the wait-free
// algorithms are designed to beat.
type Locked struct {
	mu  sync.Mutex
	dsu *seqdsu.DSU
}

// NewLocked returns a Locked structure over n elements using linking by
// rank with halving, the sequential analogue of Anderson & Woll's method.
func NewLocked(n int) *Locked {
	return &Locked{dsu: seqdsu.New(n, seqdsu.LinkRank, seqdsu.CompactHalving, 0)}
}

// N returns the number of elements.
func (l *Locked) N() int { return l.dsu.N() }

// Find returns the root of x's tree.
func (l *Locked) Find(x uint32) uint32 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dsu.Find(x)
}

// SameSet reports whether x and y are in the same set.
func (l *Locked) SameSet(x, y uint32) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dsu.SameSet(x, y)
}

// Unite merges the sets of x and y, reporting whether a link was performed.
func (l *Locked) Unite(x, y uint32) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dsu.Unite(x, y)
}

// Sets returns the current number of sets.
func (l *Locked) Sets() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dsu.Sets()
}

// CanonicalLabels returns the min-element labelling of the partition.
func (l *Locked) CanonicalLabels() []uint32 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dsu.CanonicalLabels()
}
