package aw

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/randutil"
	"repro/internal/seqdsu"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	check := func(parent, rank uint32) bool {
		p, r := unpack(pack(parent, rank))
		return p == parent && r == rank
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialSemanticsMatchSpec(t *testing.T) {
	const n, ops = 150, 500
	rng := randutil.NewXoshiro256(11)
	d := New(n)
	s := seqdsu.NewSpec(n)
	for i := 0; i < ops; i++ {
		x, y := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		if rng.Intn(2) == 0 {
			if d.Unite(x, y) != s.Unite(x, y) {
				t.Fatalf("Unite diverged at op %d", i)
			}
		} else if d.SameSet(x, y) != s.SameSet(x, y) {
			t.Fatalf("SameSet diverged at op %d", i)
		}
	}
	labels := d.CanonicalLabels()
	for i, want := range s.Labels() {
		if labels[i] != want {
			t.Fatalf("partition differs at %d", i)
		}
	}
}

func TestConcurrentPartitionMatchesClosure(t *testing.T) {
	const n, pairs, workers = 2000, 3000, 8
	rng := randutil.NewXoshiro256(5)
	xs, ys := make([]uint32, pairs), make([]uint32, pairs)
	spec := seqdsu.New(n, seqdsu.LinkSize, seqdsu.CompactCompression, 0)
	for i := range xs {
		xs[i], ys[i] = uint32(rng.Intn(n)), uint32(rng.Intn(n))
		spec.Unite(xs[i], ys[i])
	}
	d := New(n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < pairs; i += workers {
				d.Unite(xs[i], ys[i])
			}
		}(w)
	}
	wg.Wait()
	want := spec.CanonicalLabels()
	got := d.CanonicalLabels()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("partition differs at element %d", i)
		}
	}
}

// TestNoCycles checks acyclicity at quiescence after heavy concurrent
// uniting — the property the (rank, index) lexicographic tie-break protects.
func TestNoCycles(t *testing.T) {
	const n, workers = 1024, 12
	d := New(n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := randutil.NewXoshiro256(uint64(w) * 13)
			for i := 0; i < 5000; i++ {
				d.Unite(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
			}
		}(w)
	}
	wg.Wait()
	for x := uint32(0); x < n; x++ {
		// Walk up at most n steps; exceeding that means a cycle.
		u := x
		for steps := 0; ; steps++ {
			p := d.Parent(u)
			if p == u {
				break
			}
			if steps > n {
				t.Fatalf("cycle reachable from node %d", x)
			}
			u = p
		}
	}
}

// TestRankOrderInvariant: at quiescence a non-root's stored rank never
// exceeds its parent's stored rank (ranks are non-decreasing upward, the
// linking-by-rank invariant).
func TestRankOrderInvariant(t *testing.T) {
	const n, workers = 512, 8
	d := New(n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := randutil.NewXoshiro256(uint64(w) + 3)
			for i := 0; i < 3000; i++ {
				d.Unite(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
			}
		}(w)
	}
	wg.Wait()
	for x := uint32(0); x < n; x++ {
		p := d.Parent(x)
		if p != x && d.Rank(x) > d.Rank(p) {
			t.Fatalf("node %d rank %d above parent %d rank %d", x, d.Rank(x), p, d.Rank(p))
		}
	}
}

func TestRankBoundedByLogN(t *testing.T) {
	// Sequential linking by rank guarantees rank ≤ ⌊lg n⌋; the concurrent
	// best-effort bump can only lose bumps, never add spurious ones beyond
	// one per performed link, so ranks stay ≤ ⌊lg n⌋ in sequential use.
	const n = 1 << 10
	d := New(n)
	for gap := uint32(1); gap < n; gap *= 2 {
		for i := uint32(0); i+gap < n; i += 2 * gap {
			d.Unite(i, i+gap)
		}
	}
	maxRank := uint32(0)
	for x := uint32(0); x < n; x++ {
		if r := d.Rank(x); r > maxRank {
			maxRank = r
		}
	}
	if maxRank > 10 {
		t.Fatalf("max rank %d exceeds lg n = 10", maxRank)
	}
}

func TestCountedStats(t *testing.T) {
	const n = 128
	d := New(n)
	var st core.Stats
	for i := uint32(0); i+1 < n; i++ {
		d.UniteCounted(i, i+1, &st)
	}
	if st.Links != n-1 {
		t.Errorf("Links = %d, want %d", st.Links, n-1)
	}
	if st.Ops != n-1 || st.Reads == 0 {
		t.Errorf("implausible stats %+v", st)
	}
	if !d.SameSetCounted(0, n-1, &st) {
		t.Error("chain ends not connected")
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSplittingVariantMatchesSpec(t *testing.T) {
	const n, ops = 150, 500
	rng := randutil.NewXoshiro256(12)
	d := NewSplitting(n)
	s := seqdsu.NewSpec(n)
	for i := 0; i < ops; i++ {
		x, y := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		if rng.Intn(2) == 0 {
			if d.Unite(x, y) != s.Unite(x, y) {
				t.Fatalf("Unite diverged at op %d", i)
			}
		} else if d.SameSet(x, y) != s.SameSet(x, y) {
			t.Fatalf("SameSet diverged at op %d", i)
		}
	}
	labels := d.CanonicalLabels()
	for i, want := range s.Labels() {
		if labels[i] != want {
			t.Fatalf("partition differs at %d", i)
		}
	}
}

func TestSplittingVariantConcurrent(t *testing.T) {
	const n, pairs, workers = 1500, 2500, 8
	rng := randutil.NewXoshiro256(13)
	xs, ys := make([]uint32, pairs), make([]uint32, pairs)
	spec := seqdsu.New(n, seqdsu.LinkSize, seqdsu.CompactCompression, 0)
	for i := range xs {
		xs[i], ys[i] = uint32(rng.Intn(n)), uint32(rng.Intn(n))
		spec.Unite(xs[i], ys[i])
	}
	d := NewSplitting(n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < pairs; i += workers {
				d.Unite(xs[i], ys[i])
			}
		}(w)
	}
	wg.Wait()
	want := spec.CanonicalLabels()
	got := d.CanonicalLabels()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("partition differs at element %d", i)
		}
	}
	// Rank invariant holds for the splitting variant too.
	for x := uint32(0); x < n; x++ {
		p := d.Parent(x)
		if p != x && d.Rank(x) > d.Rank(p) {
			t.Fatalf("rank invariant violated at %d", x)
		}
	}
}

// --- Locked baseline ---

func TestLockedMatchesSpec(t *testing.T) {
	const n = 100
	l := NewLocked(n)
	s := seqdsu.NewSpec(n)
	rng := randutil.NewXoshiro256(21)
	for i := 0; i < 400; i++ {
		x, y := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		if rng.Intn(2) == 0 {
			if l.Unite(x, y) != s.Unite(x, y) {
				t.Fatalf("Unite diverged at op %d", i)
			}
		} else if l.SameSet(x, y) != s.SameSet(x, y) {
			t.Fatalf("SameSet diverged at op %d", i)
		}
	}
	labels := l.CanonicalLabels()
	for i, want := range s.Labels() {
		if labels[i] != want {
			t.Fatalf("partition differs at %d", i)
		}
	}
}

func TestLockedConcurrentSafety(t *testing.T) {
	const n, workers = 500, 8
	l := NewLocked(n)
	spec := seqdsu.New(n, seqdsu.LinkSize, seqdsu.CompactCompression, 0)
	rng := randutil.NewXoshiro256(2)
	const pairs = 2000
	xs, ys := make([]uint32, pairs), make([]uint32, pairs)
	for i := range xs {
		xs[i], ys[i] = uint32(rng.Intn(n)), uint32(rng.Intn(n))
		spec.Unite(xs[i], ys[i])
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < pairs; i += workers {
				l.Unite(xs[i], ys[i])
			}
		}(w)
	}
	wg.Wait()
	want := spec.CanonicalLabels()
	got := l.CanonicalLabels()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("partition differs at %d", i)
		}
	}
	if l.Sets() != spec.Sets() {
		t.Fatalf("Sets = %d, want %d", l.Sets(), spec.Sets())
	}
	if l.N() != n {
		t.Fatalf("N = %d", l.N())
	}
	if l.Find(xs[0]) != l.Find(ys[0]) {
		t.Fatal("united pair has different roots")
	}
}
