// Package aw implements the comparator algorithm of Anderson & Woll
// ("Wait-free parallel algorithms for the union-find problem", STOC 1991)
// that Jayanti & Tarjan measure themselves against: concurrent linking by
// rank with path halving.
//
// Anderson & Woll store each node's (parent, rank) pair behind one level of
// indirection so that both can be compared and updated by a single CAS. We
// achieve the identical atomicity by packing parent (low 32 bits) and rank
// (high 32 bits) into one 64-bit word updated by a single CAS — the same
// granularity of atomic update with the same link/halve logic, minus the
// allocation churn of indirection records (the substitution is recorded in
// DESIGN.md). Rank ties are broken by element index, and the winner's rank
// is bumped by a best-effort CAS, which is exactly the complication the
// Jayanti–Tarjan randomized order eliminates.
//
// The package also provides Locked, a global-mutex sequential structure that
// serves as the lock-based baseline in the speedup experiments.
package aw

import (
	"sync/atomic"

	"repro/internal/core"
)

// DSU is a wait-free concurrent union-find using linking by rank with path
// halving, Anderson–Woll style. All methods are safe for concurrent use.
//
// NewSplitting builds the variant that compacts by one-try splitting
// instead of halving — Jayanti & Tarjan's Section 7 teases exactly such
// deterministic rank-based companions to their randomized algorithm (no
// independence assumption needed, at the price of carrying ranks in the
// CAS word).
type DSU struct {
	node      []atomic.Uint64 // high 32 bits rank, low 32 bits parent
	splitting bool            // compact by splitting instead of halving
}

func pack(parent, rank uint32) uint64 { return uint64(rank)<<32 | uint64(parent) }

func unpack(w uint64) (parent, rank uint32) { return uint32(w), uint32(w >> 32) }

// New returns a DSU over n singleton elements, each with rank 0.
// It panics if n is negative or exceeds 2³¹−1.
func New(n int) *DSU {
	if n < 0 || int64(n) > int64(1)<<31-1 {
		panic("aw: element count out of range")
	}
	d := &DSU{node: make([]atomic.Uint64, n)}
	for i := range d.node {
		d.node[i].Store(pack(uint32(i), 0))
	}
	return d
}

// NewSplitting returns a rank-linked DSU whose finds compact by one-try
// splitting rather than halving.
func NewSplitting(n int) *DSU {
	d := New(n)
	d.splitting = true
	return d
}

// N returns the number of elements.
func (d *DSU) N() int { return len(d.node) }

// Find returns the root of x's tree, halving the find path.
func (d *DSU) Find(x uint32) uint32 { return d.find(x, nil) }

// FindCounted is Find with work accounting into st (shared-word loads and
// CAS attempts, same units as package core).
func (d *DSU) FindCounted(x uint32, st *core.Stats) uint32 {
	if st != nil {
		st.Finds++
	}
	return d.find(x, st)
}

func (d *DSU) find(x uint32, st *core.Stats) uint32 {
	u := x
	var steps, reads, cas, casFail int64
	for {
		steps++
		wu := d.node[u].Load()
		reads++
		p, r := unpack(wu)
		if p == u {
			break
		}
		wp := d.node[p].Load()
		reads++
		g, _ := unpack(wp)
		if g == p {
			u = p
			break
		}
		// Compact: swing u's parent to its grandparent, leaving u's rank
		// untouched; a failure just means someone else already moved it.
		// Halving then jumps to the grandparent, splitting to the parent.
		cas++
		if !d.node[u].CompareAndSwap(wu, pack(g, r)) {
			casFail++
		}
		if d.splitting {
			u = p
		} else {
			u = g
		}
	}
	if st != nil {
		st.FindSteps += steps
		st.Reads += reads
		st.CASAttempts += cas
		st.CASFailures += casFail
	}
	return u
}

// SameSet reports whether x and y are in the same set (linearizable).
func (d *DSU) SameSet(x, y uint32) bool { return d.sameSet(x, y, nil) }

// SameSetCounted is SameSet with work accounting.
func (d *DSU) SameSetCounted(x, y uint32, st *core.Stats) bool { return d.sameSet(x, y, st) }

func (d *DSU) sameSet(x, y uint32, st *core.Stats) bool {
	if st != nil {
		defer func() { st.Ops++ }()
	}
	u, v := x, y
	for {
		if st != nil {
			st.Rounds++
		}
		u = d.find(u, st)
		v = d.find(v, st)
		if u == v {
			return true
		}
		if st != nil {
			st.Reads++
		}
		if p, _ := unpack(d.node[u].Load()); p == u {
			return false
		}
	}
}

// Unite merges the sets containing x and y, reporting whether this call
// performed the link.
func (d *DSU) Unite(x, y uint32) bool { return d.unite(x, y, nil) }

// UniteCounted is Unite with work accounting.
func (d *DSU) UniteCounted(x, y uint32, st *core.Stats) bool { return d.unite(x, y, st) }

func (d *DSU) unite(x, y uint32, st *core.Stats) bool {
	if st != nil {
		defer func() { st.Ops++ }()
	}
	u, v := x, y
	for {
		if st != nil {
			st.Rounds++
		}
		u = d.find(u, st)
		v = d.find(v, st)
		if u == v {
			return false
		}
		// Re-read both roots' words; retry from the top if either has
		// stopped being a root (its rank read would be stale otherwise).
		wu := d.node[u].Load()
		wv := d.node[v].Load()
		if st != nil {
			st.Reads += 2
		}
		pu, ru := unpack(wu)
		pv, rv := unpack(wv)
		if pu != u || pv != v {
			continue
		}
		// Link the (rank, index)-lexicographically smaller root under the
		// larger. Rank monotonicity of live roots plus the fixed index
		// order rules out mutual links, hence cycles.
		child, parent, wc := u, v, wu
		if rv < ru || (rv == ru && v < u) {
			child, parent, wc = v, u, wv
		}
		if st != nil {
			st.CASAttempts++
		}
		_, rc := unpack(wc)
		if d.node[child].CompareAndSwap(wc, pack(parent, rc)) {
			if st != nil {
				st.Links++
			}
			if rc == max32(ru, rv) {
				// Rank tie: bump the winner, best-effort. Failure means the
				// winner was linked or bumped meanwhile; both are fine.
				wp := pack(parent, rc)
				if st != nil {
					st.CASAttempts++
				}
				if !d.node[parent].CompareAndSwap(wp, pack(parent, rc+1)) && st != nil {
					st.CASFailures++
				}
			}
			return true
		}
		if st != nil {
			st.CASFailures++
		}
	}
}

func max32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

// Parent returns x's current parent (quiescent-state analysis use).
func (d *DSU) Parent(x uint32) uint32 {
	p, _ := unpack(d.node[x].Load())
	return p
}

// Rank returns x's current stored rank (meaningful for roots).
func (d *DSU) Rank(x uint32) uint32 {
	_, r := unpack(d.node[x].Load())
	return r
}

// CanonicalLabels returns the min-element labelling of the current
// partition. Quiescent-state use only.
func (d *DSU) CanonicalLabels() []uint32 {
	n := len(d.node)
	parent := make([]uint32, n)
	for i := range parent {
		parent[i] = d.Parent(uint32(i))
	}
	root := make([]uint32, n)
	for i := range root {
		x := uint32(i)
		for parent[x] != x {
			x = parent[x]
		}
		root[i] = x
	}
	minOf := make([]uint32, n)
	for i := range minOf {
		minOf[i] = ^uint32(0)
	}
	for i := 0; i < n; i++ {
		if r := root[i]; uint32(i) < minOf[r] {
			minOf[r] = uint32(i)
		}
	}
	labels := make([]uint32, n)
	for i := range labels {
		labels[i] = minOf[root[i]]
	}
	return labels
}

// Sets counts the current number of roots. Quiescent-state use only.
func (d *DSU) Sets() int {
	count := 0
	for i := range d.node {
		if p, _ := unpack(d.node[i].Load()); p == uint32(i) {
			count++
		}
	}
	return count
}
