// Package forest analyzes parent-pointer forests: depths, heights, rank
// distributions, and structural invariants. The Section 4 experiments
// (union-forest height, rank dominance) and the lower-bound constructions
// of Section 5 all reduce to questions about these forests.
//
// Analyses operate on plain []uint32 parent snapshots taken at quiescence.
// For the union forest — the forest formed by links alone, ignoring
// compaction (Section 3) — run the algorithms with FindNaive, whose finds
// never modify parents, making the live forest and the union forest
// identical.
package forest

import (
	"fmt"

	"repro/internal/ackermann"
)

// Depths returns the depth of every node (roots have depth 0). It runs in
// O(n) via path memoization and panics if the forest contains a cycle or an
// out-of-range parent.
func Depths(parent []uint32) []int {
	n := len(parent)
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	stack := make([]uint32, 0, 64)
	for i := 0; i < n; i++ {
		x := uint32(i)
		stack = stack[:0]
		for depth[x] == -1 {
			p := parent[x]
			if int(p) >= n {
				panic(fmt.Sprintf("forest: parent %d of node %d out of range", p, x))
			}
			if p == x {
				depth[x] = 0
				break
			}
			if len(stack) > n {
				panic("forest: cycle detected")
			}
			stack = append(stack, x)
			x = p
		}
		for j := len(stack) - 1; j >= 0; j-- {
			depth[stack[j]] = depth[parent[stack[j]]] + 1
		}
	}
	return depth
}

// Height returns the maximum node depth; 0 for an empty forest.
func Height(parent []uint32) int {
	max := 0
	for _, d := range Depths(parent) {
		if d > max {
			max = d
		}
	}
	return max
}

// AvgDepth returns the mean node depth; 0 for an empty forest.
func AvgDepth(parent []uint32) float64 {
	if len(parent) == 0 {
		return 0
	}
	sum := 0
	for _, d := range Depths(parent) {
		sum += d
	}
	return float64(sum) / float64(len(parent))
}

// Validate checks the structural invariants of Lemma 3.1 on a snapshot:
// every parent pointer is in range, the forest is acyclic, and if id is
// non-nil every non-root's id is strictly below its parent's id. It returns
// the first violation found, or nil.
func Validate(parent, id []uint32) error {
	n := len(parent)
	if id != nil && len(id) != n {
		return fmt.Errorf("forest: id length %d != parent length %d", len(id), n)
	}
	for x := 0; x < n; x++ {
		p := parent[x]
		if int(p) >= n {
			return fmt.Errorf("forest: node %d has out-of-range parent %d", x, p)
		}
		if id != nil && p != uint32(x) && id[x] >= id[p] {
			return fmt.Errorf("forest: node %d (id %d) not below parent %d (id %d)", x, id[x], p, id[p])
		}
	}
	// Depths panics on cycles; translate to an error.
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("forest: %v", r)
			}
		}()
		Depths(parent)
		return nil
	}()
	return err
}

// RankReport summarizes the rank structure of a union forest under the
// paper's Section 4 rank definition (rank derived from position in the
// random order).
type RankReport struct {
	// GoodAncestorFraction is the empirical probability that a proper
	// ancestor out-ranks the node, over all (node, proper ancestor) pairs;
	// Lemma 4.1 bounds its expectation below by 1/2.
	GoodAncestorFraction float64
	// MeanSameRankAncestors is the mean number of proper ancestors sharing
	// the node's rank; Corollary 4.1.1 bounds its expectation by 2.
	MeanSameRankAncestors float64
	// MaxRank is the largest rank observed (≤ ⌊lg n⌋ by construction).
	MaxRank int
	// Pairs is the number of (node, proper ancestor) pairs inspected.
	Pairs int64
}

// Ranks computes the Section 4 rank of every node: rank(x) = ⌊lg n⌋ −
// ⌊lg(n − id(x))⌋ with ids zero-based.
func Ranks(id []uint32) []int {
	n := len(id)
	ranks := make([]int, n)
	for x := range ranks {
		ranks[x] = ackermann.Rank(id[x], n)
	}
	return ranks
}

// AnalyzeRanks walks every node's ancestor chain in the given union forest
// and reports the Lemma 4.1 / Corollary 4.1.1 statistics.
func AnalyzeRanks(parent, id []uint32) RankReport {
	ranks := Ranks(id)
	var rpt RankReport
	var good, same int64
	for x := range parent {
		r := ranks[x]
		if r > rpt.MaxRank {
			rpt.MaxRank = r
		}
		for u := uint32(x); parent[u] != u; {
			u = parent[u]
			rpt.Pairs++
			switch {
			case ranks[u] > r:
				good++
			case ranks[u] == r:
				same++
			}
		}
	}
	if rpt.Pairs > 0 {
		rpt.GoodAncestorFraction = float64(good) / float64(rpt.Pairs)
	}
	if len(parent) > 0 {
		rpt.MeanSameRankAncestors = float64(same) / float64(len(parent))
	}
	return rpt
}

// SetSizes returns the size of each set keyed by root.
func SetSizes(parent []uint32) map[uint32]int {
	sizes := make(map[uint32]int)
	for x := range parent {
		u := uint32(x)
		for parent[u] != u {
			u = parent[u]
		}
		sizes[u]++
	}
	return sizes
}
