package forest

import (
	"math"
	"testing"

	"repro/internal/randutil"
	"repro/internal/seqdsu"
)

func TestDepthsSimple(t *testing.T) {
	// 1→0, 2→1, 3→3, 4→3.
	parent := []uint32{0, 0, 1, 3, 3}
	want := []int{0, 1, 2, 0, 1}
	got := Depths(parent)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("depth[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if h := Height(parent); h != 2 {
		t.Errorf("Height = %d, want 2", h)
	}
	if avg := AvgDepth(parent); math.Abs(avg-0.8) > 1e-12 {
		t.Errorf("AvgDepth = %v, want 0.8", avg)
	}
}

func TestDepthsLongChainNoStackOverflow(t *testing.T) {
	const n = 1 << 20
	parent := make([]uint32, n)
	for i := 1; i < n; i++ {
		parent[i] = uint32(i - 1)
	}
	d := Depths(parent)
	if d[n-1] != n-1 {
		t.Fatalf("deepest depth = %d, want %d", d[n-1], n-1)
	}
}

func TestDepthsPanicsOnCycle(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on 2-cycle")
		}
	}()
	Depths([]uint32{1, 0})
}

func TestDepthsPanicsOnOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range parent")
		}
	}()
	Depths([]uint32{5})
}

func TestEmptyForest(t *testing.T) {
	if Height(nil) != 0 || AvgDepth(nil) != 0 {
		t.Fatal("empty forest should have zero height and depth")
	}
	if err := Validate(nil, nil); err != nil {
		t.Fatalf("Validate(empty) = %v", err)
	}
}

func TestValidate(t *testing.T) {
	ok := []uint32{0, 0, 1}
	id := []uint32{2, 1, 0} // ids decrease toward leaves: 2>1>0 upward ✓
	if err := Validate(ok, id); err != nil {
		t.Errorf("valid forest rejected: %v", err)
	}
	if err := Validate([]uint32{3}, nil); err == nil {
		t.Error("out-of-range parent accepted")
	}
	if err := Validate([]uint32{1, 0}, nil); err == nil {
		t.Error("cycle accepted")
	}
	badID := []uint32{0, 1, 2} // node 1 id 1 under node 0 id 0: violation
	if err := Validate(ok, badID); err == nil {
		t.Error("id-order violation accepted")
	}
	if err := Validate(ok, []uint32{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestSetSizes(t *testing.T) {
	parent := []uint32{0, 0, 1, 3, 3, 5}
	sizes := SetSizes(parent)
	if sizes[0] != 3 || sizes[3] != 2 || sizes[5] != 1 {
		t.Errorf("sizes = %v", sizes)
	}
	if len(sizes) != 3 {
		t.Errorf("expected 3 sets, got %d", len(sizes))
	}
}

func TestRanksMatchDefinition(t *testing.T) {
	// Identity order on 8 elements: ranks from the paper's formula.
	id := []uint32{0, 1, 2, 3, 4, 5, 6, 7}
	ranks := Ranks(id)
	want := []int{0, 1, 1, 1, 1, 2, 2, 3}
	for i := range want {
		if ranks[i] != want[i] {
			t.Errorf("rank[%d] = %d, want %d", i, ranks[i], want[i])
		}
	}
}

// TestAnalyzeRanksOnRandomizedForest builds genuine union forests with
// randomized linking (no compaction, so live forest == union forest) and
// checks the Lemma 4.1 / Corollary 4.1.1 statistics with slack.
func TestAnalyzeRanksOnRandomizedForest(t *testing.T) {
	const n = 1 << 12
	var fracSum, sameSum float64
	const trials = 5
	for trial := 0; trial < trials; trial++ {
		d := seqdsu.New(n, seqdsu.LinkRandom, seqdsu.CompactNone, uint64(trial)+1)
		rng := randutil.NewXoshiro256(uint64(trial) * 7)
		for i := 0; i < 4*n; i++ {
			d.Unite(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
		}
		parent := make([]uint32, n)
		id := make([]uint32, n)
		for x := uint32(0); x < n; x++ {
			parent[x] = d.Parent(x)
			id[x] = d.ID(x)
		}
		rpt := AnalyzeRanks(parent, id)
		if rpt.Pairs == 0 {
			t.Fatal("no ancestor pairs analyzed")
		}
		fracSum += rpt.GoodAncestorFraction
		sameSum += rpt.MeanSameRankAncestors
		if rpt.MaxRank > 12 {
			t.Errorf("MaxRank %d exceeds lg n", rpt.MaxRank)
		}
	}
	if avg := fracSum / trials; avg < 0.5 {
		t.Errorf("good-ancestor fraction %.3f below the Lemma 4.1 bound 1/2", avg)
	}
	if avg := sameSum / trials; avg > 2.0 {
		t.Errorf("mean same-rank ancestors %.3f above the Corollary 4.1.1 bound 2", avg)
	}
}

// TestUnionForestHeightLogarithmic is a direct check of Corollary 4.2.1's
// shape: height grows like c·lg n with modest c.
func TestUnionForestHeightLogarithmic(t *testing.T) {
	for _, n := range []int{1 << 10, 1 << 14} {
		d := seqdsu.New(n, seqdsu.LinkRandom, seqdsu.CompactNone, uint64(n))
		rng := randutil.NewXoshiro256(uint64(n) + 1)
		for i := 0; i < 4*n; i++ {
			d.Unite(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
		}
		parent := make([]uint32, n)
		for x := uint32(0); x < uint32(n); x++ {
			parent[x] = d.Parent(x)
		}
		h := Height(parent)
		lg := math.Log2(float64(n))
		if float64(h) > 4*lg {
			t.Errorf("n=%d: height %d exceeds 4·lg n = %.0f", n, h, 4*lg)
		}
		if h < 2 {
			t.Errorf("n=%d: implausibly flat union forest (height %d)", n, h)
		}
	}
}

func BenchmarkDepths(b *testing.B) {
	const n = 1 << 16
	rng := randutil.NewXoshiro256(1)
	d := seqdsu.New(n, seqdsu.LinkRandom, seqdsu.CompactNone, 3)
	for i := 0; i < 4*n; i++ {
		d.Unite(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}
	parent := make([]uint32, n)
	for x := uint32(0); x < n; x++ {
		parent[x] = d.Parent(x)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Depths(parent)
	}
}
