// Package bufpool holds the size-classed frame-buffer pools shared by
// the wire codecs and the WAL record writer: zero-length []byte buffers
// in power-of-two capacity classes (1 KiB … 16 MiB), in the style of
// MCAP's chunked-record buffers. A buffer is taken from the smallest
// class that fits, used for one codec lifetime or one record assembly,
// and returned on release; buffers beyond the top class are handed out
// unpooled (they were exceptional to begin with).
//
// The pools hold *[]byte (a bare []byte in an interface would re-box on
// every Put). The box itself costs one small allocation per Put — paid
// at growth and release, never per frame.
package bufpool

import "sync"

const (
	// MinBits is the smallest pooled class, 1 KiB.
	MinBits = 10
	// MaxBits is the largest pooled class, 16 MiB (the wire protocol's
	// DefaultMaxFrame).
	MaxBits = 24

	classes = MaxBits - MinBits + 1
)

var pools [classes]sync.Pool

// Get returns a zero-length buffer with capacity ≥ n, pooled when n fits
// a size class.
func Get(n int) []byte {
	class, size := 0, 1<<MinBits
	for size < n {
		class, size = class+1, size<<1
		if class >= classes {
			return make([]byte, 0, n) // beyond the classes: unpooled
		}
	}
	if p, _ := pools[class].Get().(*[]byte); p != nil {
		return (*p)[:0]
	}
	return make([]byte, 0, size)
}

// Put recycles a buffer into the largest class its capacity fully
// covers, so a later Get from that class always honors its size.
// Capacities outside the class range are dropped silently.
func Put(b []byte) {
	c := cap(b)
	if c < 1<<MinBits || c > 1<<MaxBits {
		return
	}
	class := 0
	for class+1 < classes && c >= 1<<(MinBits+class+1) {
		class++
	}
	b = b[:0]
	pools[class].Put(&b)
}
