package seqdsu

// Splicing is the fifth compaction method analyzed by Goel et al.
// (SODA 2014) and discussed in Section 6 of Jayanti & Tarjan: a Unite
// traverses its two find paths together, at each step redirecting the
// smaller current node's parent onto the other path. It achieves the same
// O(m·α(n, m/n)) bound sequentially, but the paper judges it dangerous to
// run concurrently (it can splice two trees together before the Unite's
// linearization point), so — unlike splitting and halving — it exists here
// only as a sequential structure, and the concurrent packages deliberately
// omit it.
//
// SplicingDSU supports randomized linking only: splicing's interleaved walk
// needs a total order on nodes to decide which path to advance, and the
// random order is the one the paper's analysis covers.
type SplicingDSU struct {
	parent []uint32
	id     []uint32
	work   Work
	sets   int
}

// NewSplicing returns a splicing DSU over n singletons with the random
// total order fixed by seed.
func NewSplicing(n int, seed uint64) *SplicingDSU {
	base := New(n, LinkRandom, CompactNone, seed)
	return &SplicingDSU{
		parent: base.parent,
		id:     base.id,
		sets:   n,
	}
}

// N returns the number of elements.
func (d *SplicingDSU) N() int { return len(d.parent) }

// Sets returns the current number of sets.
func (d *SplicingDSU) Sets() int { return d.sets }

// Work returns accumulated work counters.
func (d *SplicingDSU) Work() Work { return d.work }

// Parent exposes the parent pointer of x for forest analysis.
func (d *SplicingDSU) Parent(x uint32) uint32 { return d.parent[x] }

// ID returns x's position in the random order.
func (d *SplicingDSU) ID(x uint32) uint32 { return d.id[x] }

// Find follows parents to the root without compaction (splicing compacts
// only during Unite, which is where its one-pass interleaved walk lives).
func (d *SplicingDSU) Find(x uint32) uint32 {
	d.work.Finds++
	for {
		p := d.parent[x]
		d.work.ParentReads++
		if p == x {
			return x
		}
		x = p
	}
}

// SameSet reports whether x and y are in one set.
func (d *SplicingDSU) SameSet(x, y uint32) bool { return d.Find(x) == d.Find(y) }

// Unite merges the sets of x and y by splicing: ascend both find paths in
// tandem, always advancing the walker with the smaller parent after
// redirecting its parent onto the other walker's (strictly larger) parent —
// every write moves a pointer upward in the order, which is the compaction
// effect that gives splicing its O(m·α(n, m/n)) amortized bound with
// randomized linking (Goel et al., SODA 2014). The walk stops when the two
// parents coincide (same tree) or when the lower walker is a root, which is
// then linked. Reports whether a link happened.
func (d *SplicingDSU) Unite(x, y uint32) bool {
	u, v := x, y
	for {
		pu := d.parent[u]
		pv := d.parent[v]
		d.work.ParentReads += 2
		if pu == pv {
			return false // common parent (or u == v): already one set
		}
		// Keep v the walker with the smaller parent.
		if d.id[pu] < d.id[pv] {
			u, v, pu, pv = v, u, pv, pu
		}
		if pv == v {
			// v is a root strictly below pu: link it.
			d.parent[v] = pu
			d.work.ParentWrites++
			d.work.Links++
			d.sets--
			return true
		}
		// Splice: hoist v's parent from pv up to pu and continue from pv.
		d.parent[v] = pu
		d.work.ParentWrites++
		v = pv
	}
}
