package seqdsu

import (
	"testing"
	"testing/quick"

	"repro/internal/randutil"
)

var allLinkings = []Linking{LinkRandom, LinkRank, LinkSize}
var allCompactions = []Compaction{CompactNone, CompactCompression, CompactSplitting, CompactHalving}

func forEachVariant(t *testing.T, f func(t *testing.T, l Linking, c Compaction)) {
	t.Helper()
	for _, l := range allLinkings {
		for _, c := range allCompactions {
			l, c := l, c
			t.Run(l.String()+"/"+c.String(), func(t *testing.T) { f(t, l, c) })
		}
	}
}

func TestSingletonsInitially(t *testing.T) {
	forEachVariant(t, func(t *testing.T, l Linking, c Compaction) {
		d := New(10, l, c, 1)
		if d.Sets() != 10 {
			t.Fatalf("Sets = %d, want 10", d.Sets())
		}
		for i := uint32(0); i < 10; i++ {
			if d.Find(i) != i {
				t.Errorf("Find(%d) = %d before any union", i, d.Find(i))
			}
			for j := i + 1; j < 10; j++ {
				if d.SameSet(i, j) {
					t.Errorf("SameSet(%d,%d) true before any union", i, j)
				}
			}
		}
	})
}

func TestUniteSemantics(t *testing.T) {
	forEachVariant(t, func(t *testing.T, l Linking, c Compaction) {
		d := New(6, l, c, 7)
		if !d.Unite(0, 1) {
			t.Fatal("first Unite(0,1) reported no link")
		}
		if d.Unite(0, 1) {
			t.Fatal("repeated Unite(0,1) reported a link")
		}
		if !d.SameSet(0, 1) || d.SameSet(0, 2) {
			t.Fatal("membership wrong after one union")
		}
		d.Unite(2, 3)
		d.Unite(1, 3) // merges the two pairs
		for _, pair := range [][2]uint32{{0, 2}, {0, 3}, {1, 2}} {
			if !d.SameSet(pair[0], pair[1]) {
				t.Errorf("SameSet(%d,%d) false after merging pairs", pair[0], pair[1])
			}
		}
		if d.SameSet(0, 5) {
			t.Error("disjoint element 5 merged spuriously")
		}
		if d.Sets() != 3 { // {0,1,2,3}, {4}, {5}
			t.Errorf("Sets = %d, want 3", d.Sets())
		}
	})
}

func TestTransitivityChain(t *testing.T) {
	forEachVariant(t, func(t *testing.T, l Linking, c Compaction) {
		const n = 500
		d := New(n, l, c, 3)
		for i := uint32(0); i+1 < n; i++ {
			d.Unite(i, i+1)
		}
		if d.Sets() != 1 {
			t.Fatalf("Sets = %d after chaining all, want 1", d.Sets())
		}
		if !d.SameSet(0, n-1) {
			t.Fatal("ends of chain not connected")
		}
	})
}

// TestAllVariantsAgree drives every variant with the same random operation
// sequence and requires identical partitions and identical SameSet answers —
// linking and compaction affect efficiency only, never semantics (Section 2).
func TestAllVariantsAgree(t *testing.T) {
	const n, ops = 200, 600
	rng := randutil.NewXoshiro256(42)
	type op struct {
		unite bool
		x, y  uint32
	}
	seq := make([]op, ops)
	for i := range seq {
		seq[i] = op{rng.Intn(2) == 0, uint32(rng.Intn(n)), uint32(rng.Intn(n))}
	}
	ref := New(n, LinkSize, CompactNone, 0)
	refAnswers := make([]bool, ops)
	for i, o := range seq {
		if o.unite {
			ref.Unite(o.x, o.y)
		} else {
			refAnswers[i] = ref.SameSet(o.x, o.y)
		}
	}
	refLabels := ref.CanonicalLabels()
	for _, l := range allLinkings {
		for _, c := range allCompactions {
			d := New(n, l, c, 99)
			for i, o := range seq {
				if o.unite {
					d.Unite(o.x, o.y)
				} else if got := d.SameSet(o.x, o.y); got != refAnswers[i] {
					t.Fatalf("%v/%v: op %d SameSet(%d,%d) = %v, ref %v", l, c, i, o.x, o.y, got, refAnswers[i])
				}
			}
			labels := d.CanonicalLabels()
			for i := range labels {
				if labels[i] != refLabels[i] {
					t.Fatalf("%v/%v: final partition differs at element %d", l, c, i)
				}
			}
		}
	}
}

func TestRandomLinkingRespectsOrder(t *testing.T) {
	// After any sequence of unions, every non-root must have id smaller than
	// its parent's id (Lemma 3.1's sequential shadow).
	d := New(100, LinkRandom, CompactSplitting, 5)
	rng := randutil.NewXoshiro256(6)
	for i := 0; i < 300; i++ {
		d.Unite(uint32(rng.Intn(100)), uint32(rng.Intn(100)))
	}
	for x := uint32(0); x < 100; x++ {
		p := d.Parent(x)
		if p != x && d.ID(x) >= d.ID(p) {
			t.Fatalf("node %d (id %d) has parent %d (id %d): order violated", x, d.ID(x), p, d.ID(p))
		}
	}
}

func TestRankNeverDecreasesAlongPath(t *testing.T) {
	d := New(64, LinkRank, CompactNone, 0)
	rng := randutil.NewXoshiro256(8)
	for i := 0; i < 200; i++ {
		d.Unite(uint32(rng.Intn(64)), uint32(rng.Intn(64)))
	}
	for x := uint32(0); x < 64; x++ {
		p := d.Parent(x)
		if p != x && d.aux[x] >= d.aux[p] {
			t.Fatalf("rank did not increase from %d (r=%d) to parent %d (r=%d)", x, d.aux[x], p, d.aux[p])
		}
	}
}

func TestSizeInvariant(t *testing.T) {
	d := New(64, LinkSize, CompactHalving, 0)
	rng := randutil.NewXoshiro256(8)
	for i := 0; i < 200; i++ {
		d.Unite(uint32(rng.Intn(64)), uint32(rng.Intn(64)))
	}
	// Root sizes must sum to n.
	total := int32(0)
	for x := uint32(0); x < 64; x++ {
		if d.Parent(x) == x {
			total += d.aux[x]
		}
	}
	if total != 64 {
		t.Fatalf("root sizes sum to %d, want 64", total)
	}
}

// deepestNode returns the node of maximum depth in d's current forest and
// that depth (root depth 0).
func deepestNode(d *DSU) (uint32, int) {
	best, bestDepth := uint32(0), -1
	for x := uint32(0); int(x) < d.N(); x++ {
		depth := 0
		for u := x; d.Parent(u) != u; u = d.Parent(u) {
			depth++
		}
		if depth > bestDepth {
			best, bestDepth = x, depth
		}
	}
	return best, bestDepth
}

func TestCompactionShortensPaths(t *testing.T) {
	// Binomial-style unions build trees of logarithmic depth; repeated finds
	// from the deepest node must cost strictly less total work with any
	// compaction rule than with none, because compaction shortens the path
	// for later finds while "none" re-pays full depth every time.
	const n, finds = 4096, 20
	build := func(c Compaction) *DSU {
		d := New(n, LinkRank, c, 0)
		for gap := uint32(1); gap < n; gap *= 2 {
			for i := uint32(0); i+gap < n; i += 2 * gap {
				d.Unite(i, i+gap)
			}
		}
		d.ResetWork()
		return d
	}
	baseline := build(CompactNone)
	deep, depth := deepestNode(baseline)
	if depth < 5 {
		t.Fatalf("binomial build produced depth %d, too shallow to test compaction", depth)
	}
	for i := 0; i < finds; i++ {
		baseline.Find(deep)
	}
	base := baseline.Work().ParentReads
	for _, c := range []Compaction{CompactCompression, CompactSplitting, CompactHalving} {
		d := build(c)
		deep, _ := deepestNode(d)
		for i := 0; i < finds; i++ {
			d.Find(deep)
		}
		if got := d.Work().ParentReads; got >= base {
			t.Errorf("%v: repeated finds read %d parents, no better than none (%d)", c, got, base)
		}
	}
}

func TestWorkCounters(t *testing.T) {
	d := New(4, LinkRank, CompactNone, 0)
	d.Unite(0, 1)
	d.Unite(2, 3)
	d.Unite(0, 2)
	w := d.Work()
	if w.Links != 3 {
		t.Errorf("Links = %d, want 3", w.Links)
	}
	if w.Finds != 6 {
		t.Errorf("Finds = %d, want 6 (two per Unite)", w.Finds)
	}
	if w.ParentReads == 0 || w.ParentWrites != 3 {
		t.Errorf("reads/writes = %d/%d, want reads > 0, writes = 3", w.ParentReads, w.ParentWrites)
	}
	d.ResetWork()
	if d.Work() != (Work{}) {
		t.Error("ResetWork did not zero counters")
	}
}

func TestNewPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"negative n", func() { New(-1, LinkRank, CompactNone, 0) }},
		{"bad linking", func() { New(1, Linking(0), CompactNone, 0) }},
		{"bad compaction", func() { New(1, LinkRank, Compaction(99), 0) }},
		{"id on rank", func() { New(1, LinkRank, CompactNone, 0).ID(0) }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			c.fn()
		}()
	}
}

func TestZeroElements(t *testing.T) {
	d := New(0, LinkRandom, CompactSplitting, 0)
	if d.N() != 0 || d.Sets() != 0 {
		t.Fatal("empty structure misreports size")
	}
}

func TestStringers(t *testing.T) {
	if LinkRandom.String() != "random" || LinkRank.String() != "rank" || LinkSize.String() != "size" {
		t.Error("Linking names wrong")
	}
	if CompactNone.String() != "none" || CompactHalving.String() != "halving" {
		t.Error("Compaction names wrong")
	}
	if Linking(0).String() == "" || Compaction(0).String() == "" {
		t.Error("unknown values should still render")
	}
}

func TestCanonicalizeParents(t *testing.T) {
	// Forest: 1→0, 2→1 (set {0,1,2} rooted at 0); 4→5 (set {4,5}); 3 alone.
	parent := []uint32{0, 0, 1, 3, 5, 5}
	labels := CanonicalizeParents(parent)
	want := []uint32{0, 0, 0, 3, 4, 4}
	for i := range want {
		if labels[i] != want[i] {
			t.Errorf("labels[%d] = %d, want %d", i, labels[i], want[i])
		}
	}
}

// --- Spec oracle ---

func TestSpecMatchesDSU(t *testing.T) {
	check := func(seed uint64) bool {
		rng := randutil.NewXoshiro256(seed)
		const n = 30
		s := NewSpec(n)
		d := New(n, LinkRank, CompactCompression, 0)
		for i := 0; i < 60; i++ {
			x, y := uint32(rng.Intn(n)), uint32(rng.Intn(n))
			if rng.Intn(2) == 0 {
				if s.Unite(x, y) != d.Unite(x, y) {
					return false
				}
			} else if s.SameSet(x, y) != d.SameSet(x, y) {
				return false
			}
		}
		labels := d.CanonicalLabels()
		for i, l := range s.Labels() {
			if labels[i] != l {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSpecCloneIndependent(t *testing.T) {
	s := NewSpec(5)
	s.Unite(0, 1)
	c := s.Clone()
	c.Unite(2, 3)
	if s.SameSet(2, 3) {
		t.Fatal("mutation of clone leaked into original")
	}
	if !c.SameSet(0, 1) {
		t.Fatal("clone lost state")
	}
}

func TestSpecFingerprint(t *testing.T) {
	a, b := NewSpec(8), NewSpec(8)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical partitions, different fingerprints")
	}
	a.Unite(1, 2)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different partitions, same fingerprint")
	}
	b.Unite(2, 1) // same resulting partition
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("order of arguments changed fingerprint")
	}
	if !a.Equal(b) {
		t.Fatal("Equal disagrees with fingerprint")
	}
}

func BenchmarkSequentialUnions(b *testing.B) {
	const n = 1 << 16
	rng := randutil.NewXoshiro256(1)
	xs := make([]uint32, n)
	ys := make([]uint32, n)
	for i := range xs {
		xs[i], ys[i] = uint32(rng.Intn(n)), uint32(rng.Intn(n))
	}
	for _, l := range allLinkings {
		for _, c := range allCompactions {
			b.Run(l.String()+"/"+c.String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					d := New(n, l, c, 1)
					for j := range xs {
						d.Unite(xs[j], ys[j])
					}
				}
			})
		}
	}
}

func TestSameSeedSameForest(t *testing.T) {
	const n = 200
	build := func() *DSU {
		d := New(n, LinkRandom, CompactSplitting, 42)
		rng := randutil.NewXoshiro256(7)
		for i := 0; i < 600; i++ {
			d.Unite(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
		}
		return d
	}
	a, b := build(), build()
	for x := uint32(0); x < n; x++ {
		if a.Parent(x) != b.Parent(x) || a.ID(x) != b.ID(x) {
			t.Fatalf("same seed diverged at element %d", x)
		}
	}
	if a.Work() != b.Work() {
		t.Fatalf("same seed, different work: %+v vs %+v", a.Work(), b.Work())
	}
}
