package seqdsu

import (
	"testing"
	"testing/quick"

	"repro/internal/randutil"
)

func TestSplicingMatchesSpec(t *testing.T) {
	const n, ops = 200, 800
	d := NewSplicing(n, 5)
	s := NewSpec(n)
	rng := randutil.NewXoshiro256(6)
	for i := 0; i < ops; i++ {
		x, y := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		if rng.Intn(2) == 0 {
			if d.Unite(x, y) != s.Unite(x, y) {
				t.Fatalf("op %d: Unite(%d,%d) diverged", i, x, y)
			}
		} else if d.SameSet(x, y) != s.SameSet(x, y) {
			t.Fatalf("op %d: SameSet(%d,%d) diverged", i, x, y)
		}
	}
	labels := CanonicalizeParents(d.parent)
	for i, want := range s.Labels() {
		if labels[i] != want {
			t.Fatalf("final partition differs at %d", i)
		}
	}
	if d.Sets() != countSets(s) {
		t.Fatalf("Sets = %d, want %d", d.Sets(), countSets(s))
	}
}

func countSets(s *Spec) int {
	seen := map[uint32]bool{}
	for _, l := range s.Labels() {
		seen[l] = true
	}
	return len(seen)
}

func TestSplicingQuick(t *testing.T) {
	check := func(seed uint64) bool {
		const n = 40
		d := NewSplicing(n, seed)
		s := NewSpec(n)
		rng := randutil.NewXoshiro256(seed + 1)
		for i := 0; i < 120; i++ {
			x, y := uint32(rng.Intn(n)), uint32(rng.Intn(n))
			if rng.Intn(2) == 0 {
				if d.Unite(x, y) != s.Unite(x, y) {
					return false
				}
			} else if d.SameSet(x, y) != s.SameSet(x, y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSplicingIDOrderInvariant(t *testing.T) {
	const n = 300
	d := NewSplicing(n, 9)
	rng := randutil.NewXoshiro256(10)
	for i := 0; i < 1500; i++ {
		d.Unite(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}
	for x := uint32(0); x < n; x++ {
		p := d.Parent(x)
		if p != x && d.ID(x) >= d.ID(p) {
			t.Fatalf("node %d (id %d) under parent %d (id %d)", x, d.ID(x), p, d.ID(p))
		}
	}
}

func TestSplicingAmortizedWork(t *testing.T) {
	// Goel et al.'s bound is about the unites' own amortized cost: on a
	// redundant-heavy random workload, splicing's work per Unite must beat
	// no-compaction's and stay flat as n grows (the α(n, m/n) signature),
	// because every splice hoists a parent pointer upward.
	perOp := make(map[int]float64)
	for _, n := range []int{1 << 12, 1 << 14} {
		m := 8 * n
		rng := randutil.NewXoshiro256(1)
		splice := NewSplicing(n, 3)
		plain := New(n, LinkRandom, CompactNone, 3)
		for i := 0; i < m; i++ {
			x, y := uint32(rng.Intn(n)), uint32(rng.Intn(n))
			splice.Unite(x, y)
			plain.Unite(x, y)
		}
		sp := float64(splice.Work().Total()) / float64(m)
		pl := float64(plain.Work().Total()) / float64(m)
		if sp*2 > pl {
			t.Fatalf("n=%d: splicing %.2f/op not clearly below plain %.2f/op", n, sp, pl)
		}
		perOp[n] = sp
	}
	// Flatness: quadrupling n must not grow per-op work by more than 25%.
	if perOp[1<<14] > 1.25*perOp[1<<12] {
		t.Fatalf("splicing per-op work grows with n: %v", perOp)
	}
}

func TestSplicingBasics(t *testing.T) {
	d := NewSplicing(4, 1)
	if d.N() != 4 || d.Sets() != 4 {
		t.Fatal("bad initial state")
	}
	if !d.Unite(0, 1) || d.Unite(0, 1) {
		t.Fatal("Unite return values wrong")
	}
	if !d.SameSet(0, 1) || d.SameSet(0, 2) {
		t.Fatal("membership wrong")
	}
	if d.Work().Links != 1 {
		t.Fatalf("Links = %d", d.Work().Links)
	}
}
