package seqdsu

import "repro/internal/randutil"

// Spec is the minimal sequential specification of the set-union object:
// a partition of 0..n−1 supporting SameSet and Unite, with cheap cloning
// and fingerprinting. The linearizability checker executes candidate
// orders against it, so it favours small state and fast copies over
// asymptotic cleverness (the histories it sees are tiny).
//
// Representation: label[x] is the minimum element of x's set, maintained
// eagerly. This makes SameSet O(1), Unite O(n), Clone O(n), and the
// canonical fingerprint a plain hash of the label slice.
type Spec struct {
	label []uint32
}

// NewSpec returns the discrete partition over n elements.
func NewSpec(n int) *Spec {
	s := &Spec{label: make([]uint32, n)}
	for i := range s.label {
		s.label[i] = uint32(i)
	}
	return s
}

// N returns the number of elements.
func (s *Spec) N() int { return len(s.label) }

// SameSet reports whether x and y share a set.
func (s *Spec) SameSet(x, y uint32) bool { return s.label[x] == s.label[y] }

// Unite merges the sets of x and y, reporting whether a merge happened.
func (s *Spec) Unite(x, y uint32) bool {
	lx, ly := s.label[x], s.label[y]
	if lx == ly {
		return false
	}
	if ly < lx {
		lx, ly = ly, lx
	}
	for i, l := range s.label {
		if l == ly {
			s.label[i] = lx
		}
	}
	return true
}

// Clone returns an independent copy.
func (s *Spec) Clone() *Spec {
	label := make([]uint32, len(s.label))
	copy(label, s.label)
	return &Spec{label: label}
}

// Labels returns the canonical min-element labelling (shared backing array;
// callers must not mutate it).
func (s *Spec) Labels() []uint32 { return s.label }

// Fingerprint returns a 64-bit hash identifying the partition, used as a
// memoization key by the linearizability checker.
func (s *Spec) Fingerprint() uint64 {
	h := uint64(1469598103934665603) // FNV offset basis
	for _, l := range s.label {
		h = randutil.Mix64(h ^ uint64(l))
	}
	return h
}

// Equal reports whether two specs represent the same partition.
func (s *Spec) Equal(o *Spec) bool {
	if len(s.label) != len(o.label) {
		return false
	}
	for i := range s.label {
		if s.label[i] != o.label[i] {
			return false
		}
	}
	return true
}
