// Package seqdsu implements the classical sequential compressed-tree
// disjoint-set structures of Section 2 of Jayanti & Tarjan (PODC 2016):
// every combination of a linking rule (by size, by rank, or randomized) with
// a compaction rule (none, compression, splitting, or halving), twelve
// algorithms in all, each with the O(m·α(n, m/n)) bound cited there.
//
// These serve three roles in this repository: the specification oracle that
// concurrent executions are checked against, the single-process baseline for
// speedup measurements, and the substrate for validating the randomized-
// linking analysis of Section 4 (rank distributions, forest height).
//
// The structures count parent-pointer reads and writes so experiments can
// compare sequential work against concurrent work in the same units.
package seqdsu

import (
	"fmt"

	"repro/internal/randutil"
)

// Linking selects the rule deciding which root becomes the child in a link.
type Linking int

const (
	// LinkRandom links the root that is smaller in a uniformly random total
	// order chosen at initialization (Goel et al., SODA 2014) below the
	// larger; it is the rule the paper's concurrent algorithm uses.
	LinkRandom Linking = iota + 1
	// LinkRank links the root of smaller rank below the larger, bumping the
	// rank on ties (Tarjan & van Leeuwen).
	LinkRank
	// LinkSize links the root of the smaller tree below the larger (Tarjan
	// 1975), breaking ties toward the second argument.
	LinkSize
)

// String returns the conventional name of the rule.
func (l Linking) String() string {
	switch l {
	case LinkRandom:
		return "random"
	case LinkRank:
		return "rank"
	case LinkSize:
		return "size"
	default:
		return fmt.Sprintf("Linking(%d)", int(l))
	}
}

// Compaction selects the find-path restructuring rule.
type Compaction int

const (
	// CompactNone leaves find paths untouched.
	CompactNone Compaction = iota + 1
	// CompactCompression points every node on the find path at the root
	// (two passes).
	CompactCompression
	// CompactSplitting points every node on the find path at its
	// grandparent (one pass).
	CompactSplitting
	// CompactHalving points every other node on the find path at its
	// grandparent, starting with the first (one pass).
	CompactHalving
)

// String returns the conventional name of the rule.
func (c Compaction) String() string {
	switch c {
	case CompactNone:
		return "none"
	case CompactCompression:
		return "compression"
	case CompactSplitting:
		return "splitting"
	case CompactHalving:
		return "halving"
	default:
		return fmt.Sprintf("Compaction(%d)", int(c))
	}
}

// Work tallies the parent-pointer traffic of a structure, the unit in which
// the paper states all bounds.
type Work struct {
	ParentReads  int64
	ParentWrites int64
	Finds        int64
	Links        int64
}

// Total returns reads + writes, the total pointer-word work.
func (w Work) Total() int64 { return w.ParentReads + w.ParentWrites }

// DSU is a sequential disjoint-set-union structure over elements 0..n−1.
// It is not safe for concurrent use; that is the whole point of the
// concurrent packages in this repository.
type DSU struct {
	parent []uint32
	// aux is rank for LinkRank, size for LinkSize, unused for LinkRandom.
	aux []int32
	// id is the random total order for LinkRandom: id[x] gives x's position.
	id         []uint32
	linking    Linking
	compaction Compaction
	work       Work
	sets       int
}

// New returns a DSU over n singleton elements with the given rules. The
// seed fixes the random total order used by LinkRandom (and is ignored by
// the deterministic rules). It panics if n < 0 or a rule is unknown.
func New(n int, linking Linking, compaction Compaction, seed uint64) *DSU {
	if n < 0 {
		panic("seqdsu: negative size")
	}
	switch linking {
	case LinkRandom, LinkRank, LinkSize:
	default:
		panic("seqdsu: unknown linking rule")
	}
	switch compaction {
	case CompactNone, CompactCompression, CompactSplitting, CompactHalving:
	default:
		panic("seqdsu: unknown compaction rule")
	}
	d := &DSU{
		parent:     make([]uint32, n),
		linking:    linking,
		compaction: compaction,
		sets:       n,
	}
	for i := range d.parent {
		d.parent[i] = uint32(i)
	}
	switch linking {
	case LinkRandom:
		d.id = randutil.NewXoshiro256(seed).Perm(n)
	case LinkRank:
		d.aux = make([]int32, n)
	case LinkSize:
		d.aux = make([]int32, n)
		for i := range d.aux {
			d.aux[i] = 1
		}
	}
	return d
}

// N returns the number of elements.
func (d *DSU) N() int { return len(d.parent) }

// Sets returns the current number of disjoint sets.
func (d *DSU) Sets() int { return d.sets }

// Work returns the accumulated work counters.
func (d *DSU) Work() Work { return d.work }

// ResetWork zeroes the work counters without touching the partition.
func (d *DSU) ResetWork() { d.work = Work{} }

// ID returns element x's position in the random total order; it panics for
// structures not using LinkRandom.
func (d *DSU) ID(x uint32) uint32 {
	if d.id == nil {
		panic("seqdsu: ID on a non-random-linking structure")
	}
	return d.id[x]
}

// Find returns the root of the tree containing x, applying the configured
// compaction to the find path.
func (d *DSU) Find(x uint32) uint32 {
	d.work.Finds++
	switch d.compaction {
	case CompactNone:
		return d.findPlain(x)
	case CompactCompression:
		return d.findCompress(x)
	case CompactSplitting:
		return d.findSplit(x)
	default:
		return d.findHalve(x)
	}
}

func (d *DSU) findPlain(x uint32) uint32 {
	for {
		p := d.parent[x]
		d.work.ParentReads++
		if p == x {
			return x
		}
		x = p
	}
}

func (d *DSU) findCompress(x uint32) uint32 {
	root := d.findPlain(x)
	for x != root {
		p := d.parent[x]
		d.work.ParentReads++
		if p != root {
			d.parent[x] = root
			d.work.ParentWrites++
		}
		x = p
	}
	return root
}

func (d *DSU) findSplit(x uint32) uint32 {
	for {
		p := d.parent[x]
		g := d.parent[p]
		d.work.ParentReads += 2
		if p == g {
			return p
		}
		d.parent[x] = g
		d.work.ParentWrites++
		x = p
	}
}

func (d *DSU) findHalve(x uint32) uint32 {
	for {
		p := d.parent[x]
		g := d.parent[p]
		d.work.ParentReads += 2
		if p == g {
			return p
		}
		d.parent[x] = g
		d.work.ParentWrites++
		x = g
	}
}

// SameSet reports whether x and y are in the same set.
func (d *DSU) SameSet(x, y uint32) bool {
	return d.Find(x) == d.Find(y)
}

// Unite merges the sets containing x and y; it reports whether a link was
// performed (false when they were already together).
func (d *DSU) Unite(x, y uint32) bool {
	rx, ry := d.Find(x), d.Find(y)
	if rx == ry {
		return false
	}
	d.link(rx, ry)
	d.work.Links++
	d.sets--
	return true
}

// link makes one of the two distinct roots the parent of the other per the
// configured rule.
func (d *DSU) link(rx, ry uint32) {
	switch d.linking {
	case LinkRandom:
		// Smaller in the random order links below larger (Section 2).
		if d.id[rx] < d.id[ry] {
			rx, ry = ry, rx
		}
		d.parent[ry] = rx
		d.work.ParentWrites++
	case LinkRank:
		switch {
		case d.aux[rx] < d.aux[ry]:
			d.parent[rx] = ry
		case d.aux[rx] > d.aux[ry]:
			d.parent[ry] = rx
		default:
			d.parent[ry] = rx
			d.aux[rx]++
		}
		d.work.ParentWrites++
	case LinkSize:
		if d.aux[rx] < d.aux[ry] {
			rx, ry = ry, rx
		}
		d.parent[ry] = rx
		d.aux[rx] += d.aux[ry]
		d.work.ParentWrites++
	}
}

// Parent exposes the current parent pointer of x, for forest analysis.
func (d *DSU) Parent(x uint32) uint32 { return d.parent[x] }

// CanonicalLabels returns, for each element, the minimum element of its set.
// Two structures represent the same partition exactly when their canonical
// label slices are equal; the concurrent tests rely on this.
func (d *DSU) CanonicalLabels() []uint32 {
	return CanonicalizeParents(d.parent)
}

// CanonicalizeParents computes min-element labels from any parent-pointer
// forest (each root points to itself). It does not mutate parents.
func CanonicalizeParents(parent []uint32) []uint32 {
	n := len(parent)
	root := make([]uint32, n)
	for i := range root {
		x := uint32(i)
		for parent[x] != x {
			x = parent[x]
		}
		root[i] = x
	}
	minOf := make([]uint32, n)
	for i := range minOf {
		minOf[i] = ^uint32(0)
	}
	for i := 0; i < n; i++ {
		r := root[i]
		if uint32(i) < minOf[r] {
			minOf[r] = uint32(i)
		}
	}
	labels := make([]uint32, n)
	for i := 0; i < n; i++ {
		labels[i] = minOf[root[i]]
	}
	return labels
}
