package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if !almostEqual(s.Mean, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	// Sample stddev with n−1 = 7: Σ(x−5)² = 9+1+1+1+0+0+4+16 = 32; √(32/7).
	if want := math.Sqrt(32.0 / 7.0); !almostEqual(s.StdDev, want, 1e-12) {
		t.Errorf("StdDev = %v, want %v", s.StdDev, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if !almostEqual(s.Median, 4.5, 1e-12) {
		t.Errorf("Median = %v, want 4.5", s.Median)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.Mean != 3.5 || s.StdDev != 0 || s.Median != 3.5 || s.Min != 3.5 || s.Max != 3.5 {
		t.Errorf("unexpected summary %+v", s)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Summarize(nil)
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileBoundsPanic(t *testing.T) {
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(q=%v) did not panic", q)
				}
			}()
			Quantile([]float64{1, 2}, q)
		}()
	}
}

func TestMeanMatchesSummarize(t *testing.T) {
	check := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		return almostEqual(Mean(xs), Summarize(xs).Mean, 1e-9)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinearFitExact(t *testing.T) {
	// y = 3 + 2x fits exactly: R² = 1, coefficients recovered.
	x := []float64{0, 1, 2, 3, 4, 5}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 3 + 2*x[i]
	}
	f := LinearFit(x, y)
	if !almostEqual(f.Intercept, 3, 1e-9) || !almostEqual(f.Slope, 2, 1e-9) || !almostEqual(f.R2, 1, 1e-9) {
		t.Errorf("fit = %+v", f)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	// Symmetric noise around y = 1 + x leaves the coefficients unchanged.
	x := []float64{0, 0, 1, 1, 2, 2}
	y := []float64{0.5, 1.5, 1.5, 2.5, 2.5, 3.5}
	f := LinearFit(x, y)
	if !almostEqual(f.Slope, 1, 1e-9) || !almostEqual(f.Intercept, 1, 1e-9) {
		t.Errorf("fit = %+v", f)
	}
	if f.R2 >= 1 || f.R2 <= 0 {
		t.Errorf("R² = %v should be strictly inside (0,1) for noisy data", f.R2)
	}
}

func TestLinearFitPanics(t *testing.T) {
	cases := []struct {
		name string
		x, y []float64
	}{
		{"mismatch", []float64{1, 2}, []float64{1}},
		{"short", []float64{1}, []float64{1}},
		{"constant-x", []float64{2, 2, 2}, []float64{1, 2, 3}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			LinearFit(c.x, c.y)
		}()
	}
}

func TestLogFitRecoversLogModel(t *testing.T) {
	// y = 2 + 3·lg(x).
	x := []float64{1, 2, 4, 8, 16, 32}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 2 + 3*math.Log2(x[i])
	}
	f := LogFit(x, y)
	if !almostEqual(f.Slope, 3, 1e-9) || !almostEqual(f.Intercept, 2, 1e-9) {
		t.Errorf("fit = %+v", f)
	}
}

func TestLogFitRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	LogFit([]float64{0, 1}, []float64{1, 2})
}

func TestHistogram(t *testing.T) {
	h := Histogram([]int{0, 0, 1, 3, 9, 100}, 5)
	want := []int{2, 1, 0, 1, 2} // 9 and 100 overflow into the last bucket
	for i := range want {
		if h[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, h[i], want[i])
		}
	}
}

func TestHistogramPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic for zero buckets")
			}
		}()
		Histogram([]int{1}, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic for negative value")
			}
		}()
		Histogram([]int{-1}, 3)
	}()
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("n", "height", "c")
	tb.AddRowf(1024, 14, 1.4)
	tb.AddRowf(2048, 15.5, 1.409)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "height") {
		t.Errorf("header missing: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "|--") {
		t.Errorf("separator missing: %q", lines[1])
	}
	if !strings.Contains(lines[2], "1024") || !strings.Contains(lines[2], "1.400") {
		t.Errorf("row rendering wrong: %q", lines[2])
	}
	// Markdown alignment: every line has the same number of pipes.
	pipes := strings.Count(lines[0], "|")
	for _, l := range lines[1:] {
		if strings.Count(l, "|") != pipes {
			t.Errorf("ragged table line: %q", l)
		}
	}
}

func TestTableShortRow(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("only")
	if out := tb.String(); !strings.Contains(out, "only") {
		t.Errorf("short row lost: %s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{5, "5"}, {-3, "-3"}, {0.5, "0.500"}, {1234.56, "1234.6"}, {1e6, "1000000"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.v); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}
