// Package stats provides the small statistical toolkit used by the
// experiment harness: summary statistics, simple least-squares fits (for
// height ≈ c·lg n style checks), histograms, and fixed-width table
// rendering for experiment output.
//
// Nothing here is approximate in a hidden way: every function computes the
// textbook formula so experiment tables are auditable by hand.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n−1 denominator)
	Min    float64
	Max    float64
	Median float64
	P95    float64
}

// Summarize computes a Summary of xs. It panics on an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize of empty sample")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.P95 = Quantile(sorted, 0.95)
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an already-sorted sample
// using linear interpolation between closest ranks. It panics on an empty
// sample or q outside [0, 1].
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic("stats: Quantile with q outside [0,1]")
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs; it panics on an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Mean of empty sample")
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Fit holds the result of a simple least-squares line fit y ≈ a + b·x.
type Fit struct {
	Intercept float64 // a
	Slope     float64 // b
	R2        float64 // coefficient of determination
}

// LinearFit fits y ≈ a + b·x by ordinary least squares. It panics if the
// slices differ in length or have fewer than two points, or if all x are
// identical (the slope is undefined).
func LinearFit(x, y []float64) Fit {
	if len(x) != len(y) {
		panic("stats: LinearFit length mismatch")
	}
	if len(x) < 2 {
		panic("stats: LinearFit needs at least two points")
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		panic("stats: LinearFit with constant x")
	}
	b := sxy / sxx
	a := my - b*mx
	r2 := 1.0
	if syy > 0 {
		ssRes := 0.0
		for i := range x {
			r := y[i] - (a + b*x[i])
			ssRes += r * r
		}
		r2 = 1 - ssRes/syy
	}
	return Fit{Intercept: a, Slope: b, R2: r2}
}

// LogFit fits y ≈ a + b·lg(x), the model for "height grows logarithmically"
// claims. It panics under the same conditions as LinearFit or if any x ≤ 0.
func LogFit(x, y []float64) Fit {
	lx := make([]float64, len(x))
	for i, v := range x {
		if v <= 0 {
			panic("stats: LogFit with non-positive x")
		}
		lx[i] = math.Log2(v)
	}
	return LinearFit(lx, y)
}

// Histogram counts values into width-1 integer buckets starting at 0; values
// at or above len(buckets)−1 land in the final overflow bucket.
func Histogram(values []int, buckets int) []int {
	if buckets <= 0 {
		panic("stats: Histogram with no buckets")
	}
	h := make([]int, buckets)
	for _, v := range values {
		switch {
		case v < 0:
			panic("stats: Histogram of negative value")
		case v >= buckets-1:
			h[buckets-1]++
		default:
			h[v]++
		}
	}
	return h
}

// Table accumulates rows and renders a fixed-width text table; the
// experiment harness uses it for every printed result so EXPERIMENTS.md and
// CLI output share formatting.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells beyond the header width are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowf appends a row by applying fmt.Sprint to each value, with floats
// rendered compactly.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, FormatFloat(v))
		case float32:
			row = append(row, FormatFloat(float64(v)))
		default:
			row = append(row, fmt.Sprint(c))
		}
	}
	t.AddRow(row...)
}

// String renders the table in GitHub-flavoured Markdown, column-aligned.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var out []byte
	writeRow := func(cells []string) {
		out = append(out, '|')
		for i, c := range cells {
			out = append(out, ' ')
			out = append(out, c...)
			for p := len(c); p < widths[i]; p++ {
				out = append(out, ' ')
			}
			out = append(out, ' ', '|')
		}
		out = append(out, '\n')
	}
	writeRow(t.header)
	out = append(out, '|')
	for _, w := range widths {
		for p := 0; p < w+2; p++ {
			out = append(out, '-')
		}
		out = append(out, '|')
	}
	out = append(out, '\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return string(out)
}

// FormatFloat renders a float compactly: integers without decimals, small
// magnitudes with three significant decimals.
func FormatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	if math.Abs(v) >= 1000 {
		return fmt.Sprintf("%.1f", v)
	}
	return fmt.Sprintf("%.3f", v)
}
