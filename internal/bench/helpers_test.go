package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/aw"
	"repro/internal/core"
	"repro/internal/workload"
)

func TestRunCoreCountsMatchWorkload(t *testing.T) {
	const n, m, p = 64, 200, 4
	ops := workload.Mixed(n, m, 0.5, 1)
	d := core.New(n, core.Config{Seed: 1})
	total, elapsed := runCore(d, workload.SplitRoundRobin(ops, p), true)
	if total.Ops != int64(m) {
		t.Fatalf("Ops = %d, want %d", total.Ops, m)
	}
	if total.Reads == 0 {
		t.Fatal("no reads counted")
	}
	if elapsed <= 0 {
		t.Fatal("non-positive elapsed time")
	}
	// Uncounted mode returns zero stats but still runs everything.
	d2 := core.New(n, core.Config{Seed: 1})
	total2, _ := runCore(d2, workload.SplitRoundRobin(ops, p), false)
	if total2 != (core.Stats{}) {
		t.Fatalf("uncounted run produced stats %+v", total2)
	}
	if got, want := d2.Sets(), d.Sets(); got != want {
		t.Fatalf("uncounted run produced different partition: %d vs %d sets", got, want)
	}
}

func TestRunAWCountedMatches(t *testing.T) {
	const n, m = 64, 200
	ops := workload.Mixed(n, m, 0.5, 2)
	d := aw.New(n)
	total := runAWCounted(d, workload.SplitRoundRobin(ops, 4))
	if total.Ops != int64(m) || total.Reads == 0 {
		t.Fatalf("implausible AW stats %+v", total)
	}
}

func TestRunContenderDrivesAllOps(t *testing.T) {
	const n = 32
	ops := workload.RandomUnions(n, n-1, 3)
	// Chain-free workload may not connect everything; use explicit chain.
	ops = workload.Chain(n)
	d := aw.NewLocked(n)
	if elapsed := runContender(d, workload.SplitRoundRobin(ops, 3)); elapsed <= 0 {
		t.Fatal("non-positive elapsed")
	}
	if d.Sets() != 1 {
		t.Fatalf("contender run left %d sets", d.Sets())
	}
}

func TestMops(t *testing.T) {
	if got := mops(2_000_000, time.Second); got != 2 {
		t.Fatalf("mops = %v, want 2", got)
	}
	if got := mops(100, 0); got != 0 {
		t.Fatalf("mops with zero duration = %v, want 0", got)
	}
}

func TestHeaderFormat(t *testing.T) {
	var b testWriter
	header(Config{Out: &b}, "E0", "Title Here", "Theorem 0")
	s := string(b)
	for _, want := range []string{"E0", "Title Here", "Theorem 0"} {
		if !strings.Contains(s, want) {
			t.Errorf("header output %q missing %q", s, want)
		}
	}
}

type testWriter []byte

func (w *testWriter) Write(p []byte) (int, error) {
	*w = append(*w, p...)
	return len(p), nil
}
