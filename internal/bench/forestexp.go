package bench

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/forest"
	"repro/internal/seqdsu"
	"repro/internal/stats"
	"repro/internal/workload"
)

// unionForestParents runs m random unions over n elements concurrently with
// naive finds (so the live forest IS the union forest) and returns the
// parent snapshot and id array.
func unionForestParents(n, m, p int, seed uint64) (parents, ids []uint32) {
	d := core.New(n, core.Config{Find: core.FindNaive, Seed: seed})
	ops := workload.RandomUnions(n, m, seed*31+5)
	runCore(d, workload.SplitRoundRobin(ops, p), false)
	parents = d.Snapshot()
	ids = make([]uint32, n)
	for x := uint32(0); int(x) < n; x++ {
		ids[x] = d.ID(x)
	}
	return parents, ids
}

// runE2 validates Corollary 4.2.1: union-forest height is O(log n) w.h.p.
func runE2(cfg Config) error {
	header(cfg, "E2", "Union-forest height is O(log n) w.h.p.", "Corollary 4.2.1")
	sizes := []int{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18}
	trials := 8
	if cfg.Quick {
		sizes = []int{1 << 10, 1 << 12, 1 << 14}
		trials = 4
	}
	tb := stats.NewTable("n", "trials", "mean height", "max height", "mean/lg n", "max/lg n")
	var xs, ys []float64
	for _, n := range sizes {
		heights := make([]float64, 0, trials)
		for t := 0; t < trials; t++ {
			parents, _ := unionForestParents(n, 4*n, 8, uint64(t)+cfg.Seed+1)
			heights = append(heights, float64(forest.Height(parents)))
		}
		s := stats.Summarize(heights)
		lg := math.Log2(float64(n))
		tb.AddRowf(n, trials, s.Mean, s.Max, s.Mean/lg, s.Max/lg)
		xs = append(xs, float64(n))
		ys = append(ys, s.Mean)
	}
	fmt.Fprint(cfg.Out, tb)
	fit := stats.LogFit(xs, ys)
	fmt.Fprintf(cfg.Out, "\nheight ≈ %.2f + %.2f·lg n (R²=%.3f); the corollary predicts c·lg n with modest c.\n",
		fit.Intercept, fit.Slope, fit.R2)
	return nil
}

// runE3 validates Lemma 4.1 and Corollary 4.1.1 on live union forests.
func runE3(cfg Config) error {
	header(cfg, "E3", "Rank dominance along ancestor chains", "Lemma 4.1 / Corollary 4.1.1")
	sizes := []int{1 << 12, 1 << 14, 1 << 16}
	if cfg.Quick {
		sizes = []int{1 << 10, 1 << 12}
	}
	tb := stats.NewTable("n", "ancestor pairs", "Pr[ancestor outranks]", "mean same-rank ancestors", "max rank", "lg n")
	for _, n := range sizes {
		parents, ids := unionForestParents(n, 4*n, 8, cfg.Seed+3)
		rpt := forest.AnalyzeRanks(parents, ids)
		tb.AddRowf(n, rpt.Pairs, rpt.GoodAncestorFraction, rpt.MeanSameRankAncestors, rpt.MaxRank, int(math.Log2(float64(n))))
	}
	fmt.Fprint(cfg.Out, tb)
	fmt.Fprintf(cfg.Out, "\nLemma 4.1 bounds the dominance probability below by 1/2; Corollary 4.1.1 bounds mean same-rank ancestors by 2.\n")
	return nil
}

// runE6 validates Lemma 5.3: the binomial-style Unite schedule forces
// average node depth at least (lg k)/4 even under splitting finds.
func runE6(cfg Config) error {
	header(cfg, "E6", "Binomial construction forces average depth Ω(log k)", "Lemma 5.3")
	ks := []int{1 << 4, 1 << 6, 1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 16}
	if cfg.Quick {
		ks = ks[:5]
	}
	tb := stats.NewTable("k", "avg depth", "(lg k)/4", "avg/lg k", "height")
	for _, k := range ks {
		d := seqdsu.New(k, seqdsu.LinkRandom, seqdsu.CompactSplitting, cfg.Seed+9)
		for _, op := range workload.BinomialPairing(0, k) {
			d.Unite(op.X, op.Y)
		}
		parents := make([]uint32, k)
		for x := uint32(0); int(x) < k; x++ {
			parents[x] = d.Parent(x)
		}
		avg := forest.AvgDepth(parents)
		lg := math.Log2(float64(k))
		tb.AddRowf(k, avg, lg/4, avg/lg, forest.Height(parents))
	}
	fmt.Fprint(cfg.Out, tb)
	fmt.Fprintf(cfg.Out, "\nLemma 5.3 proves avg depth ≥ (lg k)/4: the 'avg depth' column must dominate the '(lg k)/4' column.\n")
	return nil
}
