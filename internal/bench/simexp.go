package bench

import (
	"fmt"
	"math"

	"repro/internal/apram"
	"repro/internal/core"
	"repro/internal/linearize"
	"repro/internal/randutil"
	"repro/internal/sched"
	"repro/internal/simdsu"
	"repro/internal/stats"
	"repro/internal/workload"
)

// runE7 validates Theorem 5.4's lower-bound workload on the simulator with
// the lockstep scheduler the proof assumes: with n/δ prebuilt trees of
// average depth Ω(log δ), p processes repeating SameSet(xᵢ, xᵢ) in lockstep
// pay Ω(log δ) steps per operation.
func runE7(cfg Config) error {
	header(cfg, "E7", "Lower-bound workload forces Ω(m log(np/m)) work", "Theorem 5.4")
	n := 1 << 10
	if cfg.Quick {
		n = 1 << 8
	}
	tb := stats.NewTable("delta", "p", "ops", "steps/op", "lg delta", "steps/(op·lg delta)")
	for _, delta := range []int{4, 16, 64} {
		for _, p := range []int{2, 4} {
			w := workload.LowerBound(n, p, delta, cfg.Seed+17)
			// No compaction: queries must re-pay the depth every time, the
			// cleanest realization of the lower-bound scenario.
			s := simdsu.New(n, core.Config{Find: core.FindNaive, Seed: cfg.Seed + 2})
			res, err := simdsu.Run(s, w.PerProc, simdsu.Options{
				Scheduler: sched.NewLockstep(),
				Setup:     w.Setup,
			})
			if err != nil {
				return err
			}
			ops := w.Ops()
			perOp := float64(res.Total) / float64(ops)
			lg := math.Log2(float64(delta))
			tb.AddRowf(delta, p, ops, perOp, lg, perOp/lg)
		}
	}
	fmt.Fprint(cfg.Out, tb)
	fmt.Fprintf(cfg.Out, "\nsteps/op must grow with lg δ (δ = np/3m in the paper's notation): the last column stays in a constant band while steps/op rises.\n")
	return nil
}

// runE8 re-runs the Section 3 construction at several sizes: two processes
// doing halving in lockstep on a path leave the identical forest to one
// process doing splitting, with the same number of pointer updates.
func runE8(cfg Config) error {
	header(cfg, "E8", "Lockstep halving simulates splitting", "Section 3 construction")
	ks := []int{8, 32, 128, 512, 2048}
	if cfg.Quick {
		ks = ks[:4]
	}
	tb := stats.NewTable("path length k", "forests equal", "splitting CAS", "halving CAS (2 procs)")
	for _, k := range ks {
		order := make([]uint32, k)
		for i := range order {
			order[i] = uint32(i)
		}
		initPath := func(mem []uint64) {
			for i := 0; i < k-1; i++ {
				mem[i] = uint64(i + 1)
			}
			mem[k-1] = uint64(k - 1)
		}
		countCAS := func(m *apram.Machine) *int64 {
			var count int64
			m.SetObserver(func(st apram.Step) {
				if st.Kind == apram.OpCAS && st.OK && st.Before != st.After {
					count++
				}
			})
			return &count
		}

		split := simdsu.NewWithOrder(core.Config{Find: core.FindOneTry}, order)
		m1 := apram.NewMachine(k, sched.NewRoundRobin(), int64(100*k))
		initPath(m1.Mem())
		c1 := countCAS(m1)
		m1.AddProgram(func(p *apram.P) { split.Find(p, 0) })
		m1.Run()

		halve := simdsu.NewWithOrder(core.Config{Find: core.FindHalving}, order)
		m2 := apram.NewMachine(k, sched.NewLockstep(), int64(100*k))
		initPath(m2.Mem())
		c2 := countCAS(m2)
		m2.AddProgram(func(p *apram.P) { halve.Find(p, 0) })
		m2.AddProgram(func(p *apram.P) { halve.Find(p, 1) })
		m2.Run()

		equal := true
		for i := 0; i < k; i++ {
			if m1.Mem()[i] != m2.Mem()[i] {
				equal = false
				break
			}
		}
		tb.AddRowf(k, equal, *c1, *c2)
		if !equal {
			fmt.Fprint(cfg.Out, tb)
			return fmt.Errorf("bench: E8 forests differ at k=%d", k)
		}
	}
	fmt.Fprint(cfg.Out, tb)
	fmt.Fprintf(cfg.Out, "\nSection 3: two halvers in lockstep perform exactly the splitting forest, so halving cannot beat splitting concurrently.\n")
	return nil
}

// runE13 is the linearizability sweep: random small histories across every
// variant and scheduler seed, checked exhaustively (Lemma 3.2).
func runE13(cfg Config) error {
	header(cfg, "E13", "Linearizability under random schedules", "Lemma 3.2 / Theorem 3.4")
	seeds := 200
	if cfg.Quick {
		seeds = 40
	}
	const n, procs, opsEach = 8, 3, 4
	variants := []core.Config{
		{Find: core.FindNaive}, {Find: core.FindOneTry}, {Find: core.FindTwoTry},
		{Find: core.FindHalving}, {Find: core.FindCompress},
		{Find: core.FindNaive, EarlyTermination: true},
		{Find: core.FindOneTry, EarlyTermination: true},
		{Find: core.FindTwoTry, EarlyTermination: true},
	}
	tb := stats.NewTable("variant", "histories", "ops/history", "violations")
	for _, vc := range variants {
		vc.Seed = cfg.Seed + 5
		violations := 0
		for seed := uint64(0); seed < uint64(seeds); seed++ {
			rng := randutil.NewXoshiro256(seed*77 + cfg.Seed)
			perProc := make([][]workload.Op, procs)
			for i := range perProc {
				perProc[i] = workload.Mixed(n, opsEach, 0.6, rng.Next())
			}
			res, err := simdsu.Run(simdsu.New(n, vc), perProc, simdsu.Options{
				Scheduler:       sched.NewRandom(seed),
				Record:          true,
				CheckInvariants: true,
			})
			if err != nil {
				return fmt.Errorf("bench: E13 invariant failure: %w", err)
			}
			if _, err := linearize.Check(n, res.History); err != nil {
				violations++
			}
		}
		name := vc.Find.String()
		if vc.EarlyTermination {
			name += "+early"
		}
		tb.AddRowf(name, seeds, procs*opsEach, violations)
		if violations > 0 {
			fmt.Fprint(cfg.Out, tb)
			return fmt.Errorf("bench: E13 found %d linearizability violations in %s", violations, name)
		}
	}
	fmt.Fprint(cfg.Out, tb)
	fmt.Fprintf(cfg.Out, "\nEvery history of every variant linearizes (Theorem 3.4).\n")
	return nil
}

// runE14 checks the Lemma 3.1 invariants on every shared-memory step of
// larger runs under fair, adversarial, and skewed schedulers.
func runE14(cfg Config) error {
	header(cfg, "E14", "Per-step structural invariants under adversarial schedules", "Lemma 3.1")
	n := 256
	m := 2048
	if cfg.Quick {
		n, m = 128, 512
	}
	const p = 8
	scheds := map[string]func() apram.Scheduler{
		"roundrobin": func() apram.Scheduler { return sched.NewRoundRobin() },
		"random":     func() apram.Scheduler { return sched.NewRandom(cfg.Seed + 1) },
		"lockstep":   func() apram.Scheduler { return sched.NewLockstep() },
		"stall(0,1)": func() apram.Scheduler { return sched.NewStall(sched.NewRandom(cfg.Seed+2), 0, 1) },
		"weighted":   func() apram.Scheduler { return sched.NewWeighted(cfg.Seed+3, []float64{100, 10, 1, 0.1}) },
	}
	tb := stats.NewTable("scheduler", "variant", "steps", "violations")
	for _, find := range []core.Find{core.FindOneTry, core.FindTwoTry, core.FindHalving} {
		for name, mk := range scheds {
			ops := workload.Mixed(n, m, 0.6, cfg.Seed+8)
			res, err := simdsu.Run(simdsu.New(n, core.Config{Find: find, Seed: cfg.Seed + 4}),
				workload.SplitRoundRobin(ops, p),
				simdsu.Options{Scheduler: mk(), CheckInvariants: true})
			if err != nil {
				fmt.Fprint(cfg.Out, tb)
				return fmt.Errorf("bench: E14 %s/%s: %w", name, find, err)
			}
			tb.AddRowf(name, find.String(), res.Total, 0)
		}
	}
	fmt.Fprint(cfg.Out, tb)
	fmt.Fprintf(cfg.Out, "\nZero violations: every link respects the id order and every compaction moves a parent to a proper union-forest ancestor.\n")
	return nil
}
