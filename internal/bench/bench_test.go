package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestAllExperimentsRegistered(t *testing.T) {
	all := All()
	if len(all) != 25 {
		t.Fatalf("registered %d experiments, want 25 (E1–E25)", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Ref == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestByID(t *testing.T) {
	if e, ok := ByID("E9"); !ok || e.ID != "E9" {
		t.Fatal("ByID(E9) failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("ByID(E99) should not exist")
	}
	if e, ok := ByID("batch"); !ok || e.ID != "E18" {
		t.Fatal("ByID(batch) should alias E18")
	}
	if e, ok := ByID("shard"); !ok || e.ID != "E19" {
		t.Fatal("ByID(shard) should alias E19")
	}
	if e, ok := ByID("stream"); !ok || e.ID != "E20" {
		t.Fatal("ByID(stream) should alias E20")
	}
	if e, ok := ByID("adapt"); !ok || e.ID != "E21" {
		t.Fatal("ByID(adapt) should alias E21")
	}
	if e, ok := ByID("wire"); !ok || e.ID != "E22" {
		t.Fatal("ByID(wire) should alias E22")
	}
	if e, ok := ByID("lockfree"); !ok || e.ID != "E23" {
		t.Fatal("ByID(lockfree) should alias E23")
	}
	if e, ok := ByID("wal"); !ok || e.ID != "E25" {
		t.Fatal("ByID(wal) should alias E25")
	}
	for _, id := range []string{"e19", "E19", "SHARD"} {
		if e, ok := ByID(id); !ok || e.ID != "E19" {
			t.Fatalf("ByID(%q) should resolve case-insensitively to E19", id)
		}
	}
}

func TestProcSweep(t *testing.T) {
	cfg := Config{MaxProcs: 6}
	got := cfg.procSweep()
	want := []int{1, 2, 4, 6}
	if len(got) != len(want) {
		t.Fatalf("sweep = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sweep = %v, want %v", got, want)
		}
	}
	cfg = Config{MaxProcs: 8}
	got = cfg.procSweep()
	want = []int{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("sweep(8) = %v, want %v", got, want)
	}
}

// TestQuickRunAllExperiments executes every experiment in quick mode: the
// harness must complete without error and print a table. This doubles as an
// end-to-end smoke test of the whole repository.
func TestQuickRunAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep skipped in -short")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			cfg := Config{Out: &buf, Quick: true, MaxProcs: 4}
			if err := e.Run(cfg); err != nil {
				t.Fatalf("%s: %v\noutput so far:\n%s", e.ID, err, buf.String())
			}
			out := buf.String()
			if !strings.Contains(out, e.ID) {
				t.Errorf("%s: output missing banner:\n%s", e.ID, out)
			}
			if !strings.Contains(out, "|") {
				t.Errorf("%s: output contains no table:\n%s", e.ID, out)
			}
		})
	}
}

func TestBoundFormulas(t *testing.T) {
	// d = m/np: for m=4n, p=1 → d=4: α small; log₂(np/m + 1) = log₂(1.25).
	b := boundTwoTry(1<<16, 4<<16, 1)
	if b < 1 || b > 10 {
		t.Fatalf("boundTwoTry out of sane range: %v", b)
	}
	// Larger p grows the log term: bound must be monotone in p.
	prev := 0.0
	for _, p := range []int{1, 2, 4, 8, 16} {
		bp := boundTwoTry(1<<16, 1<<16, p)
		if bp < prev {
			t.Fatalf("boundTwoTry not monotone in p at %d", p)
		}
		prev = bp
	}
	// One-try bound dominates two-try (p² ≥ p in the log).
	if boundOneTry(1<<16, 1<<16, 8) < boundTwoTry(1<<16, 1<<16, 8) {
		t.Fatal("one-try bound should dominate two-try bound")
	}
}
