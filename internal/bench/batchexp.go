package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/stats"
	"repro/internal/workload"
)

// bestUniteAll runs the batch three times on fresh structures and keeps the
// fastest run (short runs at small worker counts are dominated by allocator
// and scheduler noise).
func bestUniteAll(n int, seed uint64, edges []engine.Edge, cfg engine.Config) engine.Result {
	var best engine.Result
	best.Elapsed = 1<<62 - 1
	for rep := 0; rep < 3; rep++ {
		d := core.New(n, core.Config{Seed: seed})
		if res := engine.UniteAll(d, edges, cfg); res.Elapsed < best.Elapsed {
			best = res
		}
	}
	return best
}

// runE18 measures the batch engine: UniteAll/SameSetAll throughput and
// speedup across worker counts 1–16 on a ≥1M-edge uniform batch and a
// Zipf-skewed batch (where work-stealing has to rebalance), plus the
// engine's overhead against a plain sequential loop of point operations.
// This is the repo's batching interface measured the way Alistarh et al.
// (2019) judge concurrent union-find: operations per second as the worker
// count sweeps.
func runE18(cfg Config) error {
	header(cfg, "E18", "Batch engine throughput and speedup", "systems extension; Fedorov et al. 2023, Alistarh et al. 2019")
	n := 1 << 20
	if cfg.Quick {
		n = 1 << 16
	}
	m := 4 * n // ≥4M edges at full size
	uniform := engine.FromOps(workload.RandomUnions(n, m, cfg.Seed+61))
	skewed := engine.FromOps(onlyUnites(workload.ZipfMixed(n, m, 1.0, 1.01, cfg.Seed+67)))
	queries := engine.FromOps(workload.RandomUnions(n, m, cfg.Seed+71))

	// Engine overhead: a plain sequential loop against the 1-worker pool.
	d := core.New(n, core.Config{Seed: cfg.Seed + 1})
	loopStart := time.Now()
	for _, e := range uniform {
		d.Unite(e.X, e.Y)
	}
	loopElapsed := time.Since(loopStart)
	pool1 := bestUniteAll(n, cfg.Seed+1, uniform, engine.Config{Workers: 1, Seed: cfg.Seed})
	fmt.Fprintf(cfg.Out, "Engine overhead on %d edges: sequential loop %.2f Mop/s, 1-worker pool %.2f Mop/s (ratio %.2f).\n\n",
		m, mops(m, loopElapsed), mops(m, pool1.Elapsed), mops(m, pool1.Elapsed)/mops(m, loopElapsed))

	tb := stats.NewTable("workers",
		"uniform Mop/s", "×", "steals",
		"zipf Mop/s", "×",
		"SameSetAll Mop/s", "×",
		"work/edge")
	var baseUniform, baseSkew, baseQuery float64
	for _, w := range batchWorkerSweep() {
		ecfg := engine.Config{Workers: w, Seed: cfg.Seed}

		uni := bestUniteAll(n, cfg.Seed+1, uniform, ecfg)
		zip := bestUniteAll(n, cfg.Seed+2, skewed, ecfg)

		// SameSetAll sweeps a prebuilt partition, so queries dominate.
		qd := core.New(n, core.Config{Seed: cfg.Seed + 3})
		engine.UniteAll(qd, uniform, engine.Config{Seed: cfg.Seed})
		var qres engine.Result
		qres.Elapsed = 1<<62 - 1
		for rep := 0; rep < 3; rep++ {
			if _, res := engine.SameSetAll(qd, queries, ecfg); res.Elapsed < qres.Elapsed {
				qres = res
			}
		}

		uth, zth, qth := mops(m, uni.Elapsed), mops(m, zip.Elapsed), mops(m, qres.Elapsed)
		if w == 1 {
			baseUniform, baseSkew, baseQuery = uth, zth, qth
		}
		tb.AddRowf(w,
			uth, ratio(uth, baseUniform), uni.Steals,
			zth, ratio(zth, baseSkew),
			qth, ratio(qth, baseQuery),
			float64(uni.Stats().Work())/float64(m))
	}
	fmt.Fprint(cfg.Out, tb)
	fmt.Fprintf(cfg.Out, "\nShape check: on a machine with k cores, Mop/s grows with workers up to ≈k\n")
	fmt.Fprintf(cfg.Out, "(near-linear for SameSetAll, sublinear for UniteAll whose links contend), then\n")
	fmt.Fprintf(cfg.Out, "flattens — oversubscribed workers beyond k add steals, not throughput. On a\n")
	fmt.Fprintf(cfg.Out, "single-core host every row collapses to the 1-worker rate. Work/edge must stay\n")
	fmt.Fprintf(cfg.Out, "flat across the sweep: stealing moves edges between workers without redoing them.\n")
	return nil
}

// batchWorkerSweep is the 1–16 worker sweep of the batching experiment. It
// deliberately ignores GOMAXPROCS: workers are goroutines, and the
// oversubscribed tail of the sweep is part of the measurement.
func batchWorkerSweep() []int {
	return []int{1, 2, 4, 8, 16}
}

// onlyUnites filters a mixed workload down to its Unite operations.
func onlyUnites(ops []workload.Op) []workload.Op {
	out := ops[:0]
	for _, op := range ops {
		if op.Kind == workload.OpUnite {
			out = append(out, op)
		}
	}
	return out
}

// ratio guards the speedup column against a zero base.
func ratio(v, base float64) float64 {
	if base <= 0 {
		return 0
	}
	return v / base
}
