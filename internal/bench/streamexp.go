package bench

import (
	"fmt"
	"time"

	"repro/dsu"
	"repro/internal/engine"
	"repro/internal/stats"
	"repro/internal/workload"
)

// streamChunk is the Push granularity of the stream measurements: edges
// "arrive" a few thousand at a time, as they would off a network tap or a
// log shard, regardless of the batch buffer size under test.
const streamChunk = 8192

// blockingIngest drives the edge list through buffer-sized blocking
// UniteAll calls — the PR-1 ingestion shape every stream row is judged
// against.
func blockingIngest(n int, seed uint64, edges []engine.Edge, buffer, workers int) time.Duration {
	d := dsu.New(n, dsu.WithSeed(seed))
	start := time.Now()
	for lo := 0; lo < len(edges); lo += buffer {
		hi := min(lo+buffer, len(edges))
		d.UniteAll(edges[lo:hi], dsu.WithWorkers(workers))
	}
	return time.Since(start)
}

// streamIngest drives the same edge list through dsu.Stream: pushed in
// arrival-sized chunks, sealed at the buffer size, executed by the
// dispatcher while the next buffer fills. A failed batch would make the
// throughput row a lie, so any stream error aborts the experiment.
func streamIngest(mk func() dsu.StreamBackend, edges []engine.Edge, buffer, workers int) time.Duration {
	s := dsu.NewStream(mk(),
		dsu.WithBufferSize(buffer),
		dsu.WithBatchOptions(dsu.WithWorkers(workers)),
		dsu.WithOnBatch(requireBatch))
	start := time.Now()
	for lo := 0; lo < len(edges); lo += streamChunk {
		hi := min(lo+streamChunk, len(edges))
		if err := s.Push(edges[lo:hi]...); err != nil {
			panic(fmt.Sprintf("bench: stream push failed: %v", err))
		}
	}
	if err := s.Close(); err != nil {
		panic(fmt.Sprintf("bench: stream close failed: %v", err))
	}
	return time.Since(start)
}

// requireBatch aborts the run on the first failed batch — E20 rows must
// only ever time fully ingested streams.
func requireBatch(r dsu.BatchResult) {
	if r.Err != nil {
		panic(fmt.Sprintf("bench: stream batch %d failed: %v", r.ID, r.Err))
	}
}

// bestOf keeps the fastest of two runs (stream ingests are long enough
// that allocator noise, not scheduling, is the repeatability risk).
func bestOf(run func() time.Duration) time.Duration {
	best := run()
	if again := run(); again < best {
		best = again
	}
	return best
}

// runE20 measures the streaming ingestion front against blocking batched
// ingestion: buffer sizes × worker counts on uniform, Zipf-skewed, and
// community-structured edge streams, flat backend per cell, plus a sharded
// comparison and the connected screen's re-ingestion win. The stream's
// upside is overlap — accumulation and chunk copying proceed while the
// dispatcher executes the previous batch — so it needs at least two real
// cores to show; on a single-core host the stream pays its plumbing with
// no overlap to sell and rows should sit slightly below 1×.
func runE20(cfg Config) error {
	header(cfg, "E20", "Stream vs blocking-batch ingestion", "systems extension; ROADMAP async-pipelines item, Alistarh et al. 2019")
	n := 1 << 20
	if cfg.Quick {
		n = 1 << 16
	}
	m := 4 * n
	shapes := []struct {
		name  string
		edges []engine.Edge
	}{
		{"uniform", engine.FromOps(workload.RandomUnions(n, m, cfg.Seed+121))},
		{"zipf", engine.FromOps(onlyUnites(workload.ZipfMixed(n, m, 1.0, 1.01, cfg.Seed+123)))},
		{"community", engine.FromOps(workload.CommunityUnions(n, m, 64, 0.95, cfg.Seed+127))},
	}
	buffers := []int{1 << 14, 1 << 16, 1 << 18}
	workerSweep := []int{1, 2, 4}

	for _, shape := range shapes {
		fmt.Fprintf(cfg.Out, "### %s stream (n=%d, m=%d, %d-edge arrivals)\n\n",
			shape.name, n, len(shape.edges), streamChunk)
		cols := []string{"buffer"}
		for _, w := range workerSweep {
			cols = append(cols, fmt.Sprintf("w=%d blk Mop/s", w), fmt.Sprintf("w=%d strm Mop/s", w), "×")
		}
		tb := stats.NewTable(cols...)
		for _, buffer := range buffers {
			row := []any{buffer}
			for _, w := range workerSweep {
				blk := bestOf(func() time.Duration {
					return blockingIngest(n, cfg.Seed+1, shape.edges, buffer, w)
				})
				strm := bestOf(func() time.Duration {
					return streamIngest(func() dsu.StreamBackend {
						return dsu.New(n, dsu.WithSeed(cfg.Seed+1))
					}, shape.edges, buffer, w)
				})
				bth, sth := mops(len(shape.edges), blk), mops(len(shape.edges), strm)
				row = append(row, bth, sth, ratio(sth, bth))
			}
			tb.AddRowf(row...)
		}
		fmt.Fprint(cfg.Out, tb)
		fmt.Fprintln(cfg.Out)
	}

	// Sharded backend: the stream front is backend-agnostic, so one line
	// on the community stream (sharding's sweet spot) records the combined
	// overlap + locality picture at the middle buffer size.
	community := shapes[2].edges
	shStrm := bestOf(func() time.Duration {
		return streamIngest(func() dsu.StreamBackend {
			return dsu.NewSharded(n, 4, dsu.WithSeed(cfg.Seed+1))
		}, community, 1<<16, 4)
	})
	flatStrm := bestOf(func() time.Duration {
		return streamIngest(func() dsu.StreamBackend {
			return dsu.New(n, dsu.WithSeed(cfg.Seed+1))
		}, community, 1<<16, 4)
	})
	fmt.Fprintf(cfg.Out, "Sharded backend on the community stream (buffer=%d, w=4): flat %.2f Mop/s, 4 shards %.2f Mop/s.\n",
		1<<16, mops(len(community), flatStrm), mops(len(community), shStrm))

	// Connected screen on a re-ingested stream: the whole stream arrives a
	// second time (log replay), so every second-pass edge is already
	// connected and the screen's SameSet pass replaces the engine's unite
	// pass. Measured end to end across both passes.
	reingest := func(opts ...dsu.BatchOption) time.Duration {
		s := dsu.NewStream(dsu.New(n, dsu.WithSeed(cfg.Seed+2)),
			dsu.WithBufferSize(1<<16),
			dsu.WithBatchOptions(append([]dsu.BatchOption{dsu.WithWorkers(4)}, opts...)...),
			dsu.WithOnBatch(requireBatch))
		start := time.Now()
		for pass := 0; pass < 2; pass++ {
			for lo := 0; lo < len(community); lo += streamChunk {
				hi := min(lo+streamChunk, len(community))
				if err := s.Push(community[lo:hi]...); err != nil {
					panic(fmt.Sprintf("bench: stream push failed: %v", err))
				}
			}
		}
		if err := s.Close(); err != nil {
			panic(fmt.Sprintf("bench: stream close failed: %v", err))
		}
		return time.Since(start)
	}
	raw := bestOf(func() time.Duration { return reingest() })
	screened := bestOf(func() time.Duration { return reingest(dsu.WithConnectedFilter()) })
	fmt.Fprintf(cfg.Out, "Re-ingested community stream (2 passes, %d edges): raw %.2f Mop/s, connected screen %.2f Mop/s (× %.2f).\n",
		2*len(community), mops(2*len(community), raw), mops(2*len(community), screened),
		ratio(mops(2*len(community), screened), mops(2*len(community), raw)))

	fmt.Fprintf(cfg.Out, "\nShape check: the × columns compare stream against blocking ingestion of the\n")
	fmt.Fprintf(cfg.Out, "same sequence at the same buffer size. With ≥2 real cores the stream should\n")
	fmt.Fprintf(cfg.Out, "win (accumulation overlaps execution, ×>1, most at small buffers where blocking\n")
	fmt.Fprintf(cfg.Out, "pays dispatch latency per batch); on a single-core host expect ×≈0.9–1.0 —\n")
	fmt.Fprintf(cfg.Out, "the dispatcher and producer share the core, so the stream only pays its\n")
	fmt.Fprintf(cfg.Out, "copy-and-seal plumbing. The partition is identical in every cell (pinned by\n")
	fmt.Fprintf(cfg.Out, "the stream≡blocking cross-validation tests under -race, not by this table).\n")
	return nil
}
