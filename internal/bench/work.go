package bench

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ackermann"
	"repro/internal/core"
	"repro/internal/seqdsu"
	"repro/internal/stats"
	"repro/internal/workload"
)

// runE1 validates Theorem 4.3: with Find without compaction, total work is
// O(m log n) w.h.p. — work per operation divided by lg n should be flat
// across n.
func runE1(cfg Config) error {
	header(cfg, "E1", "Work without compaction is O(m log n)", "Theorem 4.3")
	sizes := []int{1 << 12, 1 << 14, 1 << 16, 1 << 18}
	if cfg.Quick {
		sizes = []int{1 << 10, 1 << 12, 1 << 14}
	}
	const p = 8
	tb := stats.NewTable("n", "m", "work", "work/m", "work/(m·lg n)", "max op steps", "max/lg n")
	var xs, ys []float64
	for _, n := range sizes {
		m := 4 * n
		ops := workload.Mixed(n, m, 0.5, 101+cfg.Seed)
		d := core.New(n, core.Config{Find: core.FindNaive, Seed: 7 + cfg.Seed})
		total, _ := runCore(d, workload.SplitRoundRobin(ops, p), true)
		// Worst single operation, probed sequentially on the now-quiescent
		// structure: naive finds never modify parents, so each probe sees
		// the same final forest and per-op cost is exact.
		maxSteps := int64(0)
		for i := 0; i < 200; i++ {
			var st core.Stats
			op := ops[i*len(ops)/200]
			d.SameSetCounted(op.X, op.Y, &st)
			if st.FindSteps > maxSteps {
				maxSteps = st.FindSteps
			}
		}
		lg := math.Log2(float64(n))
		work := total.Work()
		tb.AddRowf(n, m, work, float64(work)/float64(m), float64(work)/(float64(m)*lg), maxSteps, float64(maxSteps)/lg)
		xs = append(xs, float64(n))
		ys = append(ys, float64(maxSteps))
	}
	fmt.Fprint(cfg.Out, tb)
	fit := stats.LogFit(xs, ys)
	fmt.Fprintf(cfg.Out, "\nmax op steps ≈ %.2f + %.2f·lg n (R²=%.3f).\n", fit.Intercept, fit.Slope, fit.R2)
	fmt.Fprintf(cfg.Out, "Theorem 4.3 is a w.h.p. per-operation bound: 'max/lg n' must stay in a constant band (average work/m may sit far below the bound on random inputs).\n")
	return nil
}

// boundTwoTry evaluates the Theorem 5.1 bound formula
// α(n, m/np) + log₂(np/m + 1).
func boundTwoTry(n, m, p int) float64 {
	d := float64(m) / (float64(n) * float64(p))
	return float64(ackermann.Alpha(int64(n), d)) + math.Log2(float64(n)*float64(p)/float64(m)+1)
}

// boundOneTry evaluates the Theorem 5.2 bound formula with p².
func boundOneTry(n, m, p int) float64 {
	pp := float64(p) * float64(p)
	d := float64(m) / (float64(n) * pp)
	return float64(ackermann.Alpha(int64(n), d)) + math.Log2(float64(n)*pp/float64(m)+1)
}

// runSplittingSweep powers E4 and E5: sweep p and m/n, measure total work,
// and compare with the corresponding bound formula.
func runSplittingSweep(cfg Config, id string, find core.Find, bound func(n, m, p int) float64, ref string) error {
	title := "Two-try splitting work vs. bound formula"
	if find == core.FindOneTry {
		title = "One-try splitting work vs. bound formula"
	}
	header(cfg, id, title, ref)
	n := 1 << 16
	if cfg.Quick {
		n = 1 << 13
	}

	fmt.Fprintf(cfg.Out, "Sweep over p (n=%d, m=4n):\n\n", n)
	tb := stats.NewTable("p", "work", "work/m", "bound", "work/(m·bound)")
	m := 4 * n
	for _, p := range cfg.procSweep() {
		ops := workload.Mixed(n, m, 0.5, 400+cfg.Seed)
		d := core.New(n, core.Config{Find: find, Seed: 9 + cfg.Seed})
		total, _ := runCore(d, workload.SplitRoundRobin(ops, p), true)
		b := bound(n, m, p)
		work := total.Work()
		tb.AddRowf(p, work, float64(work)/float64(m), b, float64(work)/(float64(m)*b))
	}
	fmt.Fprint(cfg.Out, tb)

	fmt.Fprintf(cfg.Out, "\nSweep over m/n (n=%d, p=8):\n\n", n)
	tb2 := stats.NewTable("m/n", "m", "work", "work/m", "bound", "work/(m·bound)")
	for _, ratio := range []int{1, 2, 4, 8, 16, 32} {
		m := ratio * n
		ops := workload.Mixed(n, m, 0.5, 500+cfg.Seed)
		d := core.New(n, core.Config{Find: find, Seed: 9 + cfg.Seed})
		total, _ := runCore(d, workload.SplitRoundRobin(ops, 8), true)
		b := bound(n, m, 8)
		work := total.Work()
		tb2.AddRowf(ratio, m, work, float64(work)/float64(m), b, float64(work)/(float64(m)*b))
	}
	fmt.Fprint(cfg.Out, tb2)
	fmt.Fprintf(cfg.Out, "\nThe bound tracks measured work when work/(m·bound) stays within a constant band.\n")
	return nil
}

func runE4(cfg Config) error {
	return runSplittingSweep(cfg, "E4", core.FindTwoTry, boundTwoTry, "Theorem 5.1")
}

func runE5(cfg Config) error {
	if err := runSplittingSweep(cfg, "E5", core.FindOneTry, boundOneTry, "Theorem 5.2"); err != nil {
		return err
	}
	// Head-to-head: one-try vs two-try total work on an identical workload.
	n := 1 << 16
	if cfg.Quick {
		n = 1 << 13
	}
	m := 8 * n
	ops := workload.Mixed(n, m, 0.5, 600+cfg.Seed)
	perProc := workload.SplitRoundRobin(ops, 8)
	one := core.New(n, core.Config{Find: core.FindOneTry, Seed: 3 + cfg.Seed})
	two := core.New(n, core.Config{Find: core.FindTwoTry, Seed: 3 + cfg.Seed})
	oneTotal, _ := runCore(one, perProc, true)
	twoTotal, _ := runCore(two, perProc, true)
	fmt.Fprintf(cfg.Out, "\nHead-to-head (n=%d, m=%d, p=8): one-try work %d, two-try work %d, ratio %.3f\n",
		n, m, oneTotal.Work(), twoTotal.Work(), float64(oneTotal.Work())/float64(twoTotal.Work()))
	return nil
}

// runE10 is the find-variant ablation: identical workload, all variants.
func runE10(cfg Config) error {
	header(cfg, "E10", "Find-variant ablation at fixed workload", "Sections 3 and 6")
	n := 1 << 16
	if cfg.Quick {
		n = 1 << 13
	}
	m := 8 * n
	const p = 8
	ops := workload.Mixed(n, m, 0.5, 700+cfg.Seed)
	perProc := workload.SplitRoundRobin(ops, p)
	type variant struct {
		name string
		cfg  core.Config
	}
	variants := []variant{
		{"naive", core.Config{Find: core.FindNaive}},
		{"onetry", core.Config{Find: core.FindOneTry}},
		{"twotry", core.Config{Find: core.FindTwoTry}},
		{"halving", core.Config{Find: core.FindHalving}},
		{"compress", core.Config{Find: core.FindCompress}},
		{"naive+early", core.Config{Find: core.FindNaive, EarlyTermination: true}},
		{"onetry+early", core.Config{Find: core.FindOneTry, EarlyTermination: true}},
		{"twotry+early", core.Config{Find: core.FindTwoTry, EarlyTermination: true}},
	}
	tb := stats.NewTable("variant", "work", "work/m", "CAS fail %", "Mop/s")
	for _, v := range variants {
		c := v.cfg
		c.Seed = 11 + cfg.Seed
		d := core.New(n, c)
		total, elapsed := runCore(d, perProc, true)
		failPct := 0.0
		if total.CASAttempts > 0 {
			failPct = 100 * float64(total.CASFailures) / float64(total.CASAttempts)
		}
		tb.AddRowf(v.name, total.Work(), float64(total.Work())/float64(m), failPct, mops(m, elapsed))
	}
	fmt.Fprint(cfg.Out, tb)
	fmt.Fprintf(cfg.Out, "\nSplitting variants should beat naive on work/m; Section 3 predicts halving ≈ splitting, not better.\n")

	// Section 2 context: the twelve classical sequential algorithms (plus
	// splicing, Section 6) on the identical workload, single process, in
	// the same work units.
	fmt.Fprintf(cfg.Out, "\nSequential baselines (Section 2), same workload, p=1:\n\n")
	st := stats.NewTable("linking", "compaction", "work/m")
	for _, l := range []seqdsu.Linking{seqdsu.LinkRandom, seqdsu.LinkRank, seqdsu.LinkSize} {
		for _, c := range []seqdsu.Compaction{seqdsu.CompactNone, seqdsu.CompactCompression, seqdsu.CompactSplitting, seqdsu.CompactHalving} {
			d := seqdsu.New(n, l, c, 11+cfg.Seed)
			for _, op := range ops {
				if op.Kind == workload.OpUnite {
					d.Unite(op.X, op.Y)
				} else {
					d.SameSet(op.X, op.Y)
				}
			}
			st.AddRowf(l.String(), c.String(), float64(d.Work().Total())/float64(m))
		}
	}
	sp := seqdsu.NewSplicing(n, 11+cfg.Seed)
	for _, op := range ops {
		if op.Kind == workload.OpUnite {
			sp.Unite(op.X, op.Y)
		} else {
			sp.SameSet(op.X, op.Y)
		}
	}
	st.AddRowf("random", "splicing", float64(sp.Work().Total())/float64(m))
	fmt.Fprint(cfg.Out, st)
	fmt.Fprintf(cfg.Out, "\nAll compacting combinations share the O(m·α(n, m/n)) bound (Section 2); the table shows the constant-factor spread.\n")
	return nil
}

// runE11 is the independence-assumption ablation (Section 7): Unites whose
// linearization order correlates perfectly with the random node order build
// a union forest of linear height, where independent (shuffled) Unites give
// logarithmic height. Work with no compaction explodes correspondingly.
func runE11(cfg Config) error {
	header(cfg, "E11", "Independence-assumption ablation", "Section 7")
	n := 1 << 12
	if cfg.Quick {
		n = 1 << 10
	}
	tb := stats.NewTable("unite order", "forest height", "height/lg n", "work/m (naive find)")
	for _, mode := range []string{"independent (random)", "adversarial (id-sorted)"} {
		d := core.New(n, core.Config{Find: core.FindNaive, Seed: 21 + cfg.Seed})
		// Element list in the chosen order.
		elems := make([]uint32, n)
		for i := range elems {
			elems[i] = uint32(i)
		}
		if mode == "adversarial (id-sorted)" {
			// Unite in increasing id order: every link's loser is the
			// current root with the largest id so far, producing a chain.
			sort.Slice(elems, func(a, b int) bool { return d.ID(elems[a]) < d.ID(elems[b]) })
		}
		var st core.Stats
		for i := 0; i+1 < n; i++ {
			d.UniteCounted(elems[i], elems[i+1], &st)
		}
		// Height of the union forest (naive finds never compact).
		parent := d.Snapshot()
		height := 0
		for x := range parent {
			depth, u := 0, uint32(x)
			for parent[u] != u {
				u = parent[u]
				depth++
			}
			if depth > height {
				height = depth
			}
		}
		lg := math.Log2(float64(n))
		tb.AddRowf(mode, height, float64(height)/lg, float64(st.Work())/float64(n-1))
	}
	fmt.Fprint(cfg.Out, tb)
	fmt.Fprintf(cfg.Out, "\nWhen the Unite order is correlated with the node order, the assumption (∗) fails and height degrades toward n; independent orders stay at O(log n).\n")
	return nil
}
