package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/aw"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// contender abstracts the implementations raced in E9.
type contender interface {
	Unite(x, y uint32) bool
	SameSet(x, y uint32) bool
}

func runContender(d contender, perProc [][]workload.Op) time.Duration {
	var wg sync.WaitGroup
	start := time.Now()
	for i := range perProc {
		wg.Add(1)
		go func(ops []workload.Op) {
			defer wg.Done()
			for _, op := range ops {
				switch op.Kind {
				case workload.OpUnite:
					d.Unite(op.X, op.Y)
				case workload.OpSameSet:
					d.SameSet(op.X, op.Y)
				}
			}
		}(perProc[i])
	}
	wg.Wait()
	return time.Since(start)
}

// runE9 is the headline speedup experiment: Jayanti–Tarjan two-try
// splitting (with and without early termination) against the Anderson–Woll
// comparator and a global-lock baseline, across process counts. Throughput
// is best-of-three with a fresh structure per attempt (single short runs
// are dominated by page-fault and scheduler noise at small p).
func runE9(cfg Config) error {
	header(cfg, "E9", "Speedup vs. Anderson–Woll and a global lock", "Abstract / Section 1")
	n := 1 << 20
	if cfg.Quick {
		n = 1 << 16
	}
	m := 4 * n
	ops := workload.Mixed(n, m, 0.5, cfg.Seed+31)

	type mk struct {
		name string
		new  func() contender
	}
	makers := []mk{
		{"JT twotry", func() contender { return core.New(n, core.Config{Find: core.FindTwoTry, Seed: cfg.Seed + 1}) }},
		{"JT twotry+early", func() contender {
			return core.New(n, core.Config{Find: core.FindTwoTry, EarlyTermination: true, Seed: cfg.Seed + 1})
		}},
		{"AW rank+halving", func() contender { return aw.New(n) }},
		{"global lock", func() contender { return aw.NewLocked(n) }},
	}

	base := make(map[string]float64) // single-process Mop/s per contender
	procs := cfg.procSweep()
	tb := stats.NewTable(append([]string{"p"}, func() []string {
		var cols []string
		for _, m := range makers {
			cols = append(cols, m.name+" Mop/s", m.name+" ×")
		}
		return cols
	}()...)...)
	for _, p := range procs {
		perProc := workload.SplitRoundRobin(ops, p)
		row := []any{p}
		for _, maker := range makers {
			best := time.Duration(1<<62 - 1)
			for rep := 0; rep < 3; rep++ {
				if elapsed := runContender(maker.new(), perProc); elapsed < best {
					best = elapsed
				}
			}
			th := mops(m, best)
			if p == 1 {
				base[maker.name] = th
			}
			speedup := 0.0
			if base[maker.name] > 0 {
				speedup = th / base[maker.name]
			}
			row = append(row, th, speedup)
		}
		tb.AddRowf(row...)
	}
	fmt.Fprint(cfg.Out, tb)
	fmt.Fprintf(cfg.Out, "\nShape check: JT throughput scales with p (almost-linear speedup for busy processes); the global lock flatlines (or degrades); AW scales but pays rank-maintenance overhead.\n")

	// The paper's complaint about Anderson & Woll is about total WORK: their
	// bound is Θ(m(α(m,0) + p)) — work per operation grows linearly in p —
	// while Theorem 5.1 keeps JT's work per operation at α + log(np/m + 1).
	// Measure work/m for both as p grows.
	fmt.Fprintf(cfg.Out, "\nTotal work per operation vs. p (same workload):\n\n")
	wt := stats.NewTable("p", "JT work/m", "AW work/m", "AW/JT", "JT bound α+log(np/m+1)")
	for _, p := range procs {
		perProc := workload.SplitRoundRobin(ops, p)
		jt := core.New(n, core.Config{Find: core.FindTwoTry, Seed: cfg.Seed + 1})
		jtStats, _ := runCore(jt, perProc, true)
		awd := aw.New(n)
		awStats := runAWCounted(awd, perProc)
		jtPer := float64(jtStats.Work()) / float64(m)
		awPer := float64(awStats.Work()) / float64(m)
		wt.AddRowf(p, jtPer, awPer, awPer/jtPer, boundTwoTry(n, m, p))
	}
	fmt.Fprint(cfg.Out, wt)
	fmt.Fprintf(cfg.Out, "\nJT's work/m must stay within its bound's constant band as p grows.\n")
	return nil
}

// runAWCounted executes per-process ops against the AW structure with work
// accounting.
func runAWCounted(d *aw.DSU, perProc [][]workload.Op) core.Stats {
	stats := make([]core.Stats, len(perProc))
	var wg sync.WaitGroup
	for i := range perProc {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, op := range perProc[i] {
				switch op.Kind {
				case workload.OpUnite:
					d.UniteCounted(op.X, op.Y, &stats[i])
				case workload.OpSameSet:
					d.SameSetCounted(op.X, op.Y, &stats[i])
				}
			}
		}(i)
	}
	wg.Wait()
	var total core.Stats
	for i := range stats {
		total.Add(stats[i])
	}
	return total
}

// runE12 measures the Dynamic (MakeSet) variant: concurrent growth mixed
// with unions and queries, against the static structure on the same
// workload as a reference point.
func runE12(cfg Config) error {
	header(cfg, "E12", "Dynamic MakeSet variant throughput", "Section 3 remark / Section 7")
	n := 1 << 18
	if cfg.Quick {
		n = 1 << 14
	}
	m := 4 * n
	ops := workload.Mixed(n, m, 0.5, cfg.Seed+41)
	tb := stats.NewTable("p", "static Mop/s", "dynamic Mop/s", "dynamic/static", "dynamic w/ growth Mop/s")
	for _, p := range cfg.procSweep() {
		perProc := workload.SplitRoundRobin(ops, p)

		static := core.New(n, core.Config{Seed: cfg.Seed + 2})
		staticElapsed := runContender(static, perProc)

		dyn := core.NewDynamic(n, cfg.Seed+2)
		for i := 0; i < n; i++ {
			if _, err := dyn.MakeSet(); err != nil {
				return fmt.Errorf("bench: E12 MakeSet: %w", err)
			}
		}
		dynElapsed := runContender(dynContender{dyn}, perProc)

		// Mixed growth: each worker alternates MakeSets into spare capacity
		// with operations on the existing range.
		grown := core.NewDynamic(2*n, cfg.Seed+2)
		for i := 0; i < n; i++ {
			if _, err := grown.MakeSet(); err != nil {
				return fmt.Errorf("bench: E12 MakeSet: %w", err)
			}
		}
		var wg sync.WaitGroup
		start := time.Now()
		for i := range perProc {
			wg.Add(1)
			go func(ops []workload.Op) {
				defer wg.Done()
				for k, op := range ops {
					if k%16 == 0 {
						_, _ = grown.MakeSet() // ErrFull is fine late in the run
					}
					switch op.Kind {
					case workload.OpUnite:
						grown.Unite(op.X, op.Y)
					case workload.OpSameSet:
						grown.SameSet(op.X, op.Y)
					}
				}
			}(perProc[i])
		}
		wg.Wait()
		grownElapsed := time.Since(start)

		st, dy := mops(m, staticElapsed), mops(m, dynElapsed)
		ratio := 0.0
		if st > 0 {
			ratio = dy / st
		}
		tb.AddRowf(p, st, dy, ratio, mops(m, grownElapsed))
	}
	fmt.Fprint(cfg.Out, tb)
	fmt.Fprintf(cfg.Out, "\nThe dynamic order (hashed priorities + index tie-break) should track the static permutation within a small constant factor.\n")
	return nil
}

// dynContender adapts core.Dynamic to the contender interface.
type dynContender struct{ d *core.Dynamic }

func (c dynContender) Unite(x, y uint32) bool   { return c.d.Unite(x, y) }
func (c dynContender) SameSet(x, y uint32) bool { return c.d.SameSet(x, y) }
