package bench

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/aw"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// runE15 measures the per-operation step distribution: Theorem 4.3 (and the
// high-probability side of Theorems 5.1/5.2) is a statement about the tail —
// every operation is O(log n) steps w.h.p. — so we record every operation's
// own step count under concurrency and report quantiles normalized by lg n.
func runE15(cfg Config) error {
	header(cfg, "E15", "Per-operation step distribution (tail bound)", "Theorem 4.3 / Theorems 5.1–5.2 (w.h.p. claims)")
	n := 1 << 16
	if cfg.Quick {
		n = 1 << 13
	}
	m := 8 * n
	const p = 8
	lg := math.Log2(float64(n))
	tb := stats.NewTable("variant", "ops", "p50 steps", "p95", "p99", "max", "max/lg n")
	for _, find := range []core.Find{core.FindNaive, core.FindOneTry, core.FindTwoTry, core.FindHalving} {
		ops := workload.Mixed(n, m, 0.5, 900+cfg.Seed)
		perProc := workload.SplitRoundRobin(ops, p)
		d := core.New(n, core.Config{Find: find, Seed: 31 + cfg.Seed})
		perOp := make([][]float64, p)
		var wg sync.WaitGroup
		for i := 0; i < p; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				mine := make([]float64, 0, len(perProc[i]))
				var st core.Stats
				for _, op := range perProc[i] {
					before := st.Reads + st.CASAttempts
					switch op.Kind {
					case workload.OpUnite:
						d.UniteCounted(op.X, op.Y, &st)
					case workload.OpSameSet:
						d.SameSetCounted(op.X, op.Y, &st)
					}
					mine = append(mine, float64(st.Reads+st.CASAttempts-before))
				}
				perOp[i] = mine
			}(i)
		}
		wg.Wait()
		var all []float64
		for i := range perOp {
			all = append(all, perOp[i]...)
		}
		s := stats.Summarize(all)
		sorted := append([]float64(nil), all...)
		sort.Float64s(sorted)
		p99 := stats.Quantile(sorted, 0.99)
		tb.AddRowf(find.String(), len(all), s.Median, s.P95, p99, s.Max, s.Max/lg)
	}
	fmt.Fprint(cfg.Out, tb)
	fmt.Fprintf(cfg.Out, "\nThe w.h.p. claim predicts max/lg n within a small constant for every variant, with the bulk of the distribution far below it.\n")
	return nil
}

// runE16 is the contention ablation: Zipf-skewed workloads concentrate
// operations on few hot elements, maximizing the cross-process interactions
// on intersecting find paths — precisely the effect the paper says Anderson
// & Woll's analysis ignored. We sweep the skew and compare JT two-try
// against AW halving on work, CAS failures, and throughput.
func runE16(cfg Config) error {
	header(cfg, "E16", "Contention ablation on skewed workloads", "Section 1 (AW's ignored path interactions)")
	n := 1 << 16
	if cfg.Quick {
		n = 1 << 13
	}
	m := 8 * n
	const p = 8
	tb := stats.NewTable("skew", "JT work/m", "JT CAS fail %", "JT Mop/s", "AW work/m", "AW CAS fail %", "AW Mop/s")
	for _, skew := range []float64{0, 0.8, 1.2, 1.6} {
		var ops []workload.Op
		label := "uniform"
		if skew > 0 {
			ops = workload.ZipfMixed(n, m, 0.5, skew, 950+cfg.Seed)
			label = fmt.Sprintf("zipf %.1f", skew)
		} else {
			ops = workload.Mixed(n, m, 0.5, 950+cfg.Seed)
		}
		perProc := workload.SplitRoundRobin(ops, p)

		jt := core.New(n, core.Config{Find: core.FindTwoTry, Seed: 41 + cfg.Seed})
		jtStats, jtElapsed := runCore(jt, perProc, true)

		awd := aw.New(n)
		awStats := runAWCounted(awd, perProc)
		awElapsed := runContender(aw.New(n), perProc) // timed uncounted run

		failPct := func(s core.Stats) float64 {
			if s.CASAttempts == 0 {
				return 0
			}
			return 100 * float64(s.CASFailures) / float64(s.CASAttempts)
		}
		tb.AddRowf(label,
			float64(jtStats.Work())/float64(m), failPct(jtStats), mops(m, jtElapsed),
			float64(awStats.Work())/float64(m), failPct(awStats), mops(m, awElapsed))
	}
	fmt.Fprint(cfg.Out, tb)
	fmt.Fprintf(cfg.Out, "\nSkew collapses the hot set onto few paths: CAS-failure rates rise for both structures, but wait-freedom keeps work/m bounded — no retry explosion for either; the JT structure needs no rank maintenance at the hot roots.\n")
	return nil
}
