package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/dsu"
	"repro/internal/engine"
	"repro/internal/stats"
	"repro/internal/wal"
	"repro/internal/workload"
)

// durableIngest drives the edge list through blocking UniteAll batches
// on a fresh durable (or not) tenant and returns the wall-clock time.
// Each row builds its own registry and directory so no run inherits
// another's log.
func durableIngest(n int, seed uint64, edges []engine.Edge, frame int, regOpts []dsu.RegistryOption) time.Duration {
	reg := dsu.NewRegistry(regOpts...)
	u, err := reg.Create("t", n, dsu.WithSeed(seed))
	if err != nil {
		panic(fmt.Sprintf("bench: tenant create: %v", err))
	}
	start := time.Now()
	for lo := 0; lo < len(edges); lo += frame {
		hi := min(lo+frame, len(edges))
		if _, err := u.UniteAll(dsu.UniteRequest{Edges: edges[lo:hi]}); err != nil {
			panic(fmt.Sprintf("bench: durable unite: %v", err))
		}
	}
	elapsed := time.Since(start)
	if err := reg.Close(); err != nil {
		panic(fmt.Sprintf("bench: sealing log: %v", err))
	}
	return elapsed
}

// runE25 measures the durability tax and the recovery path: blocking
// ingest throughput with the WAL off and under each sync policy (the
// acceptance bar: group commit retains ≥70% of WAL-off throughput),
// group-commit coalescing under concurrent appenders (batches per
// fsync'd chunk), and recovery time from a cold log with and without a
// snapshot bounding the replayed tail.
func runE25(cfg Config) error {
	header(cfg, "E25", "Durable tenants: WAL ingest cost and recovery time", "systems extension; ROADMAP durable-tenants item")
	n := 1 << 18
	if cfg.Quick {
		n = 1 << 14
	}
	m := 4 * n
	frame := 1 << 13
	edges := engine.FromOps(workload.RandomUnions(n, m, cfg.Seed+251))

	scratch, err := os.MkdirTemp("", "dsu-e25-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(scratch)
	durOpts := func(row string, opts ...dsu.DurabilityOption) []dsu.RegistryOption {
		dir := filepath.Join(scratch, row)
		return []dsu.RegistryOption{dsu.WithDurability(dir, opts...)}
	}

	// Ingest cost: the WAL-off row per frame size is the ceiling; every
	// policy pays encode + append, and group/always additionally pay
	// their fsyncs. A serial caller cannot share fsyncs, so group and
	// always converge at small frames — the fsync tax amortizes with the
	// batch, which is the operational guidance this table exists for.
	fmt.Fprintf(cfg.Out, "### Blocking ingest, WAL off vs sync policies (n=%d, m=%d edges)\n\n", n, m)
	ti := stats.NewTable("frame", "off Medge/s", "none Medge/s", "%", "group Medge/s", "%", "always Medge/s", "%")
	frames := []int{1 << 13, 1 << 16, 1 << 18}
	if cfg.Quick {
		frames = []int{1 << 13}
	}
	run := 0
	for _, frame := range frames {
		off := bestOf(func() time.Duration { return durableIngest(n, cfg.Seed+1, edges, frame, nil) })
		offTh := mops(m, off)
		row := []any{frame, offTh}
		for _, policy := range []struct {
			name string
			p    dsu.SyncPolicy
		}{{"none", dsu.SyncNone}, {"group", dsu.SyncGroup}, {"always", dsu.SyncAlways}} {
			th := mops(m, bestOf(func() time.Duration {
				run++
				return durableIngest(n, cfg.Seed+1, edges, frame,
					durOpts(fmt.Sprintf("ingest-%s-%d", policy.name, run), dsu.WithSyncPolicy(policy.p)))
			}))
			row = append(row, th, 100*th/offTh)
		}
		ti.AddRowf(row...)
	}
	fmt.Fprint(cfg.Out, ti)
	fmt.Fprintln(cfg.Out)

	// Concurrent group-commit ingest: the regime group commit is built
	// for — several writers' batches share each fsync, so the durability
	// tax divides across them instead of serializing.
	const conWriters, conFrame = 16, 1 << 13
	fmt.Fprintf(cfg.Out, "### Concurrent ingest, %d writers (lockfree tenant, frame=%d)\n\n", conWriters, conFrame)
	tcon := stats.NewTable("policy", "aggregate Medge/s", "% of off")
	conIngest := func(run string, opts []dsu.DurabilityOption) time.Duration {
		var regOpts []dsu.RegistryOption
		if opts != nil {
			regOpts = durOpts(run, opts...)
		}
		reg := dsu.NewRegistry(regOpts...)
		u, err := reg.Create("t", n, dsu.WithKind(dsu.KindLockFree), dsu.WithSeed(cfg.Seed+1))
		if err != nil {
			panic(fmt.Sprintf("bench: tenant create: %v", err))
		}
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < conWriters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for lo := w * conFrame; lo < len(edges); lo += conWriters * conFrame {
					hi := min(lo+conFrame, len(edges))
					if _, err := u.UniteAll(dsu.UniteRequest{Edges: edges[lo:hi]}); err != nil {
						panic(fmt.Sprintf("bench: concurrent ingest: %v", err))
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		if err := reg.Close(); err != nil {
			panic(fmt.Sprintf("bench: sealing log: %v", err))
		}
		return elapsed
	}
	conRun := 0
	conOff := mops(m, bestOf(func() time.Duration { return conIngest("", nil) }))
	tcon.AddRowf("off", conOff, 100.0)
	conGroup := mops(m, bestOf(func() time.Duration {
		conRun++
		return conIngest(fmt.Sprintf("con-group-%d", conRun), []dsu.DurabilityOption{dsu.WithSyncPolicy(dsu.SyncGroup)})
	}))
	tcon.AddRowf("group", conGroup, 100*conGroup/conOff)
	fmt.Fprint(cfg.Out, tcon)
	fmt.Fprintln(cfg.Out)

	// Group-commit coalescing: concurrent appenders share fsyncs. Each
	// goroutine's appends block until its batch is durable, so with g
	// writers in flight one chunk (one fsync) absorbs up to g batches —
	// read back from the sealed log's own chunk index.
	fmt.Fprintf(cfg.Out, "### Group-commit coalescing (%d batches of %d edges, sync=group)\n\n", 256, 256)
	tc := stats.NewTable("writers", "batches", "chunks", "batches/fsync")
	for _, writers := range []int{1, 4, 16} {
		dir := filepath.Join(scratch, fmt.Sprintf("coalesce-%d", writers))
		reg := dsu.NewRegistry(dsu.WithDurability(dir))
		u, err := reg.Create("t", n, dsu.WithKind(dsu.KindLockFree), dsu.WithSeed(cfg.Seed+1))
		if err != nil {
			return err
		}
		const batches, batchLen = 256, 256
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for b := w; b < batches; b += writers {
					lo := (b * batchLen) % (len(edges) - batchLen)
					if _, err := u.UniteAll(dsu.UniteRequest{Edges: edges[lo : lo+batchLen]}); err != nil {
						panic(fmt.Sprintf("bench: concurrent unite: %v", err))
					}
				}
			}(w)
		}
		wg.Wait()
		if err := reg.Close(); err != nil {
			return err
		}
		rd, err := wal.OpenReader(filepath.Join(dir, "t.dsulog"))
		if err != nil {
			return err
		}
		chunks := len(rd.Chunks())
		tc.AddRowf(writers, batches, chunks, float64(batches)/float64(chunks))
	}
	fmt.Fprint(cfg.Out, tc)
	fmt.Fprintln(cfg.Out)

	// Recovery time: a cold Create over an existing log replays the tail
	// past the latest snapshot, so a checkpoint before the crash trades
	// one snapshot write for proportionally less replay on restart.
	fmt.Fprintf(cfg.Out, "### Recovery from a cold log (n=%d, m=%d logged edges)\n\n", n, m)
	tr := stats.NewTable("log", "recovery ms", "replayed edges")
	for _, row := range []struct {
		name       string
		checkpoint bool
	}{
		{"tail only (no snapshot)", false},
		{"snapshot + empty tail", true},
	} {
		dir := filepath.Join(scratch, fmt.Sprintf("recover-%v", row.checkpoint))
		regOpts := []dsu.RegistryOption{dsu.WithDurability(dir)}
		reg := dsu.NewRegistry(regOpts...)
		u, err := reg.Create("t", n, dsu.WithSeed(cfg.Seed+1))
		if err != nil {
			return err
		}
		for lo := 0; lo < len(edges); lo += frame {
			hi := min(lo+frame, len(edges))
			if _, err := u.UniteAll(dsu.UniteRequest{Edges: edges[lo:hi]}); err != nil {
				return err
			}
		}
		if row.checkpoint {
			if err := u.Checkpoint(); err != nil {
				return err
			}
		}
		if err := reg.Close(); err != nil {
			return err
		}
		replayed := m
		if row.checkpoint {
			replayed = 0
		}
		elapsed := bestOf(func() time.Duration {
			reg2 := dsu.NewRegistry(regOpts...)
			start := time.Now()
			if _, err := reg2.Create("t", n, dsu.WithSeed(cfg.Seed+1)); err != nil {
				panic(fmt.Sprintf("bench: recovery: %v", err))
			}
			d := time.Since(start)
			if err := reg2.Close(); err != nil {
				panic(fmt.Sprintf("bench: reseal: %v", err))
			}
			return d
		})
		tr.AddRowf(row.name, float64(elapsed.Microseconds())/1000, replayed)
	}
	fmt.Fprint(cfg.Out, tr)
	fmt.Fprintln(cfg.Out)
	return nil
}
