package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lockfree"
	"repro/internal/stats"
	"repro/internal/workload"
)

// bestLockFreeUniteAll runs the batch three times on fresh lock-free
// structures and keeps the fastest run, mirroring bestUniteAll.
func bestLockFreeUniteAll(n int, seed uint64, edges []engine.Edge, cfg engine.Config) engine.Result {
	var best engine.Result
	best.Elapsed = time.Duration(1<<62 - 1)
	for rep := 0; rep < 3; rep++ {
		d := lockfree.New(n, core.Config{Seed: seed})
		if res := d.UniteAll(edges, cfg); res.Elapsed < best.Elapsed {
			best = res
		}
	}
	return best
}

// runLockFreePoints drives one op list per process against a fresh
// lock-free structure, one goroutine per process — true overlap, no
// per-batch barrier — returning wall-clock time and total CAS retries.
func runLockFreePoints(n int, seed uint64, perProc [][]workload.Op) (time.Duration, int64) {
	d := lockfree.New(n, core.Config{Seed: seed})
	retries := make([]int64, len(perProc))
	var wg sync.WaitGroup
	start := time.Now()
	for i := range perProc {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var r int64
			for _, op := range perProc[i] {
				switch op.Kind {
				case workload.OpUnite:
					_, rr := d.UniteDirect(op.X, op.Y, nil)
					r += rr
				case workload.OpSameSet:
					d.SameSet(op.X, op.Y)
				}
			}
			retries[i] = r
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var total int64
	for _, r := range retries {
		total += r
	}
	return elapsed, total
}

// runE23 races the three structure kinds — flat engine, sharded, lock-free
// — on uniform, Zipf-skewed, and community-structured batches, then
// measures what only the lock-free kind can do: point-operation scaling
// from p unsynchronized goroutines and genuinely overlapping UniteAll
// calls on one structure. CAS-retry columns expose the price of optimism:
// a retry is a unite whose CAS lost to a concurrent link and had to
// re-find its roots.
func runE23(cfg Config) error {
	header(cfg, "E23", "Lock-free backend vs flat and sharded", "Jayanti–Tarjan Section 3; systems extension, ROADMAP lock-free item")
	n := 1 << 20
	if cfg.Quick {
		n = 1 << 16
	}
	m := 4 * n
	shapes := []struct {
		name  string
		edges []engine.Edge
	}{
		{"uniform", engine.FromOps(workload.RandomUnions(n, m, cfg.Seed+131))},
		{"zipf", engine.FromOps(onlyUnites(workload.ZipfMixed(n, m, 1.0, 1.01, cfg.Seed+137)))},
		{"community", engine.FromOps(workload.CommunityUnions(n, m, 64, 0.95, cfg.Seed+139))},
	}
	workerSweep := []int{1, 2, 4, 8}

	// Table 1: single-batch throughput, kind × workers. The w=1 lock-free
	// column is a contention-free baseline — one worker never loses a CAS —
	// so it isolates the slot-indirection cost against the flat engine.
	for _, shape := range shapes {
		fmt.Fprintf(cfg.Out, "### %s batch (n=%d, m=%d)\n\n", shape.name, n, len(shape.edges))
		cols := []string{"kind"}
		for _, w := range workerSweep {
			cols = append(cols, fmt.Sprintf("w=%d Mop/s", w))
		}
		cols = append(cols, "retries/op @w=8")
		tb := stats.NewTable(cols...)

		row := []any{"flat"}
		for _, w := range workerSweep {
			res := bestUniteAll(n, cfg.Seed+1, shape.edges, engine.Config{Workers: w, Seed: cfg.Seed})
			row = append(row, mops(len(shape.edges), res.Elapsed))
		}
		tb.AddRowf(append(row, "—")...)

		row = []any{"sharded-4"}
		for _, w := range workerSweep {
			res := bestShardedUniteAll(n, 4, cfg.Seed+1, shape.edges, engine.Config{Workers: w, Seed: cfg.Seed})
			row = append(row, mops(len(shape.edges), res.Elapsed))
		}
		tb.AddRowf(append(row, "—")...)

		row = []any{"lockfree"}
		var lastRetries float64
		for _, w := range workerSweep {
			res := bestLockFreeUniteAll(n, cfg.Seed+1, shape.edges, engine.Config{Workers: w, Seed: cfg.Seed})
			lastRetries = float64(res.CASRetries) / float64(len(shape.edges))
			row = append(row, mops(len(shape.edges), res.Elapsed))
		}
		tb.AddRowf(append(row, fmt.Sprintf("%.4f", lastRetries))...)
		fmt.Fprint(cfg.Out, tb)
		fmt.Fprintln(cfg.Out)
	}

	// Table 2: point-operation scaling. This is the paper's own regime —
	// p asynchronous processes issuing Unite/SameSet with no batch framing
	// and no locks anywhere. Neither other kind can play: flat point ops
	// are single-owner, sharded point mutations serialize on a lock.
	fmt.Fprintf(cfg.Out, "### lock-free point ops, p goroutines (n=%d, 60%% unite mixed workload)\n\n", n)
	tb := stats.NewTable("p", "Mop/s", "retries/op")
	opsEach := m / 4
	for _, p := range cfg.procSweep() {
		perProc := make([][]workload.Op, p)
		for i := range perProc {
			perProc[i] = workload.Mixed(n, opsEach/p, 0.6, cfg.Seed+uint64(1000+i))
		}
		elapsed, retries := runLockFreePoints(n, cfg.Seed+3, perProc)
		total := 0
		for _, ops := range perProc {
			total += len(ops)
		}
		tb.AddRowf(p, mops(total, elapsed), fmt.Sprintf("%.4f", float64(retries)/float64(total)))
	}
	fmt.Fprint(cfg.Out, tb)
	fmt.Fprintln(cfg.Out)

	// Table 3: overlapping batches — k concurrent UniteAll calls on ONE
	// structure (total edges fixed), against the same edges pushed through
	// one k-worker batch. Flat and sharded would serialize the k calls on
	// the executor lock; the lock-free seam genuinely overlaps them.
	fmt.Fprintf(cfg.Out, "### overlapping UniteAll calls, one lock-free structure (uniform, m=%d)\n\n", len(shapes[0].edges))
	tb = stats.NewTable("k batches × w=2", "Mop/s", "retries/op", "merged Σ")
	edges := shapes[0].edges
	for _, k := range []int{1, 2, 4, 8} {
		d := lockfree.New(n, core.Config{Seed: cfg.Seed + 5})
		chunk := (len(edges) + k - 1) / k
		results := make([]engine.Result, k)
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < k; i++ {
			lo, hi := i*chunk, (i+1)*chunk
			if hi > len(edges) {
				hi = len(edges)
			}
			wg.Add(1)
			go func(i, lo, hi int) {
				defer wg.Done()
				results[i] = d.UniteAll(edges[lo:hi], engine.Config{Workers: 2, Seed: cfg.Seed})
			}(i, lo, hi)
		}
		wg.Wait()
		elapsed := time.Since(start)
		var retries, merged int64
		for _, r := range results {
			retries += r.CASRetries
			merged += r.Merged
		}
		tb.AddRowf(fmt.Sprintf("%d × 2", k), mops(len(edges), elapsed),
			fmt.Sprintf("%.4f", float64(retries)/float64(len(edges))), merged)
	}
	fmt.Fprint(cfg.Out, tb)
	fmt.Fprintln(cfg.Out)

	fmt.Fprintf(cfg.Out, "Shape check: w=1 and p=1 rows are contention-free baselines (zero retries by\n")
	fmt.Fprintf(cfg.Out, "construction) — read them as the slot-indirection overhead vs flat, not as\n")
	fmt.Fprintf(cfg.Out, "concurrency results. Point-op Mop/s should grow with p while retries/op stays\n")
	fmt.Fprintf(cfg.Out, "small (the randomized linking order spreads contention; Jayanti–Tarjan's\n")
	fmt.Fprintf(cfg.Out, "expected-work bound assumes exactly this). In the overlap table merged Σ is\n")
	fmt.Fprintf(cfg.Out, "identical in every row — links = initial sets − final sets, schedule-independent.\n")
	return nil
}
