// Package bench is the experiment harness: one runner per experiment in
// DESIGN.md's per-experiment index (E1–E25), each regenerating the
// table/check that validates one of the paper's theorems or constructions
// (E18 measures the batch engine, E19 the sharded subsystem, E20 the
// streaming ingestion front, E21 the adaptive compaction policy, E22 the
// wire protocol, E23 the lock-free concurrent backend, and E24 the
// zero-allocation wire fast path — the repo's systems extensions).
// The harness is shared by cmd/dsubench (which writes the tables behind
// EXPERIMENTS.md) and the root-level Go benchmarks.
//
// The paper is theory-only, so "reproducing its tables and figures" means
// reproducing the objects its theorems quantify: total work under each
// find variant, union-forest height and rank statistics, lower-bound
// constructions, and the speedup claim against Anderson–Woll and a global
// lock. Shape, not absolute nanoseconds, is the success criterion.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// Config controls an experiment run.
type Config struct {
	// Out receives the experiment's table; must be non-nil.
	Out io.Writer
	// Quick shrinks problem sizes for CI-speed runs.
	Quick bool
	// Seed offsets every workload seed, for replication runs.
	Seed uint64
	// MaxProcs caps the process-count sweeps (0 = min(GOMAXPROCS, 24)).
	MaxProcs int
}

func (c Config) maxProcs() int {
	if c.MaxProcs > 0 {
		return c.MaxProcs
	}
	p := runtime.GOMAXPROCS(0)
	if p > 24 {
		p = 24
	}
	return p
}

// procSweep returns the process counts an experiment sweeps: powers of two
// up to the cap, always including 1 and the cap.
func (c Config) procSweep() []int {
	cap := c.maxProcs()
	var ps []int
	for p := 1; p < cap; p *= 2 {
		ps = append(ps, p)
	}
	ps = append(ps, cap)
	sort.Ints(ps)
	// Dedupe (cap may be a power of two).
	out := ps[:0]
	for i, p := range ps {
		if i == 0 || p != ps[i-1] {
			out = append(out, p)
		}
	}
	return out
}

// Experiment is one reproducible experiment.
type Experiment struct {
	ID    string
	Title string
	Ref   string // paper reference (theorem / section)
	Run   func(Config) error
}

// All returns every experiment in ID order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Work without compaction is O(m log n)", "Theorem 4.3", runE1},
		{"E2", "Union-forest height is O(log n) w.h.p.", "Corollary 4.2.1", runE2},
		{"E3", "Rank dominance along ancestor chains", "Lemma 4.1 / Corollary 4.1.1", runE3},
		{"E4", "Two-try splitting work vs. bound formula", "Theorem 5.1", runE4},
		{"E5", "One-try splitting work vs. bound formula", "Theorem 5.2", runE5},
		{"E6", "Binomial construction forces average depth Ω(log k)", "Lemma 5.3", runE6},
		{"E7", "Lower-bound workload forces Ω(m log(np/m)) work", "Theorem 5.4", runE7},
		{"E8", "Lockstep halving simulates splitting", "Section 3 construction", runE8},
		{"E9", "Speedup vs. Anderson–Woll and a global lock", "Abstract / Section 1", runE9},
		{"E10", "Find-variant ablation at fixed workload", "Sections 3 and 6", runE10},
		{"E11", "Independence-assumption ablation", "Section 7", runE11},
		{"E12", "Dynamic MakeSet variant throughput", "Section 3 remark / Section 7", runE12},
		{"E13", "Linearizability under random schedules", "Lemma 3.2 / Theorem 3.4", runE13},
		{"E14", "Per-step structural invariants under adversarial schedules", "Lemma 3.1", runE14},
		{"E15", "Per-operation step distribution (tail bound)", "Theorem 4.3 w.h.p. claim", runE15},
		{"E16", "Contention ablation on skewed workloads", "Section 1 (path interactions)", runE16},
		{"E17", "Section 5 potential properties along executions", "Section 5 properties (i)–(vi)", runE17},
		{"E18", "Batch engine throughput and speedup", "systems extension; Fedorov et al. 2023, Alistarh et al. 2019", runE18},
		{"E19", "Sharded DSU vs flat engine", "systems extension; ROADMAP sharding item, Fedorov et al. 2023", runE19},
		{"E20", "Stream vs blocking-batch ingestion", "systems extension; ROADMAP async-pipelines item, Alistarh et al. 2019", runE20},
		{"E21", "Adaptive vs fixed find variants across mutate/query phases", "systems extension; ROADMAP batch-aware compaction item, Alistarh et al. 2019", runE21},
		{"E22", "Wire-protocol throughput: remote vs in-process batches", "systems extension; ROADMAP wire-measurement item", runE22},
		{"E23", "Lock-free backend vs flat and sharded", "Jayanti–Tarjan Section 3; systems extension, ROADMAP lock-free item", runE23},
		{"E24", "Wire fast path: pipelined pooled codecs vs per-RPC exchanges", "systems extension; E22 follow-up, ROADMAP wire-measurement item", runE24},
		{"E25", "Durable tenants: WAL ingest cost and recovery time", "systems extension; ROADMAP durable-tenants item", runE25},
	}
}

// aliases maps friendly experiment names to IDs, for the CLI.
var aliases = map[string]string{"batch": "E18", "shard": "E19", "stream": "E20", "adapt": "E21", "wire": "E22", "lockfree": "E23", "fastpath": "E24", "wal": "E25", "durable": "E25"}

// ByID returns the experiment with the given ID or alias, matched
// case-insensitively so `-exp e19` and `-exp E19` name the same table.
func ByID(id string) (Experiment, bool) {
	if canonical, ok := aliases[strings.ToLower(id)]; ok {
		id = canonical
	}
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// header prints the experiment banner.
func header(cfg Config, e string, title, ref string) {
	fmt.Fprintf(cfg.Out, "\n## %s — %s\n(paper: %s)\n\n", e, title, ref)
}

// runCore executes per-process op lists against d from one goroutine per
// process, returning the summed work stats and the wall-clock duration of
// the concurrent phase.
func runCore(d *core.DSU, perProc [][]workload.Op, counted bool) (core.Stats, time.Duration) {
	stats := make([]core.Stats, len(perProc))
	var wg sync.WaitGroup
	start := time.Now()
	for i := range perProc {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := &stats[i]
			if !counted {
				st = nil
			}
			for _, op := range perProc[i] {
				switch op.Kind {
				case workload.OpUnite:
					d.UniteCounted(op.X, op.Y, st)
				case workload.OpSameSet:
					d.SameSetCounted(op.X, op.Y, st)
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var total core.Stats
	for i := range stats {
		total.Add(stats[i])
	}
	return total, elapsed
}

// mops returns throughput in million operations per second.
func mops(ops int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(ops) / d.Seconds() / 1e6
}
