package bench

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sync"
	"time"

	"repro/dsu"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/wire"
	"repro/internal/workload"
)

// allocsPerFrame runs one ingest and returns its wall-clock time plus
// process-wide heap allocations per frame exchange. The server lives in
// the same process, so the figure covers the whole round trip — client
// encode, HTTP exchange, server decode, execute, reply both ways —
// which is exactly the budget the fast path attacks.
func allocsPerFrame(frames int, run func()) (time.Duration, float64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	before := ms.Mallocs
	start := time.Now()
	run()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms)
	if frames == 0 {
		return elapsed, 0
	}
	return elapsed, float64(ms.Mallocs-before) / float64(frames)
}

// remoteIngest drives the edge list through one remote unite RPC per
// frame against the tenant, returning the wall-clock time and the
// allocations per frame. Frames carry `frame` edges each — the sweep
// variable: small frames pay the per-exchange protocol cost often,
// large frames amortize it.
func remoteIngest(c *server.Client, tenant string, edges []engine.Edge, frame int) (time.Duration, float64) {
	ctx := context.Background()
	frames := (len(edges) + frame - 1) / frame
	return allocsPerFrame(frames, func() {
		for lo := 0; lo < len(edges); lo += frame {
			hi := min(lo+frame, len(edges))
			if _, err := c.UniteAll(ctx, tenant, dsu.UniteRequest{Edges: edges[lo:hi]}); err != nil {
				panic(fmt.Sprintf("bench: remote unite failed: %v", err))
			}
		}
	})
}

// inProcessIngest is the same frame loop without the wire: blocking
// UniteAll calls on a fresh structure — the ceiling every remote row is
// judged against.
func inProcessIngest(n int, seed uint64, edges []engine.Edge, frame int) time.Duration {
	d := dsu.New(n, dsu.WithSeed(seed))
	start := time.Now()
	for lo := 0; lo < len(edges); lo += frame {
		hi := min(lo+frame, len(edges))
		d.UniteAll(edges[lo:hi])
	}
	return time.Since(start)
}

// runE22 measures the wire protocol's cost: remote batch RPC throughput
// against in-process blocking calls, swept over frame sizes × encodings,
// plus concurrent multi-tenant scaling and a streaming-ingest
// comparison. The server runs in-process over a loopback HTTP listener,
// so the rows isolate protocol cost — framing, encode/decode, HTTP
// per-exchange overhead — not network latency.
func runE22(cfg Config) error {
	header(cfg, "E22", "Wire-protocol throughput: remote vs in-process batches", "systems extension; ROADMAP wire-measurement item")
	n := 1 << 18
	if cfg.Quick {
		n = 1 << 14
	}
	m := 4 * n
	edges := engine.FromOps(workload.RandomUnions(n, m, cfg.Seed+221))
	frames := []int{1 << 10, 1 << 13, 1 << 16}

	newServer := func(tenants int) (*httptest.Server, *dsu.Registry) {
		reg := dsu.NewRegistry()
		for i := 0; i < tenants; i++ {
			if _, err := reg.Create(fmt.Sprintf("t%d", i), n, dsu.WithSeed(cfg.Seed+1)); err != nil {
				panic(fmt.Sprintf("bench: tenant create: %v", err))
			}
		}
		hs := httptest.NewServer(server.New(server.Config{Registry: reg}))
		return hs, reg
	}

	// Frame-size × encoding sweep, one tenant: the protocol tax and how
	// batching amortizes it.
	fmt.Fprintf(cfg.Out, "### Remote unite RPC vs in-process (n=%d, m=%d edges, one tenant)\n\n", n, m)
	tb := stats.NewTable("frame", "in-proc Medge/s", "binary Medge/s", "×", "allocs/fr", "json Medge/s", "×", "allocs/fr")
	for _, frame := range frames {
		local := bestOf(func() time.Duration { return inProcessIngest(n, cfg.Seed+1, edges, frame) })
		lth := mops(m, local)
		row := []any{frame, lth}
		for _, format := range []wire.Format{wire.Binary, wire.JSON} {
			hs, _ := newServer(1)
			c := server.NewClient(hs.URL, server.WithHTTPClient(hs.Client()), server.WithFormat(format))
			remote, apf := remoteIngest(c, "t0", edges, frame)
			hs.Close()
			rth := mops(m, remote)
			row = append(row, rth, ratio(rth, lth), apf)
		}
		tb.AddRowf(row...)
	}
	fmt.Fprint(cfg.Out, tb)
	fmt.Fprintln(cfg.Out)

	// Concurrent tenants: each client drives its own tenant's structure,
	// so aggregate throughput should scale until cores saturate (tenant
	// isolation is structural — no shared state between universes).
	fmt.Fprintf(cfg.Out, "### Concurrent tenants (binary, frame=%d, %d edges per tenant)\n\n", 1<<13, m)
	tc := stats.NewTable("tenants", "aggregate Medge/s", "per-tenant Medge/s")
	for _, tenants := range []int{1, 2, 4} {
		hs, _ := newServer(tenants)
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < tenants; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				c := server.NewClient(hs.URL, server.WithHTTPClient(hs.Client()))
				remoteIngest(c, fmt.Sprintf("t%d", i), edges, 1<<13)
			}(i)
		}
		wg.Wait()
		elapsed := time.Since(start)
		hs.Close()
		agg := mops(tenants*m, elapsed)
		tc.AddRowf(tenants, agg, agg/float64(tenants))
	}
	fmt.Fprint(cfg.Out, tc)
	fmt.Fprintln(cfg.Out)

	// Streaming ingest over the wire: one connection, server-side
	// batching, replies overlapped with pushes — the wire face of E20.
	hs, _ := newServer(1)
	c := server.NewClient(hs.URL, server.WithHTTPClient(hs.Client()))
	st, err := c.OpenStream(context.Background(), "t0", server.StreamConfig{Buffer: 1 << 16})
	if err != nil {
		panic(fmt.Sprintf("bench: open stream: %v", err))
	}
	start := time.Now()
	for lo := 0; lo < len(edges); lo += streamChunk {
		hi := min(lo+streamChunk, len(edges))
		if err := st.Push(edges[lo:hi]...); err != nil {
			panic(fmt.Sprintf("bench: stream push: %v", err))
		}
	}
	if _, err := st.Close(); err != nil {
		panic(fmt.Sprintf("bench: stream close: %v", err))
	}
	streamed := time.Since(start)
	hs.Close()
	fmt.Fprintf(cfg.Out, "Streamed ingest over the wire (buffer=%d, %d-edge pushes): %.2f Medge/s.\n",
		1<<16, streamChunk, mops(m, streamed))

	fmt.Fprintf(cfg.Out, "\nShape check: remote throughput should climb with frame size (per-exchange\n")
	fmt.Fprintf(cfg.Out, "HTTP + encode cost amortizes) and binary should beat JSON at every frame size\n")
	fmt.Fprintf(cfg.Out, "(fixed-width codecs vs text). The × columns are remote/in-process; they can\n")
	fmt.Fprintf(cfg.Out, "approach but not pass 1.0 — the wire only ever adds work. Aggregate\n")
	fmt.Fprintf(cfg.Out, "multi-tenant throughput should grow with tenant count on a multi-core host\n")
	fmt.Fprintf(cfg.Out, "(structural isolation, no cross-tenant contention); on a single core it stays\n")
	fmt.Fprintf(cfg.Out, "flat and per-tenant throughput splits the core evenly.\n")
	return nil
}
