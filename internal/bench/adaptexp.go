package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/workload"
)

// adaptRounds/adaptQueryBatches shape E21's phase alternation: each round
// is one mutation batch (1/adaptRounds of the edge stream) followed by
// adaptQueryBatches query batches — enough query batches per phase for the
// estimator's EWMA to converge and the downgrade to show inside a phase.
const (
	adaptRounds       = 4
	adaptQueryBatches = 4
)

// adaptExecutor builds one executor per (backend, mode) cell: fixed modes
// configure the structure with that variant, the adaptive mode runs the
// two-try base plus the flatness estimator.
func adaptExecutor(backend string, n int, seed uint64, find core.Find, adaptive bool) *exec.Executor {
	cfg := core.Config{Find: find, Seed: seed}
	switch backend {
	case "flat":
		return exec.NewExecutor(engine.Flat{D: core.New(n, cfg)}, adaptive)
	default: // sharded
		return exec.NewExecutor(shard.New(n, 4, cfg), adaptive)
	}
}

// adaptRun drives the alternating mutate/query phases through one executor
// and returns the summed query-phase time plus the variant each query
// batch ran with.
func adaptRun(x *exec.Executor, edges []engine.Edge, queries []engine.Edge, workers int, seed uint64) (time.Duration, []core.Find) {
	chunk := (len(edges) + adaptRounds - 1) / adaptRounds
	var queryTime time.Duration
	var picks []core.Find
	cfg := exec.Config{Workers: workers, Seed: seed}
	for lo := 0; lo < len(edges); lo += chunk {
		x.UniteAll(edges[lo:min(lo+chunk, len(edges))], cfg)
		for k := 0; k < adaptQueryBatches; k++ {
			start := time.Now()
			_, res := x.SameSetAll(queries, cfg)
			queryTime += time.Since(start)
			picks = append(picks, res.Find)
		}
	}
	return queryTime, picks
}

// pickSummary compresses a variant-pick sequence into "twotry×2 onetry×1
// naive×13"-style counts, preserving first-appearance order.
func pickSummary(picks []core.Find) string {
	var order []core.Find
	counts := map[core.Find]int{}
	for _, p := range picks {
		if counts[p] == 0 {
			order = append(order, p)
		}
		counts[p]++
	}
	out := ""
	for i, p := range order {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%v×%d", p, counts[p])
	}
	return out
}

// runE21 measures the adaptive compaction policy against fixed find
// variants across alternating mutate/query phases — the ROADMAP's
// batch-aware compaction item. Each round unites a quarter of the edge
// stream, then answers four query batches; after the first big UniteAll
// the forest is flat-ish (E18's SameSetAll rows), so a fixed compacting
// variant pays CAS overhead per query that naive skips — the adaptive mode
// should track the best fixed variant per phase without being told which.
// Workloads: uniform, Zipf-skewed, and community-structured streams; flat
// and 4-shard backends. Throughputs are query-phase only (mutation phases
// are identical across modes by construction).
func runE21(cfg Config) error {
	header(cfg, "E21", "Adaptive vs fixed find variants across mutate/query phases", "systems extension; ROADMAP batch-aware compaction item, Alistarh et al. 2019")
	n := 1 << 20
	if cfg.Quick {
		n = 1 << 16
	}
	m := 4 * n
	shapes := []struct {
		name  string
		edges []engine.Edge
	}{
		{"uniform", engine.FromOps(workload.RandomUnions(n, m, cfg.Seed+131))},
		{"zipf", engine.FromOps(onlyUnites(workload.ZipfMixed(n, m, 1.0, 1.01, cfg.Seed+133)))},
		{"community", engine.FromOps(workload.CommunityUnions(n, m, 64, 0.95, cfg.Seed+137))},
	}
	queries := engine.FromOps(workload.RandomUnions(n, n, cfg.Seed+139))
	queryOps := adaptRounds * adaptQueryBatches * len(queries)
	modes := []struct {
		name     string
		find     core.Find
		adaptive bool
	}{
		{"twotry (fixed)", core.FindTwoTry, false},
		{"onetry (fixed)", core.FindOneTry, false},
		{"naive (fixed)", core.FindNaive, false},
		{"adaptive", core.FindTwoTry, true},
	}
	const workers = 4

	for _, shape := range shapes {
		fmt.Fprintf(cfg.Out, "### %s stream (n=%d, m=%d; %d rounds × %d query batches of %d pairs)\n\n",
			shape.name, n, len(shape.edges), adaptRounds, adaptQueryBatches, len(queries))
		tb := stats.NewTable("mode", "flat q-Mop/s", "shard q-Mop/s")
		adaptivePicks := map[string]string{}
		for _, mode := range modes {
			row := []any{mode.name}
			for _, backend := range []string{"flat", "sharded"} {
				x := adaptExecutor(backend, n, cfg.Seed+1, mode.find, mode.adaptive)
				qt, picks := adaptRun(x, shape.edges, queries, workers, cfg.Seed)
				row = append(row, mops(queryOps, qt))
				if mode.adaptive {
					adaptivePicks[backend] = pickSummary(picks)
				}
			}
			tb.AddRowf(row...)
		}
		fmt.Fprint(cfg.Out, tb)
		fmt.Fprintf(cfg.Out, "\nadaptive picks: flat %s | sharded %s\n\n",
			adaptivePicks["flat"], adaptivePicks["sharded"])
	}

	fmt.Fprintf(cfg.Out, "Shape check: the per-batch variants behind \"adaptive picks\" must show the\n")
	fmt.Fprintf(cfg.Out, "query-phase downgrade firing — naive (or onetry) selected for most query\n")
	fmt.Fprintf(cfg.Out, "batches once the first big UniteAll flattens the forest — and adaptive's\n")
	fmt.Fprintf(cfg.Out, "query throughput should track the best fixed compacting variant (at or above\n")
	fmt.Fprintf(cfg.Out, "twotry on the uniform and community streams; single-core runs with workers>1\n")
	fmt.Fprintf(cfg.Out, "carry scheduling noise, so judge the shape across shapes, not one cell).\n")
	fmt.Fprintf(cfg.Out, "Fixed naive is the cautionary row: it also skips compaction CASes but never\n")
	fmt.Fprintf(cfg.Out, "flattens the forest, so it loses badly — the policy's point is naive finds\n")
	fmt.Fprintf(cfg.Out, "over a two-try-compacted forest. Partitions and answers are identical in\n")
	fmt.Fprintf(cfg.Out, "every cell (pinned by the adaptive ≡ fixed cross-validation tests under\n")
	fmt.Fprintf(cfg.Out, "-race, not by this table); the differences here are work and time only.\n")
	return nil
}
