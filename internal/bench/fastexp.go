package bench

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"testing"
	"time"

	"repro/dsu"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/wire"
	"repro/internal/workload"
)

// pipedIngest drives the edge list through one pipelined batch-RPC
// connection — pooled codecs at both ends, request coalescing, no
// per-frame HTTP exchange — returning wall-clock time and process-wide
// allocations per frame. Close blocks until the last reply drained, so
// the clock covers full completion, same as remoteIngest's.
func pipedIngest(c *server.Client, tenant string, edges []engine.Edge, frame int) (time.Duration, float64) {
	ctx := context.Background()
	frames := (len(edges) + frame - 1) / frame
	return allocsPerFrame(frames, func() {
		cp, err := c.OpenPipe(ctx, tenant, server.PipeConfig{OnReply: func(env *wire.Envelope) {
			if env.Kind == wire.KindError {
				panic(fmt.Sprintf("bench: piped unite failed: %s", env.Error))
			}
		}})
		if err != nil {
			panic(fmt.Sprintf("bench: open pipe: %v", err))
		}
		for lo := 0; lo < len(edges); lo += frame {
			hi := min(lo+frame, len(edges))
			if _, err := cp.UniteAll(dsu.UniteRequest{Edges: edges[lo:hi]}); err != nil {
				panic(fmt.Sprintf("bench: piped unite failed: %v", err))
			}
		}
		if err := cp.Close(); err != nil {
			panic(fmt.Sprintf("bench: pipe close: %v", err))
		}
	})
}

// runE24 measures the wire fast path: the E22 frame-size grid re-run
// against the pooled, pipelined, write-coalescing path, with
// allocations per frame alongside throughput. The comparison isolates
// what the fast path buys at each frame size — small frames stop paying
// a full HTTP exchange per batch and the codec garbage disappears.
func runE24(cfg Config) error {
	header(cfg, "E24", "Wire fast path: pipelined pooled codecs vs per-RPC exchanges", "systems extension; E22 follow-up, ROADMAP wire-measurement item")
	n := 1 << 18
	if cfg.Quick {
		n = 1 << 14
	}
	m := 4 * n
	edges := engine.FromOps(workload.RandomUnions(n, m, cfg.Seed+221)) // E22's workload, for comparable rows
	frames := []int{1 << 10, 1 << 13, 1 << 16}

	newServer := func() *httptest.Server {
		reg := dsu.NewRegistry()
		if _, err := reg.Create("t0", n, dsu.WithSeed(cfg.Seed+1)); err != nil {
			panic(fmt.Sprintf("bench: tenant create: %v", err))
		}
		return httptest.NewServer(server.New(server.Config{Registry: reg}))
	}

	// Steady-state codec cost first: the microscopic claim the macro rows
	// rest on. Encode and decode of a 1K-edge unite envelope through
	// acquired codecs must not allocate at all.
	encAllocs, decAllocs := codecSteadyStateAllocs(1 << 10)
	fmt.Fprintf(cfg.Out, "Steady-state pooled binary codec, 1K-edge unite envelope: %.1f allocs/encode, %.1f allocs/decode.\n\n", encAllocs, decAllocs)

	fmt.Fprintf(cfg.Out, "### Pipelined pooled path vs per-RPC (n=%d, m=%d edges, one tenant, binary+json)\n\n", n, m)
	tb := stats.NewTable("frame", "in-proc Medge/s", "rpc bin Medge/s", "allocs/fr", "pipe bin Medge/s", "allocs/fr", "pipe/rpc ×", "pipe json Medge/s", "allocs/fr")
	for _, frame := range frames {
		local := bestOf(func() time.Duration { return inProcessIngest(n, cfg.Seed+1, edges, frame) })
		lth := mops(m, local)

		hs := newServer()
		c := server.NewClient(hs.URL, server.WithHTTPClient(hs.Client()))
		rpcElapsed, rpcAPF := remoteIngest(c, "t0", edges, frame)
		hs.Close()
		rpcTh := mops(m, rpcElapsed)

		hs = newServer()
		c = server.NewClient(hs.URL, server.WithHTTPClient(hs.Client()))
		pipeElapsed, pipeAPF := pipedIngest(c, "t0", edges, frame)
		hs.Close()
		pipeTh := mops(m, pipeElapsed)

		hs = newServer()
		c = server.NewClient(hs.URL, server.WithHTTPClient(hs.Client()), server.WithFormat(wire.JSON))
		jsonElapsed, jsonAPF := pipedIngest(c, "t0", edges, frame)
		hs.Close()
		jsonTh := mops(m, jsonElapsed)

		tb.AddRowf(frame, lth, rpcTh, rpcAPF, pipeTh, pipeAPF, ratio(pipeTh, rpcTh), jsonTh, jsonAPF)
	}
	fmt.Fprint(cfg.Out, tb)
	fmt.Fprintln(cfg.Out)

	fmt.Fprintf(cfg.Out, "\nShape check: the pipe/rpc column should be largest at the smallest frame —\n")
	fmt.Fprintf(cfg.Out, "per-RPC rows pay one HTTP exchange per 1K edges while the pipe pays one per\n")
	fmt.Fprintf(cfg.Out, "connection, so pipelining should at least double 1K-frame binary throughput\n")
	fmt.Fprintf(cfg.Out, "(the E24 acceptance bar) and converge toward 1.0 as frames grow and encode\n")
	fmt.Fprintf(cfg.Out, "cost dominates. Binary pipe allocs/frame should sit far below the per-RPC\n")
	fmt.Fprintf(cfg.Out, "figure: the codecs themselves are allocation-free (the line above), leaving\n")
	fmt.Fprintf(cfg.Out, "only executor-side batch bookkeeping. JSON rides the same pipe but keeps\n")
	fmt.Fprintf(cfg.Out, "reflection garbage — it is the debug mode, reported for scale, not a target.\n")
	return nil
}

// codecSteadyStateAllocs measures allocations per steady-state pooled
// binary encode and decode of an edgesPerFrame-edge unite envelope —
// the number CI pins at zero through BenchmarkWireFastPath.
func codecSteadyStateAllocs(edgesPerFrame int) (enc, dec float64) {
	edgeList := make([]dsu.Edge, edgesPerFrame)
	for i := range edgeList {
		edgeList[i] = dsu.Edge{X: uint32(i), Y: uint32(i + 1)}
	}
	env := &wire.Envelope{Kind: wire.KindUnite, Seq: 1, Unite: &dsu.UniteRequest{Edges: edgeList}}

	e := wire.AcquireEncoder(io.Discard, wire.Binary)
	defer wire.ReleaseEncoder(e)
	enc = testing.AllocsPerRun(100, func() {
		if err := e.Encode(env); err != nil {
			panic(err)
		}
	})

	var buf bytes.Buffer
	if err := wire.NewEncoder(&buf, wire.Binary).Encode(env); err != nil {
		panic(err)
	}
	data := buf.Bytes()
	r := bytes.NewReader(data)
	d := wire.AcquireDecoder(r, wire.Binary, wire.DefaultMaxFrame)
	defer wire.ReleaseDecoder(d)
	dec = testing.AllocsPerRun(100, func() {
		r.Reset(data)
		if _, err := d.Decode(); err != nil {
			panic(err)
		}
	})
	return enc, dec
}
