package bench

import (
	"fmt"

	"repro/internal/apram"
	"repro/internal/core"
	"repro/internal/potential"
	"repro/internal/sched"
	"repro/internal/simdsu"
	"repro/internal/stats"
	"repro/internal/workload"
)

// runE17 validates the Section 5 potential machinery along executions: the
// GKLT properties (i)–(vi) on sequential runs of every splitting-family
// find, and the timing-robust subset (i)–(iv) under concurrent adversarial
// schedules, with every single parent change checked.
func runE17(cfg Config) error {
	header(cfg, "E17", "Section 5 potential properties along executions", "Section 5 properties (i)–(vi)")
	n := 512
	m := 4096
	if cfg.Quick {
		n, m = 128, 1024
	}
	tb := stats.NewTable("mode", "variant", "scheduler", "procs", "parent changes", "violations")
	type setup struct {
		mode  potential.Mode
		label string
		procs int
		mk    func() apram.Scheduler
	}
	setups := []setup{
		{potential.Sequential, "roundrobin", 1, func() apram.Scheduler { return sched.NewRoundRobin() }},
		{potential.Concurrent, "random", 6, func() apram.Scheduler { return sched.NewRandom(cfg.Seed + 1) }},
		{potential.Concurrent, "lockstep", 6, func() apram.Scheduler { return sched.NewLockstep() }},
		{potential.Concurrent, "stall(0)", 6, func() apram.Scheduler { return sched.NewStall(sched.NewRandom(cfg.Seed+2), 0) }},
	}
	for _, find := range []core.Find{core.FindOneTry, core.FindTwoTry, core.FindHalving, core.FindCompress} {
		for _, su := range setups {
			s := simdsu.New(n, core.Config{Find: find, Seed: cfg.Seed + 3})
			ids := make([]uint32, n)
			for x := uint32(0); int(x) < n; x++ {
				ids[x] = s.ID(x)
			}
			d := float64(m) / (float64(n) * float64(su.procs))
			tracker := potential.New(ids, d, su.mode)

			machine := apram.NewMachine(s.Words(), su.mk(), 100_000_000)
			s.Init(machine.Mem())
			machine.SetObserver(func(st apram.Step) {
				if st.Kind == apram.OpCAS && st.OK && st.Before != st.After {
					tracker.OnChange(uint32(st.Addr), uint32(st.After))
				}
			})
			for _, ops := range workload.SplitRoundRobin(workload.Mixed(n, m, 0.5, cfg.Seed+4), su.procs) {
				ops := ops
				machine.AddProgram(func(p *apram.P) {
					for _, op := range ops {
						switch op.Kind {
						case workload.OpUnite:
							s.Unite(p, op.X, op.Y)
						case workload.OpSameSet:
							s.SameSet(p, op.X, op.Y)
						}
					}
				})
			}
			machine.Run()
			modeName := "seq (i)–(vi)"
			if su.mode == potential.Concurrent {
				modeName = "conc (i)–(iv)"
			}
			if err := tracker.Err(); err != nil {
				fmt.Fprint(cfg.Out, tb)
				return fmt.Errorf("bench: E17 %s/%s: %w", find, su.label, err)
			}
			tb.AddRowf(modeName, find.String(), su.label, su.procs, tracker.Changes(), 0)
		}
	}
	fmt.Fprint(cfg.Out, tb)
	fmt.Fprintf(cfg.Out, "\nEvery parent change satisfied the applicable GKLT potential properties — the raw material of Theorem 5.1's budget argument.\n")
	return nil
}
