package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/workload"
)

// bestShardedUniteAll runs the batch three times on fresh sharded
// structures and keeps the fastest run, mirroring bestUniteAll. Sharded
// runs report the same unified engine.Result (= exec.Result) flat runs do.
func bestShardedUniteAll(n, shards int, seed uint64, edges []engine.Edge, cfg engine.Config) engine.Result {
	var best engine.Result
	best.Elapsed = time.Duration(1<<62 - 1)
	for rep := 0; rep < 3; rep++ {
		d := shard.New(n, shards, core.Config{Seed: seed})
		if res := d.UniteAll(edges, cfg); res.Elapsed < best.Elapsed {
			best = res
		}
	}
	return best
}

// runE19 measures the sharded subsystem against the flat engine: shard
// counts × worker counts on uniform, Zipf-skewed, and community-structured
// batches. The community batch is where sharding earns its keep — most
// edges resolve inside one shard-sized working set — while the uniform
// batch stresses the spill path (≈(S−1)/S of edges cross shards). A second
// table measures the Prefilter stage's win on the duplicate-heavy Zipf
// batch, per the edge-dedup ROADMAP item.
func runE19(cfg Config) error {
	header(cfg, "E19", "Sharded DSU vs flat engine", "systems extension; ROADMAP sharding item, Fedorov et al. 2023")
	n := 1 << 20
	if cfg.Quick {
		n = 1 << 16
	}
	m := 4 * n
	shapes := []struct {
		name  string
		edges []engine.Edge
	}{
		{"uniform", engine.FromOps(workload.RandomUnions(n, m, cfg.Seed+111))},
		{"zipf", engine.FromOps(onlyUnites(workload.ZipfMixed(n, m, 1.0, 1.01, cfg.Seed+113)))},
		{"community", engine.FromOps(workload.CommunityUnions(n, m, 64, 0.95, cfg.Seed+117))},
	}
	workerSweep := []int{1, 2, 4, 8}
	shardSweep := []int{1, 2, 4, 8}

	for _, shape := range shapes {
		fmt.Fprintf(cfg.Out, "### %s batch (n=%d, m=%d)\n\n", shape.name, n, len(shape.edges))
		cols := []string{"shards", "spill %"}
		for _, w := range workerSweep {
			cols = append(cols, fmt.Sprintf("w=%d Mop/s", w))
		}
		tb := stats.NewTable(cols...)

		// Flat baseline row: the PR-1 engine on one unsharded structure.
		row := []any{"flat", "—"}
		for _, w := range workerSweep {
			res := bestUniteAll(n, cfg.Seed+1, shape.edges, engine.Config{Workers: w, Seed: cfg.Seed})
			row = append(row, mops(len(shape.edges), res.Elapsed))
		}
		tb.AddRowf(row...)

		for _, s := range shardSweep {
			row := []any{s, "—"} // spill cell filled once a run resolves it
			spillPct := "—"
			for _, w := range workerSweep {
				res := bestShardedUniteAll(n, s, cfg.Seed+1, shape.edges, engine.Config{Workers: w, Seed: cfg.Seed})
				if routed := res.Intra + res.Spill; routed > 0 {
					spillPct = fmt.Sprintf("%.1f", 100*float64(res.Spill)/float64(routed))
				}
				row = append(row, mops(len(shape.edges), res.Elapsed))
			}
			row[1] = spillPct
			tb.AddRowf(row...)
		}
		fmt.Fprint(cfg.Out, tb)
		fmt.Fprintln(cfg.Out)
	}

	// Prefilter on Zipf batches, both sides of the trade: the dedup pass
	// pays for itself only when the dropped edges' finds cost more than the
	// sequential scan, so the comparison sweeps skew — mild (1.01, the
	// tables' batch) and heavy (1.5, where hot pairs repeat massively).
	// Elapsed includes the filter pass.
	for _, z := range []struct {
		label string
		skew  float64
		edges []engine.Edge
	}{
		{"zipf s=1.01", 1.01, shapes[1].edges},
		{"zipf s=1.5", 1.5, engine.FromOps(onlyUnites(workload.ZipfMixed(n, m, 1.0, 1.5, cfg.Seed+113)))},
	} {
		filtered := engine.Prefilter(z.edges)
		raw := bestUniteAll(n, cfg.Seed+2, z.edges, engine.Config{Workers: 4, Seed: cfg.Seed})
		pre := bestUniteAll(n, cfg.Seed+2, z.edges, engine.Config{Workers: 4, Seed: cfg.Seed, Prefilter: true})
		fmt.Fprintf(cfg.Out, "Prefilter on %s: %d -> %d edges (%.1f%% dropped); ",
			z.label, len(z.edges), len(filtered), 100*float64(len(z.edges)-len(filtered))/float64(len(z.edges)))
		fmt.Fprintf(cfg.Out, "UniteAll %.2f Mop/s raw vs %.2f Mop/s prefiltered (× %.2f, filter pass included).\n",
			mops(len(z.edges), raw.Elapsed), mops(len(z.edges), pre.Elapsed),
			mops(len(z.edges), pre.Elapsed)/mops(len(z.edges), raw.Elapsed))
	}

	fmt.Fprintf(cfg.Out, "\nShape check: on the community batch the spill %% is small and sharded rows\n")
	fmt.Fprintf(cfg.Out, "should match or beat flat once shards × workers cover the cores — each shard's\n")
	fmt.Fprintf(cfg.Out, "working set is 1/S of the parent array. On the uniform batch spill %% ≈ 100(S−1)/S,\n")
	fmt.Fprintf(cfg.Out, "so the reconciliation pass dominates and flat should win: sharding is a locality\n")
	fmt.Fprintf(cfg.Out, "optimization, not a free speedup. The partition is identical in every cell\n")
	fmt.Fprintf(cfg.Out, "(validated by the cross-validation tests under -race, not by this table).\n")
	return nil
}
