package metrics

import (
	"bufio"
	"io"
	"net/http"
	"sort"
	"strconv"
)

// TextContentType is the Prometheus text exposition content type this
// writer produces.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText writes every family in Prometheus text format v0.0.4:
// families sorted by name, one # HELP and # TYPE line each, series
// sorted by label values, histograms expanded into cumulative _bucket
// series plus _sum and _count. Safe concurrently with recordings — each
// value is an atomic load, so a scrape observes a consistent value per
// sample (not a consistent cut across samples, per the usual Prometheus
// contract). A nil Registry writes nothing.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		children := f.snapshot()
		if len(children) == 0 {
			continue // a Vec with no resolved children has no series yet
		}
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		writeEscapedHelp(bw, f.help)
		bw.WriteByte('\n')
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, ch := range children {
			switch f.kind {
			case kindCounter:
				writeSample(bw, f.name, "", f.labels, ch.values, "", "", formatInt(ch.c.Value()))
			case kindGauge:
				writeSample(bw, f.name, "", f.labels, ch.values, "", "", formatInt(ch.g.Value()))
			case kindHistogram:
				// Cumulative buckets: each le bound counts every observation
				// ≤ it, and le="+Inf" equals _count.
				var cum int64
				for i, bound := range f.bounds {
					cum += ch.h.counts[i].Load()
					writeSample(bw, f.name, "_bucket", f.labels, ch.values, "le", formatFloat(bound), formatInt(cum))
				}
				cum += ch.h.counts[len(f.bounds)].Load()
				writeSample(bw, f.name, "_bucket", f.labels, ch.values, "le", "+Inf", formatInt(cum))
				writeSample(bw, f.name, "_sum", f.labels, ch.values, "", "", formatFloat(ch.h.Sum()))
				writeSample(bw, f.name, "_count", f.labels, ch.values, "", "", formatInt(ch.h.Count()))
			}
		}
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving the exposition — the /metrics
// endpoint. A nil Registry serves an empty (valid) exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", TextContentType)
		_ = r.WriteText(w)
	})
}

// writeSample writes one series line: name+suffix, the label set (plus
// one extra label for histogram le), and the value.
func writeSample(bw *bufio.Writer, name, suffix string, labels, values []string, extraLabel, extraValue, value string) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if len(labels) > 0 || extraLabel != "" {
		bw.WriteByte('{')
		first := true
		for i, l := range labels {
			if !first {
				bw.WriteByte(',')
			}
			first = false
			bw.WriteString(l)
			bw.WriteString(`="`)
			writeEscapedLabel(bw, values[i])
			bw.WriteByte('"')
		}
		if extraLabel != "" {
			if !first {
				bw.WriteByte(',')
			}
			bw.WriteString(extraLabel)
			bw.WriteString(`="`)
			writeEscapedLabel(bw, extraValue)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

// writeEscapedLabel escapes a label value per the text format: backslash,
// double quote, and newline.
func writeEscapedLabel(bw *bufio.Writer, s string) {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			bw.WriteString(`\\`)
		case '"':
			bw.WriteString(`\"`)
		case '\n':
			bw.WriteString(`\n`)
		default:
			bw.WriteByte(c)
		}
	}
}

// writeEscapedHelp escapes a HELP string: backslash and newline only
// (quotes are legal in help text).
func writeEscapedHelp(bw *bufio.Writer, s string) {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			bw.WriteString(`\\`)
		case '\n':
			bw.WriteString(`\n`)
		default:
			bw.WriteByte(c)
		}
	}
}

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
