package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-3) // discarded: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
	// Re-registration under the same type returns the same instrument.
	if r.Counter("c_total", "a counter").Value() != 5 {
		t.Fatal("re-registered counter is a different instrument")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "a histogram", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-106) > 1e-9 {
		t.Fatalf("sum = %v, want 106", got)
	}
	// Bucket upper bounds are inclusive: the observation at exactly 1
	// lands in le="1".
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`h_bucket{le="1"} 2`,
		`h_bucket{le="2"} 3`,
		`h_bucket{le="4"} 4`,
		`h_bucket{le="+Inf"} 5`,
		`h_sum 106`,
		`h_count 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestExpositionGolden pins the full text format — HELP/TYPE lines,
// family sort order, label rendering, label-value escaping, cumulative
// histogram expansion — against an exact expected document.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	bv := r.CounterVec("dsu_batches_total", "Batches executed.", "tenant", "op")
	bv.With("alpha", "unite").Add(3)
	bv.With("alpha", "query").Add(2)
	bv.With("we\"ird\\ten\nant", "unite").Inc() // quote, backslash, real newline
	r.Gauge("dsu_streams_active", "Open streams.").Set(2)
	h := r.HistogramVec("dsu_batch_seconds", "Batch wall-clock latency.\nSecond help line.", []float64{0.001, 0.01}, "tenant")
	h.With("alpha").Observe(0.0005)
	h.With("alpha").Observe(0.005)
	h.With("alpha").Observe(5)

	const want = `# HELP dsu_batch_seconds Batch wall-clock latency.\nSecond help line.
# TYPE dsu_batch_seconds histogram
dsu_batch_seconds_bucket{tenant="alpha",le="0.001"} 1
dsu_batch_seconds_bucket{tenant="alpha",le="0.01"} 2
dsu_batch_seconds_bucket{tenant="alpha",le="+Inf"} 3
dsu_batch_seconds_sum{tenant="alpha"} 5.0055
dsu_batch_seconds_count{tenant="alpha"} 3
# HELP dsu_batches_total Batches executed.
# TYPE dsu_batches_total counter
dsu_batches_total{tenant="alpha",op="query"} 2
dsu_batches_total{tenant="alpha",op="unite"} 3
dsu_batches_total{tenant="we\"ird\\ten\nant",op="unite"} 1
# HELP dsu_streams_active Open streams.
# TYPE dsu_streams_active gauge
dsu_streams_active 2
`
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHistogramConsistency checks the invariants a scraper relies on:
// buckets are cumulative (monotone nondecreasing in le), le="+Inf"
// equals _count, and _sum matches the observations.
func TestHistogramConsistency(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", ExpBuckets(0.001, 2, 8))
	var sum float64
	for i := 0; i < 1000; i++ {
		v := float64(i%700) / 1000
		h.Observe(v)
		sum += v
	}
	var prev int64
	for i := range h.bounds {
		var cum int64
		for j := 0; j <= i; j++ {
			cum += h.counts[j].Load()
		}
		if cum < prev {
			t.Fatalf("bucket %d not cumulative: %d < %d", i, cum, prev)
		}
		prev = cum
	}
	var inf int64
	for i := range h.counts {
		inf += h.counts[i].Load()
	}
	if inf != h.Count() {
		t.Fatalf("+Inf bucket %d != count %d", inf, h.Count())
	}
	if math.Abs(h.Sum()-sum) > 1e-6 {
		t.Fatalf("sum = %v, want %v", h.Sum(), sum)
	}
}

// TestConcurrentScrapeDuringMutation hammers every instrument kind from
// writer goroutines while scrapers run WriteText — the -race guarantee
// that a scrape never tears or blocks recordings.
func TestConcurrentScrapeDuringMutation(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("writes_total", "writes", "worker")
	gv := r.GaugeVec("depth", "depth", "worker")
	hv := r.HistogramVec("lat", "latency", []float64{0.01, 0.1, 1}, "worker")
	const writers, perWriter = 4, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := string(rune('a' + w))
			c, g, h := cv.With(name), gv.With(name), hv.With(name)
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) / perWriter)
			}
		}(w)
	}
	stop := make(chan struct{})
	var scrapes sync.WaitGroup
	for s := 0; s < 2; s++ {
		scrapes.Add(1)
		go func() {
			defer scrapes.Done()
			for {
				select {
				case <-stop:
					return
				default:
					var sb strings.Builder
					if err := r.WriteText(&sb); err != nil {
						t.Errorf("scrape: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	scrapes.Wait()
	for w := 0; w < writers; w++ {
		name := string(rune('a' + w))
		if got := cv.With(name).Value(); got != perWriter {
			t.Errorf("worker %s counter = %d, want %d", name, got, perWriter)
		}
		if got := hv.With(name).Count(); got != perWriter {
			t.Errorf("worker %s histogram count = %d, want %d", name, got, perWriter)
		}
	}
}

// TestNilSafety is the disabled-mode contract: instruments resolved from
// a nil registry are nil, recording on them is a no-op, and none of it
// allocates.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", nil)
	cv := r.CounterVec("cv", "", "l")
	hv := r.HistogramVec("hv", "", nil, "l")
	if c != nil || g != nil || h != nil || cv != nil || hv != nil {
		t.Fatal("nil registry handed out live instruments")
	}
	if cv.With("x") != nil || hv.With("x") != nil {
		t.Fatal("nil Vec handed out live children")
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments report nonzero values")
	}
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(7)
		g.Set(1)
		g.Add(-1)
		h.Observe(0.5)
	})
	if allocs != 0 {
		t.Fatalf("nil-instrument recording allocates %v per run, want 0", allocs)
	}
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Fatalf("nil registry WriteText: %v", err)
	}
}

// TestLiveRecordingAllocs: the enabled hot path must not allocate either —
// the <2% overhead target is atomic adds, not garbage.
func TestLiveRecordingAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", nil)
	allocs := testing.AllocsPerRun(100, func() {
		c.Add(3)
		g.Set(9)
		h.Observe(0.25)
	})
	if allocs != 0 {
		t.Fatalf("live recording allocates %v per run, want 0", allocs)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
	for _, bad := range [][3]float64{{0, 2, 4}, {1, 1, 4}, {1, 2, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ExpBuckets(%v) did not panic", bad)
				}
			}()
			ExpBuckets(bad[0], bad[1], int(bad[2]))
		}()
	}
}

func TestFamilyConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestVecArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("v", "", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	v.With("only-one")
}
