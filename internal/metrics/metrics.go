// Package metrics is the repo's dependency-free instrumentation layer:
// counters, gauges, and fixed-bucket histograms with label support, a
// registry that owns them, and a Prometheus text-format (v0.0.4)
// exposition writer — the observability seam the execution layer, the
// stream pipeline, and the network front end all feed.
//
// # Design
//
// The hot path is lock-free: every instrument is a handful of
// sync/atomic words, so recording a batch costs a few uncontended atomic
// adds and never allocates. Locks exist only on the cold paths —
// registering a family, resolving a labelled child, and scraping — and a
// scrape never blocks a recording (readers use the same atomics).
//
// Labelled series come from Vec families (CounterVec, GaugeVec,
// HistogramVec): the family is registered once with its label names, and
// With(values...) resolves one child per label-value tuple. Resolution
// takes the family lock, so callers on hot paths resolve their children
// once — at tenant creation, stream open, server construction — and hold
// the pointers; that is the idiom every instrumented layer in this repo
// follows.
//
// # Disabled mode
//
// Every method is nil-safe: instruments resolved from a nil *Registry
// are nil, and recording on a nil instrument is a no-op that performs
// zero work and zero allocations. Layers therefore thread instrument
// pointers unconditionally and the "metrics off" configuration costs one
// predictable nil check per record — the property the root
// BenchmarkMetricsOverhead pins down.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// kind is the exposition TYPE of a family.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing series. The nil Counter discards
// all recordings.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Negative n is a programming error; it is discarded to keep
// the series monotone rather than panicking on a hot path.
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a series that can go up and down. The nil Gauge discards all
// recordings.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds n (n may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution: observation counts per
// upper-bound bucket, a running sum, and a total count, all atomic. The
// nil Histogram discards all observations.
type Histogram struct {
	// bounds are the inclusive bucket upper bounds, ascending; the
	// implicit +Inf bucket is counts[len(bounds)].
	bounds []float64
	counts []atomic.Int64
	count  atomic.Int64
	// sum holds math.Float64bits; updated by CAS (observations race only
	// under heavy contention, and the loop is lock-free).
	sum atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (≤ ~20) and the scan is
	// branch-predictable; a binary search saves nothing at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// ExpBuckets returns n exponential bucket bounds: start, start*factor,
// start*factor², … — the shape latency histograms want. It panics on
// non-positive start, factor ≤ 1, or n < 1 (construction time, not hot
// path).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExpBuckets wants start > 0, factor > 1, n ≥ 1")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// DefBuckets is the default latency bucket layout, in seconds: 100µs to
// ~52s in ×2 steps — wide enough for a microbatch and a multi-second
// mega-batch on one scale.
func DefBuckets() []float64 { return ExpBuckets(100e-6, 2, 20) }

// family is one registered metric name: TYPE, HELP, label names, and the
// children keyed by label-value tuple (the unlabelled instrument is the
// single child under the empty key).
type family struct {
	name   string
	help   string
	kind   kind
	labels []string
	bounds []float64 // histograms only

	mu       sync.Mutex
	children map[string]*child
}

// child is one series: its label values plus exactly one live instrument
// (by family kind).
type child struct {
	values []string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// labelKey joins label values unambiguously (values may contain any
// bytes, so a plain join could collide; length-prefix each value).
func labelKey(values []string) string {
	key := make([]byte, 0, 16*len(values))
	for _, v := range values {
		key = append(key, fmt.Sprintf("%d:", len(v))...)
		key = append(key, v...)
	}
	return string(key)
}

// get resolves (or creates) the child for the given label values.
func (f *family) get(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: family %s has %d labels, got %d values", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch, ok := f.children[key]; ok {
		return ch
	}
	ch := &child{values: append([]string(nil), values...)}
	switch f.kind {
	case kindCounter:
		ch.c = &Counter{}
	case kindGauge:
		ch.g = &Gauge{}
	case kindHistogram:
		h := &Histogram{bounds: f.bounds}
		h.counts = make([]atomic.Int64, len(f.bounds)+1)
		ch.h = h
	}
	f.children[key] = ch
	return ch
}

// snapshot returns the children sorted by label values, for deterministic
// exposition.
func (f *family) snapshot() []*child {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*child, 0, len(f.children))
	for _, ch := range f.children {
		out = append(out, ch)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].values, out[j].values
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// Registry owns a set of metric families. The nil *Registry is the
// disabled mode: every constructor on it returns nil, and nil instruments
// discard recordings for free. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // registration order; exposition sorts by name anyway
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{families: make(map[string]*family)} }

// register creates (or fetches) a family, enforcing that a name keeps one
// TYPE and label arity for the registry's lifetime.
func (r *Registry) register(name, help string, k kind, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != k || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("metrics: family %s re-registered with a different type or label set", name))
		}
		return f
	}
	f := &family{name: name, help: help, kind: k, labels: append([]string(nil), labels...), children: make(map[string]*child)}
	if k == kindHistogram {
		if len(bounds) == 0 {
			bounds = DefBuckets()
		}
		f.bounds = append([]float64(nil), bounds...)
	}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// Counter registers (or fetches) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindCounter, nil, nil).get(nil).c
}

// Gauge registers (or fetches) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindGauge, nil, nil).get(nil).g
}

// Histogram registers (or fetches) an unlabelled histogram. Empty bounds
// select DefBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindHistogram, nil, bounds).get(nil).h
}

// CounterVec registers (or fetches) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.register(name, help, kindCounter, labels, nil)}
}

// GaugeVec registers (or fetches) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.register(name, help, kindGauge, labels, nil)}
}

// HistogramVec registers (or fetches) a labelled histogram family. Empty
// bounds select DefBuckets.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.register(name, help, kindHistogram, labels, bounds)}
}

// CounterVec is a labelled counter family; With resolves one child
// series. The nil Vec resolves nil children.
type CounterVec struct{ f *family }

// With returns the child counter for the label values (nil on a nil Vec).
// Resolution locks the family: resolve once, hold the pointer.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.get(values).c
}

// GaugeVec is a labelled gauge family.
type GaugeVec struct{ f *family }

// With returns the child gauge for the label values (nil on a nil Vec).
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.get(values).g
}

// HistogramVec is a labelled histogram family.
type HistogramVec struct{ f *family }

// With returns the child histogram for the label values (nil on a nil
// Vec).
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.get(values).h
}
