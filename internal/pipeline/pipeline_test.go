package pipeline

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/tracespan"
)

// countingExec returns an Exec that tallies batches and edges and reports
// every edge as merged, for callback-contract tests that need no DSU.
func countingExec(batches, edges *atomic.Int64) Exec {
	return func(b []exec.Edge, opts any, _ *tracespan.Trace) Result {
		batches.Add(1)
		edges.Add(int64(len(b)))
		return Result{Result: exec.Result{Merged: int64(len(b))}}
	}
}

// TestCallbackContract pins the delivery guarantees: exactly one callback
// per sealed batch, ids dense and in order, size-triggered batches exactly
// BufferSize long, Close seals the remainder and drains everything.
func TestCallbackContract(t *testing.T) {
	var batches, edges atomic.Int64
	var got []Result
	p := New(countingExec(&batches, &edges), Config{
		BufferSize: 8,
		Callback:   func(r Result) { got = append(got, r) },
	})
	const total = 8*5 + 3 // five full batches and a remainder
	for i := 0; i < total; i++ {
		if err := p.Push(exec.Edge{X: uint32(i), Y: uint32(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if len(got) != 6 {
		t.Fatalf("callbacks = %d, want 6", len(got))
	}
	sum := 0
	for i, r := range got {
		if r.ID != uint64(i+1) {
			t.Errorf("callback %d has id %d, want %d (in-order, dense)", i, r.ID, i+1)
		}
		if r.Err != nil {
			t.Errorf("batch %d: unexpected err %v", r.ID, r.Err)
		}
		want := 8
		if i == 5 {
			want = 3
		}
		if r.Edges != want {
			t.Errorf("batch %d edges = %d, want %d", r.ID, r.Edges, want)
		}
		sum += r.Edges
	}
	if sum != total || edges.Load() != total {
		t.Errorf("drained %d edges via callbacks, %d via exec, want %d", sum, edges.Load(), total)
	}
	if batches.Load() != 6 {
		t.Errorf("exec ran %d times, want 6", batches.Load())
	}
}

// TestFlushAndClosedErrors pins Flush semantics (short batch with the
// per-batch payload; empty flush is a no-op) and the ErrClosed contract.
func TestFlushAndClosedErrors(t *testing.T) {
	var payloads []any
	p := New(func(b []exec.Edge, opts any, _ *tracespan.Trace) Result {
		payloads = append(payloads, opts)
		return Result{}
	}, Config{BufferSize: 100})

	if err := p.Flush("ignored"); err != nil {
		t.Fatalf("empty Flush: %v", err)
	}
	if err := p.Push(exec.Edge{X: 1, Y: 2}); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush("batch-opts"); err != nil {
		t.Fatal(err)
	}
	if err := p.Push(exec.Edge{X: 3, Y: 4}); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if len(payloads) != 2 {
		t.Fatalf("exec ran %d times, want 2 (empty flush must not seal)", len(payloads))
	}
	if payloads[0] != "batch-opts" {
		t.Errorf("flushed batch payload = %v, want batch-opts", payloads[0])
	}
	if payloads[1] != nil {
		t.Errorf("close-sealed batch payload = %v, want nil", payloads[1])
	}

	if err := p.Push(exec.Edge{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Push after Close = %v, want ErrClosed", err)
	}
	if err := p.Flush(nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Flush after Close = %v, want ErrClosed", err)
	}
	if err := p.Close(); err != nil {
		t.Errorf("second Close = %v, want nil (idempotent)", err)
	}
}

// TestBackpressure pins the MaxInFlight bound: with the dispatcher gated
// on batch 1 and MaxInFlight=1, sealing batch 2 must block until the gate
// opens.
func TestBackpressure(t *testing.T) {
	gate := make(chan struct{})
	var started atomic.Int64
	p := New(func(b []exec.Edge, opts any, _ *tracespan.Trace) Result {
		started.Add(1)
		<-gate
		return Result{}
	}, Config{BufferSize: 1, MaxInFlight: 1})

	if err := p.Push(exec.Edge{X: 0, Y: 1}); err != nil { // seals batch 1; dispatcher blocks in exec
		t.Fatal(err)
	}
	for started.Load() == 0 {
		time.Sleep(time.Millisecond) // wait for the dispatcher to enter exec
	}

	var unblocked atomic.Bool
	pushed := make(chan struct{})
	go func() {
		p.Push(exec.Edge{X: 2, Y: 3}) // seals batch 2: must block, dispatcher is busy
		unblocked.Store(true)
		close(pushed)
	}()
	time.Sleep(50 * time.Millisecond)
	if unblocked.Load() {
		t.Fatal("second seal returned while the dispatcher was gated: MaxInFlight not enforced")
	}
	close(gate)
	<-pushed
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if started.Load() != 2 {
		t.Fatalf("exec ran %d times, want 2", started.Load())
	}
}

// TestContextAbort pins the cancellation contract: batches sealed after
// the cancellation point are abandoned — callback fires with Err set, exec
// never sees them — and Close reports the context error.
func TestContextAbort(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var execs atomic.Int64
	var mu sync.Mutex
	var got []Result
	p := New(func(b []exec.Edge, opts any, _ *tracespan.Trace) Result {
		execs.Add(1)
		return Result{Result: exec.Result{Merged: 1}}
	}, Config{BufferSize: 2, Context: ctx, Callback: func(r Result) {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
	}})

	if err := p.Push(exec.Edge{X: 0, Y: 1}, exec.Edge{X: 1, Y: 2}); err != nil {
		t.Fatal(err)
	}
	// Let batch 1 drain before cancelling so its success is deterministic.
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := p.Push(exec.Edge{X: 2, Y: 3}, exec.Edge{X: 3, Y: 4}); err != nil {
		t.Fatal(err) // Push still accepts; the batch is abandoned at dispatch
	}
	if err := p.Close(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close = %v, want context.Canceled", err)
	}
	if execs.Load() != 1 {
		t.Errorf("exec ran %d times, want 1 (post-cancel batch must not execute)", execs.Load())
	}
	if len(got) != 2 {
		t.Fatalf("callbacks = %d, want 2 (abandoned batches still report)", len(got))
	}
	if got[0].Err != nil {
		t.Errorf("batch 1 err = %v, want nil", got[0].Err)
	}
	if !errors.Is(got[1].Err, context.Canceled) {
		t.Errorf("batch 2 err = %v, want context.Canceled", got[1].Err)
	}
}

// TestLateCancelIsNotAnError pins Close's refinement: a cancellation that
// arrives after every batch already executed abandoned nothing, so Close
// reports success.
func TestLateCancelIsNotAnError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	var results []Result
	p := New(func(b []exec.Edge, opts any, _ *tracespan.Trace) Result {
		return Result{Result: exec.Result{Merged: int64(len(b))}}
	}, Config{BufferSize: 2, Context: ctx, Callback: func(r Result) {
		mu.Lock()
		results = append(results, r)
		mu.Unlock()
	}})
	if err := p.Push(exec.Edge{X: 0, Y: 1}, exec.Edge{X: 1, Y: 2}); err != nil {
		t.Fatal(err)
	}
	// Drain fully, then cancel: nothing is in flight to abandon.
	for {
		mu.Lock()
		n := len(results)
		mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := p.Close(); err != nil {
		t.Fatalf("Close after a no-loss cancellation = %v, want nil", err)
	}
	if results[0].Err != nil {
		t.Fatalf("batch errored: %v", results[0].Err)
	}
}

// TestExecPanicRecovered pins that a panicking batch run becomes that
// batch's Err and the pipeline keeps serving later batches.
func TestExecPanicRecovered(t *testing.T) {
	var got []Result
	p := New(func(b []exec.Edge, opts any, _ *tracespan.Trace) Result {
		if b[0].X == 13 {
			panic("unlucky batch")
		}
		return Result{Result: exec.Result{Merged: 7}}
	}, Config{BufferSize: 1, Callback: func(r Result) { got = append(got, r) }})

	for _, x := range []uint32{1, 13, 2} {
		if err := p.Push(exec.Edge{X: x, Y: x + 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("callbacks = %d, want 3", len(got))
	}
	if got[0].Err != nil || got[2].Err != nil {
		t.Errorf("healthy batches errored: %v, %v", got[0].Err, got[2].Err)
	}
	if got[1].Err == nil {
		t.Error("panicking batch reported no error")
	}
	if got[2].Merged != 7 {
		t.Errorf("batch after panic merged = %d, want 7 (pipeline must keep serving)", got[2].Merged)
	}
}

// TestConcurrentProducers drives many producers into one pipeline and
// checks nothing is lost or double-counted.
func TestConcurrentProducers(t *testing.T) {
	var edges atomic.Int64
	var cbEdges atomic.Int64
	p := New(func(b []exec.Edge, opts any, _ *tracespan.Trace) Result {
		edges.Add(int64(len(b)))
		return Result{}
	}, Config{BufferSize: 64, MaxInFlight: 2, Callback: func(r Result) { cbEdges.Add(int64(r.Edges)) }})

	const producers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := p.Push(exec.Edge{X: uint32(w), Y: uint32(i)}); err != nil {
					t.Errorf("producer %d: %v", w, err)
					return
				}
				if i%97 == 0 {
					if err := p.Flush(nil); err != nil {
						t.Errorf("producer %d flush: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if want := int64(producers * per); edges.Load() != want || cbEdges.Load() != want {
		t.Fatalf("exec saw %d edges, callbacks %d, want %d", edges.Load(), cbEdges.Load(), want)
	}
}

// TestFlushSurfacesCancellation pins the fail-fast contract: once the
// pipeline context is cancelled, Flush reports the context error at the
// call site instead of sealing a batch the dispatcher would only abandon.
// The buffered edges are abandoned by Close, which reports the same error.
func TestFlushSurfacesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var execs atomic.Int64
	p := New(func(b []exec.Edge, opts any, _ *tracespan.Trace) Result {
		execs.Add(1)
		return Result{}
	}, Config{BufferSize: 1 << 20, Context: ctx})

	if err := p.Push(exec.Edge{X: 0, Y: 1}); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := p.Flush(nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("Flush after cancel = %v, want context.Canceled", err)
	}
	if err := p.Close(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close = %v, want context.Canceled (buffered remainder was abandoned)", err)
	}
	if execs.Load() != 0 {
		t.Fatalf("exec ran %d times, want 0", execs.Load())
	}
}
