// Package pipeline is the asynchronous streaming ingestion subsystem: an
// accumulator that grows edges into double-buffered batches, a bounded
// channel handing sealed batches to a dispatcher, and per-batch completion
// callbacks — so callers stream edges and results instead of blocking per
// batch. Alistarh et al. ("In Search of the Fastest Concurrent Union-Find
// Algorithm") observe that throughput is dominated by keeping workers fed;
// overlapping batch accumulation with UniteAll execution is this repo's
// answer (the ROADMAP's async-pipelines item).
//
// # Shape
//
// Push appends edges to the active buffer. When the buffer reaches the
// seal threshold (or Flush seals it explicitly), the batch is handed to
// the dispatcher over a channel whose capacity bounds the number of sealed
// batches waiting past the accumulator — MaxInFlight is the backpressure
// knob, and its default of one is classic double buffering: the dispatcher
// executes batch k while the accumulator fills batch k+1, and a producer
// that gets two batches ahead blocks in Push until the dispatcher catches
// up. Buffers recycle through a small free list, so steady-state ingestion
// allocates nothing per batch.
//
// The dispatcher is a single goroutine by default: batches execute
// strictly in seal order, the callback fires exactly once per sealed
// batch (execution errors included), callbacks are serialized and ordered
// by batch id, and Close returns only after every sealed batch's callback
// has returned. Parallelism lives inside Exec (the engine's worker pool),
// not in the dispatch loop — which is what makes a stream of batches
// produce exactly the partition of a blocking batch loop over the same
// edge sequence.
//
// Config.Concurrent trades the ordering half of that contract for overlap:
// MaxInFlight dispatcher goroutines execute sealed batches simultaneously,
// for backends whose batch calls are safe to overlap (the execution
// layer's concurrent capability — dsu.ConcurrentBackend). Batches may
// execute and complete out of seal order; callbacks remain serialized and
// exactly-once (completion order, with Result.ID still carrying the seal
// sequence), and the exactly-one-partition guarantee holds because unite
// batches are order-independent — the final partition is the union of
// every applied edge. The backpressure contract is unchanged: at most
// MaxInFlight sealed batches exist past the accumulator.
//
// # Shutdown
//
// Close seals any buffered remainder, drains all in-flight work, and stops
// the dispatcher. Cancelling the Config.Context aborts instead: batches
// not yet executing when the cancellation is observed are abandoned — their
// callbacks fire with Err set and the structure never sees their edges —
// while an Exec already running completes (the engine has no preemption
// points). Push and Flush after Close report ErrClosed.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/tracespan"
)

// ErrClosed is reported by Push and Flush after Close.
var ErrClosed = errors.New("pipeline: closed")

// defaultBufferSize matches the engine's sweet spot: big enough that the
// pool's span protocol is amortized, small enough to keep latency bounded.
const defaultBufferSize = 1 << 16

// Result reports one sealed batch's execution, delivered to the callback
// exactly once per batch, in batch-id order. The embedded exec.Result is
// the batch run's full unified record — Merged, Filtered, per-phase
// fields, Stats(), Elapsed — exactly as the backend reported it (zero
// when Err is set), so stream callbacks see the same accounting blocking
// callers do.
type Result struct {
	// ID is the batch's 1-based seal sequence number.
	ID uint64
	// Edges is the sealed batch's edge count (before any filter pass).
	Edges int
	// Result is the batch run's execution record.
	exec.Result
	// Err is non-nil when the batch was abandoned (context cancelled
	// before execution) or its Exec panicked; the batch's edges did not
	// (fully) reach the structure.
	Err error
	// Trace is the batch's span tree when the pipeline is traced
	// (Config.Tracer set), nil otherwise. The callback runs before the
	// trace is finished, so a callback may still add spans — the server's
	// reply-encode stage does — but must not retain the trace past its
	// return.
	Trace *tracespan.Trace
}

// Exec runs one sealed batch against the backing structure and reports
// what it did. opts is the opaque per-batch override payload a caller
// passed to Flush (nil for size-triggered seals); the dsu layer threads
// its batch options through it. tr is the batch's trace (nil untraced);
// the dsu layer threads it into exec.Config so the executor's spans land
// in it. Exec runs on the dispatcher goroutine; panics are recovered
// into Result.Err.
type Exec func(edges []exec.Edge, opts any, tr *tracespan.Trace) Result

// Config tunes one Pipeline.
type Config struct {
	// BufferSize is the seal threshold in edges; values ≤ 0 select the
	// default (65536). Size-triggered batches hold exactly BufferSize
	// edges; Flush and Close may seal shorter ones.
	BufferSize int
	// MaxInFlight bounds how many sealed batches may exist past the
	// accumulator (waiting or executing); values ≤ 0 select 1, classic
	// double buffering. A Push or Flush that would seal beyond the bound
	// blocks until the dispatcher frees a slot — the backpressure contract.
	// With Concurrent set it is also the dispatcher-goroutine count: how
	// many batches execute simultaneously.
	MaxInFlight int
	// Concurrent runs MaxInFlight dispatcher goroutines instead of one,
	// executing sealed batches simultaneously — only sound over a backend
	// whose batch calls may overlap (the dsu layer gates this on its
	// ConcurrentBackend capability). Batches may complete out of seal
	// order; callbacks stay serialized and exactly-once, delivered in
	// completion order with Result.ID carrying the seal sequence.
	Concurrent bool
	// Callback, when non-nil, receives every batch's Result on a
	// dispatcher goroutine: serialized, exactly once per sealed batch, in
	// batch-id order (completion order under Concurrent). It must return;
	// a callback that blocks stalls the whole pipeline (that is the point
	// — results apply backpressure too). It must not call back into the
	// pipeline: a Push or Flush that seals a batch from inside the
	// callback blocks sending to the dispatcher — which is busy running
	// the callback — and a Close waits for a dispatcher that is waiting on
	// the callback; either deadlocks.
	Callback func(Result)
	// Context, when non-nil, aborts the pipeline on cancellation: batches
	// observed after the cancellation are abandoned with their callbacks
	// fired Err-set. nil means never cancelled.
	Context context.Context
	// Gauges are the live introspection hooks; the zero value records
	// nothing (see Gauges).
	Gauges Gauges
	// Tracer, when non-nil, traces every sealed batch: a trace starts
	// when the first edge enters an empty buffer (opening the seal span),
	// queue-wait and dispatch spans bracket the handoff, and the finished
	// tree is recorded after the callback returns. Nil means untraced —
	// the pipeline then never allocates a trace and every span call is a
	// nil no-op.
	Tracer *tracespan.Recorder
}

// Gauges are the pipeline's live introspection hooks, fed from the seal
// and dispatch paths. Every field is nil-safe (recording on a nil
// instrument is free), so the zero value means "uninstrumented" and the
// pipeline records unconditionally. The dsu layer resolves these from
// its per-tenant metrics registry when a tenant is instrumented.
type Gauges struct {
	// Active counts open pipelines: Inc at New, Dec when Close begins.
	Active *metrics.Gauge
	// InFlight counts sealed batches past the accumulator — waiting in
	// the dispatch channel, blocked in the backpressure send, or
	// executing. When it sits at MaxInFlight, producers are blocked in
	// Push: the saturation signal.
	InFlight *metrics.Gauge
	// Executing counts batches currently inside Exec; InFlight minus
	// Executing is the sealed-batch queue depth.
	Executing *metrics.Gauge
	// Recycled counts buffers returned through the free list — when it
	// stops tracking batch count, the free list is overflowing and
	// steady-state ingestion is allocating.
	Recycled *metrics.Counter
}

// sealed is one batch in flight between the accumulator and dispatcher.
type sealed struct {
	id    uint64
	edges []exec.Edge
	opts  any
	tr    *tracespan.Trace  // the batch's trace (nil untraced)
	qw    tracespan.SpanRef // its open queue-wait span
}

// Pipeline is the streaming ingestion front. Push, Flush, and Close are
// safe for concurrent use by any number of producers; the zero value is
// not usable, call New.
type Pipeline struct {
	exec   Exec
	cb     func(Result)
	ctx    context.Context
	size   int
	g      Gauges
	tracer *tracespan.Recorder

	mu     sync.Mutex
	buf    []exec.Edge
	nextID uint64
	closed bool
	// tr/seal are the active buffer's trace and its open seal span,
	// started when the first edge lands in an empty buffer and handed to
	// the dispatcher at seal (both nil/zero when untraced).
	tr   *tracespan.Trace
	seal tracespan.SpanRef

	batches chan sealed      // sized so executing + waiting batches ≤ MaxInFlight
	free    chan []exec.Edge // recycled buffers
	done    chan struct{}    // closed when every dispatcher has exited
	// cbmu serializes callback delivery: a no-op with one dispatcher, the
	// completion-order guarantee with Concurrent's many.
	cbmu sync.Mutex
	// abandoned records that a cancellation cost at least one batch.
	// Dispatchers set it before done closes; Close reads it after <-done.
	abandoned atomic.Bool
}

// New starts a pipeline delivering sealed batches to run. It panics on a
// nil run; the returned Pipeline must be Closed to release its
// dispatcher.
func New(run Exec, cfg Config) *Pipeline {
	if run == nil {
		panic("pipeline: nil Exec")
	}
	size := cfg.BufferSize
	if size <= 0 {
		size = defaultBufferSize
	}
	inflight := cfg.MaxInFlight
	if inflight <= 0 {
		inflight = 1
	}
	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}
	// One dispatcher holding a batch plus inflight−1 channel slots keeps
	// sealed batches past the accumulator ≤ inflight; with Concurrent the
	// inflight dispatchers are the slots, and the channel is unbuffered.
	dispatchers, capacity := 1, inflight-1
	if cfg.Concurrent {
		dispatchers, capacity = inflight, 0
	}
	p := &Pipeline{
		exec:    run,
		cb:      cfg.Callback,
		ctx:     ctx,
		size:    size,
		g:       cfg.Gauges,
		tracer:  cfg.Tracer,
		buf:     make([]exec.Edge, 0, size),
		batches: make(chan sealed, capacity),
		free:    make(chan []exec.Edge, inflight+1),
		done:    make(chan struct{}),
	}
	p.g.Active.Inc()
	var wg sync.WaitGroup
	wg.Add(dispatchers)
	for i := 0; i < dispatchers; i++ {
		go func() {
			defer wg.Done()
			p.dispatch()
		}()
	}
	go func() {
		wg.Wait()
		close(p.done)
	}()
	return p
}

// BufferSize returns the resolved seal threshold.
func (p *Pipeline) BufferSize() int { return p.size }

// Push appends edges to the active buffer, sealing a batch each time the
// buffer reaches the threshold. It blocks while the dispatcher is
// MaxInFlight batches behind and returns ErrClosed after Close. Edges are
// copied before Push returns; the caller may reuse its slice.
func (p *Pipeline) Push(edges ...exec.Edge) error {
	return p.PushLinked(tracespan.Context{}, edges...)
}

// PushLinked is Push carrying a remote trace context: when the pipeline
// is traced, the batch the edges land in adopts the link's trace ID (the
// first link a batch sees wins — later frames accumulating into the same
// batch keep the established identity). An invalid (zero) link makes
// PushLinked exactly Push; an untraced pipeline ignores links entirely.
// The server's stream handler threads each traced frame's context
// through here, which is how a remote client's trace ID ends up on the
// span tree its edges execute under.
func (p *Pipeline) PushLinked(link tracespan.Context, edges ...exec.Edge) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	for len(edges) > 0 {
		if len(p.buf) == 0 && p.tracer != nil && p.tr == nil {
			p.tr = p.tracer.Start(tracespan.OpUnite, tracespan.SourceStream)
			p.seal = p.tr.Start(tracespan.StageSeal, tracespan.Root)
		}
		p.tr.Adopt(link)
		take := p.size - len(p.buf)
		if take > len(edges) {
			take = len(edges)
		}
		p.buf = append(p.buf, edges[:take]...)
		edges = edges[take:]
		if len(p.buf) >= p.size {
			p.sealLocked(nil)
		}
	}
	return nil
}

// Flush seals the active buffer even below the threshold, passing opts as
// the batch's per-batch override payload (nil uses the stream defaults).
// Flushing an empty buffer is a no-op: no batch, no callback. Flush
// blocks under the same backpressure as Push and returns ErrClosed after
// Close.
//
// Once the Config.Context is cancelled, Flush fails fast with the
// context's error instead of sealing a batch that the dispatcher would
// only abandon: the caller learns the stream is dead at the call site —
// what a server draining a connection needs for clean shutdown — rather
// than from a silently dropped batch. The buffered edges stay put; Close
// abandons them (and reports the same error). Push keeps accepting, so
// producers that don't check per-call errors retain the old drop-at-
// dispatch behavior.
func (p *Pipeline) Flush(opts any) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if err := p.ctx.Err(); err != nil {
		return err
	}
	if len(p.buf) > 0 {
		p.sealLocked(opts)
	}
	return nil
}

// sealLocked hands the active buffer to the dispatcher and installs a
// fresh one. The blocking send is the backpressure. For any producer off
// the dispatcher goroutine it cannot deadlock — the dispatcher drains the
// channel unconditionally until Close, fast-failing batches after a
// context cancellation instead of stopping — but a seal from inside the
// callback blocks against the dispatcher running that callback, which is
// why Config.Callback forbids re-entrant calls.
func (p *Pipeline) sealLocked(opts any) {
	p.nextID++
	tr, seal := p.tr, p.seal
	p.tr, p.seal = nil, 0
	tr.End(seal)
	if a := tr.Attrs(tracespan.Root); a != nil {
		a.Edges = int64(len(p.buf))
	}
	// The queue-wait span opens before the (possibly blocking) handoff:
	// time spent in the backpressure send and in the channel is exactly
	// what it measures; the dispatcher ends it on pickup.
	qw := tr.Start(tracespan.StageQueueWait, tracespan.Root)
	// Inc before the (possibly blocking) send: a batch stuck in the
	// backpressure send is in flight from the producer's point of view,
	// which is exactly when the gauge pinned at MaxInFlight matters.
	p.g.InFlight.Inc()
	p.batches <- sealed{id: p.nextID, edges: p.buf, opts: opts, tr: tr, qw: qw}
	select {
	case b := <-p.free:
		p.buf = b
	default:
		p.buf = make([]exec.Edge, 0, p.size)
	}
}

// Close seals any buffered remainder, waits for every sealed batch to
// execute and its callback to return, and stops the dispatcher. It
// returns the context's error when a cancellation abandoned at least one
// batch, nil otherwise — a cancellation that arrives after every batch
// already executed lost nothing and is not an error. Close is idempotent
// and safe concurrently with producers: a producer blocked in Push
// finishes first, then sees ErrClosed on its next call.
func (p *Pipeline) Close() error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		p.g.Active.Dec()
		if len(p.buf) > 0 {
			p.sealLocked(nil)
		}
		close(p.batches)
	}
	p.mu.Unlock()
	<-p.done
	if p.abandoned.Load() {
		return p.ctx.Err()
	}
	return nil
}

// dispatch is one dispatcher goroutine: execute batches as received (seal
// order alone, or overlapping with its siblings under Concurrent),
// deliver callbacks, recycle buffers.
func (p *Pipeline) dispatch() {
	for b := range p.batches {
		b.tr.End(b.qw)
		dsp := b.tr.Start(tracespan.StageDispatch, tracespan.Root)
		p.g.Executing.Inc()
		res := p.runBatch(b)
		p.g.Executing.Dec()
		b.tr.End(dsp)
		res.ID = b.id
		res.Edges = len(b.edges)
		res.Trace = b.tr
		if res.Err != nil {
			if a := b.tr.Attrs(tracespan.Root); a != nil {
				a.Err = res.Err.Error()
			}
		}
		if p.cb != nil {
			p.cbmu.Lock()
			p.cb(res)
			p.cbmu.Unlock()
		}
		// Finish after the callback: a callback may add spans (the
		// server's reply-encode); once recorded the trace is immutable.
		p.tracer.Finish(b.tr)
		p.g.InFlight.Dec()
		select {
		case p.free <- b.edges[:0]:
			p.g.Recycled.Inc()
		default: // free list full; let the buffer go to the GC
		}
	}
}

// runBatch executes one sealed batch, converting a context cancellation
// into an abandoned Result and an Exec panic into an error the stream
// survives.
func (p *Pipeline) runBatch(b sealed) (res Result) {
	if err := p.ctx.Err(); err != nil {
		p.abandoned.Store(true)
		return Result{Err: err}
	}
	defer func() {
		if r := recover(); r != nil {
			res = Result{Err: fmt.Errorf("pipeline: batch %d exec panicked: %v", b.id, r)}
		}
	}()
	return p.exec(b.edges, b.opts, b.tr)
}
