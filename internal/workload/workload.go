// Package workload generates the operation sequences driven through the
// disjoint-set structures by tests, benchmarks, and the experiment harness:
// random union/find mixes, skewed (Zipf) mixes, adversarial chains and
// stars, and the two constructions from Section 5 of the paper — the
// binomial-style Unite schedule of Lemma 5.3 that forces average node depth
// Ω(log k), and the Theorem 5.4 lower-bound workload that forces total work
// Ω(m log(np/m)).
//
// All generators are deterministic in their seed.
package workload

import (
	"fmt"

	"repro/internal/randutil"
)

// OpKind distinguishes the two exposed operations. The paper's interface
// deliberately exposes only SameSet and Unite (Section 5.4 explains Find can
// be recovered with a spare element).
type OpKind uint8

const (
	// OpUnite merges the sets of X and Y.
	OpUnite OpKind = iota + 1
	// OpSameSet queries whether X and Y share a set.
	OpSameSet
)

// Op is one disjoint-set operation.
type Op struct {
	Kind OpKind
	X, Y uint32
}

// String renders the operation for logs and test failures.
func (o Op) String() string {
	switch o.Kind {
	case OpUnite:
		return fmt.Sprintf("Unite(%d,%d)", o.X, o.Y)
	case OpSameSet:
		return fmt.Sprintf("SameSet(%d,%d)", o.X, o.Y)
	default:
		return fmt.Sprintf("Op(%d,%d,%d)", o.Kind, o.X, o.Y)
	}
}

// RandomUnions returns m Unites over uniformly random pairs of n elements.
func RandomUnions(n, m int, seed uint64) []Op {
	requirePositive(n, m)
	rng := randutil.NewXoshiro256(seed)
	ops := make([]Op, m)
	for i := range ops {
		ops[i] = Op{OpUnite, uint32(rng.Intn(n)), uint32(rng.Intn(n))}
	}
	return ops
}

// Mixed returns m operations over n elements where each op is a Unite with
// probability uniteFrac and a SameSet otherwise, on uniform random pairs.
func Mixed(n, m int, uniteFrac float64, seed uint64) []Op {
	requirePositive(n, m)
	if uniteFrac < 0 || uniteFrac > 1 {
		panic("workload: uniteFrac outside [0,1]")
	}
	rng := randutil.NewXoshiro256(seed)
	ops := make([]Op, m)
	for i := range ops {
		kind := OpSameSet
		if rng.Float64() < uniteFrac {
			kind = OpUnite
		}
		ops[i] = Op{kind, uint32(rng.Intn(n)), uint32(rng.Intn(n))}
	}
	return ops
}

// ZipfMixed is Mixed with element choices drawn from a Zipf distribution of
// the given skew (s > 0), creating hot elements that concentrate contention.
func ZipfMixed(n, m int, uniteFrac, skew float64, seed uint64) []Op {
	requirePositive(n, m)
	rng := randutil.NewXoshiro256(seed)
	z := randutil.NewZipf(rng, n, skew)
	ops := make([]Op, m)
	for i := range ops {
		kind := OpSameSet
		if rng.Float64() < uniteFrac {
			kind = OpUnite
		}
		ops[i] = Op{kind, uint32(z.Next()), uint32(z.Next())}
	}
	return ops
}

// CommunityUnions returns m Unites over n elements grouped into (at most) c
// contiguous equal-width communities: each edge picks a home community and,
// with probability pIntra, keeps both endpoints inside it; otherwise the
// second endpoint lands in a different community. This models the locality
// of real graphs — most edges stay inside a community, few cross — and,
// because communities are contiguous blocks, it maps directly onto the
// sharded structure's block partition (aligned when c is a multiple of the
// shard count), making it the workload that separates sharded from flat
// behaviour.
func CommunityUnions(n, m, c int, pIntra float64, seed uint64) []Op {
	requirePositive(n, m)
	if c < 1 || c > n {
		panic("workload: community count must be in 1..n")
	}
	if pIntra < 0 || pIntra > 1 {
		panic("workload: pIntra outside [0,1]")
	}
	rng := randutil.NewXoshiro256(seed)
	block := (n + c - 1) / c
	c = (n + block - 1) / block // ceil-width blocks may cover n in fewer pieces
	pick := func(comm int) uint32 {
		lo := comm * block
		hi := lo + block
		if hi > n {
			hi = n
		}
		return uint32(lo + rng.Intn(hi-lo))
	}
	ops := make([]Op, m)
	for i := range ops {
		home := rng.Intn(c)
		x := pick(home)
		var y uint32
		if c == 1 || rng.Float64() < pIntra {
			y = pick(home)
		} else {
			other := rng.Intn(c - 1)
			if other >= home {
				other++
			}
			y = pick(other)
		}
		ops[i] = Op{OpUnite, x, y}
	}
	return ops
}

// Chain returns the n−1 Unites (i, i+1) that join all elements into one
// long component, a classic adversarial sequence for naive linking.
func Chain(n int) []Op {
	requirePositive(n, 1)
	ops := make([]Op, 0, n-1)
	for i := 0; i+1 < n; i++ {
		ops = append(ops, Op{OpUnite, uint32(i), uint32(i + 1)})
	}
	return ops
}

// Star returns the n−1 Unites (0, i), concentrating every link on one hub.
func Star(n int) []Op {
	requirePositive(n, 1)
	ops := make([]Op, 0, n-1)
	for i := 1; i < n; i++ {
		ops = append(ops, Op{OpUnite, 0, uint32(i)})
	}
	return ops
}

// BinomialPairing returns the Lemma 5.3 construction over elements
// lo..lo+k−1: unite sets in pairs through their representatives, lg k
// rounds, producing a k-node tree whose average node depth is Ω(log k) even
// though every find splits. k need not be a power of two; the tail block is
// folded in at the end exactly as the lemma's proof does.
func BinomialPairing(lo uint32, k int) []Op {
	if k <= 0 {
		panic("workload: BinomialPairing with k <= 0")
	}
	// Largest power of two ≤ k.
	pow := 1
	for pow*2 <= k {
		pow *= 2
	}
	var ops []Op
	// Representatives are the block leaders: after round i, element
	// lo+j·2^(i+1) represents the block of size 2^(i+1) starting there.
	for gap := 1; gap < pow; gap *= 2 {
		for j := 0; j+gap < pow; j += 2 * gap {
			ops = append(ops, Op{OpUnite, lo + uint32(j), lo + uint32(j+gap)})
		}
	}
	// Fold in the remainder as the lemma does: build the leftover elements
	// into an arbitrary tree (a chain of unites) and unite with the power-
	// of-two tree through its representative.
	for j := pow; j < k; j++ {
		ops = append(ops, Op{OpUnite, lo + uint32(pow), lo + uint32(j)})
	}
	if pow < k {
		ops = append(ops, Op{OpUnite, lo, lo + uint32(pow)})
	}
	return ops
}

// MultiWorkload is a two-phase concurrent workload: Setup runs to completion
// on one process before the measured phase, in which process i executes
// PerProc[i].
type MultiWorkload struct {
	Setup   []Op
	PerProc [][]Op
}

// Ops returns the total number of operations in the measured phase.
func (w MultiWorkload) Ops() int {
	total := 0
	for _, ops := range w.PerProc {
		total += len(ops)
	}
	return total
}

// LowerBound builds the Theorem 5.4 part-2 workload: n/δ trees of δ nodes
// each with expected node depth Ω(log δ) (via BinomialPairing), then every
// one of the p processes performs SameSet(xᵢ, xᵢ) for a randomly chosen
// node xᵢ of each tree Tᵢ. Run in lockstep, each query pays the depth of
// xᵢ, forcing Ω(m log δ) total work. δ must divide n; the paper sets
// δ = np/(3m).
func LowerBound(n, p, delta int, seed uint64) MultiWorkload {
	requirePositive(n, 1)
	if p <= 0 {
		panic("workload: LowerBound with p <= 0")
	}
	if delta <= 0 || n%delta != 0 {
		panic("workload: LowerBound delta must be positive and divide n")
	}
	trees := n / delta
	var setup []Op
	for t := 0; t < trees; t++ {
		setup = append(setup, BinomialPairing(uint32(t*delta), delta)...)
	}
	rng := randutil.NewXoshiro256(seed)
	queries := make([]Op, trees)
	for t := 0; t < trees; t++ {
		x := uint32(t*delta + rng.Intn(delta))
		queries[t] = Op{OpSameSet, x, x}
	}
	perProc := make([][]Op, p)
	for i := range perProc {
		// Each process performs the same query sequence; copied so callers
		// may shuffle per-process without aliasing.
		perProc[i] = append([]Op(nil), queries...)
	}
	return MultiWorkload{Setup: setup, PerProc: perProc}
}

// SplitRoundRobin deals ops round-robin to p processes, the default way the
// harness turns a sequential trace into a concurrent one.
func SplitRoundRobin(ops []Op, p int) [][]Op {
	if p <= 0 {
		panic("workload: SplitRoundRobin with p <= 0")
	}
	out := make([][]Op, p)
	for i := range out {
		out[i] = make([]Op, 0, (len(ops)+p-1)/p)
	}
	for i, op := range ops {
		out[i%p] = append(out[i%p], op)
	}
	return out
}

// SplitBlocks deals ops to p processes in contiguous blocks, preserving
// per-process locality.
func SplitBlocks(ops []Op, p int) [][]Op {
	if p <= 0 {
		panic("workload: SplitBlocks with p <= 0")
	}
	out := make([][]Op, p)
	chunk := (len(ops) + p - 1) / p
	for i := range out {
		lo := i * chunk
		hi := lo + chunk
		if lo > len(ops) {
			lo = len(ops)
		}
		if hi > len(ops) {
			hi = len(ops)
		}
		out[i] = ops[lo:hi]
	}
	return out
}

// SortedUnions returns the Chain workload's unions ordered so that the
// linearization order of Unites correlates perfectly with element order —
// the adversarial input for the independence-assumption ablation (E11):
// under the identity node order this produces maximal-depth link chains.
func SortedUnions(n int) []Op {
	return Chain(n)
}

func requirePositive(n, m int) {
	if n <= 0 {
		panic("workload: need at least one element")
	}
	if m < 0 {
		panic("workload: negative operation count")
	}
}
