package workload

import (
	"strings"
	"testing"

	"repro/internal/forest"
	"repro/internal/seqdsu"
)

func applyAll(d *seqdsu.DSU, ops []Op) {
	for _, op := range ops {
		switch op.Kind {
		case OpUnite:
			d.Unite(op.X, op.Y)
		case OpSameSet:
			d.SameSet(op.X, op.Y)
		}
	}
}

func TestCommunityUnionsShape(t *testing.T) {
	const n, m, c = 120, 600, 6
	ops := CommunityUnions(n, m, c, 0.9, 5)
	if len(ops) != m {
		t.Fatalf("len = %d, want %d", len(ops), m)
	}
	block := (n + c - 1) / c
	intra := 0
	for i, op := range ops {
		if op.Kind != OpUnite {
			t.Fatalf("op %d kind %v", i, op.Kind)
		}
		if op.X >= n || op.Y >= n {
			t.Fatalf("op %d out of range: %v", i, op)
		}
		if int(op.X)/block == int(op.Y)/block {
			intra++
		}
	}
	// With pIntra = 0.9 the intra fraction concentrates near 0.9; a generous
	// band keeps the check seed-robust while still catching a broken router.
	if frac := float64(intra) / float64(m); frac < 0.8 || frac > 0.98 {
		t.Errorf("intra fraction %.3f outside [0.8, 0.98]", frac)
	}
	same := CommunityUnions(n, m, c, 0.9, 5)
	for i := range ops {
		if ops[i] != same[i] {
			t.Fatal("CommunityUnions is not deterministic in its seed")
		}
	}
	// All-intra and all-cross extremes.
	for _, op := range CommunityUnions(n, m, c, 1.0, 7) {
		if int(op.X)/block != int(op.Y)/block {
			t.Fatalf("pIntra=1 produced cross edge %v", op)
		}
	}
	for _, op := range CommunityUnions(n, m, c, 0.0, 9) {
		if int(op.X)/block == int(op.Y)/block {
			t.Fatalf("pIntra=0 produced intra edge %v", op)
		}
	}
	// Single community degenerates to intra-only regardless of pIntra.
	for _, op := range CommunityUnions(50, 100, 1, 0.0, 11) {
		if op.X >= 50 || op.Y >= 50 {
			t.Fatalf("single community out of range: %v", op)
		}
	}
}

func TestCommunityUnionsPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { CommunityUnions(10, 5, 0, 0.5, 1) },
		func() { CommunityUnions(10, 5, 11, 0.5, 1) },
		func() { CommunityUnions(10, 5, 2, -0.1, 1) },
		func() { CommunityUnions(10, 5, 2, 1.1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic on invalid CommunityUnions arguments")
				}
			}()
			fn()
		}()
	}
}

func TestRandomUnionsShape(t *testing.T) {
	ops := RandomUnions(100, 250, 1)
	if len(ops) != 250 {
		t.Fatalf("len = %d", len(ops))
	}
	for i, op := range ops {
		if op.Kind != OpUnite {
			t.Fatalf("op %d kind %v", i, op.Kind)
		}
		if op.X >= 100 || op.Y >= 100 {
			t.Fatalf("op %d out of range: %v", i, op)
		}
	}
	// Deterministic per seed, different across seeds.
	same := RandomUnions(100, 250, 1)
	diff := RandomUnions(100, 250, 2)
	identical := true
	for i := range ops {
		if ops[i] != same[i] {
			t.Fatal("same seed produced different workload")
		}
		if ops[i] != diff[i] {
			identical = false
		}
	}
	if identical {
		t.Fatal("different seeds produced identical workload")
	}
}

func TestMixedFractions(t *testing.T) {
	ops := Mixed(50, 10000, 0.3, 7)
	unions := 0
	for _, op := range ops {
		if op.Kind == OpUnite {
			unions++
		}
	}
	if frac := float64(unions) / 10000; frac < 0.25 || frac > 0.35 {
		t.Errorf("union fraction %.3f far from 0.3", frac)
	}
	for _, bad := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Mixed(frac=%v) did not panic", bad)
				}
			}()
			Mixed(10, 10, bad, 0)
		}()
	}
}

func TestZipfMixedSkew(t *testing.T) {
	ops := ZipfMixed(1000, 20000, 0.5, 1.2, 3)
	counts := make([]int, 1000)
	for _, op := range ops {
		counts[op.X]++
		counts[op.Y]++
	}
	if counts[0] <= counts[500] {
		t.Errorf("expected element 0 hotter than element 500: %d vs %d", counts[0], counts[500])
	}
}

func TestChainAndStarConnect(t *testing.T) {
	for name, gen := range map[string]func(int) []Op{"chain": Chain, "star": Star} {
		ops := gen(64)
		if len(ops) != 63 {
			t.Errorf("%s: %d ops, want 63", name, len(ops))
		}
		d := seqdsu.New(64, seqdsu.LinkRank, seqdsu.CompactHalving, 0)
		applyAll(d, ops)
		if d.Sets() != 1 {
			t.Errorf("%s: %d sets after full application", name, d.Sets())
		}
	}
}

// TestBinomialPairingDepth verifies the Lemma 5.3 guarantee empirically:
// after the construction, average node depth is at least (lg k)/4 even when
// every find splits.
func TestBinomialPairingDepth(t *testing.T) {
	for _, k := range []int{16, 64, 256, 1024, 4096} {
		ops := BinomialPairing(0, k)
		d := seqdsu.New(k, seqdsu.LinkRandom, seqdsu.CompactSplitting, 99)
		applyAll(d, ops)
		if d.Sets() != 1 {
			t.Fatalf("k=%d: construction left %d sets", k, d.Sets())
		}
		parent := make([]uint32, k)
		for x := uint32(0); x < uint32(k); x++ {
			parent[x] = d.Parent(x)
		}
		avg := forest.AvgDepth(parent)
		lg := 0.0
		for v := k; v > 1; v >>= 1 {
			lg++
		}
		if avg < lg/4 {
			t.Errorf("k=%d: average depth %.2f below (lg k)/4 = %.2f", k, avg, lg/4)
		}
	}
}

func TestBinomialPairingNonPowerOfTwo(t *testing.T) {
	for _, k := range []int{3, 5, 100, 777} {
		ops := BinomialPairing(10, k)
		d := seqdsu.New(10+k, seqdsu.LinkRandom, seqdsu.CompactSplitting, 1)
		applyAll(d, ops)
		// All k elements in [10, 10+k) united; elements below untouched.
		for x := uint32(10); x < uint32(10+k); x++ {
			if !d.SameSet(10, x) {
				t.Fatalf("k=%d: element %d not united", k, x)
			}
		}
		if d.SameSet(0, 10) {
			t.Fatalf("k=%d: construction leaked outside its block", k)
		}
	}
}

func TestLowerBoundWorkloadShape(t *testing.T) {
	const n, p, delta = 1 << 10, 4, 1 << 5
	w := LowerBound(n, p, delta, 5)
	if len(w.PerProc) != p {
		t.Fatalf("PerProc count %d", len(w.PerProc))
	}
	trees := n / delta
	for i, ops := range w.PerProc {
		if len(ops) != trees {
			t.Fatalf("process %d has %d ops, want %d", i, len(ops), trees)
		}
		for _, op := range ops {
			if op.Kind != OpSameSet || op.X != op.Y {
				t.Fatalf("process %d: non-self-SameSet op %v", i, op)
			}
			if int(op.X) >= n {
				t.Fatalf("query element %d out of range", op.X)
			}
		}
	}
	if w.Ops() != p*trees {
		t.Fatalf("Ops() = %d, want %d", w.Ops(), p*trees)
	}
	// Setup builds exactly n/δ disjoint δ-trees.
	d := seqdsu.New(n, seqdsu.LinkRandom, seqdsu.CompactSplitting, 2)
	applyAll(d, w.Setup)
	if d.Sets() != trees {
		t.Fatalf("setup left %d sets, want %d", d.Sets(), trees)
	}
	// Each query element stays inside its own tree.
	for tr := 0; tr < trees; tr++ {
		q := w.PerProc[0][tr]
		if !d.SameSet(q.X, uint32(tr*delta)) {
			t.Fatalf("query %d not in tree %d", q.X, tr)
		}
	}
}

func TestLowerBoundPanics(t *testing.T) {
	cases := []func(){
		func() { LowerBound(8, 0, 2, 1) },
		func() { LowerBound(8, 1, 3, 1) }, // 3 does not divide 8
		func() { LowerBound(8, 1, 0, 1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestSplitRoundRobinAndBlocks(t *testing.T) {
	ops := RandomUnions(10, 10, 1)
	rr := SplitRoundRobin(ops, 3)
	if len(rr) != 3 || len(rr[0]) != 4 || len(rr[1]) != 3 || len(rr[2]) != 3 {
		t.Fatalf("round robin sizes: %d/%d/%d", len(rr[0]), len(rr[1]), len(rr[2]))
	}
	if rr[1][0] != ops[1] || rr[2][1] != ops[5] {
		t.Fatal("round robin order wrong")
	}
	bl := SplitBlocks(ops, 3)
	if len(bl[0]) != 4 || len(bl[1]) != 4 || len(bl[2]) != 2 {
		t.Fatalf("block sizes: %d/%d/%d", len(bl[0]), len(bl[1]), len(bl[2]))
	}
	if bl[0][0] != ops[0] || bl[2][0] != ops[8] {
		t.Fatal("block order wrong")
	}
	// Everything distributed exactly once.
	total := 0
	for _, part := range [][][]Op{rr, bl} {
		for _, ops := range part {
			total += len(ops)
		}
	}
	if total != 20 {
		t.Fatalf("split lost or duplicated ops: %d", total)
	}
}

func TestSplitPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { SplitRoundRobin(nil, 0) },
		func() { SplitBlocks(nil, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestOpString(t *testing.T) {
	if s := (Op{OpUnite, 1, 2}).String(); !strings.Contains(s, "Unite") {
		t.Errorf("String() = %q", s)
	}
	if s := (Op{OpSameSet, 1, 2}).String(); !strings.Contains(s, "SameSet") {
		t.Errorf("String() = %q", s)
	}
	if s := (Op{OpKind(9), 1, 2}).String(); s == "" {
		t.Error("unknown kind renders empty")
	}
}

func TestGeneratorPanicsOnBadSizes(t *testing.T) {
	for i, fn := range []func(){
		func() { RandomUnions(0, 5, 1) },
		func() { RandomUnions(5, -1, 1) },
		func() { Chain(0) },
		func() { BinomialPairing(0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}
