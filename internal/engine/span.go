package engine

import "sync/atomic"

// span is one worker's claimable range of edge indices [next, limit). Both
// bounds are packed into a single atomic word (limit in the high 32 bits,
// next in the low 32) so a local claim and a remote steal linearize against
// each other through one CAS: neither side can observe a half-updated range,
// which is what guarantees every index is handed out exactly once.
//
// ABA on the packed word is impossible: a span only ever holds ranges of
// not-yet-claimed indices, claimed indices never re-enter any span, so a
// (next, limit) value can never recur after the range it names is drained.
type span struct {
	bounds atomic.Uint64
	_      [56]byte // pad to a cache line; each worker hammers its own span
}

func pack(next, limit uint32) uint64       { return uint64(limit)<<32 | uint64(next) }
func unpack(b uint64) (next, limit uint32) { return uint32(b), uint32(b >> 32) }

// reset installs a fresh range. Only the owning worker stores, and only
// while its span is empty, so a store can race only with steal CASes that
// are doomed to fail on the old (empty) value.
func (s *span) reset(next, limit uint32) { s.bounds.Store(pack(next, limit)) }

// remaining returns the current number of unclaimed indices.
func (s *span) remaining() int {
	n, l := unpack(s.bounds.Load())
	if n >= l {
		return 0
	}
	return int(l - n)
}

// claim takes up to grain indices from the front of the range, returning the
// half-open interval claimed, or ok=false when the span is empty.
func (s *span) claim(grain uint32) (lo, hi uint32, ok bool) {
	for {
		b := s.bounds.Load()
		n, l := unpack(b)
		if n >= l {
			return 0, 0, false
		}
		hi = n + grain
		if hi > l || hi < n { // second clause guards uint32 overflow
			hi = l
		}
		if s.bounds.CompareAndSwap(b, pack(hi, l)) {
			return n, hi, true
		}
	}
}

// stealHalf takes the upper half of the unclaimed range, returning the
// stolen interval, or ok=false when less than two grains remain — a tail
// that small is cheaper for the owner (who is necessarily still draining a
// non-empty span) to finish than to migrate.
func (s *span) stealHalf(grain uint32) (lo, hi uint32, ok bool) {
	for {
		b := s.bounds.Load()
		n, l := unpack(b)
		if n >= l || l-n < 2*grain {
			return 0, 0, false
		}
		mid := n + (l-n)/2
		if s.bounds.CompareAndSwap(b, pack(n, mid)) {
			return mid, l, true
		}
	}
}
