// Package engine is the batched parallel edge-processing engine: it fans a
// slice of edges out over a pool of worker goroutines that drive the
// wait-free operations of internal/core, with chunked work-stealing for load
// balance and per-worker work accounting.
//
// Batching is the natural bulk interface for a concurrent union-find
// (Fedorov et al., "Provably-Efficient and Internally-Deterministic Parallel
// Union-Find", SPAA 2023): the caller hands over a whole edge list and the
// engine decides placement, so throughput is limited by the structure, not
// by the caller's own concurrency plumbing. Each worker starts with a
// contiguous block of the batch (preserving scan locality) and, when its
// block drains, steals the upper half of the fullest remaining block —
// Polychronopoulos-style guided self-scheduling that keeps all workers busy
// even on skewed batches where some regions of the edge list are much more
// expensive than others.
//
// The engine is deliberately agnostic to what the edges mean: UniteAll
// merges endpoint sets, SameSetAll answers connectivity queries into a
// result slice. Both work against any Target, so the static core.DSU and
// the growing core.Dynamic are driven identically.
package engine

import (
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/randutil"
	"repro/internal/workload"
)

// Edge is one (X, Y) element pair of a batch: an edge to unite across, or a
// connectivity query to answer. It is the exec layer's Edge — the engine,
// the sharded path, and the pipeline all speak the same batch vocabulary.
type Edge = exec.Edge

// FromOps converts a workload op list into a batch of its element pairs.
// The op kind is dropped: the batch call (UniteAll or SameSetAll) decides
// what happens to each pair.
func FromOps(ops []workload.Op) []Edge {
	edges := make([]Edge, len(ops))
	for i, op := range ops {
		edges[i] = Edge{X: op.X, Y: op.Y}
	}
	return edges
}

// Target is the operation surface the engine drives. Both core.DSU and
// core.Dynamic satisfy it; the engine requires wait-freedom (or at least
// lock-freedom) from the target, since workers never coordinate beyond the
// span protocol and a blocking target would stall a whole worker.
// Self-loop pairs (X == Y) are answered inline by the worker loop — a
// no-op for UniteAll, true for SameSetAll — and never reach the Target.
type Target interface {
	UniteCounted(x, y uint32, st *core.Stats) bool
	SameSetCounted(x, y uint32, st *core.Stats) bool
}

// Config tunes one batch run; it is the exec layer's Config, shared with
// the sharded path so one option funnel configures both. The zero value is
// ready to use. The engine's free functions ignore Config.Find (a Target
// is opaque); the Flat backend below resolves it.
type Config = exec.Config

// defaultGrain amortizes one claim CAS over enough unite/query work to make
// span traffic negligible, while staying small against the ≥64k batches the
// engine is built for.
const defaultGrain = 1024

// Result reports what one batch run did: the exec layer's unified Result.
// The engine fills the flat-path fields (Workers, Grain, Merged, Steals,
// PerWorker, filter accounting, Elapsed); the sharded path fills the rest.
type Result = exec.Result

// Flat adapts one core.DSU to the exec.Backend seam: batches run through
// the engine's worker pool against the structure, and Config.Find is
// resolved into a variant view of the same forest (core.DSU.WithFind), so
// the adaptive executor can downgrade query-phase compaction without
// touching the structure's configuration.
type Flat struct {
	D *core.DSU
}

var _ exec.Backend = Flat{}

// target resolves the per-batch find-variant override.
func (f Flat) target(v core.Find) *core.DSU {
	if v == 0 {
		return f.D
	}
	return f.D.WithFind(v)
}

// UniteAll drives the batch through the pool in Unite mode, honoring the
// Config's filter passes and find-variant override.
func (f Flat) UniteAll(edges []Edge, cfg Config) Result {
	t := f.target(cfg.Find)
	res := UniteAll(t, edges, cfg)
	res.Find = t.Config().Find
	return res
}

// SameSetAll answers the batch through the pool in SameSet mode, honoring
// the find-variant override.
func (f Flat) SameSetAll(pairs []Edge, cfg Config) ([]bool, Result) {
	t := f.target(cfg.Find)
	out, res := SameSetAll(t, pairs, cfg)
	res.Find = t.Config().Find
	return out, res
}

// ScreenConnected drops already-connected edges through the pool in
// SameSet mode (see the free function below).
func (f Flat) ScreenConnected(edges []Edge, cfg Config) ([]Edge, Result) {
	t := f.target(cfg.Find)
	kept, res := ScreenConnected(t, edges, cfg)
	res.Find = t.Config().Find
	return kept, res
}

// Seed returns the structure seed, the default batch-scheduling seed.
func (f Flat) Seed() uint64 { return f.D.Config().Seed }

// CoreConfig returns the structure's variant configuration.
func (f Flat) CoreConfig() core.Config { return f.D.Config() }

// UniteAll drives every edge of the batch through t.Unite and returns the
// run's Result. Edges may appear in any order and multiplicity; the final
// partition is the same as a sequential left-to-right pass (unions are
// order-independent), and Result.Merged equals the number of merges that
// pass would perform. Self-loop edges (X == Y) are skipped in the worker
// loop without reaching the Target: they can never merge, so they cost one
// comparison instead of two finds.
func UniteAll(t Target, edges []Edge, cfg Config) Result {
	var filtered int
	var filterElapsed time.Duration
	var filterStats core.Stats
	if cfg.Prefilter {
		start := time.Now()
		kept := Prefilter(edges)
		filtered += len(edges) - len(kept)
		filterElapsed += time.Since(start)
		edges = kept
	}
	if cfg.ConnectedFilter {
		start := time.Now()
		kept, sres := ScreenConnected(t, edges, cfg)
		filtered += len(edges) - len(kept)
		filterElapsed += time.Since(start)
		filterStats.Add(sres.Stats())
		edges = kept
	}
	res := run(t, edges, cfg, nil)
	res.Filtered = filtered
	res.FilterElapsed = filterElapsed
	res.FilterStats = filterStats
	res.FilterStats.Filtered = int64(filtered)
	res.Elapsed += filterElapsed // Elapsed stays end-to-end: filter passes count
	return res
}

// ScreenConnected drops edges whose endpoints are already connected,
// answering the batch through the pool in SameSet mode and compacting the
// survivors. Sound because a true SameSet is definite (see
// Config.ConnectedFilter); the screen's Result carries its work counters.
// The sharded path reuses it against its two-level target, which is how
// the screen stays one implementation across both batch paths.
func ScreenConnected(t Target, edges []Edge, cfg Config) ([]Edge, Result) {
	scfg := cfg
	scfg.Prefilter, scfg.ConnectedFilter = false, false
	connected, sres := SameSetAll(t, edges, scfg)
	kept := make([]Edge, 0, len(edges))
	for i, e := range edges {
		if !connected[i] {
			kept = append(kept, e)
		}
	}
	return kept, sres
}

// Prefilter returns the batch with self-loop edges and exact duplicates
// removed; (u,v) and (v,u) name the same edge and count as duplicates. The
// first occurrence of each edge survives in order; the input slice is not
// modified. Unions are idempotent, so UniteAll on the filtered batch yields
// the same partition and the same merge count as on the raw batch — the
// filter trades one sequential dedup pass for the finds the dropped edges
// would have paid. Whether that trade wins is a property of the batch and
// the structure size: it needs enough duplication (skewed/Zipf streams)
// and finds expensive enough (universes past the cache) to beat the scan;
// E19 measures both sides. The pass itself is the execution layer's Dedup,
// shared with the direct-concurrent batch path.
func Prefilter(edges []Edge) []Edge { return exec.Dedup(edges) }

// SameSetAll answers pairs[i] into the returned slice's element i. Answers
// are linearizable individually; with no concurrent Unites the whole slice
// is exact for the current partition.
func SameSetAll(t Target, pairs []Edge, cfg Config) ([]bool, Result) {
	out := make([]bool, len(pairs))
	res := run(t, pairs, cfg, out)
	return out, res
}

// run is the shared pool: Unite mode when out is nil, SameSet mode
// otherwise (writing answers at the pair's batch index, which the
// exactly-once claim protocol makes race-free).
func run(t Target, edges []Edge, cfg Config, out []bool) Result {
	if uint64(len(edges)) > math.MaxUint32 {
		panic("engine: batch exceeds 2³²−1 edges; split it")
	}
	p := cfg.Workers
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > len(edges) {
		p = len(edges) // never more workers than edges
	}
	grain := cfg.Grain
	if grain <= 0 {
		grain = defaultGrain
	}
	if grain > len(edges) && len(edges) > 0 {
		// A grain beyond the batch claims everything at once anyway, and
		// the clamp keeps the uint32 conversion below exact (a grain of,
		// say, 2³² must not truncate to 0 and livelock the claim loop).
		grain = len(edges)
	}
	res := Result{Workers: p, Grain: grain}
	if len(edges) == 0 {
		return res
	}

	// Initial partition: contiguous blocks, one per worker.
	spans := make([]span, p)
	chunk := (len(edges) + p - 1) / p
	for i := range spans {
		lo := min(i*chunk, len(edges))
		hi := min(lo+chunk, len(edges))
		spans[i].reset(uint32(lo), uint32(hi))
	}

	res.PerWorker = make([]core.Stats, p)
	merged := make([]int64, p)
	steals := make([]int64, p)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var st core.Stats
			merged[w], steals[w] = work(t, edges, out, spans, w, uint32(grain), cfg.Seed, &st)
			res.PerWorker[w] = st
		}(w)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	for w := 0; w < p; w++ {
		res.Merged += merged[w]
		res.Steals += steals[w]
	}
	return res
}

// work is one worker's loop: drain the own span in grain-sized chunks, then
// steal half of the fullest victim and repeat; exit when no span holds
// stealable work. A non-empty span always has an owner actively draining
// it, so exiting on a failed scan never strands edges — at worst the tail
// of the batch finishes with fewer workers than it started with.
func work(t Target, edges []Edge, out []bool, spans []span, w int, grain uint32, seed uint64, st *core.Stats) (merged, steals int64) {
	rng := randutil.NewXoshiro256(randutil.Mix64(seed ^ uint64(w+1)))
	own := &spans[w]
	for {
		for {
			lo, hi, ok := own.claim(grain)
			if !ok {
				break
			}
			if out == nil {
				for i := lo; i < hi; i++ {
					e := edges[i]
					if e.X == e.Y {
						// A self-loop can never merge; skip its two finds.
						// It still counts as a completed operation so the
						// batch's op accounting covers every edge.
						st.Ops++
						continue
					}
					if t.UniteCounted(e.X, e.Y, st) {
						merged++
					}
				}
			} else {
				for i := lo; i < hi; i++ {
					e := edges[i]
					if e.X == e.Y {
						// An element is trivially in its own set.
						out[i] = true
						st.Ops++
						continue
					}
					out[i] = t.SameSetCounted(e.X, e.Y, st)
				}
			}
		}
		lo, hi, ok := steal(spans, w, grain, rng)
		if !ok {
			return merged, steals
		}
		steals++
		own.reset(lo, hi)
	}
}

// steal scans the other spans from a seeded-random starting point and takes
// the upper half of the fullest one found. It retries while work remains
// but a CAS race loses it, and reports ok=false once every span is (or is
// about to be) empty.
func steal(spans []span, self int, grain uint32, rng *randutil.Xoshiro256) (lo, hi uint32, ok bool) {
	for {
		victim, best := -1, 0
		start := rng.Intn(len(spans))
		for k := 0; k < len(spans); k++ {
			i := (start + k) % len(spans)
			if i == self {
				continue
			}
			if r := spans[i].remaining(); r > best {
				victim, best = i, r
			}
		}
		if victim < 0 {
			return 0, 0, false
		}
		if lo, hi, ok = spans[victim].stealHalf(grain); ok {
			return lo, hi, true
		}
		if best < 2*int(grain) {
			// The fullest span is below the steal threshold; its owner will
			// finish it faster than we can migrate it.
			return 0, 0, false
		}
	}
}
