package engine

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/seqdsu"
	"repro/internal/workload"
)

// seqPartition replays edges through the classical sequential structure,
// returning it and the number of merges — the oracle every batch run must
// reproduce.
func seqPartition(n int, edges []Edge) (*seqdsu.DSU, int) {
	ref := seqdsu.New(n, seqdsu.LinkRank, seqdsu.CompactHalving, 1)
	merges := 0
	for _, e := range edges {
		if ref.Unite(e.X, e.Y) {
			merges++
		}
	}
	return ref, merges
}

func TestUniteAllMatchesSequentialBaseline(t *testing.T) {
	const n = 1 << 11
	edges := FromOps(workload.RandomUnions(n, 4*n, 17))
	ref, wantMerges := seqPartition(n, edges)
	want := ref.CanonicalLabels()

	for _, workers := range []int{1, 2, 3, 8, 16} {
		for _, grain := range []int{1, 7, 1024} {
			d := core.New(n, core.Config{Seed: 5})
			res := UniteAll(d, edges, Config{Workers: workers, Grain: grain, Seed: 99})
			if res.Merged != int64(wantMerges) {
				t.Errorf("workers=%d grain=%d: Merged = %d, want %d", workers, grain, res.Merged, wantMerges)
			}
			got := d.CanonicalLabels()
			for x := range got {
				if got[x] != want[x] {
					t.Fatalf("workers=%d grain=%d: label[%d] = %d, want %d", workers, grain, x, got[x], want[x])
				}
			}
		}
	}
}

func TestSameSetAllMatchesSequentialBaseline(t *testing.T) {
	const n = 1 << 11
	unions := FromOps(workload.RandomUnions(n, n, 23))
	ref, _ := seqPartition(n, unions)

	d := core.New(n, core.Config{Seed: 7})
	UniteAll(d, unions, Config{Workers: 4})

	queries := FromOps(workload.RandomUnions(n, 4*n, 29))
	got, res := SameSetAll(d, queries, Config{Workers: 5, Grain: 64})
	if len(got) != len(queries) {
		t.Fatalf("len(got) = %d, want %d", len(got), len(queries))
	}
	if st := res.Stats(); st.Ops != int64(len(queries)) {
		t.Errorf("counted ops = %d, want %d", st.Ops, len(queries))
	}
	for i, q := range queries {
		if want := ref.SameSet(q.X, q.Y); got[i] != want {
			t.Errorf("query %d %v: got %v, want %v", i, q, got[i], want)
		}
	}
}

func TestUniteAllDrivesDynamicTarget(t *testing.T) {
	const n = 512
	d := core.NewDynamic(n, 3)
	for i := 0; i < n; i++ {
		if _, err := d.MakeSet(); err != nil {
			t.Fatal(err)
		}
	}
	edges := FromOps(workload.RandomUnions(n, 2*n, 31))
	ref, wantMerges := seqPartition(n, edges)
	res := UniteAll(d, edges, Config{Workers: 4, Grain: 16})
	if res.Merged != int64(wantMerges) {
		t.Errorf("Merged = %d, want %d", res.Merged, wantMerges)
	}
	want := ref.CanonicalLabels()
	got := d.CanonicalLabels()
	for x := range got {
		if got[x] != want[x] {
			t.Fatalf("label[%d] = %d, want %d", x, got[x], want[x])
		}
	}
}

// countingTarget records how many times each batch index was delivered,
// using the X endpoint as the index.
type countingTarget struct {
	counts []atomic.Int32
}

func (c *countingTarget) UniteCounted(x, y uint32, st *core.Stats) bool {
	c.counts[x].Add(1)
	return false
}

func (c *countingTarget) SameSetCounted(x, y uint32, st *core.Stats) bool {
	c.counts[x].Add(1)
	return false
}

// TestExactlyOnceDelivery forces heavy stealing (tiny grain, many workers)
// and checks that every edge is processed exactly once.
func TestExactlyOnceDelivery(t *testing.T) {
	const m = 100_000
	edges := make([]Edge, m)
	for i := range edges {
		// Y is any value distinct from every X: the worker loop answers
		// self-loops inline, and this test needs each edge to reach the
		// counting target.
		edges[i] = Edge{X: uint32(i), Y: ^uint32(0)}
	}
	tgt := &countingTarget{counts: make([]atomic.Int32, m)}
	UniteAll(tgt, edges, Config{Workers: 8, Grain: 2, Seed: 41})
	for i := range tgt.counts {
		if got := tgt.counts[i].Load(); got != 1 {
			t.Fatalf("edge %d delivered %d times, want 1", i, got)
		}
	}
}

// TestSelfLoopsSkipFinds pins the worker-loop fast path: a self-loop edge
// is answered inline — no merge, no finds, no shared-memory traffic — while
// still counting as a completed operation.
func TestSelfLoopsSkipFinds(t *testing.T) {
	const n, m = 50, 1000
	edges := make([]Edge, m)
	for i := range edges {
		v := uint32(i % n)
		edges[i] = Edge{X: v, Y: v}
	}
	d := core.New(n, core.Config{Seed: 59})
	res := UniteAll(d, edges, Config{Workers: 3, Grain: 16})
	if res.Merged != 0 {
		t.Errorf("self-loop batch Merged = %d, want 0", res.Merged)
	}
	st := res.Stats()
	if st.Ops != m {
		t.Errorf("self-loop batch Ops = %d, want %d", st.Ops, m)
	}
	if st.Finds != 0 || st.Reads != 0 || st.CASAttempts != 0 {
		t.Errorf("self-loop batch paid work: finds=%d reads=%d cas=%d, want all 0",
			st.Finds, st.Reads, st.CASAttempts)
	}
	out, qres := SameSetAll(d, edges, Config{Workers: 3, Grain: 16})
	for i, ans := range out {
		if !ans {
			t.Fatalf("SameSetAll self-pair %d = false, want true", i)
		}
	}
	if qst := qres.Stats(); qst.Finds != 0 || qst.Ops != m {
		t.Errorf("self-pair queries: finds=%d ops=%d, want 0 and %d", qst.Finds, qst.Ops, m)
	}
}

// TestMixedSelfLoopsMatchBaseline checks a batch interleaving self-loops
// with real edges still reproduces the sequential partition and merge count.
func TestMixedSelfLoopsMatchBaseline(t *testing.T) {
	const n = 1 << 10
	edges := FromOps(workload.RandomUnions(n, 3*n, 61))
	for i := 0; i < len(edges); i += 5 {
		edges[i] = Edge{X: uint32(i % n), Y: uint32(i % n)}
	}
	ref, wantMerges := seqPartition(n, edges)
	want := ref.CanonicalLabels()
	d := core.New(n, core.Config{Seed: 67})
	res := UniteAll(d, edges, Config{Workers: 4, Grain: 32})
	if res.Merged != int64(wantMerges) {
		t.Errorf("Merged = %d, want %d", res.Merged, wantMerges)
	}
	got := d.CanonicalLabels()
	for x := range got {
		if got[x] != want[x] {
			t.Fatalf("label[%d] = %d, want %d", x, got[x], want[x])
		}
	}
}

// TestPrefilter pins the filter semantics: self-loops dropped, duplicates
// (in either orientation) collapsed to their first occurrence, order
// preserved, input untouched, partition unchanged.
func TestPrefilter(t *testing.T) {
	in := []Edge{{X: 1, Y: 2}, {X: 3, Y: 3}, {X: 2, Y: 1}, {X: 4, Y: 5}, {X: 1, Y: 2}, {X: 5, Y: 4}, {X: 0, Y: 6}}
	inCopy := append([]Edge(nil), in...)
	got := Prefilter(in)
	want := []Edge{{X: 1, Y: 2}, {X: 4, Y: 5}, {X: 0, Y: 6}}
	if len(got) != len(want) {
		t.Fatalf("Prefilter kept %d edges %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Prefilter[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	for i := range in {
		if in[i] != inCopy[i] {
			t.Fatalf("Prefilter mutated its input at %d", i)
		}
	}

	const n = 1 << 10
	edges := FromOps(workload.ZipfMixed(n, 4*n, 1.0, 1.2, 71))
	filtered := Prefilter(edges)
	if len(filtered) >= len(edges) {
		t.Fatalf("Zipf batch should shrink: %d -> %d", len(edges), len(filtered))
	}
	ref, wantMerges := seqPartition(n, edges)
	want2 := ref.CanonicalLabels()
	d := core.New(n, core.Config{Seed: 73})
	res := UniteAll(d, edges, Config{Workers: 4, Prefilter: true})
	if res.Merged != int64(wantMerges) {
		t.Errorf("prefiltered Merged = %d, want %d", res.Merged, wantMerges)
	}
	got2 := d.CanonicalLabels()
	for x := range got2 {
		if got2[x] != want2[x] {
			t.Fatalf("prefiltered label[%d] = %d, want %d", x, got2[x], want2[x])
		}
	}
}

func TestEmptyAndTinyBatches(t *testing.T) {
	d := core.New(8, core.Config{})
	if res := UniteAll(d, nil, Config{Workers: 4}); res.Merged != 0 || len(res.PerWorker) != 0 {
		t.Errorf("empty batch: got %+v", res)
	}
	res := UniteAll(d, []Edge{{X: 0, Y: 1}}, Config{Workers: 16})
	if res.Workers != 1 {
		t.Errorf("one-edge batch resolved %d workers, want 1", res.Workers)
	}
	if res.Merged != 1 {
		t.Errorf("one-edge batch Merged = %d, want 1", res.Merged)
	}
	out, _ := SameSetAll(d, []Edge{{X: 0, Y: 1}, {X: 0, Y: 2}}, Config{Workers: 16})
	if !out[0] || out[1] {
		t.Errorf("tiny SameSetAll = %v, want [true false]", out)
	}
}

// TestHugeGrainClamped pins the clamp that keeps an over-wide Grain from
// truncating to 0 in the uint32 span arithmetic (which would livelock the
// claim loop).
func TestHugeGrainClamped(t *testing.T) {
	const n = 256
	edges := FromOps(workload.RandomUnions(n, 2*n, 53))
	_, wantMerges := seqPartition(n, edges)
	d := core.New(n, core.Config{Seed: 3})
	res := UniteAll(d, edges, Config{Workers: 4, Grain: int(^uint(0) >> 1)})
	if res.Grain != len(edges) {
		t.Errorf("resolved grain = %d, want clamp to %d", res.Grain, len(edges))
	}
	if res.Merged != int64(wantMerges) {
		t.Errorf("Merged = %d, want %d", res.Merged, wantMerges)
	}
}

func TestMergedIsScheduleIndependent(t *testing.T) {
	const n = 1 << 10
	edges := FromOps(workload.RandomUnions(n, 3*n, 47))
	var first int64
	for rep := 0; rep < 4; rep++ {
		d := core.New(n, core.Config{Seed: uint64(rep)})
		res := UniteAll(d, edges, Config{Workers: 6, Grain: 8, Seed: uint64(rep)})
		if rep == 0 {
			first = res.Merged
		} else if res.Merged != first {
			t.Fatalf("rep %d: Merged = %d, want %d (merge count depends only on the edge multiset)", rep, res.Merged, first)
		}
	}
}

func TestSpanPackUnpack(t *testing.T) {
	cases := [][2]uint32{{0, 0}, {0, 1}, {5, 9}, {1<<32 - 2, 1<<32 - 1}}
	for _, c := range cases {
		n, l := unpack(pack(c[0], c[1]))
		if n != c[0] || l != c[1] {
			t.Errorf("pack/unpack(%d, %d) = (%d, %d)", c[0], c[1], n, l)
		}
	}
}

func TestSpanClaim(t *testing.T) {
	var s span
	s.reset(0, 10)
	if lo, hi, ok := s.claim(4); !ok || lo != 0 || hi != 4 {
		t.Fatalf("claim = (%d, %d, %v), want (0, 4, true)", lo, hi, ok)
	}
	if lo, hi, ok := s.claim(100); !ok || lo != 4 || hi != 10 {
		t.Fatalf("claim caps at limit: (%d, %d, %v), want (4, 10, true)", lo, hi, ok)
	}
	if _, _, ok := s.claim(1); ok {
		t.Fatal("claim on empty span succeeded")
	}
}

func TestSpanStealHalf(t *testing.T) {
	var s span
	s.reset(0, 100)
	lo, hi, ok := s.stealHalf(10)
	if !ok || lo != 50 || hi != 100 {
		t.Fatalf("stealHalf = (%d, %d, %v), want (50, 100, true)", lo, hi, ok)
	}
	if s.remaining() != 50 {
		t.Fatalf("victim remaining = %d, want 50", s.remaining())
	}
	s.reset(0, 19)
	if _, _, ok := s.stealHalf(10); ok {
		t.Fatal("stealHalf below the 2×grain threshold succeeded")
	}
}

// TestSpanConcurrentClaimSteal hammers one span with a claiming owner and
// stealing thieves and checks the handed-out intervals tile [0, N) exactly.
func TestSpanConcurrentClaimSteal(t *testing.T) {
	const N = 1 << 16
	var s span
	s.reset(0, N)
	seen := make([]atomic.Int32, N)
	mark := func(lo, hi uint32) {
		for i := lo; i < hi; i++ {
			seen[i].Add(1)
		}
	}
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // owner
		defer wg.Done()
		for {
			lo, hi, ok := s.claim(3)
			if !ok {
				return
			}
			mark(lo, hi)
		}
	}()
	for th := 0; th < 2; th++ {
		go func() { // thieves re-stealing from the same span
			defer wg.Done()
			for {
				lo, hi, ok := s.stealHalf(3)
				if !ok {
					return
				}
				mark(lo, hi)
			}
		}()
	}
	wg.Wait()
	// Thieves stop below the 2×grain threshold, so the owner must have
	// drained the rest; every index is covered exactly once.
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("index %d covered %d times, want 1", i, got)
		}
	}
}
