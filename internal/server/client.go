package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"

	"repro/dsu"
	"repro/internal/wire"
)

// Client speaks the front end's protocol: tenant administration over
// JSON, batch RPC and streaming ingestion over either wire format. It is
// what examples/server and the integration tests drive; it lives next to
// the server so the two sides of the protocol evolve together.
//
// A Client is safe for concurrent use; each OpenStream call owns its own
// connection.
type Client struct {
	base     string
	hc       *http.Client
	format   wire.Format
	maxFrame int
}

// ClientOption configures NewClient.
type ClientOption func(*Client)

// WithFormat selects the batch encoding (default wire.Binary;
// wire.JSON is the debug mode).
func WithFormat(f wire.Format) ClientOption { return func(c *Client) { c.format = f } }

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test plumbing). The client must not have a global Timeout
// if streams are to run long.
func WithHTTPClient(hc *http.Client) ClientOption { return func(c *Client) { c.hc = hc } }

// WithMaxFrame bounds reply frames (≤ 0 selects wire.DefaultMaxFrame).
func WithMaxFrame(n int) ClientOption { return func(c *Client) { c.maxFrame = n } }

// NewClient returns a client for the server at base (e.g.
// "http://127.0.0.1:8080").
func NewClient(base string, opts ...ClientOption) *Client {
	c := &Client{base: base, hc: http.DefaultClient, format: wire.Binary}
	for _, o := range opts {
		o(c)
	}
	return c
}

// httpError turns a non-2xx response into an error carrying the body.
func httpError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return fmt.Errorf("server: %s: %s", resp.Status, bytes.TrimSpace(body))
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health reports whether the server answers its liveness probe.
func (c *Client) Health(ctx context.Context) error {
	var out map[string]bool
	return c.getJSON(ctx, "/healthz", &out)
}

// CreateTenant registers a new universe on the server.
func (c *Client) CreateTenant(ctx context.Context, spec TenantSpec) (TenantInfo, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return TenantInfo{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/tenants", bytes.NewReader(body))
	if err != nil {
		return TenantInfo{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return TenantInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return TenantInfo{}, httpError(resp)
	}
	var info TenantInfo
	err = json.NewDecoder(resp.Body).Decode(&info)
	return info, err
}

// Tenants lists the server's tenants.
func (c *Client) Tenants(ctx context.Context) ([]TenantInfo, error) {
	var out []TenantInfo
	err := c.getJSON(ctx, "/v1/tenants", &out)
	return out, err
}

// Tenant fetches one tenant's info.
func (c *Client) Tenant(ctx context.Context, name string) (TenantInfo, error) {
	var out TenantInfo
	err := c.getJSON(ctx, "/v1/tenants/"+url.PathEscape(name), &out)
	return out, err
}

// DropTenant unregisters a tenant.
func (c *Client) DropTenant(ctx context.Context, name string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/tenants/"+url.PathEscape(name), nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return httpError(resp)
	}
	return nil
}

// Checkpoint asks a durable tenant to snapshot its write-ahead log now,
// bounding recovery time for everything logged so far. The server
// answers 409 (reported here as an error) for a tenant without
// persistence.
func (c *Client) Checkpoint(ctx context.Context, name string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/tenants/"+url.PathEscape(name)+"/checkpoint", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return httpError(resp)
	}
	return nil
}

// Labels fetches a tenant's canonical labelling (quiescent-state read).
func (c *Client) Labels(ctx context.Context, name string) ([]uint32, error) {
	var out []uint32
	err := c.getJSON(ctx, "/v1/tenants/"+url.PathEscape(name)+"/labels", &out)
	return out, err
}

// rpc drives one framed request/reply exchange, returning the trace
// context the server's reply envelope reported (zero on untraced
// tenants and old servers).
func (c *Client) rpc(ctx context.Context, tenant, action string, env *wire.Envelope) (dsu.BatchReply, dsu.TraceContext, error) {
	var buf bytes.Buffer
	if err := wire.NewEncoder(&buf, c.format).Encode(env); err != nil {
		return dsu.BatchReply{}, dsu.TraceContext{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v1/tenants/"+url.PathEscape(tenant)+"/"+action, &buf)
	if err != nil {
		return dsu.BatchReply{}, dsu.TraceContext{}, err
	}
	req.Header.Set("Content-Type", c.format.ContentType())
	resp, err := c.hc.Do(req)
	if err != nil {
		return dsu.BatchReply{}, dsu.TraceContext{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return dsu.BatchReply{}, dsu.TraceContext{}, httpError(resp)
	}
	dec := wire.AcquireDecoder(resp.Body, c.format, c.maxFrame)
	defer wire.ReleaseDecoder(dec)
	out, err := dec.Decode()
	if err != nil {
		return dsu.BatchReply{}, dsu.TraceContext{}, fmt.Errorf("server reply: %w", err)
	}
	link := dsu.TraceContext{Trace: out.Trace, Span: out.Span}
	switch out.Kind {
	case wire.KindReply:
		// Copy out of the pooled decoder's scratch: the returned reply is
		// the caller's to keep, so it must not alias a recycled buffer
		// (nil-vs-empty answers is a wire distinction and is preserved).
		rep := *out.Reply
		if rep.Answers != nil {
			rep.Answers = append(make([]bool, 0, len(rep.Answers)), rep.Answers...)
		}
		return rep, link, nil
	case wire.KindError:
		return dsu.BatchReply{}, link, fmt.Errorf("server: %s", out.Error)
	default:
		return dsu.BatchReply{}, link, fmt.Errorf("server answered %v to a %v request", out.Kind, env.Kind)
	}
}

// UniteAll executes one remote mutation batch on the tenant.
func (c *Client) UniteAll(ctx context.Context, tenant string, req dsu.UniteRequest) (dsu.BatchReply, error) {
	rep, _, err := c.rpc(ctx, tenant, "unite", &wire.Envelope{Kind: wire.KindUnite, Unite: &req})
	return rep, err
}

// SameSetAll executes one remote query batch on the tenant.
func (c *Client) SameSetAll(ctx context.Context, tenant string, req dsu.QueryRequest) (dsu.BatchReply, error) {
	rep, _, err := c.rpc(ctx, tenant, "query", &wire.Envelope{Kind: wire.KindQuery, Query: &req})
	return rep, err
}

// UniteAllLinked is UniteAll carrying a caller-chosen trace context: on
// a traced tenant the server adopts link's trace ID for the batch's span
// tree, so the client and server halves of the exchange share one
// identity. It returns the trace context the server's reply reported —
// the server's own trace ID when link was zero, link itself when not,
// zero when the tenant is untraced (or the server predates tracing).
func (c *Client) UniteAllLinked(ctx context.Context, tenant string, req dsu.UniteRequest, link dsu.TraceContext) (dsu.BatchReply, dsu.TraceContext, error) {
	return c.rpc(ctx, tenant, "unite",
		&wire.Envelope{Kind: wire.KindUnite, Unite: &req, Trace: link.Trace, Span: link.Span})
}

// SameSetAllLinked is SameSetAll carrying a caller-chosen trace context
// (see UniteAllLinked).
func (c *Client) SameSetAllLinked(ctx context.Context, tenant string, req dsu.QueryRequest, link dsu.TraceContext) (dsu.BatchReply, dsu.TraceContext, error) {
	return c.rpc(ctx, tenant, "query",
		&wire.Envelope{Kind: wire.KindQuery, Query: &req, Trace: link.Trace, Span: link.Span})
}

// StreamConfig tunes one stream connection.
type StreamConfig struct {
	// Buffer requests a server-side seal threshold (0 keeps the server
	// default; the server clamps).
	Buffer int
	// InFlight requests a server-side in-flight bound (0 keeps the
	// default of 1; the server clamps to its own maximum).
	InFlight int
	// Batch configures every batch the connection's stream executes
	// (workers, grain, filters; the Find override is RPC-only).
	Batch dsu.BatchOptions
	// OnReply, when non-nil, observes every per-batch envelope (reply or
	// error) as it arrives, from the stream's reader goroutine. The
	// envelope and everything it points to live in the connection's
	// pooled decoder and are valid only during the callback — copy
	// whatever outlives it.
	OnReply func(*wire.Envelope)
}

// ClientStream is one open streaming-ingest connection. Push and Flush
// frame edges to the server; Close ends the edge stream and returns the
// server's final totals. Push/Flush/Close must be serialized by the
// caller (one producer per connection — open more connections for more
// producers); OnReply runs on an internal goroutine concurrently with
// them.
//
// Pushed frames are coalesced: a burst of small Pushes leaves in one
// request-body write, flushed as soon as the producer goes idle (or
// explicitly by Flush, which also seals the server-side buffer). Push
// does not retain the caller's edge slice — it is free for reuse as
// soon as Push returns.
type ClientStream struct {
	pw     *io.PipeWriter
	fw     *wire.FlushWriter
	enc    wire.Encoder
	seq    uint64
	resp   *http.Response
	closed bool

	done    chan struct{}
	onReply func(*wire.Envelope)

	mu      sync.Mutex
	end     *wire.StreamEnd
	endErr  string
	readErr error
}

// OpenStream opens a streaming-ingest connection to the tenant. The
// returned stream must be Closed.
func (c *Client) OpenStream(ctx context.Context, tenant string, cfg StreamConfig) (*ClientStream, error) {
	q := url.Values{}
	if cfg.Buffer > 0 {
		q.Set("buffer", strconv.Itoa(cfg.Buffer))
	}
	if cfg.InFlight > 0 {
		q.Set("inflight", strconv.Itoa(cfg.InFlight))
	}
	if cfg.Batch.Workers > 0 {
		q.Set("workers", strconv.Itoa(cfg.Batch.Workers))
	}
	if cfg.Batch.Grain > 0 {
		q.Set("grain", strconv.Itoa(cfg.Batch.Grain))
	}
	if cfg.Batch.Prefilter {
		q.Set("prefilter", "1")
	}
	if cfg.Batch.ConnectedFilter {
		q.Set("connected", "1")
	}
	u := c.base + "/v1/tenants/" + url.PathEscape(tenant) + "/stream"
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, pr)
	if err != nil {
		pw.Close()
		return nil, err
	}
	req.Header.Set("Content-Type", c.format.ContentType())
	resp, err := c.hc.Do(req)
	if err != nil {
		pw.Close()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		err := httpError(resp)
		resp.Body.Close()
		pw.Close()
		return nil, err
	}
	fw := wire.NewFlushWriter(pw, 0, nil)
	cs := &ClientStream{
		pw:      pw,
		fw:      fw,
		enc:     wire.AcquireEncoder(fw, c.format),
		resp:    resp,
		done:    make(chan struct{}),
		onReply: cfg.OnReply,
	}
	go cs.read(wire.AcquireDecoder(resp.Body, c.format, c.maxFrame))
	return cs, nil
}

// read drains reply envelopes until the end envelope or a transport
// error. Consuming replies promptly is part of the backpressure loop: a
// client that never read them would eventually stall the server's reply
// writes, not its own pushes.
func (cs *ClientStream) read(dec wire.Decoder) {
	defer close(cs.done)
	defer wire.ReleaseDecoder(dec)
	for {
		env, err := dec.Decode()
		if err != nil {
			cs.mu.Lock()
			cs.readErr = err
			cs.mu.Unlock()
			return
		}
		if env.Kind == wire.KindEnd {
			end := *env.End // copy out of the pooled decoder's scratch
			cs.mu.Lock()
			cs.end, cs.endErr = &end, env.Error
			cs.mu.Unlock()
			return
		}
		if cs.onReply != nil {
			cs.onReply(env)
		}
	}
}

// Push frames one batch of edges to the server's stream. The server
// accumulates them by its buffer size; Push blocking here is the
// end-to-end backpressure (the server has stopped reading).
func (cs *ClientStream) Push(edges ...dsu.Edge) error {
	return cs.PushLinked(dsu.TraceContext{}, edges...)
}

// PushLinked is Push carrying a caller-chosen trace context: on a traced
// tenant, the server-side batch these edges land in adopts link's trace
// ID (first link per batch wins), and the batch's reply envelope reports
// it back. A zero link is exactly Push.
func (cs *ClientStream) PushLinked(link dsu.TraceContext, edges ...dsu.Edge) error {
	if cs.closed {
		return wire.ErrWriterClosed
	}
	cs.seq++
	return cs.enc.Encode(&wire.Envelope{Kind: wire.KindUnite, Seq: cs.seq,
		Unite: &dsu.UniteRequest{Edges: edges}, Trace: link.Trace, Span: link.Span})
}

// Flush asks the server to seal its current buffer early, forcing the
// coalescing writer out with it so the request leaves now.
func (cs *ClientStream) Flush() error {
	if cs.closed {
		return wire.ErrWriterClosed
	}
	cs.seq++
	if err := cs.enc.Encode(&wire.Envelope{Kind: wire.KindFlush, Seq: cs.seq}); err != nil {
		return err
	}
	return cs.fw.Flush()
}

// Close ends the edge stream, waits for the server to drain, and returns
// the final totals. A non-nil StreamEnd with a non-nil error means the
// server lost batches (shutdown or cancellation mid-stream); Failed says
// how many.
func (cs *ClientStream) Close() (*wire.StreamEnd, error) {
	if !cs.closed {
		cs.closed = true
		_ = cs.fw.Close()
		cs.pw.Close()
		<-cs.done
		wire.ReleaseEncoder(cs.enc)
		cs.enc = nil
		cs.resp.Body.Close()
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.readErr != nil {
		return cs.end, fmt.Errorf("stream reply channel: %w", cs.readErr)
	}
	if cs.endErr != "" {
		return cs.end, fmt.Errorf("server stream: %s", cs.endErr)
	}
	if cs.end == nil {
		return nil, fmt.Errorf("stream closed without an end envelope")
	}
	return cs.end, nil
}

// PipeConfig tunes one pipelined-RPC connection.
type PipeConfig struct {
	// OnReply, when non-nil, observes every reply/error envelope — one
	// per request, in request order, Seq echoing the request's — from the
	// connection's reader goroutine. The envelope and everything it
	// points to (the reply struct, its answer slice) live in the
	// connection's pooled decoder and are valid only during the callback;
	// copy whatever outlives it. Nil discards replies (fire-and-forget
	// mutation pipelines still see errors in Close).
	OnReply func(*wire.Envelope)
}

// ClientPipe is one open pipelined batch-RPC connection: UniteAll and
// SameSetAll enqueue requests without waiting for replies, so many small
// batches share one HTTP exchange and the round trip amortizes away —
// the client-side half of the wire fast path. Requests coalesce in a
// flush-on-idle writer exactly like stream pushes; replies arrive
// through PipeConfig.OnReply in request order.
//
// UniteAll/SameSetAll/Flush/Close must be serialized by the caller (one
// producer per pipe; open more pipes for more producers); OnReply runs
// on an internal goroutine concurrently with them. Requests do not
// retain the caller's edge slices — they are free for reuse on return.
// Backpressure is end to end: a stalled server fills the coalescing
// buffer and blocks the senders.
type ClientPipe struct {
	pw     *io.PipeWriter
	fw     *wire.FlushWriter
	enc    wire.Encoder
	seq    uint64
	resp   *http.Response
	closed bool

	// Scratch for the request envelope — the encoder serializes before
	// returning, so one reusable envelope per pipe keeps the send path
	// allocation-free.
	env   wire.Envelope
	unite dsu.UniteRequest
	query dsu.QueryRequest

	done    chan struct{}
	onReply func(*wire.Envelope)

	mu      sync.Mutex
	readErr error
}

// OpenPipe opens a pipelined batch-RPC connection to the tenant. The
// returned pipe must be Closed.
func (c *Client) OpenPipe(ctx context.Context, tenant string, cfg PipeConfig) (*ClientPipe, error) {
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v1/tenants/"+url.PathEscape(tenant)+"/pipe", pr)
	if err != nil {
		pw.Close()
		return nil, err
	}
	req.Header.Set("Content-Type", c.format.ContentType())
	resp, err := c.hc.Do(req)
	if err != nil {
		pw.Close()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		err := httpError(resp)
		resp.Body.Close()
		pw.Close()
		return nil, err
	}
	fw := wire.NewFlushWriter(pw, 0, nil)
	cp := &ClientPipe{
		pw:      pw,
		fw:      fw,
		enc:     wire.AcquireEncoder(fw, c.format),
		resp:    resp,
		done:    make(chan struct{}),
		onReply: cfg.OnReply,
	}
	go cp.read(wire.AcquireDecoder(resp.Body, c.format, c.maxFrame))
	return cp, nil
}

// read delivers reply envelopes to OnReply until the server closes the
// response (which it does once the request stream ends). Consuming
// replies promptly is part of the backpressure loop, as on streams.
func (cp *ClientPipe) read(dec wire.Decoder) {
	defer close(cp.done)
	defer wire.ReleaseDecoder(dec)
	for {
		env, err := dec.Decode()
		if err != nil {
			if err != io.EOF {
				cp.mu.Lock()
				cp.readErr = err
				cp.mu.Unlock()
			}
			return
		}
		if cp.onReply != nil {
			cp.onReply(env)
		}
	}
}

// UniteAll enqueues one mutation batch and returns its sequence number
// without waiting for the reply (which arrives via OnReply with the
// same Seq).
func (cp *ClientPipe) UniteAll(req dsu.UniteRequest) (uint64, error) {
	return cp.UniteAllLinked(req, dsu.TraceContext{})
}

// UniteAllLinked is UniteAll carrying a caller-chosen trace context
// (see Client.UniteAllLinked for the adoption semantics).
func (cp *ClientPipe) UniteAllLinked(req dsu.UniteRequest, link dsu.TraceContext) (uint64, error) {
	if cp.closed {
		return 0, wire.ErrWriterClosed
	}
	cp.seq++
	cp.unite = req
	cp.env = wire.Envelope{Kind: wire.KindUnite, Seq: cp.seq, Unite: &cp.unite,
		Trace: link.Trace, Span: link.Span}
	return cp.seq, cp.enc.Encode(&cp.env)
}

// SameSetAll enqueues one query batch and returns its sequence number
// without waiting for the reply.
func (cp *ClientPipe) SameSetAll(req dsu.QueryRequest) (uint64, error) {
	return cp.SameSetAllLinked(req, dsu.TraceContext{})
}

// SameSetAllLinked is SameSetAll carrying a caller-chosen trace context.
func (cp *ClientPipe) SameSetAllLinked(req dsu.QueryRequest, link dsu.TraceContext) (uint64, error) {
	if cp.closed {
		return 0, wire.ErrWriterClosed
	}
	cp.seq++
	cp.query = req
	cp.env = wire.Envelope{Kind: wire.KindQuery, Seq: cp.seq, Query: &cp.query,
		Trace: link.Trace, Span: link.Span}
	return cp.seq, cp.enc.Encode(&cp.env)
}

// Flush pushes any coalesced requests out now instead of on the next
// idle moment — useful before blocking on replies.
func (cp *ClientPipe) Flush() error {
	if cp.closed {
		return wire.ErrWriterClosed
	}
	return cp.fw.Flush()
}

// Close ends the request stream, waits for the last reply to be
// delivered, and returns the first transport error (nil after a clean
// drain). Idempotent.
func (cp *ClientPipe) Close() error {
	if !cp.closed {
		cp.closed = true
		_ = cp.fw.Close()
		cp.pw.Close()
		<-cp.done
		wire.ReleaseEncoder(cp.enc)
		cp.enc = nil
		cp.resp.Body.Close()
	}
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.readErr != nil {
		return fmt.Errorf("pipe reply channel: %w", cp.readErr)
	}
	return nil
}
