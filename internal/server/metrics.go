package server

import (
	"io"
	"net/http"
	"strings"

	"repro/internal/metrics"
	"repro/internal/wire"
)

// serverMetrics is the front end's own instrument set, registered onto
// the same registry as the dsu per-tenant series (Config.Metrics) so one
// /metrics scrape shows the whole stack. Every field is nil-safe; an
// uninstrumented server carries a nil *serverMetrics and every hook
// below is one pointer check.
//
// Series catalog (all prefixed dsu_server_):
//
//	dsu_server_request_seconds{endpoint,encoding,status}  request latency histogram
//	dsu_server_streams_active                             open stream connections (gauge)
//	dsu_server_frames_total{dir}                          wire envelopes in/out
//	dsu_server_bytes_total{dir}                           wire payload bytes in/out
//	dsu_server_decode_errors_total                        frames rejected by the decoder
//	dsu_server_rpc_inflight{tenant}                       RPC batches executing (gauge)
//	dsu_server_rpc_waits_total{tenant}                    RPCs that found the tenant budget full
type serverMetrics struct {
	latency      *metrics.HistogramVec
	streams      *metrics.Gauge
	frames       *metrics.CounterVec
	bytes        *metrics.CounterVec
	decodeErrors *metrics.Counter
	rpcInFlight  *metrics.GaugeVec
	rpcWaits     *metrics.CounterVec
}

// newServerMetrics registers the server families. A nil registry returns
// nil — the uninstrumented server.
func newServerMetrics(reg *metrics.Registry) *serverMetrics {
	if reg == nil {
		return nil
	}
	return &serverMetrics{
		latency:      reg.HistogramVec("dsu_server_request_seconds", "End-to-end request latency in seconds, by endpoint, wire encoding, and HTTP status.", nil, "endpoint", "encoding", "status"),
		streams:      reg.Gauge("dsu_server_streams_active", "Open stream connections."),
		frames:       reg.CounterVec("dsu_server_frames_total", "Wire envelopes decoded (in) and encoded (out) on RPC and stream connections.", "dir"),
		bytes:        reg.CounterVec("dsu_server_bytes_total", "Wire bytes read (in) and written (out) on RPC and stream connections.", "dir"),
		decodeErrors: reg.Counter("dsu_server_decode_errors_total", "Frames the wire decoder rejected (truncation, corruption, oversize)."),
		rpcInFlight:  reg.GaugeVec("dsu_server_rpc_inflight", "RPC batches currently executing, by tenant.", "tenant"),
		rpcWaits:     reg.CounterVec("dsu_server_rpc_waits_total", "RPC batches that found their tenant's in-flight budget saturated and had to wait.", "tenant"),
	}
}

// endpointOf classifies a request path into the latency histogram's
// bounded endpoint label set (unbounded label values are a cardinality
// leak, so tenant names never appear here).
func endpointOf(path string) string {
	switch {
	case path == "/healthz":
		return "healthz"
	case path == "/v1/tenants" || path == "/v1/tenants/":
		return "tenants"
	case strings.HasPrefix(path, "/v1/tenants/"):
		rest := strings.TrimPrefix(path, "/v1/tenants/")
		_, action, _ := strings.Cut(rest, "/")
		switch action {
		case "":
			return "tenant"
		case "labels", "unite", "query", "stream", "pipe":
			return action
		}
		return "other"
	default:
		return "other"
	}
}

// encodingOf names the request's wire encoding for the latency label:
// "binary", "json", or "none" for the JSON-admin and unframed endpoints.
func encodingOf(r *http.Request) string {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return "none"
	}
	f, ok := wire.FormatFor(ct)
	if !ok {
		return "none"
	}
	return f.String()
}

// statusRecorder captures the response status for the latency label.
// Unwrap keeps http.ResponseController working through it — the stream
// handler's Flush and EnableFullDuplex resolve via the unwrap chain.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (s *statusRecorder) WriteHeader(code int) {
	if s.code == 0 {
		s.code = code
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) Write(b []byte) (int, error) {
	if s.code == 0 {
		s.code = http.StatusOK
	}
	return s.ResponseWriter.Write(b)
}

func (s *statusRecorder) Unwrap() http.ResponseWriter { return s.ResponseWriter }

func (s *statusRecorder) status() int {
	if s.code == 0 {
		return http.StatusOK
	}
	return s.code
}

// countingReader tallies wire bytes read from a request body into a
// counter (nil counter: still works, records nothing).
type countingReader struct {
	r io.Reader
	c *metrics.Counter
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.c.Add(int64(n))
	return n, err
}

// countingWriter tallies wire bytes written to a response.
type countingWriter struct {
	w io.Writer
	c *metrics.Counter
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.c.Add(int64(n))
	return n, err
}

// wireBody wraps a request body for decode accounting; without
// instruments it returns the body untouched (no wrapper allocation).
func (s *Server) wireBody(r io.Reader) io.Reader {
	if s.m == nil {
		return r
	}
	return &countingReader{r: r, c: s.m.bytes.With("in")}
}

// wireWriter wraps a response writer for encode accounting.
func (s *Server) wireWriter(w io.Writer) io.Writer {
	if s.m == nil {
		return w
	}
	return &countingWriter{w: w, c: s.m.bytes.With("out")}
}

// frameIn/frameOut/decodeError are the envelope-count hooks.
func (s *Server) frameIn() {
	if s.m != nil {
		s.m.frames.With("in").Inc()
	}
}

func (s *Server) frameOut() {
	if s.m != nil {
		s.m.frames.With("out").Inc()
	}
}

func (s *Server) decodeError() {
	if s.m != nil {
		s.m.decodeErrors.Inc()
	}
}
