package server

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/dsu"
)

// TestDurableServer drives the persistence surface end to end over the
// wire: tenant info reports the durable log position, /checkpoint
// snapshots on demand, and a second server over the same data directory
// recovers exactly the partition the first acknowledged.
func TestDurableServer(t *testing.T) {
	const n = 300
	dir := t.TempDir()
	ctx := context.Background()

	reg := dsu.NewRegistry(dsu.WithDurability(dir))
	_, c := newTestServer(t, Config{Registry: reg})
	if _, err := c.CreateTenant(ctx, TenantSpec{Name: "alpha", N: n, Kind: "lockfree"}); err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		if _, err := c.UniteAll(ctx, "alpha", dsu.UniteRequest{Edges: testEdges(n, 40, seed)}); err != nil {
			t.Fatal(err)
		}
	}
	info, err := c.Tenant(ctx, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Durable || info.Seq != 5 {
		t.Fatalf("info = %+v, want durable at seq 5", info)
	}
	if err := c.Checkpoint(ctx, "alpha"); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// Two more batches past the snapshot, so recovery replays a tail.
	for seed := int64(5); seed < 7; seed++ {
		if _, err := c.UniteAll(ctx, "alpha", dsu.UniteRequest{Edges: testEdges(n, 40, seed)}); err != nil {
			t.Fatal(err)
		}
	}
	want, err := c.Labels(ctx, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh process over the same directory: recovery before serving.
	reg2 := dsu.NewRegistry(dsu.WithDurability(dir))
	restored, err := reg2.RestoreTenants()
	if err != nil {
		t.Fatalf("RestoreTenants: %v", err)
	}
	if len(restored) != 1 || restored[0] != "alpha" {
		t.Fatalf("restored %v", restored)
	}
	_, c2 := newTestServer(t, Config{Registry: reg2})
	info, err = c2.Tenant(ctx, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != 7 || info.Kind != "lockfree" {
		t.Fatalf("recovered info = %+v", info)
	}
	got, err := c2.Labels(ctx, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered labels differ from the acknowledged partition")
	}
	reg2.Close()
}

// TestCheckpointNotDurable: /checkpoint on a tenant without persistence
// answers 409, not a snapshot of nothing.
func TestCheckpointNotDurable(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	if _, err := c.CreateTenant(ctx, TenantSpec{Name: "t", N: 10}); err != nil {
		t.Fatal(err)
	}
	err := c.Checkpoint(ctx, "t")
	if err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("Checkpoint on a non-durable tenant = %v, want 409", err)
	}
}

// TestDurableStreamOverWire: batches sealed by a stream connection are
// logged like RPC batches — a recovered server reports their sequence.
func TestDurableStreamOverWire(t *testing.T) {
	const n = 200
	dir := t.TempDir()
	ctx := context.Background()

	reg := dsu.NewRegistry(dsu.WithDurability(dir))
	_, c := newTestServer(t, Config{Registry: reg})
	if _, err := c.CreateTenant(ctx, TenantSpec{Name: "t", N: n}); err != nil {
		t.Fatal(err)
	}
	st, err := c.OpenStream(ctx, "t", StreamConfig{Buffer: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Push(testEdges(n, 500, 1)...); err != nil {
		t.Fatal(err)
	}
	end, err := st.Close()
	if err != nil {
		t.Fatal(err)
	}
	if end.Failed != 0 || end.Batches == 0 {
		t.Fatalf("stream end = %+v", end)
	}
	want, err := c.Labels(ctx, "t")
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	reg2 := dsu.NewRegistry(dsu.WithDurability(dir))
	if _, err := reg2.RestoreTenants(); err != nil {
		t.Fatal(err)
	}
	_, c2 := newTestServer(t, Config{Registry: reg2})
	info, err := c2.Tenant(ctx, "t")
	if err != nil {
		t.Fatal(err)
	}
	if info.Seq != end.Batches {
		t.Fatalf("recovered seq %d, stream sealed %d batches", info.Seq, end.Batches)
	}
	got, err := c2.Labels(ctx, "t")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered labels differ from the streamed partition")
	}
	reg2.Close()
}
