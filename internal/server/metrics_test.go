package server

import (
	"context"
	"fmt"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/dsu"
	"repro/internal/metrics"
)

// scrape renders the exposition and returns it as text.
func scrape(t *testing.T, m *dsu.Metrics) string {
	t.Helper()
	rec := httptest.NewRecorder()
	m.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != metrics.TextContentType {
		t.Errorf("scrape Content-Type = %q, want %q", ct, metrics.TextContentType)
	}
	return rec.Body.String()
}

// seriesValue extracts one sample's value from an exposition.
func seriesValue(t *testing.T, text, series string) int64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(series) + ` (\d+)$`)
	match := re.FindStringSubmatch(text)
	if match == nil {
		t.Fatalf("exposition has no series %q", series)
	}
	v, err := strconv.ParseInt(match[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestMetricsScrape drives RPC and stream traffic through an
// instrumented server and checks that one scrape carries both halves of
// the story — the dsu per-tenant series agreeing with the replies the
// client got, and the server's own request/frame/byte accounting.
func TestMetricsScrape(t *testing.T) {
	m := dsu.NewMetrics()
	_, c := newTestServer(t, Config{
		Registry: dsu.NewRegistry(dsu.WithMetrics(m)),
		Metrics:  m,
	})
	ctx := context.Background()

	const n = 500
	if _, err := c.CreateTenant(ctx, TenantSpec{Name: "alpha", N: n}); err != nil {
		t.Fatal(err)
	}

	// RPC traffic: three unite batches and one query, keeping the reply
	// totals the scrape must agree with.
	var merged, edges int64
	for i := 0; i < 3; i++ {
		rep, err := c.UniteAll(ctx, "alpha", dsu.UniteRequest{Edges: testEdges(n, 200, int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		merged += rep.Merged
		edges += 200
	}
	if _, err := c.SameSetAll(ctx, "alpha", dsu.QueryRequest{Pairs: testEdges(n, 100, 9)}); err != nil {
		t.Fatal(err)
	}

	// Stream traffic: one connection, two sealed batches.
	st, err := c.OpenStream(ctx, "alpha", StreamConfig{Buffer: 64})
	if err != nil {
		t.Fatal(err)
	}
	streamEdges := testEdges(n, 128, 11)
	if err := st.Push(streamEdges...); err != nil {
		t.Fatal(err)
	}
	end, err := st.Close()
	if err != nil {
		t.Fatal(err)
	}
	merged += end.Merged
	edges += end.Edges

	text := scrape(t, m)

	// The dsu half: scrape totals equal the summed reply values.
	if got := seriesValue(t, text, `dsu_batches_total{tenant="alpha",op="unite"}`); got != 3+int64(end.Batches) {
		t.Errorf("unite batches = %d, want %d", got, 3+end.Batches)
	}
	if got := seriesValue(t, text, `dsu_batch_edges_total{tenant="alpha",op="unite"}`); got != edges {
		t.Errorf("unite edges = %d, want %d", got, edges)
	}
	if got := seriesValue(t, text, `dsu_merged_edges_total{tenant="alpha"}`); got != merged {
		t.Errorf("merged = %d, want %d", got, merged)
	}
	if got := seriesValue(t, text, `dsu_batches_total{tenant="alpha",op="query"}`); got != 1 {
		t.Errorf("query batches = %d, want 1", got)
	}

	// The server half: every endpoint that served traffic has latency
	// samples, the wire moved frames and bytes both ways, and the stream
	// gauge is back to zero now the connection is gone.
	for _, series := range []string{
		`dsu_server_request_seconds_count{endpoint="unite",encoding="binary",status="200"} 3`,
		`dsu_server_request_seconds_count{endpoint="query",encoding="binary",status="200"} 1`,
		`dsu_server_request_seconds_count{endpoint="stream",encoding="binary",status="200"} 1`,
		`dsu_server_streams_active 0`,
		`dsu_server_rpc_inflight{tenant="alpha"} 0`,
	} {
		if !strings.Contains(text, series) {
			t.Errorf("exposition missing %q", series)
		}
	}
	// RPC + stream frames: 3 unite + 1 query + the stream's unite frames in;
	// 4 RPC replies + per-batch replies + the end envelope out.
	if in := seriesValue(t, text, `dsu_server_frames_total{dir="in"}`); in < 5 {
		t.Errorf("frames in = %d, want ≥ 5", in)
	}
	if out := seriesValue(t, text, `dsu_server_frames_total{dir="out"}`); out < 5 {
		t.Errorf("frames out = %d, want ≥ 5", out)
	}
	if b := seriesValue(t, text, `dsu_server_bytes_total{dir="in"}`); b == 0 {
		t.Error("no wire bytes counted in")
	}
	if b := seriesValue(t, text, `dsu_server_bytes_total{dir="out"}`); b == 0 {
		t.Error("no wire bytes counted out")
	}
}

// TestMetricsDecodeErrors checks the rejected-frame counter: garbage on
// the RPC endpoint is a decode error, and the request still gets its
// latency sample under the 4xx status.
func TestMetricsDecodeErrors(t *testing.T) {
	m := dsu.NewMetrics()
	s, c := newTestServer(t, Config{
		Registry: dsu.NewRegistry(dsu.WithMetrics(m)),
		Metrics:  m,
	})
	ctx := context.Background()
	if _, err := c.CreateTenant(ctx, TenantSpec{Name: "alpha", N: 100}); err != nil {
		t.Fatal(err)
	}

	req := httptest.NewRequest("POST", "/v1/tenants/alpha/unite", strings.NewReader("not a frame"))
	req.Header.Set("Content-Type", "application/x-dsu-batch")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 400 {
		t.Fatalf("garbage frame status = %d, want 400", rec.Code)
	}

	text := scrape(t, m)
	if got := seriesValue(t, text, `dsu_server_decode_errors_total`); got != 1 {
		t.Errorf("decode errors = %d, want 1", got)
	}
	if !strings.Contains(text, `dsu_server_request_seconds_count{endpoint="unite",encoding="binary",status="400"} 1`) {
		t.Error("exposition missing the 400 latency sample")
	}
}

// TestEndpointClassification pins the bounded label set — tenant names
// must never leak into the endpoint label.
func TestEndpointClassification(t *testing.T) {
	cases := map[string]string{
		"/healthz":                      "healthz",
		"/v1/tenants":                   "tenants",
		"/v1/tenants/":                  "tenants",
		"/v1/tenants/alpha":             "tenant",
		"/v1/tenants/alpha/labels":      "labels",
		"/v1/tenants/alpha/unite":       "unite",
		"/v1/tenants/alpha/query":       "query",
		"/v1/tenants/alpha/stream":      "stream",
		"/v1/tenants/alpha/whatever":    "other",
		"/completely/unrelated":         "other",
		"/v1/tenants/weird.name/query":  "query",
		"/v1/tenants/alpha/unite/extra": "other",
	}
	for path, want := range cases {
		if got := endpointOf(path); got != want {
			t.Errorf("endpointOf(%q) = %q, want %q", path, got, want)
		}
	}
}

// TestMetricsRPCWaits saturates one tenant's in-flight budget and checks
// the saturation counter moved.
func TestMetricsRPCWaits(t *testing.T) {
	m := dsu.NewMetrics()
	_, c := newTestServer(t, Config{
		Registry:    dsu.NewRegistry(dsu.WithMetrics(m)),
		Metrics:     m,
		MaxInFlight: 1,
	})
	ctx := context.Background()
	const n = 20000
	if _, err := c.CreateTenant(ctx, TenantSpec{Name: "alpha", N: n}); err != nil {
		t.Fatal(err)
	}

	// Enough concurrent RPCs against a budget of one that some must wait.
	const clients = 8
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			_, err := c.UniteAll(ctx, "alpha", dsu.UniteRequest{Edges: testEdges(n, 5000, int64(i))})
			errs <- err
		}(i)
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	text := scrape(t, m)
	// The counter (and its child series) appears only once a wait actually
	// happened; with a budget of one and eight overlapping RPCs that is
	// near-certain, but scheduling may serialize them, so absence is a
	// tolerated outcome, not a failure.
	re := regexp.MustCompile(`(?m)^dsu_server_rpc_waits_total\{tenant="alpha"\} (\d+)$`)
	if match := re.FindStringSubmatch(text); match == nil {
		t.Log("budget never saturated (scheduling); series absent")
	} else if got, _ := strconv.ParseInt(match[1], 10, 64); got < 1 || got > clients {
		t.Errorf("rpc waits = %d, want 1..%d", got, clients)
	}
	if fmt.Sprint(seriesValue(t, text, `dsu_batches_total{tenant="alpha",op="unite"}`)) != fmt.Sprint(clients) {
		t.Errorf("unite batches lost under contention")
	}
}
