// Package server is the network front end: a stdlib net/http service
// exposing the dsu package's tenant-scoped Universe API — named universes
// over flat or sharded backends, batched UniteAll/SameSetAll, and
// streaming ingestion — to remote clients over the wire package's framing
// (length-prefixed binary, or newline-delimited JSON for debugging).
//
// # Surface
//
//	GET    /healthz                     liveness
//	GET    /v1/tenants                  list tenants
//	POST   /v1/tenants                  create a tenant (TenantSpec JSON)
//	GET    /v1/tenants/{name}           tenant info (TenantInfo JSON)
//	DELETE /v1/tenants/{name}           drop a tenant
//	GET    /v1/tenants/{name}/labels    canonical labels (JSON; quiescent)
//	POST   /v1/tenants/{name}/unite     one framed UniteRequest → framed reply
//	POST   /v1/tenants/{name}/query     one framed QueryRequest → framed reply
//	POST   /v1/tenants/{name}/stream    full-duplex edge stream (see below)
//	POST   /v1/tenants/{name}/pipe      pipelined batch RPC (see below)
//	POST   /v1/tenants/{name}/checkpoint  snapshot a durable tenant's log
//
// The unite/query endpoints are batch RPC: one request envelope in the
// body, one reply (or error) envelope back, encoding chosen by
// Content-Type. Any transport-level problem is a plain HTTP status; once
// a well-formed envelope arrives, outcomes travel as envelopes so the two
// encodings behave identically.
//
// # Pipelining
//
// The pipe endpoint is batch RPC without the per-exchange round trip:
// one full-duplex connection carries any number of unite/query
// envelopes, each answered in arrival order by a reply (or error)
// envelope echoing its Seq. The client needn't wait for a reply before
// sending the next request, so small-frame workloads amortize the HTTP
// exchange cost that dominates them (E22); reply frames are coalesced by
// a flush-on-idle writer, so bursts of small replies leave in one write.
// A request that fails validation answers an error envelope and the pipe
// carries on; a malformed frame or a non-unite/query kind answers an
// error envelope and ends the pipe. Closing the request body ends the
// pipe cleanly after the last reply. Per-tenant RPC budgets apply to
// each piped request exactly as they do to single-shot RPC.
//
// # Streaming and backpressure
//
// The stream endpoint runs one dsu.Stream per connection over the
// tenant's universe: unite frames push edges into the stream's
// double-buffered batches, flush frames seal early, and each executed
// batch answers with a reply envelope (Seq = batch id) written as it
// completes. Backpressure is end to end — when the stream is MaxInFlight
// batches ahead, the handler blocks in Push, stops reading the request
// body, and TCP pushes back on the producer. Closing the request body
// drains the stream and answers a final end envelope carrying the
// ingestion totals; Stop (server shutdown) cancels the stream context,
// which ends ingestion promptly (the loop selects against the context,
// so even a push-only connection blocked in a body read observes it),
// surfaces the dsu layer's Flush/Close cancellation errors, and reports
// the abort and any lost batches in the end envelope — the clean-shutdown
// path those cancellation errors exist for.
//
// # Isolation
//
// Tenants are isolated structurally: each universe owns its structure,
// and nothing is shared across names (the dsu.Registry's contract). The
// server adds resource isolation: every tenant has its own bounded
// in-flight budget (MaxInFlight) for RPC batches, so one tenant's burst
// queues against itself, not against other tenants; streams bound
// in-flight batches per connection by construction. Requests are
// validated against the tenant's universe before execution — a remote
// frame can never reach the wait-free core's unchecked indexing.
//
// Tenants whose structure is concurrent-capable (the lock-free kind —
// dsu.Universe.Concurrent) skip the queueing half of that story: their
// batch calls are safe to overlap, so RPCs execute immediately without
// taking the per-tenant budget, and their stream connections run with
// concurrent batch dispatch (up to the connection's in-flight bound of
// batches executing simultaneously, replies in completion order). The
// budget exists to serialize mutations a plain backend can't take
// concurrently; a lock-free tenant doesn't need the protection.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/dsu"
	"repro/internal/metrics"
	"repro/internal/tracespan"
	"repro/internal/wire"
)

// Config tunes one Server. The zero value of every field selects a
// sensible default; Registry is required.
type Config struct {
	// Registry holds the tenants. Preload it (cmd/dsuserve's -tenant
	// flags) or let clients create tenants remotely.
	Registry *dsu.Registry
	// MaxFrame bounds one wire message; ≤ 0 selects wire.DefaultMaxFrame.
	MaxFrame int
	// MaxInFlight bounds, per tenant, the RPC batches executing
	// concurrently, and caps the per-connection in-flight bound a stream
	// may request; ≤ 0 selects 4. Concurrent-capable tenants (the
	// lock-free kind) are exempt from the RPC budget — overlap is their
	// contract — but the stream cap still applies (it bounds buffered
	// batches, which is memory, not safety).
	MaxInFlight int
	// StreamBuffer is the default stream seal threshold in edges; ≤ 0
	// selects the dsu default (65536). Connections may override with the
	// ?buffer= query parameter, clamped to MaxFrame's edge capacity.
	StreamBuffer int
	// MaxN caps the universe size a remote tenant create may request —
	// structure allocation is synchronous and proportional to n, so an
	// unauthenticated create must not be able to reserve arbitrary
	// memory. ≤ 0 selects 1<<26 (~67M elements, ~0.5 GiB per flat
	// structure). Preloaded tenants (the operator's own flags) are not
	// subject to it.
	MaxN int
	// Log, when non-nil, receives structured log records: tenant
	// lifecycle and stream open/close at Info, per-RPC lines (tenant,
	// endpoint, trace ID, outcome) at Debug. Nil disables logging at
	// zero cost.
	Log *slog.Logger
	// Metrics, when non-nil, instruments the front end onto the same
	// registry that carries the dsu per-tenant series (pass the same
	// *dsu.Metrics given to dsu.WithMetrics), so one /metrics scrape
	// covers the whole stack: request latency by endpoint/encoding/
	// status, active streams, wire frames and bytes in/out, decode
	// errors, and per-tenant RPC budget pressure. Nil leaves the server
	// uninstrumented at zero cost.
	Metrics *dsu.Metrics
}

// Server is the HTTP front end. Create with New; it is an http.Handler.
type Server struct {
	cfg  Config
	reg  *dsu.Registry
	log  *slog.Logger   // never nil (no-op handler when Config.Log is nil)
	m    *serverMetrics // nil when uninstrumented
	stop chan struct{}
	once sync.Once
	sems sync.Map // tenant name → chan struct{} (RPC in-flight budget)
}

// noopHandler is the disabled logging mode: a handler that reports every
// level disabled, so call sites need no nil checks and pay no argument
// evaluation (slog checks Enabled before assembling the record).
type noopHandler struct{}

func (noopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (noopHandler) Handle(context.Context, slog.Record) error { return nil }
func (noopHandler) WithAttrs([]slog.Attr) slog.Handler        { return noopHandler{} }
func (noopHandler) WithGroup(string) slog.Handler             { return noopHandler{} }

// New returns a server over cfg.Registry. It panics on a nil registry —
// that is a programming error, not a runtime condition.
func New(cfg Config) *Server {
	if cfg.Registry == nil {
		panic("server: Config.Registry is required")
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = wire.DefaultMaxFrame
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4
	}
	if cfg.MaxN <= 0 {
		cfg.MaxN = 1 << 26
	}
	s := &Server{cfg: cfg, reg: cfg.Registry, log: cfg.Log, stop: make(chan struct{})}
	if s.log == nil {
		s.log = slog.New(noopHandler{})
	}
	if cfg.Metrics != nil {
		s.m = newServerMetrics(cfg.Metrics.Registry())
	}
	return s
}

// Stop begins shutdown: open stream connections have their contexts
// cancelled (their clients get loss-reporting end envelopes), and RPCs
// waiting on in-flight budgets abort. Pair with http.Server.Shutdown,
// which handles the listener and in-flight handlers. Idempotent.
func (s *Server) Stop() { s.once.Do(func() { close(s.stop) }) }

// TenantSpec is the JSON body of POST /v1/tenants: the tenant name plus
// the structure configuration, phrased in the dsu option vocabulary's
// wire-friendly form. Kind names the structure kind per dsu.ParseKind
// ("flat", "sharded", "lockfree"); left empty, Shards > 0 selects a
// sharded structure. Find names a strategy per dsu.ParseFindStrategy
// ("auto" turns on the adaptive policy); Seed fixes the random linking
// order for reproducible tenants.
type TenantSpec struct {
	Name             string `json:"name"`
	N                int    `json:"n"`
	Kind             string `json:"kind,omitempty"`
	Shards           int    `json:"shards,omitempty"`
	Find             string `json:"find,omitempty"`
	EarlyTermination bool   `json:"early_termination,omitempty"`
	Seed             uint64 `json:"seed,omitempty"`
}

// Options translates the spec into the dsu option vocabulary — the one
// translation both remote creates and cmd/dsuserve's preload flags use,
// so the two paths cannot drift.
func (sp TenantSpec) Options() ([]dsu.Option, error) {
	find, err := dsu.ParseFindStrategy(sp.Find)
	if err != nil {
		return nil, err
	}
	kind, err := dsu.ParseKind(sp.Kind)
	if err != nil {
		return nil, err
	}
	var opts []dsu.Option
	if kind != 0 {
		opts = append(opts, dsu.WithKind(kind))
	}
	if find != 0 {
		opts = append(opts, dsu.WithFind(find))
	}
	if sp.EarlyTermination {
		opts = append(opts, dsu.WithEarlyTermination())
	}
	if sp.Seed != 0 {
		opts = append(opts, dsu.WithSeed(sp.Seed))
	}
	if sp.Shards > 0 {
		opts = append(opts, dsu.WithShards(sp.Shards))
	}
	return opts, nil
}

// TenantInfo describes one tenant in list/info responses.
type TenantInfo struct {
	Name     string `json:"name"`
	N        int    `json:"n"`
	Kind     string `json:"kind"`
	Shards   int    `json:"shards,omitempty"`
	Adaptive bool   `json:"adaptive,omitempty"`
	// Concurrent reports the lock-free kind's capability: this tenant's
	// requests run truly concurrently (no per-tenant RPC queueing,
	// concurrent stream dispatch).
	Concurrent bool `json:"concurrent,omitempty"`
	Sets       int  `json:"sets"`
	// Seq is the tenant's applied-batch sequence number — on a durable
	// tenant, the durable log position. Operators compare it across
	// replicas or against a log's dsulog info output.
	Seq uint64 `json:"seq"`
	// Durable reports whether the tenant persists its mutations to a
	// write-ahead log (the server was started with -data).
	Durable bool `json:"durable,omitempty"`
}

func infoOf(u *dsu.Universe) TenantInfo {
	return TenantInfo{
		Name:       u.Name(),
		N:          u.N(),
		Kind:       u.Kind(),
		Shards:     u.Shards(),
		Adaptive:   u.Adaptive(),
		Concurrent: u.Concurrent(),
		Sets:       u.Sets(),
		Seq:        u.Seq(),
		Durable:    u.Durable(),
	}
}

// validName keeps tenant names path- and log-safe.
func validName(name string) bool {
	if name == "" || len(name) > 128 {
		return false
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// ServeHTTP routes the request; when the server is instrumented it also
// times the whole exchange into the latency histogram, labeled by
// endpoint class, wire encoding, and final HTTP status.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.m == nil {
		s.route(w, r)
		return
	}
	start := time.Now()
	sr := &statusRecorder{ResponseWriter: w}
	s.route(sr, r)
	s.m.latency.With(endpointOf(r.URL.Path), encodingOf(r), strconv.Itoa(sr.status())).
		Observe(time.Since(start).Seconds())
}

func (s *Server) route(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	switch {
	case path == "/healthz":
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	case path == "/v1/tenants" || path == "/v1/tenants/":
		s.handleTenants(w, r)
	case strings.HasPrefix(path, "/v1/tenants/"):
		rest := strings.TrimPrefix(path, "/v1/tenants/")
		name, action, _ := strings.Cut(rest, "/")
		if !validName(name) {
			http.Error(w, "invalid tenant name", http.StatusBadRequest)
			return
		}
		u, ok := s.reg.Get(name)
		if !ok {
			http.Error(w, fmt.Sprintf("tenant %q not found", name), http.StatusNotFound)
			return
		}
		switch action {
		case "":
			s.handleTenant(w, r, u)
		case "labels":
			if r.Method != http.MethodGet {
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			writeJSON(w, http.StatusOK, u.CanonicalLabels())
		case "unite":
			s.handleRPC(w, r, u, wire.KindUnite)
		case "query":
			s.handleRPC(w, r, u, wire.KindQuery)
		case "stream":
			s.handleStream(w, r, u)
		case "pipe":
			s.handlePipe(w, r, u)
		case "checkpoint":
			s.handleCheckpoint(w, r, u)
		default:
			http.Error(w, "unknown action", http.StatusNotFound)
		}
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		infos := make([]TenantInfo, 0)
		for _, name := range s.reg.Names() {
			if u, ok := s.reg.Get(name); ok {
				infos = append(infos, infoOf(u))
			}
		}
		writeJSON(w, http.StatusOK, infos)
	case http.MethodPost:
		var spec TenantSpec
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&spec); err != nil {
			http.Error(w, "bad tenant spec: "+err.Error(), http.StatusBadRequest)
			return
		}
		if !validName(spec.Name) {
			http.Error(w, "invalid tenant name", http.StatusBadRequest)
			return
		}
		if spec.N > s.cfg.MaxN {
			http.Error(w, fmt.Sprintf("universe size %d exceeds this server's limit of %d", spec.N, s.cfg.MaxN), http.StatusBadRequest)
			return
		}
		opts, err := spec.Options()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		u, err := s.reg.Create(spec.Name, spec.N, opts...)
		if err != nil {
			status := http.StatusBadRequest
			if strings.Contains(err.Error(), "already exists") {
				status = http.StatusConflict
			}
			http.Error(w, err.Error(), status)
			return
		}
		s.log.Info("tenant created",
			"tenant", u.Name(), "n", u.N(), "kind", u.Kind(), "shards", u.Shards())
		writeJSON(w, http.StatusCreated, infoOf(u))
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleTenant(w http.ResponseWriter, r *http.Request, u *dsu.Universe) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, infoOf(u))
	case http.MethodDelete:
		s.reg.Drop(u.Name())
		s.sems.Delete(u.Name())
		s.log.Info("tenant dropped", "tenant", u.Name())
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// handleCheckpoint snapshots a durable tenant's log on demand: the dsu
// layer quiesces the structure (in-flight mutation batches drain, new
// ones hold briefly) and writes a durable snapshot, bounding recovery
// time for everything logged so far. 204 on success, 409 on a
// non-durable tenant, 500 when the snapshot write fails (the log is
// poisoned; subsequent mutations will fail too).
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request, u *dsu.Universe) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	switch err := u.Checkpoint(); {
	case err == nil:
		s.log.Info("checkpoint", "tenant", u.Name(), "seq", u.Seq())
		w.WriteHeader(http.StatusNoContent)
	case errors.Is(err, dsu.ErrNotDurable):
		http.Error(w, err.Error(), http.StatusConflict)
	default:
		s.log.Error("checkpoint failed", "tenant", u.Name(), "err", err)
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// sem returns the tenant's RPC in-flight budget.
func (s *Server) sem(name string) chan struct{} {
	if v, ok := s.sems.Load(name); ok {
		return v.(chan struct{})
	}
	v, _ := s.sems.LoadOrStore(name, make(chan struct{}, s.cfg.MaxInFlight))
	return v.(chan struct{})
}

// handleRPC answers one framed batch request. Envelope kind must match
// the endpoint — /unite carries unite envelopes, /query query envelopes —
// so a misrouted frame fails loudly instead of mutating the wrong way.
//
// On a traced tenant the whole exchange records one span tree: the trace
// opens before the frame is decoded (wire-decode span), adopts the
// client's trace context if the envelope carried one, waits under a
// queue-wait span, executes through the traced DTO methods (execute and
// sub-spans recorded at the executor seam), and closes with a
// reply-encode span; the reply envelope carries the trace context back.
// Exchanges that fail before execution — bad frames, kind mismatches,
// shutdown — drop their trace unrecorded: there is no batch to explain.
func (s *Server) handleRPC(w http.ResponseWriter, r *http.Request, u *dsu.Universe, want wire.Kind) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	format, ok := wire.FormatFor(r.Header.Get("Content-Type"))
	if !ok {
		http.Error(w, "unsupported content type", http.StatusUnsupportedMediaType)
		return
	}
	op, endpoint := tracespan.OpQuery, "query"
	if want == wire.KindUnite {
		op, endpoint = tracespan.OpUnite, "unite"
	}
	rec := u.TraceRecorder() // nil (all no-ops) on an untraced tenant
	tr := rec.Start(op, tracespan.SourceRPC)
	wd := tr.Start(tracespan.StageWireDecode, tracespan.Root)
	// Pooled codec: the request envelope lives in decoder scratch, which
	// is safe here because execution is synchronous and neither the
	// executor nor the prefilter retains the edge slice past the call.
	dec := wire.AcquireDecoder(s.wireBody(r.Body), format, s.cfg.MaxFrame)
	defer wire.ReleaseDecoder(dec)
	env, err := dec.Decode()
	tr.End(wd)
	if err != nil {
		s.decodeError()
		http.Error(w, "bad frame: "+err.Error(), http.StatusBadRequest)
		return
	}
	s.frameIn()
	if env.Kind != want {
		http.Error(w, fmt.Sprintf("endpoint wants %v envelopes, got %v", want, env.Kind), http.StatusBadRequest)
		return
	}
	tr.Adopt(tracespan.Context{Trace: env.Trace, Span: env.Span})
	qw := tr.Start(tracespan.StageQueueWait, tracespan.Root)

	// Per-tenant bounded in-flight: a burst queues against its own tenant's
	// budget (or gives up with the client), never against other tenants.
	// Concurrent-capable tenants skip the budget — their batch calls are
	// safe to overlap, so queueing would only manufacture latency — and
	// check only that the server is still accepting work.
	if u.Concurrent() {
		select {
		case <-s.stop:
			http.Error(w, "server shutting down", http.StatusServiceUnavailable)
			return
		default:
		}
	} else {
		select {
		case <-s.stop:
			http.Error(w, "server shutting down", http.StatusServiceUnavailable)
			return
		default:
		}
		sem := s.sem(u.Name())
		select {
		case sem <- struct{}{}:
		default:
			// Budget full: the saturation counter records the event —
			// dsu_server_rpc_waits_total climbing is the signal to raise
			// MaxInFlight or split the tenant — then wait like before.
			if s.m != nil {
				s.m.rpcWaits.With(u.Name()).Inc()
			}
			select {
			case sem <- struct{}{}:
			case <-r.Context().Done():
				http.Error(w, "client went away", http.StatusRequestTimeout)
				return
			case <-s.stop:
				http.Error(w, "server shutting down", http.StatusServiceUnavailable)
				return
			}
		}
		defer func() { <-sem }()
	}
	tr.End(qw)

	var inflight *metrics.Gauge // nil-safe when uninstrumented
	if s.m != nil {
		inflight = s.m.rpcInFlight.With(u.Name())
	}
	inflight.Inc()
	var rep dsu.BatchReply
	var execErr error
	var edges int
	switch want {
	case wire.KindUnite:
		edges = len(env.Unite.Edges)
		rep, execErr = u.UniteAllTraced(*env.Unite, tr)
	case wire.KindQuery:
		edges = len(env.Query.Pairs)
		rep, execErr = u.SameSetAllTraced(*env.Query, tr)
	}
	inflight.Dec()
	w.Header().Set("Content-Type", format.ContentType())
	enc := wire.AcquireEncoder(s.wireWriter(w), format)
	defer wire.ReleaseEncoder(enc)
	if execErr != nil {
		// Validation failure: nothing executed, so the trace is dropped —
		// the error envelope is the whole story.
		if enc.Encode(&wire.Envelope{Kind: wire.KindError, Seq: env.Seq, Error: execErr.Error()}) == nil {
			s.frameOut()
		}
		s.log.Debug("rpc rejected", "tenant", u.Name(), "endpoint", endpoint,
			"trace", tracespan.FormatTraceID(tr.ID()), "err", execErr.Error())
		return
	}
	re := tr.Start(tracespan.StageReplyEncode, tracespan.Root)
	renv := &wire.Envelope{Kind: wire.KindReply, Seq: env.Seq, Reply: &rep}
	if c := tr.Context(); c.Valid() {
		renv.Trace, renv.Span = c.Trace, c.Span
	}
	if enc.Encode(renv) == nil {
		s.frameOut()
	}
	tr.End(re)
	if a := tr.Attrs(tracespan.Root); a != nil {
		a.Edges = int64(edges)
		a.Merged = rep.Merged
	}
	rec.Finish(tr)
	s.log.Debug("rpc", "tenant", u.Name(), "endpoint", endpoint,
		"trace", tracespan.FormatTraceID(tr.ID()), "edges", edges, "merged", rep.Merged)
}

// streamEdgeCap converts the frame limit into a sane ceiling for
// client-requested stream buffers.
func (s *Server) streamEdgeCap() int { return s.cfg.MaxFrame / 8 }

// handleStream runs one dsu.Stream per connection (see the package docs
// for the protocol and backpressure story).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request, u *dsu.Universe) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	format, ok := wire.FormatFor(r.Header.Get("Content-Type"))
	if !ok {
		http.Error(w, "unsupported content type", http.StatusUnsupportedMediaType)
		return
	}
	if s.m != nil {
		s.m.streams.Inc()
		defer s.m.streams.Dec()
	}

	// Connection-level stream tuning from query parameters, clamped to the
	// server's own bounds.
	q := r.URL.Query()
	buffer := s.cfg.StreamBuffer
	if v, err := strconv.Atoi(q.Get("buffer")); err == nil && v > 0 {
		buffer = v
	}
	if edgeCap := s.streamEdgeCap(); buffer > edgeCap {
		buffer = edgeCap
	}
	inflight := 0 // dsu default (1) unless requested
	if v, err := strconv.Atoi(q.Get("inflight")); err == nil && v > 0 {
		inflight = v
	}
	if inflight > s.cfg.MaxInFlight {
		inflight = s.cfg.MaxInFlight
	}
	batch := dsu.BatchOptions{
		Prefilter:       q.Get("prefilter") == "1" || q.Get("prefilter") == "true",
		ConnectedFilter: q.Get("connected") == "1" || q.Get("connected") == "true",
	}
	if v, err := strconv.Atoi(q.Get("workers")); err == nil && v > 0 {
		// Stream batches bypass the DTO resolve step, so apply its
		// goroutine cap here.
		batch.Workers = min(v, dsu.MaxBatchWorkers)
	}
	if v, err := strconv.Atoi(q.Get("grain")); err == nil && v > 0 {
		batch.Grain = v
	}

	// The stream context dies with the client or with server Stop; either
	// way the dsu layer's cancellation errors surface at the Push/Flush
	// call sites below and in the final end envelope.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	go func() {
		select {
		case <-s.stop:
			cancel()
		case <-ctx.Done():
		}
	}()

	w.Header().Set("Content-Type", format.ContentType())
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex() // HTTP/1.1: read the body while answering
	w.WriteHeader(http.StatusOK)
	_ = rc.Flush()

	// Replies leave through the coalescing writer: a burst of small reply
	// frames (concurrent dispatch, tiny batches) lands in one underlying
	// write and one HTTP flush instead of one of each per frame. Closing
	// it before the handler returns forces the final flush.
	fw := wire.NewFlushWriter(s.wireWriter(w), 0, func() { _ = rc.Flush() })
	defer fw.Close()
	enc := wire.AcquireEncoder(fw, format)
	defer wire.ReleaseEncoder(enc)
	var wmu sync.Mutex // OnBatch (dispatcher goroutine) vs. this handler
	write := func(env *wire.Envelope) {
		wmu.Lock()
		defer wmu.Unlock()
		if err := enc.Encode(env); err == nil {
			s.frameOut()
		}
	}

	st := u.NewStream(
		dsu.WithStreamContext(ctx),
		dsu.WithBufferSize(buffer),
		dsu.WithMaxInFlight(inflight),
		// Honored only by concurrent-capable tenants (the dsu layer gates
		// it on the backend); plain tenants keep in-order dispatch.
		dsu.WithConcurrentBatches(),
		dsu.WithBatchOptions(batch.Options()...),
		dsu.WithOnBatch(func(br dsu.BatchResult) {
			if br.Err != nil {
				write(&wire.Envelope{Kind: wire.KindError, Seq: br.ID, Error: br.Err.Error()})
				return
			}
			// The callback runs before the trace is finished, so the
			// reply-encode span lands inside the batch's recorded tree, and
			// the reply envelope reports the batch's trace identity.
			re := br.Trace.Start(tracespan.StageReplyEncode, tracespan.Root)
			rep := dsu.ReplyOf(br)
			renv := &wire.Envelope{Kind: wire.KindReply, Seq: br.ID, Reply: &rep}
			if c := br.Trace.Context(); c.Valid() {
				renv.Trace, renv.Span = c.Trace, c.Span
			}
			write(renv)
			br.Trace.End(re)
		}),
	)
	s.log.Info("stream open", "tenant", u.Name(), "format", format.String(),
		"buffer", st.BufferSize(), "inflight", inflight, "concurrent", u.Concurrent())

	// Decode on a side goroutine so the ingest loop can select against the
	// stream context: a push-only connection otherwise blocks in a body
	// read and would never observe Stop — the handler must end promptly to
	// deliver the loss-reporting end envelope inside the drain budget. The
	// goroutine parks in sending position when ctx dies first and exits
	// once the handler's return tears the connection down.
	type decoded struct {
		env *wire.Envelope
		err error
	}
	frames := make(chan decoded)
	// The pooled decoder's envelopes live in its scratch, so the goroutine
	// must not decode the next frame while the ingest loop still reads the
	// previous one: the ack channel hands the scratch back after each
	// frame is fully processed (PushLinked copies edges before returning,
	// so "processed" is synchronous).
	ack := make(chan struct{}, 1)
	go func() {
		dec := wire.AcquireDecoder(s.wireBody(r.Body), format, s.cfg.MaxFrame)
		defer wire.ReleaseDecoder(dec)
		for {
			env, err := dec.Decode()
			if err == nil {
				s.frameIn()
			} else if err != io.EOF {
				s.decodeError()
			}
			select {
			case frames <- decoded{env, err}:
				if err != nil {
					return
				}
			case <-ctx.Done():
				return
			}
			select {
			case <-ack:
			case <-ctx.Done():
				return
			}
		}
	}()
	var abortErr error // the cancellation that cut ingestion short, if any
ingest:
	for {
		var d decoded
		select {
		case <-ctx.Done():
			abortErr = ctx.Err()
			write(&wire.Envelope{Kind: wire.KindError, Error: "stream aborted: " + abortErr.Error()})
			break ingest
		case d = <-frames:
		}
		env, err := d.env, d.err
		switch {
		case err == io.EOF:
			break ingest // clean end of the edge stream
		case err != nil:
			write(&wire.Envelope{Kind: wire.KindError, Error: "bad frame: " + err.Error()})
			break ingest
		}
		switch env.Kind {
		case wire.KindUnite:
			if err := u.Validate(env.Unite.Edges); err != nil {
				// A range violation poisons nothing: reject the frame,
				// keep the stream.
				write(&wire.Envelope{Kind: wire.KindError, Seq: env.Seq, Error: err.Error()})
				break
			}
			// A traced frame's context rides into the batch its edges land
			// in (first link wins); a zero context makes this a plain Push.
			if err := st.PushLinked(dsu.TraceContext{Trace: env.Trace, Span: env.Span}, env.Unite.Edges...); err != nil {
				write(&wire.Envelope{Kind: wire.KindError, Seq: env.Seq, Error: err.Error()})
				break ingest
			}
		case wire.KindFlush:
			if err := st.Flush(); err != nil {
				write(&wire.Envelope{Kind: wire.KindError, Seq: env.Seq, Error: err.Error()})
				break ingest
			}
		default:
			write(&wire.Envelope{Kind: wire.KindError, Seq: env.Seq, Error: fmt.Sprintf("stream connections take unite/flush envelopes, got %v", env.Kind)})
			break ingest
		}
		ack <- struct{}{} // done with env; the decoder may reuse its scratch
	}

	closeErr := st.Close()
	if closeErr == nil {
		// Even when every sealed batch executed before the cancellation
		// (nothing lost), an aborted connection must not look like a clean
		// close: the client's edge stream was cut short.
		closeErr = abortErr
	}
	end := &wire.Envelope{Kind: wire.KindEnd, End: &wire.StreamEnd{
		Batches:  st.Batches(),
		Edges:    st.Edges(),
		Merged:   st.Merged(),
		Filtered: st.Filtered(),
		Failed:   st.Failed(),
	}}
	if closeErr != nil {
		end.Error = closeErr.Error()
	}
	write(end)
	s.log.Info("stream done", "tenant", u.Name(), "batches", st.Batches(),
		"edges", st.Edges(), "merged", st.Merged(), "failed", st.Failed(), "err", closeErr)
}

// handlePipe answers a pipelined sequence of batch RPCs on one
// full-duplex connection (see the package docs for the protocol). Every
// unite/query envelope executes in arrival order and answers with a
// reply or error envelope echoing its Seq; requests, replies, and the
// codecs between them all run on recycled wire buffers, and replies
// leave through the coalescing writer so pipelined small frames cost one
// write, not one apiece.
func (s *Server) handlePipe(w http.ResponseWriter, r *http.Request, u *dsu.Universe) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	format, ok := wire.FormatFor(r.Header.Get("Content-Type"))
	if !ok {
		http.Error(w, "unsupported content type", http.StatusUnsupportedMediaType)
		return
	}
	select {
	case <-s.stop:
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
		return
	default:
	}

	// The pipe dies with the client or with server Stop, exactly like a
	// stream connection.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	go func() {
		select {
		case <-s.stop:
			cancel()
		case <-ctx.Done():
		}
	}()

	w.Header().Set("Content-Type", format.ContentType())
	rc := http.NewResponseController(w)
	_ = rc.EnableFullDuplex() // HTTP/1.1: read the body while answering
	w.WriteHeader(http.StatusOK)
	_ = rc.Flush()

	fw := wire.NewFlushWriter(s.wireWriter(w), 0, func() { _ = rc.Flush() })
	defer fw.Close()
	enc := wire.AcquireEncoder(fw, format)
	defer wire.ReleaseEncoder(enc)
	answer := func(env *wire.Envelope) {
		if enc.Encode(env) == nil {
			s.frameOut()
		}
	}

	// Decode on a side goroutine with the same scratch-handoff protocol as
	// handleStream: the serve loop acks each envelope before the decoder
	// reuses its scratch, and selects against ctx so shutdown cuts through
	// a blocked body read.
	type decoded struct {
		env *wire.Envelope
		err error
	}
	frames := make(chan decoded)
	ack := make(chan struct{}, 1)
	go func() {
		dec := wire.AcquireDecoder(s.wireBody(r.Body), format, s.cfg.MaxFrame)
		defer wire.ReleaseDecoder(dec)
		for {
			env, err := dec.Decode()
			if err == nil {
				s.frameIn()
			} else if err != io.EOF {
				s.decodeError()
			}
			select {
			case frames <- decoded{env, err}:
				if err != nil {
					return
				}
			case <-ctx.Done():
				return
			}
			select {
			case <-ack:
			case <-ctx.Done():
				return
			}
		}
	}()

	rec := u.TraceRecorder() // nil (all no-ops) on an untraced tenant
	sem := s.sem(u.Name())
	concurrent := u.Concurrent()
	s.log.Info("pipe open", "tenant", u.Name(), "format", format.String(), "concurrent", concurrent)

	var served uint64
	var rep dsu.BatchReply
	var renv wire.Envelope // reused across replies; Encode doesn't retain it
serve:
	for {
		var d decoded
		select {
		case <-ctx.Done():
			renv = wire.Envelope{Kind: wire.KindError, Error: "pipe aborted: " + ctx.Err().Error()}
			answer(&renv)
			break serve
		case d = <-frames:
		}
		switch {
		case d.err == io.EOF:
			break serve // clean end of the request stream
		case d.err != nil:
			renv = wire.Envelope{Kind: wire.KindError, Error: "bad frame: " + d.err.Error()}
			answer(&renv)
			break serve
		}
		env := d.env
		var op string
		switch env.Kind {
		case wire.KindUnite:
			op = tracespan.OpUnite
		case wire.KindQuery:
			op = tracespan.OpQuery
		default:
			renv = wire.Envelope{Kind: wire.KindError, Seq: env.Seq,
				Error: fmt.Sprintf("pipe connections take unite/query envelopes, got %v", env.Kind)}
			answer(&renv)
			break serve
		}
		tr := rec.Start(op, tracespan.SourceRPC)
		tr.Adopt(tracespan.Context{Trace: env.Trace, Span: env.Span})
		// Per-tenant budget, as for single-shot RPC: piped requests from a
		// plain tenant serialize against the tenant's other connections;
		// concurrent-capable tenants overlap by contract.
		if !concurrent {
			qw := tr.Start(tracespan.StageQueueWait, tracespan.Root)
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				continue // the ctx.Done arm above ends the pipe
			}
			tr.End(qw)
		}
		var execErr error
		var edges int
		if env.Kind == wire.KindUnite {
			edges = len(env.Unite.Edges)
			rep, execErr = u.UniteAllTraced(*env.Unite, tr)
		} else {
			edges = len(env.Query.Pairs)
			rep, execErr = u.SameSetAllTraced(*env.Query, tr)
		}
		if !concurrent {
			<-sem
		}
		if execErr != nil {
			// Validation failure: nothing executed and nothing is poisoned —
			// answer the error and keep the pipe.
			renv = wire.Envelope{Kind: wire.KindError, Seq: env.Seq, Error: execErr.Error()}
			answer(&renv)
			ack <- struct{}{}
			continue
		}
		re := tr.Start(tracespan.StageReplyEncode, tracespan.Root)
		renv = wire.Envelope{Kind: wire.KindReply, Seq: env.Seq, Reply: &rep}
		if c := tr.Context(); c.Valid() {
			renv.Trace, renv.Span = c.Trace, c.Span
		}
		answer(&renv)
		tr.End(re)
		if a := tr.Attrs(tracespan.Root); a != nil {
			a.Edges = int64(edges)
			a.Merged = rep.Merged
		}
		rec.Finish(tr)
		served++
		ack <- struct{}{} // done with env; the decoder may reuse its scratch
	}
	s.log.Info("pipe done", "tenant", u.Name(), "served", served)
}
