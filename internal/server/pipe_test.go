package server

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"repro/dsu"
	"repro/internal/wire"
)

// copyEnvelope deep-copies a pipe reply out of the connection's pooled
// decoder — the pattern OnReply callers use for anything that outlives
// the callback.
func copyEnvelope(env *wire.Envelope) *wire.Envelope {
	cp := *env
	if env.Reply != nil {
		rep := *env.Reply
		if rep.Answers != nil {
			rep.Answers = append(make([]bool, 0, len(rep.Answers)), rep.Answers...)
		}
		cp.Reply = &rep
	}
	if env.End != nil {
		end := *env.End
		cp.End = &end
	}
	return &cp
}

// TestPipeMatchesInProcess drives the pipelined endpoint in both
// encodings: interleaved unite and query batches enqueued without
// waiting, replies collected from OnReply, and the result compared
// against the sequential in-process oracle — seq-for-seq, in request
// order.
func TestPipeMatchesInProcess(t *testing.T) {
	const n, m = 600, 240
	for _, format := range []wire.Format{wire.Binary, wire.JSON} {
		t.Run(format.String(), func(t *testing.T) {
			reg := dsu.NewRegistry()
			_, c := newTestServer(t, Config{Registry: reg})
			c.format = format
			ctx := context.Background()
			if _, err := c.CreateTenant(ctx, TenantSpec{Name: "p", N: n, Seed: 7}); err != nil {
				t.Fatal(err)
			}
			oracle := dsu.New(n, dsu.WithSeed(7))

			var replies []*wire.Envelope
			done := make(chan struct{})
			cp, err := c.OpenPipe(ctx, "p", PipeConfig{OnReply: func(env *wire.Envelope) {
				replies = append(replies, copyEnvelope(env)) // reader goroutine only
			}})
			if err != nil {
				t.Fatal(err)
			}
			go func() { defer close(done); <-cp.done }()

			type round struct {
				seq     uint64
				unite   []dsu.Edge
				query   []dsu.Edge
				merged  int
				answers []bool
			}
			var rounds []round
			const batches = 24
			for i := 0; i < batches; i++ {
				var r round
				if i%3 == 2 {
					r.query = testEdges(n, 40, int64(1000+i))
					r.answers = oracle.SameSetAll(r.query)
					r.seq, err = cp.SameSetAll(dsu.QueryRequest{Pairs: r.query})
				} else {
					r.unite = testEdges(n, 40, int64(2000+i))
					r.merged = oracle.UniteAll(r.unite)
					r.seq, err = cp.UniteAll(dsu.UniteRequest{Edges: r.unite})
				}
				if err != nil {
					t.Fatalf("enqueue #%d: %v", i, err)
				}
				rounds = append(rounds, r)
			}
			if err := cp.Close(); err != nil {
				t.Fatal(err)
			}
			<-done

			if len(replies) != batches {
				t.Fatalf("got %d replies, want %d", len(replies), batches)
			}
			for i, r := range rounds {
				env := replies[i]
				if env.Kind != wire.KindReply || env.Seq != r.seq {
					t.Fatalf("reply #%d = kind %v seq %d, want reply seq %d (error %q)", i, env.Kind, env.Seq, r.seq, env.Error)
				}
				if r.query != nil {
					if !reflect.DeepEqual(env.Reply.Answers, r.answers) {
						t.Errorf("query seq %d answers differ from oracle", r.seq)
					}
				} else if int(env.Reply.Merged) != r.merged {
					t.Errorf("unite seq %d Merged = %d, want %d", r.seq, env.Reply.Merged, r.merged)
				}
			}

			labels, err := c.Labels(ctx, "p")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(labels, oracle.CanonicalLabels()) {
				t.Error("piped tenant's final partition differs from oracle")
			}
		})
	}
}

// TestPipeSurvivesValidationError pins the pipe's error contract: a
// batch that fails validation answers a seq-carrying error envelope and
// the connection keeps serving.
func TestPipeSurvivesValidationError(t *testing.T) {
	const n = 100
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	if _, err := c.CreateTenant(ctx, TenantSpec{Name: "v", N: n}); err != nil {
		t.Fatal(err)
	}
	var replies []*wire.Envelope
	cp, err := c.OpenPipe(ctx, "v", PipeConfig{OnReply: func(env *wire.Envelope) {
		replies = append(replies, copyEnvelope(env))
	}})
	if err != nil {
		t.Fatal(err)
	}
	badSeq, err := cp.UniteAll(dsu.UniteRequest{Edges: []dsu.Edge{{X: 0, Y: n}}}) // out of range
	if err != nil {
		t.Fatal(err)
	}
	goodSeq, err := cp.UniteAll(dsu.UniteRequest{Edges: []dsu.Edge{{X: 1, Y: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}
	if len(replies) != 2 {
		t.Fatalf("got %d replies, want 2", len(replies))
	}
	if replies[0].Kind != wire.KindError || replies[0].Seq != badSeq || !strings.Contains(replies[0].Error, "universe") {
		t.Errorf("bad batch reply = %+v, want a seq-%d universe error", replies[0], badSeq)
	}
	if replies[1].Kind != wire.KindReply || replies[1].Seq != goodSeq || replies[1].Reply.Merged != 1 {
		t.Errorf("pipe did not keep serving after the error: %+v", replies[1])
	}
}

// TestPipeRejectsNonBatchKinds drives the endpoint with a raw frame the
// pipe vocabulary excludes and expects a seq-echoing error envelope and
// a closed response.
func TestPipeRejectsNonBatchKinds(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	if _, err := c.CreateTenant(ctx, TenantSpec{Name: "k", N: 10}); err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	if err := wire.NewEncoder(&body, wire.Binary).Encode(&wire.Envelope{Kind: wire.KindFlush, Seq: 41}); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/tenants/k/pipe", &body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", wire.Binary.ContentType())
	resp, err := c.hc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	env, err := wire.NewDecoder(resp.Body, wire.Binary, wire.DefaultMaxFrame).Decode()
	if err != nil {
		t.Fatal(err)
	}
	if env.Kind != wire.KindError || env.Seq != 41 || !strings.Contains(env.Error, "unite/query") {
		t.Fatalf("flush frame on a pipe answered %+v, want a seq-41 vocabulary error", env)
	}
	if _, err := wire.NewDecoder(resp.Body, wire.Binary, wire.DefaultMaxFrame).Decode(); err != io.EOF {
		t.Fatalf("pipe stayed open after a vocabulary error: %v", err)
	}
}

// TestRPCReplyStability is the satellite-1 regression at the RPC
// boundary: a reply handed out by Client must be a stable copy,
// unaffected by later traffic reusing the connection's pooled decoder.
func TestRPCReplyStability(t *testing.T) {
	const n = 400
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	if _, err := c.CreateTenant(ctx, TenantSpec{Name: "s", N: n}); err != nil {
		t.Fatal(err)
	}
	pairs := testEdges(n, 64, 3)
	held, err := c.SameSetAll(ctx, "s", dsu.QueryRequest{Pairs: pairs})
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]bool(nil), held.Answers...)
	merged := held.Merged
	for i := 0; i < 25; i++ {
		if _, err := c.UniteAll(ctx, "s", dsu.UniteRequest{Edges: testEdges(n, 64, int64(i))}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.SameSetAll(ctx, "s", dsu.QueryRequest{Pairs: pairs}); err != nil {
			t.Fatal(err)
		}
	}
	if held.Merged != merged || !reflect.DeepEqual(held.Answers, snapshot) {
		t.Fatal("an RPC reply changed under later traffic — it aliases recycled decode state")
	}
}
