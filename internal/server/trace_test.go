package server

import (
	"bytes"
	"context"
	"log/slog"
	"testing"
	"time"

	"repro/dsu"
	"repro/internal/tracespan"
	"repro/internal/wire"
)

// findTrace polls the universe's trace ring for a trace with the given
// ID. The server's recorder finishes an RPC trace after the reply is
// written, so the client can hold a reply the ring does not yet show —
// polling is the honest synchronization.
func findTrace(t *testing.T, u *dsu.Universe, id string) dsu.BatchTrace {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, tr := range u.Traces() {
			if tr.TraceID == id {
				return tr
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("trace %s never appeared in the ring", id)
	return dsu.BatchTrace{}
}

// assertSpanTree checks that a trace is one connected tree with monotone
// nested intervals: every non-root span names a recorded parent, starts
// no earlier than it, and ends no later.
func assertSpanTree(t *testing.T, tr dsu.BatchTrace) {
	t.Helper()
	if len(tr.Spans) == 0 {
		t.Fatal("trace has no spans")
	}
	if tr.Spans[0].Parent != 0 {
		t.Errorf("root span has parent %d", tr.Spans[0].Parent)
	}
	for _, s := range tr.Spans[1:] {
		if s.Parent == 0 || int(s.Parent) > len(tr.Spans) {
			t.Errorf("span %d (%s): parent %d not in tree", s.ID, s.Name, s.Parent)
			continue
		}
		p := tr.Spans[s.Parent-1]
		if s.Start < p.Start {
			t.Errorf("span %d (%s) starts %v before parent %s at %v", s.ID, s.Name, s.Start, p.Name, p.Start)
		}
		if s.Start+s.Duration > p.Start+p.Duration {
			t.Errorf("span %d (%s) ends %v after parent %s at %v",
				s.ID, s.Name, s.Start+s.Duration, p.Name, p.Start+p.Duration)
		}
		if s.Duration < 0 {
			t.Errorf("span %d (%s) has negative duration %v", s.ID, s.Name, s.Duration)
		}
	}
}

func stageCounts(tr dsu.BatchTrace) map[string]int {
	names := make(map[string]int)
	for _, s := range tr.Spans {
		names[s.Name]++
	}
	return names
}

// TestRPCTraceTree drives a remote unite and query through both wire
// encodings against a traced tenant and asserts each exchange produced
// one connected span tree covering wire-decode → queue-wait → execute →
// reply-encode, with the client's trace identity when one was supplied.
func TestRPCTraceTree(t *testing.T) {
	tracing := dsu.NewTracing()
	reg := dsu.NewRegistry(dsu.WithTracing(tracing))
	_, cJSON := newTestServer(t, Config{Registry: reg})
	ctx := context.Background()
	if _, err := cJSON.CreateTenant(ctx, TenantSpec{Name: "traced", N: 1000}); err != nil {
		t.Fatal(err)
	}
	u, _ := reg.Get("traced")

	for _, format := range []wire.Format{wire.Binary, wire.JSON} {
		_, c := newTestServer(t, Config{Registry: reg})
		c.format = format

		// Client-chosen identity: the server must adopt it.
		link := dsu.TraceContext{Trace: 0xabcd0000 + uint64(format), Span: 42}
		rep, got, err := c.UniteAllLinked(ctx, "traced",
			dsu.UniteRequest{Edges: testEdges(1000, 500, 7)}, link)
		if err != nil {
			t.Fatalf("%v unite: %v", format, err)
		}
		// The reply reports the adopted trace ID and the server's root span.
		if got.Trace != link.Trace || got.Span != uint64(tracespan.Root) {
			t.Errorf("%v: reply context = %+v, want trace %x span %d", format, got, link.Trace, tracespan.Root)
		}
		tr := findTrace(t, u, tracespan.FormatTraceID(link.Trace))
		if !tr.Remote || tr.ParentSpan != 42 || tr.Op != "unite" || tr.Source != "rpc" {
			t.Errorf("%v: trace meta = remote=%v parent=%d op=%s source=%s", format, tr.Remote, tr.ParentSpan, tr.Op, tr.Source)
		}
		assertSpanTree(t, tr)
		names := stageCounts(tr)
		for _, want := range []string{"wire-decode", "queue-wait", "execute", "reply-encode"} {
			if names[want] != 1 {
				t.Errorf("%v: stage %q count = %d, want 1 (have %v)", format, want, names[want], names)
			}
		}
		if tr.Spans[0].Attrs.Edges != 500 || tr.Spans[0].Attrs.Merged != rep.Merged {
			t.Errorf("%v: root attrs = %+v, want edges=500 merged=%d", format, tr.Spans[0].Attrs, rep.Merged)
		}

		// Server-assigned identity: no link, the reply reports the server's.
		_, got, err = c.SameSetAllLinked(ctx, "traced",
			dsu.QueryRequest{Pairs: testEdges(1000, 100, 8)}, dsu.TraceContext{})
		if err != nil {
			t.Fatalf("%v query: %v", format, err)
		}
		if !got.Valid() {
			t.Fatalf("%v: reply carried no trace context from a traced tenant", format)
		}
		qtr := findTrace(t, u, tracespan.FormatTraceID(got.Trace))
		if qtr.Remote || qtr.Op != "query" {
			t.Errorf("%v: query trace remote=%v op=%s, want local/query", format, qtr.Remote, qtr.Op)
		}
		assertSpanTree(t, qtr)
	}
}

// TestStreamTracePropagation pins the stream path end to end: traced
// frames adopt the client's context, the batch's span tree covers seal →
// queue-wait → dispatch → execute → reply-encode, and the reply envelope
// reports the adopted identity.
func TestStreamTracePropagation(t *testing.T) {
	tracing := dsu.NewTracing()
	reg := dsu.NewRegistry(dsu.WithTracing(tracing))
	_, c := newTestServer(t, Config{Registry: reg})
	ctx := context.Background()
	if _, err := c.CreateTenant(ctx, TenantSpec{Name: "st", N: 1000}); err != nil {
		t.Fatal(err)
	}
	u, _ := reg.Get("st")

	var replies []*wire.Envelope
	var mu chan struct{} // buffered-1 as a mutex usable from the reader goroutine
	mu = make(chan struct{}, 1)
	st, err := c.OpenStream(ctx, "st", StreamConfig{Buffer: 64, OnReply: func(env *wire.Envelope) {
		// The envelope lives in the stream's pooled decoder and is only
		// valid during the callback — copy it out before retaining.
		cp := *env
		if env.Reply != nil {
			rep := *env.Reply
			cp.Reply = &rep
		}
		mu <- struct{}{}
		replies = append(replies, &cp)
		<-mu
	}})
	if err != nil {
		t.Fatal(err)
	}
	link := dsu.TraceContext{Trace: 0x5eed, Span: 3}
	edges := testEdges(1000, 64, 9)
	if err := st.PushLinked(link, edges...); err != nil {
		t.Fatal(err)
	}
	end, err := st.Close()
	if err != nil {
		t.Fatal(err)
	}
	if end.Batches != 1 {
		t.Fatalf("end totals = %+v, want 1 batch", end)
	}
	tr := findTrace(t, u, tracespan.FormatTraceID(link.Trace))
	if !tr.Remote || tr.ParentSpan != 3 || tr.Source != "stream" {
		t.Errorf("trace meta = remote=%v parent=%d source=%s", tr.Remote, tr.ParentSpan, tr.Source)
	}
	assertSpanTree(t, tr)
	names := stageCounts(tr)
	for _, want := range []string{"seal", "queue-wait", "dispatch", "execute", "reply-encode"} {
		if names[want] != 1 {
			t.Errorf("stage %q count = %d, want 1 (have %v)", want, names[want], names)
		}
	}
	mu <- struct{}{}
	defer func() { <-mu }()
	if len(replies) != 1 {
		t.Fatalf("replies = %d, want 1", len(replies))
	}
	if replies[0].Trace != link.Trace || replies[0].Span != uint64(tracespan.Root) {
		t.Errorf("reply envelope context = %d/%d, want %d/root", replies[0].Trace, replies[0].Span, link.Trace)
	}
}

// TestUntracedTenantOverWire pins the disabled mode at the server: an
// untraced registry answers traced frames correctly, echoes no trace
// context, and records nothing.
func TestUntracedTenantOverWire(t *testing.T) {
	reg := dsu.NewRegistry()
	_, c := newTestServer(t, Config{Registry: reg})
	ctx := context.Background()
	if _, err := c.CreateTenant(ctx, TenantSpec{Name: "plain", N: 100}); err != nil {
		t.Fatal(err)
	}
	rep, got, err := c.UniteAllLinked(ctx, "plain",
		dsu.UniteRequest{Edges: []dsu.Edge{{X: 0, Y: 1}}}, dsu.TraceContext{Trace: 99, Span: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Merged != 1 {
		t.Errorf("merged = %d, want 1", rep.Merged)
	}
	if got.Valid() {
		t.Errorf("untraced tenant echoed trace context %+v", got)
	}
	u, _ := reg.Get("plain")
	if u.Traces() != nil {
		t.Error("untraced tenant recorded a trace")
	}
}

// TestServerLogging pins the slog surface: lifecycle events at Info
// carry tenant fields, RPC lines at Debug carry the trace ID.
func TestServerLogging(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	tracing := dsu.NewTracing()
	reg := dsu.NewRegistry(dsu.WithTracing(tracing))
	_, c := newTestServer(t, Config{Registry: reg, Log: logger})
	ctx := context.Background()
	if _, err := c.CreateTenant(ctx, TenantSpec{Name: "logged", N: 100}); err != nil {
		t.Fatal(err)
	}
	link := dsu.TraceContext{Trace: 0xbeef, Span: 1}
	if _, _, err := c.UniteAllLinked(ctx, "logged",
		dsu.UniteRequest{Edges: []dsu.Edge{{X: 0, Y: 1}}}, link); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`msg="tenant created"`, `tenant=logged`,
		`msg=rpc`, `endpoint=unite`, `trace=` + tracespan.FormatTraceID(link.Trace),
	} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
}
