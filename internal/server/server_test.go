package server

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/dsu"
	"repro/internal/wire"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = dsu.NewRegistry()
	}
	s := New(cfg)
	hs := httptest.NewServer(s)
	t.Cleanup(hs.Close)
	return s, NewClient(hs.URL, WithHTTPClient(hs.Client()))
}

func testEdges(n, m int, seed int64) []dsu.Edge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]dsu.Edge, m)
	for i := range edges {
		edges[i] = dsu.Edge{X: uint32(rng.Intn(n)), Y: uint32(rng.Intn(n))}
	}
	return edges
}

func TestTenantAdmin(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()

	flat, err := c.CreateTenant(ctx, TenantSpec{Name: "alpha", N: 100})
	if err != nil {
		t.Fatal(err)
	}
	if flat.Kind != "flat" || flat.N != 100 || flat.Sets != 100 {
		t.Errorf("alpha info = %+v", flat)
	}
	sh, err := c.CreateTenant(ctx, TenantSpec{Name: "beta", N: 100, Shards: 4, Find: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	if sh.Kind != "sharded" || sh.Shards != 4 || !sh.Adaptive {
		t.Errorf("beta info = %+v", sh)
	}
	infos, err := c.Tenants(ctx)
	if err != nil || len(infos) != 2 {
		t.Fatalf("Tenants = %v, %v", infos, err)
	}
	if _, err := c.Tenant(ctx, "missing"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("missing tenant err = %v", err)
	}
	if _, err := c.CreateTenant(ctx, TenantSpec{Name: "alpha", N: 5}); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("duplicate create err = %v", err)
	}
	for _, bad := range []TenantSpec{
		{Name: "sp ace", N: 5},
		{Name: "x", N: -1},
		{Name: "x", N: 1 << 30}, // past the server's MaxN resource cap
		{Name: "x", N: 5, Find: "zorp"},
		{Name: "x", N: 5, Find: "halving", EarlyTermination: true},
	} {
		if _, err := c.CreateTenant(ctx, bad); err == nil {
			t.Errorf("spec %+v accepted", bad)
		}
	}
	if err := c.DropTenant(ctx, "alpha"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTenant(ctx, "alpha"); err == nil {
		t.Error("second drop succeeded")
	}
}

// TestRPCMatchesInProcess checks one remote unite+query round against the
// in-process oracle, in both encodings, including the per-batch find
// override and the reply's accounting.
func TestRPCMatchesInProcess(t *testing.T) {
	const n, m = 800, 2400
	edges := testEdges(n, m, 5)
	queries := testEdges(n, m/2, 6)

	for _, format := range []wire.Format{wire.Binary, wire.JSON} {
		t.Run(format.String(), func(t *testing.T) {
			reg := dsu.NewRegistry()
			_, c := newTestServer(t, Config{Registry: reg})
			c.format = format
			ctx := context.Background()
			if _, err := c.CreateTenant(ctx, TenantSpec{Name: "t", N: n, Seed: 11}); err != nil {
				t.Fatal(err)
			}
			oracle := dsu.New(n, dsu.WithSeed(11))
			wantMerged := oracle.UniteAll(edges, dsu.WithPrefilter())

			rep, err := c.UniteAll(ctx, "t", dsu.UniteRequest{Edges: edges, Options: dsu.BatchOptions{Prefilter: true}})
			if err != nil {
				t.Fatal(err)
			}
			if int(rep.Merged) != wantMerged {
				t.Errorf("remote Merged = %d, want %d", rep.Merged, wantMerged)
			}
			if rep.Stats.Ops == 0 || rep.Elapsed <= 0 || rep.Filtered == 0 {
				t.Errorf("reply accounting looks empty: %+v", rep)
			}

			want := oracle.SameSetAll(queries)
			qrep, err := c.SameSetAll(ctx, "t", dsu.QueryRequest{Pairs: queries, Options: dsu.BatchOptions{Find: dsu.NoCompaction}})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(qrep.Answers, want) {
				t.Error("remote answers differ from in-process oracle")
			}
			if qrep.Find != dsu.NoCompaction {
				t.Errorf("reply Find = %v, want the override", qrep.Find)
			}

			// Validation errors travel as error envelopes, not broken frames.
			if _, err := c.UniteAll(ctx, "t", dsu.UniteRequest{Edges: []dsu.Edge{{X: 0, Y: uint32(n)}}}); err == nil || !strings.Contains(err.Error(), "universe") {
				t.Errorf("out-of-range unite err = %v", err)
			}

			labels, err := c.Labels(ctx, "t")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(labels, oracle.CanonicalLabels()) {
				t.Error("remote labels differ from oracle")
			}
		})
	}
}

// TestConcurrentTenantsMatchOracle is the acceptance test: three isolated
// tenants — flat, sharded+adaptive, and lock-free — each served
// concurrently by stream and RPC clients in both encodings, with queries
// in flight, must end with exactly the partition a sequential in-process
// pass produces. The lock-free tenant exercises the concurrent path end to
// end: its RPCs bypass the per-tenant admission semaphore and its stream
// overlaps sealed batches, yet the final partition is still the oracle's.
// Run under -race (CI does).
func TestConcurrentTenantsMatchOracle(t *testing.T) {
	// Sparse enough (m/n = 2) that each tenant keeps a distinctive
	// multi-component partition — a fully connected graph would make the
	// isolation check below vacuous.
	const n, m, clients = 1200, 2400, 3
	_, c := newTestServer(t, Config{MaxInFlight: 3, StreamBuffer: 256})
	ctx := context.Background()

	tenants := []struct {
		spec  TenantSpec
		edges []dsu.Edge
	}{
		{TenantSpec{Name: "flat", N: n}, testEdges(n, m, 101)},
		{TenantSpec{Name: "shard", N: n, Shards: 4, Find: "auto"}, testEdges(n, m, 202)},
		{TenantSpec{Name: "lockfree", N: n, Kind: "lockfree"}, testEdges(n, m, 303)},
	}
	for _, tn := range tenants {
		if _, err := c.CreateTenant(ctx, tn.spec); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for _, tn := range tenants {
		per := (len(tn.edges) + clients - 1) / clients
		for i := 0; i < clients; i++ {
			lo := i * per
			hi := min(lo+per, len(tn.edges))
			part := tn.edges[lo:hi]
			wg.Add(1)
			go func(name string, idx int, part []dsu.Edge) {
				defer wg.Done()
				switch idx {
				case 0: // streaming ingest, binary, small batches
					cs, err := c.OpenStream(ctx, name, StreamConfig{Buffer: 128, InFlight: 2})
					if err != nil {
						errs <- fmt.Errorf("%s stream open: %w", name, err)
						return
					}
					for j := 0; j < len(part); j += 100 {
						if err := cs.Push(part[j:min(j+100, len(part))]...); err != nil {
							errs <- fmt.Errorf("%s push: %w", name, err)
							return
						}
					}
					if err := cs.Flush(); err != nil {
						errs <- err
						return
					}
					end, err := cs.Close()
					if err != nil {
						errs <- fmt.Errorf("%s stream close: %w", name, err)
						return
					}
					if end.Edges != int64(len(part)) || end.Failed != 0 {
						errs <- fmt.Errorf("%s stream totals %+v, want %d edges, 0 failed", name, end, len(part))
					}
				case 1: // RPC, binary, chunked
					for j := 0; j < len(part); j += 500 {
						if _, err := c.UniteAll(ctx, name, dsu.UniteRequest{Edges: part[j:min(j+500, len(part))]}); err != nil {
							errs <- fmt.Errorf("%s rpc unite: %w", name, err)
							return
						}
					}
				default: // RPC, JSON debug mode
					jc := *c
					jc.format = wire.JSON
					for j := 0; j < len(part); j += 500 {
						if _, err := jc.UniteAll(ctx, name, dsu.UniteRequest{Edges: part[j:min(j+500, len(part))]}); err != nil {
							errs <- fmt.Errorf("%s json unite: %w", name, err)
							return
						}
					}
				}
			}(tn.spec.Name, i, part)
		}
		// One concurrent query client per tenant: answers mid-flight are
		// only checked for transport health, not content.
		wg.Add(1)
		go func(name string, pairs []dsu.Edge) {
			defer wg.Done()
			for j := 0; j+50 <= len(pairs) && j < 500; j += 50 {
				if _, err := c.SameSetAll(ctx, name, dsu.QueryRequest{Pairs: pairs[j : j+50]}); err != nil {
					errs <- fmt.Errorf("%s mid-flight query: %w", name, err)
					return
				}
			}
		}(tn.spec.Name, tn.edges)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiescent: every tenant's partition must equal its own sequential
	// oracle — and, isolation, not the other tenant's.
	var labelSets [][]uint32
	for _, tn := range tenants {
		oracle := dsu.New(n)
		oracle.UniteAll(tn.edges)
		want := oracle.CanonicalLabels()
		got, err := c.Labels(ctx, tn.spec.Name)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("tenant %s: remote partition differs from sequential oracle", tn.spec.Name)
		}
		info, err := c.Tenant(ctx, tn.spec.Name)
		if err != nil {
			t.Fatal(err)
		}
		if info.Sets != oracle.Sets() {
			t.Errorf("tenant %s: Sets = %d, oracle %d", tn.spec.Name, info.Sets, oracle.Sets())
		}
		if tn.spec.Kind == "lockfree" && (info.Kind != "lockfree" || !info.Concurrent) {
			t.Errorf("tenant %s: info = %+v, want kind lockfree and Concurrent", tn.spec.Name, info)
		}
		labelSets = append(labelSets, got)
	}
	for i := range labelSets {
		for j := i + 1; j < len(labelSets); j++ {
			if reflect.DeepEqual(labelSets[i], labelSets[j]) {
				t.Errorf("tenants %s and %s ended with identical partitions — isolation suspect (or the generator produced twins)",
					tenants[i].spec.Name, tenants[j].spec.Name)
			}
		}
	}
}

// TestStreamReplies checks the per-batch reply channel: sealed batches
// answer in order with batch ids and real accounting.
func TestStreamReplies(t *testing.T) {
	const n = 500
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	if _, err := c.CreateTenant(ctx, TenantSpec{Name: "t", N: n}); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var seqs []uint64
	var merged int64
	cs, err := c.OpenStream(ctx, "t", StreamConfig{Buffer: 100, OnReply: func(env *wire.Envelope) {
		mu.Lock()
		defer mu.Unlock()
		if env.Kind != wire.KindReply {
			t.Errorf("unexpected envelope %v: %s", env.Kind, env.Error)
			return
		}
		seqs = append(seqs, env.Seq)
		merged += env.Reply.Merged
	}})
	if err != nil {
		t.Fatal(err)
	}
	edges := testEdges(n, 350, 9)
	for _, e := range edges {
		if err := cs.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := cs.Flush(); err != nil {
		t.Fatal(err)
	}
	end, err := cs.Close()
	if err != nil {
		t.Fatal(err)
	}
	if end.Batches != 4 || end.Edges != 350 {
		t.Errorf("end totals = %+v, want 4 batches / 350 edges", end)
	}
	mu.Lock()
	defer mu.Unlock()
	if !reflect.DeepEqual(seqs, []uint64{1, 2, 3, 4}) {
		t.Errorf("reply batch ids = %v, want in-order 1..4", seqs)
	}
	if merged != end.Merged {
		t.Errorf("sum of per-batch merges %d ≠ end total %d", merged, end.Merged)
	}
}

// TestStreamRejectsBadFrames: a range-violating unite frame is refused
// with an error envelope while the stream survives; a misrouted kind ends
// the stream.
func TestStreamRejectsBadFrames(t *testing.T) {
	const n = 50
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	if _, err := c.CreateTenant(ctx, TenantSpec{Name: "t", N: n}); err != nil {
		t.Fatal(err)
	}
	var rejected atomic.Int64
	cs, err := c.OpenStream(ctx, "t", StreamConfig{OnReply: func(env *wire.Envelope) {
		if env.Kind == wire.KindError && strings.Contains(env.Error, "universe") {
			rejected.Add(1)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Push(dsu.Edge{X: 0, Y: 999}); err != nil { // out of range: rejected, stream lives
		t.Fatal(err)
	}
	if err := cs.Push(dsu.Edge{X: 1, Y: 2}); err != nil {
		t.Fatal(err)
	}
	if err := cs.Flush(); err != nil {
		t.Fatal(err)
	}
	end, err := cs.Close()
	if err != nil {
		t.Fatal(err)
	}
	if end.Edges != 1 || end.Merged != 1 {
		t.Errorf("end totals = %+v, want exactly the valid edge ingested", end)
	}
	if rejected.Load() != 1 {
		t.Errorf("rejected frames = %d, want 1", rejected.Load())
	}
}

// TestBodylessEnvelopeRejected pins the JSON kind→body invariant at the
// HTTP boundary: an envelope naming a kind without carrying its body is a
// 400, never a handler panic.
func TestBodylessEnvelopeRejected(t *testing.T) {
	_, c := newTestServer(t, Config{})
	ctx := context.Background()
	if _, err := c.CreateTenant(ctx, TenantSpec{Name: "t", N: 10}); err != nil {
		t.Fatal(err)
	}
	for _, body := range []string{`{"kind":"unite"}`, `{"kind":"query"}`} {
		action := "unite"
		if strings.Contains(body, "query") {
			action = "query"
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			c.base+"/v1/tenants/t/"+action, strings.NewReader(body+"\n"))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json; charset=utf-8") // parameters must be tolerated
		resp, err := c.hc.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestStopSurfacesShutdownToStreams wires the shutdown satellite end to
// end: Server.Stop must end even a push-only stream connection promptly —
// no flush, no body close, the handler is parked in a body read — and the
// client's Close must report the cancellation rather than a clean end.
// Batches buffered-but-unsealed at the abort are abandoned by the
// stream's Close and surface through the same error (the dsu layer's
// Flush/Close cancellation contract, over the wire).
func TestStopSurfacesShutdownToStreams(t *testing.T) {
	const n = 200
	s, c := newTestServer(t, Config{})
	ctx := context.Background()
	if _, err := c.CreateTenant(ctx, TenantSpec{Name: "t", N: n}); err != nil {
		t.Fatal(err)
	}
	var aborted atomic.Int64
	cs, err := c.OpenStream(ctx, "t", StreamConfig{Buffer: 1 << 20, OnReply: func(env *wire.Envelope) {
		if env.Kind == wire.KindError && strings.Contains(env.Error, "context canceled") {
			aborted.Add(1)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Edges below the seal threshold: genuinely in-flight work the client
	// never flushed. The server must not need another frame to notice Stop.
	if err := cs.Push(testEdges(n, 50, 1)...); err != nil {
		t.Fatal(err)
	}
	s.Stop()
	// Stop propagates asynchronously; the abort envelope — which the
	// server sends unprompted, without the client closing or flushing — is
	// the observable proof the push-only connection noticed. Wait for it
	// before closing, so the close below cannot race a clean shutdown.
	deadline := time.Now().Add(10 * time.Second)
	for aborted.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never aborted the push-only stream after Stop")
		}
		time.Sleep(time.Millisecond)
	}
	end, err := cs.Close()
	if err == nil {
		t.Fatalf("Close after Stop = nil error, end=%+v; want the cancellation surfaced", end)
	}
	if !strings.Contains(err.Error(), "context canceled") {
		t.Errorf("Close err = %v, want context cancellation", err)
	}
}
