package core

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/randutil"
	"repro/internal/seqdsu"
)

// allConfigs enumerates every legal variant combination.
func allConfigs() []Config {
	finds := []Find{FindNaive, FindOneTry, FindTwoTry, FindHalving, FindCompress}
	var cfgs []Config
	for _, f := range finds {
		cfgs = append(cfgs, Config{Find: f, Seed: 12345})
	}
	for _, f := range []Find{FindNaive, FindOneTry, FindTwoTry} {
		cfgs = append(cfgs, Config{Find: f, EarlyTermination: true, Seed: 12345})
	}
	return cfgs
}

func configName(c Config) string {
	name := c.Find.String()
	if c.EarlyTermination {
		name += "+early"
	}
	return name
}

func forEachConfig(t *testing.T, f func(t *testing.T, cfg Config)) {
	t.Helper()
	for _, cfg := range allConfigs() {
		cfg := cfg
		t.Run(configName(cfg), func(t *testing.T) { f(t, cfg) })
	}
}

func TestSingletonsInitially(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg Config) {
		d := New(8, cfg)
		if d.Sets() != 8 {
			t.Fatalf("Sets = %d, want 8", d.Sets())
		}
		for i := uint32(0); i < 8; i++ {
			if d.Find(i) != i {
				t.Errorf("Find(%d) = %d before unions", i, d.Find(i))
			}
		}
		if d.SameSet(0, 7) {
			t.Error("SameSet(0,7) true before unions")
		}
		if !d.SameSet(3, 3) {
			t.Error("SameSet(3,3) false")
		}
	})
}

func TestSequentialSemanticsMatchSpec(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg Config) {
		const n, ops = 120, 400
		rng := randutil.NewXoshiro256(7)
		d := New(n, cfg)
		s := seqdsu.NewSpec(n)
		for i := 0; i < ops; i++ {
			x, y := uint32(rng.Intn(n)), uint32(rng.Intn(n))
			if rng.Intn(2) == 0 {
				if got, want := d.Unite(x, y), s.Unite(x, y); got != want {
					t.Fatalf("op %d: Unite(%d,%d) = %v, spec %v", i, x, y, got, want)
				}
			} else if got, want := d.SameSet(x, y), s.SameSet(x, y); got != want {
				t.Fatalf("op %d: SameSet(%d,%d) = %v, spec %v", i, x, y, got, want)
			}
		}
		labels := d.CanonicalLabels()
		for i, want := range s.Labels() {
			if labels[i] != want {
				t.Fatalf("final partition differs at %d", i)
			}
		}
	})
}

// TestSequentialQuick drives every variant against the spec with
// quick-checked random seeds.
func TestSequentialQuick(t *testing.T) {
	for _, cfg := range allConfigs() {
		cfg := cfg
		t.Run(configName(cfg), func(t *testing.T) {
			check := func(seed uint64) bool {
				rng := randutil.NewXoshiro256(seed)
				const n = 24
				cfg := cfg
				cfg.Seed = seed
				d := New(n, cfg)
				s := seqdsu.NewSpec(n)
				for i := 0; i < 80; i++ {
					x, y := uint32(rng.Intn(n)), uint32(rng.Intn(n))
					if rng.Intn(3) == 0 {
						if d.Unite(x, y) != s.Unite(x, y) {
							return false
						}
					} else if d.SameSet(x, y) != s.SameSet(x, y) {
						return false
					}
				}
				return true
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConcurrentPartitionMatchesClosure: the final partition after a set of
// concurrent Unites must equal the connectivity closure of the union pairs,
// regardless of interleaving — final-state correctness at scale, under the
// race detector when enabled.
func TestConcurrentPartitionMatchesClosure(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg Config) {
		const n, pairs, workers = 2000, 3000, 8
		rng := randutil.NewXoshiro256(99)
		xs := make([]uint32, pairs)
		ys := make([]uint32, pairs)
		spec := seqdsu.New(n, seqdsu.LinkSize, seqdsu.CompactCompression, 0)
		for i := range xs {
			xs[i], ys[i] = uint32(rng.Intn(n)), uint32(rng.Intn(n))
			spec.Unite(xs[i], ys[i])
		}
		d := New(n, cfg)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < pairs; i += workers {
					d.Unite(xs[i], ys[i])
				}
			}(w)
		}
		wg.Wait()
		want := spec.CanonicalLabels()
		got := d.CanonicalLabels()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("partition differs at element %d: got %d want %d", i, got[i], want[i])
			}
		}
		if d.Sets() != spec.Sets() {
			t.Fatalf("Sets = %d, want %d", d.Sets(), spec.Sets())
		}
	})
}

// TestConcurrentMixedOps checks SameSet answers stay consistent under
// concurrency: a false SameSet(x,y) must never be observed after any worker
// has seen it true (set membership only grows).
func TestConcurrentMixedOps(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg Config) {
		const n, workers, perWorker = 512, 8, 4000
		d := New(n, cfg)
		// Workers repeatedly unite within blocks and verify that pairs they
		// personally united stay united.
		var wg sync.WaitGroup
		errCh := make(chan string, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := randutil.NewXoshiro256(uint64(w) + 1)
				var united [][2]uint32
				for i := 0; i < perWorker; i++ {
					x, y := uint32(rng.Intn(n)), uint32(rng.Intn(n))
					switch rng.Intn(3) {
					case 0:
						d.Unite(x, y)
						united = append(united, [2]uint32{x, y})
					case 1:
						d.SameSet(x, y)
					default:
						if len(united) > 0 {
							p := united[rng.Intn(len(united))]
							if !d.SameSet(p[0], p[1]) {
								errCh <- "united pair observed separated"
								return
							}
						}
					}
				}
			}(w)
		}
		wg.Wait()
		close(errCh)
		for msg := range errCh {
			t.Fatal(msg)
		}
	})
}

// TestIDOrderInvariant verifies Lemma 3.1's order condition at quiescence:
// every non-root has id strictly below its parent's id.
func TestIDOrderInvariant(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg Config) {
		const n, workers = 1000, 8
		d := New(n, cfg)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := randutil.NewXoshiro256(uint64(w) * 31)
				for i := 0; i < 3000; i++ {
					d.Unite(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
				}
			}(w)
		}
		wg.Wait()
		for x := uint32(0); x < n; x++ {
			p := d.Parent(x)
			if p != x && d.ID(x) >= d.ID(p) {
				t.Fatalf("node %d (id %d) has parent %d (id %d)", x, d.ID(x), p, d.ID(p))
			}
		}
	})
}

func TestCountedMatchesUncounted(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg Config) {
		const n = 64
		rng := randutil.NewXoshiro256(3)
		a := New(n, cfg)
		b := New(n, cfg)
		var st Stats
		for i := 0; i < 200; i++ {
			x, y := uint32(rng.Intn(n)), uint32(rng.Intn(n))
			if i%2 == 0 {
				if a.Unite(x, y) != b.UniteCounted(x, y, &st) {
					t.Fatalf("Unite diverged at op %d", i)
				}
			} else if a.SameSet(x, y) != b.SameSetCounted(x, y, &st) {
				t.Fatalf("SameSet diverged at op %d", i)
			}
		}
		if st.Ops != 200 {
			t.Errorf("Ops = %d, want 200", st.Ops)
		}
		if st.Reads == 0 || st.Finds == 0 && !cfg.EarlyTermination {
			t.Errorf("implausible stats: %+v", st)
		}
		if st.CASFailures > st.CASAttempts {
			t.Errorf("more CAS failures than attempts: %+v", st)
		}
	})
}

func TestLinksCountExact(t *testing.T) {
	// Spanning n elements requires exactly n−1 links no matter the variant
	// or schedule; sequentially the counted links must equal n−1.
	forEachConfig(t, func(t *testing.T, cfg Config) {
		const n = 256
		d := New(n, cfg)
		var st Stats
		for i := uint32(0); i+1 < n; i++ {
			d.UniteCounted(i, i+1, &st)
		}
		if st.Links != n-1 {
			t.Fatalf("Links = %d, want %d", st.Links, n-1)
		}
		if d.Sets() != 1 {
			t.Fatalf("Sets = %d, want 1", d.Sets())
		}
	})
}

func TestConcurrentLinksSumToExactCount(t *testing.T) {
	// Concurrent workers united a spanning workload: total successful links
	// across workers must be exactly n − #components, because each link
	// reduces the set count by one and CAS ensures no double-counting.
	forEachConfig(t, func(t *testing.T, cfg Config) {
		const n, workers = 1024, 8
		d := New(n, cfg)
		stats := make([]Stats, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := randutil.NewXoshiro256(uint64(w) + 77)
				for i := 0; i < 2000; i++ {
					d.UniteCounted(uint32(rng.Intn(n)), uint32(rng.Intn(n)), &stats[w])
				}
			}(w)
		}
		wg.Wait()
		var total Stats
		for i := range stats {
			total.Add(stats[i])
		}
		wantLinks := int64(n - d.Sets())
		if total.Links != wantLinks {
			t.Fatalf("links = %d, want %d", total.Links, wantLinks)
		}
	})
}

func TestStatsAddAndWork(t *testing.T) {
	a := Stats{Reads: 1, CASAttempts: 2, CASFailures: 1, FindSteps: 3, Rounds: 1, Finds: 2, Links: 1, Ops: 1}
	b := a
	a.Add(b)
	if a.Reads != 2 || a.CASAttempts != 4 || a.Ops != 2 {
		t.Errorf("Add wrong: %+v", a)
	}
	if a.Work() != 6 {
		t.Errorf("Work = %d, want 6", a.Work())
	}
}

func TestNewPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"negative", func() { New(-1, Config{}) }},
		{"over 2^31-1", func() { New(1<<31, Config{}) }},
		{"dynamic negative", func() { NewDynamic(-1, 0) }},
		{"dynamic over 2^31-1", func() { NewDynamic(1<<31, 0) }},
		{"bad find", func() { New(1, Config{Find: Find(42)}) }},
		{"early+halving", func() { New(1, Config{Find: FindHalving, EarlyTermination: true}) }},
		{"early+compress", func() { New(1, Config{Find: FindCompress, EarlyTermination: true}) }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			c.fn()
		}()
	}
}

func TestDefaultConfigIsTwoTry(t *testing.T) {
	d := New(4, Config{})
	if d.Config().Find != FindTwoTry {
		t.Fatalf("default find = %v, want twotry", d.Config().Find)
	}
}

func TestFindStringNames(t *testing.T) {
	want := map[Find]string{
		FindNaive: "naive", FindOneTry: "onetry", FindTwoTry: "twotry",
		FindHalving: "halving", FindCompress: "compress", Find(9): "Find(9)",
	}
	for f, name := range want {
		if f.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(f), f.String(), name)
		}
	}
}

func TestSnapshotQuiescent(t *testing.T) {
	d := New(10, Config{Seed: 4})
	d.Unite(1, 2)
	d.Unite(3, 4)
	snap := d.Snapshot()
	if len(snap) != 10 {
		t.Fatalf("snapshot length %d", len(snap))
	}
	for x, p := range snap {
		if p != d.Parent(uint32(x)) {
			t.Fatalf("snapshot[%d] = %d, Parent = %d", x, p, d.Parent(uint32(x)))
		}
	}
}

func TestCompactionActuallyShortensPaths(t *testing.T) {
	// After many sequential operations through a splitting find, re-finding
	// the same deep element must cost fewer steps than the first time.
	for _, f := range []Find{FindOneTry, FindTwoTry, FindHalving, FindCompress} {
		t.Run(f.String(), func(t *testing.T) {
			const n = 1 << 12
			d := New(n, Config{Find: FindNaive, Seed: 8})
			// Build structure with naive finds so no compaction happens yet.
			rng := randutil.NewXoshiro256(5)
			for i := 0; i < 4*n; i++ {
				d.Unite(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
			}
			// Deepest node under the naive forest.
			parent := d.Snapshot()
			deep, bestDepth := uint32(0), -1
			for x := range parent {
				depth, u := 0, uint32(x)
				for parent[u] != u {
					u = parent[u]
					depth++
				}
				if depth > bestDepth {
					deep, bestDepth = uint32(x), depth
				}
			}
			if bestDepth < 3 {
				t.Skipf("forest too shallow (depth %d) to observe compaction", bestDepth)
			}
			// Re-run finds through a compacting view sharing the same array:
			// construct by copying state.
			c := New(n, Config{Find: f, Seed: 8})
			for x := uint32(0); x < n; x++ {
				c.parent[x].Store(parent[x])
			}
			var first, second Stats
			c.FindCounted(deep, &first)
			c.FindCounted(deep, &second)
			if second.FindSteps >= first.FindSteps {
				t.Errorf("find steps did not shrink: first %d, second %d", first.FindSteps, second.FindSteps)
			}
		})
	}
}
