package core

import (
	"testing"

	"repro/internal/randutil"
)

// TestWithFindSharesForest pins the variant-view contract: a view runs a
// different find strategy over the same parent array, so mutations through
// any view are visible through every other, and the views agree on
// membership at all times.
func TestWithFindSharesForest(t *testing.T) {
	const n = 256
	d := New(n, Config{Find: FindTwoTry, Seed: 21})
	v := d.WithFind(FindNaive)
	if v == d {
		t.Fatal("WithFind(other variant) returned the receiver")
	}
	if d.WithFind(FindTwoTry) != d {
		t.Error("WithFind(same variant) should return the receiver unchanged")
	}
	if v.Config().Find != FindNaive || d.Config().Find != FindTwoTry {
		t.Fatalf("view config %v / base config %v", v.Config().Find, d.Config().Find)
	}
	for i := uint32(0); i < n-1; i++ {
		// Alternate which side performs the union; both must observe all.
		if i%2 == 0 {
			d.Unite(i, i+1)
		} else {
			v.Unite(i, i+1)
		}
		if !d.SameSet(0, i+1) || !v.SameSet(0, i+1) {
			t.Fatalf("union of %d..%d not visible through both views", 0, i+1)
		}
		if d.Find(i+1) != v.Find(i+1) {
			t.Fatalf("views disagree on the root of %d", i+1)
		}
	}
	if d.Sets() != 1 {
		t.Fatalf("Sets() = %d after chaining everything, want 1", d.Sets())
	}
}

// TestWithFindPanics pins the validation: unknown variants and
// combinations early termination does not support fail exactly as New
// would.
func TestWithFindPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	d := New(8, Config{Find: FindTwoTry})
	expectPanic("unknown variant", func() { d.WithFind(Find(99)) })
	e := New(8, Config{Find: FindTwoTry, EarlyTermination: true})
	expectPanic("early termination + halving view", func() { e.WithFind(FindHalving) })
	if v := e.WithFind(FindNaive); v.Config().Find != FindNaive || !v.Config().EarlyTermination {
		t.Error("early-termination structure must allow naive/splitting views")
	}
}

// TestRewritesCounter pins the new Stats field against its defining
// invariant: every successful CAS is either a link (a root gaining a
// parent) or a find-path rewrite, so over any single-threaded run
// Rewrites == (CASAttempts − CASFailures) − Links, and compacting finds on
// a deep forest must land at least one rewrite.
func TestRewritesCounter(t *testing.T) {
	for _, f := range []Find{FindNaive, FindOneTry, FindTwoTry, FindHalving, FindCompress} {
		t.Run(f.String(), func(t *testing.T) {
			const n = 512
			d := New(n, Config{Find: f, Seed: 33})
			var st Stats
			rng := randutil.NewXoshiro256(7)
			for i := 0; i < 4*n; i++ {
				x, y := uint32(rng.Intn(n)), uint32(rng.Intn(n))
				if i%3 == 0 {
					d.SameSetCounted(x, y, &st)
				} else {
					d.UniteCounted(x, y, &st)
				}
			}
			succeeded := st.CASAttempts - st.CASFailures
			if st.Rewrites != succeeded-st.Links {
				t.Errorf("Rewrites = %d, want CAS successes − links = %d", st.Rewrites, succeeded-st.Links)
			}
			if f == FindNaive {
				if st.Rewrites != 0 {
					t.Errorf("naive finds rewrote %d pointers, want 0", st.Rewrites)
				}
			} else if st.Rewrites == 0 {
				t.Errorf("%v performed no rewrites across a 4n-op workload", f)
			}
		})
	}
}

// TestRewritesAdd pins Stats.Add over the new field.
func TestRewritesAdd(t *testing.T) {
	a := Stats{Rewrites: 3}
	a.Add(Stats{Rewrites: 4})
	if a.Rewrites != 7 {
		t.Errorf("Add: Rewrites = %d, want 7", a.Rewrites)
	}
}
