package core

import (
	"sync"
	"testing"

	"repro/internal/randutil"
	"repro/internal/seqdsu"
	"repro/internal/workload"
)

// TestHotPathsAllocationFree: Find, SameSet, and Unite must not allocate —
// wait-freedom in practice also means no hidden GC traffic per operation.
func TestHotPathsAllocationFree(t *testing.T) {
	for _, cfg := range allConfigs() {
		cfg := cfg
		t.Run(configName(cfg), func(t *testing.T) {
			const n = 1024
			d := New(n, cfg)
			rng := randutil.NewXoshiro256(1)
			var st Stats
			if allocs := testing.AllocsPerRun(200, func() {
				x, y := uint32(rng.Intn(n)), uint32(rng.Intn(n))
				d.Unite(x, y)
				d.SameSet(x, y)
				d.Find(x)
				d.UniteCounted(x, y, &st)
				d.SameSetCounted(x, y, &st)
			}); allocs > 0 {
				t.Fatalf("hot path allocates %.1f objects per run", allocs)
			}
		})
	}
}

func TestDynamicHotPathsAllocationFree(t *testing.T) {
	const n = 1024
	d := NewDynamic(n, 1)
	for i := 0; i < n; i++ {
		if _, err := d.MakeSet(); err != nil {
			t.Fatal(err)
		}
	}
	rng := randutil.NewXoshiro256(2)
	if allocs := testing.AllocsPerRun(200, func() {
		x, y := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		d.Unite(x, y)
		d.SameSet(x, y)
		d.Find(x)
	}); allocs > 0 {
		t.Fatalf("dynamic hot path allocates %.1f objects per run", allocs)
	}
}

// TestHotSpotContention drives all workers at a tiny hot set — maximal CAS
// contention on intersecting paths — and validates the final partition and
// the monotonicity of membership under every variant.
func TestHotSpotContention(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg Config) {
		const n, hot, workers, per = 4096, 8, 8, 5000
		d := New(n, cfg)
		spec := seqdsu.New(n, seqdsu.LinkSize, seqdsu.CompactCompression, 0)
		ops := workload.ZipfMixed(n, workers*per, 0.5, 1.5, 77)
		// Pre-compute the union closure for the final check.
		for _, op := range ops {
			if op.Kind == workload.OpUnite {
				spec.Unite(op.X, op.Y)
			}
		}
		perProc := workload.SplitRoundRobin(ops, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for _, op := range perProc[w] {
					switch op.Kind {
					case workload.OpUnite:
						d.Unite(op.X, op.Y)
					case workload.OpSameSet:
						d.SameSet(op.X, op.Y)
					}
				}
			}(w)
		}
		wg.Wait()
		want := spec.CanonicalLabels()
		got := d.CanonicalLabels()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("hot-spot partition differs at %d", i)
			}
		}
		// All-to-one stress on a single element pair set.
		d2 := New(hot, cfg)
		var wg2 sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg2.Add(1)
			go func(w int) {
				defer wg2.Done()
				for i := 0; i < per; i++ {
					d2.Unite(uint32(i%hot), uint32((i+w)%hot))
				}
			}(w)
		}
		wg2.Wait()
		if d2.Sets() != 1 {
			t.Fatalf("hot full-mesh left %d sets", d2.Sets())
		}
	})
}

// TestFindStability: at quiescence, Find is stable (same root twice) and
// consistent with SameSet for every variant, even though compaction mutates
// parents.
func TestFindStability(t *testing.T) {
	forEachConfig(t, func(t *testing.T, cfg Config) {
		const n = 512
		d := New(n, cfg)
		rng := randutil.NewXoshiro256(5)
		for i := 0; i < 2*n; i++ {
			d.Unite(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
		}
		for x := uint32(0); x < n; x++ {
			r1 := d.Find(x)
			r2 := d.Find(x)
			if r1 != r2 {
				t.Fatalf("Find(%d) unstable at quiescence: %d then %d", x, r1, r2)
			}
			if d.Parent(r1) != r1 {
				t.Fatalf("Find(%d) = %d is not a root", x, r1)
			}
			if !d.SameSet(x, r1) {
				t.Fatalf("element %d not in same set as its root", x)
			}
		}
	})
}
