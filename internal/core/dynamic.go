package core

import (
	"errors"
	"sync/atomic"

	"repro/internal/randutil"
)

// ErrFull is returned by MakeSet when the Dynamic structure's capacity is
// exhausted.
var ErrFull = errors.New("core: dynamic DSU at capacity")

// Dynamic is the MakeSet extension of Section 3's remark and Section 7:
// elements are created on line, each assigned a random priority drawn from a
// 64-bit universe, with element index as the tie-breaking rule so the order
// stays total and cycles cannot form. With an unbounded universe of
// MakeSets the paper's algorithms are lock-free rather than wait-free; this
// implementation bounds the universe by a fixed capacity chosen at
// construction (a Go slice must be allocated somewhere), which restores
// wait-freedom once the capacity is reached and documents the paper's
// distinction rather than hiding it.
//
// Find uses two-try splitting; the linking order is (priority, index)
// lexicographic. All methods are safe for concurrent use, including
// concurrent MakeSets.
type Dynamic struct {
	parent []atomic.Uint32
	seed   uint64
	next   atomic.Uint32
}

// NewDynamic returns an empty Dynamic structure able to hold up to capacity
// elements. It panics if capacity is negative or exceeds 2³¹−1.
func NewDynamic(capacity int, seed uint64) *Dynamic {
	if capacity < 0 || int64(capacity) > int64(1)<<31-1 {
		panic("core: dynamic capacity out of range")
	}
	d := &Dynamic{
		parent: make([]atomic.Uint32, capacity),
		seed:   seed,
	}
	// Every slot is initialized to a singleton up front, so a process that
	// races MakeSet (observes the new length before using the element) still
	// sees a well-formed singleton rather than an uninitialized word. This
	// is what makes MakeSet a single atomic increment.
	for i := range d.parent {
		d.parent[i].Store(uint32(i))
	}
	return d
}

// MakeSet creates a new element in a singleton set and returns it.
// It is safe to call concurrently with every other method.
func (d *Dynamic) MakeSet() (uint32, error) {
	idx := d.next.Add(1) - 1
	if int64(idx) >= int64(len(d.parent)) {
		d.next.Add(^uint32(0)) // undo; keeps Len meaningful
		return 0, ErrFull
	}
	return idx, nil
}

// Len returns the number of elements created so far.
func (d *Dynamic) Len() int {
	n := int(d.next.Load())
	if n > len(d.parent) {
		n = len(d.parent)
	}
	return n
}

// Cap returns the capacity.
func (d *Dynamic) Cap() int { return len(d.parent) }

// prio returns x's priority: a pseudorandom 64-bit value derived from the
// seed and the element index, exactly the "random number from a large
// universe" of Section 7, made deterministic per seed for reproducibility.
func (d *Dynamic) prio(x uint32) uint64 {
	return randutil.Mix64(d.seed ^ (uint64(x) + 0x9e3779b97f4a7c15))
}

// less orders elements by (priority, index); the index tie-break keeps the
// order total even on the (astronomically unlikely) 64-bit collision, which
// is the paper's cycle-prevention requirement.
func (d *Dynamic) less(u, v uint32) bool {
	pu, pv := d.prio(u), d.prio(v)
	if pu != pv {
		return pu < pv
	}
	return u < v
}

// Find returns the root of x's tree, compacting with two-try splitting.
func (d *Dynamic) Find(x uint32) uint32 { return d.findCounted(x, nil) }

// FindCounted is Find with work accounting.
func (d *Dynamic) FindCounted(x uint32, st *Stats) uint32 {
	if st != nil {
		st.Finds++
	}
	return d.findCounted(x, st)
}

func (d *Dynamic) findCounted(x uint32, st *Stats) uint32 {
	u := x
	var steps, reads, cas, casFail int64
	for {
		steps++
		var v uint32
		for t := 0; t < 2; t++ {
			v = d.parent[u].Load()
			w := d.parent[v].Load()
			reads += 2
			if v == w {
				if st != nil {
					st.FindSteps += steps
					st.Reads += reads
					st.CASAttempts += cas
					st.CASFailures += casFail
				}
				return v
			}
			cas++
			if !d.parent[u].CompareAndSwap(v, w) {
				casFail++
			}
		}
		u = v
	}
}

// SameSet reports whether x and y are in the same set (Algorithm 2 over the
// dynamic order).
func (d *Dynamic) SameSet(x, y uint32) bool { return d.SameSetCounted(x, y, nil) }

// SameSetCounted is SameSet with work accounting.
func (d *Dynamic) SameSetCounted(x, y uint32, st *Stats) bool {
	if st != nil {
		defer func() { st.Ops++ }()
	}
	u, v := x, y
	for {
		if st != nil {
			st.Rounds++
		}
		u = d.FindCounted(u, st)
		v = d.FindCounted(v, st)
		if u == v {
			return true
		}
		if st != nil {
			st.Reads++
		}
		if d.parent[u].Load() == u {
			return false
		}
	}
}

// Unite merges the sets of x and y (Algorithm 3 over the dynamic order),
// reporting whether this call performed the link.
func (d *Dynamic) Unite(x, y uint32) bool { return d.UniteCounted(x, y, nil) }

// UniteCounted is Unite with work accounting.
func (d *Dynamic) UniteCounted(x, y uint32, st *Stats) bool {
	if st != nil {
		defer func() { st.Ops++ }()
	}
	u, v := x, y
	for {
		if st != nil {
			st.Rounds++
		}
		u = d.FindCounted(u, st)
		v = d.FindCounted(v, st)
		if u == v {
			return false
		}
		lo, hi := u, v
		if d.less(hi, lo) {
			lo, hi = hi, lo
		}
		if st != nil {
			st.CASAttempts++
		}
		if d.parent[lo].CompareAndSwap(lo, hi) {
			if st != nil {
				st.Links++
			}
			return true
		}
		if st != nil {
			st.CASFailures++
		}
	}
}

// Parent returns x's current parent pointer (quiescent-state analysis use).
func (d *Dynamic) Parent(x uint32) uint32 { return d.parent[x].Load() }

// CanonicalLabels returns the min-element labelling over the elements
// created so far. Quiescent-state use only.
func (d *Dynamic) CanonicalLabels() []uint32 {
	n := d.Len()
	parent := make([]uint32, n)
	for i := range parent {
		parent[i] = d.parent[i].Load()
	}
	root := make([]uint32, n)
	for i := range root {
		x := uint32(i)
		for parent[x] != x {
			x = parent[x]
		}
		root[i] = x
	}
	minOf := make([]uint32, n)
	for i := range minOf {
		minOf[i] = ^uint32(0)
	}
	for i := 0; i < n; i++ {
		if r := root[i]; uint32(i) < minOf[r] {
			minOf[r] = uint32(i)
		}
	}
	labels := make([]uint32, n)
	for i := range labels {
		labels[i] = minOf[root[i]]
	}
	return labels
}
