// Package core implements the randomized concurrent disjoint-set-union
// algorithms of Jayanti & Tarjan, "A Randomized Concurrent Algorithm for
// Disjoint Set Union" (PODC 2016), over native Go atomics.
//
// Each element x has a parent pointer x.parent (an atomic word) and an
// immutable id fixed at construction as a uniformly random permutation of
// 0..n−1 — the random total order that decides link direction. Because ids
// never change, a link updates exactly one word with one CAS, which is what
// makes the algorithm wait-free without the indirection Anderson & Woll
// needed for linking by rank (Section 3 of the paper).
//
// The package provides every variant the paper defines:
//
//   - Find without compaction (Algorithm 1), with one-try splitting
//     (Algorithm 4), and with two-try splitting (Algorithm 5);
//   - SameSet (Algorithm 2) and Unite (Algorithm 3);
//   - early-termination SameSet and Unite (Algorithms 6 and 7), which
//     interleave the two finds and always advance the currently smaller
//     node;
//   - concurrent halving (the compaction Anderson & Woll used, kept for the
//     ablation experiments) and a concurrent two-pass compression
//     (conjectured workable in Section 6);
//   - a Dynamic variant supporting MakeSet with on-the-fly random
//     priorities (Section 3 remark and Section 7), which is lock-free.
//
// Every operation has a *Counted twin that tallies shared-memory work
// (parent reads, CAS attempts/failures, loop iterations) into a caller-owned
// Stats value, so experiments can measure total work in the units of the
// paper's theorems without slowing the uncounted fast path.
package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/randutil"
)

// Find selects the find-path compaction strategy.
type Find int

const (
	// FindNaive is Algorithm 1: follow parents, no compaction.
	FindNaive Find = iota + 1
	// FindOneTry is Algorithm 4: try once to swing each parent to its
	// grandparent, then move on.
	FindOneTry
	// FindTwoTry is Algorithm 5: try each parent update twice; the variant
	// with the paper's best work bound (Theorem 5.1).
	FindTwoTry
	// FindHalving is the concurrent halving Anderson & Woll used: after the
	// CAS, jump to the grandparent rather than the parent. Included for the
	// ablation; Section 3 argues halving cannot beat splitting concurrently.
	FindHalving
	// FindCompress is a concurrent two-pass compression (Section 6
	// conjectures such variants retain the bounds): find the root, then CAS
	// every path node's parent up to it. Correctness rests on the fact that
	// the union-forest ancestors of a node form a chain with strictly
	// increasing ids, so an id comparison decides whether a parent is still
	// below the root.
	FindCompress
)

// String names the strategy as used in the paper and the experiment tables.
func (f Find) String() string {
	switch f {
	case FindNaive:
		return "naive"
	case FindOneTry:
		return "onetry"
	case FindTwoTry:
		return "twotry"
	case FindHalving:
		return "halving"
	case FindCompress:
		return "compress"
	default:
		return fmt.Sprintf("Find(%d)", int(f))
	}
}

// Stats tallies shared-memory work in the units of the paper's analysis.
// A Stats value is owned by a single goroutine; workers each keep their own
// and the harness sums them afterwards.
type Stats struct {
	Reads       int64 // shared parent-pointer loads
	CASAttempts int64 // CAS instructions issued
	CASFailures int64 // CAS instructions that returned false
	FindSteps   int64 // find-loop iterations (node visits on find paths)
	Rounds      int64 // top-level retry rounds in SameSet/Unite
	Finds       int64 // find executions
	Links       int64 // successful links (CAS that changed a root's parent)
	Rewrites    int64 // successful parent-pointer rewrites on find paths (compaction CASes that landed; links excluded)
	Ops         int64 // SameSet/Unite operations completed
	// Filtered counts batch edges dropped by a filter pass (prefilter dedup
	// or the connected screen) before they reached the structure. It is set
	// by the batch layers, not by point operations, and is excluded from
	// Work(): a dropped edge did no shared-memory work beyond what the
	// screen itself already tallied in the fields above.
	Filtered int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Reads += other.Reads
	s.CASAttempts += other.CASAttempts
	s.CASFailures += other.CASFailures
	s.FindSteps += other.FindSteps
	s.Rounds += other.Rounds
	s.Finds += other.Finds
	s.Links += other.Links
	s.Rewrites += other.Rewrites
	s.Ops += other.Ops
	s.Filtered += other.Filtered
}

// Work returns total shared-memory steps: reads plus CAS attempts, the
// paper's "total work" metric.
func (s Stats) Work() int64 { return s.Reads + s.CASAttempts }

// Config fixes a DSU's algorithm variant.
type Config struct {
	// Find selects the compaction strategy; the zero value defaults to
	// FindTwoTry, the paper's headline algorithm.
	Find Find
	// EarlyTermination selects Algorithms 6/7: interleave the two finds of
	// SameSet/Unite, always stepping from the smaller node. Supported for
	// FindNaive, FindOneTry and FindTwoTry, per Section 6.
	EarlyTermination bool
	// Seed fixes the random node order. Runs with equal seeds are
	// structurally identical given identical schedules.
	Seed uint64
}

// DSU is a wait-free concurrent disjoint-set structure over elements
// 0..n−1. All methods are safe for concurrent use by any number of
// goroutines. The zero value is not usable; call New.
type DSU struct {
	parent []atomic.Uint32
	id     []uint32 // random total order; immutable after New
	cfg    Config
}

// New returns a DSU over n singleton elements. It panics if n is negative,
// exceeds 2³¹−1, or cfg combines EarlyTermination with a find strategy the
// paper does not define it for.
func New(n int, cfg Config) *DSU {
	if n < 0 || int64(n) > int64(1)<<31-1 {
		panic("core: element count out of range")
	}
	if cfg.Find == 0 {
		cfg.Find = FindTwoTry
	}
	switch cfg.Find {
	case FindNaive, FindOneTry, FindTwoTry, FindHalving, FindCompress:
	default:
		panic("core: unknown find strategy")
	}
	if cfg.EarlyTermination {
		switch cfg.Find {
		case FindNaive, FindOneTry, FindTwoTry:
		default:
			panic("core: early termination is defined only for naive and splitting finds")
		}
	}
	d := &DSU{
		parent: make([]atomic.Uint32, n),
		id:     randutil.NewXoshiro256(cfg.Seed).Perm(n),
		cfg:    cfg,
	}
	for i := range d.parent {
		d.parent[i].Store(uint32(i))
	}
	return d
}

// N returns the number of elements.
func (d *DSU) N() int { return len(d.parent) }

// Config returns the variant configuration.
func (d *DSU) Config() Config { return d.cfg }

// ID returns x's position in the random total order.
func (d *DSU) ID(x uint32) uint32 { return d.id[x] }

// less reports whether u precedes v in the random total order ("u < v" in
// the paper's pseudocode).
func (d *DSU) less(u, v uint32) bool { return d.id[u] < d.id[v] }

// Find returns the root of the tree currently containing x, applying the
// configured compaction. The returned node was a root at some instant
// during the call (its linearization point).
func (d *DSU) Find(x uint32) uint32 { return d.find(x, nil) }

// FindCounted is Find with work accounting into st.
func (d *DSU) FindCounted(x uint32, st *Stats) uint32 { return d.find(x, st) }

func (d *DSU) find(x uint32, st *Stats) uint32 {
	if st != nil {
		st.Finds++
	}
	switch d.cfg.Find {
	case FindNaive:
		return d.findNaive(x, st)
	case FindOneTry:
		return d.findSplit(x, st, 1)
	case FindTwoTry:
		return d.findSplit(x, st, 2)
	case FindHalving:
		return d.findHalve(x, st)
	default:
		return d.findCompress(x, st)
	}
}

// findNaive is Algorithm 1.
func (d *DSU) findNaive(x uint32, st *Stats) uint32 {
	u := x
	var steps int64
	for {
		steps++
		p := d.parent[u].Load()
		if p == u {
			break
		}
		u = p
	}
	if st != nil {
		st.FindSteps += steps
		st.Reads += steps
	}
	return u
}

// findSplit is Algorithm 4 (tries == 1) and Algorithm 5 (tries == 2):
// splitting that attempts each parent update `tries` times before advancing.
func (d *DSU) findSplit(x uint32, st *Stats, tries int) uint32 {
	u := x
	var steps, reads, cas, casFail int64
	for {
		steps++
		var v uint32
		for t := 0; t < tries; t++ {
			v = d.parent[u].Load()
			w := d.parent[v].Load()
			reads += 2
			if v == w {
				if st != nil {
					st.FindSteps += steps
					st.Reads += reads
					st.CASAttempts += cas
					st.CASFailures += casFail
					st.Rewrites += cas - casFail
				}
				return v
			}
			cas++
			if !d.parent[u].CompareAndSwap(v, w) {
				casFail++
			}
		}
		u = v
	}
}

// findHalve is concurrent halving: like one-try splitting but advancing to
// the grandparent. Safe because w is a union-forest ancestor of u whether or
// not the CAS succeeds (Lemma 3.1's argument).
func (d *DSU) findHalve(x uint32, st *Stats) uint32 {
	u := x
	var steps, reads, cas, casFail int64
	for {
		steps++
		v := d.parent[u].Load()
		w := d.parent[v].Load()
		reads += 2
		if v == w {
			if st != nil {
				st.FindSteps += steps
				st.Reads += reads
				st.CASAttempts += cas
				st.CASFailures += casFail
				st.Rewrites += cas - casFail
			}
			return v
		}
		cas++
		if !d.parent[u].CompareAndSwap(v, w) {
			casFail++
		}
		u = w
	}
}

// findCompress finds the root with Algorithm 1, then makes a second pass
// CASing each path node's parent directly to that root. A parent p of a
// path node is replaced only while id[p] < id[root]: both p and root are
// union-forest ancestors of the path node, ancestors form a chain, and ids
// strictly increase along it, so the comparison proves root is still a
// proper ancestor of p and the swing moves the pointer upward as Lemma 3.1
// requires.
func (d *DSU) findCompress(x uint32, st *Stats) uint32 {
	root := d.findNaive(x, st)
	u := x
	var steps, reads, cas, casFail int64
	for u != root {
		steps++
		reads++
		p := d.parent[u].Load()
		if p == u {
			break // defensive: only root can be a root on this chain
		}
		if !d.less(p, root) {
			// u's parent is at or above root on the ancestor chain; the
			// rest of the path is already compressed past root.
			break
		}
		cas++
		if !d.parent[u].CompareAndSwap(p, root) {
			casFail++
		}
		u = p
	}
	if st != nil {
		st.FindSteps += steps
		st.Reads += reads
		st.CASAttempts += cas
		st.CASFailures += casFail
		st.Rewrites += cas - casFail
	}
	return root
}

// SameSet reports whether x and y are currently in the same set. The answer
// is linearizable: it held at the operation's linearization point
// (Lemma 3.2).
func (d *DSU) SameSet(x, y uint32) bool { return d.sameSet(x, y, nil) }

// SameSetCounted is SameSet with work accounting into st.
func (d *DSU) SameSetCounted(x, y uint32, st *Stats) bool { return d.sameSet(x, y, st) }

func (d *DSU) sameSet(x, y uint32, st *Stats) bool {
	if st != nil {
		defer func() { st.Ops++ }()
	}
	if d.cfg.EarlyTermination {
		return d.sameSetEarly(x, y, st)
	}
	// Algorithm 2.
	u, v := x, y
	for {
		if st != nil {
			st.Rounds++
		}
		u = d.find(u, st)
		v = d.find(v, st)
		if u == v {
			return true
		}
		if st != nil {
			st.Reads++
		}
		if d.parent[u].Load() == u {
			return false
		}
	}
}

// sameSetEarly is Algorithm 6, with the do-twice body executed once per
// iteration for one-try splitting and a plain parent step for FindNaive.
func (d *DSU) sameSetEarly(x, y uint32, st *Stats) bool {
	u, v := x, y
	for {
		if st != nil {
			st.Rounds++
		}
		if u == v {
			return true
		}
		if d.less(v, u) {
			u, v = v, u
		}
		if st != nil {
			st.Reads++
		}
		if d.parent[u].Load() == u {
			return false
		}
		u = d.earlyStep(u, st)
	}
}

// earlyStep advances u one step along its find path, performing the
// configured compaction (the "do twice" block of Algorithms 6/7).
func (d *DSU) earlyStep(u uint32, st *Stats) uint32 {
	switch d.cfg.Find {
	case FindNaive:
		if st != nil {
			st.Reads++
			st.FindSteps++
		}
		return d.parent[u].Load()
	case FindOneTry, FindTwoTry:
		tries := 1
		if d.cfg.Find == FindTwoTry {
			tries = 2
		}
		var z uint32
		var reads, cas, casFail int64
		for t := 0; t < tries; t++ {
			z = d.parent[u].Load()
			w := d.parent[z].Load()
			reads += 2
			if z == w {
				break // u's parent is a root; nothing to compact
			}
			cas++
			if !d.parent[u].CompareAndSwap(z, w) {
				casFail++
			}
		}
		if st != nil {
			st.Reads += reads
			st.CASAttempts += cas
			st.CASFailures += casFail
			st.Rewrites += cas - casFail
			st.FindSteps++
		}
		return z
	default:
		panic("core: early termination with unsupported find strategy")
	}
}

// Unite merges the sets containing x and y if they differ. It reports
// whether this call performed the link (false when the sets were already
// equal at the linearization point). Linearizable per Lemma 3.2.
func (d *DSU) Unite(x, y uint32) bool { return d.unite(x, y, nil) }

// UniteCounted is Unite with work accounting into st.
func (d *DSU) UniteCounted(x, y uint32, st *Stats) bool { return d.unite(x, y, st) }

func (d *DSU) unite(x, y uint32, st *Stats) bool {
	if st != nil {
		defer func() { st.Ops++ }()
	}
	if d.cfg.EarlyTermination {
		return d.uniteEarly(x, y, st)
	}
	// Algorithm 3.
	u, v := x, y
	for {
		if st != nil {
			st.Rounds++
		}
		u = d.find(u, st)
		v = d.find(v, st)
		if u == v {
			return false
		}
		lo, hi := u, v
		if d.less(hi, lo) {
			lo, hi = hi, lo
		}
		if st != nil {
			st.CASAttempts++
		}
		if d.parent[lo].CompareAndSwap(lo, hi) {
			if st != nil {
				st.Links++
			}
			return true
		}
		if st != nil {
			st.CASFailures++
		}
	}
}

// uniteEarly is Algorithm 7, adapted to the configured find strategy as in
// sameSetEarly.
func (d *DSU) uniteEarly(x, y uint32, st *Stats) bool {
	u, v := x, y
	for {
		if st != nil {
			st.Rounds++
		}
		if u == v {
			return false
		}
		if d.less(v, u) {
			u, v = v, u
		}
		if st != nil {
			st.CASAttempts++
		}
		if d.parent[u].CompareAndSwap(u, v) {
			if st != nil {
				st.Links++
			}
			return true
		}
		if st != nil {
			st.CASFailures++
		}
		u = d.earlyStep(u, st)
	}
}

// WithFind returns a view of d that runs find variant f over the same
// forest: the view shares d's parent array and random linking order, so
// operations through it are operations on d, observed by and observing
// every other view. Switching variants between operations is safe — every
// variant preserves the Lemma 3.1 invariant that a parent swing moves the
// pointer to a union-forest ancestor, on the same forest — which is what
// the adaptive batch policy exploits to downgrade query-phase compaction.
// It panics on an unknown variant or one the structure's early-termination
// setting does not support, exactly as New would.
func (d *DSU) WithFind(f Find) *DSU {
	if f == d.cfg.Find {
		return d
	}
	switch f {
	case FindNaive, FindOneTry, FindTwoTry, FindHalving, FindCompress:
	default:
		panic("core: unknown find strategy")
	}
	if d.cfg.EarlyTermination {
		switch f {
		case FindNaive, FindOneTry, FindTwoTry:
		default:
			panic("core: early termination is defined only for naive and splitting finds")
		}
	}
	v := &DSU{parent: d.parent, id: d.id, cfg: d.cfg}
	v.cfg.Find = f
	return v
}

// Parent returns x's current parent pointer: a raw snapshot intended for
// forest analysis and tests. It is always safe to call but individually
// meaningful only in quiescent states.
func (d *DSU) Parent(x uint32) uint32 { return d.parent[x].Load() }

// LoadParent overwrites x's parent pointer. Quiescent-state use only: it
// exists so analyses and benchmarks can restore a Snapshot into a structure
// built with the same seed. Loading a forest that violates the id order
// corrupts the structure; callers own that risk.
func (d *DSU) LoadParent(x, parent uint32) { d.parent[x].Store(parent) }

// Snapshot copies the full parent array. Taken while operations are in
// flight it is a per-word-atomic (not point-in-time) picture; taken at
// quiescence it is exact. Forest analyses in the experiments always snapshot
// at quiescence.
func (d *DSU) Snapshot() []uint32 {
	out := make([]uint32, len(d.parent))
	for i := range d.parent {
		out[i] = d.parent[i].Load()
	}
	return out
}

// CanonicalLabels returns the min-element labelling of the current
// partition. Quiescent-state use only, like Snapshot.
func (d *DSU) CanonicalLabels() []uint32 {
	parent := d.Snapshot()
	n := len(parent)
	root := make([]uint32, n)
	for i := range root {
		x := uint32(i)
		for parent[x] != x {
			x = parent[x]
		}
		root[i] = x
	}
	minOf := make([]uint32, n)
	for i := range minOf {
		minOf[i] = ^uint32(0)
	}
	for i := 0; i < n; i++ {
		if r := root[i]; uint32(i) < minOf[r] {
			minOf[r] = uint32(i)
		}
	}
	labels := make([]uint32, n)
	for i := range labels {
		labels[i] = minOf[root[i]]
	}
	return labels
}

// Sets counts the current number of sets (roots). Quiescent-state use only.
func (d *DSU) Sets() int {
	count := 0
	for i := range d.parent {
		if d.parent[i].Load() == uint32(i) {
			count++
		}
	}
	return count
}
