package core

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/randutil"
	"repro/internal/seqdsu"
)

func TestDynamicMakeSetSequence(t *testing.T) {
	d := NewDynamic(4, 1)
	if d.Len() != 0 || d.Cap() != 4 {
		t.Fatalf("fresh: Len=%d Cap=%d", d.Len(), d.Cap())
	}
	var els []uint32
	for i := 0; i < 4; i++ {
		e, err := d.MakeSet()
		if err != nil {
			t.Fatalf("MakeSet %d: %v", i, err)
		}
		els = append(els, e)
	}
	if _, err := d.MakeSet(); !errors.Is(err, ErrFull) {
		t.Fatalf("expected ErrFull, got %v", err)
	}
	if d.Len() != 4 {
		t.Fatalf("Len = %d after overflow attempt, want 4", d.Len())
	}
	for i, e := range els {
		if d.Find(e) != e {
			t.Errorf("element %d not a singleton root", i)
		}
	}
}

func TestDynamicSemanticsMatchSpec(t *testing.T) {
	const n = 100
	d := NewDynamic(n, 42)
	s := seqdsu.NewSpec(n)
	for i := 0; i < n; i++ {
		if _, err := d.MakeSet(); err != nil {
			t.Fatal(err)
		}
	}
	rng := randutil.NewXoshiro256(9)
	for i := 0; i < 500; i++ {
		x, y := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		if rng.Intn(2) == 0 {
			if d.Unite(x, y) != s.Unite(x, y) {
				t.Fatalf("Unite diverged at op %d", i)
			}
		} else if d.SameSet(x, y) != s.SameSet(x, y) {
			t.Fatalf("SameSet diverged at op %d", i)
		}
	}
	labels := d.CanonicalLabels()
	for i, want := range s.Labels() {
		if labels[i] != want {
			t.Fatalf("partition differs at %d", i)
		}
	}
}

func TestDynamicPriorityOrderInvariant(t *testing.T) {
	const n = 500
	d := NewDynamic(n, 5)
	for i := 0; i < n; i++ {
		if _, err := d.MakeSet(); err != nil {
			t.Fatal(err)
		}
	}
	rng := randutil.NewXoshiro256(6)
	for i := 0; i < 2000; i++ {
		d.Unite(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}
	for x := uint32(0); x < n; x++ {
		p := d.Parent(x)
		if p != x && !d.less(x, p) {
			t.Fatalf("node %d not below its parent %d in priority order", x, p)
		}
	}
}

// TestDynamicConcurrentGrowthAndUnions exercises the lock-free mixed mode:
// some workers create elements while others unite the ones that exist.
func TestDynamicConcurrentGrowthAndUnions(t *testing.T) {
	const capacity, makers, uniters = 20000, 4, 4
	d := NewDynamic(capacity, 7)
	var wg sync.WaitGroup
	created := make([][]uint32, makers)
	for w := 0; w < makers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < capacity/makers; i++ {
				e, err := d.MakeSet()
				if err != nil {
					return
				}
				created[w] = append(created[w], e)
			}
		}(w)
	}
	for w := 0; w < uniters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := randutil.NewXoshiro256(uint64(w) + 100)
			for i := 0; i < 5000; i++ {
				n := uint32(d.Len())
				if n < 2 {
					continue
				}
				d.Unite(uint32(rng.Uint64n(uint64(n))), uint32(rng.Uint64n(uint64(n))))
			}
		}(w)
	}
	wg.Wait()
	// All elements were created exactly once.
	seen := make(map[uint32]bool, capacity)
	for _, list := range created {
		for _, e := range list {
			if seen[e] {
				t.Fatalf("element %d returned twice by MakeSet", e)
			}
			seen[e] = true
		}
	}
	if len(seen) != capacity {
		t.Fatalf("created %d elements, want %d", len(seen), capacity)
	}
	// Priority order invariant holds at quiescence.
	for x := uint32(0); x < capacity; x++ {
		p := d.Parent(x)
		if p != x && !d.less(x, p) {
			t.Fatalf("order violated: %d under %d", x, p)
		}
	}
}

func TestDynamicCountedStats(t *testing.T) {
	d := NewDynamic(16, 3)
	for i := 0; i < 16; i++ {
		if _, err := d.MakeSet(); err != nil {
			t.Fatal(err)
		}
	}
	var st Stats
	for i := uint32(0); i < 15; i++ {
		d.UniteCounted(i, i+1, &st)
	}
	if st.Links != 15 {
		t.Errorf("Links = %d, want 15", st.Links)
	}
	if !d.SameSetCounted(0, 15, &st) {
		t.Error("0 and 15 should be united")
	}
	if st.Ops != 16 {
		t.Errorf("Ops = %d, want 16", st.Ops)
	}
}

func TestDynamicPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative capacity")
		}
	}()
	NewDynamic(-1, 0)
}

func TestDynamicZeroCapacity(t *testing.T) {
	d := NewDynamic(0, 0)
	if _, err := d.MakeSet(); !errors.Is(err, ErrFull) {
		t.Fatalf("expected ErrFull on zero-capacity MakeSet, got %v", err)
	}
}
