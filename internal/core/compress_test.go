package core

import (
	"testing"

	"repro/internal/randutil"
)

// TestCompressFlattensPath: after a quiescent findCompress, every node that
// was on the find path points directly at the root.
func TestCompressFlattensPath(t *testing.T) {
	const n = 64
	d := New(n, Config{Find: FindCompress, Seed: 9})
	// Build a deliberately deep structure using a naive-find twin sharing
	// the same seed (hence the same id order), then copy its forest in.
	builder := New(n, Config{Find: FindNaive, Seed: 9})
	rng := randutil.NewXoshiro256(3)
	for i := 0; i < 4*n; i++ {
		builder.Unite(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}
	snap := builder.Snapshot()
	for x := uint32(0); x < n; x++ {
		d.LoadParent(x, snap[x])
	}
	// Deepest node and its path.
	deep, path := uint32(0), []uint32(nil)
	bestDepth := -1
	for x := uint32(0); x < n; x++ {
		var p []uint32
		for u := x; snap[u] != u; u = snap[u] {
			p = append(p, u)
		}
		if len(p) > bestDepth {
			deep, path, bestDepth = x, p, len(p)
		}
	}
	if bestDepth < 3 {
		t.Skipf("forest too shallow (depth %d)", bestDepth)
	}
	root := d.Find(deep)
	for _, u := range path {
		if got := d.Parent(u); got != root {
			t.Fatalf("path node %d points at %d, want root %d", u, got, root)
		}
	}
}

// TestHalvingHalvesPath: one quiescent halving find from the deepest node
// of a pure path must leave ~half the path nodes re-pointed and return the
// root.
func TestHalvingHalvesPath(t *testing.T) {
	const k = 64
	// A pure path needs ids increasing along it; build with LoadParent on a
	// structure whose random order we then read back to order the path.
	d := New(k, Config{Find: FindHalving, Seed: 4})
	// order[i] = element with i-th smallest id.
	order := make([]uint32, k)
	for x := uint32(0); x < k; x++ {
		order[d.ID(x)] = x
	}
	for i := 0; i+1 < k; i++ {
		d.LoadParent(order[i], order[i+1])
	}
	var st Stats
	root := d.FindCounted(order[0], &st)
	if root != order[k-1] {
		t.Fatalf("root = %d, want %d", root, order[k-1])
	}
	// Halving from the bottom of a k-path rewrites every visited node's
	// parent: k/2 − O(1) CAS successes.
	wantMin := int64(k/2 - 2)
	if st.CASAttempts-st.CASFailures < wantMin {
		t.Fatalf("only %d successful CAS on a %d-path, want ≥ %d",
			st.CASAttempts-st.CASFailures, k, wantMin)
	}
	// Each pass halves the remaining path: the second find visits at most
	// half (plus rounding) of what the first did.
	var st2 Stats
	d.FindCounted(order[0], &st2)
	if st2.FindSteps > st.FindSteps/2+2 {
		t.Fatalf("halving did not halve the path: %d then %d steps", st.FindSteps, st2.FindSteps)
	}
}

// buildPath points order[i] at order[i+1] in a fresh structure with the
// given find strategy and returns (d, order) where order[i] is the element
// with the i-th smallest id.
func buildPath(k int, find Find) (*DSU, []uint32) {
	d := New(k, Config{Find: find, Seed: 4})
	order := make([]uint32, k)
	for x := uint32(0); int(x) < k; x++ {
		order[d.ID(x)] = x
	}
	for i := 0; i+1 < k; i++ {
		d.LoadParent(order[i], order[i+1])
	}
	return d, order
}

// TestOneTrySplitsExactly: a sequential one-try find from the bottom of a
// k-path performs classical splitting — every path node's parent becomes
// its grandparent — pinning the Algorithm 4 semantics exactly (this is the
// structure the Section 3 lockstep-halving construction reproduces).
func TestOneTrySplitsExactly(t *testing.T) {
	const k = 64
	d, order := buildPath(k, FindOneTry)
	var st Stats
	if root := d.FindCounted(order[0], &st); root != order[k-1] {
		t.Fatalf("root = %d, want %d", root, order[k-1])
	}
	for i := 0; i < k; i++ {
		want := i + 2
		if want > k-1 {
			want = k - 1
		}
		if got := d.Parent(order[i]); got != order[want] {
			t.Fatalf("path node %d parent at position %d, want %d", i, d.ID(got), want)
		}
	}
	if succ := st.CASAttempts - st.CASFailures; succ != k-2 {
		t.Fatalf("%d successful CAS, want %d", succ, k-2)
	}
}

// TestTwoTryCompactsTwicePerVisit: Algorithm 5's second try re-reads the
// freshly updated parent and compacts again, so a sequential find from the
// bottom of a k-path visits about every other node but still performs ~k
// pointer updates, ending on the root.
func TestTwoTryCompactsTwicePerVisit(t *testing.T) {
	const k = 64
	d, order := buildPath(k, FindTwoTry)
	var st Stats
	if root := d.FindCounted(order[0], &st); root != order[k-1] {
		t.Fatalf("root = %d, want %d", root, order[k-1])
	}
	if st.FindSteps > k/2+2 {
		t.Fatalf("two-try visited %d nodes on a %d-path, want ≈ k/2", st.FindSteps, k)
	}
	succ := st.CASAttempts - st.CASFailures
	if succ < int64(k)-4 || succ > int64(k) {
		t.Fatalf("%d successful CAS on a %d-path, want ≈ k", succ, k)
	}
	// All pointers moved strictly upward in the order.
	for i := 0; i < k-1; i++ {
		p := d.Parent(order[i])
		if d.ID(p) <= uint32(i) {
			t.Fatalf("node at position %d points down/self to position %d", i, d.ID(p))
		}
	}
}
