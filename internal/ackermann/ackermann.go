// Package ackermann implements Ackermann's function, its functional inverse
// α(n, d), and the level/index functions a(k, j) and b(i, k) used in the
// potential-function analysis of Section 5 of Jayanti & Tarjan (PODC 2016).
//
// The definitions follow Section 2 of the paper exactly:
//
//	A_0(j) = j + 1
//	A_k(0) = A_{k-1}(1)                for k > 0
//	A_k(j) = A_{k-1}(A_k(j - 1))       for k > 0, j > 0
//
//	α(n, d) = min{ i > 0 | A_i(⌊d⌋) > n }
//
// This union-find flavour of Ackermann's function has exact closed forms at
// low levels, derived directly from the recurrence:
//
//	A_1(j) = j + 2        (A_1(0) = A_0(1) = 2, each step adds 1)
//	A_2(j) = 2j + 3       (A_2(0) = A_1(1) = 3, each step adds 2)
//	A_3(j) = 2^(j+3) − 3  (A_3(0) = A_2(1) = 5, each step doubles and adds 3)
//
// From level 4 the values explode: A_4(0) = 13, A_4(1) = 65533, and A_4(2)
// already exceeds any fixed-width integer. All arithmetic therefore
// saturates at Overflow rather than wrapping, which keeps the comparisons in
// α well defined for every representable input.
package ackermann

import "math"

// Overflow is the saturation value: any Ackermann value that would exceed it
// is reported as Overflow. Comparisons A_i(j) > n remain correct for every n
// strictly below Overflow.
const Overflow = math.MaxInt64

// A returns A_k(j), saturating at Overflow. It panics on negative arguments.
func A(k, j int) int64 {
	if k < 0 || j < 0 {
		panic("ackermann: negative argument")
	}
	return apply(k, int64(j))
}

// apply computes A_k(x) for x ≥ 0, saturating at Overflow.
func apply(k int, x int64) int64 {
	switch k {
	case 0:
		return satAdd(x, 1)
	case 1:
		return satAdd(x, 2)
	case 2:
		return satAdd(satMul2(x), 3)
	case 3:
		// 2^(x+3) − 3; for x ≥ 61 the power alone exceeds int64.
		if x >= 61 {
			return Overflow
		}
		return (int64(1) << (x + 3)) - 3
	default:
		// A_k(0) = A_{k-1}(1); A_k(x) = A_{k-1}(A_k(x-1)). Values saturate
		// within one or two steps, so the recursion depth stays tiny.
		v := apply(k-1, 1)
		for i := int64(1); i <= x; i++ {
			if v == Overflow {
				return Overflow
			}
			v = apply(k-1, v)
		}
		return v
	}
}

func satAdd(x, d int64) int64 {
	if x > Overflow-d {
		return Overflow
	}
	return x + d
}

func satMul2(x int64) int64 {
	if x > Overflow/2 {
		return Overflow
	}
	return 2 * x
}

// Alpha returns α(n, d) = min{ i > 0 | A_i(⌊d⌋) > n } for n ≥ 0, d ≥ 0.
// The paper applies it with d = m/(np) (Theorem 5.1) or d = m/(np²)
// (Theorem 5.2). It panics on negative or NaN arguments.
func Alpha(n int64, d float64) int {
	if n < 0 || d < 0 || math.IsNaN(d) {
		panic("ackermann: Alpha with negative or NaN argument")
	}
	j := int64(math.MaxInt64)
	if d < math.MaxInt64 {
		j = int64(math.Floor(d))
	}
	// A_1(j) = j + 2, so i = 1 whenever j + 2 > n; this also covers huge d
	// without evaluating higher levels.
	if satAdd(j, 2) > n {
		return 1
	}
	for i := 2; ; i++ {
		if apply(i, j) > n {
			return i
		}
		if i > 8 {
			// A_6(0) = A_5(1) = A_4(65533) saturates, so the loop always
			// exits by i = 6 for j = 0 and sooner for j > 0.
			panic("ackermann: Alpha failed to terminate")
		}
	}
}

// B returns the index function b(i, k) = min{ j ≥ 0 | A_i(j) > k } from
// Section 5, saturation-aware. It panics on negative arguments.
func B(i int, k int64) int {
	if i < 0 || k < 0 {
		panic("ackermann: B with negative argument")
	}
	switch i {
	case 0: // j + 1 > k  ⇔  j ≥ k
		if k > math.MaxInt32 {
			return int(math.MaxInt32) // clamp; callers only use small k
		}
		return int(k)
	case 1: // j + 2 > k  ⇔  j ≥ k − 1
		if k <= 1 {
			return 0
		}
		if k-1 > math.MaxInt32 {
			return int(math.MaxInt32)
		}
		return int(k - 1)
	default:
		for j := 0; ; j++ {
			if apply(i, int64(j)) > k {
				return j
			}
		}
	}
}

// Level returns the level function from Section 5,
//
//	a(k, j) = min({α(k, d) + 1} ∪ { 1 ≤ i ≤ α(k, d) | A_i(b(i, k)) > j }),
//
// where k is the node's rank, j its parent's rank, and d the density
// parameter fixed by the analysis, with the convention (property (iv)) that
// the level is 0 iff the node and its parent share a rank. It panics if
// k > j, since ranks are non-decreasing along parent pointers.
func Level(k, j int64, d float64) int {
	if k > j {
		panic("ackermann: Level with rank above parent rank")
	}
	if k == j {
		return 0
	}
	ak := Alpha(k, d)
	for i := 1; i <= ak; i++ {
		if apply(i, int64(B(i, k))) > j {
			return i
		}
	}
	return ak + 1
}

// Count returns the count function x.c = a·(r+2) + b from Section 5, where
// a = Level(r, pr, d), b = B(a−1, pr) for a > 0 and 0 otherwise, r is the
// node's rank and pr its parent's rank.
func Count(r, pr int64, d float64) int64 {
	a := Level(r, pr, d)
	b := 0
	if a > 0 {
		b = B(a-1, pr)
	}
	return int64(a)*(r+2) + int64(b)
}

// Rank returns the paper's Section 4 rank of a node: for a random total
// order identifying elements with 1..n, rank(x) = ⌊lg n⌋ − ⌊lg(n − x + 1)⌋.
// Here id is zero-based (0..n−1), so x = id + 1. Ranks are monotonically
// non-decreasing in id: the largest id has rank ⌊lg n⌋ and roughly half of
// all ids have rank 0.
func Rank(id uint32, n int) int {
	if n <= 0 || int64(id) >= int64(n) {
		panic("ackermann: Rank argument out of range")
	}
	return ilog2(int64(n)) - ilog2(int64(n)-int64(id))
}

// ilog2 returns ⌊lg v⌋ for v ≥ 1.
func ilog2(v int64) int {
	if v <= 0 {
		panic("ackermann: ilog2 of non-positive value")
	}
	r := -1
	for v > 0 {
		v >>= 1
		r++
	}
	return r
}
