package ackermann

import (
	"math"
	"testing"
	"testing/quick"
)

// TestSmallValues pins A_k(j) for small arguments against values computed by
// hand from the recurrence in Section 2 of the paper.
func TestSmallValues(t *testing.T) {
	cases := []struct {
		k, j int
		want int64
	}{
		{0, 0, 1}, {0, 1, 2}, {0, 5, 6},
		{1, 0, 2}, {1, 1, 3}, {1, 2, 4}, {1, 10, 12},
		{2, 0, 3}, {2, 1, 5}, {2, 2, 7}, {2, 10, 23},
		{3, 0, 5}, {3, 1, 13}, {3, 2, 29}, {3, 3, 61}, {3, 4, 125},
		{4, 0, 13}, {4, 1, 65533},
		{5, 0, 65533},
	}
	for _, c := range cases {
		if got := A(c.k, c.j); got != c.want {
			t.Errorf("A(%d,%d) = %d, want %d", c.k, c.j, got, c.want)
		}
	}
}

// TestRecurrenceHolds checks A_k(j) = A_{k-1}(A_k(j-1)) wherever both sides
// are representable, directly exercising the defining recurrence rather than
// the closed forms.
func TestRecurrenceHolds(t *testing.T) {
	for k := 1; k <= 4; k++ {
		for j := 1; j <= 6; j++ {
			inner := A(k, j-1)
			if inner >= 1<<20 { // outer application would saturate or crawl
				continue
			}
			got := A(k, j)
			want := apply(k-1, inner)
			if got != want {
				t.Errorf("A(%d,%d) = %d, want A(%d, A(%d,%d)) = %d", k, j, got, k-1, k, j-1, want)
			}
		}
	}
}

func TestBaseCaseColumn(t *testing.T) {
	for k := 1; k <= 5; k++ {
		if got, want := A(k, 0), A(k-1, 1); got != want {
			t.Errorf("A(%d,0) = %d, want A(%d,1) = %d", k, got, k-1, want)
		}
	}
}

func TestSaturation(t *testing.T) {
	if got := A(4, 2); got != Overflow {
		t.Errorf("A(4,2) = %d, want Overflow", got)
	}
	if got := A(6, 0); got != Overflow {
		t.Errorf("A(6,0) = %d, want Overflow", got)
	}
	if got := A(3, 100); got != Overflow {
		t.Errorf("A(3,100) = %d, want Overflow", got)
	}
}

func TestMonotonicInBothArguments(t *testing.T) {
	for k := 0; k <= 4; k++ {
		for j := 0; j < 8; j++ {
			if A(k, j) > A(k, j+1) {
				t.Errorf("A(%d,·) not monotone at j=%d", k, j)
			}
			if A(k, j) > A(k+1, j) {
				t.Errorf("A(·,%d) not monotone at k=%d", j, k)
			}
		}
	}
}

func TestNegativePanics(t *testing.T) {
	for _, c := range [][2]int{{-1, 0}, {0, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("A(%d,%d) did not panic", c[0], c[1])
				}
			}()
			A(c[0], c[1])
		}()
	}
}

func TestAlphaKnownValues(t *testing.T) {
	cases := []struct {
		n    int64
		d    float64
		want int
	}{
		{1, 0, 1},     // A_1(0) = 2 > 1
		{2, 0, 2},     // A_1(0) = 2 ≤ 2; A_2(0) = 3 > 2
		{3, 0, 3},     // A_3(0) = 5 > 3
		{5, 0, 4},     // A_4(0) = 13 > 5
		{12, 0, 4},    // A_4(0) = 13 > 12
		{13, 0, 5},    // A_5(0) = 65533 > 13
		{65532, 0, 5}, //
		{65533, 0, 6}, // needs A_6(0) = Overflow
		{math.MaxInt64 - 1, 0, 6},
		{100, 1000, 1},  // A_1(1000) = 1002 > 100
		{1 << 30, 2, 3}, // A_2(2)=7 ≤ n; A_3(2)=29 ≤ n... A_3(2)=29 < 2^30 so need A_4? see below
		{1000, 5, 3},    // A_1(5)=7, A_2(5)=13, A_3(5)=253... 253 ≤ 1000 so α=4? pinned below
	}
	// Re-derive the last two to avoid pinning a miscalculation:
	// α(2^30, 2): A_1(2)=4, A_2(2)=7, A_3(2)=2^5−3=29, A_4(2)=Overflow → 4.
	cases[10].want = 4
	// α(1000, 5): A_1(5)=7, A_2(5)=13, A_3(5)=2^8−3=253, A_4(5)=Overflow → 4.
	cases[11].want = 4
	for _, c := range cases {
		if got := Alpha(c.n, c.d); got != c.want {
			t.Errorf("Alpha(%d, %v) = %d, want %d", c.n, c.d, got, c.want)
		}
	}
}

func TestAlphaIsTinyForPracticalInputs(t *testing.T) {
	// The paper's "constant for all practical purposes": α ≤ 6 for any int64.
	for _, n := range []int64{10, 1e6, 1e12, math.MaxInt64 - 1} {
		for _, d := range []float64{0, 0.5, 1, 10, 1e9} {
			if a := Alpha(n, d); a < 1 || a > 6 {
				t.Errorf("Alpha(%d, %v) = %d outside [1,6]", n, d, a)
			}
		}
	}
}

func TestAlphaDefinitionProperty(t *testing.T) {
	// quick-check the defining property: A_{α}(⌊d⌋) > n and, if α > 1,
	// A_{α−1}(⌊d⌋) ≤ n.
	check := func(nRaw uint32, dRaw uint16) bool {
		n := int64(nRaw)
		d := float64(dRaw)
		a := Alpha(n, d)
		j := int(d)
		if A(a, j) <= n {
			return false
		}
		if a > 1 && A(a-1, j) > n {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBDefinitionProperty(t *testing.T) {
	for i := 0; i <= 4; i++ {
		for _, k := range []int64{0, 1, 2, 3, 10, 100, 65533} {
			b := B(i, k)
			if A(i, b) <= k {
				t.Errorf("B(%d,%d)=%d but A(i,b)=%d ≤ k", i, k, b, A(i, b))
			}
			if b > 0 && A(i, b-1) > k {
				t.Errorf("B(%d,%d)=%d not minimal: A(i,b-1)=%d > k", i, k, b, A(i, b-1))
			}
		}
	}
}

func TestLevelProperties(t *testing.T) {
	const d = 1.0
	// (iv): level 0 iff equal ranks.
	if Level(3, 3, d) != 0 {
		t.Error("Level(3,3) != 0")
	}
	if Level(3, 4, d) == 0 {
		t.Error("Level(3,4) == 0 for unequal ranks")
	}
	// Bounded by α(k,d)+1 (property (i)).
	for k := int64(0); k < 20; k++ {
		for j := k; j < 40; j++ {
			lv := Level(k, j, d)
			if lv < 0 || lv > Alpha(k, d)+1 {
				t.Fatalf("Level(%d,%d) = %d outside [0, α+1]", k, j, lv)
			}
		}
	}
	// Non-decreasing in parent rank j at fixed k (levels only rise as the
	// parent's rank rises — the engine of the potential argument)...
	// Levels are defined via thresholds A_i(b(i,k)) > j, and larger j makes
	// that harder, so Level is non-increasing in j for i-search but the min
	// construction makes the overall level non-decreasing. Verify empirically.
	for k := int64(1); k < 10; k++ {
		prev := Level(k, k, d)
		for j := k + 1; j < 200; j++ {
			lv := Level(k, j, d)
			if lv < prev {
				t.Fatalf("Level(%d,·) decreased from %d to %d at j=%d", k, prev, lv, j)
			}
			prev = lv
		}
	}
}

func TestLevelPanicsWhenRankAboveParent(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Level(5,3) did not panic")
		}
	}()
	Level(5, 3, 1)
}

func TestCountNonDecreasingInParentRank(t *testing.T) {
	// Property (ii)/(iii) analogue: with fixed node rank, the count never
	// decreases as the parent's rank grows.
	const d = 2.0
	for r := int64(0); r < 12; r++ {
		prev := Count(r, r, d)
		if prev < 0 {
			t.Fatalf("Count(%d,%d) negative", r, r)
		}
		for pr := r + 1; pr < 300; pr++ {
			c := Count(r, pr, d)
			if c < prev {
				t.Fatalf("Count(%d,·) decreased from %d to %d at parent rank %d", r, prev, c, pr)
			}
			prev = c
		}
	}
}

func TestRankDefinition(t *testing.T) {
	// n = 8: id 7 (element 8) has rank ⌊lg 8⌋ − ⌊lg 1⌋ = 3; ids 5,6 rank 2...
	cases := []struct {
		id   uint32
		n    int
		want int
	}{
		// n = 8 ranks by id: element x = id+1, rank = 3 − ⌊lg(8 − id)⌋, so
		// ids 7,6 → 2... recompute: id 7 → ⌊lg 1⌋ = 0 → 3; id 6,5 → ⌊lg 2..3⌋ = 1 → 2;
		// ids 4..1 → ⌊lg 4..7⌋ = 2 → 1; id 0 → ⌊lg 8⌋ = 3 → 0.
		{7, 8, 3}, {6, 8, 2}, {5, 8, 2}, {4, 8, 1}, {3, 8, 1}, {2, 8, 1},
		{1, 8, 1}, {0, 8, 0},
		{0, 1, 0},
		{15, 16, 4},
	}
	for _, c := range cases {
		if got := Rank(c.id, c.n); got != c.want {
			t.Errorf("Rank(%d, %d) = %d, want %d", c.id, c.n, got, c.want)
		}
	}
}

func TestRankMonotoneAndBounded(t *testing.T) {
	const n = 1000
	prev := 0
	zeros := 0
	for id := uint32(0); id < n; id++ {
		r := Rank(id, n)
		if r < prev {
			t.Fatalf("rank decreased at id %d", id)
		}
		if r > ilog2(n) {
			t.Fatalf("rank %d exceeds ⌊lg n⌋", r)
		}
		if r == 0 {
			zeros++
		}
		prev = r
	}
	// Roughly half the ids have rank 0 (those with n − id > n/2).
	if zeros < n/3 || zeros > 2*n/3 {
		t.Errorf("rank-0 count %d not near n/2", zeros)
	}
}

func TestRankPanics(t *testing.T) {
	for _, c := range []struct {
		id uint32
		n  int
	}{{0, 0}, {5, 5}, {10, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Rank(%d,%d) did not panic", c.id, c.n)
				}
			}()
			Rank(c.id, c.n)
		}()
	}
}

func BenchmarkAlpha(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Alpha(int64(i)+1, float64(i%7))
	}
}
