package apps

import (
	"sync"
	"sync/atomic"

	"repro/dsu"
	"repro/internal/graph"
)

// SCC computes strongly-connected-component labels (min vertex per
// component) of the directed graph with the forward–backward (FB)
// divide-and-conquer algorithm, collapsing each discovered component into a
// shared wait-free DSU with concurrent workers — the access pattern of
// on-the-fly SCC decomposition in model checking (Bloemen et al.), the
// paper's headline motivation.
func SCC(n int, edges []graph.Edge, workers int) []uint32 {
	workers = clampWorkers(workers)
	fwd := graph.Build(n, edges, true)
	rev := make([]graph.Edge, len(edges))
	for i, e := range edges {
		rev[i] = graph.Edge{U: e.V, V: e.U}
	}
	bwd := graph.Build(n, rev, true)

	d := dsu.New(n)
	s := &fbState{
		fwd: fwd, rev: bwd, d: d,
		region: make([]atomic.Int64, n),
		inF:    make([]bool, n),
		inB:    make([]bool, n),
		sem:    make(chan struct{}, workers),
	}
	all := make([]uint32, n)
	for i := range all {
		all[i] = uint32(i)
	}
	s.run(all, s.nextRegion())
	s.wg.Wait()
	return d.CanonicalLabels()
}

// fbState carries the shared state of the FB recursion. Every vertex
// belongs to exactly one active recursive call (its region), so inF/inB
// have a single writer at any time; region tags are written only by a
// vertex's owner but are READ across regions (BFS checks neighbours'
// membership), so they are atomic. Region ids are never reused, so a
// cross-region read returning either the old or the new tag compares
// unequal to the reader's id either way.
type fbState struct {
	fwd, rev  *graph.Adjacency
	d         *dsu.DSU
	region    []atomic.Int64
	inF, inB  []bool
	regionCtr atomic.Int64
	sem       chan struct{}
	wg        sync.WaitGroup
}

func (s *fbState) nextRegion() int64 { return s.regionCtr.Add(1) }

// run processes one active vertex set; it collapses the pivot's SCC and
// recurses on the three independent parts, farming out what it can.
func (s *fbState) run(vertices []uint32, id int64) {
	for len(vertices) > 0 {
		for _, v := range vertices {
			s.region[v].Store(id)
		}
		pivot := vertices[0]
		f := s.bfs(s.fwd, pivot, id, s.inF)
		b := s.bfs(s.rev, pivot, id, s.inB)

		var scc, fOnly, bOnly, rest []uint32
		for _, v := range f {
			if s.inB[v] {
				scc = append(scc, v)
			} else {
				fOnly = append(fOnly, v)
			}
		}
		for _, v := range b {
			if !s.inF[v] {
				bOnly = append(bOnly, v)
			}
		}
		for _, v := range vertices {
			if !s.inF[v] && !s.inB[v] {
				rest = append(rest, v)
			}
		}
		for _, v := range f {
			s.inF[v] = false
		}
		for _, v := range b {
			s.inB[v] = false
		}

		s.collapse(scc)
		s.spawn(fOnly)
		s.spawn(bOnly)
		vertices = rest
		id = s.nextRegion()
	}
}

func (s *fbState) spawn(part []uint32) {
	if len(part) == 0 {
		return
	}
	id := s.nextRegion()
	select {
	case s.sem <- struct{}{}:
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() { <-s.sem }()
			s.run(part, id)
		}()
	default:
		s.run(part, id)
	}
}

// collapse unites all SCC members into the pivot, chunked across workers
// for large components.
func (s *fbState) collapse(scc []uint32) {
	if len(scc) <= 1 {
		return
	}
	pivot := scc[0]
	const chunk = 2048
	if len(scc) <= chunk {
		for _, v := range scc[1:] {
			s.d.Unite(pivot, v)
		}
		return
	}
	var wg sync.WaitGroup
	for lo := 1; lo < len(scc); lo += chunk {
		hi := lo + chunk
		if hi > len(scc) {
			hi = len(scc)
		}
		wg.Add(1)
		go func(part []uint32) {
			defer wg.Done()
			for _, v := range part {
				s.d.Unite(pivot, v)
			}
		}(scc[lo:hi])
	}
	wg.Wait()
}

// bfs explores from pivot inside region id, marking mark[v] and returning
// the visited set (including pivot).
func (s *fbState) bfs(adj *graph.Adjacency, pivot uint32, id int64, mark []bool) []uint32 {
	visited := []uint32{pivot}
	mark[pivot] = true
	for head := 0; head < len(visited); head++ {
		for _, w := range adj.Neighbors(visited[head]) {
			if s.region[w].Load() == id && !mark[w] {
				mark[w] = true
				visited = append(visited, w)
			}
		}
	}
	return visited
}

// TarjanSCC is the sequential reference: iterative Tarjan returning a
// component id per vertex (ids in reverse-topological discovery order).
func TarjanSCC(adj *graph.Adjacency) []uint32 {
	n := adj.N()
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	comp := make([]uint32, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		counter int32
		nComp   uint32
		stack   []uint32
	)
	type frame struct {
		v    uint32
		edge int32
	}
	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		callStack := []frame{{uint32(start), 0}}
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, uint32(start))
		onStack[start] = true
		for len(callStack) > 0 {
			fr := &callStack[len(callStack)-1]
			neighbors := adj.Neighbors(fr.v)
			if int(fr.edge) < len(neighbors) {
				w := neighbors[fr.edge]
				fr.edge++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{w, 0})
				} else if onStack[w] && index[w] < low[fr.v] {
					low[fr.v] = index[w]
				}
				continue
			}
			v := fr.v
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := &callStack[len(callStack)-1]
				if low[v] < low[parent.v] {
					low[parent.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
		}
	}
	return comp
}

// CanonicalSCCLabels converts arbitrary component ids into min-vertex
// labels so partitions from different algorithms compare directly.
func CanonicalSCCLabels(comp []uint32) []uint32 {
	minOf := make(map[uint32]uint32, len(comp))
	for v, c := range comp {
		if cur, ok := minOf[c]; !ok || uint32(v) < cur {
			minOf[c] = uint32(v)
		}
	}
	out := make([]uint32, len(comp))
	for v, c := range comp {
		out[v] = minOf[c]
	}
	return out
}
