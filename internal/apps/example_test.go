package apps_test

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/graph"
)

// Connected components of a small explicit graph.
func ExampleParallelCC() {
	edges := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}}
	labels := apps.ParallelCC(6, edges, 2)
	fmt.Println(labels)
	// Output: [0 0 0 3 3 5]
}

// A lattice with all bonds open percolates; with none it cannot.
func ExamplePercolates() {
	size := 8
	fmt.Println(apps.Percolates(size, graph.Grid(size, size)))
	fmt.Println(apps.Percolates(size, nil))
	// Output:
	// true
	// false
}

// Minimum spanning forest weight of a triangle.
func ExampleBoruvka() {
	edges := []graph.WeightedEdge{
		{U: 0, V: 1, W: 1},
		{U: 1, V: 2, W: 2},
		{U: 0, V: 2, W: 10},
	}
	weight, count := apps.Boruvka(3, edges, 2)
	fmt.Println(weight, count)
	// Output: 3 2
}

// Strongly connected components: a 3-cycle feeding a sink.
func ExampleSCC() {
	edges := []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, // cycle
		{U: 2, V: 3}, // one-way exit
	}
	fmt.Println(apps.SCC(4, edges, 2))
	// Output: [0 0 0 3]
}
