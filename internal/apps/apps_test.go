package apps

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/randutil"
)

func TestParallelCCMatchesBFS(t *testing.T) {
	for _, tc := range []struct {
		n, m    int
		seed    uint64
		workers int
	}{
		{100, 50, 1, 4},     // sparse, many components
		{100, 300, 2, 8},    // denser
		{1000, 1500, 3, 8},  // mid-size
		{5000, 20000, 4, 0}, // default workers
	} {
		edges := graph.ErdosRenyi(tc.n, tc.m, tc.seed)
		got := ParallelCC(tc.n, edges, tc.workers)
		want := graph.RefComponents(tc.n, edges)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("n=%d m=%d: vertex %d label %d, want %d", tc.n, tc.m, v, got[v], want[v])
			}
		}
	}
}

func TestParallelCCQuick(t *testing.T) {
	check := func(seed uint64) bool {
		const n = 60
		edges := graph.ErdosRenyi(n, 80, seed)
		got := ParallelCC(n, edges, 4)
		want := graph.RefComponents(n, edges)
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPercolatesExtremes(t *testing.T) {
	const size = 16
	bonds := graph.Grid(size, size)
	if !Percolates(size, bonds) {
		t.Fatal("full lattice must percolate")
	}
	if Percolates(size, nil) {
		t.Fatal("empty lattice must not percolate")
	}
	// A single full column of vertical bonds percolates.
	var column []graph.Edge
	for r := 0; r+1 < size; r++ {
		v := uint32(r*size + 3)
		column = append(column, graph.Edge{U: v, V: v + uint32(size)})
	}
	if !Percolates(size, column) {
		t.Fatal("vertical column must percolate")
	}
	// A full row of horizontal bonds does not connect top to bottom.
	var row []graph.Edge
	for c := 0; c+1 < size; c++ {
		v := uint32(5*size + c)
		row = append(row, graph.Edge{U: v, V: v + 1})
	}
	if Percolates(size, row) {
		t.Fatal("horizontal row must not percolate")
	}
}

func TestPercolationPointMonotoneAcrossThreshold(t *testing.T) {
	// Below threshold ≈ 0, above ≈ 1, and deterministic in seed.
	lo := PercolationPoint(32, 24, 4, 0.25, 7)
	hi := PercolationPoint(32, 24, 4, 0.75, 7)
	if lo > 0.2 {
		t.Errorf("P(percolate | q=0.25) = %v, expected near 0", lo)
	}
	if hi < 0.8 {
		t.Errorf("P(percolate | q=0.75) = %v, expected near 1", hi)
	}
	if again := PercolationPoint(32, 24, 4, 0.25, 7); again != lo {
		t.Errorf("same seed gave %v then %v", lo, again)
	}
}

func TestBoruvkaMatchesKruskal(t *testing.T) {
	for _, tc := range []struct {
		n, m int
		seed uint64
	}{
		{50, 200, 1},
		{500, 2000, 2},
		{2000, 10000, 3},
	} {
		edges := graph.RandomWeights(graph.ErdosRenyi(tc.n, tc.m, tc.seed), tc.seed+10)
		gotW, gotK := Boruvka(tc.n, edges, 8)
		wantW, wantK := graph.KruskalRef(tc.n, edges)
		if gotK != wantK {
			t.Fatalf("n=%d: %d tree edges, want %d", tc.n, gotK, wantK)
		}
		if math.Abs(gotW-wantW) > 1e-9*math.Max(1, wantW) {
			t.Fatalf("n=%d: weight %v, want %v", tc.n, gotW, wantW)
		}
	}
}

func TestBoruvkaDisconnectedAndEmpty(t *testing.T) {
	// Two disconnected pairs → forest of 2 edges.
	edges := []graph.WeightedEdge{{U: 0, V: 1, W: 0.5}, {U: 2, V: 3, W: 0.25}}
	w, k := Boruvka(4, edges, 2)
	if k != 2 || math.Abs(w-0.75) > 1e-12 {
		t.Fatalf("forest = (%v, %d), want (0.75, 2)", w, k)
	}
	// No edges at all.
	w, k = Boruvka(5, nil, 2)
	if k != 0 || w != 0 {
		t.Fatalf("empty graph gave (%v, %d)", w, k)
	}
	// Self-loops only.
	w, k = Boruvka(3, []graph.WeightedEdge{{U: 1, V: 1, W: 0.1}}, 2)
	if k != 0 || w != 0 {
		t.Fatalf("self-loop graph gave (%v, %d)", w, k)
	}
}

func sccEqual(t *testing.T, n int, edges []graph.Edge, workers int) {
	t.Helper()
	got := SCC(n, edges, workers)
	want := CanonicalSCCLabels(TarjanSCC(graph.Build(n, edges, true)))
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: FB label %d, Tarjan label %d", v, got[v], want[v])
		}
	}
}

func TestSCCKnownGraphs(t *testing.T) {
	// Two 3-cycles joined by a one-way bridge, plus an isolated vertex.
	edges := []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, // cycle A
		{U: 2, V: 3},                             // bridge
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 3}, // cycle B
	}
	got := SCC(7, edges, 4)
	if got[0] != got[1] || got[1] != got[2] {
		t.Fatal("cycle A not one component")
	}
	if got[3] != got[4] || got[4] != got[5] {
		t.Fatal("cycle B not one component")
	}
	if got[0] == got[3] {
		t.Fatal("bridge direction ignored: A and B merged")
	}
	if got[6] != 6 {
		t.Fatal("isolated vertex mislabelled")
	}
	sccEqual(t, 7, edges, 4)
}

func TestSCCDAGAllSingletons(t *testing.T) {
	edges := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 2, V: 3}}
	got := SCC(4, edges, 2)
	for v, l := range got {
		if l != uint32(v) {
			t.Fatalf("DAG vertex %d got label %d", v, l)
		}
	}
}

func TestSCCOneBigCycle(t *testing.T) {
	const n = 1000
	edges := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = graph.Edge{U: uint32(i), V: uint32((i + 1) % n)}
	}
	got := SCC(n, edges, 8)
	for v, l := range got {
		if l != 0 {
			t.Fatalf("cycle vertex %d got label %d", v, l)
		}
	}
}

func TestSCCRandomMatchesTarjan(t *testing.T) {
	for _, tc := range []struct {
		scale, m int
		seed     uint64
	}{
		{8, 1000, 1},
		{10, 8000, 2},
		{12, 40000, 3},
	} {
		edges := graph.RMAT(tc.scale, tc.m, tc.seed)
		sccEqual(t, 1<<tc.scale, edges, 8)
	}
}

func TestSCCQuick(t *testing.T) {
	check := func(seed uint64) bool {
		const n = 40
		rng := randutil.NewXoshiro256(seed)
		edges := make([]graph.Edge, 80)
		for i := range edges {
			edges[i] = graph.Edge{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))}
		}
		got := SCC(n, edges, 4)
		want := CanonicalSCCLabels(TarjanSCC(graph.Build(n, edges, true)))
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalSCCLabels(t *testing.T) {
	comp := []uint32{2, 2, 0, 0, 1}
	got := CanonicalSCCLabels(comp)
	want := []uint32{0, 0, 2, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("labels = %v, want %v", got, want)
		}
	}
}

func BenchmarkParallelCC(b *testing.B) {
	const n, m = 1 << 16, 1 << 18
	edges := graph.ErdosRenyi(n, m, 1)
	for i := 0; i < b.N; i++ {
		ParallelCC(n, edges, 0)
	}
}

func BenchmarkSCC(b *testing.B) {
	edges := graph.RMAT(14, 100000, 1)
	for i := 0; i < b.N; i++ {
		SCC(1<<14, edges, 0)
	}
}
