// Package apps implements the paper's motivating applications as reusable,
// tested library functions over the concurrent DSU: parallel connected
// components, bond percolation, Borůvka minimum spanning forests, and
// forward–backward strongly connected components. The runnable programs
// under examples/ are thin drivers over this package.
package apps

import (
	"runtime"
	"sync"

	"repro/dsu"
	"repro/internal/graph"
	"repro/internal/randutil"
)

// clampWorkers normalizes a worker count: ≤ 0 means GOMAXPROCS.
func clampWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// ParallelCC computes connected-component labels (min vertex per component)
// of the undirected graph with `workers` goroutines sharing one wait-free
// DSU.
func ParallelCC(n int, edges []graph.Edge, workers int) []uint32 {
	workers = clampWorkers(workers)
	d := dsu.New(n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(edges); i += workers {
				d.Unite(edges[i].U, edges[i].V)
			}
		}(w)
	}
	wg.Wait()
	return d.CanonicalLabels()
}

// Percolates reports whether the size×size bond lattice with exactly the
// given kept bonds connects its top row to its bottom row, via two virtual
// terminal elements.
func Percolates(size int, kept []graph.Edge) bool {
	n := size * size
	top := uint32(n)
	bottom := uint32(n + 1)
	d := dsu.New(n + 2)
	for c := 0; c < size; c++ {
		d.Unite(top, uint32(c))
		d.Unite(bottom, uint32((size-1)*size+c))
	}
	for _, e := range kept {
		d.Unite(e.U, e.V)
	}
	return d.SameSet(top, bottom)
}

// PercolationPoint estimates the crossing probability at bond-keep
// probability q on a size×size lattice with the given number of
// Monte-Carlo trials, run concurrently. Deterministic in seed.
func PercolationPoint(size, trials, workers int, q float64, seed uint64) float64 {
	workers = clampWorkers(workers)
	bonds := graph.Grid(size, size)
	hits := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for t := w; t < trials; t += workers {
				rng := randutil.NewXoshiro256(seed + uint64(t)*1_000_003)
				kept := make([]graph.Edge, 0, len(bonds))
				for _, b := range bonds {
					if rng.Float64() < q {
						kept = append(kept, b)
					}
				}
				if Percolates(size, kept) {
					hits[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, h := range hits {
		total += h
	}
	return float64(total) / float64(trials)
}

// Boruvka computes a minimum spanning forest with parallel Borůvka rounds
// over a shared DSU, returning total weight and tree-edge count. With
// distinct weights the result is the unique MSF. Each round scans edge
// shards concurrently against the quiescent partition, then applies the
// chosen lightest edges.
func Boruvka(n int, edges []graph.WeightedEdge, workers int) (totalWeight float64, treeEdges int) {
	workers = clampWorkers(workers)
	d := dsu.New(n)
	type best struct {
		idx int
		w   float64
	}
	for {
		shard := make([]map[uint32]best, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				mine := make(map[uint32]best)
				for i := w; i < len(edges); i += workers {
					e := edges[i]
					if e.U == e.V || d.SameSet(e.U, e.V) {
						continue
					}
					for _, side := range [2]uint32{d.Find(e.U), d.Find(e.V)} {
						if b, ok := mine[side]; !ok || e.W < b.w {
							mine[side] = best{i, e.W}
						}
					}
				}
				shard[w] = mine
			}(w)
		}
		wg.Wait()
		chosen := make(map[uint32]best)
		for _, mine := range shard {
			for comp, b := range mine {
				if cur, ok := chosen[comp]; !ok || b.w < cur.w {
					chosen[comp] = b
				}
			}
		}
		added := 0
		for _, b := range chosen {
			e := edges[b.idx]
			if d.Unite(e.U, e.V) {
				totalWeight += e.W
				treeEdges++
				added++
			}
		}
		if added == 0 {
			return totalWeight, treeEdges
		}
	}
}
