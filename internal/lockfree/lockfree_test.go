package lockfree

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/randutil"
	"repro/internal/seqdsu"
	"repro/internal/workload"
)

// oracle replays unite ops through the classical sequential structure.
func oracle(n int, ops []workload.Op) *seqdsu.DSU {
	ref := seqdsu.New(n, seqdsu.LinkRank, seqdsu.CompactHalving, 1)
	for _, op := range ops {
		if op.Kind == workload.OpUnite {
			ref.Unite(op.X, op.Y)
		}
	}
	return ref
}

// TestSlotSpacePermutation pins the layout: slot and elem are inverse
// permutations, ID speaks the slot vocabulary, and the parent array starts
// all-singleton in slot space.
func TestSlotSpacePermutation(t *testing.T) {
	const n = 257
	d := New(n, core.Config{Seed: 11})
	seen := make([]bool, n)
	for x := uint32(0); x < n; x++ {
		s := d.ID(x)
		if s >= n {
			t.Fatalf("ID(%d) = %d out of range", x, s)
		}
		if seen[s] {
			t.Fatalf("slot %d assigned twice", s)
		}
		seen[s] = true
		if d.elem[s] != x {
			t.Fatalf("elem[slot[%d]] = %d, want %d", x, d.elem[s], x)
		}
		if d.Parent(s) != s {
			t.Fatalf("fresh parent[%d] = %d, want self", s, d.Parent(s))
		}
	}
	if d.Sets() != n {
		t.Fatalf("fresh Sets() = %d, want %d", d.Sets(), n)
	}
}

// TestUpwardPointerInvariant drives a random workload and checks the
// paper's Lemma 3.1 in slot space after every phase: parent[s] ≥ s for
// every slot, under every find variant.
func TestUpwardPointerInvariant(t *testing.T) {
	const n = 512
	for _, f := range []core.Find{core.FindNaive, core.FindOneTry, core.FindTwoTry} {
		t.Run(f.String(), func(t *testing.T) {
			d := New(n, core.Config{Find: f, Seed: 3})
			for _, op := range workload.RandomUnions(n, 3*n, 5) {
				d.Unite(op.X, op.Y)
				d.Find(op.X)
			}
			for s := uint32(0); s < n; s++ {
				if p := d.Parent(s); p < s {
					t.Fatalf("parent[%d] = %d points down the linking order", s, p)
				}
			}
		})
	}
}

// TestMatchesOracleSequential cross-validates the full quiescent surface
// against the sequential specification, per find variant.
func TestMatchesOracleSequential(t *testing.T) {
	const n = 1000
	for _, f := range []core.Find{core.FindNaive, core.FindOneTry, core.FindTwoTry} {
		for _, seed := range []uint64{1, 9} {
			t.Run(fmt.Sprintf("%v/seed=%d", f, seed), func(t *testing.T) {
				ops := workload.RandomUnions(n, 2*n, seed)
				d := New(n, core.Config{Find: f, Seed: seed})
				merged := 0
				for _, op := range ops {
					if d.Unite(op.X, op.Y) {
						merged++
					}
				}
				ref := oracle(n, ops)
				if got, want := n-d.Sets(), merged; got != want {
					t.Fatalf("links %d, reported merges %d", got, want)
				}
				if d.Sets() != ref.Sets() {
					t.Fatalf("Sets() = %d, oracle %d", d.Sets(), ref.Sets())
				}
				want := ref.CanonicalLabels()
				got := d.CanonicalLabels()
				for x := range got {
					if got[x] != want[x] {
						t.Fatalf("label[%d] = %d, want %d", x, got[x], want[x])
					}
				}
				snap := d.Snapshot()
				for x := range snap {
					if !d.SameSet(uint32(x), snap[x]) {
						t.Fatalf("snapshot parent %d of %d not in its set", snap[x], x)
					}
				}
			})
		}
	}
}

// TestWithFindSharesForest checks variant views operate on one forest:
// unites through one view are visible through another, and the
// construction rejects non-splitting variants.
func TestWithFindSharesForest(t *testing.T) {
	d := New(64, core.Config{Seed: 2})
	naive := d.WithFind(core.FindNaive)
	naive.Unite(1, 2)
	if !d.SameSet(1, 2) {
		t.Fatal("unite through a view invisible to the base")
	}
	d.Unite(2, 3)
	if !naive.SameSet(1, 3) {
		t.Fatal("unite through the base invisible to a view")
	}
	if d.WithFind(d.Config().Find) != d {
		t.Fatal("same-variant view should be the receiver")
	}
	for _, f := range []core.Find{core.FindHalving, core.FindCompress} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("WithFind(%v) should panic", f)
				}
			}()
			d.WithFind(f)
		}()
	}
}

// TestConstructorContract pins New's panics: out-of-range n, early
// termination, and the non-splitting find variants.
func TestConstructorContract(t *testing.T) {
	for _, c := range []struct {
		name string
		fn   func()
	}{
		{"negative n", func() { New(-1, core.Config{}) }},
		{"n over 2^31-1", func() { New(1 << 31, core.Config{}) }},
		{"early termination", func() { New(4, core.Config{EarlyTermination: true}) }},
		{"halving", func() { New(4, core.Config{Find: core.FindHalving}) }},
		{"compression", func() { New(4, core.Config{Find: core.FindCompress}) }},
	} {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			c.fn()
		})
	}
	if d := New(0, core.Config{}); d.N() != 0 || d.Sets() != 0 {
		t.Error("empty universe should construct")
	}
	if got := New(4, core.Config{}).Config().Find; got != core.FindTwoTry {
		t.Errorf("zero Find defaulted to %v, want two-try", got)
	}
}

// TestOverlappingBatchesExactMerges is the no-barrier contract's
// accounting half: many UniteAll calls overlapping on one structure from
// many goroutines, with point operations racing them, must sum their
// Merged counts to exactly initial sets − final sets — every successful
// link counted exactly once — and land on the oracle partition.
func TestOverlappingBatchesExactMerges(t *testing.T) {
	const n, batches, perBatch = 2048, 8, 1024
	d := New(n, core.Config{Seed: 21})
	rng := randutil.NewXoshiro256(77)
	all := make([][]exec.Edge, batches)
	var flatOps []workload.Op
	for i := range all {
		ops := workload.RandomUnions(n, perBatch, rng.Next())
		flatOps = append(flatOps, ops...)
		edges := make([]exec.Edge, len(ops))
		for j, op := range ops {
			edges[j] = exec.Edge{X: op.X, Y: op.Y}
		}
		all[i] = edges
	}

	var wg sync.WaitGroup
	results := make([]exec.Result, batches)
	for i := range all {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = d.UniteAll(all[i], exec.Config{Workers: 2})
		}(i)
	}
	// Point operations race the batches; their merges must be counted by
	// them alone (Unite returning true), never double-counted by a batch.
	pointMerged := 0
	for _, op := range workload.RandomUnions(n, 256, 123) {
		if d.Unite(op.X, op.Y) {
			pointMerged++
		}
		flatOps = append(flatOps, op)
	}
	wg.Wait()

	var batchMerged int64
	for _, r := range results {
		batchMerged += r.Merged
		if r.CASRetries < 0 {
			t.Fatalf("negative CASRetries %d", r.CASRetries)
		}
	}
	if got, want := batchMerged+int64(pointMerged), int64(n-d.Sets()); got != want {
		t.Fatalf("summed merges %d, want exactly %d (initial − final sets)", got, want)
	}
	ref := oracle(n, flatOps)
	want := ref.CanonicalLabels()
	got := d.CanonicalLabels()
	for x := range got {
		if got[x] != want[x] {
			t.Fatalf("label[%d] = %d, want %d", x, got[x], want[x])
		}
	}
}

// TestBatchFiltersAndQueries covers the exec.Backend surface: prefilter
// and connected-filter neutrality, query batches, and the screen.
func TestBatchFiltersAndQueries(t *testing.T) {
	const n = 800
	ops := workload.ZipfMixed(n, 4*n, 1.0, 1.2, 9)
	edges := make([]exec.Edge, len(ops))
	for i, op := range ops {
		edges[i] = exec.Edge{X: op.X, Y: op.Y}
	}
	raw := New(n, core.Config{Seed: 4})
	rawRes := raw.UniteAll(edges, exec.Config{})
	filt := New(n, core.Config{Seed: 4})
	filtRes := filt.UniteAll(edges, exec.Config{Prefilter: true, ConnectedFilter: true})
	if rawRes.Merged != filtRes.Merged {
		t.Fatalf("merged %d raw vs %d filtered", rawRes.Merged, filtRes.Merged)
	}
	if filtRes.Filtered == 0 {
		t.Fatal("Zipf batch should report filtered edges")
	}
	wantLabels := raw.CanonicalLabels()
	gotLabels := filt.CanonicalLabels()
	for x := range gotLabels {
		if gotLabels[x] != wantLabels[x] {
			t.Fatalf("label[%d] = %d, want %d", x, gotLabels[x], wantLabels[x])
		}
	}

	ans, _ := raw.SameSetAll(edges, exec.Config{Workers: 3})
	for i, e := range edges {
		if want := raw.SameSet(e.X, e.Y); ans[i] != want {
			t.Fatalf("query %d (%d,%d) = %v, point %v", i, e.X, e.Y, ans[i], want)
		}
	}
	kept, _ := raw.ScreenConnected(edges, exec.Config{})
	for _, e := range kept {
		if raw.SameSet(e.X, e.Y) {
			t.Fatalf("screen kept connected edge (%d,%d)", e.X, e.Y)
		}
	}
}
