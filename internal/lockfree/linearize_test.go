package lockfree

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/linearize"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestPointOpsLinearizable drives real goroutines through Unite/SameSet on
// one lock-free structure and feeds the timed history to the Wing–Gong
// checker: every observed outcome must be explained by some sequential
// order consistent with real time. A global atomic tick stamps invocation
// and response, so the recorded intervals are real-time-consistent and
// per-goroutine sequential — exactly what trace.Validate demands. Histories
// stay under the checker's 63-op ceiling (small n, few procs, few ops);
// the value of the test is the -race schedule diversity across seeds and
// find variants, not volume.
func TestPointOpsLinearizable(t *testing.T) {
	const (
		n       = 8
		procs   = 3
		opsEach = 5
	)
	for _, f := range []core.Find{core.FindNaive, core.FindOneTry, core.FindTwoTry} {
		for seed := uint64(1); seed <= 12; seed++ {
			t.Run(fmt.Sprintf("%v/seed=%d", f, seed), func(t *testing.T) {
				d := New(n, core.Config{Find: f, Seed: seed})
				rec := trace.NewRecorder(procs)
				var tick atomic.Int64
				var wg sync.WaitGroup
				for p := 0; p < procs; p++ {
					ops := workload.Mixed(n, opsEach, 0.6, seed*31+uint64(p))
					wg.Add(1)
					go func(p int, ops []workload.Op) {
						defer wg.Done()
						for _, op := range ops {
							inv := tick.Add(1)
							var res bool
							switch op.Kind {
							case workload.OpUnite:
								res = d.Unite(op.X, op.Y)
							case workload.OpSameSet:
								res = d.SameSet(op.X, op.Y)
							}
							resp := tick.Add(1)
							rec.Record(p, trace.Event{
								Proc: p, Kind: op.Kind,
								X: op.X, Y: op.Y,
								Result: res, Inv: inv, Resp: resp,
							})
							runtime.Gosched()
						}
					}(p, ops)
				}
				wg.Wait()

				h := rec.History()
				if err := h.Validate(); err != nil {
					t.Fatalf("recorded history invalid: %v", err)
				}
				if _, err := linearize.Check(n, h); err != nil {
					t.Fatalf("history not linearizable: %v\n%v", err, h)
				}
			})
		}
	}
}

// TestUniteBooleanNoDoubleClaim checks Unite's linearizable boolean under
// heavy symmetric contention: when every goroutine hammers the same pair,
// exactly one call in total may claim the merge.
func TestUniteBooleanNoDoubleClaim(t *testing.T) {
	const procs = 8
	for seed := uint64(1); seed <= 20; seed++ {
		d := New(4, core.Config{Seed: seed})
		var claims atomic.Int64
		var wg sync.WaitGroup
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if d.Unite(1, 3) {
					claims.Add(1)
				}
			}()
		}
		wg.Wait()
		if got := claims.Load(); got != 1 {
			t.Fatalf("seed %d: %d callers claimed the (1,3) merge, want exactly 1", seed, got)
		}
		if !d.SameSet(1, 3) || d.Sets() != 3 {
			t.Fatalf("seed %d: merge not applied", seed)
		}
	}
}
