// Package lockfree is the concurrent backend proper: the paper's
// randomized CAS-linking algorithm, refined per Jayanti & Tarjan,
// "Concurrent Disjoint Set Union" (Distributed Computing 2021; PAPERS.md),
// implemented so that the whole mutation surface — point operations and
// overlapping batch calls alike — is safe from any number of goroutines
// with no quiescence requirement and no serialization anywhere. Finds are
// wait-free (a find completes in a bounded number of its own steps: path
// lengths only shrink under splitting), unites are lock-free (a failed
// root-link CAS means some other link succeeded — system-wide progress),
// which is exactly the paper's guarantee and what lets internal/exec drive
// batches over this structure with workers applying edges directly,
// instead of funneling them through a serialize-then-parallelize barrier.
//
// # One array, linking order baked into the layout
//
// internal/core keeps two arrays — atomic parents plus an immutable random
// id permutation — and every link decision loads from both. This package
// bakes the permutation into the layout instead: elements are relabelled
// into "slot" space at construction (slot = the element's position in the
// random linking order, the same ID vocabulary core exposes), and the one
// []atomic.Uint32 parent array is indexed by slot. Inside slot space the
// linking order IS numeric order — "u precedes v" is `u < v` on raw slot
// numbers — so the find loop and the link CAS touch exactly one array:
// no id loads on the path, half the cache traffic of the two-array walk.
// The immutable slot/elem permutations are consulted only at an
// operation's boundary (element → slot on entry, root slot → element on
// exit), never inside the retry loops.
//
// Invariant (the paper's Lemma 3.1 in slot space): parent pointers are
// non-decreasing — parent[s] ≥ s always, a root is parent[s] == s, and
// every CAS moves a pointer strictly upward to a current union-forest
// ancestor. All quiescent reads (Sets, Snapshot, CanonicalLabels) and the
// linearizability arguments carry over from core unchanged.
package lockfree

import (
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/randutil"
)

// DSU is the lock-free concurrent disjoint-set structure over elements
// 0..n−1. Every method is safe from any number of goroutines, mutations
// included — there is no batch barrier, no mutation lock, and no
// quiescence requirement anywhere on the operation surface. The zero
// value is not usable; call New.
type DSU struct {
	// parent is the single hot array, indexed by slot (position in the
	// random linking order). Links CAS a root slot to point at a larger
	// slot; splitting CASes swing path pointers upward.
	parent []atomic.Uint32
	// slot and elem are the immutable random relabelling and its inverse:
	// slot[x] is element x's position in the linking order (the ID
	// vocabulary), elem[s] the element living at slot s.
	slot, elem []uint32
	// tries is the per-node splitting attempt count resolved from
	// cfg.Find: 0 for FindNaive, 1 for FindOneTry, 2 for FindTwoTry.
	tries int
	cfg   core.Config
}

// New returns a lock-free DSU over n singleton elements. The config's
// Find must be one of the splitting family — FindNaive, FindOneTry, or
// FindTwoTry (zero defaults to FindTwoTry) — and EarlyTermination is not
// supported: the Section 6 interleavings optimize the two-find
// sequential pattern this backend's direct batch path does not use. It
// panics on out-of-range n or an unsupported config, exactly as core.New
// does.
func New(n int, cfg core.Config) *DSU {
	if n < 0 || int64(n) > int64(1)<<31-1 {
		panic("lockfree: element count out of range")
	}
	if cfg.Find == 0 {
		cfg.Find = core.FindTwoTry
	}
	if cfg.EarlyTermination {
		panic("lockfree: early termination is not supported by the lock-free backend")
	}
	d := &DSU{
		parent: make([]atomic.Uint32, n),
		slot:   make([]uint32, n),
		elem:   randutil.NewXoshiro256(cfg.Seed).Perm(n),
		tries:  triesOf(cfg.Find),
		cfg:    cfg,
	}
	for s, x := range d.elem {
		d.slot[x] = uint32(s)
		d.parent[s].Store(uint32(s))
	}
	return d
}

// triesOf maps a find variant to its splitting attempt count, panicking
// on the variants the lock-free backend does not define (halving and
// compression belong to core's ablation surface).
func triesOf(f core.Find) int {
	switch f {
	case core.FindNaive:
		return 0
	case core.FindOneTry:
		return 1
	case core.FindTwoTry:
		return 2
	default:
		panic("lockfree: find strategy must be naive, one-try, or two-try splitting")
	}
}

// N returns the number of elements.
func (d *DSU) N() int { return len(d.parent) }

// Config returns the variant configuration.
func (d *DSU) Config() core.Config { return d.cfg }

// ID returns x's position in the random linking order — its slot. Same
// vocabulary as core.DSU.ID, fixed at construction.
func (d *DSU) ID(x uint32) uint32 { return d.slot[x] }

// WithFind returns a view running find variant f over the same forest:
// shared parent array and relabelling, so operations through the view are
// operations on d. Safe to interleave with any concurrent use — every
// splitting variant maintains the same upward-pointer invariant — which
// is what lets the adaptive policy downgrade query batches per batch. It
// panics on variants outside the splitting family, as New would.
func (d *DSU) WithFind(f core.Find) *DSU {
	if f == d.cfg.Find {
		return d
	}
	v := &DSU{parent: d.parent, slot: d.slot, elem: d.elem, tries: triesOf(f), cfg: d.cfg}
	v.cfg.Find = f
	return v
}

// findSlot walks u to its current root in slot space, splitting with the
// configured number of tries. Wait-free; st may be nil.
func (d *DSU) findSlot(u uint32, st *core.Stats) uint32 {
	if st != nil {
		st.Finds++
	}
	if d.tries == 0 {
		// Naive walk (Algorithm 1): follow pointers, no compaction.
		var steps int64
		for {
			steps++
			p := d.parent[u].Load()
			if p == u {
				if st != nil {
					st.FindSteps += steps
					st.Reads += steps
				}
				return u
			}
			u = p
		}
	}
	// Splitting (Algorithms 4/5): try `tries` times to swing each visited
	// node's parent to its grandparent, then advance. The CAS is relaxed —
	// its result changes only the accounting, never the control flow.
	var steps, reads, cas, casFail int64
	for {
		steps++
		var v uint32
		for t := 0; t < d.tries; t++ {
			v = d.parent[u].Load()
			w := d.parent[v].Load()
			reads += 2
			if v == w {
				if st != nil {
					st.FindSteps += steps
					st.Reads += reads
					st.CASAttempts += cas
					st.CASFailures += casFail
					st.Rewrites += cas - casFail
				}
				return v
			}
			cas++
			if !d.parent[u].CompareAndSwap(v, w) {
				casFail++
			}
		}
		u = v
	}
}

// Find returns the root (canonical representative at the linearization
// point) of the set containing x.
func (d *DSU) Find(x uint32) uint32 { return d.elem[d.findSlot(d.slot[x], nil)] }

// FindCounted is Find with work accounting into st.
func (d *DSU) FindCounted(x uint32, st *core.Stats) uint32 {
	return d.elem[d.findSlot(d.slot[x], st)]
}

// sameSet is Algorithm 2 in slot space: two finds, answer true on a
// common root, false when the first root is still a root (it was a root
// while distinct from the other — the linearization point), retry
// otherwise.
func (d *DSU) sameSet(x, y uint32, st *core.Stats) bool {
	if st != nil {
		defer func() { st.Ops++ }()
	}
	u, v := d.slot[x], d.slot[y]
	for {
		if st != nil {
			st.Rounds++
		}
		u = d.findSlot(u, st)
		v = d.findSlot(v, st)
		if u == v {
			return true
		}
		if st != nil {
			st.Reads++
		}
		if d.parent[u].Load() == u {
			return false
		}
	}
}

// SameSet reports whether x and y are in the same set (linearizable).
func (d *DSU) SameSet(x, y uint32) bool { return d.sameSet(x, y, nil) }

// SameSetCounted is SameSet with work accounting into st.
func (d *DSU) SameSetCounted(x, y uint32, st *core.Stats) bool { return d.sameSet(x, y, st) }

// uniteRetries is Algorithm 3 in slot space: find both roots, link the
// smaller slot under the larger with one CAS, and on failure retry from
// the moved roots. It returns whether this call performed a merge and
// how many times the root-link CAS had to retry — the contention metric
// the concurrent batch path aggregates into exec.Result.CASRetries.
func (d *DSU) uniteRetries(x, y uint32, st *core.Stats) (merged bool, retries int64) {
	if st != nil {
		defer func() { st.Ops++ }()
	}
	u, v := d.slot[x], d.slot[y]
	for {
		if st != nil {
			st.Rounds++
		}
		u = d.findSlot(u, st)
		v = d.findSlot(v, st)
		if u == v {
			return false, retries
		}
		lo, hi := u, v
		if hi < lo {
			lo, hi = hi, lo
		}
		if st != nil {
			st.CASAttempts++
		}
		if d.parent[lo].CompareAndSwap(lo, hi) {
			if st != nil {
				st.Links++
			}
			return true, retries
		}
		// Lost the race: someone else linked lo (or compacted past it).
		// The loop re-finds from the current positions — lock-free, not
		// wait-free: our CAS can only fail because another link landed.
		retries++
		if st != nil {
			st.CASFailures++
		}
	}
}

// Unite merges the sets containing x and y, reporting whether this call
// performed the merge. Linearizable per the paper's Lemma 3.2.
func (d *DSU) Unite(x, y uint32) bool {
	merged, _ := d.uniteRetries(x, y, nil)
	return merged
}

// UniteCounted is Unite with work accounting into st.
func (d *DSU) UniteCounted(x, y uint32, st *core.Stats) bool {
	merged, _ := d.uniteRetries(x, y, st)
	return merged
}

// UniteDirect and SameSetDirect are the exec.ConcurrentOps surface: the
// point operations as batch workers apply them directly, with the link
// retry count surfaced for the batch record.
func (d *DSU) UniteDirect(x, y uint32, st *core.Stats) (merged bool, retries int64) {
	return d.uniteRetries(x, y, st)
}

func (d *DSU) SameSetDirect(x, y uint32, st *core.Stats) bool { return d.sameSet(x, y, st) }

// view resolves a per-batch find-variant override into the target the
// batch actually runs against (mirrors engine.Flat.target).
func (d *DSU) view(f core.Find) *DSU {
	if f == 0 {
		return d
	}
	return d.WithFind(f)
}

// UniteAll implements exec.Backend over the direct concurrent runner:
// workers apply the batch's edges straight through uniteRetries — no span
// claims, no steal protocol, no barrier against other batches. Any number
// of UniteAll calls (and point operations, and streams) may overlap on
// one structure; the final partition is the union of everything applied,
// and the summed Merged across all overlapping calls is exact (every
// successful link is counted exactly once, and the number of links needed
// to reach a partition is schedule-independent). Prefilter and
// ConnectedFilter are honored as on the engine path.
func (d *DSU) UniteAll(edges []exec.Edge, cfg exec.Config) exec.Result {
	t := d.view(cfg.Find)
	var filtered int
	var filterElapsed time.Duration
	var filterStats core.Stats
	if cfg.Prefilter {
		start := time.Now()
		kept := exec.Dedup(edges)
		filtered += len(edges) - len(kept)
		filterElapsed += time.Since(start)
		edges = kept
	}
	if cfg.ConnectedFilter {
		start := time.Now()
		kept, sres := exec.ScreenConnectedDirect(t, edges, cfg)
		filtered += len(edges) - len(kept)
		filterElapsed += time.Since(start)
		filterStats.Add(sres.Stats())
		edges = kept
	}
	res := exec.UniteAllDirect(t, edges, cfg)
	res.Find = t.cfg.Find
	res.Filtered = filtered
	res.FilterElapsed = filterElapsed
	res.FilterStats = filterStats
	res.FilterStats.Filtered = int64(filtered)
	res.Elapsed += filterElapsed
	return res
}

// SameSetAll implements exec.Backend: answers through the direct runner,
// honoring the find override (the adaptive policy's downgrade path).
func (d *DSU) SameSetAll(pairs []exec.Edge, cfg exec.Config) ([]bool, exec.Result) {
	t := d.view(cfg.Find)
	out, res := exec.SameSetAllDirect(t, pairs, cfg)
	res.Find = t.cfg.Find
	return out, res
}

// ScreenConnected implements exec.Backend: drops already-connected edges
// through the direct query loop. Sound under full concurrency — a true
// SameSet answer is definite.
func (d *DSU) ScreenConnected(edges []exec.Edge, cfg exec.Config) ([]exec.Edge, exec.Result) {
	t := d.view(cfg.Find)
	kept, res := exec.ScreenConnectedDirect(t, edges, cfg)
	res.Find = t.cfg.Find
	return kept, res
}

// Seed returns the structure seed (exec.Backend).
func (d *DSU) Seed() uint64 { return d.cfg.Seed }

// CoreConfig returns the variant configuration (exec.Backend).
func (d *DSU) CoreConfig() core.Config { return d.cfg }

// Parent returns slot s's current parent slot: a raw snapshot for forest
// analysis and tests, individually meaningful at quiescence.
func (d *DSU) Parent(s uint32) uint32 { return d.parent[s].Load() }

// Snapshot returns the parent forest translated back to element space:
// entry x is the element whose slot is x's parent slot, so roots satisfy
// parent[x] == x, the flat structure's convention. Taken at quiescence it
// is exact; mid-flight it is per-word atomic, like core's.
func (d *DSU) Snapshot() []uint32 {
	out := make([]uint32, len(d.parent))
	for x := range out {
		out[x] = d.elem[d.parent[d.slot[x]].Load()]
	}
	return out
}

// Sets counts the current number of sets (root slots). Quiescent-state
// use only.
func (d *DSU) Sets() int {
	count := 0
	for s := range d.parent {
		if d.parent[s].Load() == uint32(s) {
			count++
		}
	}
	return count
}

// CanonicalLabels returns the min-element labelling of the current
// partition. Quiescent-state use only. The root chase runs over a slot-
// space snapshot, where parent pointers are strictly increasing off
// roots — each walk is bounded by the slot count by construction.
func (d *DSU) CanonicalLabels() []uint32 {
	n := len(d.parent)
	parent := make([]uint32, n)
	for s := range parent {
		parent[s] = d.parent[s].Load()
	}
	rootOf := make([]uint32, n)
	for s := n - 1; s >= 0; s-- {
		// Walking slots high→low, parent[s] > s is already resolved.
		if p := parent[s]; p == uint32(s) {
			rootOf[s] = uint32(s)
		} else {
			rootOf[s] = rootOf[p]
		}
	}
	minOf := make([]uint32, n)
	for i := range minOf {
		minOf[i] = ^uint32(0)
	}
	for x := 0; x < n; x++ {
		r := rootOf[d.slot[x]]
		if uint32(x) < minOf[r] {
			minOf[r] = uint32(x)
		}
	}
	labels := make([]uint32, n)
	for x := range labels {
		labels[x] = minOf[rootOf[d.slot[x]]]
	}
	return labels
}
