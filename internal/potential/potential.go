// Package potential instruments the amortized analysis of Section 5 of
// Jayanti & Tarjan (inherited from Goel, Khanna, Larkin & Tarjan, SODA
// 2014): each node x carries a level x.a = a(x.r, x.parent.r), an index
// x.b = b(x.a−1, x.parent.r), and a count x.c = x.a·(x.r+2) + x.b, built
// from the Ackermann level/index functions, plus a potential combining the
// count with the number of same-rank ancestors on x's current path. The
// proofs of Theorems 5.1 and 5.2 rest on six properties of these
// quantities; this package re-checks them on every parent-pointer change
// of a live execution:
//
//	(i)   levels stay in [0, α(n,d)+1];
//	(ii)  counts never decrease;
//	(iii) a level increase is matched by an at-least-equal count increase;
//	(iv)  level is 0 exactly when node and parent share a rank;
//	(v)   a level-0 node whose parent changes decreases in potential;
//	(vi)  a change that swings a parent to the (current) grandparent or
//	      higher either raises the count by ≥ 1 (when 1 ≤ u.a ≤
//	      u.parent.a) or lifts u's level to at least the old parent's
//	      (when u.a < u.parent.a).
//
// Properties (i)–(iv) depend only on the changing node's own rank and its
// new parent's rank, so they are exact under any concurrency. Properties
// (v) and (vi) are statements about the sequential splitting mechanics
// (the paper: "Goel et al. proved the following for sequential
// splitting[; it] is straightforward to verify that their proof extends to
// one-try and two-try splitting"); the concurrent proof then deploys them
// at carefully chosen instants rather than at every step — under
// concurrency a node's recorded parent level may already reflect a newer
// parent than the grandparent the changing process read, so (v)/(vi) as
// per-step assertions simply do not apply there. The tracker therefore
// checks (v) and (vi) in single-process executions (premises verified
// against its exactly-tracked forest) and (i)–(iv) everywhere.
//
// A Tracker consumes the same parent-change stream as the Lemma 3.1
// checker (successful CASes observed on the APRAM simulator). Experiment
// E17 runs it across variants and schedulers.
package potential

import (
	"fmt"

	"repro/internal/ackermann"
)

// Mode selects how much the tracker checks.
type Mode int

const (
	// Concurrent checks the timing-robust properties (i)–(iv).
	Concurrent Mode = iota + 1
	// Sequential additionally checks (v) and (vi); valid for
	// single-process runs.
	Sequential
)

// Tracker validates the Section 5 potential properties along one execution.
// It is not safe for concurrent use; feed it from a single observer.
type Tracker struct {
	mode   Mode
	d      float64
	ranks  []int
	parent []uint32
	level  []int
	count  []int64
	alphaN int

	changes    int64
	violations []string
}

// New returns a tracker for elements whose random order is ids (ids[x] =
// x's position), with density parameter d (the analysis sets d = m/(np))
// and the given mode. All elements start as singleton roots.
func New(ids []uint32, d float64, mode Mode) *Tracker {
	n := len(ids)
	t := &Tracker{
		mode:   mode,
		d:      d,
		ranks:  make([]int, n),
		parent: make([]uint32, n),
		level:  make([]int, n),
		count:  make([]int64, n),
		alphaN: ackermann.Alpha(int64(n), d),
	}
	for x := 0; x < n; x++ {
		t.ranks[x] = ackermann.Rank(ids[x], n)
		t.parent[x] = uint32(x)
		// A root has parent rank equal to its own rank: level 0, count 0.
	}
	return t
}

// Changes returns the number of parent changes validated.
func (t *Tracker) Changes() int64 { return t.changes }

// Level returns x's current level.
func (t *Tracker) Level(x uint32) int { return t.level[x] }

// Count returns x's current count.
func (t *Tracker) Count(x uint32) int64 { return t.count[x] }

// sameRankOnPath counts proper ancestors of x on its current path sharing
// x's rank.
func (t *Tracker) sameRankOnPath(x uint32) int {
	r := t.ranks[x]
	count := 0
	for u := x; t.parent[u] != u; {
		u = t.parent[u]
		if t.ranks[u] == r {
			count++
		}
	}
	return count
}

// pathHasAtOrAbove reports whether anc lies on x's current path strictly
// above x's parent (i.e., at the grandparent or higher).
func (t *Tracker) pathHasAtOrAbove(x, anc uint32) bool {
	u := t.parent[x]
	for t.parent[u] != u {
		u = t.parent[u]
		if u == anc {
			return true
		}
	}
	return false
}

// Potential returns the Goel et al. node potential (unscaled by the
// paper's 2p factor): the same-rank-ancestor count on the current path
// plus max{0, (α(x.r, d)+1)·(x.r+2) + d + 1 − x.c}.
func (t *Tracker) Potential(x uint32) float64 {
	r := int64(t.ranks[x])
	base := float64(ackermann.Alpha(r, t.d)+1)*float64(r+2) + t.d + 1 - float64(t.count[x])
	if base < 0 {
		base = 0
	}
	return float64(t.sameRankOnPath(x)) + base
}

// OnChange records that x's parent changed to newParent (a link if x was a
// root, a compaction otherwise) and validates the applicable properties.
// Call it for every successful parent CAS, in execution order.
func (t *Tracker) OnChange(x, newParent uint32) {
	t.changes++
	oldParent := t.parent[x]
	oldLevel := t.level[x]
	oldCount := t.count[x]
	oldParentLevel := t.level[oldParent]
	isLink := oldParent == x
	premiseVI := t.mode == Sequential && !isLink && t.pathHasAtOrAbove(x, newParent)
	var oldPot float64
	if t.mode == Sequential && !isLink {
		oldPot = t.Potential(x)
	}

	r := int64(t.ranks[x])
	pr := int64(t.ranks[newParent])
	if pr < r {
		t.addf("change %d: node %d (rank %d) under lower-ranked parent %d (rank %d)",
			t.changes, x, r, newParent, pr)
		return
	}
	newLevel := ackermann.Level(r, pr, t.d)
	newCount := ackermann.Count(r, pr, t.d)
	t.parent[x] = newParent
	t.level[x] = newLevel
	t.count[x] = newCount

	// (i) level bounds.
	if newLevel < 0 || newLevel > t.alphaN+1 {
		t.addf("change %d: node %d level %d outside [0, α+1=%d]", t.changes, x, newLevel, t.alphaN+1)
	}
	// (iv) level 0 ⇔ equal ranks.
	if (newLevel == 0) != (r == pr) {
		t.addf("change %d: node %d level %d with ranks %d/%d violates (iv)", t.changes, x, newLevel, r, pr)
	}
	if isLink {
		// A link takes a root (level 0, count 0) to its first real parent;
		// counts start at 0, so (ii) holds trivially and (v)/(vi) do not
		// apply.
		return
	}
	// (ii) count non-decreasing.
	if newCount < oldCount {
		t.addf("change %d: node %d count decreased %d → %d", t.changes, x, oldCount, newCount)
	}
	// (iii) level increase matched by count increase.
	if newLevel > oldLevel && newCount-oldCount < int64(newLevel-oldLevel) {
		t.addf("change %d: node %d level +%d but count +%d violates (iii)",
			t.changes, x, newLevel-oldLevel, newCount-oldCount)
	}
	// (v): sequential only — a level-0 node's parent change drops potential.
	if t.mode == Sequential && oldLevel == 0 {
		if newPot := t.Potential(x); !(newPot < oldPot) {
			t.addf("change %d: level-0 node %d potential %f → %f did not decrease",
				t.changes, x, oldPot, newPot)
		}
	}
	// (vi): only when the new parent verifiably sat at or above the old
	// parent's parent on x's tracked path.
	if premiseVI {
		if oldLevel >= 1 && oldLevel <= oldParentLevel && newCount-oldCount < 1 {
			t.addf("change %d: node %d (a=%d ≤ parent a=%d) count did not increase, violates (vi)",
				t.changes, x, oldLevel, oldParentLevel)
		}
		if oldLevel < oldParentLevel && newLevel < oldParentLevel {
			t.addf("change %d: node %d level %d → %d below old parent level %d violates (vi)",
				t.changes, x, oldLevel, newLevel, oldParentLevel)
		}
	}
}

func (t *Tracker) addf(format string, args ...any) {
	if len(t.violations) < 16 {
		t.violations = append(t.violations, fmt.Sprintf(format, args...))
	}
}

// Err returns nil if every checked property held, or an error describing
// the first violations.
func (t *Tracker) Err() error {
	if len(t.violations) == 0 {
		return nil
	}
	return fmt.Errorf("potential: %d property violations, first: %s", len(t.violations), t.violations[0])
}
