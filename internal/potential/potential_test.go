package potential

import (
	"strings"
	"testing"

	"repro/internal/ackermann"
	"repro/internal/apram"
	"repro/internal/core"
	"repro/internal/randutil"
	"repro/internal/sched"
	"repro/internal/simdsu"
	"repro/internal/workload"
)

// runTracked executes a workload on the simulator with a Tracker wired to
// every successful parent CAS and returns it.
func runTracked(t *testing.T, n, m, procs int, find core.Find, mode Mode, schedFor func() apram.Scheduler) *Tracker {
	t.Helper()
	cfg := core.Config{Find: find, Seed: 7}
	s := simdsu.New(n, cfg)
	ids := make([]uint32, n)
	for x := uint32(0); int(x) < n; x++ {
		ids[x] = s.ID(x)
	}
	d := float64(m) / (float64(n) * float64(procs))
	tracker := New(ids, d, mode)

	machine := apram.NewMachine(s.Words(), schedFor(), 50_000_000)
	s.Init(machine.Mem())
	machine.SetObserver(func(st apram.Step) {
		if st.Kind == apram.OpCAS && st.OK && st.Before != st.After {
			tracker.OnChange(uint32(st.Addr), uint32(st.After))
		}
	})
	for _, ops := range workload.SplitRoundRobin(workload.Mixed(n, m, 0.5, 3), procs) {
		ops := ops
		machine.AddProgram(func(p *apram.P) {
			for _, op := range ops {
				switch op.Kind {
				case workload.OpUnite:
					s.Unite(p, op.X, op.Y)
				case workload.OpSameSet:
					s.SameSet(p, op.X, op.Y)
				}
			}
		})
	}
	machine.Run()
	return tracker
}

// TestSequentialPropertiesAllVariants checks (i)–(vi) on single-process
// executions of every splitting-family find.
func TestSequentialPropertiesAllVariants(t *testing.T) {
	for _, find := range []core.Find{core.FindOneTry, core.FindTwoTry, core.FindHalving, core.FindCompress} {
		find := find
		t.Run(find.String(), func(t *testing.T) {
			t.Parallel()
			tracker := runTracked(t, 256, 2048, 1, find, Sequential,
				func() apram.Scheduler { return sched.NewRoundRobin() })
			if err := tracker.Err(); err != nil {
				t.Fatal(err)
			}
			if tracker.Changes() == 0 {
				t.Fatal("no parent changes observed")
			}
		})
	}
}

// TestConcurrentPropertiesHold checks the timing-robust properties under
// concurrency with fair and adversarial schedulers.
func TestConcurrentPropertiesHold(t *testing.T) {
	for name, mk := range map[string]func() apram.Scheduler{
		"random":   func() apram.Scheduler { return sched.NewRandom(5) },
		"lockstep": func() apram.Scheduler { return sched.NewLockstep() },
		"stall":    func() apram.Scheduler { return sched.NewStall(sched.NewRandom(6), 0) },
	} {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for _, find := range []core.Find{core.FindOneTry, core.FindTwoTry} {
				tracker := runTracked(t, 128, 1024, 6, find, Concurrent, mk)
				if err := tracker.Err(); err != nil {
					t.Fatalf("%v: %v", find, err)
				}
				if tracker.Changes() == 0 {
					t.Fatalf("%v: no changes observed", find)
				}
			}
		})
	}
}

func TestInitialState(t *testing.T) {
	ids := []uint32{3, 0, 2, 1}
	tr := New(ids, 1.0, Sequential)
	for x := uint32(0); x < 4; x++ {
		if tr.Level(x) != 0 {
			t.Errorf("fresh node %d level %d", x, tr.Level(x))
		}
		if tr.Count(x) != 0 {
			t.Errorf("fresh node %d count %d", x, tr.Count(x))
		}
		if got := tr.Potential(x); got <= 0 {
			t.Errorf("fresh node %d potential %v not positive", x, got)
		}
	}
}

func TestDetectsRankInversion(t *testing.T) {
	// Order the ids so element 0 has the TOP rank, then try to hang it
	// under a rank-0 element.
	ids := []uint32{7, 0, 1, 2, 3, 4, 5, 6}
	tr := New(ids, 1.0, Concurrent)
	tr.OnChange(0, 1)
	if err := tr.Err(); err == nil || !strings.Contains(err.Error(), "lower-ranked") {
		t.Fatalf("rank inversion not flagged: %v", err)
	}
}

func TestDetectsCountDecrease(t *testing.T) {
	// n = 8 ranks by id: id 7 → 3, ids 5,6 → 2, ids 1..4 → 1, id 0 → 0.
	ids := []uint32{0, 1, 5, 7, 2, 3, 4, 6}
	tr := New(ids, 1.0, Concurrent)
	var low, mid, high uint32 // elements of rank 0, 1, 3
	for x := uint32(0); x < 8; x++ {
		switch ids[x] {
		case 0:
			low = x
		case 1:
			mid = x
		case 7:
			high = x
		}
	}
	r := int64(ackermann.Rank(ids[low], 8))
	if r != 0 {
		t.Fatalf("setup wrong: low rank %d", r)
	}
	// Move low under the top-ranked node, then "back down" to a mid node:
	// count must decrease, which the tracker flags as a (ii) violation.
	tr.OnChange(low, high)
	if err := tr.Err(); err != nil {
		t.Fatalf("legal first change flagged: %v", err)
	}
	if tr.Count(low) <= 0 {
		t.Fatalf("count after first change = %d, want positive", tr.Count(low))
	}
	tr.OnChange(low, mid)
	if err := tr.Err(); err == nil {
		t.Fatal("count decrease not flagged")
	}
}

// TestPotentialBudgetCoversWork reproduces the budget argument of Theorem
// 5.1 numerically on sequential two-try splitting: total work ≤ initial
// potential + (α+1) per find, within the constant factors the proof grants.
// This ties the measured Stats to the potential machinery end to end.
func TestPotentialBudgetCoversWork(t *testing.T) {
	const n, m = 512, 4096
	ids := randutil.NewXoshiro256(9).Perm(n)
	d := float64(m) / float64(n)
	tr := New(ids, d, Sequential)
	initial := 0.0
	for x := uint32(0); x < n; x++ {
		initial += tr.Potential(x)
	}
	if initial <= 0 {
		t.Fatal("zero initial potential")
	}
	// The paper's budget: O(n·(d+1)) expected initial node potential.
	if budget := 4 * float64(n) * (d + 1) * float64(ackermann.Alpha(int64(n), d)+2); initial > budget {
		t.Fatalf("initial potential %f exceeds the analysis budget %f", initial, budget)
	}
}
