package linearize

import (
	"testing"

	"repro/internal/randutil"
	"repro/internal/seqdsu"
	"repro/internal/trace"
	"repro/internal/workload"
)

// bruteForce decides linearizability by trying every permutation of the
// history — exponential, usable only for tiny histories, and therefore an
// independent oracle for the memoized Wing–Gong search.
func bruteForce(n int, h trace.History) bool {
	sorted := append(trace.History(nil), h...)
	sorted.Sort()
	m := len(sorted)
	perm := make([]int, m)
	used := make([]bool, m)
	var try func(depth int, spec *seqdsu.Spec) bool
	try = func(depth int, spec *seqdsu.Spec) bool {
		if depth == m {
			return true
		}
		for i := 0; i < m; i++ {
			if used[i] {
				continue
			}
			// Real-time order: every predecessor must already be placed.
			ok := true
			for j := 0; j < m; j++ {
				if j != i && !used[j] && sorted.Precedes(j, i) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			e := sorted[i]
			next := spec
			var got bool
			switch e.Kind {
			case workload.OpUnite:
				next = spec.Clone()
				got = next.Unite(e.X, e.Y)
			case workload.OpSameSet:
				got = spec.SameSet(e.X, e.Y)
			}
			if got != e.Result {
				continue
			}
			used[i] = true
			perm[depth] = i
			if try(depth+1, next) {
				return true
			}
			used[i] = false
		}
		return false
	}
	return try(0, seqdsu.NewSpec(n))
}

// randomHistory builds a small random history that may or may not be
// linearizable: random ops, random results, random overlapping intervals.
func randomHistory(rng *randutil.Xoshiro256, n, procs, opsPerProc int) trace.History {
	var h trace.History
	for p := 0; p < procs; p++ {
		t := int64(rng.Intn(4))
		for k := 0; k < opsPerProc; k++ {
			kind := workload.OpSameSet
			if rng.Intn(2) == 0 {
				kind = workload.OpUnite
			}
			inv := t
			resp := inv + 1 + int64(rng.Intn(6))
			h = append(h, trace.Event{
				Proc: p, Kind: kind,
				X: uint32(rng.Intn(n)), Y: uint32(rng.Intn(n)),
				Result: rng.Intn(2) == 0,
				Inv:    inv, Resp: resp,
			})
			t = resp + 1 + int64(rng.Intn(3))
		}
	}
	return h
}

// validateWitness independently verifies a returned witness: it is a
// permutation of the history, re-executes correctly against the spec, and
// respects real-time precedence.
func validateWitness(t *testing.T, n int, h trace.History, witness []trace.Event) {
	t.Helper()
	if len(witness) != len(h) {
		t.Fatalf("witness length %d != history length %d", len(witness), len(h))
	}
	seen := make(map[trace.Event]int)
	for _, e := range h {
		seen[e]++
	}
	for _, e := range witness {
		seen[e]--
		if seen[e] < 0 {
			t.Fatalf("witness contains event %v not in history (or too often)", e)
		}
	}
	spec := seqdsu.NewSpec(n)
	for i, e := range witness {
		var got bool
		switch e.Kind {
		case workload.OpUnite:
			got = spec.Unite(e.X, e.Y)
		case workload.OpSameSet:
			got = spec.SameSet(e.X, e.Y)
		}
		if got != e.Result {
			t.Fatalf("witness step %d (%v): spec returned %v", i, e, got)
		}
		for j := 0; j < i; j++ {
			if witness[i].Resp < witness[j].Inv {
				t.Fatalf("witness violates real time: %v before %v", witness[j], witness[i])
			}
		}
	}
}

// TestWitnessProperties checks every accepted random history's witness with
// an independent validator.
func TestWitnessProperties(t *testing.T) {
	rng := randutil.NewXoshiro256(123)
	validated := 0
	for trial := 0; trial < 1500 && validated < 200; trial++ {
		n := 3 + rng.Intn(3)
		h := randomHistory(rng, n, 2+rng.Intn(2), 1+rng.Intn(2))
		witness, err := Check(n, h)
		if err != nil {
			continue
		}
		validateWitness(t, n, h, witness)
		validated++
	}
	if validated < 50 {
		t.Fatalf("only %d witnesses validated; sweep too weak", validated)
	}
}

// TestCheckerAgreesWithBruteForce cross-validates the memoized checker
// against exhaustive permutation search on thousands of random histories —
// including non-linearizable ones (random results are often inconsistent).
func TestCheckerAgreesWithBruteForce(t *testing.T) {
	rng := randutil.NewXoshiro256(99)
	accepted, rejected := 0, 0
	for trial := 0; trial < 3000; trial++ {
		n := 3 + rng.Intn(3)
		h := randomHistory(rng, n, 2+rng.Intn(2), 1+rng.Intn(2))
		want := bruteForce(n, h)
		_, err := Check(n, h)
		got := err == nil
		if got != want {
			t.Fatalf("trial %d: checker=%v bruteforce=%v history=%v", trial, got, want, h)
		}
		if got {
			accepted++
		} else {
			rejected++
		}
	}
	// The sweep must exercise both outcomes to mean anything.
	if accepted == 0 || rejected == 0 {
		t.Fatalf("degenerate sweep: %d accepted, %d rejected", accepted, rejected)
	}
}
