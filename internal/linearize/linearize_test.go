package linearize

import (
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

func unite(proc int, x, y uint32, result bool, inv, resp int64) trace.Event {
	return trace.Event{Proc: proc, Kind: workload.OpUnite, X: x, Y: y, Result: result, Inv: inv, Resp: resp}
}

func sameset(proc int, x, y uint32, result bool, inv, resp int64) trace.Event {
	return trace.Event{Proc: proc, Kind: workload.OpSameSet, X: x, Y: y, Result: result, Inv: inv, Resp: resp}
}

func TestEmptyAndSequentialHistories(t *testing.T) {
	if _, err := Check(4, nil); err != nil {
		t.Fatalf("empty history: %v", err)
	}
	h := trace.History{
		unite(0, 0, 1, true, 0, 1),
		sameset(0, 0, 1, true, 2, 3),
		unite(0, 0, 1, false, 4, 5),
		sameset(0, 2, 3, false, 6, 7),
	}
	w, err := Check(4, h)
	if err != nil {
		t.Fatalf("sequential history rejected: %v", err)
	}
	if len(w) != 4 {
		t.Fatalf("witness length %d", len(w))
	}
}

func TestSequentialWrongResultRejected(t *testing.T) {
	h := trace.History{
		unite(0, 0, 1, true, 0, 1),
		sameset(0, 0, 1, false, 2, 3), // wrong: they are together
	}
	if _, err := Check(4, h); err == nil {
		t.Fatal("wrong sequential result accepted")
	}
}

func TestConcurrentReorderingAccepted(t *testing.T) {
	// Overlapping Unite(0,1) on p0 and SameSet(0,1)=true on p1: legal iff
	// the SameSet linearizes after the Unite, which overlap permits.
	h := trace.History{
		unite(0, 0, 1, true, 0, 10),
		sameset(1, 0, 1, true, 5, 12),
	}
	if _, err := Check(2, h); err != nil {
		t.Fatalf("legal overlap rejected: %v", err)
	}
}

func TestRealTimeOrderEnforced(t *testing.T) {
	// SameSet(0,1)=true completes strictly before the only Unite(0,1)
	// begins: impossible.
	h := trace.History{
		sameset(1, 0, 1, true, 0, 1),
		unite(0, 0, 1, true, 5, 6),
	}
	if _, err := Check(2, h); err == nil {
		t.Fatal("future-reading SameSet accepted")
	}
}

func TestDoubleLinkRejected(t *testing.T) {
	// Two Unites of the same fresh pair cannot both report performing the
	// link, in any order.
	h := trace.History{
		unite(0, 0, 1, true, 0, 10),
		unite(1, 0, 1, true, 0, 10),
	}
	if _, err := Check(2, h); err == nil {
		t.Fatal("double link accepted")
	}
}

func TestTransitiveMergeAccepted(t *testing.T) {
	// Three processes: 0∪1, 2∪3 concurrently, then 1∪2, then queries.
	h := trace.History{
		unite(0, 0, 1, true, 0, 5),
		unite(1, 2, 3, true, 1, 6),
		unite(2, 1, 2, true, 7, 9),
		sameset(0, 0, 3, true, 10, 11),
		sameset(1, 0, 2, true, 10, 12),
	}
	if _, err := Check(4, h); err != nil {
		t.Fatalf("legal transitive history rejected: %v", err)
	}
}

func TestConcurrentUniteOneWinner(t *testing.T) {
	// Concurrent Unites of the same pair: exactly one may report the link.
	h := trace.History{
		unite(0, 0, 1, true, 0, 10),
		unite(1, 0, 1, false, 0, 10),
	}
	if _, err := Check(2, h); err != nil {
		t.Fatalf("one-winner history rejected: %v", err)
	}
}

func TestFalseSameSetDuringOverlapAccepted(t *testing.T) {
	// SameSet overlapping the Unite may legally return false (linearized
	// before it).
	h := trace.History{
		unite(0, 0, 1, true, 0, 10),
		sameset(1, 0, 1, false, 5, 12),
	}
	if _, err := Check(2, h); err != nil {
		t.Fatalf("legal pre-linearized SameSet rejected: %v", err)
	}
}

func TestSeparationAfterMergeRejected(t *testing.T) {
	// Once united (operation completed), a later SameSet cannot see them
	// apart: sets never split.
	h := trace.History{
		unite(0, 0, 1, true, 0, 1),
		sameset(1, 0, 1, false, 2, 3),
		sameset(1, 0, 1, true, 4, 5),
	}
	if _, err := Check(2, h); err == nil {
		t.Fatal("set fission accepted")
	}
}

func TestWitnessIsConsistent(t *testing.T) {
	h := trace.History{
		unite(0, 0, 1, true, 0, 5),
		sameset(1, 0, 1, true, 3, 8),
		unite(1, 2, 3, true, 9, 10),
	}
	w, err := Check(4, h)
	if err != nil {
		t.Fatal(err)
	}
	// The witness contains exactly the history's events.
	if len(w) != len(h) {
		t.Fatalf("witness length %d", len(w))
	}
	// SameSet=true must come after Unite(0,1) in the witness.
	pos := map[string]int{}
	for i, e := range w {
		pos[e.String()] = i
	}
	if pos[h[1].String()] < pos[h[0].String()] {
		t.Fatalf("witness orders SameSet before the Unite it needs: %v", w)
	}
}

func TestOversizedHistoryRejected(t *testing.T) {
	h := make(trace.History, MaxOps+1)
	for i := range h {
		h[i] = sameset(0, 0, 0, true, int64(2*i), int64(2*i+1))
	}
	if _, err := Check(2, h); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized history: %v", err)
	}
}

func TestInvalidHistoryRejected(t *testing.T) {
	// Overlapping operations on the same process are malformed.
	h := trace.History{
		unite(0, 0, 1, true, 0, 10),
		unite(0, 2, 3, true, 5, 7),
	}
	if _, err := Check(4, h); err == nil {
		t.Fatal("overlapping same-process ops accepted")
	}
}

func TestSelfSameSet(t *testing.T) {
	h := trace.History{sameset(0, 3, 3, true, 0, 1)}
	if _, err := Check(4, h); err != nil {
		t.Fatalf("self SameSet=true rejected: %v", err)
	}
	h = trace.History{sameset(0, 3, 3, false, 0, 1)}
	if _, err := Check(4, h); err == nil {
		t.Fatal("self SameSet=false accepted")
	}
}

// TestDeepInterleavingStress: a dense overlapping history that is
// linearizable only via a specific interleaving; exercises memoization.
func TestDeepInterleavingStress(t *testing.T) {
	// All ops overlap everything (same [0, 100] window).
	h := trace.History{
		unite(0, 0, 1, true, 0, 100),
		unite(1, 1, 2, true, 0, 100),
		unite(2, 2, 3, true, 0, 100),
		unite(3, 3, 4, true, 0, 100),
		sameset(4, 0, 4, true, 0, 100),
		sameset(5, 0, 2, true, 0, 100),
	}
	if _, err := Check(8, h); err != nil {
		t.Fatalf("dense history rejected: %v", err)
	}
	// A Unite(0,4) claiming NO link is satisfiable (linearized after the
	// chain closed); claiming a link would be a fifth link over five
	// elements, impossible.
	h = append(h, unite(6, 0, 4, false, 0, 100))
	if _, err := Check(8, h); err != nil {
		t.Fatalf("still-satisfiable history rejected: %v", err)
	}
	h[len(h)-1].Result = true
	if _, err := Check(8, h); err == nil {
		t.Fatal("fifth link over five elements accepted")
	}
	// But if every Unite in a complete 5-cycle claims a link, one is a lie:
	// 5 links over 5 elements would leave 0 sets.
	bad := trace.History{
		unite(0, 0, 1, true, 0, 100),
		unite(1, 1, 2, true, 0, 100),
		unite(2, 2, 3, true, 0, 100),
		unite(3, 3, 4, true, 0, 100),
		unite(4, 4, 0, true, 0, 100),
	}
	if _, err := Check(5, bad); err == nil {
		t.Fatal("5-cycle of claimed links over 5 elements accepted")
	}
}
