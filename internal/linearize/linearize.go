// Package linearize checks concurrent set-union histories for
// linearizability (Herlihy & Wing): is there a total order of the completed
// operations, consistent with real-time precedence, whose sequential
// execution against the specification returns every operation's observed
// result?
//
// The search is the Wing–Gong tree search specialised to set union: states
// are partitions, canonically fingerprinted, and (linearized-set, partition)
// pairs are memoized, which prunes the exponential tree to something that
// handles the small dense histories produced by the simulator (tens of
// operations) in microseconds to milliseconds.
package linearize

import (
	"fmt"

	"repro/internal/seqdsu"
	"repro/internal/trace"
	"repro/internal/workload"
)

// MaxOps is the largest history Check accepts (bitmask-bounded).
const MaxOps = 63

// Check reports whether h over elements 0..n−1 is linearizable. On success
// it returns a witness: the events of h in a valid linearization order. On
// failure it returns a descriptive error.
func Check(n int, h trace.History) ([]trace.Event, error) {
	if len(h) > MaxOps {
		return nil, fmt.Errorf("linearize: history of %d ops exceeds limit %d", len(h), MaxOps)
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	sorted := append(trace.History(nil), h...)
	sorted.Sort()
	m := len(sorted)
	// pred[i] = bitmask of operations that really-precede i.
	pred := make([]uint64, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i != j && sorted.Precedes(j, i) {
				pred[i] |= 1 << j
			}
		}
	}
	type memoKey struct {
		mask uint64
		fp   uint64
	}
	visited := make(map[memoKey]bool)
	order := make([]int, 0, m)
	full := uint64(1)<<m - 1

	var dfs func(mask uint64, spec *seqdsu.Spec) bool
	dfs = func(mask uint64, spec *seqdsu.Spec) bool {
		if mask == full {
			return true
		}
		key := memoKey{mask, spec.Fingerprint()}
		if visited[key] {
			return false
		}
		visited[key] = true
		for i := 0; i < m; i++ {
			bit := uint64(1) << i
			if mask&bit != 0 || pred[i]&^mask != 0 {
				continue // already linearized, or a predecessor is pending
			}
			e := sorted[i]
			next := spec
			var got bool
			switch e.Kind {
			case workload.OpUnite:
				// Unite mutates: clone first so siblings see clean state.
				next = spec.Clone()
				got = next.Unite(e.X, e.Y)
			case workload.OpSameSet:
				got = spec.SameSet(e.X, e.Y)
			default:
				panic(fmt.Sprintf("linearize: unknown op kind %d", e.Kind))
			}
			if got != e.Result {
				continue
			}
			order = append(order, i)
			if dfs(mask|bit, next) {
				return true
			}
			order = order[:len(order)-1]
		}
		return false
	}

	if !dfs(0, seqdsu.NewSpec(n)) {
		return nil, fmt.Errorf("linearize: history of %d ops is not linearizable: %v", m, sorted)
	}
	witness := make([]trace.Event, m)
	for k, idx := range order {
		witness[k] = sorted[idx]
	}
	return witness, nil
}
