package apram

import "testing"

func TestStepLimitCrashStopsProcess(t *testing.T) {
	m := NewMachine(4, fixedSched{}, 0)
	reached := 0
	victim := m.AddProgram(func(p *P) {
		for i := 0; i < 10; i++ {
			p.Write(0, uint64(i)+1)
			reached++
		}
	})
	m.SetStepLimit(victim, 3)
	m.Run()
	if reached != 3 {
		t.Fatalf("victim completed %d writes, want 3", reached)
	}
	if m.Mem()[0] != 3 {
		t.Fatalf("mem[0] = %d, want 3", m.Mem()[0])
	}
	if m.Steps()[victim] != 3 {
		t.Fatalf("victim charged %d steps, want 3", m.Steps()[victim])
	}
}

func TestStepLimitZeroCrashesImmediately(t *testing.T) {
	m := NewMachine(1, fixedSched{}, 0)
	entered := false
	victim := m.AddProgram(func(p *P) {
		entered = true
		p.Read(0)
		t.Error("read returned after crash point")
	})
	m.SetStepLimit(victim, 0)
	m.Run()
	if !entered {
		t.Fatal("program never ran")
	}
}

func TestCrashDoesNotDisturbOthers(t *testing.T) {
	m := NewMachine(2, &alternating{}, 0)
	victim := m.AddProgram(func(p *P) {
		for i := 0; i < 100; i++ {
			p.Write(0, 1)
		}
	})
	m.AddProgram(func(p *P) {
		for i := 0; i < 50; i++ {
			v := p.Read(1)
			p.Write(1, v+1)
		}
	})
	m.SetStepLimit(victim, 5)
	m.Run()
	if m.Mem()[1] != 50 {
		t.Fatalf("survivor result %d, want 50", m.Mem()[1])
	}
}

func TestCrashRunsProgramDefers(t *testing.T) {
	m := NewMachine(1, fixedSched{}, 0)
	deferRan := false
	var stepsAtCrash int64
	victim := m.AddProgram(func(p *P) {
		defer func() {
			deferRan = true
			stepsAtCrash = p.StepsTaken()
		}()
		for i := 0; i < 10; i++ {
			p.Read(0)
		}
	})
	m.SetStepLimit(victim, 4)
	m.Run()
	if !deferRan {
		t.Fatal("deferred function skipped during crash-stop")
	}
	if stepsAtCrash != 4 {
		t.Fatalf("StepsTaken at crash = %d, want 4", stepsAtCrash)
	}
}

func TestRecoveredCrashStopContinuesLocally(t *testing.T) {
	// A program may recover CrashStop and finish local (non-shared) work;
	// further shared-memory steps crash again.
	m := NewMachine(1, fixedSched{}, 0)
	phase := 0
	victim := m.AddProgram(func(p *P) {
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(CrashStop); !ok {
						panic(r)
					}
					phase = 1
				}
			}()
			p.Read(0)
			p.Read(0)
		}()
		phase = 2 // purely local continuation is allowed
	})
	m.SetStepLimit(victim, 1)
	m.Run()
	if phase != 2 {
		t.Fatalf("phase = %d, want 2", phase)
	}
}

func TestSetStepLimitAfterRunPanics(t *testing.T) {
	m := NewMachine(1, fixedSched{}, 0)
	m.AddProgram(func(p *P) { p.Read(0) })
	m.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.SetStepLimit(0, 1)
}
