package apram

import (
	"strings"
	"testing"
)

// fixedSched always picks index 0 (lowest ready id): deterministic priority.
type fixedSched struct{}

func (fixedSched) Next(ready []int, _ int64) int { return 0 }

// pickLast always picks the highest ready id.
type pickLast struct{}

func (pickLast) Next(ready []int, _ int64) int { return len(ready) - 1 }

func TestSingleProcessReadWrite(t *testing.T) {
	m := NewMachine(4, fixedSched{}, 0)
	var got uint64
	m.AddProgram(func(p *P) {
		p.Write(2, 77)
		got = p.Read(2)
	})
	total := m.Run()
	if got != 77 {
		t.Fatalf("read back %d, want 77", got)
	}
	if total != 2 {
		t.Fatalf("total steps %d, want 2", total)
	}
	if m.Mem()[2] != 77 {
		t.Fatalf("mem[2] = %d", m.Mem()[2])
	}
	if m.Steps()[0] != 2 {
		t.Fatalf("proc steps %v", m.Steps())
	}
}

func TestCASSemantics(t *testing.T) {
	m := NewMachine(1, fixedSched{}, 0)
	var first, second bool
	m.AddProgram(func(p *P) {
		first = p.CAS(0, 0, 5)  // succeeds: mem is zeroed
		second = p.CAS(0, 0, 9) // fails: value is now 5
	})
	m.Run()
	if !first || second {
		t.Fatalf("CAS results %v/%v, want true/false", first, second)
	}
	if m.Mem()[0] != 5 {
		t.Fatalf("mem[0] = %d, want 5", m.Mem()[0])
	}
}

func TestInterleavingControl(t *testing.T) {
	// Two processes increment mem[0] via read-then-write (racy on purpose).
	// Under lowest-id priority, proc 0 finishes both its steps before proc 1
	// gets one... actually priority alternates per pending step; what is
	// guaranteed deterministic is the final value for a fixed scheduler.
	run := func(s Scheduler) uint64 {
		m := NewMachine(1, s, 0)
		inc := func(p *P) {
			v := p.Read(0)
			p.Write(0, v+1)
		}
		m.AddProgram(inc)
		m.AddProgram(inc)
		m.Run()
		return m.Mem()[0]
	}
	a := run(fixedSched{})
	b := run(fixedSched{})
	if a != b {
		t.Fatalf("same scheduler, different outcomes: %d vs %d", a, b)
	}
	// An alternating scheduler interleaves read/read/write/write, losing an
	// update: the classic race, observable on demand.
	alt := &alternating{}
	if lost := run(alt); lost != 1 {
		t.Fatalf("alternating schedule produced %d, want lost update (1)", lost)
	}
}

type alternating struct{ turn int }

func (a *alternating) Next(ready []int, _ int64) int {
	a.turn++
	return (a.turn - 1) % len(ready)
}

func TestObserverSeesEveryStep(t *testing.T) {
	m := NewMachine(2, fixedSched{}, 0)
	m.AddProgram(func(p *P) {
		p.Write(0, 1)
		p.CAS(1, 0, 2)
		p.Read(1)
	})
	var steps []Step
	m.SetObserver(func(s Step) { steps = append(steps, s) })
	m.Run()
	if len(steps) != 3 {
		t.Fatalf("observed %d steps, want 3", len(steps))
	}
	if steps[0].Kind != OpWrite || steps[0].After != 1 {
		t.Errorf("step 0 = %+v", steps[0])
	}
	if steps[1].Kind != OpCAS || !steps[1].OK || steps[1].Before != 0 || steps[1].After != 2 {
		t.Errorf("step 1 = %+v", steps[1])
	}
	if steps[2].Kind != OpRead || steps[2].Before != 2 {
		t.Errorf("step 2 = %+v", steps[2])
	}
	for i, s := range steps {
		if s.Index != int64(i) || s.Proc != 0 {
			t.Errorf("step %d has Index=%d Proc=%d", i, s.Index, s.Proc)
		}
	}
}

func TestManyProcessesAllComplete(t *testing.T) {
	const procs, incs = 16, 50
	m := NewMachine(procs, pickLast{}, 0)
	for i := 0; i < procs; i++ {
		i := i
		m.AddProgram(func(p *P) {
			for k := 0; k < incs; k++ {
				v := p.Read(i)
				p.Write(i, v+1)
			}
		})
	}
	total := m.Run()
	if total != procs*incs*2 {
		t.Fatalf("total steps %d, want %d", total, procs*incs*2)
	}
	for i := 0; i < procs; i++ {
		if m.Mem()[i] != incs {
			t.Fatalf("mem[%d] = %d, want %d", i, m.Mem()[i], incs)
		}
		if m.Steps()[i] != incs*2 {
			t.Fatalf("steps[%d] = %d", i, m.Steps()[i])
		}
	}
}

func TestCASContentionExactlyOneWinner(t *testing.T) {
	const procs = 8
	m := NewMachine(2, &alternating{}, 0)
	wins := make([]bool, procs)
	for i := 0; i < procs; i++ {
		i := i
		m.AddProgram(func(p *P) {
			wins[i] = p.CAS(0, 0, uint64(i)+1)
		})
	}
	m.Run()
	winners := 0
	for _, w := range wins {
		if w {
			winners++
		}
	}
	if winners != 1 {
		t.Fatalf("%d CAS winners, want exactly 1", winners)
	}
}

func TestProcessIDs(t *testing.T) {
	m := NewMachine(4, fixedSched{}, 0)
	ids := make([]int, 3)
	for i := 0; i < 3; i++ {
		i := i
		pid := m.AddProgram(func(p *P) {
			ids[i] = p.ID()
			p.Read(0)
		})
		if pid != i {
			t.Fatalf("AddProgram returned %d, want %d", pid, i)
		}
	}
	m.Run()
	for i, id := range ids {
		if id != i {
			t.Errorf("process %d saw ID %d", i, id)
		}
	}
}

func TestStepBoundPanics(t *testing.T) {
	m := NewMachine(1, fixedSched{}, 5)
	m.AddProgram(func(p *P) {
		for i := 0; i < 100; i++ {
			p.Read(0)
		}
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic on exceeding step bound")
		}
		if !strings.Contains(r.(string), "step bound") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	m.Run()
}

func TestProgramPanicPropagates(t *testing.T) {
	m := NewMachine(1, fixedSched{}, 0)
	m.AddProgram(func(p *P) {
		p.Read(0)
		panic("boom")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("program panic not propagated")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	m.Run()
}

func TestAddressOutOfRangePanics(t *testing.T) {
	m := NewMachine(1, fixedSched{}, 0)
	m.AddProgram(func(p *P) { p.Read(9) })
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range address")
		}
	}()
	m.Run()
}

func TestRunTwicePanics(t *testing.T) {
	m := NewMachine(1, fixedSched{}, 0)
	m.AddProgram(func(p *P) { p.Read(0) })
	m.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on second Run")
		}
	}()
	m.Run()
}

func TestZeroProcesses(t *testing.T) {
	m := NewMachine(1, fixedSched{}, 0)
	if total := m.Run(); total != 0 {
		t.Fatalf("empty machine took %d steps", total)
	}
}

func TestOpKindString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" || OpCAS.String() != "cas" {
		t.Error("op names wrong")
	}
	if OpKind(9).String() == "" {
		t.Error("unknown kind renders empty")
	}
}
