// Package apram simulates the asynchronous parallel random-access machine
// (APRAM) of Cole & Zajicek / Gibbons, the computation model of Jayanti &
// Tarjan and of Anderson & Woll: p asynchronous processes, each with local
// memory, sharing a word-addressed common memory that supports atomic Read,
// Write, and CAS. There is no synchrony assumption — any process may run
// arbitrarily slowly relative to any other.
//
// The simulator serializes shared-memory steps: a pluggable Scheduler picks
// which pending process performs its next shared-memory operation, one at a
// time. Consequences, each load-bearing for the experiments:
//
//   - every interleaving of shared-memory steps is schedulable, including
//     the exact lockstep schedules used by the paper's lower-bound
//     constructions (Theorem 5.4) and the halving-simulates-splitting
//     example of Section 3;
//   - runs are deterministic given (programs, scheduler), so failures
//     replay exactly;
//   - total work equals granted steps, the precise cost metric of the
//     paper's theorems — native timing noise (GC, Go scheduler) is absent;
//   - an Observer sees every step and can check invariants such as
//     Lemma 3.1 on every single CAS.
//
// Local computation between shared-memory steps is free, matching the
// model's accounting in which work is counted in shared-memory steps.
package apram

import (
	"fmt"
	"sync/atomic"
)

// OpKind is the kind of one shared-memory step.
type OpKind uint8

const (
	// OpRead loads a word.
	OpRead OpKind = iota + 1
	// OpWrite stores a word unconditionally.
	OpWrite
	// OpCAS compares-and-swaps a word.
	OpCAS
)

// String names the op for traces.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpCAS:
		return "cas"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Step describes one granted shared-memory step, as seen by an Observer.
type Step struct {
	Index  int64  // global step number, from 0
	Proc   int    // process that performed it
	Kind   OpKind //
	Addr   int    // word address
	Before uint64 // memory value before the step
	After  uint64 // memory value after the step
	OK     bool   // CAS success (true for reads/writes)
}

// Scheduler picks which pending process steps next. ready is the sorted
// slice of process ids that have a pending shared-memory operation; Next
// returns an index into ready. Schedulers may keep state; they are used by
// one Machine at a time.
type Scheduler interface {
	Next(ready []int, step int64) int
}

// Observer is called after every granted step; nil disables observation.
type Observer func(Step)

// Program is the code of one process: it receives its process handle and
// runs to completion, performing shared-memory operations through it.
type Program func(*P)

// CrashStop is the panic value delivered inside a process whose step limit
// (SetStepLimit) is exhausted: the crash-stop failure model. A program that
// wants to survive its own crash point recovers it; anything else
// propagates as a normal program panic.
type CrashStop struct{}

// Machine is one simulation instance. Create with NewMachine, add programs,
// then call Run exactly once.
type Machine struct {
	mem       []uint64
	programs  []Program
	sched     Scheduler
	obs       Observer
	maxSteps  int64
	stepLimit map[int]int64 // per-process crash-stop points

	steps     []int64 // granted steps per process
	totalStep int64
	events    atomic.Int64 // logical event clock for Tick
	ran       bool
}

// NewMachine returns a machine with words of zeroed shared memory and the
// given scheduler. maxSteps bounds total steps as a livelock guard (≤ 0
// means no bound); exceeding it panics, which tests convert to failures.
func NewMachine(words int, sched Scheduler, maxSteps int64) *Machine {
	if words < 0 {
		panic("apram: negative memory size")
	}
	if sched == nil {
		panic("apram: nil scheduler")
	}
	return &Machine{
		mem:      make([]uint64, words),
		sched:    sched,
		maxSteps: maxSteps,
	}
}

// Mem returns the shared memory for pre-run initialization and post-run
// inspection. It must not be touched while Run is executing.
func (m *Machine) Mem() []uint64 { return m.mem }

// SetObserver installs an observer called on every granted step.
func (m *Machine) SetObserver(obs Observer) { m.obs = obs }

// AddProgram registers the next process's program and returns its id.
func (m *Machine) AddProgram(p Program) int {
	if m.ran {
		panic("apram: AddProgram after Run")
	}
	m.programs = append(m.programs, p)
	return len(m.programs) - 1
}

// SetStepLimit makes process proc crash-stop at exactly the given number of
// granted shared-memory steps: its next attempted step panics with
// CrashStop inside the process instead of executing. Call before Run.
// Fault-injection tests use this to place a crash at every possible point
// of an execution.
func (m *Machine) SetStepLimit(proc int, limit int64) {
	if m.ran {
		panic("apram: SetStepLimit after Run")
	}
	if m.stepLimit == nil {
		m.stepLimit = make(map[int]int64)
	}
	m.stepLimit[proc] = limit
}

// Steps returns per-process granted step counts (valid after Run).
func (m *Machine) Steps() []int64 { return m.steps }

// TotalSteps returns the total granted steps (valid after Run).
func (m *Machine) TotalSteps() int64 { return m.totalStep }

// event is what a process goroutine sends the machine: either its next
// pending request or completion.
type event struct {
	req  *request
	done bool
}

type request struct {
	kind     OpKind
	addr     int
	val      uint64 // write value / CAS new
	old      uint64 // CAS expected
	resp     chan response
	panicked any // forwarded panic from the program goroutine
}

type response struct {
	val     uint64
	ok      bool
	crashed bool
}

// P is a process handle passed to its Program. Its methods perform
// shared-memory steps and blockingly wait for the scheduler's grant. A P is
// owned by its program goroutine.
type P struct {
	id     int
	m      *Machine
	events chan event
	resp   chan response
}

// ID returns the process id (0-based, in AddProgram order).
func (p *P) ID() int { return p.id }

// Now returns the number of shared-memory steps granted so far, a global
// logical clock. It is safe to call from the program goroutine between its
// own shared-memory operations: either no step has been granted yet (the
// machine collects every process's first request before granting), or the
// machine is quiescent waiting for this process's next request, and the
// channel handshake orders its last counter write before this read.
func (p *P) Now() int64 { return p.m.totalStep }

// StepsTaken returns the number of shared-memory steps this process has
// been granted so far. Safe to call from the program goroutine between its
// own shared-memory operations, under the same argument as Now. Used to
// measure per-operation step counts (the quantity Lemma 3.3 bounds).
func (p *P) StepsTaken() int64 { return p.m.steps[p.id] }

// Tick atomically advances and returns the machine's logical event clock.
// Tick values are globally unique and their order is consistent with real
// time, so operation histories use Tick for invocation/response timestamps:
// op A really-precedes op B exactly when A's response tick is smaller than
// B's invocation tick. (The step counter of Now cannot serve: an operation
// that needs no shared-memory step would get a zero-length interval that
// ties with its neighbours.)
func (p *P) Tick() int64 { return p.m.events.Add(1) }

// Read performs an atomic load of addr.
func (p *P) Read(addr int) uint64 {
	return p.issue(request{kind: OpRead, addr: addr})
}

// Write performs an atomic store to addr.
func (p *P) Write(addr int, val uint64) {
	p.issue(request{kind: OpWrite, addr: addr, val: val})
}

// CAS atomically replaces mem[addr] with new if it equals old, reporting
// whether it did.
func (p *P) CAS(addr int, old, new uint64) bool {
	r := request{kind: OpCAS, addr: addr, old: old, val: new}
	r.resp = p.resp
	p.events <- event{req: &r}
	got := <-p.resp
	if got.crashed {
		panic(CrashStop{})
	}
	return got.ok
}

func (p *P) issue(r request) uint64 {
	r.resp = p.resp
	p.events <- event{req: &r}
	got := <-p.resp
	if got.crashed {
		panic(CrashStop{})
	}
	return got.val
}

// Run executes all registered programs to completion under the scheduler
// and returns the total number of granted steps. It panics (after shutting
// down cleanly) if a program panics, a request is out of range, or the step
// bound is exceeded.
func (m *Machine) Run() int64 {
	if m.ran {
		panic("apram: Run called twice")
	}
	m.ran = true
	n := len(m.programs)
	m.steps = make([]int64, n)
	procs := make([]*P, n)
	for i := range procs {
		procs[i] = &P{
			id: i,
			m:  m,
			// Buffer 1 so a finishing goroutine can post done and exit
			// without the machine actively receiving at that instant.
			events: make(chan event, 1),
			resp:   make(chan response, 1),
		}
	}
	for i, prog := range m.programs {
		go func(i int, prog Program) {
			p := procs[i]
			defer func() {
				if r := recover(); r != nil {
					if _, isCrash := r.(CrashStop); isCrash {
						// Crash-stop is a modelled failure, not a bug: the
						// process dies silently, mid-operation state stays.
						p.events <- event{done: true}
						return
					}
					p.events <- event{req: &request{panicked: r}}
					return
				}
				p.events <- event{done: true}
			}()
			prog(p)
		}(i, prog)
	}

	pending := make([]*request, n)
	live := 0
	await := func(i int) {
		ev := <-procs[i].events
		switch {
		case ev.done:
			pending[i] = nil
			live--
		case ev.req.panicked != nil:
			panic(fmt.Sprintf("apram: process %d panicked: %v", i, ev.req.panicked))
		default:
			pending[i] = ev.req
		}
	}
	live = n
	for i := 0; i < n; i++ {
		await(i)
	}

	ready := make([]int, 0, n)
	for live > 0 {
		ready = ready[:0]
		for i := 0; i < n; i++ {
			if pending[i] != nil {
				ready = append(ready, i)
			}
		}
		if len(ready) == 0 {
			break // all remaining processes finished
		}
		choice := m.sched.Next(ready, m.totalStep)
		if choice < 0 || choice >= len(ready) {
			panic(fmt.Sprintf("apram: scheduler chose %d of %d ready", choice, len(ready)))
		}
		proc := ready[choice]
		r := pending[proc]
		if lim, limited := m.stepLimit[proc]; limited && m.steps[proc] >= lim {
			// Crash-stop point reached: the step is refused and the process
			// sees a CrashStop panic instead of a result.
			r.resp <- response{crashed: true}
			await(proc)
			continue
		}
		if r.addr < 0 || r.addr >= len(m.mem) {
			panic(fmt.Sprintf("apram: process %d address %d out of range", proc, r.addr))
		}
		before := m.mem[r.addr]
		var resp response
		switch r.kind {
		case OpRead:
			resp = response{val: before, ok: true}
		case OpWrite:
			m.mem[r.addr] = r.val
			resp = response{val: before, ok: true}
		case OpCAS:
			if before == r.old {
				m.mem[r.addr] = r.val
				resp = response{ok: true}
			}
		default:
			panic(fmt.Sprintf("apram: unknown op kind %d", r.kind))
		}
		if m.obs != nil {
			m.obs(Step{
				Index:  m.totalStep,
				Proc:   proc,
				Kind:   r.kind,
				Addr:   r.addr,
				Before: before,
				After:  m.mem[r.addr],
				OK:     resp.ok,
			})
		}
		m.steps[proc]++
		m.totalStep++
		if m.maxSteps > 0 && m.totalStep > m.maxSteps {
			panic(fmt.Sprintf("apram: exceeded step bound %d (livelock?)", m.maxSteps))
		}
		r.resp <- resp
		await(proc)
	}
	return m.totalStep
}
