package shard

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/workload"
)

// TestChaseRootBound pins the hop bound that turned Snapshot's termination
// caveat into a guarantee: a well-formed snapshot resolves to its root, and
// a degenerate (cyclic) pointer array — which a consistent core snapshot
// can never be, but the guard must not assume — returns ok=false instead of
// spinning.
func TestChaseRootBound(t *testing.T) {
	// Chain 0→1→2→3 (root 3), plus the self-root 4.
	parent := []uint32{1, 2, 3, 3, 4}
	if r, ok := chaseRoot(parent, 0); !ok || r != 3 {
		t.Fatalf("chaseRoot(chain, 0) = %d, %v; want 3, true", r, ok)
	}
	if r, ok := chaseRoot(parent, 4); !ok || r != 4 {
		t.Fatalf("chaseRoot(chain, 4) = %d, %v; want 4, true", r, ok)
	}
	// Cycles of each flavor: the bound must trip, not hang.
	for _, tc := range []struct {
		name   string
		parent []uint32
		start  uint32
	}{
		{"two-cycle", []uint32{1, 0}, 0},
		{"three-cycle", []uint32{1, 2, 0, 3}, 1},
		{"tail-into-cycle", []uint32{1, 2, 1}, 0},
	} {
		if r, ok := chaseRoot(tc.parent, tc.start); ok {
			t.Fatalf("chaseRoot(%s, %d) = %d, true; want the bound to trip", tc.name, tc.start, r)
		}
	}
}

// TestSnapshotTerminatesMidMutation hammers Snapshot and CanonicalLabels
// concurrently with mutation batches: every call must return (the hop
// bound guarantees termination even over mixed-epoch snapshots), and once
// the mutations quiesce the flattened view must agree exactly with the
// canonical labelling's partition.
func TestSnapshotTerminatesMidMutation(t *testing.T) {
	const n, shards = 4096, 4
	d := New(n, shards, core.Config{Seed: 99})
	ops := workload.RandomUnions(n, 4*n, 7)
	edges := make([]exec.Edge, len(ops))
	for i, op := range ops {
		edges[i] = exec.Edge{X: op.X, Y: op.Y}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for lo := 0; lo < len(edges); lo += 512 {
			hi := lo + 512
			if hi > len(edges) {
				hi = len(edges)
			}
			d.UniteAll(edges[lo:hi], exec.Config{Workers: 2})
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if got := d.Snapshot(); len(got) != n {
				t.Errorf("Snapshot len = %d, want %d", len(got), n)
				return
			}
			d.CanonicalLabels()
		}
	}()
	wg.Wait()

	// Quiescent: snapshot entries are roots, and the flattened forest and
	// the labelling name the same partition.
	snap := d.Snapshot()
	labels := d.CanonicalLabels()
	for x := 0; x < n; x++ {
		if snap[snap[x]] != snap[x] {
			t.Fatalf("snapshot entry %d → %d is not a root", x, snap[x])
		}
		for y := x + 1; y < x+3 && y < n; y++ {
			if (snap[x] == snap[y]) != (labels[x] == labels[y]) {
				t.Fatalf("snapshot and labels disagree on (%d,%d)", x, y)
			}
		}
	}
}
