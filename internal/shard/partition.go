package shard

// Partition maps the element universe 0..n−1 onto contiguous equal-width
// blocks, one per shard (the last block may be narrower when the width does
// not divide n). Contiguous blocks — rather than modulo striping — keep
// each shard's working set a dense prefix-addressable array slice, so an
// intra-shard batch touches one shard-sized cache footprint instead of
// striding the whole universe, and they make the shard/local/global maps
// pure arithmetic.
type Partition struct {
	n      int
	block  uint32 // elements per shard; last shard may hold fewer
	shards int
}

// NewPartition builds the block partition of n elements into at most the
// requested number of shards. It panics on a negative n or a shard count
// below one; a count exceeding n is clamped so no shard is empty. The
// resolved count can land below the request even when shards ≤ n, because
// ceil-width blocks may cover n in fewer pieces (e.g. n=5, shards=4 gives
// width-2 blocks and 3 shards).
func NewPartition(n, shards int) Partition {
	if n < 0 {
		panic("shard: negative element count")
	}
	if shards < 1 {
		panic("shard: need at least one shard")
	}
	if shards > n {
		shards = n
	}
	if n == 0 {
		// Zero elements: no shards, and a nonzero block keeps the map
		// arithmetic division-safe (nothing is ever mapped).
		return Partition{n: 0, block: 1, shards: 0}
	}
	block := (n + shards - 1) / shards
	return Partition{n: n, block: uint32(block), shards: (n + block - 1) / block}
}

// N returns the number of elements.
func (p Partition) N() int { return p.n }

// Shards returns the resolved shard count.
func (p Partition) Shards() int { return p.shards }

// Block returns the block width (elements per shard before the tail).
func (p Partition) Block() int { return int(p.block) }

// ShardOf returns the shard owning element x.
func (p Partition) ShardOf(x uint32) int { return int(x / p.block) }

// Local returns x's index within its shard.
func (p Partition) Local(x uint32) uint32 { return x % p.block }

// Global maps a shard-local index back to the element it names.
func (p Partition) Global(shard int, local uint32) uint32 {
	return uint32(shard)*p.block + local
}

// Size returns the number of elements in the given shard.
func (p Partition) Size(shard int) int {
	lo := shard * int(p.block)
	hi := lo + int(p.block)
	if hi > p.n {
		hi = p.n
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}
