// Package shard partitions the element universe across independent
// per-shard core.DSU instances, with a bridge forest reconciling the
// cross-shard unions — the two-level architecture that lets batches scale
// past one parent array's cache footprint (Fedorov et al., SPAA 2023, make
// the bulk-interface case; the ROADMAP names sharding as the step toward
// NUMA-scale traffic).
//
// # Structure
//
// Elements 0..n−1 are split into contiguous blocks, one core.DSU per block
// (the "locals"). A second core.DSU over the full universe — the "bridge" —
// records only cross-shard connectivity: the only elements that ever leave
// singleton state in it are the shard-local representatives that spill
// edges (and the closure pass below) unite. Global connectivity is the
// transitive closure of the S+1 relations; the invariant maintained at
// every quiescent point collapses that closure to two finds:
//
//	rep(x) = bridge.Find(global(localRoot(x)))
//	x ~ y  ⇔  rep(x) == rep(y)
//
// # Closure invariant and re-anchoring
//
// The invariant: for every shard-local set C that has bridge participants,
// all of C's participants lie in a single bridge class, and that class
// contains C's current local root. A batch's intra-shard unions can break
// this — merging two local sets dethrones one root while the bridge still
// hangs off it — so the structure keeps, per shard, an anchor set: local
// elements whose sets may carry bridge links. After any local merge, a
// re-anchor pass unites each anchor's global id with its current local
// root's global id in the bridge (sound: they are locally, hence globally,
// equivalent) and compacts the anchor set to the surviving roots. Spill
// edges then unite current local roots, which the restored invariant makes
// exactly the global merge.
//
// # Concurrency contract
//
// Mutations (Unite, UniteAll) serialize on an internal mutex; each UniteAll
// is internally parallel (per-shard engine runs fan out, and the spill list
// is itself driven through the engine against the bridge). Mutations are
// therefore linearizable in lock order, and point Unite's return value is
// exact. Queries (Find, SameSet, SameSetAll) never take the lock: they ride
// the wait-free cores, may run concurrently with anything, and are exact at
// quiescence; concurrent with mutations, a true SameSet is definitely true
// (the witnessed relations only grow) while a false is only advisory. A
// concurrent false can miss not just the in-flight unions but — during the
// window between a local merge and its re-anchor pass, while a dethroned
// root's bridge class awaits re-linking — transiently fail to observe a
// cross-shard union committed by an earlier call; mutation-quiescence
// restores exactness. DESIGN.md's "Sharding & reconciliation" section
// states the same contract from the caller's side.
package shard

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/randutil"
)

// DSU is the sharded two-level disjoint-set structure. The zero value is
// not usable; call New. It implements exec.Backend, so the dsu layer's
// batch, stream, and filter paths drive it through the same seam as the
// flat engine target.
type DSU struct {
	part   Partition
	cfg    core.Config // normalized variant configuration shared by all levels
	locals []*core.DSU // one per shard, over local indices 0..Size(i)−1
	bridge *core.DSU   // over global ids; only spill representatives link

	mu sync.Mutex // serializes mutations; queries never take it
	// anchors[i] holds local indices of shard i whose sets may carry bridge
	// links; superset-safe (anchoring an unlinked element just adds a sound
	// union later). Compacted to current roots on every re-anchor pass.
	anchors []map[uint32]struct{}
}

var _ exec.Backend = (*DSU)(nil)

// New returns a sharded DSU over n elements in the requested number of
// shards (clamped as NewPartition documents). cfg selects the find variant,
// early termination, and seed shared by all levels; per-level seeds are
// derived from cfg.Seed so equal configurations build identical structures.
// Panics propagate from core.New on invalid cfg combinations or n out of
// range.
func New(n, shards int, cfg core.Config) *DSU {
	if cfg.Find == 0 {
		cfg.Find = core.FindTwoTry // normalize, matching core.New's default
	}
	part := NewPartition(n, shards)
	d := &DSU{
		part:    part,
		cfg:     cfg,
		locals:  make([]*core.DSU, part.Shards()),
		anchors: make([]map[uint32]struct{}, part.Shards()),
	}
	for i := range d.locals {
		lcfg := cfg
		lcfg.Seed = randutil.Mix64(cfg.Seed + uint64(i) + 1)
		d.locals[i] = core.New(part.Size(i), lcfg)
		d.anchors[i] = make(map[uint32]struct{})
	}
	bcfg := cfg
	bcfg.Seed = randutil.Mix64(cfg.Seed ^ 0x627269646765) // "bridge"
	d.bridge = core.New(n, bcfg)
	return d
}

// N returns the number of elements.
func (d *DSU) N() int { return d.part.N() }

// Shards returns the resolved shard count.
func (d *DSU) Shards() int { return d.part.Shards() }

// Partition exposes the element→shard map for routing-aware callers.
func (d *DSU) Partition() Partition { return d.part }

// Seed returns the structure seed, the default batch-scheduling seed
// (exec.Backend).
func (d *DSU) Seed() uint64 { return d.cfg.Seed }

// CoreConfig returns the normalized variant configuration shared by every
// level (exec.Backend).
func (d *DSU) CoreConfig() core.Config { return d.cfg }

// view is the set of per-level structures one batch (or point operation)
// resolves against: the configured locals and bridge, or find-variant
// views of them when a batch overrides the compaction strategy. Views
// share the underlying forests, so any mix of views operates on the same
// structure. view also adapts the two-level structure to the engine
// (engine.Target): in Unite mode it implements spill reconciliation —
// resolve both endpoints to shard-local roots, then unite the roots'
// global ids in the bridge — and must then only be driven under the
// mutation lock; in SameSet mode it answers through the two-level rep.
type view struct {
	d      *DSU
	locals []*core.DSU
	bridge *core.DSU
}

// view resolves the per-batch find-variant override: 0 (or the configured
// variant) costs nothing, any other variant builds shared-forest views.
func (d *DSU) view(f core.Find) view {
	v := view{d: d, locals: d.locals, bridge: d.bridge}
	if f != 0 && f != d.cfg.Find {
		v.locals = make([]*core.DSU, len(d.locals))
		for i := range d.locals {
			v.locals[i] = d.locals[i].WithFind(f)
		}
		v.bridge = d.bridge.WithFind(f)
	}
	return v
}

// find reports the variant this view's levels run with.
func (v view) find() core.Find { return v.bridge.Config().Find }

// Find returns x's global representative: the bridge root of its shard-local
// root. Exact at quiescence; roots change as sets merge, so SameSet is the
// stable comparison.
func (d *DSU) Find(x uint32) uint32 { return d.view(0).rep(x, nil) }

// rep resolves the two-level representative of x.
func (v view) rep(x uint32, st *core.Stats) uint32 {
	d := v.d
	i := d.part.ShardOf(x)
	var lr uint32
	if st != nil {
		lr = v.locals[i].FindCounted(d.part.Local(x), st)
	} else {
		lr = v.locals[i].Find(d.part.Local(x))
	}
	g := d.part.Global(i, lr)
	if st != nil {
		return v.bridge.FindCounted(g, st)
	}
	return v.bridge.Find(g)
}

// SameSet reports whether x and y are in the same global set. True answers
// are definite even concurrently with mutations; false answers are exact
// only at mutation-quiescence — concurrent with a mutation they may
// transiently miss unions, including ones committed by earlier calls whose
// representatives are mid-re-anchor (see the package contract).
func (d *DSU) SameSet(x, y uint32) bool { return d.view(0).sameSet(x, y, nil) }

// SameSetCounted is SameSet with work accounting into st.
func (d *DSU) SameSetCounted(x, y uint32, st *core.Stats) bool { return d.view(0).sameSet(x, y, st) }

func (v view) sameSet(x, y uint32, st *core.Stats) bool {
	if st != nil {
		defer func() { st.Ops++ }()
	}
	if x == y {
		return true
	}
	d := v.d
	i, j := d.part.ShardOf(x), d.part.ShardOf(y)
	var lx, ly uint32
	if st != nil {
		lx = v.locals[i].FindCounted(d.part.Local(x), st)
		ly = v.locals[j].FindCounted(d.part.Local(y), st)
	} else {
		lx = v.locals[i].Find(d.part.Local(x))
		ly = v.locals[j].Find(d.part.Local(y))
	}
	if i == j && lx == ly {
		return true
	}
	gx, gy := d.part.Global(i, lx), d.part.Global(j, ly)
	if st != nil {
		return v.bridge.FindCounted(gx, st) == v.bridge.FindCounted(gy, st)
	}
	return v.bridge.Find(gx) == v.bridge.Find(gy)
}

// Unite merges the global sets containing x and y, reporting whether this
// call performed the merge. Exact: mutations serialize, so the pre-check is
// against a mutation-quiescent structure.
func (d *DSU) Unite(x, y uint32) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.view(0).sameSet(x, y, nil) {
		return false
	}
	i, j := d.part.ShardOf(x), d.part.ShardOf(y)
	if i == j {
		// Globally disjoint implies locally disjoint, so this merges.
		d.locals[i].Unite(d.part.Local(x), d.part.Local(y))
		d.reanchor(i, nil)
		return true
	}
	lx := d.locals[i].Find(d.part.Local(x))
	ly := d.locals[j].Find(d.part.Local(y))
	d.bridge.Unite(d.part.Global(i, lx), d.part.Global(j, ly))
	d.anchors[i][lx] = struct{}{}
	d.anchors[j][ly] = struct{}{}
	return true
}

// reanchor restores the closure invariant for shard i after local merges
// may have dethroned roots: each anchor's bridge class is re-linked to the
// anchor's current local root, and the anchor set is compacted to the
// surviving roots. Returns the number of bridge unions issued. Safe to run
// concurrently for distinct shards — it touches only shard i's local state
// and the wait-free bridge.
func (d *DSU) reanchor(i int, st *core.Stats) int {
	old := d.anchors[i]
	if len(old) == 0 {
		return 0
	}
	issued := 0
	next := make(map[uint32]struct{}, len(old))
	for b := range old {
		var r uint32
		if st != nil {
			r = d.locals[i].FindCounted(b, st)
		} else {
			r = d.locals[i].Find(b)
		}
		if r != b {
			// b's set merged under a new root; carry its bridge class over.
			if st != nil {
				d.bridge.UniteCounted(d.part.Global(i, b), d.part.Global(i, r), st)
			} else {
				d.bridge.Unite(d.part.Global(i, b), d.part.Global(i, r))
			}
			issued++
		}
		next[r] = struct{}{}
	}
	d.anchors[i] = next
	return issued
}

// UniteAll merges across every edge of the batch: intra-shard edges route
// to their shard's own engine run (all shards driven in parallel), while
// cross-shard edges defer into a spill list resolved by the reconciliation
// pass — local roots united through the bridge, after re-anchoring restores
// the closure invariant for every shard whose local phase merged. The final
// partition equals a flat DSU's partition for the same batch, for any shard
// count, worker count, and schedule.
//
// The returned exec.Result fills the sharded per-phase fields — Intra,
// Spill, SelfLoops (edges dropped during routing), Reanchors, PerShard (in
// shard order, zero values for shards with no intra edges), Bridge (nil
// without cross-shard edges), ReanchorStats — and the same filter
// accounting the flat path reports. Its Merged tallies structural merges
// across both levels: it is ≥ the count a flat DSU would report for the
// same batch (an intra-shard edge joining two locally-separate sets
// already connected through the bridge merges locally without dropping the
// global component count), while the partition itself is always exactly
// the flat partition.
func (d *DSU) UniteAll(edges []exec.Edge, cfg exec.Config) exec.Result {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.part.Shards()
	vw := d.view(cfg.Find)
	res := exec.Result{PerShard: make([]exec.Result, s), Find: vw.find()}
	if len(edges) == 0 || s == 0 {
		return res
	}
	start := time.Now()

	// Filter passes run inside the timed region so Elapsed stays
	// end-to-end, exactly as the flat engine reports it. Both flags are
	// cleared afterwards: the per-shard and bridge runs must not re-filter.
	if cfg.Prefilter {
		fstart := time.Now()
		kept := engine.Prefilter(edges)
		res.Filtered += len(edges) - len(kept)
		res.FilterElapsed += time.Since(fstart)
		edges = kept
		cfg.Prefilter = false
	}
	if cfg.ConnectedFilter {
		// The screen answers through the two-level rep under the mutation
		// lock, so here it is exact, not merely sound: every dropped edge
		// is globally connected at this linearization point.
		fstart := time.Now()
		kept, sres := engine.ScreenConnected(vw, edges, cfg)
		res.Filtered += len(edges) - len(kept)
		res.FilterElapsed += time.Since(fstart)
		res.FilterStats.Add(sres.Stats())
		edges = kept
		cfg.ConnectedFilter = false
	}
	res.FilterStats.Filtered = int64(res.Filtered)

	// Classify: route each edge to its shard (in local coordinates) or to
	// the spill list (in global coordinates). Self-loops are dropped here —
	// cheaper than letting even the engine's skip path touch them twice.
	intra := make([][]engine.Edge, s)
	var spill []engine.Edge
	for _, e := range edges {
		if e.X == e.Y {
			res.SelfLoops++
			continue
		}
		i, j := d.part.ShardOf(e.X), d.part.ShardOf(e.Y)
		if i == j {
			intra[i] = append(intra[i], engine.Edge{X: d.part.Local(e.X), Y: d.part.Local(e.Y)})
		} else {
			spill = append(spill, e)
		}
	}
	active := 0
	for i := range intra {
		if len(intra[i]) > 0 {
			res.Intra += len(intra[i])
			active++
		}
	}
	res.Spill = len(spill)

	// Local phase: every shard with intra edges runs its own engine batch,
	// concurrently with the others, splitting the worker budget. Each
	// shard's goroutine follows its run with that shard's re-anchor pass —
	// it only needs its own local state, and bridge unions are wait-free,
	// so no barrier is needed between shards.
	if active > 0 {
		workers := cfg.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		per := workers / active
		if per < 1 {
			per = 1
		}
		reanchors := make([]int, s)
		reanchorStats := make([]core.Stats, s)
		var wg sync.WaitGroup
		for i := range intra {
			if len(intra[i]) == 0 {
				continue
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				lcfg := cfg
				lcfg.Workers = per
				lcfg.Seed = randutil.Mix64(cfg.Seed + uint64(i)*0x9e3779b97f4a7c15 + 1)
				res.PerShard[i] = engine.UniteAll(vw.locals[i], intra[i], lcfg)
				if res.PerShard[i].Merged > 0 {
					// Roots may have changed; restore the closure invariant.
					reanchors[i] = d.reanchor(i, &reanchorStats[i])
				}
			}(i)
		}
		wg.Wait()
		for i := range reanchors {
			res.Reanchors += reanchors[i]
			res.ReanchorStats.Add(reanchorStats[i])
		}
	}

	// Reconciliation: drive the spill list through the engine against the
	// bridge target — each edge resolves its endpoints to their shard-local
	// roots and unites the roots' global ids in the bridge. With closure
	// restored above, a bridge merge here is exactly a global merge.
	if len(spill) > 0 {
		bcfg := cfg
		bcfg.Seed = randutil.Mix64(cfg.Seed ^ 0xb51d6e5b111d6e)
		bres := engine.UniteAll(vw, spill, bcfg)
		res.Bridge = &bres
		// Anchor the spill representatives: local finds are cheap now that
		// the reconciliation run compacted the paths, and anchoring roots
		// (rather than raw endpoints) lets hot components share one anchor.
		for _, e := range spill {
			i, j := d.part.ShardOf(e.X), d.part.ShardOf(e.Y)
			d.anchors[i][d.locals[i].Find(d.part.Local(e.X))] = struct{}{}
			d.anchors[j][d.locals[j].Find(d.part.Local(e.Y))] = struct{}{}
		}
	}

	for i := range res.PerShard {
		res.Merged += res.PerShard[i].Merged
	}
	if res.Bridge != nil {
		res.Merged += res.Bridge.Merged
	}
	res.Elapsed = time.Since(start)
	return res
}

// SameSetAll answers pairs[i] into element i of the returned slice through
// the two-level structure, fanned out over the engine's worker pool,
// honoring the Config's find-variant override. Each answer carries the
// query contract of SameSet. It returns the same unified result type as
// UniteAll (the asymmetry the exec layer removed).
func (d *DSU) SameSetAll(pairs []exec.Edge, cfg exec.Config) ([]bool, exec.Result) {
	vw := d.view(cfg.Find)
	out, res := engine.SameSetAll(vw, pairs, cfg)
	res.Find = vw.find()
	return out, res
}

// ScreenConnected drops pairs whose endpoints are already connected,
// answering through the two-level rep without the mutation lock
// (exec.Backend): sound under concurrency — a true answer is definite —
// and exact at mutation-quiescence. UniteAll's own ConnectedFilter pass
// runs under the lock instead, where the screen is exact.
func (d *DSU) ScreenConnected(edges []exec.Edge, cfg exec.Config) ([]exec.Edge, exec.Result) {
	vw := d.view(cfg.Find)
	kept, res := engine.ScreenConnected(vw, edges, cfg)
	res.Find = vw.find()
	return kept, res
}

// UniteCounted implements the engine target's Unite mode on a view (spill
// reconciliation; mutation-lock holders only — see the view docs).
func (v view) UniteCounted(x, y uint32, st *core.Stats) bool {
	d := v.d
	i, j := d.part.ShardOf(x), d.part.ShardOf(y)
	lx := v.locals[i].FindCounted(d.part.Local(x), st)
	ly := v.locals[j].FindCounted(d.part.Local(y), st)
	return v.bridge.UniteCounted(d.part.Global(i, lx), d.part.Global(j, ly), st)
}

// SameSetCounted implements the engine target's SameSet mode on a view.
func (v view) SameSetCounted(x, y uint32, st *core.Stats) bool {
	return v.sameSet(x, y, st)
}

// chaseRoot follows parent pointers from lx to a root within a snapshot
// copy, under a hard hop bound of len(parent). In any per-word-atomic
// snapshot of a core forest the chase terminates well inside the bound —
// every pointer moves strictly up the linking order, whichever moment
// each word was copied at — but the bound makes termination a structural
// guarantee rather than an argument: even a degenerate (cyclic) pointer
// array returns, with ok false, instead of spinning forever.
func chaseRoot(parent []uint32, lx uint32) (r uint32, ok bool) {
	r = lx
	for hops := 0; parent[r] != r; hops++ {
		if hops >= len(parent) {
			return 0, false
		}
		r = parent[r]
	}
	return r, true
}

// reps resolves every element's global representative — the bridge root of
// its shard-local root — in one pass per shard over a parent-array
// snapshot. Call at quiescence for an exact picture: mid-mutation, local
// roots and bridge classes are in flux and the per-root memoization mixes
// epochs, but the pass still terminates (chaseRoot's hop bound, with the
// live wait-free Find as the fallback resolver).
func (d *DSU) reps() []uint32 {
	n := d.part.N()
	rep := make([]uint32, n)
	for i := 0; i < d.part.Shards(); i++ {
		parent := d.locals[i].Snapshot()
		repOf := make(map[uint32]uint32, 16)
		for lx := range parent {
			r, ok := chaseRoot(parent, uint32(lx))
			if !ok {
				// The snapshot degenerated; resolve through the live
				// structure, whose finds are wait-free.
				r = d.locals[i].Find(uint32(lx))
			}
			br, ok := repOf[r]
			if !ok {
				br = d.bridge.Find(d.part.Global(i, r))
				repOf[r] = br
			}
			rep[d.part.Global(i, uint32(lx))] = br
		}
	}
	return rep
}

// Snapshot returns the flattened global forest: element x's entry is its
// global representative, so every tree has depth at most one. The
// two-level structure has no single parent array to copy — stitching the
// local and bridge forests into one pointer array could cycle through
// dethroned roots — so the flattened view is the honest single-array
// picture of the partition. Roots are exactly the global representatives
// (parent[x] == x), matching the flat structure's root convention.
// Exact at quiescence; mid-mutation the entries may mix epochs but the
// call always terminates (every root chase runs under chaseRoot's hard
// hop bound).
func (d *DSU) Snapshot() []uint32 { return d.reps() }

// ID returns x's position in the bridge level's random linking order,
// fixed at construction — the globally meaningful analogue of the flat
// structure's ID (each shard's local forest has its own order; the bridge
// order is the one spanning the whole universe).
func (d *DSU) ID(x uint32) uint32 { return d.bridge.ID(x) }

// CanonicalLabels returns the min-element labelling of the global
// partition. Quiescent-state use only, like the flat structure's.
func (d *DSU) CanonicalLabels() []uint32 {
	n := d.part.N()
	rep := d.reps()
	minOf := make(map[uint32]uint32, 16)
	for x := 0; x < n; x++ {
		if m, ok := minOf[rep[x]]; !ok || uint32(x) < m {
			minOf[rep[x]] = uint32(x)
		}
	}
	labels := make([]uint32, n)
	for x := range labels {
		labels[x] = minOf[rep[x]]
	}
	return labels
}

// Sets counts the current number of global sets. Quiescent-state use only.
func (d *DSU) Sets() int {
	labels := d.CanonicalLabels()
	count := 0
	for x, l := range labels {
		if uint32(x) == l {
			count++
		}
	}
	return count
}
