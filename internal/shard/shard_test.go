package shard

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/randutil"
	"repro/internal/seqdsu"
	"repro/internal/workload"
)

// refPartition replays edges through the classical sequential structure.
func refPartition(n int, edges []engine.Edge) *seqdsu.DSU {
	ref := seqdsu.New(n, seqdsu.LinkRank, seqdsu.CompactHalving, 1)
	for _, e := range edges {
		ref.Unite(e.X, e.Y)
	}
	return ref
}

func checkLabels(t *testing.T, d *DSU, ref *seqdsu.DSU) {
	t.Helper()
	want := ref.CanonicalLabels()
	got := d.CanonicalLabels()
	for x := range got {
		if got[x] != want[x] {
			t.Fatalf("label[%d] = %d, want %d", x, got[x], want[x])
		}
	}
}

// TestShardedMatchesFlatAcrossBatches is the core cross-validation: for
// several seeds × shard counts, a multi-batch schedule (each batch mixing
// intra- and cross-shard edges) must leave the sharded structure with
// exactly the flat sequential partition. Multiple batches matter — they
// exercise the re-anchor pass that carries bridge classes across local
// root changes.
func TestShardedMatchesFlatAcrossBatches(t *testing.T) {
	const n = 3000
	for _, seed := range []uint64{1, 2, 3} {
		for _, shards := range []int{1, 2, 3, 8} {
			t.Run(fmt.Sprintf("seed=%d/shards=%d", seed, shards), func(t *testing.T) {
				d := New(n, shards, core.Config{Seed: seed})
				var all []engine.Edge
				batches := [][]engine.Edge{
					engine.FromOps(workload.CommunityUnions(n, 2*n, shards, 0.9, seed+10)),
					engine.FromOps(workload.RandomUnions(n, n, seed+20)),
					engine.FromOps(workload.CommunityUnions(n, n, 16, 0.95, seed+30)),
					engine.FromOps(workload.RandomUnions(n, n/2, seed+40)),
				}
				for _, b := range batches {
					all = append(all, b...)
					d.UniteAll(b, engine.Config{Workers: 4, Grain: 32, Seed: seed})
					// Validate after every batch, not only at the end: an
					// invariant broken mid-schedule must not be masked by a
					// later batch re-merging the same sets.
					checkLabels(t, d, refPartition(n, all))
				}
			})
		}
	}
}

// TestReanchorCarriesBridgeClasses pins the exact scenario the re-anchor
// pass exists for: batch 1 links sets across shards, batch 2 merges those
// sets locally under new roots, and connectivity through the dethroned
// roots must survive. Swept over seeds so both link directions occur.
func TestReanchorCarriesBridgeClasses(t *testing.T) {
	for seed := uint64(0); seed < 16; seed++ {
		d := New(8, 4, core.Config{Seed: seed}) // blocks {0,1} {2,3} {4,5} {6,7}
		d.UniteAll([]engine.Edge{{X: 0, Y: 2}, {X: 4, Y: 6}}, engine.Config{Workers: 2, Seed: seed})
		d.UniteAll([]engine.Edge{{X: 0, Y: 1}, {X: 2, Y: 3}, {X: 4, Y: 5}}, engine.Config{Workers: 2, Seed: seed})
		for _, q := range [][2]uint32{{1, 3}, {0, 3}, {1, 2}, {5, 6}} {
			if !d.SameSet(q[0], q[1]) {
				t.Fatalf("seed %d: SameSet(%d,%d) = false after cross-then-local merges", seed, q[0], q[1])
			}
		}
		if d.SameSet(1, 5) {
			t.Fatalf("seed %d: disjoint components reported united", seed)
		}
		if got := d.Sets(); got != 3 {
			t.Fatalf("seed %d: Sets() = %d, want 3", seed, got)
		}
	}
}

// TestPointOpsInterleaveWithBatches mixes exact point Unites with batch
// runs and checks Unite's return value against the sequential oracle at
// every step.
func TestPointOpsInterleaveWithBatches(t *testing.T) {
	const n = 600
	for _, shards := range []int{1, 3, 8} {
		ref := seqdsu.New(n, seqdsu.LinkRank, seqdsu.CompactHalving, 1)
		d := New(n, shards, core.Config{Seed: uint64(shards)})
		rng := randutil.NewXoshiro256(uint64(77 + shards))
		for step := 0; step < 40; step++ {
			if step%8 == 3 {
				batch := engine.FromOps(workload.RandomUnions(n, n/4, rng.Next()))
				d.UniteAll(batch, engine.Config{Workers: 3, Grain: 8})
				for _, e := range batch {
					ref.Unite(e.X, e.Y)
				}
				continue
			}
			x, y := uint32(rng.Intn(n)), uint32(rng.Intn(n))
			want := ref.Unite(x, y)
			if got := d.Unite(x, y); got != want {
				t.Fatalf("shards=%d step %d: Unite(%d,%d) = %v, want %v", shards, step, x, y, got, want)
			}
			if !d.SameSet(x, y) {
				t.Fatalf("shards=%d step %d: SameSet(%d,%d) false after Unite", shards, step, x, y)
			}
		}
		for x := 0; x < n; x++ {
			for _, y := range []uint32{0, uint32(n / 2), uint32(n - 1)} {
				if got, want := d.SameSet(uint32(x), y), ref.SameSet(uint32(x), y); got != want {
					t.Fatalf("shards=%d: SameSet(%d,%d) = %v, want %v", shards, x, y, got, want)
				}
			}
		}
	}
}

// TestSameSetAllThroughTwoLevels validates the batched query path against
// the oracle after a mixed intra/cross build-up.
func TestSameSetAllThroughTwoLevels(t *testing.T) {
	const n = 2000
	unions := engine.FromOps(workload.CommunityUnions(n, 2*n, 8, 0.8, 5))
	queries := engine.FromOps(workload.RandomUnions(n, 4*n, 7))
	ref := refPartition(n, unions)

	d := New(n, 4, core.Config{Seed: 9})
	d.UniteAll(unions, engine.Config{Workers: 4})
	got, res := d.SameSetAll(queries, engine.Config{Workers: 4, Grain: 64})
	if st := res.Stats(); st.Ops != int64(len(queries)) {
		t.Errorf("query ops = %d, want %d", st.Ops, len(queries))
	}
	for i, q := range queries {
		if want := ref.SameSet(q.X, q.Y); got[i] != want {
			t.Fatalf("query %d (%d,%d): got %v, want %v", i, q.X, q.Y, got[i], want)
		}
	}
}

// TestQueriesConcurrentWithMutations exercises the lock-free query path
// while batches and point ops mutate the structure: under -race this checks
// the memory discipline, and every true answer must hold in the final
// partition (the contract: witnessed connectivity never lies).
func TestQueriesConcurrentWithMutations(t *testing.T) {
	const n = 2000
	unions := engine.FromOps(workload.CommunityUnions(n, 3*n, 6, 0.7, 11))
	ref := refPartition(n, unions)

	d := New(n, 3, core.Config{Seed: 13})
	done := make(chan struct{})
	type obs struct {
		x, y uint32
		same bool
	}
	results := make(chan []obs, 2)
	for g := 0; g < 2; g++ {
		go func(g int) {
			rng := randutil.NewXoshiro256(uint64(100 + g))
			var seen []obs
			for {
				select {
				case <-done:
					results <- seen
					return
				default:
				}
				x, y := uint32(rng.Intn(n)), uint32(rng.Intn(n))
				seen = append(seen, obs{x, y, d.SameSet(x, y)})
				d.Find(x)
			}
		}(g)
	}
	const batch = 512
	for lo := 0; lo < len(unions); lo += batch {
		hi := min(lo+batch, len(unions))
		d.UniteAll(unions[lo:hi], engine.Config{Workers: 2, Grain: 16})
	}
	close(done)
	for g := 0; g < 2; g++ {
		for _, o := range <-results {
			if o.same && !ref.SameSet(o.x, o.y) {
				t.Fatalf("concurrent SameSet(%d,%d) invented connectivity", o.x, o.y)
			}
		}
	}
	checkLabels(t, d, ref)
}

// TestShardedStatsAggregation checks the batch Result accounts for every
// classified edge and sums work across all phases.
func TestShardedStatsAggregation(t *testing.T) {
	const n = 1000
	edges := engine.FromOps(workload.RandomUnions(n, 2*n, 17))
	edges = append(edges, engine.Edge{X: 5, Y: 5}, engine.Edge{X: 9, Y: 9})
	wantLoops := 0
	for _, e := range edges {
		if e.X == e.Y {
			wantLoops++ // the two injected plus any natural collisions
		}
	}
	d := New(n, 4, core.Config{Seed: 19})
	res := d.UniteAll(edges, engine.Config{Workers: 3})
	if got := res.Intra + res.Spill + res.SelfLoops; got != len(edges) {
		t.Errorf("classified %d edges (intra %d, spill %d, loops %d), want %d",
			got, res.Intra, res.Spill, res.SelfLoops, len(edges))
	}
	if res.SelfLoops != wantLoops {
		t.Errorf("SelfLoops = %d, want %d", res.SelfLoops, wantLoops)
	}
	st := res.Stats()
	if st.Ops != int64(res.Intra+res.Spill) {
		t.Errorf("aggregated ops = %d, want %d", st.Ops, res.Intra+res.Spill)
	}
	if st.Work() <= 0 {
		t.Error("aggregated batch reported no work")
	}
	if res.Merged < res.Bridge.Merged {
		t.Error("Merged must include the bridge run")
	}
}

// TestDegenerateShapes covers the boundary universes: empty, single
// element, single shard, and more shards than elements.
func TestDegenerateShapes(t *testing.T) {
	empty := New(0, 4, core.Config{})
	if empty.N() != 0 || empty.Shards() != 0 || empty.Sets() != 0 {
		t.Errorf("empty universe: N=%d Shards=%d Sets=%d", empty.N(), empty.Shards(), empty.Sets())
	}
	if res := empty.UniteAll(nil, engine.Config{}); res.Merged != 0 {
		t.Error("empty UniteAll merged")
	}

	one := New(1, 8, core.Config{})
	if one.Shards() != 1 || !one.SameSet(0, 0) || one.Unite(0, 0) {
		t.Error("singleton universe misbehaves")
	}

	tiny := New(5, 64, core.Config{Seed: 23})
	tiny.UniteAll([]engine.Edge{{X: 0, Y: 4}, {X: 1, Y: 2}}, engine.Config{Workers: 8})
	ref := refPartition(5, []engine.Edge{{X: 0, Y: 4}, {X: 1, Y: 2}})
	checkLabels(t, tiny, ref)
	if tiny.Sets() != 3 {
		t.Errorf("tiny Sets = %d, want 3", tiny.Sets())
	}
}
