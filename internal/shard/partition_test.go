package shard

import "testing"

// TestPartitionCoversUniverse checks every element maps to exactly one
// (shard, local) pair that round-trips through Global, and that shard sizes
// sum to n.
func TestPartitionCoversUniverse(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{
		{1, 1}, {5, 1}, {5, 2}, {5, 3}, {5, 4}, {5, 5},
		{8, 3}, {100, 7}, {1000, 8}, {7, 100},
	} {
		p := NewPartition(tc.n, tc.shards)
		total := 0
		for i := 0; i < p.Shards(); i++ {
			sz := p.Size(i)
			if sz <= 0 {
				t.Fatalf("n=%d shards=%d: shard %d has size %d", tc.n, tc.shards, i, sz)
			}
			total += sz
		}
		if total != tc.n {
			t.Fatalf("n=%d shards=%d: sizes sum to %d", tc.n, tc.shards, total)
		}
		for x := 0; x < tc.n; x++ {
			i := p.ShardOf(uint32(x))
			if i < 0 || i >= p.Shards() {
				t.Fatalf("n=%d shards=%d: element %d maps to shard %d of %d", tc.n, tc.shards, x, i, p.Shards())
			}
			l := p.Local(uint32(x))
			if int(l) >= p.Size(i) {
				t.Fatalf("n=%d shards=%d: element %d local index %d exceeds shard %d size %d", tc.n, tc.shards, x, l, i, p.Size(i))
			}
			if g := p.Global(i, l); g != uint32(x) {
				t.Fatalf("n=%d shards=%d: element %d round-trips to %d", tc.n, tc.shards, x, g)
			}
		}
	}
}

// TestPartitionClamps pins the boundary behaviour: more shards than
// elements clamps, zero elements yields zero shards, bad arguments panic.
func TestPartitionClamps(t *testing.T) {
	if p := NewPartition(3, 64); p.Shards() != 3 {
		t.Errorf("shards > n: resolved %d shards, want 3", p.Shards())
	}
	if p := NewPartition(0, 4); p.Shards() != 0 || p.N() != 0 {
		t.Errorf("empty universe: %d shards over %d elements", p.Shards(), p.N())
	}
	for _, fn := range []func(){
		func() { NewPartition(-1, 2) },
		func() { NewPartition(10, 0) },
		func() { NewPartition(10, -3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic on invalid partition arguments")
				}
			}()
			fn()
		}()
	}
}
