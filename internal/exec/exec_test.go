package exec_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/pipeline"
	"repro/internal/shard"
	"repro/internal/workload"
)

// TestUnifiedResultType is the field-parity guard the unified layer makes
// structural: the engine's, the sharded path's, and the pipeline's batch
// records are the one exec.Result type, so the flat and sharded filter
// accounting (Filtered / FilterElapsed / FilterStats) cannot drift apart
// again without a compile error or this test failing.
func TestUnifiedResultType(t *testing.T) {
	// engine.Result is an alias of exec.Result (compile-time assignment).
	var r exec.Result
	var _ engine.Result = r

	// Both backends flow through the one seam.
	var _ exec.Backend = engine.Flat{}
	var _ exec.Backend = (*shard.DSU)(nil)

	// The pipeline's per-batch record embeds exec.Result, so stream
	// callbacks see exactly the blocking paths' accounting.
	f, ok := reflect.TypeOf(pipeline.Result{}).FieldByName("Result")
	if !ok || !f.Anonymous || f.Type != reflect.TypeOf(r) {
		t.Fatal("pipeline.Result does not embed exec.Result")
	}

	// shard.DSU's two batch entry points return the same type — the
	// UniteAll/SameSetAll asymmetry stays dead.
	sh := reflect.TypeOf((*shard.DSU)(nil))
	um, _ := sh.MethodByName("UniteAll")
	sm, _ := sh.MethodByName("SameSetAll")
	if um.Type.Out(0) != reflect.TypeOf(r) {
		t.Errorf("Sharded UniteAll returns %v, want exec.Result", um.Type.Out(0))
	}
	if sm.Type.Out(1) != reflect.TypeOf(r) {
		t.Errorf("Sharded SameSetAll returns %v, want exec.Result", sm.Type.Out(1))
	}
}

// TestFilterAccountingParity pins the behavioral half of the parity
// satellite: the same filtered batch reports identical Filtered counts and
// live FilterElapsed / FilterStats on the flat and sharded backends, on
// first ingestion (dedup drops) and re-ingestion (the connected screen
// drops everything).
func TestFilterAccountingParity(t *testing.T) {
	const n = 2048
	edges := engine.FromOps(onlyUnites(workload.ZipfMixed(n, 4*n, 1.0, 1.3, 91)))
	cfg := exec.Config{Workers: 2, Seed: 9, Prefilter: true, ConnectedFilter: true}

	flat := engine.Flat{D: core.New(n, core.Config{Seed: 5})}
	sh := shard.New(n, 3, core.Config{Seed: 5})

	for pass := 0; pass < 2; pass++ {
		fres := flat.UniteAll(edges, cfg)
		sres := sh.UniteAll(edges, cfg)
		if fres.Filtered != sres.Filtered {
			t.Fatalf("pass %d: flat filtered %d, sharded %d (must match)", pass, fres.Filtered, sres.Filtered)
		}
		if fres.Filtered == 0 {
			t.Fatalf("pass %d: filters dropped nothing on a duplicate-heavy Zipf batch", pass)
		}
		if fres.FilterElapsed <= 0 || sres.FilterElapsed <= 0 {
			t.Errorf("pass %d: filter elapsed flat %v, sharded %v — both must be recorded",
				pass, fres.FilterElapsed, sres.FilterElapsed)
		}
		if fres.FilterStats.Filtered != sres.FilterStats.Filtered {
			t.Errorf("pass %d: FilterStats.Filtered flat %d, sharded %d",
				pass, fres.FilterStats.Filtered, sres.FilterStats.Filtered)
		}
		if fres.Elapsed < fres.FilterElapsed || sres.Elapsed < sres.FilterElapsed {
			t.Errorf("pass %d: Elapsed excludes the filter pass on one backend", pass)
		}
	}

	// Re-ingestion check happened in pass 1 implicitly; make it explicit:
	// everything is connected now, so the screen drops every edge the dedup
	// pass leaves, on both backends equally.
	fres := flat.UniteAll(edges, cfg)
	if fres.Merged != 0 {
		t.Errorf("re-ingested flat batch merged %d, want 0", fres.Merged)
	}
	if fres.Filtered != len(edges) {
		t.Errorf("re-ingested flat batch filtered %d, want %d", fres.Filtered, len(edges))
	}
	sres := sh.UniteAll(edges, cfg)
	if sres.Filtered != len(edges) {
		t.Errorf("re-ingested sharded batch filtered %d, want %d", sres.Filtered, len(edges))
	}
}

// TestScreenConnectedBackends exercises the Backend seam's standalone
// screen on both implementations: it must drop exactly the pairs the
// partition already connects (sound — every dropped edge could never
// merge), keep the rest, honor the find-variant override, and agree
// between backends on identically seeded structures.
func TestScreenConnectedBackends(t *testing.T) {
	const n = 1024
	build := engine.FromOps(workload.CommunityUnions(n, 2*n, 8, 0.9, 47))
	probe := engine.FromOps(workload.RandomUnions(n, n, 53))

	backends := map[string]exec.Backend{
		"flat":    engine.Flat{D: core.New(n, core.Config{Seed: 6})},
		"sharded": shard.New(n, 3, core.Config{Seed: 6}),
	}
	kept := map[string]int{}
	for name, b := range backends {
		b.UniteAll(build, exec.Config{Workers: 2, Seed: 8})
		for _, find := range []core.Find{0, core.FindNaive} {
			cfg := exec.Config{Workers: 2, Seed: 8, Find: find}
			survivors, res := b.ScreenConnected(probe, cfg)
			if find == core.FindNaive && res.Find != core.FindNaive {
				t.Errorf("%s: screen ran %v, want the naive override", name, res.Find)
			}
			// Quiescent ground truth: the screen must drop exactly the
			// connected pairs and keep the rest, in order.
			connected, _ := b.SameSetAll(probe, cfg)
			want := probe[:0:0]
			for i, e := range probe {
				if !connected[i] {
					want = append(want, e)
				}
			}
			if len(survivors) != len(want) {
				t.Fatalf("%s (find=%v): screen kept %d pairs, want %d", name, find, len(survivors), len(want))
			}
			for i := range want {
				if survivors[i] != want[i] {
					t.Fatalf("%s (find=%v): survivor[%d] = %v, want %v", name, find, i, survivors[i], want[i])
				}
			}
			if res.Stats().Finds == 0 {
				t.Errorf("%s: screen reported no find work", name)
			}
			kept[name] = len(survivors)
		}
		if got := len(probe) - kept[name]; got == 0 {
			t.Errorf("%s: screen dropped nothing over a built community partition", name)
		}
	}
	if kept["flat"] != kept["sharded"] {
		t.Errorf("screen kept %d pairs on flat, %d on sharded (same seed, same partition)",
			kept["flat"], kept["sharded"])
	}
}

// TestResultStatsAggregation pins exec.Result.Stats over the sharded
// per-phase shape: per-shard runs, the bridge run, re-anchor passes, and
// filter work all land in the sum exactly once.
func TestResultStatsAggregation(t *testing.T) {
	const n = 1024
	sh := shard.New(n, 4, core.Config{Seed: 13})
	edges := engine.FromOps(workload.RandomUnions(n, 4*n, 17))
	res := sh.UniteAll(edges, exec.Config{Workers: 2, Seed: 3})

	var manual core.Stats
	for i := range res.PerShard {
		manual.Add(res.PerShard[i].Stats())
	}
	if res.Bridge == nil {
		t.Fatal("uniform batch across 4 shards produced no bridge run")
	}
	manual.Add(res.Bridge.Stats())
	manual.Add(res.ReanchorStats)
	manual.Add(res.FilterStats)
	if got := res.Stats(); got != manual {
		t.Errorf("Stats() = %+v, manual phase sum %+v", got, manual)
	}
	if res.Intra+res.Spill+res.SelfLoops != len(edges) {
		t.Errorf("classification covers %d edges, batch has %d",
			res.Intra+res.Spill+res.SelfLoops, len(edges))
	}
}

// onlyUnites filters a workload op list down to its unions (mirrors the
// bench helper; query ops would make UniteAll merge counts meaningless).
func onlyUnites(ops []workload.Op) []workload.Op {
	out := ops[:0:0]
	for _, op := range ops {
		if op.Kind == workload.OpUnite {
			out = append(out, op)
		}
	}
	return out
}
