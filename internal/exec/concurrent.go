package exec

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/randutil"
)

// ConcurrentOps is the second capability of the execution seam: the
// direct point-operation surface of a backend whose mutations are safe
// from any number of goroutines with no quiescence requirement
// (internal/lockfree). Where the engine's pool drives an opaque Target
// through span claims and work stealing — machinery that earns its keep
// when one batch at a time owns the structure — a ConcurrentOps backend
// needs none of it: the direct runners below split the batch into static
// contiguous chunks and have workers apply edges straight through the
// point operations. Nothing serializes against other batches, point
// callers, or streams on the same structure; overlap is the contract,
// not a hazard.
type ConcurrentOps interface {
	// UniteDirect merges the sets containing x and y, reporting whether
	// this call performed the merge and how many times its root-link CAS
	// lost a race and retried — the contention metric Result.CASRetries
	// aggregates.
	UniteDirect(x, y uint32, st *core.Stats) (merged bool, retries int64)
	// SameSetDirect reports whether x and y are in the same set
	// (linearizable).
	SameSetDirect(x, y uint32, st *core.Stats) bool
}

// UniteAllDirect applies every edge of the batch through t's direct point
// operations: static contiguous chunks, one worker each, no claim
// protocol and no barrier against anything else running on the structure.
// The call returns when its own edges are applied (it must, to report
// Merged), but unlike the engine path that is a property of this call
// only — any number of UniteAllDirect calls may overlap on one structure,
// and the summed Merged across them is exact (each successful link counts
// exactly once, and the link count needed to reach a partition is
// schedule-independent). Filter passes are the caller's job: the runner
// sees the batch as given.
func UniteAllDirect(t ConcurrentOps, edges []Edge, cfg Config) Result {
	return runDirect(t, edges, cfg, nil)
}

// SameSetAllDirect answers pairs[i] into element i of the returned slice
// through t's direct point operations, with the same no-barrier contract
// as UniteAllDirect. Each answer is linearizable; at quiescence the whole
// slice is exact.
func SameSetAllDirect(t ConcurrentOps, pairs []Edge, cfg Config) ([]bool, Result) {
	out := make([]bool, len(pairs))
	res := runDirect(t, pairs, cfg, out)
	return out, res
}

// ScreenConnectedDirect drops edges whose endpoints are already
// connected, answering through the direct query loop and compacting the
// survivors. Sound under full concurrency — a true SameSet answer is
// definite — like the engine's screen.
func ScreenConnectedDirect(t ConcurrentOps, edges []Edge, cfg Config) ([]Edge, Result) {
	scfg := cfg
	scfg.Prefilter, scfg.ConnectedFilter = false, false
	connected, sres := SameSetAllDirect(t, edges, scfg)
	kept := make([]Edge, 0, len(edges))
	for i, e := range edges {
		if !connected[i] {
			kept = append(kept, e)
		}
	}
	return kept, sres
}

// runDirect is the shared direct loop: Unite mode when out is nil,
// SameSet mode otherwise. Workers take contiguous chunks fixed up front —
// point operations on a lock-free structure are uniform enough that the
// engine's guided self-scheduling would only add claim traffic — and each
// fills its own Stats and retry tally.
func runDirect(t ConcurrentOps, edges []Edge, cfg Config, out []bool) Result {
	p := cfg.Workers
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > len(edges) {
		p = len(edges)
	}
	res := Result{Workers: p}
	if len(edges) == 0 {
		return res
	}
	res.PerWorker = make([]core.Stats, p)
	merged := make([]int64, p)
	retries := make([]int64, p)
	chunk := (len(edges) + p - 1) / p
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < p; w++ {
		lo := min(w*chunk, len(edges))
		hi := min(lo+chunk, len(edges))
		wg.Add(1)
		go func(w int, part []Edge, out []bool) {
			defer wg.Done()
			st := &res.PerWorker[w]
			if out == nil {
				for _, e := range part {
					if e.X == e.Y {
						// A self-loop can never merge; it still counts as a
						// completed operation, as on the engine path.
						st.Ops++
						continue
					}
					m, r := t.UniteDirect(e.X, e.Y, st)
					if m {
						merged[w]++
					}
					retries[w] += r
				}
			} else {
				for i, e := range part {
					if e.X == e.Y {
						out[i] = true
						st.Ops++
						continue
					}
					out[i] = t.SameSetDirect(e.X, e.Y, st)
				}
			}
		}(w, edges[lo:hi], sliceOrNil(out, lo, hi))
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	for w := 0; w < p; w++ {
		res.Merged += merged[w]
		res.CASRetries += retries[w]
	}
	return res
}

// sliceOrNil subslices out to [lo, hi) when present, preserving the
// nil-means-Unite-mode convention.
func sliceOrNil(out []bool, lo, hi int) []bool {
	if out == nil {
		return nil
	}
	return out[lo:hi]
}

// Dedup returns the batch with self-loop edges and exact duplicates
// removed; (u, v) and (v, u) name the same edge and count as duplicates.
// The first occurrence of each edge survives in order; the input slice is
// not modified. Unions are idempotent, so UniteAll on the deduped batch
// yields the same partition and merge count as on the raw batch. This is
// the Prefilter pass, hoisted into the execution layer so every backend —
// engine-pooled or direct-concurrent — shares one implementation.
//
// The dedup set is open-addressed over a preallocated power-of-two table
// rather than a Go map: one linear probe per edge against flat memory, no
// per-entry allocation. Slot 0 doubles as the empty marker — a normalized
// key always has max(X,Y) in its high word, and max > min rules out key 0
// once self-loops are dropped.
func Dedup(edges []Edge) []Edge {
	out := make([]Edge, 0, len(edges))
	size := 1
	for size < 2*len(edges) {
		size <<= 1
	}
	table := make([]uint64, size)
	mask := uint64(size - 1)
	for _, e := range edges {
		if e.X == e.Y {
			continue
		}
		lo, hi := e.X, e.Y
		if lo > hi {
			lo, hi = hi, lo
		}
		key := uint64(hi)<<32 | uint64(lo)
		h := randutil.Mix64(key) & mask
		for {
			switch table[h] {
			case 0:
				table[h] = key
				out = append(out, e)
			case key:
				// duplicate
			default:
				h = (h + 1) & mask
				continue
			}
			break
		}
	}
	return out
}
