package exec_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/workload"
)

// qstats builds a query batch's summed counters with the given find signal.
func qstats(finds, steps, rewrites int64) core.Stats {
	return core.Stats{Finds: finds, FindSteps: steps, Rewrites: rewrites}
}

// TestEstimatorPickThresholds pins the switch points of the flatness
// estimator: depth at/below NaiveMaxDepth selects naive, between the
// bounds one-try, above OneTryMaxDepth the configured base — and an
// estimator that has observed nothing always returns the base.
func TestEstimatorPickThresholds(t *testing.T) {
	var fresh exec.Estimator
	if got := fresh.Pick(core.FindTwoTry); got != core.FindTwoTry {
		t.Errorf("Pick before any observation = %v, want the base variant", got)
	}

	cases := []struct {
		name  string
		steps int64 // FindSteps per 100 finds, two-try observed
		want  core.Find
	}{
		{"flat", 100, core.FindNaive},             // depth 1.0 ≤ NaiveMaxDepth
		{"shallow", 200, core.FindOneTry},         // depth 2.0 ≤ OneTryMaxDepth
		{"deep", 300, core.FindTwoTry},            // depth 3.0 > OneTryMaxDepth
		{"boundary-naive", 130, core.FindNaive},   // exactly NaiveMaxDepth
		{"boundary-onetry", 220, core.FindOneTry}, // exactly OneTryMaxDepth
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var e exec.Estimator
			e.ObserveQuery(core.FindTwoTry, qstats(100, tc.steps, 0))
			if got := e.Pick(core.FindTwoTry); got != tc.want {
				d, _ := e.Depth()
				t.Errorf("Pick after depth %.2f = %v, want %v", d, got, tc.want)
			}
		})
	}
}

// TestEstimatorVariantNormalization pins the per-variant depth
// normalization: naive counts the root visit as a find step, so the same
// forest reads one step higher under naive than under splitting — without
// the correction the policy would oscillate out of naive the moment it
// picked it.
func TestEstimatorVariantNormalization(t *testing.T) {
	var split, naive exec.Estimator
	split.ObserveQuery(core.FindTwoTry, qstats(100, 100, 0)) // flat under two-try
	naive.ObserveQuery(core.FindNaive, qstats(100, 200, 0))  // the same flat forest under naive
	ds, _ := split.Depth()
	dn, _ := naive.Depth()
	if ds != dn {
		t.Errorf("normalized depths differ: two-try %.2f vs naive %.2f", ds, dn)
	}
	if got := naive.Pick(core.FindTwoTry); got != core.FindNaive {
		t.Errorf("naive observation of a flat forest picks %v, want naive (stable choice)", got)
	}
}

// TestEstimatorRewritesPenalty pins the rewrite signal: a batch whose step
// counts look flat but that still lands many compaction CASes is walking
// real paths, and must not downgrade all the way.
func TestEstimatorRewritesPenalty(t *testing.T) {
	var e exec.Estimator
	e.ObserveQuery(core.FindTwoTry, qstats(100, 100, 150)) // depth 1.0 + 1.5 rewrites/find
	if got := e.Pick(core.FindTwoTry); got != core.FindTwoTry {
		t.Errorf("rewrite-heavy batch picks %v, want the base variant", got)
	}
}

// TestEstimatorNeverUpgrades pins that Pick only ever downgrades: a
// structure configured with a cheap variant keeps it at every depth.
func TestEstimatorNeverUpgrades(t *testing.T) {
	var e exec.Estimator
	e.ObserveQuery(core.FindTwoTry, qstats(100, 200, 0)) // suggests one-try
	if got := e.Pick(core.FindNaive); got != core.FindNaive {
		t.Errorf("Pick(naive base) = %v, want naive (no upgrades)", got)
	}
	var deep exec.Estimator
	deep.ObserveQuery(core.FindTwoTry, qstats(100, 500, 0))
	if got := deep.Pick(core.FindNaive); got != core.FindNaive {
		t.Errorf("Pick(naive base) on a deep forest = %v, want naive", got)
	}
}

// TestEstimatorChurnRestoresCompaction pins the mutate-side signal: a
// merge-heavy mutation batch bumps the depth estimate even when its own
// finds ran over short paths, restoring compacting variants for the
// queries that follow.
func TestEstimatorChurnRestoresCompaction(t *testing.T) {
	var e exec.Estimator
	e.ObserveQuery(core.FindTwoTry, qstats(100, 100, 0)) // flat: picks naive
	if got := e.Pick(core.FindTwoTry); got != core.FindNaive {
		t.Fatalf("flat estimate picks %v, want naive", got)
	}
	// Two merge-heavy batches: sample = flat depth + ChurnWeight·0.9 ≈ 2.8
	// each, pulling the EWMA past the naive bound and then past one-try's.
	e.ObserveMutate(core.FindTwoTry, qstats(100, 100, 0), 100, 90)
	e.ObserveMutate(core.FindTwoTry, qstats(100, 100, 0), 100, 90)
	if got := e.Pick(core.FindTwoTry); got == core.FindNaive {
		t.Errorf("after two merge-heavy mutation batches Pick still returns naive (depth %v)",
			firstOf(e.Depth()))
	}
	// Merge-free mutation batches over a flat forest relax it again (three
	// EWMA steps at weight 0.5 bring ≈2.35 back under the naive bound).
	for i := 0; i < 3; i++ {
		e.ObserveMutate(core.FindTwoTry, qstats(100, 100, 0), 100, 0)
	}
	if got := e.Pick(core.FindTwoTry); got != core.FindNaive {
		t.Errorf("after merge-free batches on a flat forest Pick = %v, want naive", got)
	}
}

// TestEstimatorEarlyTerminationFallback pins the fallback signal for the
// Section 6 early-termination operations, which never run find(): retry
// rounds per operation stand in for find steps.
func TestEstimatorEarlyTerminationFallback(t *testing.T) {
	var e exec.Estimator
	e.ObserveQuery(core.FindTwoTry, core.Stats{Ops: 100, Rounds: 150})
	if _, ok := e.Depth(); !ok {
		t.Fatal("rounds-per-op fallback produced no depth estimate")
	}
	if got := e.Pick(core.FindTwoTry); got != core.FindNaive {
		t.Errorf("flat early-termination batch picks %v, want naive", got)
	}
	var silent exec.Estimator
	silent.ObserveQuery(core.FindTwoTry, core.Stats{})
	if _, ok := silent.Depth(); ok {
		t.Error("an empty batch must not produce a depth estimate")
	}
}

func firstOf(d float64, _ bool) float64 { return d }

// TestExecutorAdaptiveDowngrade drives the real thing end to end on the
// flat backend: a large UniteAll flattens the forest, and within a few
// query batches the executor must select a downgraded variant — the E21
// acceptance behavior, pinned as a unit test.
func TestExecutorAdaptiveDowngrade(t *testing.T) {
	const n = 1 << 12
	d := core.New(n, core.Config{Seed: 7})
	x := exec.NewExecutor(engine.Flat{D: d}, true)
	if !x.Adaptive() || x.Estimator() == nil {
		t.Fatal("executor built without the adaptive estimator")
	}

	edges := engine.FromOps(workload.RandomUnions(n, 4*n, 3))
	res := x.UniteAll(edges, exec.Config{Workers: 2, Seed: 1})
	if res.Find != core.FindTwoTry {
		t.Fatalf("mutation batch ran %v, want the configured two-try", res.Find)
	}

	// Fixed reference over an identically seeded structure: answers must
	// match whatever variant the adaptive side picks.
	ref := core.New(n, core.Config{Seed: 7})
	engine.UniteAll(ref, edges, exec.Config{Workers: 2, Seed: 1})

	pairs := engine.FromOps(workload.RandomUnions(n, n, 5))
	want, _ := engine.SameSetAll(ref, pairs, exec.Config{Workers: 2, Seed: 1})

	downgraded := false
	var picked []core.Find
	for i := 0; i < 8; i++ {
		out, qres := x.SameSetAll(pairs, exec.Config{Workers: 2, Seed: 1})
		picked = append(picked, qres.Find)
		if qres.Find == core.FindNaive || qres.Find == core.FindOneTry {
			downgraded = true
		}
		for k := range out {
			if out[k] != want[k] {
				t.Fatalf("batch %d (variant %v): answer[%d] = %v, fixed reference %v",
					i, qres.Find, k, out[k], want[k])
			}
		}
	}
	if !downgraded {
		t.Errorf("no query batch downgraded after a flattening UniteAll; picks: %v", picked)
	}
}
