package exec

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/metrics"
)

// OpInstruments is the per-operation-kind slice of an Instruments bundle:
// unite batches and query batches each get their own batch/edge/find-step
// counters and latency histogram, so a scraper can tell mutation traffic
// from query traffic per tenant.
type OpInstruments struct {
	// Batches counts executed batch calls.
	Batches *metrics.Counter
	// Edges counts the elements of those batches (edges or query pairs),
	// before any filter pass.
	Edges *metrics.Counter
	// FindSteps counts find-loop iterations across every phase of the
	// batch (workers, shards, bridge, re-anchoring, filters) — the paper's
	// work-per-operation observable, live.
	FindSteps *metrics.Counter
	// Latency is the end-to-end batch wall-clock histogram, in seconds.
	Latency *metrics.Histogram
}

// observe records one batch run. Nil instruments discard for free.
func (o *OpInstruments) observe(n int, st core.Stats, res *Result) {
	o.Batches.Inc()
	o.Edges.Add(int64(n))
	o.FindSteps.Add(st.FindSteps)
	o.Latency.Observe(res.Elapsed.Seconds())
}

// Instruments is the per-tenant metrics bundle the Executor feeds on
// every batch it runs — the point of the exec seam is that blocking
// calls, stream batches, and remote RPCs all funnel through one Executor,
// so attaching the bundle here instruments every path at once, without
// any caller doing anything. All fields are nil-safe: a zero bundle (or
// individual nil instruments) records nothing, and the dsu layer resolves
// the fields from its metrics registry when (and only when) a tenant is
// instrumented.
//
// The instruments are shared registry children: the Executor only ever
// Adds to them, so any number of executors may share a bundle (they
// don't, in practice — one tenant, one structure, one executor).
type Instruments struct {
	// Unite and Query split the per-op series by batch kind; the
	// ConnectedFilter screen's work is accounted under the batch that ran
	// it (Screen counts its finds separately below).
	Unite, Query OpInstruments
	// Merged counts edges that performed a merge, summed over unite
	// batches — comparable against a scrape-time Sets() delta.
	Merged *metrics.Counter
	// Filtered counts edges dropped before dispatch by Prefilter dedup or
	// the ConnectedFilter screen.
	Filtered *metrics.Counter
	// ScreenFindSteps counts the find work of ConnectedFilter screen
	// passes alone (already included in the owning batch's FindSteps via
	// Result.Stats; broken out so screen cost is observable).
	ScreenFindSteps *metrics.Counter
	// CASRetries counts root-link CAS retries — the lock-free backend's
	// contention metric (always zero for engine-pooled backends).
	CASRetries *metrics.Counter
	// Picks counts query batches by the find variant that actually ran,
	// indexed by core.Find — the adaptive policy's downgrade decisions,
	// live (fixed-mode tenants see all counts on the configured variant).
	// Index 0 absorbs an unset variant.
	Picks [core.FindCompress + 1]*metrics.Counter
	// Seq tracks the applied-batch sequence (Executor.Seq): the durable
	// log position when persistence is on, a plain batch count otherwise.
	// A gauge, not a counter — recovery primes it to the recovered
	// position, and operators compare it across replicas.
	Seq *metrics.Gauge
}

// observeUnite records one mutation batch.
func (m *Instruments) observeUnite(n int, res *Result) {
	st := res.Stats()
	m.Unite.observe(n, st, res)
	m.Merged.Add(res.Merged)
	m.Filtered.Add(int64(res.Filtered))
	m.ScreenFindSteps.Add(res.FilterStats.FindSteps)
	m.CASRetries.Add(res.CASRetries)
}

// observeQuery records one query batch.
func (m *Instruments) observeQuery(n int, res *Result) {
	m.Query.observe(n, res.Stats(), res)
	m.CASRetries.Add(res.CASRetries)
	f := res.Find
	if f < 0 || int(f) >= len(m.Picks) {
		f = 0
	}
	m.Picks[f].Inc()
}

// Instrument attaches the bundle; subsequent batches feed it. It may be
// called at most once, before the executor is shared across goroutines
// (in practice: during tenant creation, before the Universe is
// published); the atomic pointer keeps a scrape racing an attach sound.
func (e *Executor) Instrument(m *Instruments) { e.ins.Store(m) }

// Instruments returns the attached bundle, nil when uninstrumented.
func (e *Executor) Instruments() *Instruments { return e.ins.Load() }

// insPtr is the Executor's bundle slot (declared here with the rest of
// the instrumentation so executor.go stays about policy).
type insPtr = atomic.Pointer[Instruments]
