package exec

import (
	"repro/internal/tracespan"
)

// traceExecute records the execute stage of one batch into its trace:
// the execute span itself (wrapping the backend call — the caller passes
// the claimed ref), plus sub-spans synthesized from the Result's
// accounting. The backends stay uninstrumented — this one seam covers
// all three because they already report per-phase work in Result:
//
//   - a filter span for the prefilter/connected-screen portion
//     (FilterElapsed leads the run, so it anchors at the execute start);
//   - one worker span per pool worker (flat runs, and sharded/lock-free
//     query runs, which drive a single pool), spanning the post-filter
//     portion with that worker's operation counters as attributes.
//
// Synthesis is bounded: per-shard sub-runs are summarized on the execute
// span's attributes rather than expanded (a 64-shard batch would blow
// the span budget for no diagnostic gain — the per-shard detail remains
// available in the Result itself).
func traceExecute(t *tracespan.Trace, ex tracespan.SpanRef, n int, res *Result) {
	if t == nil || ex == 0 {
		return
	}
	start := t.StartOffset(ex)
	if a := t.Attrs(ex); a != nil {
		a.Edges = int64(n)
		a.Merged = res.Merged
		a.Filtered = int64(res.Filtered)
		a.CASRetries = res.CASRetries
		a.FindSteps = res.Stats().FindSteps
		a.Find = res.Find.String()
	}
	if res.FilterElapsed > 0 {
		f := t.StartAt(tracespan.StageFilter, ex, start)
		t.EndAt(f, start+res.FilterElapsed)
		if a := t.Attrs(f); a != nil {
			a.Filtered = int64(res.Filtered)
			a.FindSteps = res.FilterStats.FindSteps
		}
	}
	if len(res.PerWorker) == 0 {
		return
	}
	wstart := start + res.FilterElapsed
	wend := start + res.Elapsed
	if wend < wstart {
		wend = wstart
	}
	for i := range res.PerWorker {
		w := t.StartAt(tracespan.StageWorker, ex, wstart)
		t.EndAt(w, wend)
		if a := t.Attrs(w); a != nil {
			s := &res.PerWorker[i]
			a.Worker = int64(i + 1)
			a.Ops = s.Ops
			a.FindSteps = s.FindSteps
			a.CASRetries = s.CASFailures
		}
	}
}
