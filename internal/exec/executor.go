package exec

import "repro/internal/tracespan"

// Executor is the one funnel every dsu batch path routes through: blocking
// UniteAll/SameSetAll calls, the stream dispatcher, and the filter paths
// all drive the same Executor, so per-batch policy lives here exactly
// once. In fixed mode (est == nil) it is a transparent passthrough to the
// Backend; in adaptive mode it trains the flatness Estimator on every
// batch and downgrades query batches to cheaper find variants while the
// forest is flat.
type Executor struct {
	b   Backend
	est *Estimator
	// ins is the attached metrics bundle (nil until Instrument): because
	// every batch path funnels through this type, feeding it here is what
	// instruments blocking calls, stream batches, and remote RPCs at once.
	ins insPtr
}

// NewExecutor wraps b. With adaptive set, query batches pick their find
// variant from the flatness estimate; without it the executor never
// touches Config.Find.
func NewExecutor(b Backend, adaptive bool) *Executor {
	e := &Executor{b: b}
	if adaptive {
		e.est = &Estimator{}
	}
	return e
}

// Backend returns the wrapped backend.
func (e *Executor) Backend() Backend { return e.b }

// Seed returns the backend's structure seed, the default scheduling seed
// for its batches.
func (e *Executor) Seed() uint64 { return e.b.Seed() }

// Adaptive reports whether the adaptive compaction policy is active.
func (e *Executor) Adaptive() bool { return e.est != nil }

// Estimator returns the flatness estimator, nil in fixed mode. Exposed for
// experiments and tests; ordinary callers never need it.
func (e *Executor) Estimator() *Estimator { return e.est }

// UniteAll drives a mutation batch. Mutation batches always run the
// backend's configured variant (unless the caller overrode Config.Find
// explicitly): compacting variants are what flatten the forest, and the
// estimator learns how much this batch churned it.
func (e *Executor) UniteAll(edges []Edge, cfg Config) Result {
	ex := cfg.Trace.Start(tracespan.StageExecute, tracespan.Root)
	res := e.b.UniteAll(edges, cfg)
	cfg.Trace.End(ex)
	traceExecute(cfg.Trace, ex, len(edges), &res)
	if e.est != nil && len(edges) > 0 {
		e.est.ObserveMutate(res.Find, res.Stats(), len(edges), res.Merged)
	}
	if m := e.ins.Load(); m != nil {
		m.observeUnite(len(edges), &res)
	}
	return res
}

// SameSetAll drives a query batch. In adaptive mode, with no explicit
// Config.Find override, the variant comes from the flatness estimate —
// two-try → one-try → naive as the forest flattens — and the batch's own
// observables train the next pick.
func (e *Executor) SameSetAll(pairs []Edge, cfg Config) ([]bool, Result) {
	if e.est != nil && cfg.Find == 0 {
		cfg.Find = e.est.Pick(e.b.CoreConfig().Find)
	}
	ex := cfg.Trace.Start(tracespan.StageExecute, tracespan.Root)
	out, res := e.b.SameSetAll(pairs, cfg)
	cfg.Trace.End(ex)
	traceExecute(cfg.Trace, ex, len(pairs), &res)
	if e.est != nil && len(pairs) > 0 {
		e.est.ObserveQuery(res.Find, res.Stats())
	}
	if m := e.ins.Load(); m != nil {
		m.observeQuery(len(pairs), &res)
	}
	return out, res
}
