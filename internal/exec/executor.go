package exec

import (
	"sync"
	"sync/atomic"

	"repro/internal/tracespan"
)

// Executor is the one funnel every dsu batch path routes through: blocking
// UniteAll/SameSetAll calls, the stream dispatcher, and the filter paths
// all drive the same Executor, so per-batch policy lives here exactly
// once. In fixed mode (est == nil) it is a transparent passthrough to the
// Backend; in adaptive mode it trains the flatness Estimator on every
// batch and downgrades query batches to cheaper find variants while the
// forest is flat.
//
// The executor is also where durability and the applied-batch sequence
// live: with a WAL attached (AttachWAL), every mutation batch is
// appended — and durable, per the log's sync policy — before it touches
// the backend, so a batch whose result any caller has seen is a batch
// the log can replay. Queries never touch the log.
type Executor struct {
	b   Backend
	est *Estimator
	// ins is the attached metrics bundle (nil until Instrument): because
	// every batch path funnels through this type, feeding it here is what
	// instruments blocking calls, stream batches, and remote RPCs at once.
	ins insPtr
	// wal is the attached durability hook (nil until AttachWAL) — same
	// seam, same reasoning: attaching here logs blocking calls, stream
	// batches, and remote RPCs at once.
	wal atomic.Pointer[walHook]
	// gate lets Quiesce drain in-flight mutation batches: mutations hold
	// it shared, a quiescent-state caller (checkpoint) holds it exclusive.
	// Uncontended RLock/RUnlock is two atomic ops — noise next to a batch.
	gate sync.RWMutex
	// applied is the sequence number of the latest applied mutation batch
	// (monotonic, starts at 1 for the first batch). With a WAL attached it
	// mirrors the log's committed sequence; without one it still counts
	// batches so replicas and operators can compare positions.
	applied atomic.Uint64
}

// WAL is the durability sink an executor appends mutation batches to.
// Append must assign the batch a monotonically increasing sequence
// number and return only once the batch is durable per the log's
// policy; CheckpointDue reports whether the log wants a snapshot taken
// (cheap, called once per batch).
type WAL interface {
	Append(edges []Edge) (uint64, error)
	CheckpointDue() bool
}

// walHook pairs the log with the checkpoint trigger the owning layer
// registered (the dsu layer's snapshot-at-quiescence routine).
type walHook struct {
	w          WAL
	checkpoint func()
}

// NewExecutor wraps b. With adaptive set, query batches pick their find
// variant from the flatness estimate; without it the executor never
// touches Config.Find.
func NewExecutor(b Backend, adaptive bool) *Executor {
	e := &Executor{b: b}
	if adaptive {
		e.est = &Estimator{}
	}
	return e
}

// Backend returns the wrapped backend.
func (e *Executor) Backend() Backend { return e.b }

// Seed returns the backend's structure seed, the default scheduling seed
// for its batches.
func (e *Executor) Seed() uint64 { return e.b.Seed() }

// Adaptive reports whether the adaptive compaction policy is active.
func (e *Executor) Adaptive() bool { return e.est != nil }

// Estimator returns the flatness estimator, nil in fixed mode. Exposed for
// experiments and tests; ordinary callers never need it.
func (e *Executor) Estimator() *Estimator { return e.est }

// AttachWAL arranges for every subsequent mutation batch to be appended
// to w before it is applied. checkpoint (optional) is invoked after a
// batch when the log reports CheckpointDue — it must tolerate being
// called concurrently from many batch goroutines.
func (e *Executor) AttachWAL(w WAL, checkpoint func()) {
	e.wal.Store(&walHook{w: w, checkpoint: checkpoint})
}

// Durable reports whether a WAL is attached.
func (e *Executor) Durable() bool { return e.wal.Load() != nil }

// Seq returns the sequence number of the latest applied mutation batch;
// 0 before any mutation. With a WAL attached this is the durable log
// position.
func (e *Executor) Seq() uint64 { return e.applied.Load() }

// SetSeq primes the applied sequence — recovery calls it after
// replaying a log so post-recovery batches continue the numbering
// rather than restarting at 1.
func (e *Executor) SetSeq(seq uint64) {
	e.applied.Store(seq)
	if m := e.ins.Load(); m != nil {
		m.Seq.Set(int64(seq))
	}
}

// Quiesce drains in-flight mutation batches, then runs fn with new
// mutations held at the door; fn receives the applied sequence, which
// no batch can advance while it runs. This is the snapshot-at-
// quiescence guarantee: a Snapshot() taken inside fn covers exactly the
// batches numbered 1..seq, no torn view of a batch mid-application.
// Queries are not blocked (they don't move the partition).
func (e *Executor) Quiesce(fn func(seq uint64)) {
	e.gate.Lock()
	defer e.gate.Unlock()
	fn(e.applied.Load())
}

// raiseApplied advances applied to at least seq. Batches commit out of
// order under the shared gate, so a plain store could move the sequence
// backwards; the CAS loop keeps it a high-water mark.
func (e *Executor) raiseApplied(seq uint64) {
	for {
		cur := e.applied.Load()
		if cur >= seq || e.applied.CompareAndSwap(cur, seq) {
			return
		}
	}
}

func (e *Executor) publishSeq() {
	if m := e.ins.Load(); m != nil {
		m.Seq.Set(int64(e.applied.Load()))
	}
}

// UniteAll drives a mutation batch. Mutation batches always run the
// backend's configured variant (unless the caller overrode Config.Find
// explicitly): compacting variants are what flatten the forest, and the
// estimator learns how much this batch churned it.
//
// With a WAL attached the batch is logged first and applied second, and
// a failed append fails the batch (Result.Err) without applying it —
// callers surface that error instead of a reply, which is the
// acked-means-logged contract. The returned Result.Seq is the batch's
// position in the applied (and, when durable, logged) order.
func (e *Executor) UniteAll(edges []Edge, cfg Config) Result {
	h := e.wal.Load()
	if h == nil || len(edges) == 0 {
		res := e.execUnite(edges, cfg)
		if len(edges) > 0 {
			res.Seq = e.applied.Add(1)
			e.publishSeq()
		}
		return res
	}
	e.gate.RLock()
	seq, err := h.w.Append(edges)
	if err != nil {
		e.gate.RUnlock()
		return Result{Err: err}
	}
	res := e.execUnite(edges, cfg)
	res.Seq = seq
	e.raiseApplied(seq)
	e.gate.RUnlock()
	e.publishSeq()
	if h.checkpoint != nil && h.w.CheckpointDue() {
		h.checkpoint()
	}
	return res
}

// execUnite is the pre-durability mutation path: run, trace, train,
// observe.
func (e *Executor) execUnite(edges []Edge, cfg Config) Result {
	ex := cfg.Trace.Start(tracespan.StageExecute, tracespan.Root)
	res := e.b.UniteAll(edges, cfg)
	cfg.Trace.End(ex)
	traceExecute(cfg.Trace, ex, len(edges), &res)
	if e.est != nil && len(edges) > 0 {
		e.est.ObserveMutate(res.Find, res.Stats(), len(edges), res.Merged)
	}
	if m := e.ins.Load(); m != nil {
		m.observeUnite(len(edges), &res)
	}
	return res
}

// SameSetAll drives a query batch. In adaptive mode, with no explicit
// Config.Find override, the variant comes from the flatness estimate —
// two-try → one-try → naive as the forest flattens — and the batch's own
// observables train the next pick.
func (e *Executor) SameSetAll(pairs []Edge, cfg Config) ([]bool, Result) {
	if e.est != nil && cfg.Find == 0 {
		cfg.Find = e.est.Pick(e.b.CoreConfig().Find)
	}
	ex := cfg.Trace.Start(tracespan.StageExecute, tracespan.Root)
	out, res := e.b.SameSetAll(pairs, cfg)
	cfg.Trace.End(ex)
	traceExecute(cfg.Trace, ex, len(pairs), &res)
	if e.est != nil && len(pairs) > 0 {
		e.est.ObserveQuery(res.Find, res.Stats())
	}
	if m := e.ins.Load(); m != nil {
		m.observeQuery(len(pairs), &res)
	}
	return out, res
}
