package exec

import (
	"sync"

	"repro/internal/core"
)

// The estimator reduces every batch to one number — an estimate of the
// average find-path depth over the forest — and the policy thresholds
// below map that estimate to the cheapest variant that still wins at that
// depth. The constants are exported so the threshold tests and E21 can
// reference the exact switch points.
const (
	// NaiveMaxDepth is the flatness bound below which query batches run
	// naive finds (Algorithm 1): when nearly every element points at its
	// root, compaction CASes are pure overhead — the paths they would
	// shorten don't exist.
	NaiveMaxDepth = 1.3
	// OneTryMaxDepth is the bound below which query batches run one-try
	// splitting (Algorithm 4): short paths still worth one swing per node,
	// not two.
	OneTryMaxDepth = 2.2
	// EWMAWeight is the exponential moving-average weight of the newest
	// batch's depth sample: 0.5 converges within about two batches of a
	// phase change, which matches the mutate/query phase lengths E21
	// alternates.
	EWMAWeight = 0.5
	// ChurnWeight scales a mutation batch's merge ratio into a depth
	// penalty: every merge links one root under another, deepening the
	// losing tree by a level that no find has compacted yet, so a
	// merge-heavy batch marks the forest as churned even before a query
	// observes it.
	ChurnWeight = 2.0
	// RewriteWeight scales observed parent-pointer rewrites per find into
	// the depth sample: a rewrite is direct evidence a find walked (and
	// shortened) a real path, so a batch that still rewrites a lot is not
	// flat yet even if its step counts look low.
	RewriteWeight = 1.0
)

// Estimator is the flatness estimator behind the adaptive compaction
// policy: an EWMA over per-batch depth samples, fed by the Executor after
// every batch and consulted before every query batch. It is safe for
// concurrent use — batch calls may race on one structure — and one
// instance is shared by the structure's blocking, counted, and streamed
// batch paths, so a stream's batches train the same estimate direct calls
// do.
type Estimator struct {
	mu    sync.Mutex
	depth float64
	valid bool
}

// Depth returns the current depth estimate and whether any batch has been
// observed yet.
func (e *Estimator) Depth() (float64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.depth, e.valid
}

// Pick returns the variant a query batch should run with: the cheapest of
// base and the estimate's suggestion, never an upgrade — a structure
// configured with naive finds stays naive regardless of depth, and with no
// observations yet the configured variant stands.
func (e *Estimator) Pick(base core.Find) core.Find {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.valid {
		return base
	}
	var suggest core.Find
	switch {
	case e.depth <= NaiveMaxDepth:
		suggest = core.FindNaive
	case e.depth <= OneTryMaxDepth:
		suggest = core.FindOneTry
	default:
		return base
	}
	if costRank(suggest) < costRank(base) {
		return suggest
	}
	return base
}

// costRank orders variants by per-find overhead on a flat forest: naive
// pays reads only, one-try adds one CAS attempt per non-root step, and the
// remaining variants (two-try, halving, compression) pay at least as much
// as one-try.
func costRank(f core.Find) int {
	switch f {
	case core.FindNaive:
		return 0
	case core.FindOneTry:
		return 1
	default:
		return 2
	}
}

// ObserveQuery folds a query batch's observables into the estimate. v is
// the variant the batch ran with (depth normalization is variant-aware)
// and st its summed work counters.
func (e *Estimator) ObserveQuery(v core.Find, st core.Stats) {
	s, ok := depthSample(v, st)
	if !ok {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.observeLocked(s)
}

// ObserveMutate folds a mutation batch's observables into the estimate:
// the batch's own depth sample plus a churn penalty proportional to its
// merge ratio, so a merge-heavy batch restores compacting variants for the
// queries that follow even when its own finds ran over short paths.
func (e *Estimator) ObserveMutate(v core.Find, st core.Stats, edges int, merged int64) {
	if edges <= 0 {
		return
	}
	churn := ChurnWeight * float64(merged) / float64(edges)
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := depthSample(v, st)
	if !ok {
		// No find signal (for example an all-self-loop batch): decay
		// nothing, just apply the churn bump to whatever we believed.
		if !e.valid {
			e.depth, e.valid = 1+churn, true
			return
		}
		s = e.depth
	}
	e.observeLocked(s + churn)
}

func (e *Estimator) observeLocked(sample float64) {
	if !e.valid {
		e.depth, e.valid = sample, true
		return
	}
	e.depth = (1-EWMAWeight)*e.depth + EWMAWeight*sample
}

// depthSample converts a batch's work counters into an average find-path
// depth estimate, normalized per variant: the splitting/halving loops
// iterate once per path edge (1.0 on a flat forest), while naive counts
// the root visit too, so its step count runs one higher at the same depth.
// Rewrites per find are added on top — a successful compaction CAS proves
// a real path was walked. Early-termination operations never run find()
// (Finds stays zero), so they fall back to retry rounds per operation,
// which grow with path length the same way.
func depthSample(v core.Find, st core.Stats) (float64, bool) {
	if st.Finds > 0 {
		s := float64(st.FindSteps) / float64(st.Finds)
		if v == core.FindNaive {
			s--
		}
		s += RewriteWeight * float64(st.Rewrites) / float64(st.Finds)
		return s, true
	}
	if st.Ops > 0 && st.Rounds > 0 {
		s := float64(st.Rounds)/float64(st.Ops) - 1
		if s < 0 {
			s = 0
		}
		s += RewriteWeight * float64(st.Rewrites) / float64(st.Ops)
		return s, true
	}
	return 0, false
}
