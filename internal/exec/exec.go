// Package exec is the unified batch-execution layer: one Backend seam over
// the flat engine target and the sharded DSU, one Result type shared by
// every batch path (blocking, sharded, streamed), and the adaptive
// compaction policy that rides that seam.
//
// Before this layer existed, the flat, sharded, and streaming paths each
// carried their own batch glue — engine.Result, shard.Result, and
// pipeline.Result duplicated the same per-batch accounting, and the sharded
// structure's SameSetAll even returned a different result type than its own
// UniteAll. Any policy that wanted to observe batches and steer later ones
// (the ROADMAP's batch-aware compaction item) would have had to be written
// three times. Now internal/engine and internal/shard both speak exec's
// types, dsu's batch, stream, and filter paths all funnel through one
// Executor, and the policy below is written once.
//
// # Adaptive compaction
//
// The paper's find variants (naive — Algorithm 1, one-try and two-try
// splitting — Algorithms 4 and 5, halving, compression) trade compaction
// work now against cheaper finds later. Alistarh et al. ("In Search of the
// Fastest Concurrent Union-Find Algorithm", 2019) observe that no single
// compaction strategy wins across workload phases; Jayanti–Tarjan's
// linking-by-random-index forest makes switching variants between batches
// safe, because every variant maintains the same Lemma 3.1 invariants over
// the same parent array (core.DSU.WithFind builds the variant views).
//
// The Executor exploits both facts: it tracks per-batch observables — find
// steps per find, parent-pointer rewrites, merge ratio — in a small
// flatness Estimator, and on query batches (SameSetAll) it downgrades the
// configured compacting variant to a cheaper one (two-try → one-try →
// naive) while the forest looks flat, restoring the compacting variant
// once mutation batches churn it. Mutation batches (UniteAll) always run
// the configured variant: they are what flatten the forest in the first
// place. The partition is identical in every mode — which unites merge
// depends only on set membership, never on the find variant — so
// adaptivity is purely a work optimization (validated by the adaptive ≡
// fixed cross-validation tests under -race).
package exec

import (
	"time"

	"repro/internal/core"
	"repro/internal/tracespan"
)

// Edge is one (X, Y) element pair of a batch: an edge to unite across, or
// a connectivity query to answer.
type Edge struct {
	X, Y uint32
}

// Config tunes one batch run. The zero value is ready to use.
type Config struct {
	// Workers is the pool size; 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Grain is the number of edges a worker claims per span access; 0
	// selects the engine's default (1024). Smaller grains balance better,
	// larger grains amortize the claim CAS over more real work.
	Grain int
	// Seed makes each worker's victim-selection order deterministic. Runs
	// with equal seeds scan victims in the same order (the interleaving of
	// operations still varies with goroutine scheduling).
	Seed uint64
	// Prefilter runs the batch through the dedup pass before UniteAll
	// dispatches it: self-loops and exact duplicates are dropped up front
	// instead of paying finds inside the structure. The final partition and
	// merge count are unchanged (dropped edges can never merge). SameSetAll
	// ignores the flag — its answers are indexed by the caller's slice.
	Prefilter bool
	// ConnectedFilter screens the batch through SameSet before UniteAll
	// dispatches it, dropping edges whose endpoints are already connected.
	// The screen is racy but sound: a true SameSet answer is definite even
	// concurrently with mutations, so a dropped edge could never have
	// merged — the final partition is exactly the unscreened batch's. The
	// screen's work and elapsed time land in Result.FilterStats /
	// Result.FilterElapsed. SameSetAll ignores the flag, like Prefilter.
	ConnectedFilter bool
	// Find, when non-zero, overrides the backend's configured find variant
	// for this batch: the backend drives the batch through a variant view
	// over the same forest (core.DSU.WithFind), which is safe between and
	// during batches because every variant maintains the same structural
	// invariants. Zero keeps the configured variant. The adaptive Executor
	// sets this on query batches; the engine's free functions ignore it
	// (they see only an opaque Target — the Backend implementations resolve
	// it).
	Find core.Find
	// Trace, when non-nil, is the batch's span tree: the Executor records
	// an execute span around the backend call, synthesizes filter and
	// per-worker sub-spans from the Result's accounting, and attributes
	// the lock-free path's CASRetries. Nil (the default, and the disabled
	// mode) records nothing — every tracespan method is a nil-safe no-op,
	// so untraced batches pay only a nil check.
	Trace *tracespan.Trace
}

// Result reports what one batch run did, across every execution path. The
// flat engine fills the pool fields (Workers, Grain, Steals, PerWorker);
// the sharded path additionally fills the per-phase fields (Intra, Spill,
// SelfLoops, Reanchors, PerShard, Bridge, ReanchorStats); both fill the
// filter accounting (Filtered, FilterElapsed, FilterStats) identically —
// the parity the unified type enforces by construction.
type Result struct {
	// Workers is the resolved size of the pool that produced this record:
	// set whenever a single engine pool ran the batch (flat runs, and
	// sharded SameSetAll/ScreenConnected, which drive one pool over the
	// two-level view). Zero only on sharded UniteAll, where the budget
	// splits across the per-shard runs — see PerShard.
	Workers int
	// Grain is the resolved claim granularity (set exactly when Workers is).
	Grain int
	// Find is the variant the batch actually ran with, as resolved by the
	// backend from Config.Find and its own configuration. The adaptive
	// executor's downgrades are observable here (E21 prints them).
	Find core.Find
	// Merged counts Unites that performed a merge. On the flat path this is
	// exactly the sequential pass's count for any schedule; on the sharded
	// path it tallies structural merges across both levels and can exceed
	// the flat count (see the shard package docs) while the partition is
	// identical.
	Merged int64
	// Steals counts successful span steals — a load-imbalance diagnostic
	// (flat path; per-shard runs report theirs in PerShard).
	Steals int64
	// Intra and Spill count the batch's edges after shard classification;
	// SelfLoops counts edges dropped during routing (X == Y). All three are
	// zero on the flat path.
	Intra, Spill, SelfLoops int
	// Reanchors counts closure-restoring bridge unions issued by a sharded
	// run (zero on the flat path).
	Reanchors int
	// CASRetries counts root-link CAS attempts that lost a race to a
	// concurrent link and retried — the direct-concurrent path's contention
	// metric (zero on the engine and sharded paths, whose targets retry
	// inside UniteCounted without reporting). Under overlap it measures how
	// hard simultaneous batches, streams, and point callers collided on
	// roots; E23 prints it.
	CASRetries int64
	// Filtered counts edges dropped before dispatch by the batch's filter
	// passes (Prefilter dedup and/or the ConnectedFilter screen).
	Filtered int
	// FilterElapsed is the wall-clock time of those passes; Elapsed
	// includes it, so Elapsed stays end-to-end.
	FilterElapsed time.Duration
	// FilterStats holds the shared-memory work of the filter passes (the
	// connected screen's finds; the dedup pass touches no shared memory)
	// plus the Filtered tally, so Counted callers see the drops too.
	FilterStats core.Stats
	// PerWorker holds each worker's operation counters, in worker order
	// (flat path).
	PerWorker []core.Stats
	// PerShard holds each shard's local engine run, in shard order (sharded
	// path; zero-value entries for shards that received no intra edges).
	PerShard []Result
	// Bridge is the engine run that drove the spill list through the bridge
	// forest (sharded path; nil when the batch had no cross-shard edges).
	Bridge *Result
	// ReanchorStats accounts the work of the re-anchor passes (sharded
	// path).
	ReanchorStats core.Stats
	// Elapsed is the wall-clock duration of the whole batch call, filter
	// passes included.
	Elapsed time.Duration
	// Seq is the batch's position in the applied mutation order, assigned
	// by the Executor: the durable log sequence when a WAL is attached, a
	// plain batch count otherwise. Zero for query batches, empty batches,
	// and failed batches.
	Seq uint64
	// Err is set when durability refused the batch: the WAL append
	// failed, the batch was NOT applied, and no reply path may
	// acknowledge it. Always nil without a WAL attached.
	Err error
}

// Stats returns the summed work counters of every phase of the run: pool
// workers, per-shard runs, the bridge run, re-anchoring, and filter passes.
func (r Result) Stats() core.Stats {
	var total core.Stats
	for i := range r.PerWorker {
		total.Add(r.PerWorker[i])
	}
	for i := range r.PerShard {
		total.Add(r.PerShard[i].Stats())
	}
	if r.Bridge != nil {
		total.Add(r.Bridge.Stats())
	}
	total.Add(r.ReanchorStats)
	total.Add(r.FilterStats)
	return total
}

// Backend is the execution seam every batch path drives: the flat core
// target (engine.Flat) and the sharded DSU (shard.DSU) both implement it,
// which is what lets dsu's batch, stream, and filter paths — and the
// adaptive policy — be written once. Implementations must honor
// Config.Find by running the batch through a variant view of their forest,
// and must fill Result's filter accounting identically.
type Backend interface {
	// UniteAll merges across every edge of the batch and reports the run.
	UniteAll(edges []Edge, cfg Config) Result
	// SameSetAll answers pairs[i] into element i of the returned slice.
	SameSetAll(pairs []Edge, cfg Config) ([]bool, Result)
	// ScreenConnected drops edges whose endpoints are already connected,
	// returning the survivors and the screen's own run. Sound under
	// concurrency (true SameSet answers are definite); exactness follows
	// the backend's query contract.
	ScreenConnected(edges []Edge, cfg Config) ([]Edge, Result)
	// Seed returns the structure seed, plumbed into batch scheduling so a
	// structure built for reproducibility schedules reproducibly too.
	Seed() uint64
	// CoreConfig returns the structure's variant configuration (find
	// strategy, early termination, seed).
	CoreConfig() core.Config
}
