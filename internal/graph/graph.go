// Package graph is the application substrate for the paper's motivating
// workloads (Section 1): incremental connected components, minimum spanning
// forests, percolation, and strongly connected components. It provides edge
// generators (Erdős–Rényi, grid, RMAT-style power-law), a CSR adjacency
// form, and exact reference algorithms (BFS components, Kruskal) that the
// concurrent examples validate against.
//
// All generators are deterministic in their seed.
package graph

import (
	"sort"

	"repro/internal/randutil"
	"repro/internal/seqdsu"
)

// Edge is an undirected (or directed, per use) pair of endpoints.
type Edge struct {
	U, V uint32
}

// WeightedEdge is an Edge with a weight, for spanning-forest workloads.
type WeightedEdge struct {
	U, V uint32
	W    float64
}

// ErdosRenyi returns m uniformly random edges over n vertices (the G(n, m)
// multigraph flavour: duplicates and self-loops possible, harmless for
// connectivity workloads and cheaper to generate at scale).
func ErdosRenyi(n, m int, seed uint64) []Edge {
	if n <= 0 || m < 0 {
		panic("graph: bad ErdosRenyi size")
	}
	rng := randutil.NewXoshiro256(seed)
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{uint32(rng.Intn(n)), uint32(rng.Intn(n))}
	}
	return edges
}

// Grid returns the bond edges of a rows×cols lattice: each vertex connects
// to its right and down neighbours. Vertex (r, c) has index r·cols + c.
func Grid(rows, cols int) []Edge {
	if rows <= 0 || cols <= 0 {
		panic("graph: bad Grid size")
	}
	edges := make([]Edge, 0, 2*rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := uint32(r*cols + c)
			if c+1 < cols {
				edges = append(edges, Edge{v, v + 1})
			}
			if r+1 < rows {
				edges = append(edges, Edge{v, v + uint32(cols)})
			}
		}
	}
	return edges
}

// RMAT returns m edges over 2^scale vertices drawn from the recursive
// matrix (R-MAT) distribution with the standard (0.57, 0.19, 0.19, 0.05)
// partition probabilities, yielding a skewed, power-law-ish degree
// distribution like the implicit graphs of the model-checking motivation.
func RMAT(scale, m int, seed uint64) []Edge {
	if scale <= 0 || scale > 30 || m < 0 {
		panic("graph: bad RMAT size")
	}
	const a, b, c = 0.57, 0.19, 0.19
	rng := randutil.NewXoshiro256(seed)
	edges := make([]Edge, m)
	for i := range edges {
		var u, v uint32
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: no bits set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		edges[i] = Edge{u, v}
	}
	return edges
}

// RandomWeights assigns deterministic pseudorandom weights in [0, 1) to
// edges, for spanning-forest workloads. Weights are distinct with
// probability 1 − O(m²/2⁵³), enough for a unique MSF in practice.
func RandomWeights(edges []Edge, seed uint64) []WeightedEdge {
	rng := randutil.NewXoshiro256(seed)
	out := make([]WeightedEdge, len(edges))
	for i, e := range edges {
		out[i] = WeightedEdge{U: e.U, V: e.V, W: rng.Float64()}
	}
	return out
}

// Adjacency is a compressed-sparse-row adjacency structure.
type Adjacency struct {
	Off []int32  // Off[v]..Off[v+1] indexes Dst; length n+1
	Dst []uint32 // concatenated neighbour lists
}

// Build constructs CSR adjacency over n vertices. With directed false each
// edge appears in both endpoint lists; self-loops appear once (or twice if
// undirected). It panics on endpoints outside 0..n−1.
func Build(n int, edges []Edge, directed bool) *Adjacency {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	deg := make([]int32, n+1)
	for _, e := range edges {
		if int(e.U) >= n || int(e.V) >= n {
			panic("graph: edge endpoint out of range")
		}
		deg[e.U+1]++
		if !directed {
			deg[e.V+1]++
		}
	}
	for i := 1; i <= n; i++ {
		deg[i] += deg[i-1]
	}
	off := deg
	dst := make([]uint32, off[n])
	cursor := make([]int32, n)
	for _, e := range edges {
		dst[off[e.U]+cursor[e.U]] = e.V
		cursor[e.U]++
		if !directed {
			dst[off[e.V]+cursor[e.V]] = e.U
			cursor[e.V]++
		}
	}
	return &Adjacency{Off: off, Dst: dst}
}

// Neighbors returns v's adjacency list (shared backing; do not mutate).
func (a *Adjacency) Neighbors(v uint32) []uint32 {
	return a.Dst[a.Off[v]:a.Off[v+1]]
}

// N returns the vertex count.
func (a *Adjacency) N() int { return len(a.Off) - 1 }

// RefComponents returns the exact min-label connected components of the
// undirected graph by BFS — the oracle the concurrent examples check
// against.
func RefComponents(n int, edges []Edge) []uint32 {
	adj := Build(n, edges, false)
	labels := make([]uint32, n)
	for i := range labels {
		labels[i] = ^uint32(0)
	}
	queue := make([]uint32, 0, n)
	for start := 0; start < n; start++ {
		if labels[start] != ^uint32(0) {
			continue
		}
		lbl := uint32(start)
		labels[start] = lbl
		queue = append(queue[:0], uint32(start))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range adj.Neighbors(v) {
				if labels[w] == ^uint32(0) {
					labels[w] = lbl
					queue = append(queue, w)
				}
			}
		}
	}
	return labels
}

// KruskalRef computes the exact minimum-spanning-forest weight with the
// classical sequential Kruskal algorithm; the Borůvka example validates
// against it. Edge slices are not mutated.
func KruskalRef(n int, edges []WeightedEdge) (totalWeight float64, treeEdges int) {
	sorted := append([]WeightedEdge(nil), edges...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].W < sorted[j].W })
	d := seqdsu.New(n, seqdsu.LinkRank, seqdsu.CompactHalving, 0)
	for _, e := range sorted {
		if e.U == e.V {
			continue
		}
		if d.Unite(e.U, e.V) {
			totalWeight += e.W
			treeEdges++
		}
	}
	return totalWeight, treeEdges
}
