package graph

import (
	"math"
	"testing"

	"repro/internal/seqdsu"
)

func TestErdosRenyiBoundsAndDeterminism(t *testing.T) {
	a := ErdosRenyi(100, 500, 9)
	b := ErdosRenyi(100, 500, 9)
	if len(a) != 500 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different edges")
		}
		if a[i].U >= 100 || a[i].V >= 100 {
			t.Fatalf("edge %v out of range", a[i])
		}
	}
}

func TestGridStructure(t *testing.T) {
	edges := Grid(3, 4)
	// 3×4 grid: horizontal edges 3·3=9, vertical 2·4=8.
	if len(edges) != 17 {
		t.Fatalf("edge count = %d, want 17", len(edges))
	}
	adj := Build(12, edges, false)
	// Corner (0,0) has 2 neighbours; interior (1,1) = vertex 5 has 4.
	if len(adj.Neighbors(0)) != 2 {
		t.Errorf("corner degree = %d, want 2", len(adj.Neighbors(0)))
	}
	if len(adj.Neighbors(5)) != 4 {
		t.Errorf("interior degree = %d, want 4", len(adj.Neighbors(5)))
	}
	// Full grid is connected.
	labels := RefComponents(12, edges)
	for v, l := range labels {
		if l != 0 {
			t.Fatalf("vertex %d label %d, want 0", v, l)
		}
	}
}

func TestRMATSkewed(t *testing.T) {
	edges := RMAT(10, 20000, 3)
	n := 1 << 10
	deg := make([]int, n)
	for _, e := range edges {
		if int(e.U) >= n || int(e.V) >= n {
			t.Fatalf("edge %v out of range", e)
		}
		deg[e.U]++
		deg[e.V]++
	}
	// Power-law-ish: the max degree should far exceed the mean.
	maxDeg, sum := 0, 0
	for _, d := range deg {
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(sum) / float64(n)
	if float64(maxDeg) < 4*mean {
		t.Errorf("max degree %d not skewed vs mean %.1f", maxDeg, mean)
	}
}

func TestBuildDirectedVsUndirected(t *testing.T) {
	edges := []Edge{{0, 1}, {1, 2}}
	und := Build(3, edges, false)
	dir := Build(3, edges, true)
	if len(und.Dst) != 4 || len(dir.Dst) != 2 {
		t.Fatalf("dst lengths: und %d, dir %d", len(und.Dst), len(dir.Dst))
	}
	if got := und.Neighbors(1); len(got) != 2 {
		t.Errorf("undirected neighbours of 1: %v", got)
	}
	if got := dir.Neighbors(1); len(got) != 1 || got[0] != 2 {
		t.Errorf("directed neighbours of 1: %v", got)
	}
	if und.N() != 3 {
		t.Errorf("N = %d", und.N())
	}
}

func TestBuildPanicsOnBadEndpoint(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Build(2, []Edge{{0, 5}}, false)
}

func TestRefComponentsMatchesDSU(t *testing.T) {
	const n = 300
	edges := ErdosRenyi(n, 350, 4)
	ref := RefComponents(n, edges)
	d := seqdsu.New(n, seqdsu.LinkSize, seqdsu.CompactCompression, 0)
	for _, e := range edges {
		d.Unite(e.U, e.V)
	}
	labels := d.CanonicalLabels()
	for v := range labels {
		if labels[v] != ref[v] {
			t.Fatalf("vertex %d: DSU label %d, BFS label %d", v, labels[v], ref[v])
		}
	}
}

func TestRefComponentsDisconnected(t *testing.T) {
	labels := RefComponents(4, []Edge{{0, 1}})
	want := []uint32{0, 0, 2, 3}
	for v := range want {
		if labels[v] != want[v] {
			t.Errorf("label[%d] = %d, want %d", v, labels[v], want[v])
		}
	}
}

func TestRandomWeightsDeterministic(t *testing.T) {
	edges := ErdosRenyi(10, 20, 1)
	a := RandomWeights(edges, 5)
	b := RandomWeights(edges, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different weights")
		}
		if a[i].W < 0 || a[i].W >= 1 {
			t.Fatalf("weight %v out of [0,1)", a[i].W)
		}
	}
}

func TestKruskalRefOnKnownGraph(t *testing.T) {
	// Triangle 0-1 (w=1), 1-2 (w=2), 0-2 (w=10): MST weight 3, 2 edges.
	edges := []WeightedEdge{{0, 1, 1}, {1, 2, 2}, {0, 2, 10}}
	w, k := KruskalRef(3, edges)
	if math.Abs(w-3) > 1e-12 || k != 2 {
		t.Fatalf("MST = (%v, %d), want (3, 2)", w, k)
	}
}

func TestKruskalRefForest(t *testing.T) {
	// Two disconnected pairs: forest has 2 edges.
	edges := []WeightedEdge{{0, 1, 0.5}, {2, 3, 0.25}}
	w, k := KruskalRef(4, edges)
	if math.Abs(w-0.75) > 1e-12 || k != 2 {
		t.Fatalf("MSF = (%v, %d), want (0.75, 2)", w, k)
	}
}

func TestKruskalSkipsSelfLoops(t *testing.T) {
	edges := []WeightedEdge{{0, 0, 0.1}, {0, 1, 0.9}}
	w, k := KruskalRef(2, edges)
	if k != 1 || math.Abs(w-0.9) > 1e-12 {
		t.Fatalf("MST = (%v, %d), want (0.9, 1)", w, k)
	}
}

func TestGeneratorPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { ErdosRenyi(0, 1, 1) },
		func() { Grid(0, 5) },
		func() { RMAT(0, 5, 1) },
		func() { RMAT(31, 5, 1) },
		func() { Build(-1, nil, false) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(8, 500, 7)
	b := RMAT(8, 500, 7)
	c := RMAT(8, 500, 8)
	diff := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different RMAT edges")
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical RMAT graphs")
	}
}

func TestGridSingleCell(t *testing.T) {
	if edges := Grid(1, 1); len(edges) != 0 {
		t.Fatalf("1×1 grid has %d edges, want 0", len(edges))
	}
	edges := Grid(1, 5) // a single row: 4 horizontal bonds
	if len(edges) != 4 {
		t.Fatalf("1×5 grid has %d edges, want 4", len(edges))
	}
}
