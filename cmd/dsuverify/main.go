// Command dsuverify is the linearizability stress driver (experiment E13 at
// scale): it pushes thousands of randomly scheduled concurrent histories —
// across every algorithm variant and several adversarial schedulers —
// through the exhaustive Wing–Gong checker and the per-step Lemma 3.1
// invariant checker. It exits non-zero on the first violation, printing the
// offending variant, scheduler, and seed so the failure replays exactly.
//
// Usage:
//
//	dsuverify [-histories 2000] [-n 8] [-p 3] [-ops 4] [-seed 0] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/apram"
	"repro/internal/core"
	"repro/internal/linearize"
	"repro/internal/randutil"
	"repro/internal/sched"
	"repro/internal/simdsu"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "dsuverify: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		histories = flag.Int("histories", 2000, "histories per variant/scheduler pair")
		n         = flag.Int("n", 8, "elements (small keeps conflicts dense)")
		p         = flag.Int("p", 3, "processes")
		opsEach   = flag.Int("ops", 4, "operations per process")
		seed      = flag.Uint64("seed", 0, "base seed")
		verbose   = flag.Bool("v", false, "progress output")
	)
	flag.Parse()

	if *p**opsEach > linearize.MaxOps {
		return fmt.Errorf("p*ops = %d exceeds checker limit %d", *p**opsEach, linearize.MaxOps)
	}

	variants := []core.Config{
		{Find: core.FindNaive}, {Find: core.FindOneTry}, {Find: core.FindTwoTry},
		{Find: core.FindHalving}, {Find: core.FindCompress},
		{Find: core.FindNaive, EarlyTermination: true},
		{Find: core.FindOneTry, EarlyTermination: true},
		{Find: core.FindTwoTry, EarlyTermination: true},
	}
	schedulers := []struct {
		name string
		mk   func(seed uint64) apram.Scheduler
	}{
		{"random", func(s uint64) apram.Scheduler { return sched.NewRandom(s) }},
		{"lockstep", func(uint64) apram.Scheduler { return sched.NewLockstep() }},
		{"stall0", func(s uint64) apram.Scheduler { return sched.NewStall(sched.NewRandom(s), 0) }},
		{"weighted", func(s uint64) apram.Scheduler { return sched.NewWeighted(s, []float64{100, 1, 0.01}) }},
	}

	start := time.Now()
	checked := 0
	for _, vc := range variants {
		vcName := vc.Find.String()
		if vc.EarlyTermination {
			vcName += "+early"
		}
		for _, sc := range schedulers {
			for h := 0; h < *histories; h++ {
				runSeed := *seed + uint64(h)
				rng := randutil.NewXoshiro256(runSeed * 7919)
				perProc := make([][]workload.Op, *p)
				for i := range perProc {
					perProc[i] = workload.Mixed(*n, *opsEach, 0.6, rng.Next())
				}
				cfg := vc
				cfg.Seed = runSeed
				res, err := simdsu.Run(simdsu.New(*n, cfg), perProc, simdsu.Options{
					Scheduler:       sc.mk(runSeed),
					Record:          true,
					CheckInvariants: true,
				})
				if err != nil {
					return fmt.Errorf("invariant violation: variant=%s sched=%s seed=%d: %w",
						vcName, sc.name, runSeed, err)
				}
				if _, err := linearize.Check(*n, res.History); err != nil {
					return fmt.Errorf("linearizability violation: variant=%s sched=%s seed=%d: %w",
						vcName, sc.name, runSeed, err)
				}
				checked++
			}
			if *verbose {
				fmt.Printf("%-16s %-10s %d histories OK\n", vcName, sc.name, *histories)
			}
		}
	}
	fmt.Printf("dsuverify: %d histories across %d variants × %d schedulers verified in %v — all linearizable, all invariants held\n",
		checked, len(variants), len(schedulers), time.Since(start).Round(time.Millisecond))
	return nil
}
