// Command dsuserve runs the network front end: an HTTP server exposing
// tenant-scoped disjoint-set universes — batched UniteAll/SameSetAll and
// streaming ingestion over the wire protocol's binary framing (or its
// JSON debug mode) — to remote clients.
//
// Tenants are created remotely (POST /v1/tenants) or preloaded with
// repeatable -tenant flags:
//
//	dsuserve -addr :8080 \
//	    -tenant alpha:1000000 \
//	    -tenant beta:4000000:8:auto \
//	    -tenant gamma:1000000:lockfree
//
// The spec is name:n[:kind[:find]] — kind is a shard count (0 means a
// flat structure) or a structure-kind name per dsu.ParseKind ("flat",
// "sharded", "lockfree"); find names a strategy per dsu.ParseFindStrategy
// ("auto" turns on the adaptive compaction policy). Lock-free tenants
// serve their RPCs and stream batches truly concurrently — no per-tenant
// queueing.
//
// With -data the server is durable: every tenant keeps a chunked,
// CRC-verified write-ahead log in the directory (<tenant>.dsulog), every
// mutation batch is logged before it is acknowledged (-fsync selects
// group commit, per-batch fsync, or OS-buffered), tenants snapshot
// automatically every -checkpoint-every logged edges (or on demand via
// POST .../checkpoint), and a restart — graceful or kill -9 — recovers
// every tenant before the listener opens. Inspect the logs with the
// dsulog command.
//
// With -metrics the process instruments every tenant and the front end
// itself and serves a Prometheus text exposition on /metrics — the dsu
// per-tenant series (batches, edges, merges, find steps, CAS retries,
// batch-latency histograms, stream gauges) and the server series
// (request latency, active streams, wire frames/bytes, budget pressure)
// on one page — plus a per-tenant totals line in the shutdown log. With
// -trace every batch records a span tree (queue-wait, seal, dispatch,
// execute with per-worker attribution, reply-encode) into a per-tenant
// ring served as JSON on /debug/traces; batches slower than -trace-slow
// are retained in a flight recorder beyond the ring's churn. With -pprof
// it additionally mounts net/http/pprof under /debug/pprof/ and expvar
// under /debug/vars. All are off by default: observability is opt-in,
// and the uninstrumented hot path pays nothing.
//
// Logs are structured (log/slog): lifecycle events at Info, per-RPC
// lines carrying tenant, endpoint, and trace ID at Debug (suppressed by
// -quiet). -log-format selects the text or JSON handler.
//
// On SIGINT/SIGTERM the server shuts down cleanly: open stream
// connections have their contexts cancelled (clients receive
// loss-reporting end envelopes — the dsu layer's Flush/Close cancellation
// errors, surfaced over the wire), then the listener drains.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/dsu"
	"repro/internal/server"
)

// tenantFlags collects repeatable -tenant specs.
type tenantFlags []string

func (t *tenantFlags) String() string     { return strings.Join(*t, ",") }
func (t *tenantFlags) Set(v string) error { *t = append(*t, v); return nil }

// parseTenant parses name:n[:kind[:find]], where kind is a shard count
// (digits, 0 = flat) or a structure-kind name ("flat", "sharded",
// "lockfree" — validated by the spec's Options translation).
func parseTenant(spec string) (server.TenantSpec, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || len(parts) > 4 {
		return server.TenantSpec{}, fmt.Errorf("tenant spec %q: want name:n[:kind[:find]]", spec)
	}
	out := server.TenantSpec{Name: parts[0]}
	n, err := strconv.Atoi(parts[1])
	if err != nil {
		return server.TenantSpec{}, fmt.Errorf("tenant spec %q: bad n: %v", spec, err)
	}
	out.N = n
	if len(parts) >= 3 && parts[2] != "" {
		if shards, err := strconv.Atoi(parts[2]); err == nil {
			out.Shards = shards
		} else {
			out.Kind = parts[2]
		}
	}
	if len(parts) == 4 {
		out.Find = parts[3]
	}
	return out, nil
}

// newLogger builds the process logger: text or JSON handler on stderr,
// Debug level unless quiet (per-RPC lines ride at Debug).
func newLogger(format string, quiet bool) (*slog.Logger, error) {
	lvl := slog.LevelDebug
	if quiet {
		lvl = slog.LevelInfo
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q: want text or json", format)
	}
}

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		tenants   tenantFlags
		maxFrame  = flag.Int("maxframe", 0, "wire frame size limit in bytes (0 = 16 MiB)")
		inflight  = flag.Int("inflight", 4, "per-tenant in-flight batch bound")
		buffer    = flag.Int("buffer", 0, "default stream seal threshold in edges (0 = 65536)")
		maxN      = flag.Int("maxn", 0, "largest universe a remote create may request (0 = 2²⁶)")
		drain     = flag.Duration("drain", 10*time.Second, "shutdown drain timeout")
		quiet     = flag.Bool("quiet", false, "suppress per-request (Debug) logging")
		logFormat = flag.String("log-format", "text", "log output format: text or json")
		withMet   = flag.Bool("metrics", false, "instrument tenants and the server; serve Prometheus text on /metrics")
		withTrace = flag.Bool("trace", false, "trace every batch into per-tenant rings; serve JSON on /debug/traces")
		traceSlow = flag.Duration("trace-slow", 0, "flight-recorder latency threshold with -trace (0 = 100ms)")
		withProf  = flag.Bool("pprof", false, "mount net/http/pprof on /debug/pprof/ and expvar on /debug/vars")
		dataDir   = flag.String("data", "", "durability directory: per-tenant write-ahead logs, recovery on start ('' = no persistence)")
		fsyncMode = flag.String("fsync", "group", "WAL durability policy with -data: group, none, or always")
		ckptEvery = flag.Int64("checkpoint-every", 1<<22, "snapshot a tenant after this many logged edges with -data (0 = on demand only)")
	)
	flag.Var(&tenants, "tenant", "preload a tenant, name:n[:kind[:find]] (repeatable)")
	flag.Parse()

	logger, err := newLogger(*logFormat, *quiet)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsuserve: %v\n", err)
		os.Exit(1)
	}
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	var met *dsu.Metrics
	var tracing *dsu.Tracing
	var regOpts []dsu.RegistryOption
	if *withMet {
		met = dsu.NewMetrics()
		regOpts = append(regOpts, dsu.WithMetrics(met))
	}
	if *withTrace {
		tracing = dsu.NewTracing(dsu.WithSlowThreshold(*traceSlow))
		regOpts = append(regOpts, dsu.WithTracing(tracing))
	}
	if *dataDir != "" {
		policy, err := dsu.ParseSyncPolicy(*fsyncMode)
		if err != nil {
			fatal("bad -fsync", "err", err)
		}
		regOpts = append(regOpts, dsu.WithDurability(*dataDir,
			dsu.WithSyncPolicy(policy), dsu.WithCheckpointEvery(*ckptEvery)))
	}
	reg := dsu.NewRegistry(regOpts...)
	if *dataDir != "" {
		// Recovery runs before the listener opens and before -tenant
		// preloads: every persisted tenant is back — latest snapshot plus
		// replayed tail — before the first request or flag can observe it.
		restored, err := reg.RestoreTenants()
		if err != nil {
			fatal("recovery failed", "err", err)
		}
		for _, name := range restored {
			u, _ := reg.Get(name)
			logger.Info("tenant recovered", "tenant", name, "n", u.N(),
				"kind", u.Kind(), "seq", u.Seq())
		}
	}
	for _, spec := range tenants {
		ts, err := parseTenant(spec)
		if err != nil {
			fatal("bad tenant flag", "err", err)
		}
		// The same spec→option translation remote creates use, so
		// preloaded and remotely created tenants cannot drift.
		opts, err := ts.Options()
		if err != nil {
			fatal("bad tenant spec", "tenant", ts.Name, "err", err)
		}
		if u, ok := reg.Get(ts.Name); ok {
			// Recovery already brought this tenant back under its log's
			// recorded configuration; the flag is satisfied if the sizes
			// agree (a mismatch means the operator changed the spec under a
			// tenant whose history says otherwise — refuse to guess).
			if u.N() != ts.N {
				fatal("preload conflicts with recovered tenant", "tenant", ts.Name,
					"flag_n", ts.N, "recovered_n", u.N())
			}
			continue
		}
		u, err := reg.Create(ts.Name, ts.N, opts...)
		if err != nil {
			fatal("tenant create failed", "tenant", ts.Name, "err", err)
		}
		logger.Info("tenant ready", "tenant", u.Name(), "n", u.N(),
			"kind", u.Kind(), "shards", u.Shards(), "adaptive", u.Adaptive())
	}

	srv := server.New(server.Config{
		Registry:     reg,
		MaxFrame:     *maxFrame,
		MaxInFlight:  *inflight,
		StreamBuffer: *buffer,
		MaxN:         *maxN,
		Metrics:      met,
		Log:          logger,
	})

	// The API stays at /; the observability endpoints mount beside it only
	// when asked for, and never on http.DefaultServeMux — what this process
	// serves is exactly what its flags say.
	var handler http.Handler = srv
	if *withMet || *withTrace || *withProf {
		mux := http.NewServeMux()
		mux.Handle("/", srv)
		if *withMet {
			mux.Handle("/metrics", met)
			logger.Info("metrics enabled", "endpoint", "/metrics")
		}
		if *withTrace {
			mux.Handle("/debug/traces", tracing)
			logger.Info("tracing enabled", "endpoint", "/debug/traces",
				"slow_threshold", tracing.SlowThreshold())
		}
		if *withProf {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			mux.Handle("/debug/vars", expvar.Handler())
			logger.Info("profiling enabled", "endpoints", "/debug/pprof/ /debug/vars")
		}
		handler = mux
	}
	hs := &http.Server{Addr: *addr, Handler: handler}

	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "tenants", reg.Len())
		errCh <- hs.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fatal("serve failed", "err", err)
	case s := <-sig:
		logger.Info("draining", "signal", s.String(), "budget", *drain)
	}

	// Stop cancels stream contexts so open connections end ingestion
	// promptly and answer loss-reporting end envelopes; Shutdown then
	// drains the listener and in-flight handlers.
	srv.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fatal("shutdown failed", "err", err)
	}
	// Seal every tenant's log (summary, footer, fsync): a sealed log
	// reopens through its index with no scan. A kill skips this — the next
	// start recovers by scanning the longest valid prefix instead.
	if *dataDir != "" {
		if err := reg.Close(); err != nil {
			fatal("sealing logs failed", "err", err)
		}
		logger.Info("logs sealed", "dir", *dataDir)
	}
	// One totals line per tenant — the lifetime accounting a scraper would
	// have read from /metrics, preserved in the shutdown log.
	if met != nil {
		for _, name := range reg.Names() {
			u, ok := reg.Get(name)
			if !ok {
				continue
			}
			tm := u.Metrics()
			logger.Info("tenant totals", "tenant", name,
				"unite_batches", tm.UniteBatches, "unite_edges", tm.UniteEdges,
				"merged", tm.Merged, "filtered", tm.Filtered,
				"query_batches", tm.QueryBatches, "query_pairs", tm.QueryPairs,
				"find_steps", tm.FindSteps, "cas_retries", tm.CASRetries, "sets", u.Sets())
		}
	}
	logger.Info("bye")
}
