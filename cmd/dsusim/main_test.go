package main

import (
	"testing"

	"repro/internal/core"
)

func TestParseFind(t *testing.T) {
	cases := map[string]core.Find{
		"naive":    core.FindNaive,
		"onetry":   core.FindOneTry,
		"twotry":   core.FindTwoTry,
		"halving":  core.FindHalving,
		"compress": core.FindCompress,
	}
	for name, want := range cases {
		got, err := parseFind(name)
		if err != nil || got != want {
			t.Errorf("parseFind(%q) = (%v, %v), want %v", name, got, err, want)
		}
	}
	if _, err := parseFind("bogus"); err == nil {
		t.Error("parseFind(bogus) accepted")
	}
}

func TestParseSched(t *testing.T) {
	for _, name := range []string{"roundrobin", "random", "lockstep", "stall", "weighted"} {
		s, err := parseSched(name, 1, 4)
		if err != nil || s == nil {
			t.Errorf("parseSched(%q) = (%v, %v)", name, s, err)
		}
	}
	if _, err := parseSched("bogus", 1, 4); err == nil {
		t.Error("parseSched(bogus) accepted")
	}
}
