// Command dsusim drives the APRAM simulator directly: pick an algorithm
// variant, a scheduler, and a workload; get exact shared-memory step counts
// (the paper's total-work metric), per-process balance, and — optionally —
// per-step invariant checking and linearizability verification of the
// recorded history.
//
// Usage:
//
//	dsusim [-n 256] [-m 2048] [-p 8] [-find twotry] [-early]
//	       [-sched random] [-seed 1] [-unite-frac 0.6]
//	       [-check] [-linearize] [-v]
//
// Example:
//
//	dsusim -n 64 -m 200 -p 4 -find onetry -sched lockstep -check
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/linearize"
	"repro/internal/sched"
	"repro/internal/simdsu"
	"repro/internal/stats"
	"repro/internal/workload"

	"repro/internal/apram"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "dsusim: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n          = flag.Int("n", 256, "elements")
		m          = flag.Int("m", 2048, "operations")
		p          = flag.Int("p", 8, "processes")
		findName   = flag.String("find", "twotry", "find variant: naive|onetry|twotry|halving|compress")
		early      = flag.Bool("early", false, "early-termination variants (Algorithms 6/7)")
		schedName  = flag.String("sched", "random", "scheduler: roundrobin|random|lockstep|stall|weighted")
		seed       = flag.Uint64("seed", 1, "seed for workload, node order, and scheduler")
		uniteFrac  = flag.Float64("unite-frac", 0.6, "fraction of operations that are Unites")
		check      = flag.Bool("check", false, "check Lemma 3.1 invariants on every step")
		doLin      = flag.Bool("linearize", false, "record history and verify linearizability (small runs only)")
		verbose    = flag.Bool("v", false, "print per-process step counts")
		maxStepsFl = flag.Int64("max-steps", 0, "step bound (0 = default)")
	)
	flag.Parse()

	find, err := parseFind(*findName)
	if err != nil {
		return err
	}
	scheduler, err := parseSched(*schedName, *seed, *p)
	if err != nil {
		return err
	}
	if *doLin && *m > linearize.MaxOps {
		return fmt.Errorf("-linearize needs m ≤ %d (got %d)", linearize.MaxOps, *m)
	}

	cfg := core.Config{Find: find, EarlyTermination: *early, Seed: *seed}
	sim := simdsu.New(*n, cfg)
	ops := workload.Mixed(*n, *m, *uniteFrac, *seed+100)
	res, err := simdsu.Run(sim, workload.SplitRoundRobin(ops, *p), simdsu.Options{
		Scheduler:       scheduler,
		MaxSteps:        *maxStepsFl,
		Record:          *doLin,
		CheckInvariants: *check,
	})
	if err != nil {
		return err
	}

	fmt.Printf("variant=%s early=%v sched=%s n=%d m=%d p=%d\n",
		find, *early, *schedName, *n, *m, *p)
	fmt.Printf("total steps: %d (%.3f per op)\n", res.Total, float64(res.Total)/float64(*m))
	if *verbose {
		tb := stats.NewTable("process", "steps", "share %")
		for i, s := range res.Steps {
			tb.AddRowf(i, s, 100*float64(s)/float64(res.Total))
		}
		fmt.Print(tb)
	}
	if *check {
		fmt.Println("invariants: OK (Lemma 3.1 held on every step)")
	}
	if *doLin {
		if _, err := linearize.Check(*n, res.History); err != nil {
			return err
		}
		fmt.Printf("linearizability: OK (%d-op history)\n", len(res.History))
	}
	return nil
}

func parseFind(name string) (core.Find, error) {
	switch name {
	case "naive":
		return core.FindNaive, nil
	case "onetry":
		return core.FindOneTry, nil
	case "twotry":
		return core.FindTwoTry, nil
	case "halving":
		return core.FindHalving, nil
	case "compress":
		return core.FindCompress, nil
	default:
		return 0, fmt.Errorf("unknown find variant %q", name)
	}
}

func parseSched(name string, seed uint64, p int) (apram.Scheduler, error) {
	switch name {
	case "roundrobin":
		return sched.NewRoundRobin(), nil
	case "random":
		return sched.NewRandom(seed), nil
	case "lockstep":
		return sched.NewLockstep(), nil
	case "stall":
		return sched.NewStall(sched.NewRandom(seed), 0), nil
	case "weighted":
		weights := make([]float64, p)
		w := 1.0
		for i := range weights {
			weights[i] = w
			w *= 4
		}
		return sched.NewWeighted(seed, weights), nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q", name)
	}
}
