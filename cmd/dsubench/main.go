// Command dsubench regenerates the experiment tables recorded in
// EXPERIMENTS.md: one experiment per theorem/construction of Jayanti &
// Tarjan (PODC 2016), per the index in DESIGN.md.
//
// Usage:
//
//	dsubench [-exp E1,E4] [-quick] [-seed N] [-maxprocs P] [-list]
//
// With no -exp it runs everything. Output is GitHub-flavoured Markdown on
// stdout, suitable for pasting into EXPERIMENTS.md. Experiment ids match
// case-insensitively, and the systems tables answer to aliases:
//
//	dsubench -exp batch   # E18, batch-engine throughput
//	dsubench -exp shard   # E19, sharded DSU vs flat engine
//	dsubench -exp stream  # E20, stream vs blocking-batch ingestion
//	dsubench -exp adapt   # E21, adaptive vs fixed find variants
//	dsubench -exp lockfree # E23, lock-free backend vs flat and sharded
//	dsubench -exp fastpath # E24, pipelined pooled wire path vs per-RPC
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "dsubench: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expFlag  = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		quick    = flag.Bool("quick", false, "smaller problem sizes")
		seed     = flag.Uint64("seed", 0, "workload seed offset")
		maxProcs = flag.Int("maxprocs", 0, "cap process sweeps (default min(GOMAXPROCS, 24))")
		list     = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %-60s (%s)\n", e.ID, e.Title, e.Ref)
		}
		return nil
	}

	var selected []bench.Experiment
	if *expFlag == "" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(id)
			e, ok := bench.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}

	cfg := bench.Config{Out: os.Stdout, Quick: *quick, Seed: *seed, MaxProcs: *maxProcs}
	fmt.Printf("# dsubench — %d experiment(s), GOMAXPROCS=%d, quick=%v, seed=%d\n",
		len(selected), runtime.GOMAXPROCS(0), *quick, *seed)
	start := time.Now()
	for _, e := range selected {
		expStart := time.Now()
		if err := e.Run(cfg); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Printf("\n[%s completed in %v]\n", e.ID, time.Since(expStart).Round(time.Millisecond))
	}
	fmt.Printf("\nAll done in %v.\n", time.Since(start).Round(time.Millisecond))
	return nil
}
