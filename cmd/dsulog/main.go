// Command dsulog inspects durable-tenant write-ahead logs (the
// <tenant>.dsulog files a durable dsuserve keeps under -data) without
// the server: structural summaries, full-scan verification, record
// dumps, and deterministic replay against the paper's sequential
// algorithm as an oracle.
//
// Usage:
//
//	dsulog info <log>...              header, indexes, seal state
//	dsulog verify [-strict] <log>...  full CRC scan; -strict rejects torn logs
//	dsulog cat [-edges] <log>         one line per record (frames with -edges)
//	dsulog replay [-at seq] [-labels] <log>
//	                                  oracle replay; -labels prints the
//	                                  canonical labelling as JSON
//
// verify re-reads every chunk and snapshot through the scan path — CRCs,
// frame contiguity, edge bounds — and, when the log is sealed, cross-
// checks the footer's index against the scan's, so a log that verifies
// here is a log recovery will accept. replay drives the logged batches
// through the sequential oracle in sequence order and checks every
// snapshot record against the oracle's partition at that point; its
// -labels output is byte-identical to the server's /labels endpoint for
// the same history, which is what the CI crash-recovery smoke compares.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/exec"
	"repro/internal/seqdsu"
	"repro/internal/wal"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	var err error
	switch cmd := os.Args[1]; cmd {
	case "info":
		err = runInfo(os.Args[2:], os.Stdout)
	case "verify":
		err = runVerify(os.Args[2:], os.Stdout)
	case "cat":
		err = runCat(os.Args[2:], os.Stdout)
	case "replay":
		err = runReplay(os.Args[2:], os.Stdout)
	case "-h", "-help", "--help", "help":
		usage(os.Stdout)
		return
	default:
		fmt.Fprintf(os.Stderr, "dsulog: unknown command %q\n", cmd)
		usage(os.Stderr)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsulog: %v\n", err)
		os.Exit(1)
	}
}

func usage(w io.Writer) {
	fmt.Fprintf(w, `dsulog inspects durable-tenant write-ahead logs.

  dsulog info <log>...              header, indexes, seal state
  dsulog verify [-strict] <log>...  full CRC scan (-strict rejects torn logs)
  dsulog cat [-edges] <log>         one line per record
  dsulog replay [-at seq] [-labels] <log>
`)
}

// kindName spells a log header's structure kind (the dsu.Kind values,
// spelled here so the package stays dependency-light).
func kindName(k uint8) string {
	switch k {
	case 1:
		return "flat"
	case 2:
		return "sharded"
	case 3:
		return "lockfree"
	default:
		return fmt.Sprintf("kind(%d)", k)
	}
}

// runInfo prints one structural summary per log: the recorded tenant
// configuration, the chunk and snapshot indexes' shape, and whether the
// log is sealed or torn (and how many trailing bytes recovery would
// drop).
func runInfo(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("info: no logs given")
	}
	for _, path := range fs.Args() {
		r, err := wal.OpenReader(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		m := r.Meta()
		edges := 0
		for _, ci := range r.Chunks() {
			edges += ci.Edges
		}
		fmt.Fprintf(out, "%s\n", path)
		fmt.Fprintf(out, "  tenant      %s\n", m.Tenant)
		fmt.Fprintf(out, "  config      n=%d kind=%s find=%d early=%v shards=%d seed=%#x\n",
			m.N, kindName(m.Kind), m.Find, m.Early, m.Shards, m.Seed)
		fmt.Fprintf(out, "  fingerprint %#x\n", m.Fingerprint())
		fmt.Fprintf(out, "  batches     %d (edges %d, chunks %d)\n", r.LastSeq(), edges, len(r.Chunks()))
		fmt.Fprintf(out, "  snapshots   %d", len(r.Snapshots()))
		if snaps := r.Snapshots(); len(snaps) > 0 {
			fmt.Fprintf(out, " (latest at seq %d)", snaps[len(snaps)-1].Seq)
		}
		fmt.Fprintln(out)
		if r.Clean() {
			fmt.Fprintf(out, "  state       sealed (summary + footer, seekable)\n")
		} else {
			fmt.Fprintf(out, "  state       torn: recovery keeps %d bytes, drops %d\n", r.DataEnd(), r.Discarded())
		}
	}
	return nil
}

// runVerify scans each log end to end — every chunk and snapshot record
// re-read and CRC-checked, frame sequence contiguity and edge bounds
// enforced — and cross-checks a sealed log's footer index against the
// scan. Torn logs pass by default (a torn tail is exactly what crash
// recovery handles); -strict makes them an error, the mode for logs that
// were sealed by a graceful shutdown and must prove it.
func runVerify(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	strict := fs.Bool("strict", false, "fail on torn logs (unsealed tail, discarded bytes)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("verify: no logs given")
	}
	for _, path := range fs.Args() {
		if err := verifyLog(path, *strict, out); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	return nil
}

func verifyLog(path string, strict bool, out io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	// The scan path is the ground truth: it trusts no index and re-checks
	// every record.
	sc, err := wal.ScanReader(data)
	if err != nil {
		return err
	}
	edges := 0
	for _, ci := range sc.Chunks() {
		if err := sc.ReadChunk(ci, func(uint64, []exec.Edge) error { return nil }); err != nil {
			return fmt.Errorf("chunk at offset %d: %w", ci.Offset, err)
		}
		edges += ci.Edges
	}
	for _, si := range sc.Snapshots() {
		if _, err := sc.ReadSnapshot(si); err != nil {
			return fmt.Errorf("snapshot at offset %d: %w", si.Offset, err)
		}
	}
	if sc.Clean() {
		// A sealed log also opens through its footer; the two paths must
		// index identically or the seek shortcut would lie.
		ft, err := wal.NewReader(data)
		if err != nil {
			return fmt.Errorf("footer path: %w", err)
		}
		if len(ft.Chunks()) != len(sc.Chunks()) || len(ft.Snapshots()) != len(sc.Snapshots()) ||
			ft.LastSeq() != sc.LastSeq() {
			return fmt.Errorf("footer index disagrees with scan: %d/%d chunks, %d/%d snapshots",
				len(ft.Chunks()), len(sc.Chunks()), len(ft.Snapshots()), len(sc.Snapshots()))
		}
		for i, ci := range ft.Chunks() {
			if ci != sc.Chunks()[i] {
				return fmt.Errorf("footer chunk %d disagrees with scan: %+v vs %+v", i, ci, sc.Chunks()[i])
			}
		}
		for i, si := range ft.Snapshots() {
			if si != sc.Snapshots()[i] {
				return fmt.Errorf("footer snapshot %d disagrees with scan: %+v vs %+v", i, si, sc.Snapshots()[i])
			}
		}
	} else if strict {
		return fmt.Errorf("torn log: %d trailing bytes would be discarded on recovery", sc.Discarded())
	}
	state := "sealed"
	if !sc.Clean() {
		state = fmt.Sprintf("torn, %d bytes discarded", sc.Discarded())
	}
	fmt.Fprintf(out, "%s: ok (%d batches, %d edges, %d chunks, %d snapshots, %s)\n",
		path, sc.LastSeq(), edges, len(sc.Chunks()), len(sc.Snapshots()), state)
	return nil
}

// runCat prints one line per indexed record in file order; -edges also
// prints every frame's edge list.
func runCat(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cat", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	withEdges := fs.Bool("edges", false, "print each batch's edges")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("cat: want exactly one log")
	}
	path := fs.Arg(0)
	r, err := wal.OpenReader(path)
	if err != nil {
		return err
	}
	m := r.Meta()
	fmt.Fprintf(out, "header  tenant=%s n=%d kind=%s seed=%#x\n", m.Tenant, m.N, kindName(m.Kind), m.Seed)
	snaps := r.Snapshots()
	si := 0
	for _, ci := range r.Chunks() {
		fmt.Fprintf(out, "chunk   offset=%d seq=%d..%d edges=%d\n", ci.Offset, ci.FirstSeq, ci.LastSeq, ci.Edges)
		if *withEdges {
			err := r.Replay(ci.FirstSeq-1, ci.LastSeq, func(seq uint64, edges []exec.Edge) error {
				fmt.Fprintf(out, "  batch seq=%d count=%d", seq, len(edges))
				for _, e := range edges {
					fmt.Fprintf(out, " (%d,%d)", e.X, e.Y)
				}
				fmt.Fprintln(out)
				return nil
			})
			if err != nil {
				return err
			}
		}
		// Snapshots interleave with chunks in sequence order.
		for si < len(snaps) && snaps[si].Seq <= ci.LastSeq {
			fmt.Fprintf(out, "snapshot offset=%d seq=%d\n", snaps[si].Offset, snaps[si].Seq)
			si++
		}
	}
	for ; si < len(snaps); si++ {
		fmt.Fprintf(out, "snapshot offset=%d seq=%d\n", snaps[si].Offset, snaps[si].Seq)
	}
	if r.Clean() {
		fmt.Fprintf(out, "footer  sealed dataEnd=%d\n", r.DataEnd())
	} else {
		fmt.Fprintf(out, "torn    dataEnd=%d discarded=%d\n", r.DataEnd(), r.Discarded())
	}
	return nil
}

// runReplay replays the log through the sequential oracle — the paper's
// algorithm, one unite at a time, under the seed the header records —
// and validates every snapshot record against the oracle's partition at
// that sequence. It is the independent check that the log's history is
// self-consistent: chunked batches and flattened snapshots describe one
// partition evolution. -at stops after the given batch; -labels prints
// the final canonical labelling as JSON (matching the server's /labels
// output for the same history byte for byte).
func runReplay(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	at := fs.Uint64("at", 0, "replay up to this batch (0 = whole log)")
	labels := fs.Bool("labels", false, "print the resulting canonical labels as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("replay: want exactly one log")
	}
	r, err := wal.OpenReader(fs.Arg(0))
	if err != nil {
		return err
	}
	m := r.Meta()
	upTo := r.LastSeq()
	if *at > 0 {
		if *at > upTo {
			return fmt.Errorf("replay: log ends at sequence %d, cannot replay to %d", upTo, *at)
		}
		upTo = *at
	}
	// The oracle replays under the logged seed, so random linking makes
	// the same coin flips the tenant's own structure made — and the
	// canonical labelling is seed-independent anyway, which is what makes
	// this an oracle for any backend kind.
	oracle := seqdsu.New(m.N, seqdsu.LinkRandom, seqdsu.CompactSplitting, m.Seed)
	snaps := r.Snapshots()
	si := 0
	var edges int64
	checkSnaps := func(seq uint64) error {
		for si < len(snaps) && snaps[si].Seq <= seq {
			if snaps[si].Seq == seq {
				sr, err := r.ReadSnapshot(snaps[si])
				if err != nil {
					return err
				}
				want := oracle.CanonicalLabels()
				got := seqdsu.CanonicalizeParents(sr.Parents)
				for i := range got {
					if got[i] != want[i] {
						return fmt.Errorf("snapshot at seq %d disagrees with oracle replay at element %d", seq, i)
					}
				}
				if !*labels {
					// -labels output must stay byte-identical to /labels:
					// snapshots are still validated, just silently.
					fmt.Fprintf(out, "snapshot at seq %d: matches oracle\n", seq)
				}
			}
			si++
		}
		return nil
	}
	if err := checkSnaps(0); err != nil { // a snapshot of the empty partition
		return err
	}
	err = r.Replay(0, upTo, func(seq uint64, batch []exec.Edge) error {
		for _, e := range batch {
			oracle.Unite(e.X, e.Y)
		}
		edges += int64(len(batch))
		return checkSnaps(seq)
	})
	if err != nil {
		return err
	}
	if *labels {
		// json.Encoder output (one line, trailing newline) matches the
		// server's /labels encoding exactly — CI diffs the two.
		return json.NewEncoder(out).Encode(oracle.CanonicalLabels())
	}
	fmt.Fprintf(out, "replayed %d batches (%d edges): %d sets\n", upTo, edges, oracle.Sets())
	return nil
}
