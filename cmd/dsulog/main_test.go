package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/dsu"
)

// buildLog grows a durable tenant and seals its log, returning the log
// path, the batches it acknowledged, and the final canonical labels.
func buildLog(t *testing.T, n, batches int, checkpointAt int) (string, []uint32) {
	t.Helper()
	dir := t.TempDir()
	reg := dsu.NewRegistry(dsu.WithDurability(dir))
	u, err := reg.Create("t", n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < batches; i++ {
		edges := make([]dsu.Edge, 1+rng.Intn(10))
		for j := range edges {
			edges[j] = dsu.Edge{X: uint32(rng.Intn(n)), Y: uint32(rng.Intn(n))}
		}
		if _, err := u.UniteAll(dsu.UniteRequest{Edges: edges}); err != nil {
			t.Fatal(err)
		}
		if i+1 == checkpointAt {
			if err := u.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	labels := u.CanonicalLabels()
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, "t.dsulog"), labels
}

func TestInfoAndVerifySealed(t *testing.T) {
	path, _ := buildLog(t, 200, 12, 6)

	var out bytes.Buffer
	if err := runInfo([]string{path}, &out); err != nil {
		t.Fatalf("info: %v", err)
	}
	for _, want := range []string{"tenant      t", "batches     12", "sealed"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("info output missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	if err := runVerify([]string{"-strict", path}, &out); err != nil {
		t.Fatalf("verify -strict: %v", err)
	}
	if !strings.Contains(out.String(), "ok (12 batches") {
		t.Errorf("verify output: %s", out.String())
	}
}

func TestVerifyTorn(t *testing.T) {
	path, _ := buildLog(t, 100, 8, 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(t.TempDir(), "torn.dsulog")
	if err := os.WriteFile(torn, data[:len(data)-40], 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := runVerify([]string{torn}, &out); err != nil {
		t.Fatalf("verify (lenient) on a torn log: %v", err)
	}
	if !strings.Contains(out.String(), "torn") {
		t.Errorf("verify output should report the tear: %s", out.String())
	}
	if err := runVerify([]string{"-strict", torn}, &out); err == nil {
		t.Fatalf("verify -strict accepted a torn log")
	}

	// A corrupted record body must fail verification outright.
	bad := filepath.Join(t.TempDir(), "bad.dsulog")
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0xff
	if err := os.WriteFile(bad, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	var devnull bytes.Buffer
	if err := runVerify([]string{"-strict", bad}, &devnull); err == nil {
		t.Fatalf("verify -strict accepted a corrupted log")
	}
}

func TestCat(t *testing.T) {
	path, _ := buildLog(t, 50, 5, 3)
	var out bytes.Buffer
	if err := runCat([]string{"-edges", path}, &out); err != nil {
		t.Fatalf("cat: %v", err)
	}
	s := out.String()
	for _, want := range []string{"header  tenant=t", "chunk   offset=", "batch seq=1", "snapshot offset=", "footer  sealed"} {
		if !strings.Contains(s, want) {
			t.Errorf("cat output missing %q:\n%s", want, s)
		}
	}
}

// TestReplayMatchesStructure: the oracle replay reproduces exactly the
// labelling the live structure acknowledged, snapshot records validate
// against the oracle, and -labels emits the server's /labels encoding.
func TestReplayMatchesStructure(t *testing.T) {
	path, labels := buildLog(t, 300, 15, 9)

	var out bytes.Buffer
	if err := runReplay([]string{path}, &out); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !strings.Contains(out.String(), "snapshot at seq 9: matches oracle") {
		t.Errorf("replay did not validate the snapshot:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "replayed 15 batches") {
		t.Errorf("replay output: %s", out.String())
	}

	out.Reset()
	if err := runReplay([]string{"-labels", path}, &out); err != nil {
		t.Fatalf("replay -labels: %v", err)
	}
	var want bytes.Buffer
	if err := json.NewEncoder(&want).Encode(labels); err != nil {
		t.Fatal(err)
	}
	if out.String() != want.String() {
		t.Fatalf("replay -labels output differs from the structure's labelling")
	}

	// -at replays a prefix; past-the-end is an error.
	out.Reset()
	if err := runReplay([]string{"-at", "5", path}, &out); err != nil {
		t.Fatalf("replay -at 5: %v", err)
	}
	if !strings.Contains(out.String(), "replayed 5 batches") {
		t.Errorf("replay -at output: %s", out.String())
	}
	if err := runReplay([]string{"-at", "99", path}, &out); err == nil {
		t.Fatalf("replay past the log's end succeeded")
	}
}

func TestNotALog(t *testing.T) {
	junk := filepath.Join(t.TempDir(), "junk.dsulog")
	if err := os.WriteFile(junk, []byte("not a log at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := runInfo([]string{junk}, &out); err == nil {
		t.Fatalf("info accepted junk")
	}
	if err := runVerify([]string{junk}, &out); err == nil {
		t.Fatalf("verify accepted junk")
	}
	if err := runReplay([]string{junk}, &out); err == nil {
		t.Fatalf("replay accepted junk")
	}
}
