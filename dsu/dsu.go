// Package dsu is a concurrent, wait-free disjoint-set-union (union-find)
// library implementing Jayanti & Tarjan, "A Randomized Concurrent Algorithm
// for Disjoint Set Union" (PODC 2016).
//
// A DSU maintains a partition of the elements 0..n−1 under Unite (merge two
// sets) and SameSet (are two elements together?). All operations are safe
// for concurrent use from any number of goroutines, are linearizable, and
// are wait-free: an operation completes in a bounded number of its own steps
// regardless of what other goroutines do. Under random linking, every
// operation takes O(log n) steps with high probability, and with the default
// two-try splitting the expected total work for m operations by p processes
// is Θ(m(α(n, m/np) + log(np/m + 1))) — effectively linear speedup when all
// processes stay busy.
//
// # Quick start
//
//	d := dsu.New(1000)
//	d.Unite(1, 2)
//	d.Unite(2, 3)
//	d.SameSet(1, 3) // true
//
// Variants from the paper are selected with options:
//
//	d := dsu.New(n, dsu.WithFind(dsu.OneTrySplitting), dsu.WithEarlyTermination())
//
// For workloads that create elements on line, NewDynamic provides MakeSet
// (lock-free; see the paper's Section 3 remark). For universes past one
// parent array's cache footprint, NewSharded partitions the elements
// across per-shard engines with cross-shard reconciliation (see Sharded).
// For genuinely concurrent mutation — goroutines issuing point operations
// and batches with no coordination, the paper's own regime — NewLockFree
// runs the algorithm as a lock-free serving structure whose operations
// may overlap arbitrarily (see LockFree and ConcurrentBackend). For edges
// that arrive over time, NewStream wraps any structure in an asynchronous
// ingestion front: pushes accumulate into double-buffered batches executed
// in the background, with backpressure and per-batch completion callbacks
// (see Stream; over a ConcurrentBackend, WithConcurrentBatches overlaps
// the sealed batches themselves).
//
// All structure kinds implement the common Backend interface and can be
// created by name through Registry/Universe with WithKind (flat, sharded,
// lockfree) — the tenant vocabulary the network front end serves.
//
// Observability is opt-in and free when off. WithMetrics attaches a
// Metrics registry (per-tenant counters, latency histograms, Prometheus
// text exposition); WithTracing attaches a Tracing registry that records
// a span tree for every batch — queue-wait, seal, dispatch, execute with
// per-worker attribution, reply-encode — into per-tenant rings plus a
// slow-batch flight recorder, readable via Universe.Traces and
// Universe.SlowTraces or served as JSON (Tracing is an http.Handler).
// Trace context propagates across the wire protocol, so a remote
// client's batch and the server's work connect into one trace. Both
// layers ride the same execution seams: every ingestion path is covered
// with zero caller involvement, and the uninstrumented hot path pays
// one nil check.
package dsu

import (
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exec"
)

// FindStrategy selects how Find compacts the paths it traverses. The
// default, TwoTrySplitting, carries the paper's best proven work bound
// (Theorem 5.1).
type FindStrategy int

const (
	// NoCompaction follows parent pointers without modifying them
	// (Algorithm 1). Simplest; O(log n) per operation w.h.p. (Theorem 4.3).
	NoCompaction FindStrategy = iota + 1
	// OneTrySplitting tries once to swing each visited node's parent to its
	// grandparent (Algorithm 4); bound of Theorem 5.2.
	OneTrySplitting
	// TwoTrySplitting retries each parent swing once before advancing
	// (Algorithm 5); bound of Theorem 5.1, tight by Theorem 5.4.
	TwoTrySplitting
	// Halving jumps to grandparents as it compacts, the compaction of
	// Anderson & Woll; provided for comparison (Section 3 shows it cannot
	// beat splitting concurrently).
	Halving
	// Compression is a concurrent two-pass path compression, the variant
	// Section 6 conjectures retains the splitting bounds.
	Compression
	// FindAuto selects the adaptive compaction policy instead of a fixed
	// variant: point operations and mutation batches run TwoTrySplitting
	// (the paper's best-bound compacting variant), while query batches
	// (SameSetAll) downgrade to OneTrySplitting or NoCompaction whenever
	// the execution layer's flatness estimator says the forest is flat —
	// after a big UniteAll, compaction CASes are pure overhead — and
	// restore compaction once mutation batches churn it. The partition and
	// every answer are identical to any fixed variant's; only the work
	// changes. WithAdaptiveFind() is shorthand for WithFind(FindAuto).
	FindAuto
)

// String returns the strategy name used in the paper and experiment tables.
func (f FindStrategy) String() string {
	if f == FindAuto {
		return "auto"
	}
	return coreFind(f).String()
}

func coreFind(f FindStrategy) core.Find {
	switch f {
	case NoCompaction:
		return core.FindNaive
	case OneTrySplitting:
		return core.FindOneTry
	case TwoTrySplitting:
		return core.FindTwoTry
	case Halving:
		return core.FindHalving
	case Compression:
		return core.FindCompress
	case FindAuto:
		// The adaptive mode's base (mutation-batch) variant; the executor
		// downgrades query batches from here.
		return core.FindTwoTry
	default:
		panic("dsu: unknown FindStrategy")
	}
}

// Stats tallies the shared-memory work of counted operations: parent-pointer
// loads, CAS attempts and failures, find steps, retry rounds, completed
// finds, successful links, path-compaction rewrites, and completed
// operations. Keep one Stats per goroutine and merge with Add; Work returns
// loads + CAS attempts, the paper's total-work metric.
type Stats = core.Stats

// DSU is a concurrent wait-free disjoint-set structure over a fixed element
// universe 0..n−1. The zero value is not usable; call New. Methods may be
// called from any number of goroutines concurrently.
type DSU struct {
	c *core.DSU
	// x is the unified execution seam all batch, stream, and filter paths
	// route through (and, with FindAuto, the adaptive policy's home).
	x *exec.Executor
	// uni is the structure's anonymous Universe — the tenant-API layer the
	// batch and stream veneers phrase their calls through.
	uni *Universe
}

// New returns a DSU over n singleton elements 0..n−1. It panics if n is
// negative, n exceeds 2³¹−1, or the options are inconsistent (early
// termination is defined only for NoCompaction and the splitting
// strategies).
func New(n int, opts ...Option) *DSU {
	cfg := defaultConfig()
	for _, o := range opts {
		o.apply(&cfg)
	}
	c := core.New(n, core.Config{
		Find:             coreFind(cfg.find),
		EarlyTermination: cfg.early,
		Seed:             cfg.seed,
	})
	d := &DSU{c: c, x: exec.NewExecutor(engine.Flat{D: c}, cfg.find == FindAuto)}
	d.uni = &Universe{b: d}
	return d
}

// executor exposes the execution seam to the batch, stream, and filter
// paths (Backend).
func (d *DSU) executor() *exec.Executor { return d.x }

// universe exposes the anonymous Universe the veneers route through
// (Backend).
func (d *DSU) universe() *Universe { return d.uni }

// N returns the number of elements.
func (d *DSU) N() int { return d.c.N() }

// Find returns the root (canonical representative at the linearization
// point) of the set containing x. Note that roots change as sets merge;
// SameSet is the stable way to compare membership.
func (d *DSU) Find(x uint32) uint32 { return d.c.Find(x) }

// FindCounted is Find, accumulating work counters into st (st must not be
// shared between goroutines without synchronization).
func (d *DSU) FindCounted(x uint32, st *Stats) uint32 { return d.c.FindCounted(x, st) }

// SameSet reports whether x and y are in the same set. The result is
// linearizable: it was exact at an instant during the call.
func (d *DSU) SameSet(x, y uint32) bool { return d.c.SameSet(x, y) }

// SameSetCounted is SameSet with work accounting into st.
func (d *DSU) SameSetCounted(x, y uint32, st *Stats) bool { return d.c.SameSetCounted(x, y, st) }

// Unite merges the sets containing x and y. It reports whether this call
// performed the merge (false means the sets were already one at the
// linearization point, possibly merged by a concurrent Unite).
func (d *DSU) Unite(x, y uint32) bool { return d.c.Unite(x, y) }

// UniteCounted is Unite with work accounting into st.
func (d *DSU) UniteCounted(x, y uint32, st *Stats) bool { return d.c.UniteCounted(x, y, st) }

// Sets returns the number of sets. Call at quiescence (no concurrent
// Unites) for an exact answer.
func (d *DSU) Sets() int { return d.c.Sets() }

// CanonicalLabels returns, for every element, the minimum element of its
// set — a canonical naming of the partition. Call at quiescence.
func (d *DSU) CanonicalLabels() []uint32 { return d.c.CanonicalLabels() }

// Snapshot returns a copy of the parent-pointer forest, for analysis and
// debugging. Call at quiescence for a consistent picture.
func (d *DSU) Snapshot() []uint32 { return d.c.Snapshot() }

// Components materializes the partition as a slice of sets, each sorted
// ascending, ordered by their minimum elements. Call at quiescence. It runs
// in O(n) plus the allocation of the result.
func (d *DSU) Components() [][]uint32 { return componentsFromLabels(d.c.CanonicalLabels()) }

// componentsFromLabels buckets a canonical labelling into sorted sets
// ordered by their minima — the one materialization both structure kinds
// share (labels are minima, encountered in ascending element order).
func componentsFromLabels(labels []uint32) [][]uint32 {
	sizes := make(map[uint32]int, 16)
	for _, l := range labels {
		sizes[l]++
	}
	buckets := make(map[uint32][]uint32, len(sizes))
	for l, sz := range sizes {
		buckets[l] = make([]uint32, 0, sz)
	}
	var order []uint32
	for x, l := range labels {
		if uint32(x) == l {
			order = append(order, l) // canonical labels are minima, seen in ascending x order
		}
		buckets[l] = append(buckets[l], uint32(x))
	}
	out := make([][]uint32, 0, len(order))
	for _, l := range order {
		out = append(out, buckets[l])
	}
	return out
}

// ID returns x's position in the random linking order (fixed at New).
// Exposed for forest analysis; not needed for ordinary use.
func (d *DSU) ID(x uint32) uint32 { return d.c.ID(x) }

// Dynamic is a concurrent disjoint-set structure whose elements are created
// on line with MakeSet, per the paper's Section 3 remark and Section 7:
// each new element draws a random 64-bit priority (index-tie-broken) that
// fixes its place in the linking order. With unbounded MakeSets the
// structure is lock-free rather than wait-free; this implementation bounds
// the universe by a capacity fixed at construction.
type Dynamic struct {
	c    *core.Dynamic
	seed uint64 // construction seed, plumbed into batch scheduling
}

// ErrFull is returned by MakeSet when capacity is exhausted.
var ErrFull = core.ErrFull

// NewDynamic returns an empty Dynamic with the given capacity. Only
// WithSeed among the options is meaningful; find is always two-try
// splitting. It panics on a negative capacity.
func NewDynamic(capacity int, opts ...Option) *Dynamic {
	cfg := defaultConfig()
	for _, o := range opts {
		o.apply(&cfg)
	}
	return &Dynamic{c: core.NewDynamic(capacity, cfg.seed), seed: cfg.seed}
}

// MakeSet creates a new element in a singleton set and returns it, or
// ErrFull when the capacity is exhausted. Safe to call concurrently with
// all other methods.
func (d *Dynamic) MakeSet() (uint32, error) { return d.c.MakeSet() }

// Len returns the number of elements created so far.
func (d *Dynamic) Len() int { return d.c.Len() }

// Cap returns the capacity.
func (d *Dynamic) Cap() int { return d.c.Cap() }

// Find returns the current root of x's set.
func (d *Dynamic) Find(x uint32) uint32 { return d.c.Find(x) }

// SameSet reports whether x and y are in the same set (linearizable).
func (d *Dynamic) SameSet(x, y uint32) bool { return d.c.SameSet(x, y) }

// Unite merges the sets containing x and y, reporting whether this call
// performed the merge.
func (d *Dynamic) Unite(x, y uint32) bool { return d.c.Unite(x, y) }

// CanonicalLabels returns the canonical partition labelling over created
// elements. Call at quiescence.
func (d *Dynamic) CanonicalLabels() []uint32 { return d.c.CanonicalLabels() }
