package dsu

import (
	"context"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/pipeline"
	"repro/internal/tracespan"
)

// BatchResult reports one executed stream batch to the OnBatch callback:
// batch id (1-based seal order), edge count, the full unified execution
// record (merges, filter drops, per-phase fields, Stats(), elapsed time),
// and the execution error for abandoned batches.
type BatchResult = pipeline.Result

// ErrStreamClosed is reported by Stream.Push and Stream.Flush after Close.
var ErrStreamClosed = pipeline.ErrClosed

// streamConfig resolves the StreamOption list.
type streamConfig struct {
	buffer     int
	inflight   int
	concurrent bool
	ctx        context.Context
	onBatch    func(BatchResult)
	defaults   []BatchOption
}

// StreamOption configures NewStream.
type StreamOption interface {
	applyStream(*streamConfig)
}

type streamOptionFunc func(*streamConfig)

func (f streamOptionFunc) applyStream(c *streamConfig) { f(c) }

// WithBufferSize sets the seal threshold in edges: a batch dispatches as
// soon as the active buffer holds this many. Values ≤ 0 select the
// default (65536). Smaller buffers lower latency and sharpen overlap;
// larger buffers amortize the engine's dispatch cost — E20 sweeps the
// trade.
func WithBufferSize(n int) StreamOption {
	return streamOptionFunc(func(c *streamConfig) { c.buffer = n })
}

// WithMaxInFlight bounds how many sealed batches may exist past the
// accumulator (waiting plus executing); values ≤ 0 select 1, classic
// double buffering. A Push that would seal beyond the bound blocks until
// the dispatcher catches up — the stream's backpressure contract.
func WithMaxInFlight(n int) StreamOption {
	return streamOptionFunc(func(c *streamConfig) { c.inflight = n })
}

// WithConcurrentBatches lets the stream execute up to MaxInFlight sealed
// batches simultaneously instead of strictly in seal order — the
// streaming face of the concurrent capability. It is honored only when
// the stream's structure is a ConcurrentBackend (batch calls safe to
// overlap, per that contract); on a plain Backend the option is ignored
// and the stream keeps its single in-order dispatcher, so callers can set
// it unconditionally. Under concurrent dispatch the final partition is
// unchanged (unite batches are order-independent) and OnBatch callbacks
// stay serialized and exactly-once, but they arrive in completion order —
// BatchResult.ID still carries the seal sequence. Pair it with
// WithMaxInFlight(k) for k-way overlap; the default in-flight bound of 1
// makes the option a no-op.
func WithConcurrentBatches() StreamOption {
	return streamOptionFunc(func(c *streamConfig) { c.concurrent = true })
}

// WithStreamContext attaches a cancellation context: once ctx is
// cancelled, batches not yet executing are abandoned — their callbacks
// fire with Err set and their edges never reach the structure — and Close
// returns ctx's error if the cancellation abandoned anything. A batch
// already inside UniteAll completes.
func WithStreamContext(ctx context.Context) StreamOption {
	return streamOptionFunc(func(c *streamConfig) { c.ctx = ctx })
}

// WithOnBatch registers the per-batch completion callback. It runs on the
// stream's dispatcher goroutine: serialized, in batch-id order, exactly
// once per sealed batch (abandoned ones included, with Err set). A
// callback that blocks stalls ingestion — results apply backpressure too —
// and it must not call the stream's own Push, Flush, or Close: sealing or
// closing from inside the callback waits on the dispatcher that is busy
// running the callback, and deadlocks.
func WithOnBatch(fn func(BatchResult)) StreamOption {
	return streamOptionFunc(func(c *streamConfig) { c.onBatch = fn })
}

// WithBatchOptions sets the BatchOptions applied to every batch the
// stream dispatches — worker count, grain, filters. A Flush call may
// override them per batch: its options apply after these, so they win
// field by field.
func WithBatchOptions(opts ...BatchOption) StreamOption {
	return streamOptionFunc(func(c *streamConfig) { c.defaults = opts })
}

// Stream is the asynchronous ingestion front over a DSU or Sharded
// backend: Push accumulates edges into batches that a background
// dispatcher drives through UniteAll while the next batch fills, so the
// caller streams edges instead of blocking per batch. Batches execute
// strictly in seal order on one dispatcher, which is why a stream
// produces exactly the partition of a blocking UniteAll loop over the
// same edge sequence — on either backend, for any buffer size. Over a
// ConcurrentBackend, WithConcurrentBatches trades the ordering for
// overlap: up to MaxInFlight batches execute simultaneously, with the
// same final partition.
//
// Push, Flush, and Close are safe for concurrent producers. Concurrent
// queries against the backend (SameSet, Find) follow the backend's own
// contract: on *DSU they are linearizable against whatever batches have
// executed; on *Sharded the true-is-definite rule applies. The backend
// must not be mutated outside the stream while the stream is open if
// batch/blocking equivalence is to hold.
type Stream struct {
	p        *pipeline.Pipeline
	defaults []BatchOption

	batches  atomic.Uint64
	edges    atomic.Int64
	merged   atomic.Int64
	filtered atomic.Int64
	failed   atomic.Uint64
}

// NewStream starts a stream ingesting into b. The returned Stream owns a
// dispatcher goroutine; Close releases it. The stream's batches drive the
// backend's own execution seam — the same funnel blocking UniteAll calls
// use — so per-batch options resolve identically and, under
// WithAdaptiveFind, streamed batches train the same flatness estimator
// blocking batches do.
//
//	d := dsu.New(n)
//	s := dsu.NewStream(d,
//	        dsu.WithBufferSize(1<<16),
//	        dsu.WithOnBatch(func(r dsu.BatchResult) { log(r.ID, r.Merged) }))
//	for e := range arrivals { s.Push(e) }
//	s.Close() // flush remainder, drain, stop
func NewStream(b Backend, opts ...StreamOption) *Stream {
	return b.universe().NewStream(opts...)
}

// NewStream starts a stream ingesting into the universe's structure — the
// stream entry point of the tenant API, and the layer dsu.NewStream is a
// veneer over. The network front end runs one of these per connection, so
// a remote edge stream gets exactly the in-process stream's batching,
// backpressure, and ordering.
func (u *Universe) NewStream(opts ...StreamOption) *Stream {
	cfg := streamConfig{}
	for _, o := range opts {
		o.applyStream(&cfg)
	}
	s := &Stream{defaults: cfg.defaults}
	x := u.b.executor()
	run := func(edges []exec.Edge, o any, tr *tracespan.Trace) pipeline.Result {
		bopts := s.defaults
		if extra, ok := o.([]BatchOption); ok && len(extra) > 0 {
			bopts = append(append([]BatchOption{}, s.defaults...), extra...)
		}
		bcfg := batchConfig(x.Seed(), bopts)
		bcfg.Trace = tr
		res := x.UniteAll(edges, bcfg)
		// Lift a durability refusal into the pipeline's error slot (the
		// embedded exec.Result.Err would be shadowed): the batch was not
		// applied, and the stream's completion callback must see it fail.
		return pipeline.Result{Result: res, Err: res.Err}
	}
	_, concurrentOK := u.b.(ConcurrentBackend)
	s.p = pipeline.New(run, pipeline.Config{
		BufferSize:  cfg.buffer,
		MaxInFlight: cfg.inflight,
		Concurrent:  cfg.concurrent && concurrentOK,
		Context:     cfg.ctx,
		Gauges:      u.sg,  // zero (recording nothing) when uninstrumented
		Tracer:      u.rec, // nil (untraced) when tracing is off
		Callback: func(r pipeline.Result) {
			s.batches.Add(1)
			s.edges.Add(int64(r.Edges))
			if r.Err != nil {
				s.failed.Add(1)
			} else {
				s.merged.Add(r.Merged)
				s.filtered.Add(int64(r.Filtered))
			}
			if cfg.onBatch != nil {
				cfg.onBatch(r)
			}
		},
	})
	return s
}

// Push appends edges to the stream, sealing and dispatching a batch each
// time the buffer reaches the threshold. It blocks while the stream is
// MaxInFlight batches ahead of the dispatcher and returns ErrStreamClosed
// after Close. Edges are copied before Push returns.
func (s *Stream) Push(edges ...Edge) error { return s.p.Push(edges...) }

// PushLinked is Push carrying a remote trace context: on a traced
// universe, the batch these edges land in adopts the link's trace ID
// (first link wins for a batch — later frames accumulating into the same
// batch keep the established identity), so the span tree recorded here
// carries the identity the remote client chose. A zero link makes
// PushLinked exactly Push; on an untraced universe links are ignored.
// The network front end threads each traced stream frame's context
// through here.
func (s *Stream) PushLinked(link TraceContext, edges ...Edge) error {
	return s.p.PushLinked(link, edges...)
}

// Flush seals the current buffer even below the threshold. Options, if
// given, override the stream's WithBatchOptions defaults for this batch
// only (applied after them, so they win field by field) — per-batch
// worker counts or filters without rebuilding the stream. Flushing an
// empty buffer is a no-op.
//
// Once the stream context (WithStreamContext) is cancelled, Flush fails
// fast with the context's error instead of sealing a batch the dispatcher
// would only abandon: the caller — a server draining a connection, say —
// learns at the call site that the stream is dead rather than from a
// silently dropped batch. Close reports the same error after abandoning
// whatever remained.
func (s *Stream) Flush(opts ...BatchOption) error {
	if len(opts) == 0 {
		return s.p.Flush(nil)
	}
	return s.p.Flush(opts)
}

// BufferSize returns the resolved seal threshold.
func (s *Stream) BufferSize() int { return s.p.BufferSize() }

// Close flushes any buffered remainder, waits for every sealed batch to
// execute and its callback to return, and stops the dispatcher. It
// returns the stream context's error when a cancellation abandoned at
// least one batch (Failed reports how many), nil otherwise — a
// cancellation arriving after everything executed lost nothing and is
// not an error. Close is idempotent, and the totals below are final once
// it returns.
func (s *Stream) Close() error { return s.p.Close() }

// Batches returns the number of batch callbacks delivered so far
// (abandoned batches included).
func (s *Stream) Batches() uint64 { return s.batches.Load() }

// Edges returns the total edges across delivered batches.
func (s *Stream) Edges() int64 { return s.edges.Load() }

// Merged returns the total merges across successfully executed batches.
func (s *Stream) Merged() int64 { return s.merged.Load() }

// Filtered returns the total edges dropped by filter passes across
// successfully executed batches.
func (s *Stream) Filtered() int64 { return s.filtered.Load() }

// Failed returns the number of abandoned batches (context cancellation or
// a panicking batch run).
func (s *Stream) Failed() uint64 { return s.failed.Load() }
