package dsu_test

import (
	"fmt"
	"testing"

	"repro/dsu"
	"repro/internal/engine"
	"repro/internal/seqdsu"
	"repro/internal/workload"
)

// randomEdges generates a batch of m uniformly random element pairs.
func randomEdges(n, m int, seed uint64) []dsu.Edge {
	return engine.FromOps(workload.RandomUnions(n, m, seed))
}

// TestUniteAllMatchesSequentialBaseline validates the batched path against
// the classical sequential structure: identical partition, identical merge
// count, for several pool sizes. CI runs this under -race.
func TestUniteAllMatchesSequentialBaseline(t *testing.T) {
	const n = 5000
	edges := randomEdges(n, 4*n, 71)

	ref := seqdsu.New(n, seqdsu.LinkRank, seqdsu.CompactHalving, 1)
	wantMerges := 0
	for _, e := range edges {
		if ref.Unite(e.X, e.Y) {
			wantMerges++
		}
	}
	want := ref.CanonicalLabels()

	for _, workers := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			d := dsu.New(n, dsu.WithSeed(9))
			merged := d.UniteAll(edges, dsu.WithWorkers(workers), dsu.WithGrain(64))
			if merged != wantMerges {
				t.Errorf("UniteAll merged %d edges, want %d", merged, wantMerges)
			}
			got := d.CanonicalLabels()
			for x := range got {
				if got[x] != want[x] {
					t.Fatalf("label[%d] = %d, want %d", x, got[x], want[x])
				}
			}
		})
	}
}

func TestSameSetAllMatchesSequentialBaseline(t *testing.T) {
	const n = 5000
	unions := randomEdges(n, n, 73)
	queries := randomEdges(n, 2*n, 79)

	ref := seqdsu.New(n, seqdsu.LinkRank, seqdsu.CompactHalving, 1)
	for _, e := range unions {
		ref.Unite(e.X, e.Y)
	}

	d := dsu.New(n, dsu.WithSeed(11))
	d.UniteAll(unions, dsu.WithWorkers(4))
	got := d.SameSetAll(queries, dsu.WithWorkers(4), dsu.WithGrain(32))
	for i, q := range queries {
		if want := ref.SameSet(q.X, q.Y); got[i] != want {
			t.Errorf("query %d (%d,%d): got %v, want %v", i, q.X, q.Y, got[i], want)
		}
	}
}

// TestBatchCounted checks the counted twins account for every operation in
// the batch.
func TestBatchCounted(t *testing.T) {
	const n = 2000
	edges := randomEdges(n, 2*n, 83)
	d := dsu.New(n)
	var st dsu.Stats
	d.UniteAllCounted(edges, &st, dsu.WithWorkers(3))
	if st.Ops != int64(len(edges)) {
		t.Errorf("UniteAllCounted ops = %d, want %d", st.Ops, len(edges))
	}
	before := st.Ops
	d.SameSetAllCounted(edges, &st, dsu.WithWorkers(3))
	if st.Ops-before != int64(len(edges)) {
		t.Errorf("SameSetAllCounted ops = %d, want %d", st.Ops-before, len(edges))
	}
	if st.Work() <= 0 {
		t.Error("counted batch reported no work")
	}
}

// TestBatchConcurrentWithPointOps runs UniteAll concurrently with ordinary
// Unites and checks the union of both edge sets is what lands. Exercised
// under -race in CI.
func TestBatchConcurrentWithPointOps(t *testing.T) {
	const n = 4000
	batch := randomEdges(n, 2*n, 89)
	extra := randomEdges(n, n, 97)

	d := dsu.New(n, dsu.WithSeed(13))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, e := range extra {
			d.Unite(e.X, e.Y)
		}
	}()
	d.UniteAll(batch, dsu.WithWorkers(4))
	<-done

	ref := seqdsu.New(n, seqdsu.LinkRank, seqdsu.CompactHalving, 1)
	for _, e := range append(append([]dsu.Edge(nil), batch...), extra...) {
		ref.Unite(e.X, e.Y)
	}
	want := ref.CanonicalLabels()
	got := d.CanonicalLabels()
	for x := range got {
		if got[x] != want[x] {
			t.Fatalf("label[%d] = %d, want %d", x, got[x], want[x])
		}
	}
}

func TestDynamicBatch(t *testing.T) {
	const n = 1000
	d := dsu.NewDynamic(n, dsu.WithSeed(17))
	for i := 0; i < n; i++ {
		if _, err := d.MakeSet(); err != nil {
			t.Fatal(err)
		}
	}
	edges := randomEdges(n, 2*n, 101)
	ref := seqdsu.New(n, seqdsu.LinkRank, seqdsu.CompactHalving, 1)
	wantMerges := 0
	for _, e := range edges {
		if ref.Unite(e.X, e.Y) {
			wantMerges++
		}
	}
	if merged := d.UniteAll(edges, dsu.WithWorkers(4)); merged != wantMerges {
		t.Errorf("Dynamic.UniteAll merged %d, want %d", merged, wantMerges)
	}
	queries := randomEdges(n, n, 103)
	got := d.SameSetAll(queries, dsu.WithWorkers(2))
	for i, q := range queries {
		if want := ref.SameSet(q.X, q.Y); got[i] != want {
			t.Errorf("query %d: got %v, want %v", i, got[i], want)
		}
	}
}
