package dsu_test

import (
	"fmt"
	"testing"

	"repro/dsu"
	"repro/internal/engine"
	"repro/internal/workload"
)

// adaptivePairs builds a mixed query batch: edges already in the stream
// (mostly connected) plus fresh random pairs (mostly not).
func adaptivePairs(n, m int, seed uint64) []dsu.Edge {
	pairs := engine.FromOps(workload.RandomUnions(n, m/2, seed))
	pairs = append(pairs, engine.FromOps(workload.RandomUnions(n, m/2, seed+1))...)
	return pairs
}

// TestAdaptiveMatchesFixed is the acceptance cross-validation for the
// adaptive compaction policy: across seeds × {flat, sharded} backends ×
// batch sizes, a structure in WithAdaptiveFind mode driven through
// alternating mutate/query phases must produce the exact partition and the
// exact query answers of an identically seeded fixed-variant structure —
// the find variant may change per batch, but never what merges or what a
// quiescent query answers. CI runs this under -race.
func TestAdaptiveMatchesFixed(t *testing.T) {
	const n = 1800
	for _, seed := range []uint64{2, 19, 77} {
		edges := engine.FromOps(workload.ZipfMixed(n, 3*n, 1.0, 1.1, seed+300))
		edges = append(edges, engine.FromOps(workload.CommunityUnions(n, 2*n, 8, 0.9, seed+400))...)
		queries := adaptivePairs(n, n, seed+500)
		for _, batch := range []int{193, 2048} {
			for _, backend := range []string{"flat", "sharded"} {
				t.Run(fmt.Sprintf("seed=%d/batch=%d/%s", seed, batch, backend), func(t *testing.T) {
					var fixed, adaptive dsu.Backend
					if backend == "flat" {
						fixed = dsu.New(n, dsu.WithSeed(seed))
						adaptive = dsu.New(n, dsu.WithSeed(seed), dsu.WithAdaptiveFind())
					} else {
						fixed = dsu.NewSharded(n, 3, dsu.WithSeed(seed))
						adaptive = dsu.NewSharded(n, 3, dsu.WithSeed(seed), dsu.WithAdaptiveFind())
					}
					// Alternate mutate and query phases batch by batch, so
					// the estimator sees the churn/flatten cycle mid-test.
					for lo := 0; lo < len(edges); lo += batch {
						hi := min(lo+batch, len(edges))
						fm := fixed.UniteAll(edges[lo:hi], dsu.WithWorkers(3))
						am := adaptive.UniteAll(edges[lo:hi], dsu.WithWorkers(3))
						if fm != am {
							t.Fatalf("mutate batch at %d: fixed merged %d, adaptive %d", lo, fm, am)
						}
						want := fixed.SameSetAll(queries, dsu.WithWorkers(3))
						got := adaptive.SameSetAll(queries, dsu.WithWorkers(3))
						for k := range got {
							if got[k] != want[k] {
								t.Fatalf("query after batch at %d: answer[%d] = %v, fixed %v",
									lo, k, got[k], want[k])
							}
						}
					}
					want, got := fixed.CanonicalLabels(), adaptive.CanonicalLabels()
					for x := range got {
						if got[x] != want[x] {
							t.Fatalf("label[%d] = %d, fixed %d", x, got[x], want[x])
						}
					}
				})
			}
		}
	}
}

// TestAdaptiveStreamMatchesFixed closes the loop over dsu.Stream: an
// adaptive backend fed through the stream front (buffer sizes × backends)
// must land on the same partition as a fixed-variant blocking loop over
// the same sequence — the streamed batches train the same estimator the
// blocking path uses.
func TestAdaptiveStreamMatchesFixed(t *testing.T) {
	const n = 1500
	for _, seed := range []uint64{5, 23} {
		edges := engine.FromOps(workload.CommunityUnions(n, 4*n, 6, 0.85, seed+700))
		for _, buffer := range []int{97, 1024} {
			for _, backend := range []string{"flat", "sharded"} {
				t.Run(fmt.Sprintf("seed=%d/buffer=%d/%s", seed, buffer, backend), func(t *testing.T) {
					var fixed, adaptive dsu.Backend
					if backend == "flat" {
						fixed = dsu.New(n, dsu.WithSeed(seed))
						adaptive = dsu.New(n, dsu.WithSeed(seed), dsu.WithAdaptiveFind())
					} else {
						fixed = dsu.NewSharded(n, 4, dsu.WithSeed(seed))
						adaptive = dsu.NewSharded(n, 4, dsu.WithSeed(seed), dsu.WithAdaptiveFind())
					}
					for lo := 0; lo < len(edges); lo += buffer {
						fixed.UniteAll(edges[lo:min(lo+buffer, len(edges))], dsu.WithWorkers(2))
					}
					s := dsu.NewStream(adaptive,
						dsu.WithBufferSize(buffer),
						dsu.WithBatchOptions(dsu.WithWorkers(2)))
					for lo := 0; lo < len(edges); lo += 777 {
						if err := s.Push(edges[lo:min(lo+777, len(edges))]...); err != nil {
							t.Fatal(err)
						}
						// Interleave query batches so the stream-trained
						// estimator is exercised while batches are in flight;
						// answers are checked at quiescence below.
						adaptive.SameSetAll(edges[:min(256, len(edges))], dsu.WithWorkers(2))
					}
					if err := s.Close(); err != nil {
						t.Fatal(err)
					}
					want, got := fixed.CanonicalLabels(), adaptive.CanonicalLabels()
					for x := range got {
						if got[x] != want[x] {
							t.Fatalf("label[%d] = %d, fixed %d", x, got[x], want[x])
						}
					}
					// Quiescent query parity over the full edge list.
					qw := fixed.SameSetAll(edges)
					qg := adaptive.SameSetAll(edges)
					for k := range qg {
						if qg[k] != qw[k] {
							t.Fatalf("quiescent answer[%d] = %v, fixed %v", k, qg[k], qw[k])
						}
					}
				})
			}
		}
	}
}

// TestAdaptiveDowngradeObservable pins the policy's effect through the
// public API alone: naive finds issue no CAS instructions, so once the
// downgrade reaches naive, a counted query batch reports zero CAS
// attempts. After a flattening UniteAll that must happen within a few
// batches on both backends.
func TestAdaptiveDowngradeObservable(t *testing.T) {
	const n = 1 << 12
	edges := engine.FromOps(workload.RandomUnions(n, 4*n, 9))
	pairs := adaptivePairs(n, n, 31)
	for _, backend := range []string{"flat", "sharded"} {
		t.Run(backend, func(t *testing.T) {
			var d dsu.Backend
			if backend == "flat" {
				d = dsu.New(n, dsu.WithSeed(4), dsu.WithAdaptiveFind())
			} else {
				d = dsu.NewSharded(n, 3, dsu.WithSeed(4), dsu.WithAdaptiveFind())
			}
			d.UniteAll(edges, dsu.WithWorkers(2))
			for i := 0; i < 10; i++ {
				var st dsu.Stats
				d.SameSetAllCounted(pairs, &st, dsu.WithWorkers(2))
				if st.CASAttempts == 0 {
					return // naive selected: the downgrade fired
				}
			}
			t.Error("no query batch reached the naive variant (zero CAS attempts) after a flattening UniteAll")
		})
	}
}

// TestAdaptiveFindOption pins the option surface: FindAuto stringifies as
// "auto", WithAdaptiveFind equals WithFind(FindAuto), and fixed-mode
// structures are untouched by the policy (their executor stays
// passthrough — a fixed naive structure keeps issuing zero CAS attempts,
// a fixed two-try structure keeps issuing them on deep forests).
func TestAdaptiveFindOption(t *testing.T) {
	if dsu.FindAuto.String() != "auto" {
		t.Errorf("FindAuto.String() = %q, want auto", dsu.FindAuto.String())
	}
	const n = 256
	a := dsu.New(n, dsu.WithSeed(8), dsu.WithAdaptiveFind())
	b := dsu.New(n, dsu.WithSeed(8), dsu.WithFind(dsu.FindAuto))
	edges := engine.FromOps(workload.RandomUnions(n, 2*n, 44))
	if am, bm := a.UniteAll(edges), b.UniteAll(edges); am != bm {
		t.Errorf("WithAdaptiveFind merged %d, WithFind(FindAuto) %d", am, bm)
	}
	aw, bw := a.CanonicalLabels(), b.CanonicalLabels()
	for x := range aw {
		if aw[x] != bw[x] {
			t.Fatalf("label[%d]: WithAdaptiveFind %d, WithFind(FindAuto) %d", x, aw[x], bw[x])
		}
	}
}
