package dsu

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/tracespan"
)

// TraceContext is a wire-portable trace identity: the trace ID a remote
// peer assigned to a batch plus the peer's span the local work should
// hang under. The network front end decodes one from each traced frame
// and threads it into Stream.PushLinked / the traced DTO methods; a zero
// value means "no context" and is ignored everywhere.
type TraceContext = tracespan.Context

// BatchTrace is the exported, JSON-stable form of one finished batch
// trace: identity, op, source, duration, and the span tree (see
// SpanTrace). Universe.Traces, Universe.SlowTraces, and the /debug/traces
// endpoint all speak this type.
type BatchTrace = tracespan.TraceSnapshot

// SpanTrace is one span of an exported trace.
type SpanTrace = tracespan.SpanSnapshot

// Tracing is the package's batch-tracing registry: one of these owns a
// per-tenant trace Recorder for every traced universe — the fixed-size
// ring of recent batch traces plus the slow-batch flight recorder — and
// writes the whole collection as JSON (it is an http.Handler, mountable
// as /debug/traces).
//
// Attach one to a Registry with WithTracing, or to a hand-built universe
// with Universe.EnableTracing; tracing rides the same execution seams
// metrics do, so every path into a tenant's structure — blocking batch
// calls, streams, remote RPCs — records the same span taxonomy without
// the caller doing anything. Without a Tracing attached nothing is
// recorded and the batch hot path pays one nil check (and zero
// allocations) — the disabled mode the root BenchmarkTraceOverhead pins
// down.
type Tracing struct {
	cfg tracespan.Config

	mu   sync.Mutex
	recs map[string]*tracespan.Recorder
}

// TracingOption configures NewTracing.
type TracingOption interface {
	applyTracing(*Tracing)
}

type tracingOptionFunc func(*Tracing)

func (f tracingOptionFunc) applyTracing(t *Tracing) { f(t) }

// WithSlowThreshold sets the flight-recorder promotion latency: finished
// traces whose end-to-end duration meets it are retained in the slow
// ring beyond the recent ring's churn. Values ≤ 0 select the default
// (100ms); to retain every trace pass 1 (one nanosecond).
func WithSlowThreshold(d time.Duration) TracingOption {
	return tracingOptionFunc(func(t *Tracing) { t.cfg.SlowThreshold = d })
}

// WithTraceRing sets the recent-trace ring capacity per tenant (default
// 256). New completions overwrite the oldest.
func WithTraceRing(n int) TracingOption {
	return tracingOptionFunc(func(t *Tracing) { t.cfg.Ring = n })
}

// WithRetainedSlow sets the slow-batch flight-recorder capacity per
// tenant (default 64).
func WithRetainedSlow(n int) TracingOption {
	return tracingOptionFunc(func(t *Tracing) { t.cfg.Retain = n })
}

// NewTracing returns a fresh tracing registry.
func NewTracing(opts ...TracingOption) *Tracing {
	t := &Tracing{recs: make(map[string]*tracespan.Recorder)}
	for _, o := range opts {
		o.applyTracing(t)
	}
	return t
}

// SlowThreshold returns the flight-recorder promotion latency every
// tenant recorder is built with (the default when unconfigured).
func (t *Tracing) SlowThreshold() time.Duration {
	if t == nil || t.cfg.SlowThreshold <= 0 {
		return tracespan.DefaultSlowThreshold
	}
	return t.cfg.SlowThreshold
}

// recorder resolves (creating on first use) the tenant's recorder.
func (t *Tracing) recorder(tenant string) *tracespan.Recorder {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rec, ok := t.recs[tenant]
	if !ok {
		rec = tracespan.New(t.cfg)
		t.recs[tenant] = rec
	}
	return rec
}

// drop forgets a tenant's recorder (Registry.Drop routes here); traces
// already snapshotted stay valid, the storage simply stops accumulating.
func (t *Tracing) drop(tenant string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.recs, tenant)
}

// TenantTraces is one tenant's slice of the trace exposition: the recent
// ring and the flight recorder, both newest-first, plus the recorder's
// counters.
type TenantTraces struct {
	Tenant  string        `json:"tenant"`
	Started uint64        `json:"started"`           // traces begun
	Slow    uint64        `json:"slow_count"`        // promoted to the flight recorder
	Recent  []BatchTrace  `json:"recent"`            // recent ring, newest first
	Slowest []BatchTrace  `json:"retained_slow"`     // flight recorder, newest first
	Thresh  time.Duration `json:"slow_threshold_ns"` // promotion latency
}

// Snapshot exports every tenant's traces, sorted by tenant name. Cold
// path: allocates freely, safe concurrently with all recording.
func (t *Tracing) Snapshot() []TenantTraces {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	names := make([]string, 0, len(t.recs))
	recs := make(map[string]*tracespan.Recorder, len(t.recs))
	for name, rec := range t.recs {
		names = append(names, name)
		recs[name] = rec
	}
	t.mu.Unlock()
	sort.Strings(names)
	out := make([]TenantTraces, 0, len(names))
	for _, name := range names {
		rec := recs[name]
		out = append(out, TenantTraces{
			Tenant:  name,
			Started: rec.Started(),
			Slow:    rec.SlowCount(),
			Recent:  rec.Snapshot(),
			Slowest: rec.Slow(),
			Thresh:  rec.SlowThreshold(),
		})
	}
	return out
}

// ServeHTTP makes Tracing an http.Handler: mount it as /debug/traces.
// The body is a JSON array of TenantTraces. "?tenant=name" restricts the
// exposition to one tenant; "?slow=1" drops the recent rings and reports
// only the flight recorders.
func (t *Tracing) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	snap := t.Snapshot()
	if tenant := r.URL.Query().Get("tenant"); tenant != "" {
		filtered := snap[:0]
		for _, tt := range snap {
			if tt.Tenant == tenant {
				filtered = append(filtered, tt)
			}
		}
		snap = filtered
	}
	if r.URL.Query().Get("slow") != "" {
		for i := range snap {
			snap[i].Recent = nil
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(snap)
}

// WithTracing attaches a tracing registry: every universe this Registry
// creates is traced from Create, before it becomes visible, so its whole
// lifetime of batches lands in t's per-tenant rings. A nil t leaves the
// registry untraced. Compose with WithMetrics freely — the two ride the
// same seams independently.
func WithTracing(t *Tracing) RegistryOption {
	return registryOptionFunc(func(r *Registry) { r.tracing = t })
}

// EnableTracing attaches the universe to a tracing registry, resolving
// its per-tenant recorder under the universe's name. Every batch
// admitted afterwards — blocking calls, stream batches, remote RPCs — is
// traced; streams opened before the call keep their untraced pipeline.
// A nil t (or nil receiver field resolution) disables tracing. Not
// synchronized with in-flight batches: attach before the universe is
// shared, as Registry.Create does.
func (u *Universe) EnableTracing(t *Tracing) {
	u.rec = t.recorder(u.name)
}

// TraceRecorder returns the universe's trace recorder, nil when tracing
// is off — the seam the network front end records its wire-decode and
// reply-encode spans through.
func (u *Universe) TraceRecorder() *tracespan.Recorder { return u.rec }

// Traces returns the universe's recent finished batch traces, newest
// first (nil when tracing is off). Each entry is a complete span tree:
// root batch span, stage spans, and per-worker attribution.
func (u *Universe) Traces() []BatchTrace { return u.rec.Snapshot() }

// SlowTraces returns the flight recorder: traces whose end-to-end
// latency met the slow threshold, retained beyond the recent ring's
// churn. Newest first; nil when tracing is off.
func (u *Universe) SlowTraces() []BatchTrace { return u.rec.Slow() }

// UniteAllTraced is UniteAll recording into a caller-supplied trace —
// the form the network front end uses, where the trace begins at frame
// decode and ends after reply encode, so the execute spans recorded here
// land in the middle of the server's tree. The trace may be nil (then
// this is exactly UniteAll). Validation errors are reported before any
// execution, so a failed call records no execute span.
func (u *Universe) UniteAllTraced(req UniteRequest, tr *Trace) (BatchReply, error) {
	cfg, err := u.resolve(req.Options)
	if err != nil {
		return BatchReply{}, err
	}
	if err := validatePairs("edge", req.Edges, u.b.N()); err != nil {
		return BatchReply{}, err
	}
	cfg.Trace = tr
	res := u.b.executor().UniteAll(req.Edges, cfg)
	if res.Err != nil {
		// Durability refused the batch: not applied, not acknowledged.
		return BatchReply{}, res.Err
	}
	return replyOf(nil, res), nil
}

// SameSetAllTraced is SameSetAll recording into a caller-supplied trace
// (see UniteAllTraced).
func (u *Universe) SameSetAllTraced(req QueryRequest, tr *Trace) (BatchReply, error) {
	cfg, err := u.resolve(req.Options)
	if err != nil {
		return BatchReply{}, err
	}
	if err := validatePairs("pair", req.Pairs, u.b.N()); err != nil {
		return BatchReply{}, err
	}
	cfg.Trace = tr
	out, res := u.b.executor().SameSetAll(req.Pairs, cfg)
	return replyOf(out, res), nil
}

// Trace is one in-flight batch trace — an opaque handle the network
// front end threads from frame decode through execution to reply encode.
// All methods are nil-safe; ordinary callers never touch one (the traced
// veneers and the stream pipeline manage traces internally).
type Trace = tracespan.Trace
