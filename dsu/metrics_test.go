package dsu

import (
	"math/rand"
	"strings"
	"testing"
)

func metricsEdges(n, m int, seed int64) []Edge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{X: uint32(rng.Intn(n)), Y: uint32(rng.Intn(n))}
	}
	return edges
}

// TestMetricsMatchReplies is the acceptance criterion for the
// instrumentation seam: for every structure kind, the per-tenant totals a
// scraper reads from Universe.Metrics must equal the sums of the
// BatchReply values handed back to the tenant's callers — the metrics
// layer observes the same exec.Result record the DTO layer returns, so
// the two views cannot disagree.
func TestMetricsMatchReplies(t *testing.T) {
	const n = 2000
	kinds := []struct {
		name string
		opts []Option
	}{
		{"flat", nil},
		{"sharded", []Option{WithShards(4)}},
		{"lockfree", []Option{WithKind(KindLockFree)}},
	}
	for _, k := range kinds {
		t.Run(k.name, func(t *testing.T) {
			m := NewMetrics()
			reg := NewRegistry(WithMetrics(m))
			u, err := reg.Create("tenant-"+k.name, n, append(k.opts, WithFind(FindAuto))...)
			if err != nil {
				t.Fatal(err)
			}

			var want TenantMetrics
			for batch := 0; batch < 5; batch++ {
				req := UniteRequest{Edges: metricsEdges(n, 700, int64(batch))}
				if batch%2 == 0 {
					req.Options.ConnectedFilter = true
				}
				rep, err := u.UniteAll(req)
				if err != nil {
					t.Fatal(err)
				}
				want.UniteBatches++
				want.UniteEdges += int64(len(req.Edges))
				want.Merged += rep.Merged
				want.Filtered += int64(rep.Filtered)
				want.FindSteps += rep.Stats.FindSteps
				want.CASRetries += rep.CASRetries
			}
			for batch := 0; batch < 3; batch++ {
				req := QueryRequest{Pairs: metricsEdges(n, 400, int64(100+batch))}
				rep, err := u.SameSetAll(req)
				if err != nil {
					t.Fatal(err)
				}
				want.QueryBatches++
				want.QueryPairs += int64(len(req.Pairs))
				want.FindSteps += rep.Stats.FindSteps
			}

			got := u.Metrics()
			if !got.Instrumented {
				t.Fatal("universe not instrumented")
			}
			if got.UniteBatches != want.UniteBatches || got.QueryBatches != want.QueryBatches {
				t.Errorf("batches = %d/%d, want %d/%d", got.UniteBatches, got.QueryBatches, want.UniteBatches, want.QueryBatches)
			}
			if got.UniteEdges != want.UniteEdges || got.QueryPairs != want.QueryPairs {
				t.Errorf("elements = %d/%d, want %d/%d", got.UniteEdges, got.QueryPairs, want.UniteEdges, want.QueryPairs)
			}
			if got.Merged != want.Merged {
				t.Errorf("Merged = %d, want %d", got.Merged, want.Merged)
			}
			if got.Filtered != want.Filtered {
				t.Errorf("Filtered = %d, want %d", got.Filtered, want.Filtered)
			}
			if got.FindSteps != want.FindSteps {
				t.Errorf("FindSteps = %d, want %d", got.FindSteps, want.FindSteps)
			}
			if got.CASRetries != want.CASRetries {
				t.Errorf("CASRetries = %d, want %d", got.CASRetries, want.CASRetries)
			}
			// Every query batch picked exactly one variant.
			var picks int64
			for _, v := range got.VariantPicks {
				picks += v
			}
			if picks != want.QueryBatches {
				t.Errorf("VariantPicks sum = %d, want %d (%v)", picks, want.QueryBatches, got.VariantPicks)
			}

			// The exposition carries the same numbers under the tenant label.
			var sb strings.Builder
			if err := m.WriteText(&sb); err != nil {
				t.Fatal(err)
			}
			text := sb.String()
			for _, series := range []string{
				`dsu_batches_total{tenant="tenant-` + k.name + `",op="unite"} 5`,
				`dsu_batches_total{tenant="tenant-` + k.name + `",op="query"} 3`,
				`dsu_batch_edges_total{tenant="tenant-` + k.name + `",op="unite"} 3500`,
			} {
				if !strings.Contains(text, series) {
					t.Errorf("exposition missing %q", series)
				}
			}
		})
	}
}

// TestMetricsUninstrumented pins the disabled mode: without a Metrics
// attached, batches run normally and the snapshot is the zero value.
func TestMetricsUninstrumented(t *testing.T) {
	reg := NewRegistry()
	u, err := reg.Create("plain", 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.UniteAll(UniteRequest{Edges: metricsEdges(100, 50, 1)}); err != nil {
		t.Fatal(err)
	}
	if got := u.Metrics(); got.Instrumented || got.UniteBatches != 0 {
		t.Errorf("uninstrumented snapshot = %+v, want zero", got)
	}
}

// TestMetricsStreamGauges checks the pipeline gauges: active while a
// stream is open, back to zero after Close, with the stream's batches
// and edges landing in the same per-tenant counters blocking calls feed.
func TestMetricsStreamGauges(t *testing.T) {
	const n = 1000
	m := NewMetrics()
	reg := NewRegistry(WithMetrics(m))
	u, err := reg.Create("streamer", n)
	if err != nil {
		t.Fatal(err)
	}

	s := u.NewStream(WithBufferSize(128))
	if got := u.Metrics().StreamsActive; got != 1 {
		t.Errorf("StreamsActive while open = %d, want 1", got)
	}
	edges := metricsEdges(n, 1000, 7)
	if err := s.Push(edges...); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	got := u.Metrics()
	if got.StreamsActive != 0 || got.StreamBatchesInFlight != 0 {
		t.Errorf("gauges after close = %d active, %d in flight, want 0/0", got.StreamsActive, got.StreamBatchesInFlight)
	}
	if got.UniteBatches != int64(s.Batches()) {
		t.Errorf("UniteBatches = %d, want the stream's %d", got.UniteBatches, s.Batches())
	}
	if got.UniteEdges != s.Edges() {
		t.Errorf("UniteEdges = %d, want the stream's %d", got.UniteEdges, s.Edges())
	}
	if got.Merged != s.Merged() {
		t.Errorf("Merged = %d, want the stream's %d", got.Merged, s.Merged())
	}

	// The recycled-buffer counter saw the free list at work: with more
	// sealed batches than buffers, at least one buffer came back around.
	var sb strings.Builder
	if err := m.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `dsu_stream_recycled_buffers_total{tenant="streamer"}`) {
		t.Error("exposition missing the recycled-buffer series")
	}
}
