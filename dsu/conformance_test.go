package dsu_test

import (
	"fmt"
	"testing"

	"repro/dsu"
	"repro/internal/engine"
	"repro/internal/seqdsu"
	"repro/internal/workload"
)

// This file is the shared Backend conformance suite: one table of
// constructors — flat, sharded, lock-free — driven through the contract
// every structure kind must honor. Constructor boundaries, batch ≡
// blocking partitions, oracle cross-validation, filter neutrality, and
// counted accounting are each written once here; per-kind test files keep
// only what is genuinely specific to their kind (shard clamping, stream
// ordering, lock-free linearizability). CI runs the suite under -race.

// backendCase names one structure kind and how to build it.
type backendCase struct {
	name string
	make func(n int, opts ...dsu.Option) dsu.Backend
	// exactMerge marks kinds whose UniteAll count equals the sequential
	// pass's exactly (the sharded count is structural and may exceed it).
	exactMerge bool
	// splittingOnly marks kinds restricted to the splitting find family.
	splittingOnly bool
}

func backendCases() []backendCase {
	return []backendCase{
		{"flat", func(n int, opts ...dsu.Option) dsu.Backend { return dsu.New(n, opts...) }, true, false},
		{"sharded", func(n int, opts ...dsu.Option) dsu.Backend { return dsu.NewSharded(n, 4, opts...) }, false, false},
		{"lockfree", func(n int, opts ...dsu.Option) dsu.Backend { return dsu.NewLockFree(n, opts...) }, true, true},
	}
}

// oracle replays edges through the classical sequential structure.
func oracle(n int, batches ...[]dsu.Edge) *seqdsu.DSU {
	ref := seqdsu.New(n, seqdsu.LinkRank, seqdsu.CompactHalving, 1)
	for _, b := range batches {
		for _, e := range b {
			ref.Unite(e.X, e.Y)
		}
	}
	return ref
}

func checkLabelsMatch(t *testing.T, got, want []uint32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("label count %d, want %d", len(got), len(want))
	}
	for x := range got {
		if got[x] != want[x] {
			t.Fatalf("label[%d] = %d, want %d", x, got[x], want[x])
		}
	}
}

// TestBackendConformanceOracle is the acceptance cross-validation, run
// against every structure kind: a multi-batch schedule must leave each
// backend with exactly the sequential oracle's partition — same canonical
// labels, set count, batch and point SameSet answers, snapshot roots, and
// component materialization.
func TestBackendConformanceOracle(t *testing.T) {
	const n = 2500
	for _, bc := range backendCases() {
		for _, seed := range []uint64{1, 7, 42} {
			t.Run(fmt.Sprintf("%s/seed=%d", bc.name, seed), func(t *testing.T) {
				d := bc.make(n, dsu.WithSeed(seed))
				batches := [][]dsu.Edge{
					engine.FromOps(workload.CommunityUnions(n, 2*n, 8, 0.9, seed+100)),
					engine.FromOps(workload.RandomUnions(n, n, seed+200)),
					engine.FromOps(workload.ZipfMixed(n, n, 1.0, 1.1, seed+300)),
				}
				for _, b := range batches {
					d.UniteAll(b, dsu.WithWorkers(4), dsu.WithGrain(64))
				}
				ref := oracle(n, batches...)

				queries := engine.FromOps(workload.RandomUnions(n, 4*n, seed+400))
				ans := d.SameSetAll(queries, dsu.WithWorkers(4))
				for i, q := range queries {
					want := ref.SameSet(q.X, q.Y)
					if ans[i] != want {
						t.Fatalf("batch query %d (%d,%d) = %v, oracle %v", i, q.X, q.Y, ans[i], want)
					}
					if got := d.SameSet(q.X, q.Y); got != want {
						t.Fatalf("point SameSet(%d,%d) = %v, oracle %v", q.X, q.Y, got, want)
					}
				}

				want := ref.CanonicalLabels()
				checkLabelsMatch(t, d.CanonicalLabels(), want)
				if got, wantSets := d.Sets(), ref.Sets(); got != wantSets {
					t.Fatalf("Sets() = %d, oracle %d", got, wantSets)
				}

				// Snapshot names the same partition: entries are roots, and
				// two elements share an entry iff they share a label.
				snap := d.Snapshot()
				for x := range snap {
					if snap[snap[x]] != snap[x] {
						t.Fatalf("snapshot entry %d → %d is not a root", x, snap[x])
					}
					if x > 0 && (snap[x] == snap[x-1]) != (want[x] == want[x-1]) {
						t.Fatalf("snapshot and labels disagree on (%d,%d)", x-1, x)
					}
				}

				// Components bucket the labelling exactly.
				total := 0
				for _, comp := range d.Components() {
					total += len(comp)
					for _, x := range comp {
						if want[x] != want[comp[0]] {
							t.Fatalf("component mixing labels: %d with %d", x, comp[0])
						}
					}
				}
				if total != n {
					t.Fatalf("components cover %d elements, want %d", total, n)
				}
			})
		}
	}
}

// TestBackendBatchEqualsBlocking pins batch ≡ blocking: a UniteAll over a
// batch leaves exactly the partition of a point-op loop over the same
// edges, for every kind, and the exact-merge kinds report exactly the
// loop's merge count.
func TestBackendBatchEqualsBlocking(t *testing.T) {
	const n = 1500
	edges := engine.FromOps(workload.CommunityUnions(n, 3*n, 6, 0.8, 17))
	for _, bc := range backendCases() {
		t.Run(bc.name, func(t *testing.T) {
			batch := bc.make(n, dsu.WithSeed(5))
			merged := batch.UniteAll(edges, dsu.WithWorkers(4))

			point := bc.make(n, dsu.WithSeed(5))
			pointMerged := 0
			for _, e := range edges {
				if point.Unite(e.X, e.Y) {
					pointMerged++
				}
			}
			checkLabelsMatch(t, batch.CanonicalLabels(), point.CanonicalLabels())
			if bc.exactMerge && merged != pointMerged {
				t.Fatalf("batch merged %d, blocking loop %d", merged, pointMerged)
			}
			if batch.Sets() != point.Sets() {
				t.Fatalf("batch Sets %d, blocking %d", batch.Sets(), point.Sets())
			}
		})
	}
}

// TestBackendFindVariantConformance sweeps every find strategy each kind
// defines — the splitting family everywhere, halving and compression on
// the core-backed kinds, and the adaptive policy on all — checking the
// partition is variant-independent.
func TestBackendFindVariantConformance(t *testing.T) {
	const n = 800
	edges := engine.FromOps(workload.CommunityUnions(n, 2*n, 4, 0.8, 31))
	want := oracle(n, edges).CanonicalLabels()
	for _, bc := range backendCases() {
		strategies := []dsu.FindStrategy{dsu.NoCompaction, dsu.OneTrySplitting, dsu.TwoTrySplitting, dsu.FindAuto}
		if !bc.splittingOnly {
			strategies = append(strategies, dsu.Halving, dsu.Compression)
		}
		for _, f := range strategies {
			t.Run(fmt.Sprintf("%s/%v", bc.name, f), func(t *testing.T) {
				d := bc.make(n, dsu.WithFind(f), dsu.WithSeed(33))
				d.UniteAll(edges, dsu.WithWorkers(3))
				checkLabelsMatch(t, d.CanonicalLabels(), want)
			})
		}
	}
}

// TestBackendPrefilterConformance checks the filter options leave the
// partition and merge count untouched on every kind's batch path.
func TestBackendPrefilterConformance(t *testing.T) {
	const n = 1000
	edges := engine.FromOps(workload.ZipfMixed(n, 4*n, 1.0, 1.2, 43))
	if kept := dsu.Prefilter(edges); len(kept) >= len(edges) {
		t.Fatalf("Zipf batch should shrink under Prefilter: %d -> %d", len(edges), len(kept))
	}
	for _, bc := range backendCases() {
		t.Run(bc.name, func(t *testing.T) {
			raw, filtered := bc.make(n), bc.make(n)
			a := raw.UniteAll(edges)
			b := filtered.UniteAll(edges, dsu.WithPrefilter(), dsu.WithConnectedFilter())
			if a != b {
				t.Errorf("merged %d raw vs %d filtered", a, b)
			}
			checkLabelsMatch(t, filtered.CanonicalLabels(), raw.CanonicalLabels())
		})
	}
}

// TestBackendCountedConformance checks the counted batch variants account
// work on every kind: a mutation batch reports operations and nonzero
// work, and a query batch reports exactly one operation per pair.
func TestBackendCountedConformance(t *testing.T) {
	const n = 1500
	edges := engine.FromOps(workload.CommunityUnions(n, 2*n, 5, 0.7, 47))
	for _, bc := range backendCases() {
		t.Run(bc.name, func(t *testing.T) {
			d := bc.make(n)
			var st dsu.Stats
			d.UniteAllCounted(edges, &st, dsu.WithWorkers(3))
			if st.Ops == 0 || st.Work() <= 0 {
				t.Errorf("counted mutation batch reported no work: %+v", st)
			}
			before := st.Ops
			d.SameSetAllCounted(edges, &st, dsu.WithWorkers(3))
			if st.Ops-before != int64(len(edges)) {
				t.Errorf("SameSetAllCounted ops = %d, want %d", st.Ops-before, len(edges))
			}
		})
	}
}

// TestBackendConstructorContract pins every constructor's documented
// boundaries in one table: the shared rejections (out-of-range n, unknown
// strategies, undefined option combinations) plus each kind's own, and
// the combinations that must construct.
func TestBackendConstructorContract(t *testing.T) {
	panics := []struct {
		name string
		fn   func()
	}{
		{"flat/negative n", func() { dsu.New(-1) }},
		{"flat/n over 2^31-1", func() { dsu.New(1 << 31) }},
		{"flat/unknown find strategy", func() { dsu.New(4, dsu.WithFind(dsu.FindStrategy(99))) }},
		{"flat/early termination + halving", func() { dsu.New(4, dsu.WithFind(dsu.Halving), dsu.WithEarlyTermination()) }},
		{"flat/early termination + compression", func() { dsu.New(4, dsu.WithFind(dsu.Compression), dsu.WithEarlyTermination()) }},
		{"dynamic/negative capacity", func() { dsu.NewDynamic(-1) }},
		{"sharded/zero shards", func() { dsu.NewSharded(100, 0) }},
		{"sharded/negative shards", func() { dsu.NewSharded(100, -4) }},
		{"sharded/negative n", func() { dsu.NewSharded(-1, 2) }},
		{"sharded/early termination + halving", func() {
			dsu.NewSharded(16, 2, dsu.WithFind(dsu.Halving), dsu.WithEarlyTermination())
		}},
		{"lockfree/negative n", func() { dsu.NewLockFree(-1) }},
		{"lockfree/n over 2^31-1", func() { dsu.NewLockFree(1 << 31) }},
		{"lockfree/early termination", func() { dsu.NewLockFree(4, dsu.WithEarlyTermination()) }},
		{"lockfree/halving", func() { dsu.NewLockFree(4, dsu.WithFind(dsu.Halving)) }},
		{"lockfree/compression", func() { dsu.NewLockFree(4, dsu.WithFind(dsu.Compression)) }},
		{"lockfree/unknown find strategy", func() { dsu.NewLockFree(4, dsu.WithFind(dsu.FindStrategy(99))) }},
	}
	for _, c := range panics {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			c.fn()
		})
	}

	// Accepted combinations, per kind: every strategy the kind defines,
	// early termination where Section 6 defines it, and the empty universe.
	for _, f := range []dsu.FindStrategy{dsu.NoCompaction, dsu.OneTrySplitting, dsu.TwoTrySplitting, dsu.Halving, dsu.Compression} {
		if d := dsu.New(4, dsu.WithFind(f)); d.N() != 4 {
			t.Errorf("flat %v: N = %d, want 4", f, d.N())
		}
	}
	for _, f := range []dsu.FindStrategy{dsu.NoCompaction, dsu.OneTrySplitting, dsu.TwoTrySplitting} {
		d := dsu.New(4, dsu.WithFind(f), dsu.WithEarlyTermination())
		d.Unite(0, 1)
		if !d.SameSet(0, 1) {
			t.Errorf("flat %v+early: SameSet(0,1) = false after Unite", f)
		}
		l := dsu.NewLockFree(4, dsu.WithFind(f))
		l.Unite(0, 1)
		if !l.SameSet(0, 1) {
			t.Errorf("lockfree %v: SameSet(0,1) = false after Unite", f)
		}
	}
	for _, bc := range backendCases() {
		if e := bc.make(0); e.N() != 0 || e.Sets() != 0 {
			t.Errorf("%s: empty universe should construct", bc.name)
		}
	}
}
