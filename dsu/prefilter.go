package dsu

import (
	"repro/internal/engine"
	"repro/internal/exec"
)

// Prefilter returns the batch with self-loop edges and exact duplicates
// removed; (u, v) and (v, u) name the same edge and count as duplicates.
// First occurrences survive in order and the input is not modified. Unions
// are idempotent, so UniteAll on the filtered batch produces the same
// partition and merge count as on the raw batch. The filter trades one
// sequential dedup pass (open-addressed, allocation-free per edge) for the
// finds the dropped edges would have paid: worthwhile when the stream is
// duplicate-heavy and the universe large enough that finds cache-miss, a
// net loss on small or duplicate-free batches — E19 measures both sides on
// Zipf batches, filter pass included.
func Prefilter(edges []Edge) []Edge { return engine.Prefilter(edges) }

// WithPrefilter makes UniteAll run the batch through Prefilter before the
// engine dispatches it. Both the flat DSU and Sharded honor it; SameSetAll
// ignores it, since query answers are indexed by the caller's slice.
// Filtered-edge counts and the filter pass's time are reported in the
// run's stats: Counted variants tally drops in Stats.Filtered, and the
// pass's wall-clock time is part of the batch's elapsed time on both
// paths.
func WithPrefilter() BatchOption {
	return batchOptionFunc(func(c *exec.Config) { c.Prefilter = true })
}

// WithConnectedFilter makes UniteAll screen the batch through SameSet
// before dispatching it, dropping edges whose endpoints are already
// connected — the intra-component prefilter for re-ingested streams, where
// most edges land inside components built by earlier batches. The screen
// is racy but sound: a true SameSet answer is definite even concurrently
// with mutations, so a dropped edge could never have merged, and the final
// partition is exactly the unscreened batch's. On the flat DSU the merge
// count is unchanged too; on Sharded the screen runs under the mutation
// lock (exact, not just sound) and can lower the reported structural merge
// count by dropping intra-shard edges whose endpoints were only connected
// through the bridge — the partition is still identical. The stream path
// honors the option wherever it appears (stream defaults or per-Flush
// overrides). Screen work and drops land in the batch stats like
// WithPrefilter's; SameSetAll ignores the option. Compose with
// WithPrefilter to dedup first and screen the survivors.
func WithConnectedFilter() BatchOption {
	return batchOptionFunc(func(c *exec.Config) { c.ConnectedFilter = true })
}
