package dsu

import "repro/internal/engine"

// Prefilter returns the batch with self-loop edges and exact duplicates
// removed; (u, v) and (v, u) name the same edge and count as duplicates.
// First occurrences survive in order and the input is not modified. Unions
// are idempotent, so UniteAll on the filtered batch produces the same
// partition and merge count as on the raw batch. The filter trades one
// sequential dedup pass (open-addressed, allocation-free per edge) for the
// finds the dropped edges would have paid: worthwhile when the stream is
// duplicate-heavy and the universe large enough that finds cache-miss, a
// net loss on small or duplicate-free batches — E19 measures both sides on
// Zipf batches, filter pass included.
func Prefilter(edges []Edge) []Edge { return engine.Prefilter(edges) }

// WithPrefilter makes UniteAll run the batch through Prefilter before the
// engine dispatches it. Both the flat DSU and Sharded honor it; SameSetAll
// ignores it, since query answers are indexed by the caller's slice.
func WithPrefilter() BatchOption {
	return batchOptionFunc(func(c *engine.Config) { c.Prefilter = true })
}
