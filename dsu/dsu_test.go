package dsu_test

import (
	"errors"
	"sync"
	"testing"

	"repro/dsu"
	"repro/internal/randutil"
	"repro/internal/seqdsu"
)

func allStrategies() []dsu.FindStrategy {
	return []dsu.FindStrategy{
		dsu.NoCompaction, dsu.OneTrySplitting, dsu.TwoTrySplitting,
		dsu.Halving, dsu.Compression,
	}
}

func TestBasicUsage(t *testing.T) {
	d := dsu.New(10)
	if d.N() != 10 {
		t.Fatalf("N = %d", d.N())
	}
	if d.SameSet(0, 1) {
		t.Fatal("fresh elements united")
	}
	if !d.Unite(0, 1) {
		t.Fatal("Unite(0,1) reported no merge")
	}
	if d.Unite(1, 0) {
		t.Fatal("repeat Unite reported a merge")
	}
	if !d.SameSet(0, 1) {
		t.Fatal("united elements report separate")
	}
	if d.Sets() != 9 {
		t.Fatalf("Sets = %d, want 9", d.Sets())
	}
	if d.Find(0) != d.Find(1) {
		t.Fatal("united elements have different roots")
	}
}

func TestOptionsSelectVariants(t *testing.T) {
	for _, f := range allStrategies() {
		t.Run(f.String(), func(t *testing.T) {
			d := dsu.New(100, dsu.WithFind(f), dsu.WithSeed(7))
			s := seqdsu.NewSpec(100)
			rng := randutil.NewXoshiro256(1)
			for i := 0; i < 300; i++ {
				x, y := uint32(rng.Intn(100)), uint32(rng.Intn(100))
				if rng.Intn(2) == 0 {
					if d.Unite(x, y) != s.Unite(x, y) {
						t.Fatalf("Unite diverged at %d", i)
					}
				} else if d.SameSet(x, y) != s.SameSet(x, y) {
					t.Fatalf("SameSet diverged at %d", i)
				}
			}
		})
	}
}

func TestEarlyTerminationOption(t *testing.T) {
	for _, f := range []dsu.FindStrategy{dsu.NoCompaction, dsu.OneTrySplitting, dsu.TwoTrySplitting} {
		d := dsu.New(50, dsu.WithFind(f), dsu.WithEarlyTermination())
		s := seqdsu.NewSpec(50)
		rng := randutil.NewXoshiro256(2)
		for i := 0; i < 200; i++ {
			x, y := uint32(rng.Intn(50)), uint32(rng.Intn(50))
			if rng.Intn(2) == 0 {
				if d.Unite(x, y) != s.Unite(x, y) {
					t.Fatalf("%v: Unite diverged at %d", f, i)
				}
			} else if d.SameSet(x, y) != s.SameSet(x, y) {
				t.Fatalf("%v: SameSet diverged at %d", f, i)
			}
		}
	}
}

func TestEarlyTerminationPanicsWithHalving(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	dsu.New(10, dsu.WithFind(dsu.Halving), dsu.WithEarlyTermination())
}

func TestSeedReproducibility(t *testing.T) {
	a := dsu.New(64, dsu.WithSeed(5))
	b := dsu.New(64, dsu.WithSeed(5))
	c := dsu.New(64, dsu.WithSeed(6))
	sameAsA, sameAsC := true, true
	for x := uint32(0); x < 64; x++ {
		if a.ID(x) != b.ID(x) {
			sameAsA = false
		}
		if a.ID(x) != c.ID(x) {
			sameAsC = false
		}
	}
	if !sameAsA {
		t.Error("equal seeds produced different orders")
	}
	if sameAsC {
		t.Error("different seeds produced identical orders")
	}
}

func TestConcurrentUse(t *testing.T) {
	const n, workers, per = 4000, 8, 6000
	d := dsu.New(n)
	spec := seqdsu.New(n, seqdsu.LinkSize, seqdsu.CompactCompression, 0)
	rng := randutil.NewXoshiro256(3)
	type pair struct{ x, y uint32 }
	pairs := make([]pair, workers*per)
	for i := range pairs {
		pairs[i] = pair{uint32(rng.Intn(n)), uint32(rng.Intn(n))}
		spec.Unite(pairs[i].x, pairs[i].y)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w * per; i < (w+1)*per; i++ {
				d.Unite(pairs[i].x, pairs[i].y)
			}
		}(w)
	}
	wg.Wait()
	want := spec.CanonicalLabels()
	got := d.CanonicalLabels()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("partition differs at %d", i)
		}
	}
}

func TestCountedOps(t *testing.T) {
	d := dsu.New(100)
	var st dsu.Stats
	for i := uint32(0); i < 99; i++ {
		d.UniteCounted(i, i+1, &st)
	}
	if st.Links != 99 {
		t.Errorf("Links = %d, want 99", st.Links)
	}
	if !d.SameSetCounted(0, 99, &st) {
		t.Error("chain not connected")
	}
	if d.FindCounted(0, &st) != d.Find(0) {
		t.Error("counted find differs")
	}
	if st.Work() <= 0 {
		t.Error("Work() not positive")
	}
	var other dsu.Stats
	other.Add(st)
	if other.Work() != st.Work() {
		t.Error("Add lost work")
	}
}

func TestSnapshotAndLabels(t *testing.T) {
	d := dsu.New(6, dsu.WithSeed(1))
	d.Unite(0, 1)
	d.Unite(2, 3)
	snap := d.Snapshot()
	if len(snap) != 6 {
		t.Fatalf("snapshot len %d", len(snap))
	}
	labels := d.CanonicalLabels()
	if labels[0] != labels[1] || labels[2] != labels[3] || labels[0] == labels[2] {
		t.Fatalf("labels = %v", labels)
	}
	if labels[4] != 4 || labels[5] != 5 {
		t.Fatalf("untouched singletons relabelled: %v", labels)
	}
}

func TestDynamicPublicAPI(t *testing.T) {
	d := dsu.NewDynamic(3, dsu.WithSeed(9))
	if d.Cap() != 3 || d.Len() != 0 {
		t.Fatalf("Cap/Len = %d/%d", d.Cap(), d.Len())
	}
	a, err := d.MakeSet()
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.MakeSet()
	if err != nil {
		t.Fatal(err)
	}
	if d.SameSet(a, b) {
		t.Fatal("fresh dynamic elements united")
	}
	if !d.Unite(a, b) {
		t.Fatal("Unite reported no merge")
	}
	if !d.SameSet(a, b) || d.Find(a) != d.Find(b) {
		t.Fatal("merge not visible")
	}
	if _, err := d.MakeSet(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.MakeSet(); !errors.Is(err, dsu.ErrFull) {
		t.Fatalf("want ErrFull, got %v", err)
	}
	labels := d.CanonicalLabels()
	if len(labels) != 3 || labels[0] != labels[1] {
		t.Fatalf("labels = %v", labels)
	}
}

func TestComponents(t *testing.T) {
	d := dsu.New(8, dsu.WithSeed(2))
	d.Unite(5, 2)
	d.Unite(2, 7)
	d.Unite(0, 1)
	comps := d.Components()
	want := [][]uint32{{0, 1}, {2, 5, 7}, {3}, {4}, {6}}
	if len(comps) != len(want) {
		t.Fatalf("components = %v, want %v", comps, want)
	}
	for i := range want {
		if len(comps[i]) != len(want[i]) {
			t.Fatalf("component %d = %v, want %v", i, comps[i], want[i])
		}
		for j := range want[i] {
			if comps[i][j] != want[i][j] {
				t.Fatalf("component %d = %v, want %v", i, comps[i], want[i])
			}
		}
	}
}

func TestComponentsEmptyAndSingle(t *testing.T) {
	if comps := dsu.New(0).Components(); len(comps) != 0 {
		t.Fatalf("empty DSU components = %v", comps)
	}
	comps := dsu.New(1).Components()
	if len(comps) != 1 || len(comps[0]) != 1 || comps[0][0] != 0 {
		t.Fatalf("singleton components = %v", comps)
	}
}

func TestStrategyStrings(t *testing.T) {
	want := map[dsu.FindStrategy]string{
		dsu.NoCompaction:    "naive",
		dsu.OneTrySplitting: "onetry",
		dsu.TwoTrySplitting: "twotry",
		dsu.Halving:         "halving",
		dsu.Compression:     "compress",
	}
	for f, name := range want {
		if f.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(f), f.String(), name)
		}
	}
}
