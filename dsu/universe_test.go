package dsu_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/dsu"
)

// TestRegistryLifecycle covers create/get/drop/names and the error paths
// that replace New's panics for remote callers.
func TestRegistryLifecycle(t *testing.T) {
	reg := dsu.NewRegistry()
	flat, err := reg.Create("alpha", 100)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := reg.Create("beta", 100, dsu.WithShards(4), dsu.WithAdaptiveFind())
	if err != nil {
		t.Fatal(err)
	}
	if flat.Kind() != "flat" || flat.Shards() != 0 || flat.Adaptive() {
		t.Errorf("alpha: kind=%q shards=%d adaptive=%v, want flat/0/false", flat.Kind(), flat.Shards(), flat.Adaptive())
	}
	if sharded.Kind() != "sharded" || sharded.Shards() != 4 || !sharded.Adaptive() {
		t.Errorf("beta: kind=%q shards=%d adaptive=%v, want sharded/4/true", sharded.Kind(), sharded.Shards(), sharded.Adaptive())
	}
	if got := reg.Names(); !reflect.DeepEqual(got, []string{"alpha", "beta"}) {
		t.Errorf("Names() = %v", got)
	}
	if reg.Len() != 2 {
		t.Errorf("Len() = %d, want 2", reg.Len())
	}
	if u, ok := reg.Get("alpha"); !ok || u != flat {
		t.Errorf("Get(alpha) = %v, %v", u, ok)
	}

	for name, build := range map[string]func() error{
		"duplicate":   func() error { _, err := reg.Create("alpha", 10); return err },
		"empty name":  func() error { _, err := reg.Create("", 10); return err },
		"negative n":  func() error { _, err := reg.Create("bad", -1); return err },
		"bad variant": func() error { _, err := reg.Create("bad", 10, dsu.WithFind(dsu.FindStrategy(42))); return err },
		"early+halve": func() error {
			_, err := reg.Create("bad", 10, dsu.WithFind(dsu.Halving), dsu.WithEarlyTermination())
			return err
		},
	} {
		if err := build(); err == nil {
			t.Errorf("%s: Create succeeded, want error", name)
		}
	}

	if !reg.Drop("alpha") || reg.Drop("alpha") {
		t.Error("Drop(alpha) should succeed exactly once")
	}
	if _, ok := reg.Get("alpha"); ok {
		t.Error("alpha still resolvable after Drop")
	}
}

// TestUniverseDTOEquivalence proves the acceptance criterion's in-process
// half from the other side: driving a universe through the DTO layer and
// driving the structure through its classic batch methods produce the same
// partition, the same merge counts, and the same answers — on both
// structure kinds.
func TestUniverseDTOEquivalence(t *testing.T) {
	const n, m = 3000, 9000
	edges := randomEdges(n, m, 7)
	queries := randomEdges(n, m/3, 11)

	for _, tc := range []struct {
		name  string
		build func() dsu.Backend
	}{
		{"flat", func() dsu.Backend { return dsu.New(n, dsu.WithSeed(5)) }},
		{"sharded", func() dsu.Backend { return dsu.NewSharded(n, 4, dsu.WithSeed(5)) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			classic := tc.build()
			viaDTO := dsu.NewUniverse("t", tc.build())

			wantMerged := classic.UniteAll(edges, dsu.WithPrefilter())
			rep, err := viaDTO.UniteAll(dsu.UniteRequest{Edges: edges, Options: dsu.BatchOptions{Prefilter: true}})
			if err != nil {
				t.Fatal(err)
			}
			if int(rep.Merged) != wantMerged {
				t.Errorf("Merged = %d, want %d", rep.Merged, wantMerged)
			}
			if rep.Stats.Ops == 0 || rep.Elapsed <= 0 {
				t.Errorf("reply accounting empty: ops=%d elapsed=%v", rep.Stats.Ops, rep.Elapsed)
			}

			wantAnswers := classic.SameSetAll(queries)
			qrep, err := viaDTO.SameSetAll(dsu.QueryRequest{Pairs: queries})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(qrep.Answers, wantAnswers) {
				t.Error("DTO answers differ from classic SameSetAll")
			}
			if !reflect.DeepEqual(viaDTO.CanonicalLabels(), classic.CanonicalLabels()) {
				t.Error("partitions differ between DTO and classic paths")
			}
		})
	}
}

// TestUniverseValidation exercises the untrusted-input checks that guard
// the wait-free core's unchecked indexing.
func TestUniverseValidation(t *testing.T) {
	u := dsu.NewUniverse("t", dsu.New(10))
	if _, err := u.UniteAll(dsu.UniteRequest{Edges: []dsu.Edge{{X: 3, Y: 10}}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := u.SameSetAll(dsu.QueryRequest{Pairs: []dsu.Edge{{X: 11, Y: 0}}}); err == nil {
		t.Error("out-of-range pair accepted")
	}
	if _, err := u.UniteAll(dsu.UniteRequest{Options: dsu.BatchOptions{Find: dsu.FindAuto}}); err == nil {
		t.Error("FindAuto accepted as a per-batch override")
	}
	if _, err := u.UniteAll(dsu.UniteRequest{Options: dsu.BatchOptions{Find: dsu.FindStrategy(9)}}); err == nil {
		t.Error("unknown find override accepted")
	}
	early := dsu.NewUniverse("e", dsu.New(10, dsu.WithEarlyTermination()))
	if _, err := early.SameSetAll(dsu.QueryRequest{Pairs: []dsu.Edge{{X: 1, Y: 2}}, Options: dsu.BatchOptions{Find: dsu.Halving}}); err == nil {
		t.Error("halving override accepted on an early-termination structure")
	}
	// A valid override must run — and report the variant it ran.
	rep, err := u.SameSetAll(dsu.QueryRequest{Pairs: []dsu.Edge{{X: 1, Y: 2}}, Options: dsu.BatchOptions{Find: dsu.NoCompaction}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Find != dsu.NoCompaction {
		t.Errorf("reply Find = %v, want NoCompaction", rep.Find)
	}
}

// TestVeneerPanicsOnRangeViolation pins the veneer contract: an
// out-of-range element in an in-process batch is a diagnosed panic at the
// call site, not an index fault inside a worker goroutine.
func TestVeneerPanicsOnRangeViolation(t *testing.T) {
	d := dsu.New(4)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("UniteAll with out-of-range edge did not panic")
		}
		err, ok := r.(error)
		if !ok || !strings.Contains(err.Error(), "universe") {
			t.Errorf("panic %v does not diagnose the range violation", r)
		}
	}()
	d.UniteAll([]dsu.Edge{{X: 1, Y: 9}})
}

// TestShardedReadParity checks the Backend surface gap is closed:
// Snapshot, Components, and ID behave coherently on Sharded and match the
// flat structure's partition semantics.
func TestShardedReadParity(t *testing.T) {
	const n, m = 500, 900
	edges := randomEdges(n, m, 3)
	flat := dsu.New(n, dsu.WithSeed(9))
	sh := dsu.NewSharded(n, 3, dsu.WithSeed(9))
	flat.UniteAll(edges)
	sh.UniteAll(edges)

	if !reflect.DeepEqual(flat.Components(), sh.Components()) {
		t.Error("Components() differ between flat and sharded")
	}

	// Snapshot on sharded is the flattened forest: depth ≤ 1, roots are
	// global representatives, and tree membership is exactly the partition.
	snap := sh.Snapshot()
	if len(snap) != n {
		t.Fatalf("Snapshot length %d, want %d", len(snap), n)
	}
	labels := sh.CanonicalLabels()
	for x := 0; x < n; x++ {
		r := snap[x]
		if snap[r] != r {
			t.Fatalf("element %d's representative %d is not a root", x, r)
		}
		if labels[x] != labels[r] {
			t.Fatalf("element %d flattened into representative %d of a different set", x, r)
		}
		if !sh.SameSet(uint32(x), r) {
			t.Fatalf("element %d not connected to its snapshot root %d", x, r)
		}
	}

	// ID is a permutation of 0..n−1, fixed at construction.
	seen := make([]bool, n)
	for x := 0; x < n; x++ {
		id := sh.ID(uint32(x))
		if id >= uint32(n) || seen[id] {
			t.Fatalf("ID(%d) = %d is out of range or duplicated", x, id)
		}
		seen[id] = true
	}

	// The Backend interface exposes all three uniformly.
	for _, b := range []dsu.Backend{flat, sh} {
		if len(b.Snapshot()) != n || len(b.Components()) != b.Sets() {
			t.Errorf("%T: Backend read surface inconsistent", b)
		}
		_ = b.ID(0)
	}
}

// TestParseFindStrategy checks the wire-name round trip.
func TestParseFindStrategy(t *testing.T) {
	for _, f := range []dsu.FindStrategy{dsu.NoCompaction, dsu.OneTrySplitting, dsu.TwoTrySplitting, dsu.Halving, dsu.Compression, dsu.FindAuto} {
		got, err := dsu.ParseFindStrategy(f.String())
		if err != nil || got != f {
			t.Errorf("ParseFindStrategy(%q) = %v, %v; want %v", f.String(), got, err, f)
		}
	}
	if got, err := dsu.ParseFindStrategy(""); err != nil || got != 0 {
		t.Errorf("ParseFindStrategy(\"\") = %v, %v; want 0, nil", got, err)
	}
	if _, err := dsu.ParseFindStrategy("zorp"); err == nil {
		t.Error("ParseFindStrategy(zorp) accepted")
	}
}

// TestStreamFlushSurfacesCancellation is the dsu-layer half of the
// shutdown satellite: after the stream context is cancelled, Flush reports
// the context error at the call site and Close confirms the loss.
func TestStreamFlushSurfacesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	d := dsu.New(100)
	s := dsu.NewStream(d, dsu.WithBufferSize(1<<20), dsu.WithStreamContext(ctx))
	if err := s.Push(dsu.Edge{X: 1, Y: 2}); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := s.Flush(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Flush after cancel = %v, want context.Canceled", err)
	}
	if err := s.Close(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close = %v, want context.Canceled", err)
	}
	if s.Failed() == 0 {
		t.Error("abandoned batch not counted in Failed()")
	}
}

// TestUniverseStream checks Universe.NewStream is the same stream the
// dsu.NewStream veneer returns: same partition as blocking ingestion.
func TestUniverseStream(t *testing.T) {
	const n, m = 2000, 8000
	edges := randomEdges(n, m, 21)
	oracle := dsu.New(n, dsu.WithSeed(2))
	oracle.UniteAll(edges)

	u := dsu.NewUniverse("t", dsu.New(n, dsu.WithSeed(2)))
	s := u.NewStream(dsu.WithBufferSize(512))
	for _, e := range edges {
		if err := s.Push(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(u.CanonicalLabels(), oracle.CanonicalLabels()) {
		t.Error("streamed partition differs from blocking oracle")
	}
	if s.Edges() != int64(m) {
		t.Errorf("stream saw %d edges, want %d", s.Edges(), m)
	}
}
