package dsu_test

import (
	"testing"

	"repro/dsu"
)

// TestNewContractPanics pins the documented constructor contract: New
// rejects out-of-range sizes and option combinations the paper does not
// define.
func TestNewContractPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"negative n", func() { dsu.New(-1) }},
		{"n over 2^31-1", func() { dsu.New(1 << 31) }},
		{"unknown find strategy", func() { dsu.New(4, dsu.WithFind(dsu.FindStrategy(99))) }},
		{"early termination + halving", func() { dsu.New(4, dsu.WithFind(dsu.Halving), dsu.WithEarlyTermination()) }},
		{"early termination + compression", func() { dsu.New(4, dsu.WithFind(dsu.Compression), dsu.WithEarlyTermination()) }},
		{"dynamic negative capacity", func() { dsu.NewDynamic(-1) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			c.fn()
		})
	}
}

// TestNewContractAccepts pins the combinations that must construct: every
// strategy alone, and early termination with the strategies Section 6
// defines it for.
func TestNewContractAccepts(t *testing.T) {
	for _, f := range []dsu.FindStrategy{dsu.NoCompaction, dsu.OneTrySplitting, dsu.TwoTrySplitting, dsu.Halving, dsu.Compression} {
		if d := dsu.New(4, dsu.WithFind(f)); d.N() != 4 {
			t.Errorf("%v: N = %d, want 4", f, d.N())
		}
	}
	for _, f := range []dsu.FindStrategy{dsu.NoCompaction, dsu.OneTrySplitting, dsu.TwoTrySplitting} {
		d := dsu.New(4, dsu.WithFind(f), dsu.WithEarlyTermination())
		d.Unite(0, 1)
		if !d.SameSet(0, 1) {
			t.Errorf("%v+early: SameSet(0,1) = false after Unite", f)
		}
	}
	if d := dsu.New(0); d.N() != 0 || d.Sets() != 0 {
		t.Error("empty universe should construct")
	}
}
