package dsu

type config struct {
	find   FindStrategy
	early  bool
	seed   uint64
	shards int
	kind   Kind
}

// Kind names a structure kind — which of the package's three backends a
// Registry.Create (or a remote tenant-create request) selects. The zero
// value means "unset": shard-count resolution applies (a positive
// WithShards selects KindSharded, otherwise KindFlat).
type Kind int

const (
	// KindFlat is the single parent-array structure (New).
	KindFlat Kind = iota + 1
	// KindSharded is the two-level partitioned structure (NewSharded).
	KindSharded
	// KindLockFree is the lock-free concurrent structure (NewLockFree):
	// the whole operation surface, batches included, is safe under full
	// concurrency with no quiescence requirement.
	KindLockFree
)

// String returns the kind name used in tenant info and experiment tables.
func (k Kind) String() string {
	switch k {
	case KindFlat:
		return "flat"
	case KindSharded:
		return "sharded"
	case KindLockFree:
		return "lockfree"
	default:
		return "unset"
	}
}

func defaultConfig() config {
	return config{find: TwoTrySplitting, seed: 0x6a79616e7469} // stable default seed
}

// Option configures New and NewDynamic.
type Option interface {
	apply(*config)
}

type optionFunc func(*config)

func (f optionFunc) apply(c *config) { f(c) }

// WithFind selects the find-path compaction strategy (default
// TwoTrySplitting).
func WithFind(f FindStrategy) Option {
	return optionFunc(func(c *config) { c.find = f })
}

// WithAdaptiveFind selects the adaptive compaction policy — shorthand for
// WithFind(FindAuto). The structure's execution layer tracks per-batch
// observables (find steps per find, parent-pointer rewrites, merge ratio)
// in a flatness estimator and downgrades query batches (SameSetAll) to
// cheaper find variants — two-try → one-try → naive — while the forest is
// flat, restoring compacting variants once mutation batches churn it.
// Honored uniformly by the flat DSU, the sharded DSU, and any Stream over
// either; partitions and answers are identical to fixed variants in every
// mode (the find variant never changes which unites merge).
func WithAdaptiveFind() Option {
	return optionFunc(func(c *config) { c.find = FindAuto })
}

// WithEarlyTermination enables the Section 6 variants (Algorithms 6 and 7):
// SameSet and Unite interleave their two finds and always advance the
// currently smaller node, letting one find terminate the operation early.
// Valid with NoCompaction, OneTrySplitting, and TwoTrySplitting.
func WithEarlyTermination() Option {
	return optionFunc(func(c *config) { c.early = true })
}

// WithSeed fixes the seed of the random linking order (and of Dynamic's
// priorities), making runs reproducible. Structures built with equal seeds
// and sizes use identical orders.
func WithSeed(seed uint64) Option {
	return optionFunc(func(c *config) { c.seed = seed })
}

// WithShards routes a shard count through the option list: a positive value
// overrides NewSharded's positional count, so plumbing that carries one
// []Option can select the partition too. New, NewDynamic, and NewLockFree
// ignore it.
func WithShards(shards int) Option {
	return optionFunc(func(c *config) { c.shards = shards })
}

// WithKind selects the structure kind for plumbing that carries one
// []Option — Registry.Create and the network front end's tenant-create
// path. An explicit kind wins over shard-count resolution; KindSharded
// without a shard count uses one shard per available CPU. The direct
// constructors (New, NewSharded, NewLockFree) each build their own kind
// and ignore it.
func WithKind(k Kind) Option {
	return optionFunc(func(c *config) { c.kind = k })
}
