package dsu_test

import (
	"fmt"
	"testing"

	"repro/dsu"
	"repro/internal/engine"
	"repro/internal/workload"
)

// The generic Backend contract — oracle cross-validation, batch ≡
// blocking, find-variant sweeps, filter neutrality, counted accounting,
// constructor panics — lives in the shared conformance suite
// (conformance_test.go), which runs against the sharded kind too. This
// file keeps what is genuinely sharded-specific: clamping, the WithShards
// override, and option boundaries across the kinds' batch paths.

// TestShardedClampAndOverride pins NewSharded's sharded-specific
// boundaries: counts above n clamp so every shard holds an element,
// WithShards overrides the positional count, and WithShards(0) does not.
func TestShardedClampAndOverride(t *testing.T) {
	// shards > n clamps so every shard holds at least one element, and the
	// structure stays fully operational.
	d := dsu.NewSharded(5, 64)
	if d.Shards() > 5 || d.Shards() < 1 {
		t.Fatalf("Shards() = %d after clamping 64 over 5 elements", d.Shards())
	}
	d.Unite(0, 4)
	if !d.SameSet(0, 4) || d.SameSet(0, 1) {
		t.Error("clamped structure answers wrong")
	}
	if d.Sets() != 4 {
		t.Errorf("Sets() = %d, want 4", d.Sets())
	}

	if got := dsu.NewSharded(100, 2, dsu.WithShards(5)).Shards(); got != 5 {
		t.Errorf("WithShards override: Shards() = %d, want 5", got)
	}
	if got := dsu.NewSharded(100, 2, dsu.WithShards(0)).Shards(); got != 2 {
		t.Errorf("WithShards(0) must not override: Shards() = %d, want 2", got)
	}
}

// TestBatchOptionBoundaries sweeps WithWorkers and WithGrain through their
// documented degenerate values — zero, negative, larger than the batch —
// on every kind's batch path, checking the partition is immune.
func TestBatchOptionBoundaries(t *testing.T) {
	const n = 1200
	edges := engine.FromOps(workload.RandomUnions(n, 2*n, 41))
	flat := dsu.New(n)
	flat.UniteAll(edges)
	want := flat.CanonicalLabels()

	for _, bc := range backendCases() {
		for _, workers := range []int{0, -1, 1, len(edges) + 7} {
			for _, grain := range []int{0, -5, 1, len(edges) * 3} {
				t.Run(fmt.Sprintf("%s/workers=%d/grain=%d", bc.name, workers, grain), func(t *testing.T) {
					d := bc.make(n)
					d.UniteAll(edges, dsu.WithWorkers(workers), dsu.WithGrain(grain))
					checkLabelsMatch(t, d.CanonicalLabels(), want)
				})
			}
		}
	}

	// Queries under the same degenerate options.
	for _, bc := range backendCases() {
		d := bc.make(n)
		d.UniteAll(edges)
		for i, ans := range d.SameSetAll(edges, dsu.WithWorkers(-2), dsu.WithGrain(0)) {
			if !ans {
				t.Fatalf("%s: united pair %d answered false", bc.name, i)
			}
		}
	}
}
