package dsu_test

import (
	"fmt"
	"testing"

	"repro/dsu"
	"repro/internal/engine"
	"repro/internal/workload"
)

// TestShardedMatchesFlat is the acceptance cross-validation: for seeds ×
// shard counts {1, 2, 3, 8}, dsu.Sharded fed the same multi-batch schedule
// as a flat dsu.DSU must produce the identical partition — the same SameSet
// answer on every queried pair and the same canonical labels. CI runs this
// under -race.
func TestShardedMatchesFlat(t *testing.T) {
	const n = 2500
	for _, seed := range []uint64{1, 7, 42} {
		for _, shards := range []int{1, 2, 3, 8} {
			t.Run(fmt.Sprintf("seed=%d/shards=%d", seed, shards), func(t *testing.T) {
				flat := dsu.New(n, dsu.WithSeed(seed))
				sh := dsu.NewSharded(n, shards, dsu.WithSeed(seed))
				batches := [][]dsu.Edge{
					engine.FromOps(workload.CommunityUnions(n, 2*n, 8, 0.9, seed+100)),
					engine.FromOps(workload.RandomUnions(n, n, seed+200)),
					engine.FromOps(workload.ZipfMixed(n, n, 1.0, 1.1, seed+300)),
				}
				for _, b := range batches {
					flat.UniteAll(b, dsu.WithWorkers(4), dsu.WithGrain(64))
					sh.UniteAll(b, dsu.WithWorkers(4), dsu.WithGrain(64))
				}

				queries := engine.FromOps(workload.RandomUnions(n, 4*n, seed+400))
				flatAns := flat.SameSetAll(queries, dsu.WithWorkers(4))
				shAns := sh.SameSetAll(queries, dsu.WithWorkers(4))
				for i := range queries {
					if flatAns[i] != shAns[i] {
						t.Fatalf("query %d (%d,%d): sharded %v, flat %v",
							i, queries[i].X, queries[i].Y, shAns[i], flatAns[i])
					}
					if got := sh.SameSet(queries[i].X, queries[i].Y); got != flatAns[i] {
						t.Fatalf("point SameSet(%d,%d) = %v, flat %v",
							queries[i].X, queries[i].Y, got, flatAns[i])
					}
				}

				want := flat.CanonicalLabels()
				got := sh.CanonicalLabels()
				for x := range got {
					if got[x] != want[x] {
						t.Fatalf("label[%d] = %d, want %d", x, got[x], want[x])
					}
				}
				if sh.Sets() != flat.Sets() {
					t.Fatalf("Sets() = %d, flat %d", sh.Sets(), flat.Sets())
				}
			})
		}
	}
}

// TestShardedConstructorContract pins NewSharded's documented boundaries:
// shard counts below one panic, counts above n clamp, WithShards overrides
// the positional count, and the usual New panics carry over.
func TestShardedConstructorContract(t *testing.T) {
	for _, c := range []struct {
		name string
		fn   func()
	}{
		{"zero shards", func() { dsu.NewSharded(100, 0) }},
		{"negative shards", func() { dsu.NewSharded(100, -4) }},
		{"negative n", func() { dsu.NewSharded(-1, 2) }},
		{"early termination + halving", func() {
			dsu.NewSharded(16, 2, dsu.WithFind(dsu.Halving), dsu.WithEarlyTermination())
		}},
	} {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			c.fn()
		})
	}

	// shards > n clamps so every shard holds at least one element, and the
	// structure stays fully operational.
	d := dsu.NewSharded(5, 64)
	if d.Shards() > 5 || d.Shards() < 1 {
		t.Fatalf("Shards() = %d after clamping 64 over 5 elements", d.Shards())
	}
	d.Unite(0, 4)
	if !d.SameSet(0, 4) || d.SameSet(0, 1) {
		t.Error("clamped structure answers wrong")
	}
	if d.Sets() != 4 {
		t.Errorf("Sets() = %d, want 4", d.Sets())
	}

	if got := dsu.NewSharded(100, 2, dsu.WithShards(5)).Shards(); got != 5 {
		t.Errorf("WithShards override: Shards() = %d, want 5", got)
	}
	if got := dsu.NewSharded(100, 2, dsu.WithShards(0)).Shards(); got != 2 {
		t.Errorf("WithShards(0) must not override: Shards() = %d, want 2", got)
	}

	// Empty universe constructs, as the flat structure does.
	if e := dsu.NewSharded(0, 4); e.N() != 0 || e.Sets() != 0 {
		t.Error("empty sharded universe should construct")
	}
}

// TestShardedVariantOptions checks the find-strategy options plumb through
// to the shard and bridge levels: every supported variant produces the flat
// partition.
func TestShardedVariantOptions(t *testing.T) {
	const n = 800
	edges := engine.FromOps(workload.CommunityUnions(n, 2*n, 4, 0.8, 31))
	flat := dsu.New(n)
	flat.UniteAll(edges)
	want := flat.CanonicalLabels()
	for _, f := range []dsu.FindStrategy{dsu.NoCompaction, dsu.OneTrySplitting, dsu.TwoTrySplitting, dsu.Halving, dsu.Compression} {
		d := dsu.NewSharded(n, 4, dsu.WithFind(f), dsu.WithSeed(33))
		d.UniteAll(edges, dsu.WithWorkers(3))
		got := d.CanonicalLabels()
		for x := range got {
			if got[x] != want[x] {
				t.Fatalf("%v: label[%d] = %d, want %d", f, x, got[x], want[x])
			}
		}
	}
}

// TestBatchOptionBoundaries sweeps WithWorkers and WithGrain through their
// documented degenerate values — zero, negative, larger than the batch — on
// both the flat and sharded batch paths, checking the partition is immune.
func TestBatchOptionBoundaries(t *testing.T) {
	const n = 1200
	edges := engine.FromOps(workload.RandomUnions(n, 2*n, 41))
	flat := dsu.New(n)
	flat.UniteAll(edges)
	want := flat.CanonicalLabels()
	check := func(t *testing.T, got []uint32) {
		t.Helper()
		for x := range got {
			if got[x] != want[x] {
				t.Fatalf("label[%d] = %d, want %d", x, got[x], want[x])
			}
		}
	}

	for _, workers := range []int{0, -1, 1, len(edges) + 7} {
		for _, grain := range []int{0, -5, 1, len(edges) * 3} {
			name := fmt.Sprintf("workers=%d/grain=%d", workers, grain)
			t.Run("flat/"+name, func(t *testing.T) {
				d := dsu.New(n)
				d.UniteAll(edges, dsu.WithWorkers(workers), dsu.WithGrain(grain))
				check(t, d.CanonicalLabels())
			})
			t.Run("sharded/"+name, func(t *testing.T) {
				d := dsu.NewSharded(n, 3)
				d.UniteAll(edges, dsu.WithWorkers(workers), dsu.WithGrain(grain))
				check(t, d.CanonicalLabels())
			})
		}
	}

	// Queries under the same degenerate options.
	d := dsu.NewSharded(n, 3)
	d.UniteAll(edges)
	for i, ans := range d.SameSetAll(edges, dsu.WithWorkers(-2), dsu.WithGrain(0)) {
		if !ans {
			t.Fatalf("united pair %d answered false", i)
		}
	}
}

// TestPrefilterOption checks WithPrefilter leaves the partition and merge
// count untouched on both batch paths, and dsu.Prefilter's shrink on a
// duplicate-heavy batch.
func TestPrefilterOption(t *testing.T) {
	const n = 1000
	edges := engine.FromOps(workload.ZipfMixed(n, 4*n, 1.0, 1.2, 43))
	if kept := dsu.Prefilter(edges); len(kept) >= len(edges) {
		t.Fatalf("Zipf batch should shrink under Prefilter: %d -> %d", len(edges), len(kept))
	}

	flatRaw, flatFiltered := dsu.New(n), dsu.New(n)
	if a, b := flatRaw.UniteAll(edges), flatFiltered.UniteAll(edges, dsu.WithPrefilter()); a != b {
		t.Errorf("flat merged %d raw vs %d prefiltered", a, b)
	}
	shRaw, shFiltered := dsu.NewSharded(n, 4), dsu.NewSharded(n, 4)
	if a, b := shRaw.UniteAll(edges), shFiltered.UniteAll(edges, dsu.WithPrefilter()); a != b {
		t.Errorf("sharded merged %d raw vs %d prefiltered", a, b)
	}
	want := flatRaw.CanonicalLabels()
	for _, got := range [][]uint32{flatFiltered.CanonicalLabels(), shRaw.CanonicalLabels(), shFiltered.CanonicalLabels()} {
		for x := range got {
			if got[x] != want[x] {
				t.Fatalf("label[%d] = %d, want %d", x, got[x], want[x])
			}
		}
	}
}

// TestShardedCounted checks the counted batch variants account for every
// routed edge across all phases.
func TestShardedCounted(t *testing.T) {
	const n = 1500
	edges := engine.FromOps(workload.CommunityUnions(n, 2*n, 5, 0.7, 47))
	d := dsu.NewSharded(n, 5)
	var st dsu.Stats
	d.UniteAllCounted(edges, &st, dsu.WithWorkers(3))
	if st.Ops == 0 || st.Work() <= 0 {
		t.Errorf("counted sharded batch reported no work: %+v", st)
	}
	before := st.Ops
	d.SameSetAllCounted(edges, &st, dsu.WithWorkers(3))
	if st.Ops-before != int64(len(edges)) {
		t.Errorf("SameSetAllCounted ops = %d, want %d", st.Ops-before, len(edges))
	}
}
